// Trace record/replay: the "trace based load generation" alternative
// the paper surveys in §3.3. A trace is an ordered list of repository
// primitives; it can be captured from any workload via the recording
// decorator, saved to a text format, and replayed against any back end
// — enabling apples-to-apples comparisons on identical op sequences.

#ifndef LOREPO_WORKLOAD_TRACE_H_
#define LOREPO_WORKLOAD_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/object_repository.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace workload {

/// One traced repository primitive.
struct TraceOp {
  enum class Kind : uint8_t { kPut, kSafeWrite, kGet, kDelete };
  Kind kind = Kind::kPut;
  std::string key;
  uint64_t size = 0;  ///< Unused for kGet/kDelete.

  bool operator==(const TraceOp& other) const = default;
};

/// An ordered op sequence with text (de)serialization.
class Trace {
 public:
  void Add(TraceOp op) { ops_.push_back(std::move(op)); }
  const std::vector<TraceOp>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Line format: "<op> <key> [<size>]", one op per line.
  void Serialize(std::ostream& os) const;
  static Result<Trace> Deserialize(std::istream& is);

  /// Applies every op to `repo`, stopping at the first failure.
  Status Replay(core::ObjectRepository* repo) const;

  /// Total bytes written by puts and safe writes.
  uint64_t BytesWritten() const;

 private:
  std::vector<TraceOp> ops_;
};

/// ObjectRepository decorator that appends every mutating/reading call
/// to a Trace while forwarding to the wrapped repository.
class RecordingRepository : public core::ObjectRepository {
 public:
  RecordingRepository(core::ObjectRepository* inner, Trace* trace)
      : inner_(inner), trace_(trace) {}

  Status Put(const std::string& key, uint64_t size,
             std::span<const uint8_t> data = {}) override;
  Status SafeWrite(const std::string& key, uint64_t size,
                   std::span<const uint8_t> data = {}) override;
  Status Get(const std::string& key,
             std::vector<uint8_t>* out = nullptr) override;
  Status Delete(const std::string& key) override;

  bool Exists(const std::string& key) const override {
    return inner_->Exists(key);
  }
  Result<alloc::ExtentList> GetLayout(const std::string& key) const override {
    return inner_->GetLayout(key);
  }
  Result<uint64_t> GetSize(const std::string& key) const override {
    return inner_->GetSize(key);
  }
  std::vector<std::string> ListKeys() const override {
    return inner_->ListKeys();
  }
  void VisitObjects(
      const std::function<void(const std::string& key,
                               const alloc::ExtentList& layout,
                               uint64_t size_bytes)>& visit) const override {
    inner_->VisitObjects(visit);
  }
  const core::FragmentationTracker* fragmentation_tracker() const override {
    return inner_->fragmentation_tracker();
  }
  uint64_t object_count() const override { return inner_->object_count(); }
  uint64_t live_bytes() const override { return inner_->live_bytes(); }
  uint64_t volume_bytes() const override { return inner_->volume_bytes(); }
  uint64_t free_bytes() const override { return inner_->free_bytes(); }
  double now() const override { return inner_->now(); }
  sim::IoStats device_stats() const override {
    return inner_->device_stats();
  }
  sim::BufferPoolStats cache_stats() const override {
    return inner_->cache_stats();
  }
  Status FlushCache() override { return inner_->FlushCache(); }
  Status CheckConsistency() const override {
    return inner_->CheckConsistency();
  }
  Status SetQueueDepth(
      uint32_t depth,
      sim::SchedPolicy policy = sim::SchedPolicy::kSptf) override {
    return inner_->SetQueueDepth(depth, policy);
  }
  Status DrainIo() override { return inner_->DrainIo(); }
  const sim::LatencyRecorder* latency_recorder() const override {
    return inner_->latency_recorder();
  }
  /// Recovery and verification are observations, not workload ops — they
  /// forward without being traced.
  Result<core::MountReport> Mount() override { return inner_->Mount(); }
  Result<core::FsckReport> Fsck() override { return inner_->Fsck(); }
  std::string name() const override { return inner_->name() + "+recorded"; }

 private:
  core::ObjectRepository* inner_;
  Trace* trace_;
};

}  // namespace workload
}  // namespace lor

#endif  // LOREPO_WORKLOAD_TRACE_H_
