// Object-size distributions for workload generation (§4.3, §5.4).
// The paper compares constant sizes against uniform sizes with the same
// mean and finds no difference in fragmentation behaviour; a lognormal
// is included for sensitivity studies beyond the paper.

#ifndef LOREPO_WORKLOAD_SIZE_DISTRIBUTION_H_
#define LOREPO_WORKLOAD_SIZE_DISTRIBUTION_H_

#include <cstdint>
#include <string>

#include "util/random.h"

namespace lor {
namespace workload {

/// Families of object-size distributions.
enum class SizeDistributionKind {
  kConstant,   ///< Every object exactly `mean` bytes.
  kUniform,    ///< Uniform on [mean/2, 3*mean/2] (same mean).
  kLogNormal,  ///< Lognormal with the given mean and sigma.
};

/// Samples object sizes. Sizes are clamped to at least 1 KB.
class SizeDistribution {
 public:
  static SizeDistribution Constant(uint64_t mean_bytes);
  static SizeDistribution Uniform(uint64_t mean_bytes);
  static SizeDistribution LogNormal(uint64_t mean_bytes, double sigma = 0.5);

  uint64_t Sample(Rng* rng) const;

  uint64_t mean_bytes() const { return mean_bytes_; }
  SizeDistributionKind kind() const { return kind_; }
  std::string ToString() const;

 private:
  SizeDistribution(SizeDistributionKind kind, uint64_t mean, double sigma)
      : kind_(kind), mean_bytes_(mean), sigma_(sigma) {}

  SizeDistributionKind kind_;
  uint64_t mean_bytes_;
  double sigma_;
};

}  // namespace workload
}  // namespace lor

#endif  // LOREPO_WORKLOAD_SIZE_DISTRIBUTION_H_
