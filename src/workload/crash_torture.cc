#include "workload/crash_torture.h"

#include <algorithm>
#include <span>

#include "util/fnv.h"

namespace lor {
namespace workload {

namespace {
constexpr uint64_t kKeyMix = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kVersionMix = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kPayloadSalt = 0x94d049bb133111ebULL;
}  // namespace

CrashTortureRunner::CrashTortureRunner(CrashTortureOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

CrashTortureRunner::~CrashTortureRunner() = default;

std::string CrashTortureRunner::KeyName(uint64_t idx) const {
  return "obj" + std::to_string(idx);
}

uint64_t CrashTortureRunner::SizeFor(uint64_t idx, uint64_t version) const {
  Rng rng(options_.seed ^ (idx * kKeyMix) ^ (version * kVersionMix));
  const uint64_t lo = std::max<uint64_t>(1, options_.object_bytes / 2);
  const uint64_t span = std::max<uint64_t>(1, options_.object_bytes - lo);
  return lo + rng.Uniform(span);
}

std::vector<uint8_t> CrashTortureRunner::PayloadFor(uint64_t idx,
                                                    uint64_t version) const {
  const uint64_t size = SizeFor(idx, version);
  Rng rng(options_.seed ^ (idx * kKeyMix) ^ (version * kVersionMix) ^
          kPayloadSalt);
  std::vector<uint8_t> payload(size);
  uint64_t word = 0;
  for (uint64_t i = 0; i < size; ++i) {
    if (i % 8 == 0) word = rng.Next();
    payload[i] = static_cast<uint8_t>(word >> ((i % 8) * 8));
  }
  return payload;
}

Status CrashTortureRunner::Setup() {
  if (options_.backend == CrashBackend::kFilesystem) {
    core::FsRepositoryConfig cfg;
    cfg.volume_bytes = options_.volume_bytes;
    cfg.data_mode = options_.data_mode;
    cfg.cache.capacity_bytes = options_.cache_bytes;
    cfg.store.batch_journal_charges = options_.batch_journal_charges;
    fs_ = std::make_unique<core::FsRepository>(cfg);
    fs_->device()->AttachFaultInjector(&injector_);
    repo_ = fs_.get();
  } else {
    core::DbRepositoryConfig cfg;
    cfg.volume_bytes = options_.volume_bytes;
    cfg.log_volume_bytes = options_.volume_bytes / 8;
    cfg.data_mode = options_.data_mode;
    cfg.cache.capacity_bytes = options_.cache_bytes;
    cfg.store.bulk_logged = options_.bulk_logged;
    db_ = std::make_unique<core::DbRepository>(cfg);
    // Data and log volumes share one power supply: one injector, one
    // global sequence, one cut.
    db_->data_device()->AttachFaultInjector(&injector_);
    if (db_->log_device() != nullptr) {
      db_->log_device()->AttachFaultInjector(&injector_);
    }
    repo_ = db_.get();
  }
  if (options_.queue_depth > 1) {
    LOR_RETURN_IF_ERROR(repo_->SetQueueDepth(options_.queue_depth));
  }

  keys_.assign(options_.objects, KeyState{});
  const bool retain = options_.data_mode == sim::DataMode::kRetain;
  auto write_version = [&](uint64_t idx, bool create) -> Status {
    KeyState& ks = keys_[idx];
    const uint64_t version = ++ks.versions_issued;
    const uint64_t size = SizeFor(idx, version);
    std::vector<uint8_t> payload;
    std::span<const uint8_t> data;
    uint64_t hash = 0;
    if (retain) {
      payload = PayloadFor(idx, version);
      data = payload;
      hash = Fnv(payload);
    }
    if (create) {
      LOR_RETURN_IF_ERROR(repo_->Put(KeyName(idx), size, data));
    } else {
      LOR_RETURN_IF_ERROR(repo_->SafeWrite(KeyName(idx), size, data));
    }
    ks.live = true;
    ks.version = version;
    ks.size = size;
    ks.hash = hash;
    return Status::OK();
  };
  for (uint64_t i = 0; i < options_.objects; ++i) {
    LOR_RETURN_IF_ERROR(write_version(i, /*create=*/true));
  }
  const uint64_t aging_ops = options_.aging_rounds * options_.objects;
  for (uint64_t i = 0; i < aging_ops; ++i) {
    LOR_RETURN_IF_ERROR(
        write_version(rng_.Uniform(keys_.size()), /*create=*/false));
  }
  LOR_RETURN_IF_ERROR(repo_->DrainIo());

  // Crash points land inside the window's expected write traffic so a
  // healthy fraction of windows trip mid-operation.
  const uint64_t writes_per_op = options_.object_bytes / (64 * kKiB) + 6;
  writes_horizon_ =
      std::max<uint64_t>(8, options_.max_ops_per_window * writes_per_op / 2);
  return Status::OK();
}

Status CrashTortureRunner::IssueOp(
    std::unordered_map<uint64_t, std::vector<WindowOp>>* window) {
  const uint64_t idx = rng_.Uniform(keys_.size());
  KeyState& ks = keys_[idx];
  // Current liveness as the client sees it: the stable state amended by
  // whatever this window already acked.
  bool live_now = ks.live;
  if (window != nullptr) {
    auto it = window->find(idx);
    if (it != window->end() && !it->second.empty()) {
      live_now = !it->second.back().deleted;
    }
  }
  const uint64_t dice = rng_.Uniform(100);
  if (dice < 15 && live_now) {
    LOR_RETURN_IF_ERROR(repo_->Delete(KeyName(idx)));
    // An op in flight when the power died was never acked: the client
    // cannot expect (or excuse) its effect.
    const bool acked = window == nullptr || !injector_.tripped();
    if (window != nullptr) {
      if (acked) (*window)[idx].push_back({true, 0, 0, 0});
    } else {
      ks.live = false;
    }
    return Status::OK();
  }
  if (dice < 30 && live_now) {
    return repo_->Get(KeyName(idx), nullptr);
  }
  const uint64_t version = ++ks.versions_issued;
  const uint64_t size = SizeFor(idx, version);
  std::vector<uint8_t> payload;
  std::span<const uint8_t> data;
  uint64_t hash = 0;
  if (options_.data_mode == sim::DataMode::kRetain) {
    payload = PayloadFor(idx, version);
    data = payload;
    hash = Fnv(payload);
  }
  LOR_RETURN_IF_ERROR(repo_->SafeWrite(KeyName(idx), size, data));
  const bool acked = window == nullptr || !injector_.tripped();
  if (window != nullptr) {
    if (acked) (*window)[idx].push_back({false, version, size, hash});
  } else {
    ks.live = true;
    ks.version = version;
    ks.size = size;
    ks.hash = hash;
  }
  return Status::OK();
}

void CrashTortureRunner::EndCrashWindowOnStore() {
  if (fs_ != nullptr) fs_->store()->EndCrashWindow();
  if (db_ != nullptr) db_->blob_store()->EndCrashWindow();
}

void CrashTortureRunner::FoldWindowIntoStable() {
  for (auto& [idx, ops] : window_) {
    if (ops.empty()) continue;
    KeyState& ks = keys_[idx];
    const WindowOp& last = ops.back();
    if (last.deleted) {
      ks.live = false;
    } else {
      ks.live = true;
      ks.version = last.version;
      ks.size = last.size;
      ks.hash = last.hash;
    }
  }
  window_.clear();
}

Status CrashTortureRunner::VerifyAfterCrash(CrashCutResult* cut) {
  const bool retain = options_.data_mode == sim::DataMode::kRetain;
  for (auto& [idx, ops] : window_) {
    if (ops.empty()) continue;
    KeyState& ks = keys_[idx];
    // The acceptable post-crash states: the stable pre-window version
    // plus every version acked during the window; absence is acceptable
    // only if the key was not stable-live or an acked delete removed it.
    bool absent_ok = !ks.live;
    WindowOp stable{false, ks.version, ks.size, ks.hash};
    std::vector<const WindowOp*> accept;
    if (ks.live) accept.push_back(&stable);
    for (const WindowOp& op : ops) {
      if (op.deleted) {
        absent_ok = true;
      } else {
        accept.push_back(&op);
      }
    }

    const std::string key = KeyName(idx);
    std::vector<uint8_t> payload;
    const Status read = repo_->Get(key, retain ? &payload : nullptr);
    const bool exists = read.ok();
    const WindowOp* observed = nullptr;
    if (!exists) {
      if (!absent_ok) ++cut->committed_lost;
    } else if (retain) {
      const uint64_t h = Fnv(payload);
      for (const WindowOp* c : accept) {
        if (c->hash == h && c->size == payload.size()) {
          observed = c;
          break;
        }
      }
      if (observed == nullptr) ++cut->torn_surfaced;
    } else {
      LOR_ASSIGN_OR_RETURN(const uint64_t sz, repo_->GetSize(key));
      for (const WindowOp* c : accept) {
        if (c->size == sz) {
          observed = c;
          break;
        }
      }
      if (observed == nullptr) ++cut->torn_surfaced;
    }

    // The data-loss window: acked effects that did not survive.
    const WindowOp& last = ops.back();
    const bool final_survived =
        last.deleted
            ? !exists
            : (observed != nullptr && observed->version == last.version);
    if (!final_survived) ++cut->acked_rolled_back;

    // Adopt the observed state as the new stable truth.
    if (!exists) {
      ks.live = false;
    } else if (observed != nullptr) {
      ks.live = true;
      ks.version = observed->version;
      ks.size = observed->size;
      ks.hash = observed->hash;
    } else {
      // Torn survivor (already counted): absorb it so later cuts don't
      // cascade the mismatch.
      LOR_ASSIGN_OR_RETURN(const uint64_t sz, repo_->GetSize(key));
      ks.live = true;
      ks.version = 0;
      ks.size = sz;
      ks.hash = retain ? Fnv(payload) : 0;
    }
  }
  window_.clear();
  return Status::OK();
}

Result<CrashCutResult> CrashTortureRunner::RunCut() {
  CrashCutResult cut;
  LOR_RETURN_IF_ERROR(repo_->DrainIo());
  sim::CrashSpec spec;
  spec.crash_after_writes = 1 + rng_.Uniform(writes_horizon_);
  spec.seed = rng_.Next();
  injector_.Arm(spec);
  window_.clear();

  uint64_t ops = 0;
  while (!injector_.tripped() && ops < options_.max_ops_per_window) {
    Status s = IssueOp(&window_);
    if (!s.ok()) {
      injector_.Disarm();
      EndCrashWindowOnStore();
      return s;
    }
    ++ops;
  }

  if (!injector_.tripped()) {
    // The window closed before the crash point: drain (making every
    // acked op durable), release rollback holds, fold the oracle.
    LOR_RETURN_IF_ERROR(repo_->DrainIo());
    injector_.Disarm();
    EndCrashWindowOnStore();
    FoldWindowIntoStable();
    return cut;
  }

  cut.tripped = true;
  cut.crash = injector_.MaterializeCrash();
  LOR_ASSIGN_OR_RETURN(cut.mount, repo_->Mount());
  // Abandoning the dead queue leaves the scheduler disengaged; the
  // restarted "machine" re-opens at its configured depth.
  if (options_.queue_depth > 1) {
    LOR_RETURN_IF_ERROR(repo_->SetQueueDepth(options_.queue_depth));
  }
  LOR_ASSIGN_OR_RETURN(core::FsckReport fsck, repo_->Fsck());
  cut.fsck_clean = fsck.clean();
  cut.fsck_issues = fsck.issues.size();
  LOR_RETURN_IF_ERROR(VerifyAfterCrash(&cut));
  LOR_RETURN_IF_ERROR(repo_->CheckConsistency());
  return cut;
}

Status CrashTortureRunner::IssueMediaOp(MediaCycleResult* cycle) {
  const uint64_t idx = rng_.Uniform(keys_.size());
  KeyState& ks = keys_[idx];
  const std::string key = KeyName(idx);
  const uint64_t dice = rng_.Uniform(100);
  ++cycle->ops;
  if (dice < 10 && ks.live) {
    LOR_RETURN_IF_ERROR(repo_->Delete(key));
    ks.live = false;
    return Status::OK();
  }
  if (dice < 60 && ks.live) {
    std::vector<uint8_t> payload;
    const Status read = repo_->Get(key, &payload);
    if (read.ok()) {
      // The one inviolable rule: an acknowledged read delivers the
      // acked bytes or a typed error — never wrong bytes.
      if (payload.size() != ks.size || Fnv(payload) != ks.hash) {
        ++cycle->silent_corruptions;
      }
    } else if (read.IsCorruption()) {
      ++cycle->corruptions_detected;
    } else if (read.IsIoError()) {
      ++cycle->read_errors;
    } else {
      return read;
    }
    return Status::OK();
  }
  const uint64_t version = ++ks.versions_issued;
  const uint64_t size = SizeFor(idx, version);
  const std::vector<uint8_t> payload = PayloadFor(idx, version);
  LOR_RETURN_IF_ERROR(repo_->SafeWrite(key, size, payload));
  ks.live = true;
  ks.version = version;
  ks.size = size;
  ks.hash = Fnv(payload);
  return Status::OK();
}

Result<MediaCycleResult> CrashTortureRunner::RunMediaCycle() {
  MediaCycleResult cycle;
  LOR_RETURN_IF_ERROR(repo_->DrainIo());
  sim::MediaFaultSpec spec = options_.media;
  spec.seed = rng_.Next();
  media_model_.Arm(spec);

  for (uint64_t op = 0; op < options_.ops_per_media_cycle; ++op) {
    LOR_RETURN_IF_ERROR(IssueMediaOp(&cycle));
  }
  if (options_.scrub_between_cycles) {
    LOR_ASSIGN_OR_RETURN(cycle.scrub, repo_->Scrub());
  }

  // Heal with the model disarmed: latent sector errors stop refusing
  // reads, but at-rest flips persist in the arena (Disarm never puts
  // bytes back), so damaged keys still fail their checksums. Rewrite
  // each one from the oracle.
  media_model_.Disarm();
  for (uint64_t idx = 0; idx < keys_.size(); ++idx) {
    KeyState& ks = keys_[idx];
    if (!ks.live) continue;
    std::vector<uint8_t> payload;
    const Status read = repo_->Get(KeyName(idx), &payload);
    if (read.ok() && payload.size() == ks.size && Fnv(payload) == ks.hash) {
      continue;
    }
    if (read.ok()) {
      // Wrong bytes with a clean status slipped past the checksums.
      ++cycle.silent_corruptions;
    } else if (!read.IsCorruption() && !read.IsIoError()) {
      return read;
    }
    const uint64_t version = ++ks.versions_issued;
    const uint64_t size = SizeFor(idx, version);
    const std::vector<uint8_t> fresh = PayloadFor(idx, version);
    LOR_RETURN_IF_ERROR(repo_->SafeWrite(KeyName(idx), size, fresh));
    ks.version = version;
    ks.size = size;
    ks.hash = Fnv(fresh);
    ++cycle.healed;
  }
  cycle.transient_clears = media_model_.stats().transient_clears;

  // After the heal every payload matches its recorded hashes again.
  LOR_ASSIGN_OR_RETURN(const core::FsckReport fsck, repo_->Fsck());
  cycle.fsck_clean = fsck.clean();
  LOR_RETURN_IF_ERROR(repo_->CheckConsistency());
  return cycle;
}

Result<MediaTortureSummary> CrashTortureRunner::RunMedia() {
  if (options_.data_mode != sim::DataMode::kRetain) {
    return Status::InvalidArgument(
        "media torture needs DataMode::kRetain (faults bite real bytes)");
  }
  LOR_RETURN_IF_ERROR(Setup());
  if (fs_ != nullptr) fs_->device()->AttachMediaFaults(&media_model_);
  if (db_ != nullptr) db_->data_device()->AttachMediaFaults(&media_model_);
  MediaTortureSummary sum;
  for (uint64_t c = 0; c < options_.media_cycles; ++c) {
    LOR_ASSIGN_OR_RETURN(const MediaCycleResult cycle, RunMediaCycle());
    ++sum.cycles_executed;
    sum.ops += cycle.ops;
    sum.read_errors += cycle.read_errors;
    sum.corruptions_detected += cycle.corruptions_detected;
    sum.silent_corruptions += cycle.silent_corruptions;
    sum.scrub_objects_scanned += cycle.scrub.objects_scanned;
    sum.scrub_repaired += cycle.scrub.repaired;
    sum.scrub_unrecoverable += cycle.scrub.unrecoverable;
    sum.healed += cycle.healed;
    sum.transient_clears += cycle.transient_clears;
    if (!cycle.fsck_clean) ++sum.fsck_dirty_cycles;
  }
  if (fs_ != nullptr) {
    sum.quarantined_units = fs_->store()->quarantined_cluster_count();
  }
  if (db_ != nullptr) {
    sum.quarantined_units = db_->blob_store()->quarantined_page_count();
  }
  return sum;
}

Result<CrashTortureSummary> CrashTortureRunner::Run() {
  LOR_RETURN_IF_ERROR(Setup());
  CrashTortureSummary sum;
  uint64_t attempts = 0;
  while (sum.cuts_executed < options_.cuts) {
    if (++attempts > options_.cuts * 8 + 16) {
      return Status::Aborted(
          "crash windows refuse to trip; crash horizon too large for the "
          "workload");
    }
    LOR_ASSIGN_OR_RETURN(CrashCutResult cut, RunCut());
    if (!cut.tripped) {
      ++sum.windows_untripped;
      continue;
    }
    ++sum.cuts_executed;
    sum.committed_lost += cut.committed_lost;
    sum.torn_surfaced += cut.torn_surfaced;
    sum.acked_rolled_back += cut.acked_rolled_back;
    if (!cut.fsck_clean) ++sum.fsck_dirty_cuts;
    sum.entries_replayed += cut.mount.entries_scanned;
    sum.ops_rolled_back += cut.mount.ops_rolled_back;
    sum.data_loss_bytes += cut.mount.data_loss_bytes;
    sum.total_recovery_seconds += cut.mount.recovery_seconds;
    sum.max_recovery_seconds =
        std::max(sum.max_recovery_seconds, cut.mount.recovery_seconds);
  }
  return sum;
}

}  // namespace workload
}  // namespace lor
