// ShardEngine: the per-shard core of the paper's synthetic workload
// (§4.3) — bulk load to a target occupancy, rounds of uniform-random
// safe-write replacements with measurement checkpoints at chosen
// storage ages, and randomized read-throughput probes.
//
// Keys come from a global "obj<index>" namespace. With a ShardRouter,
// an engine loads exactly the keys the router assigns to its shard, so
// the per-shard key sets partition the namespace; without one it owns
// every key — which is shard 0 of 1 and reproduces the historical
// single-threaded GetPutRunner operation-for-operation. GetPutRunner is
// now a thin wrapper over this class; ShardedRunner drives one engine
// per shard on a dedicated thread.

#ifndef LOREPO_WORKLOAD_SHARD_ENGINE_H_
#define LOREPO_WORKLOAD_SHARD_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/fragmentation.h"
#include "core/object_repository.h"
#include "core/shard_router.h"
#include "core/storage_age.h"
#include "util/random.h"
#include "util/units.h"
#include "workload/size_distribution.h"

namespace lor {
namespace workload {

/// Workload parameters.
struct WorkloadConfig {
  SizeDistribution sizes = SizeDistribution::Constant(10 * kMiB);
  /// Fraction of the volume occupied after bulk load.
  double target_occupancy = 0.5;
  /// Random seed (all randomness derives from it; shard s draws from
  /// the independent stream seeded with `seed ^ s`).
  uint64_t seed = 42;
  /// Objects sampled per read-throughput probe (capped at the
  /// population).
  uint64_t read_probe_samples = 256;
  /// Open one ObjectHandle per object at load time and run the aging /
  /// measurement hot loops through it (no per-operation name lookups).
  /// Off = the historical name-per-operation path, kept as the
  /// compatibility surface; both produce identical layouts.
  bool use_handles = true;
  /// Materialize read-probe payloads into one scratch buffer reused
  /// across the whole phase (integrity runs on data-retaining devices).
  /// Off = timing-only probes, no payload buffer at all.
  bool materialize_reads = false;
  /// Operations kept in flight against the repository during the aging
  /// and read-measurement phases. 1 (the default) is the synchronous
  /// path and reproduces every historical figure exactly; > 1 engages
  /// the back end's submission queue for those phases (bulk load always
  /// runs synchronously — its open-then-write pairs are dependent).
  uint32_t queue_depth = 1;
  /// Service order when queue_depth > 1.
  sim::SchedPolicy queue_policy = sim::SchedPolicy::kSptf;
  /// Run one untimed pass over the read-probe set (then drain) before
  /// the timed pass, so a sized buffer pool serves the measurement from
  /// cache — the warm-cache regime of the cache ablation. Off (the
  /// default) keeps the paper's cold-probe regime, operation-for-
  /// operation identical to the historical path.
  bool warm_reads = false;
  /// Shared-spindle submission style. On (the default) the engine
  /// leaves submitted operations outstanding on the plane, so this
  /// shard's host-side work (key selection, payload staging) overlaps
  /// other shards' service rounds. Off forces a drain after every
  /// operation — the lockstep A/B baseline that makes the overlap win
  /// measurable in host wall seconds. Ignored on dedicated spindles,
  /// where the synchronous path never waits on a peer. The total work
  /// (operations, bytes) is identical either way, but the per-op
  /// drains fence the plane after every operation, so the simulated
  /// interleave (and with it queue waits and seek interference)
  /// differs from the batched run-ahead submission — compare wall
  /// columns across the A/B, not simulated ones.
  bool overlap = true;
};

/// Throughput measured over an interval of simulated time.
struct ThroughputSample {
  uint64_t bytes = 0;
  uint64_t operations = 0;
  double seconds = 0.0;
  /// Real (host) wall seconds the phase took to execute, measured
  /// around the phase body with std::chrono::steady_clock. Orthogonal
  /// to `seconds`, which is simulated disk time: host wall is how long
  /// the harness itself ran, the number the submission-overlap work
  /// optimizes.
  double host_seconds = 0.0;

  double mb_per_s() const {
    return seconds > 0.0
               ? static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds
               : 0.0;
  }

  /// Folds in a sample measured on a concurrently running shard:
  /// bytes/operations sum, elapsed (simulated and host) is the max
  /// (the shards run in parallel, so the slowest shard bounds the
  /// interval).
  void MergeParallel(const ThroughputSample& other) {
    bytes += other.bytes;
    operations += other.operations;
    seconds = std::max(seconds, other.seconds);
    host_seconds = std::max(host_seconds, other.host_seconds);
  }
};

/// Result of a fused age-then-measure checkpoint (one dispatch, no
/// host-side barrier between the two phases).
struct AgeMeasureSample {
  ThroughputSample aged;
  ThroughputSample read;
};

/// Drives one shard's repository through the paper's workload phases.
class ShardEngine {
 public:
  /// `router` may be null: the engine then owns the whole key space
  /// (the single-shard configuration). The engine's RNG stream is
  /// seeded with `config.seed ^ shard`, so shard 0 draws exactly the
  /// stream the single-threaded runner drew.
  ShardEngine(core::ObjectRepository* repo, WorkloadConfig config,
              uint32_t shard, const core::ShardRouter* router);

  /// Inserts this shard's objects until its target occupancy is
  /// reached. Returns the write throughput during the load.
  Result<ThroughputSample> BulkLoad();

  /// Ages the shard with uniform-random safe-write replacements until
  /// `target_age`; returns the write throughput over the interval.
  Result<ThroughputSample> AgeTo(double target_age);

  /// Reads a uniform-random sample of this shard's objects; returns
  /// read throughput. Does not change the store's state (but does
  /// advance its clock).
  Result<ThroughputSample> MeasureReadThroughput();

  /// AgeTo followed by MeasureReadThroughput as ONE phase dispatch.
  /// Simulated results are identical to the two separate calls (each
  /// sub-phase still settles at its own fence); the point is the host
  /// side: under ShardedRunner a shard that finishes aging early moves
  /// straight into staging its read probes while slower shards are
  /// still aging, instead of idling at a cross-shard barrier.
  Result<AgeMeasureSample> AgeAndMeasure(double target_age);

  /// Current fragmentation across this shard's objects.
  core::FragmentationReport Fragmentation() const;

  double storage_age() const { return age_.age(); }
  uint64_t object_count() const { return keys_.size(); }
  const core::StorageAgeTracker& age_tracker() const { return age_; }
  core::ObjectRepository* repository() { return repo_; }
  const core::ObjectRepository* repository() const { return repo_; }
  /// Keys this shard owns, in load order.
  const std::vector<std::string>& keys() const { return keys_; }
  /// Open handles parallel to keys() (empty when use_handles is off).
  const std::vector<core::ObjectHandle>& handles() const { return handles_; }
  uint32_t shard() const { return shard_; }

 private:
  static std::string KeyFor(uint64_t index);
  /// Next key from the global namespace that this shard owns.
  std::string NextOwnedKey();

  core::ObjectRepository* repo_;
  WorkloadConfig config_;
  uint32_t shard_;
  const core::ShardRouter* router_;
  Rng rng_;
  core::StorageAgeTracker age_;
  std::vector<std::string> keys_;
  std::vector<uint64_t> sizes_;
  /// One open handle per object, for the whole object lifetime — the
  /// hot loops never resolve names. Tickets only; the repository owns
  /// the underlying state, so no teardown is needed here.
  std::vector<core::ObjectHandle> handles_;
  /// Read-probe payload scratch, reused across every Get of a measure
  /// phase (materialize_reads) instead of a per-op allocation.
  std::vector<uint8_t> read_scratch_;
  /// Victim indices of the current probe phase (drawn up front so a
  /// warm pass touches exactly the objects the timed pass reads).
  std::vector<uint64_t> probe_victims_;
  /// Next unconsidered index in the global key namespace.
  uint64_t next_index_ = 0;
  bool loaded_ = false;
};

}  // namespace workload
}  // namespace lor

#endif  // LOREPO_WORKLOAD_SHARD_ENGINE_H_
