// CrashTortureRunner: power-cut torture for the crash-consistency
// subsystem. Each cut cycle arms the sim::FaultInjector with a random
// crash point, drives acked safe-write/delete/get traffic until the
// power dies mid-workload, materializes the post-crash volume image,
// remounts (journal/log replay), runs the repository fsck, and checks
// the surviving state against a deterministic host-side oracle:
//
//   * an object whose commit record reached the platter is never lost;
//   * every surviving payload is byte-identical to SOME version the
//     client was acked (stable pre-window, or acked during the window)
//     — torn writes must be rolled back, never surfaced;
//   * acked-but-rolled-back operations are counted, not failed: they
//     are the data-loss window the recovery-mode ablation measures.
//
// Works over both back ends, any queue depth, batched or per-op journal
// charging (filesystem) and bulk-logged or fully-logged commits
// (database). Deterministic from the seed.

#ifndef LOREPO_WORKLOAD_CRASH_TORTURE_H_
#define LOREPO_WORKLOAD_CRASH_TORTURE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/db_repository.h"
#include "core/fs_repository.h"
#include "core/object_repository.h"
#include "sim/fault_injector.h"
#include "sim/media_fault.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace workload {

/// Which back end the torture drives.
enum class CrashBackend { kFilesystem, kDatabase };

/// Torture configuration.
struct CrashTortureOptions {
  CrashBackend backend = CrashBackend::kFilesystem;
  /// Data volume size (the database adds a log volume of 1/8 this).
  uint64_t volume_bytes = 256 * kMiB;
  /// Mean object size; per-version sizes vary deterministically around
  /// half to all of this.
  uint64_t object_bytes = 256 * kKiB;
  /// Live objects bulk-loaded before the first cut.
  uint64_t objects = 48;
  /// Crash cycles to run.
  uint64_t cuts = 25;
  /// Safe-write replacements per object applied (unarmed) before the
  /// cut phase — the volume-age axis of the recovery benchmark.
  uint64_t aging_rounds = 0;
  /// Submission queue depth for the data volume (1 = synchronous).
  uint32_t queue_depth = 1;
  /// Filesystem: NTFS-like lazy-commit journal batching.
  bool batch_journal_charges = true;
  /// Database: bulk-logged (the paper's mode) vs fully logged commits.
  bool bulk_logged = true;
  /// kRetain verifies payload bytes; kMetadataOnly verifies existence
  /// and per-version sizes only (cheap enough for big sweeps).
  sim::DataMode data_mode = sim::DataMode::kRetain;
  /// Operations issued per armed window before giving up on the trip.
  uint64_t max_ops_per_window = 48;
  uint64_t seed = 1;
  /// Buffer-pool capacity on the data volume. 0 (the default) runs the
  /// historical uncached torture; nonzero exercises the write-back
  /// cache against power cuts (the pool forces write-through while the
  /// injector is armed, so the oracle's durability rules are unchanged).
  uint64_t cache_bytes = 0;

  // -- Media torture (RunMedia) ----------------------------------------
  /// Media-fault cycles to run; each cycle re-arms the model with a
  /// fresh derived seed (new fault map) over the same volume.
  uint64_t media_cycles = 25;
  /// Per-cycle fault mix. The seed field is overridden per cycle; the
  /// rates default to zero, so callers set the mix they want.
  sim::MediaFaultSpec media;
  /// Acked operations driven per armed media cycle.
  uint64_t ops_per_media_cycle = 96;
  /// Run a repairing scrub pass while the cycle's faults are armed.
  bool scrub_between_cycles = true;
};

/// Outcome of one cut cycle.
struct CrashCutResult {
  /// False when the window closed cleanly before the crash point.
  bool tripped = false;
  sim::CrashReport crash;
  core::MountReport mount;
  bool fsck_clean = true;
  uint64_t fsck_issues = 0;
  /// Objects live at the last quiescent point that recovery lost.
  uint64_t committed_lost = 0;
  /// Surviving payloads matching no acked version (torn bytes served).
  uint64_t torn_surfaced = 0;
  /// Window-acked operations whose effect did not survive (the
  /// data-loss window).
  uint64_t acked_rolled_back = 0;
};

/// Outcome of one media-fault cycle.
struct MediaCycleResult {
  uint64_t ops = 0;
  /// Typed Status::IoError reads surfaced to the client (retries
  /// exhausted on a latent sector error).
  uint64_t read_errors = 0;
  /// Typed Status::Corruption reads (checksum caught wrong bytes).
  uint64_t corruptions_detected = 0;
  /// OK-status reads delivering bytes matching no acked version — the
  /// failure the checksums exist to prevent. Must stay zero.
  uint64_t silent_corruptions = 0;
  /// Keys rewritten by the end-of-cycle heal pass.
  uint64_t healed = 0;
  /// Transient LSE regions that recovered under retry this cycle.
  uint64_t transient_clears = 0;
  core::ScrubReport scrub;
  bool fsck_clean = true;
};

/// Aggregates over a RunMedia run.
struct MediaTortureSummary {
  uint64_t cycles_executed = 0;
  uint64_t ops = 0;
  uint64_t read_errors = 0;
  uint64_t corruptions_detected = 0;
  uint64_t silent_corruptions = 0;
  uint64_t scrub_objects_scanned = 0;
  uint64_t scrub_repaired = 0;
  uint64_t scrub_unrecoverable = 0;
  uint64_t healed = 0;
  uint64_t transient_clears = 0;
  uint64_t fsck_dirty_cycles = 0;
  /// Final quarantine size (filesystem clusters / database pages).
  uint64_t quarantined_units = 0;
};

/// Aggregates over a whole torture run.
struct CrashTortureSummary {
  uint64_t cuts_executed = 0;
  uint64_t windows_untripped = 0;
  uint64_t committed_lost = 0;
  uint64_t torn_surfaced = 0;
  uint64_t acked_rolled_back = 0;
  uint64_t fsck_dirty_cuts = 0;
  uint64_t entries_replayed = 0;
  uint64_t ops_rolled_back = 0;
  uint64_t data_loss_bytes = 0;
  double total_recovery_seconds = 0.0;
  double max_recovery_seconds = 0.0;
};

/// Drives one repository through seeded power-cut cycles.
class CrashTortureRunner {
 public:
  explicit CrashTortureRunner(CrashTortureOptions options);
  ~CrashTortureRunner();

  /// Builds the repository, attaches the injector, bulk-loads the
  /// object population, and applies the configured unarmed aging.
  Status Setup();

  /// One arm → workload → cut → mount → fsck → oracle cycle. A window
  /// that never trips is closed cleanly (tripped = false) and does not
  /// count against `cuts`.
  Result<CrashCutResult> RunCut();

  /// Setup + `cuts` tripped cycles (untripped windows retried).
  Result<CrashTortureSummary> Run();

  /// One media cycle: arm a derived fault map → acked traffic under a
  /// byte oracle (an OK read must deliver correct bytes; wrong bytes
  /// without a typed error count as silent corruption) → optional
  /// repairing scrub → disarm and heal every damaged key by rewrite →
  /// fsck (must be clean after the heal) → CheckConsistency. Requires
  /// DataMode::kRetain and a prior Setup with media faults attached
  /// (RunMedia does both).
  Result<MediaCycleResult> RunMediaCycle();

  /// Setup + media attach + `media_cycles` cycles.
  Result<MediaTortureSummary> RunMedia();

  core::ObjectRepository* repository() { return repo_; }
  sim::FaultInjector* injector() { return &injector_; }
  sim::MediaFaultModel* media_model() { return &media_model_; }

 private:
  /// Host-side truth for one key. `version` / `size` / `hash` describe
  /// the newest state known durable at the last quiescent point.
  struct KeyState {
    bool live = false;
    uint64_t version = 0;
    uint64_t size = 0;
    uint64_t hash = 0;
    uint64_t versions_issued = 0;
  };
  /// One acked mutation inside the current armed window.
  struct WindowOp {
    bool deleted = false;
    uint64_t version = 0;
    uint64_t size = 0;
    uint64_t hash = 0;
  };

  std::string KeyName(uint64_t idx) const;
  /// Deterministic per-(key, version) size and payload.
  uint64_t SizeFor(uint64_t idx, uint64_t version) const;
  std::vector<uint8_t> PayloadFor(uint64_t idx, uint64_t version) const;

  /// Issues one random acked operation; records it in `window` when
  /// non-null (armed) or folds it into the stable oracle (aging).
  Status IssueOp(std::unordered_map<uint64_t, std::vector<WindowOp>>* window);

  /// One acked operation under the media oracle (no crash window: state
  /// folds straight into the stable truth; reads are byte-verified).
  Status IssueMediaOp(MediaCycleResult* cycle);

  /// Releases rollback holds after a window that never tripped.
  void EndCrashWindowOnStore();
  /// Folds the acked window into the stable oracle (clean close: a
  /// drained queue makes every acked op durable).
  void FoldWindowIntoStable();
  /// Compares post-recovery state against the oracle for every key
  /// touched in the window, then adopts the observed state.
  Status VerifyAfterCrash(CrashCutResult* cut);

  CrashTortureOptions options_;
  Rng rng_;
  sim::FaultInjector injector_;
  sim::MediaFaultModel media_model_;
  std::unique_ptr<core::FsRepository> fs_;
  std::unique_ptr<core::DbRepository> db_;
  core::ObjectRepository* repo_ = nullptr;
  std::vector<KeyState> keys_;
  std::unordered_map<uint64_t, std::vector<WindowOp>> window_;
  /// Upper bound fed to the crash-point draw (writes per window).
  uint64_t writes_horizon_ = 64;
};

}  // namespace workload
}  // namespace lor

#endif  // LOREPO_WORKLOAD_CRASH_TORTURE_H_
