#include "workload/trace.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace lor {
namespace workload {

namespace {

const char* KindName(TraceOp::Kind kind) {
  switch (kind) {
    case TraceOp::Kind::kPut:
      return "put";
    case TraceOp::Kind::kSafeWrite:
      return "safewrite";
    case TraceOp::Kind::kGet:
      return "get";
    case TraceOp::Kind::kDelete:
      return "delete";
  }
  return "?";
}

}  // namespace

void Trace::Serialize(std::ostream& os) const {
  for (const TraceOp& op : ops_) {
    os << KindName(op.kind) << ' ' << op.key;
    if (op.kind == TraceOp::Kind::kPut ||
        op.kind == TraceOp::Kind::kSafeWrite) {
      os << ' ' << op.size;
    }
    os << '\n';
  }
}

Result<Trace> Trace::Deserialize(std::istream& is) {
  Trace trace;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string verb, key;
    ss >> verb >> key;
    if (verb.empty() || key.empty()) {
      return Status::InvalidArgument("malformed trace line " +
                                     std::to_string(line_no));
    }
    TraceOp op;
    op.key = key;
    if (verb == "put" || verb == "safewrite") {
      op.kind = verb == "put" ? TraceOp::Kind::kPut
                              : TraceOp::Kind::kSafeWrite;
      if (!(ss >> op.size)) {
        return Status::InvalidArgument("missing size at trace line " +
                                       std::to_string(line_no));
      }
    } else if (verb == "get") {
      op.kind = TraceOp::Kind::kGet;
    } else if (verb == "delete") {
      op.kind = TraceOp::Kind::kDelete;
    } else {
      return Status::InvalidArgument("unknown op at trace line " +
                                     std::to_string(line_no));
    }
    trace.Add(std::move(op));
  }
  return trace;
}

Status Trace::Replay(core::ObjectRepository* repo) const {
  for (const TraceOp& op : ops_) {
    switch (op.kind) {
      case TraceOp::Kind::kPut:
        LOR_RETURN_IF_ERROR(repo->Put(op.key, op.size));
        break;
      case TraceOp::Kind::kSafeWrite:
        LOR_RETURN_IF_ERROR(repo->SafeWrite(op.key, op.size));
        break;
      case TraceOp::Kind::kGet:
        LOR_RETURN_IF_ERROR(repo->Get(op.key));
        break;
      case TraceOp::Kind::kDelete:
        LOR_RETURN_IF_ERROR(repo->Delete(op.key));
        break;
    }
  }
  return Status::OK();
}

uint64_t Trace::BytesWritten() const {
  uint64_t total = 0;
  for (const TraceOp& op : ops_) {
    if (op.kind == TraceOp::Kind::kPut ||
        op.kind == TraceOp::Kind::kSafeWrite) {
      total += op.size;
    }
  }
  return total;
}

Status RecordingRepository::Put(const std::string& key, uint64_t size,
                                std::span<const uint8_t> data) {
  Status s = inner_->Put(key, size, data);
  if (s.ok()) trace_->Add({TraceOp::Kind::kPut, key, size});
  return s;
}

Status RecordingRepository::SafeWrite(const std::string& key, uint64_t size,
                                      std::span<const uint8_t> data) {
  Status s = inner_->SafeWrite(key, size, data);
  if (s.ok()) trace_->Add({TraceOp::Kind::kSafeWrite, key, size});
  return s;
}

Status RecordingRepository::Get(const std::string& key,
                                std::vector<uint8_t>* out) {
  Status s = inner_->Get(key, out);
  if (s.ok()) trace_->Add({TraceOp::Kind::kGet, key, 0});
  return s;
}

Status RecordingRepository::Delete(const std::string& key) {
  Status s = inner_->Delete(key);
  if (s.ok()) trace_->Add({TraceOp::Kind::kDelete, key, 0});
  return s;
}

}  // namespace workload
}  // namespace lor
