#include "workload/sharded_runner.h"

#include "alloc/extent.h"

namespace lor {
namespace workload {

ShardedRunner::ShardedRunner(const core::RepositoryFactory& factory,
                             WorkloadConfig config, uint32_t shards)
    : router_(shards == 0 ? 1 : shards), config_(config) {
  const uint32_t n = router_.shard_count();
  // A single shard skips routing entirely (null router): the engine
  // then owns every key without hashing, reproducing GetPutRunner.
  const core::ShardRouter* router = n > 1 ? &router_ : nullptr;
  shards_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Shard shard;
    shard.repo = factory.Create(i, n);
    shard.engine =
        std::make_unique<ShardEngine>(shard.repo.get(), config, i, router);
    shards_.push_back(std::move(shard));
  }
  phase_results_.resize(n);
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ShardedRunner::~ShardedRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardedRunner::WorkerLoop(uint32_t shard) {
  uint64_t seen_generation = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_ready_cv_.wait(lock, [&] {
      return shutdown_ || phase_generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = phase_generation_;
    const auto fn = phase_fn_;  // Copy under the lock; stable all phase.
    lock.unlock();

    Result<AgeMeasureSample> result = fn(shards_[shard].engine.get());

    lock.lock();
    phase_results_[shard].emplace(std::move(result));
    if (--shards_remaining_ == 0) phase_done_cv_.notify_all();
  }
}

Result<AgeMeasureSample> ShardedRunner::RunPhase(
    const std::function<Result<AgeMeasureSample>(ShardEngine*)>& fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    phase_fn_ = fn;
    for (auto& slot : phase_results_) slot.reset();
    shards_remaining_ = shard_count();
    ++phase_generation_;
  }
  work_ready_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    phase_done_cv_.wait(lock, [&] { return shards_remaining_ == 0; });
  }
  // The barrier has passed: every slot is filled and the workers are
  // idle again, so the results can be read without the lock.
  AgeMeasureSample merged;
  for (const auto& slot : phase_results_) {
    if (!slot->ok()) return slot->status();
    merged.aged.MergeParallel((*slot)->aged);
    merged.read.MergeParallel((*slot)->read);
  }
  return merged;
}

Result<ThroughputSample> ShardedRunner::BulkLoad() {
  LOR_ASSIGN_OR_RETURN(
      AgeMeasureSample merged,
      RunPhase([](ShardEngine* engine) -> Result<AgeMeasureSample> {
        AgeMeasureSample out;
        LOR_ASSIGN_OR_RETURN(out.aged, engine->BulkLoad());
        return out;
      }));
  return merged.aged;
}

Result<ThroughputSample> ShardedRunner::AgeTo(double target_age) {
  LOR_ASSIGN_OR_RETURN(
      AgeMeasureSample merged,
      RunPhase([target_age](ShardEngine* engine) -> Result<AgeMeasureSample> {
        AgeMeasureSample out;
        LOR_ASSIGN_OR_RETURN(out.aged, engine->AgeTo(target_age));
        return out;
      }));
  return merged.aged;
}

Result<ThroughputSample> ShardedRunner::MeasureReadThroughput() {
  LOR_ASSIGN_OR_RETURN(
      AgeMeasureSample merged,
      RunPhase([](ShardEngine* engine) -> Result<AgeMeasureSample> {
        AgeMeasureSample out;
        LOR_ASSIGN_OR_RETURN(out.read, engine->MeasureReadThroughput());
        return out;
      }));
  return merged.read;
}

Result<AgeMeasureSample> ShardedRunner::AgeAndMeasure(double target_age) {
  if (!config_.overlap) {
    // A/B baseline: two barrier-separated dispatches, so no shard's
    // host work runs ahead of the slowest ager.
    AgeMeasureSample out;
    LOR_ASSIGN_OR_RETURN(out.aged, AgeTo(target_age));
    LOR_ASSIGN_OR_RETURN(out.read, MeasureReadThroughput());
    return out;
  }
  return RunPhase([target_age](ShardEngine* engine) {
    return engine->AgeAndMeasure(target_age);
  });
}

core::FragmentationReport ShardedRunner::Fragmentation() const {
  core::FragmentationTracker merged;
  for (const Shard& shard : shards_) {
    const core::FragmentationTracker* tracker =
        shard.repo->fragmentation_tracker();
    if (tracker != nullptr) {
      merged.Merge(*tracker);
      continue;
    }
    // Back ends without incremental accounting: fold in a layout walk.
    shard.repo->VisitObjects([&](const std::string& /*key*/,
                                 const alloc::ExtentList& layout,
                                 uint64_t size_bytes) {
      merged.Add(alloc::CountFragments(layout), size_bytes);
    });
  }
  return merged.Snapshot();
}

sim::IoStats ShardedRunner::device_stats() const {
  std::vector<sim::IoStats> parts;
  parts.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    parts.push_back(shard.repo->device_stats());
  }
  return sim::Sum(parts);
}

std::vector<sim::BufferPoolStats> ShardedRunner::shard_cache_stats() const {
  std::vector<sim::BufferPoolStats> parts;
  parts.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    parts.push_back(shard.repo->cache_stats());
  }
  return parts;
}

sim::LatencyRecorder ShardedRunner::latency() const {
  sim::LatencyRecorder merged;
  for (const Shard& shard : shards_) {
    const sim::LatencyRecorder* rec = shard.repo->latency_recorder();
    if (rec != nullptr) merged.Merge(*rec);
  }
  return merged;
}

double ShardedRunner::storage_age() const {
  uint64_t churned = 0;
  uint64_t live = 0;
  for (const Shard& shard : shards_) {
    churned += shard.engine->age_tracker().churned_bytes();
    live += shard.engine->age_tracker().live_bytes();
  }
  if (live == 0) return 0.0;
  return static_cast<double>(churned) / static_cast<double>(live);
}

uint64_t ShardedRunner::object_count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.engine->object_count();
  return total;
}

}  // namespace workload
}  // namespace lor
