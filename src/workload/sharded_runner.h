// ShardedRunner: concurrent multi-client execution over per-shard
// repositories — the production-shaped configuration the paper's
// single-client measurements feed into. N shards are built through a
// core::RepositoryFactory (each a fully independent repository with its
// own simulated volume and clock) and hash-partition the key namespace
// through a core::ShardRouter. Each shard is driven by a ShardEngine on
// its own dedicated OS thread, modelling one client session.
//
// Phases are barrier-synchronized: BulkLoad / AgeTo /
// MeasureReadThroughput dispatch to every shard, wait for all of them,
// and return the merged ThroughputSample (bytes and operations summed;
// elapsed = max over shards, since shard clocks advance in parallel).
// Fragmentation reports merge the per-shard trackers exactly, and
// device_stats() sums per-shard device counters via sim::Sum.
//
// Determinism: shard s seeds its RNG with `seed ^ s` and threads never
// share mutable state, so a given (seed, shards, factory) triple always
// produces identical per-shard key sets, layouts, and merged stats —
// and shards=1 reproduces GetPutRunner exactly.

#ifndef LOREPO_WORKLOAD_SHARDED_RUNNER_H_
#define LOREPO_WORKLOAD_SHARDED_RUNNER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/repository_factory.h"
#include "core/shard_router.h"
#include "sim/io_stats.h"
#include "workload/shard_engine.h"

namespace lor {
namespace workload {

/// Drives N per-shard repositories concurrently through the paper's
/// workload phases and merges their measurements.
class ShardedRunner {
 public:
  /// Builds `shards` repositories via `factory` (shard i of N) and one
  /// engine per shard, then starts the per-shard worker threads.
  ShardedRunner(const core::RepositoryFactory& factory,
                WorkloadConfig config, uint32_t shards);
  ~ShardedRunner();

  ShardedRunner(const ShardedRunner&) = delete;
  ShardedRunner& operator=(const ShardedRunner&) = delete;

  /// Bulk loads every shard to its target occupancy; merged sample.
  Result<ThroughputSample> BulkLoad();

  /// Ages every shard to `target_age`; merged sample.
  Result<ThroughputSample> AgeTo(double target_age);

  /// Read probe on every shard; merged sample.
  Result<ThroughputSample> MeasureReadThroughput();

  /// Age-then-measure as ONE dispatch per shard: a shard that finishes
  /// aging early moves straight into its read probes instead of idling
  /// at a host-side barrier until the slowest shard has aged, so the
  /// checkpoint's host wall time is max(age_i + measure_i) rather than
  /// max(age_i) + max(measure_i). Simulated results are identical to
  /// the separate calls. When the workload config disables overlap,
  /// falls back to exactly those two barrier-separated dispatches (the
  /// A/B baseline).
  Result<AgeMeasureSample> AgeAndMeasure(double target_age);

  /// Volume-wide fragmentation: per-shard trackers merged exactly
  /// (falls back to a layout walk for back ends without a tracker).
  core::FragmentationReport Fragmentation() const;

  /// Aggregate data-volume device activity across all shards.
  sim::IoStats device_stats() const;

  /// Per-shard buffer-pool counters (index = shard) for per-client
  /// hit-rate columns; all-zeros entries when pools are disabled.
  std::vector<sim::BufferPoolStats> shard_cache_stats() const;

  /// Aggregate per-op-class latency histograms: per-shard recorders
  /// merged exactly (per-bucket sums), like device_stats. Snapshot only
  /// at phase barriers — shard recorders are thread-confined.
  sim::LatencyRecorder latency() const;

  /// Aggregate storage age: total churned bytes over total live bytes.
  double storage_age() const;

  /// Total objects across shards.
  uint64_t object_count() const;

  uint32_t shard_count() const {
    return static_cast<uint32_t>(shards_.size());
  }
  const core::ShardRouter& router() const { return router_; }
  ShardEngine* engine(uint32_t shard) { return shards_[shard].engine.get(); }
  const ShardEngine* engine(uint32_t shard) const {
    return shards_[shard].engine.get();
  }
  core::ObjectRepository* repository(uint32_t shard) {
    return shards_[shard].repo.get();
  }

 private:
  struct Shard {
    std::unique_ptr<core::ObjectRepository> repo;
    std::unique_ptr<ShardEngine> engine;
  };

  /// Runs `fn` on every shard's engine (one worker thread per shard),
  /// waits for all shards (the phase barrier), and merges the results:
  /// first error wins (lowest shard index, for determinism), otherwise
  /// each sample merges bytes/ops-summed and elapsed-maxed. Single-
  /// sample phases leave the outcome's other slot empty (a zero sample
  /// merges to zero).
  Result<AgeMeasureSample> RunPhase(
      const std::function<Result<AgeMeasureSample>(ShardEngine*)>& fn);

  void WorkerLoop(uint32_t shard);

  core::ShardRouter router_;
  WorkloadConfig config_;
  std::vector<Shard> shards_;

  // Worker-pool state. `mu_` guards everything below; phase_fn_ is
  // written only between phases (while no worker is running) and read
  // by workers after they observe the generation bump, so the mutex
  // hand-off orders it.
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_ready_cv_;
  std::condition_variable phase_done_cv_;
  uint64_t phase_generation_ = 0;
  uint32_t shards_remaining_ = 0;
  bool shutdown_ = false;
  std::function<Result<AgeMeasureSample>(ShardEngine*)> phase_fn_;
  std::vector<std::optional<Result<AgeMeasureSample>>> phase_results_;
};

}  // namespace workload
}  // namespace lor

#endif  // LOREPO_WORKLOAD_SHARDED_RUNNER_H_
