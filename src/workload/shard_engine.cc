#include "workload/shard_engine.h"

#include <chrono>

namespace lor {
namespace workload {

namespace {

/// Engages the repository's submission queue for one phase and
/// guarantees the return to the synchronous path (draining queued work)
/// on every exit, including error returns.
class QueueDepthWindow {
 public:
  explicit QueueDepthWindow(core::ObjectRepository* repo) : repo_(repo) {}

  Status Enter(uint32_t depth, sim::SchedPolicy policy) {
    if (depth <= 1) return Status::OK();
    LOR_RETURN_IF_ERROR(repo_->SetQueueDepth(depth, policy));
    engaged_ = true;
    return Status::OK();
  }

  /// Explicit close so the phase can observe the drained clock (and any
  /// error) before computing its elapsed interval.
  Status Exit() {
    if (!engaged_) return Status::OK();
    engaged_ = false;
    return repo_->SetQueueDepth(1);
  }

  ~QueueDepthWindow() {
    if (engaged_) {
      Status s = repo_->SetQueueDepth(1);
      (void)s;
    }
  }

 private:
  core::ObjectRepository* repo_;
  bool engaged_ = false;
};

/// Parks the shard at its phase fence exactly once per phase, on every
/// exit path. A shard that errors mid-phase must still arrive at the
/// fence: its shared-spindle peers only re-base their closed loops
/// once every owner has parked. On a dedicated spindle SettleIo is a
/// no-op and the guard costs one virtual call.
class PhaseSettle {
 public:
  explicit PhaseSettle(core::ObjectRepository* repo) : repo_(repo) {}

  /// Explicit close so the phase observes the settled clock (and any
  /// settle error) before computing its elapsed interval.
  Status Close() {
    if (closed_) return Status::OK();
    closed_ = true;
    return repo_->SettleIo();
  }

  ~PhaseSettle() {
    if (!closed_) {
      Status s = repo_->SettleIo();
      (void)s;
    }
  }

 private:
  core::ObjectRepository* repo_;
  bool closed_ = false;
};

double HostSecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ShardEngine::ShardEngine(core::ObjectRepository* repo, WorkloadConfig config,
                         uint32_t shard, const core::ShardRouter* router)
    : repo_(repo),
      config_(config),
      shard_(shard),
      router_(router),
      rng_(config.seed ^ shard) {}

std::string ShardEngine::KeyFor(uint64_t index) {
  // Hot path during bulk load: "obj" + the index zero-padded to at
  // least 8 digits (the former %08llu format), written digit by digit
  // into a right-sized string — no snprintf, no reformat pass.
  int digits = 1;
  for (uint64_t v = index; v >= 10; v /= 10) ++digits;
  const int width = std::max(digits, 8);
  std::string key(3 + static_cast<size_t>(width), '0');
  key[0] = 'o';
  key[1] = 'b';
  key[2] = 'j';
  size_t pos = key.size();
  uint64_t v = index;
  do {
    key[--pos] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  return key;
}

std::string ShardEngine::NextOwnedKey() {
  while (true) {
    std::string key = KeyFor(next_index_++);
    if (router_ == nullptr || router_->ShardOf(key) == shard_) return key;
  }
}

Result<ThroughputSample> ShardEngine::BulkLoad() {
  if (loaded_) return Status::InvalidArgument("bulk load already done");
  const uint64_t target_bytes = static_cast<uint64_t>(
      config_.target_occupancy *
      static_cast<double>(repo_->volume_bytes()));

  // Size the key/size tables for the expected population up front so
  // the load loop never reallocates them.
  const uint64_t expected =
      config_.sizes.mean_bytes() > 0
          ? target_bytes / config_.sizes.mean_bytes() + 1
          : 0;
  keys_.reserve(expected);
  sizes_.reserve(expected);
  if (config_.use_handles) handles_.reserve(expected);

  ThroughputSample sample;
  const auto host_t0 = std::chrono::steady_clock::now();
  PhaseSettle settle(repo_);
  const bool lockstep = !config_.overlap && repo_->shared_spindle();
  const double t0 = repo_->now();
  uint64_t live = 0;
  while (true) {
    const uint64_t size = config_.sizes.Sample(&rng_);
    if (live + size > target_bytes) break;
    const std::string key = NextOwnedKey();
    if (config_.use_handles) {
      // Open once per object lifetime and create through the handle
      // (charging exactly what a name-based Put charges); every aging
      // replacement and read probe below reuses the pinned handle.
      if (repo_->Exists(key)) {
        return Status::AlreadyExists("object exists: " + key);
      }
      LOR_ASSIGN_OR_RETURN(core::ObjectHandle handle,
                           repo_->OpenForWrite(key));
      LOR_RETURN_IF_ERROR(repo_->SafeWrite(handle, size));
      handles_.push_back(std::move(handle));
    } else {
      LOR_RETURN_IF_ERROR(repo_->Put(key, size));
    }
    if (lockstep) LOR_RETURN_IF_ERROR(repo_->DrainIo());
    keys_.push_back(key);
    sizes_.push_back(size);
    live += size;
    age_.RecordBulkLoad(size);
    sample.bytes += size;
    ++sample.operations;
  }
  LOR_RETURN_IF_ERROR(settle.Close());
  sample.seconds = repo_->now() - t0;
  sample.host_seconds = HostSecondsSince(host_t0);
  age_.MarkBulkLoadComplete();
  loaded_ = true;
  if (keys_.empty()) {
    return Status::InvalidArgument(
        "volume too small for even one object at the target occupancy");
  }
  return sample;
}

Result<ThroughputSample> ShardEngine::AgeTo(double target_age) {
  if (!loaded_) return Status::InvalidArgument("bulk load first");
  ThroughputSample sample;
  const auto host_t0 = std::chrono::steady_clock::now();
  // Declared before the window so an error path exits the window
  // (draining queued work) before parking at the phase fence.
  PhaseSettle settle(repo_);
  const bool lockstep = !config_.overlap && repo_->shared_spindle();
  const double t0 = repo_->now();
  QueueDepthWindow window(repo_);
  LOR_RETURN_IF_ERROR(window.Enter(config_.queue_depth, config_.queue_policy));
  while (age_.age() < target_age) {
    const uint64_t victim = rng_.Uniform(keys_.size());
    const uint64_t old_size = sizes_[victim];
    const uint64_t new_size = config_.sizes.Sample(&rng_);
    if (config_.use_handles) {
      LOR_RETURN_IF_ERROR(repo_->SafeWrite(handles_[victim], new_size));
    } else {
      LOR_RETURN_IF_ERROR(repo_->SafeWrite(keys_[victim], new_size));
    }
    if (lockstep) LOR_RETURN_IF_ERROR(repo_->DrainIo());
    sizes_[victim] = new_size;
    age_.RecordReplacement(old_size, new_size);
    sample.bytes += new_size;
    ++sample.operations;
  }
  LOR_RETURN_IF_ERROR(window.Exit());  // Drain before reading the clock.
  LOR_RETURN_IF_ERROR(settle.Close());
  sample.seconds = repo_->now() - t0;
  sample.host_seconds = HostSecondsSince(host_t0);
  return sample;
}

Result<ThroughputSample> ShardEngine::MeasureReadThroughput() {
  if (!loaded_) return Status::InvalidArgument("bulk load first");
  ThroughputSample sample;
  const auto host_t0 = std::chrono::steady_clock::now();
  PhaseSettle settle(repo_);
  const bool lockstep = !config_.overlap && repo_->shared_spindle();
  const uint64_t probes =
      std::min<uint64_t>(config_.read_probe_samples, keys_.size());
  // One scratch buffer for the whole phase (when payloads are wanted
  // at all) — never a per-operation allocation.
  std::vector<uint8_t>* out =
      config_.materialize_reads ? &read_scratch_ : nullptr;
  // Victims are drawn up front — same stream, same order as the
  // historical draw-inside-the-loop — so a warm pass touches exactly
  // the objects the timed pass will read.
  probe_victims_.clear();
  probe_victims_.reserve(probes);
  for (uint64_t i = 0; i < probes; ++i) {
    probe_victims_.push_back(rng_.Uniform(keys_.size()));
  }
  auto read_victims = [&]() -> Status {
    for (const uint64_t victim : probe_victims_) {
      if (config_.use_handles) {
        LOR_RETURN_IF_ERROR(repo_->Get(handles_[victim], out));
      } else {
        LOR_RETURN_IF_ERROR(repo_->Get(keys_[victim], out));
      }
      if (lockstep) LOR_RETURN_IF_ERROR(repo_->DrainIo());
    }
    return Status::OK();
  };
  if (config_.warm_reads) {
    // Untimed warm pass, then a flush+drain so the timed pass starts
    // against a quiet device with clean frames.
    LOR_RETURN_IF_ERROR(read_victims());
    LOR_RETURN_IF_ERROR(repo_->DrainIo());
  }
  const double t0 = repo_->now();
  QueueDepthWindow window(repo_);
  LOR_RETURN_IF_ERROR(window.Enter(config_.queue_depth, config_.queue_policy));
  LOR_RETURN_IF_ERROR(read_victims());
  for (const uint64_t victim : probe_victims_) {
    sample.bytes += sizes_[victim];
    ++sample.operations;
  }
  LOR_RETURN_IF_ERROR(window.Exit());  // Drain before reading the clock.
  LOR_RETURN_IF_ERROR(settle.Close());
  sample.seconds = repo_->now() - t0;
  sample.host_seconds = HostSecondsSince(host_t0);
  return sample;
}

Result<AgeMeasureSample> ShardEngine::AgeAndMeasure(double target_age) {
  AgeMeasureSample out;
  // Each sub-phase settles at its own fence, so the simulated results
  // are exactly those of the two separate calls; fusing them removes
  // only the runner's host-side barrier in between.
  LOR_ASSIGN_OR_RETURN(out.aged, AgeTo(target_age));
  LOR_ASSIGN_OR_RETURN(out.read, MeasureReadThroughput());
  return out;
}

core::FragmentationReport ShardEngine::Fragmentation() const {
  return core::AnalyzeFragmentation(*repo_);
}

}  // namespace workload
}  // namespace lor
