#include "workload/size_distribution.h"

#include <algorithm>
#include <cmath>

#include "util/units.h"

namespace lor {
namespace workload {

SizeDistribution SizeDistribution::Constant(uint64_t mean_bytes) {
  return SizeDistribution(SizeDistributionKind::kConstant, mean_bytes, 0.0);
}

SizeDistribution SizeDistribution::Uniform(uint64_t mean_bytes) {
  return SizeDistribution(SizeDistributionKind::kUniform, mean_bytes, 0.0);
}

SizeDistribution SizeDistribution::LogNormal(uint64_t mean_bytes,
                                             double sigma) {
  return SizeDistribution(SizeDistributionKind::kLogNormal, mean_bytes,
                          sigma);
}

uint64_t SizeDistribution::Sample(Rng* rng) const {
  uint64_t size = mean_bytes_;
  switch (kind_) {
    case SizeDistributionKind::kConstant:
      break;
    case SizeDistributionKind::kUniform:
      size = rng->UniformRange(mean_bytes_ / 2,
                               mean_bytes_ + mean_bytes_ / 2);
      break;
    case SizeDistributionKind::kLogNormal: {
      // Choose mu so the distribution's mean equals mean_bytes_.
      const double mu =
          std::log(static_cast<double>(mean_bytes_)) - sigma_ * sigma_ / 2.0;
      size = static_cast<uint64_t>(rng->NextLogNormal(mu, sigma_));
      break;
    }
  }
  return std::max<uint64_t>(size, kKiB);
}

std::string SizeDistribution::ToString() const {
  switch (kind_) {
    case SizeDistributionKind::kConstant:
      return "constant(" + FormatBytes(mean_bytes_) + ")";
    case SizeDistributionKind::kUniform:
      return "uniform(mean " + FormatBytes(mean_bytes_) + ")";
    case SizeDistributionKind::kLogNormal:
      return "lognormal(mean " + FormatBytes(mean_bytes_) + ")";
  }
  return "unknown";
}

}  // namespace workload
}  // namespace lor
