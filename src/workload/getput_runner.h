// GetPutRunner: drives a repository with the paper's synthetic workload
// (§4.3): bulk load to a target occupancy, then rounds of uniform-random
// safe-write replacements with measurement checkpoints at chosen
// storage ages, plus randomized read-throughput probes.
//
// This is the single-shard instantiation of workload::ShardEngine
// (shard 0 of 1, no router) — operation-for-operation identical to the
// historical single-threaded runner. Multi-client load runs N engines
// concurrently through workload::ShardedRunner.

#ifndef LOREPO_WORKLOAD_GETPUT_RUNNER_H_
#define LOREPO_WORKLOAD_GETPUT_RUNNER_H_

#include "workload/shard_engine.h"

namespace lor {
namespace workload {

/// Drives one repository through the paper's workload.
class GetPutRunner {
 public:
  GetPutRunner(core::ObjectRepository* repo, WorkloadConfig config)
      : engine_(repo, config, /*shard=*/0, /*router=*/nullptr) {}

  /// Inserts objects until the target occupancy is reached. Returns the
  /// write throughput during the load (Fig. 4's "during bulk load").
  Result<ThroughputSample> BulkLoad() { return engine_.BulkLoad(); }

  /// Ages the store with uniform-random safe-write replacements until
  /// `target_age` (safe writes per object); returns the write
  /// throughput over the interval.
  Result<ThroughputSample> AgeTo(double target_age) {
    return engine_.AgeTo(target_age);
  }

  /// Reads a uniform-random sample of objects; returns read throughput.
  /// Does not change the store's state (but does advance its clock).
  Result<ThroughputSample> MeasureReadThroughput() {
    return engine_.MeasureReadThroughput();
  }

  /// Fused age-then-measure checkpoint — same interface as
  /// ShardedRunner (single shard: a plain composition).
  Result<AgeMeasureSample> AgeAndMeasure(double target_age) {
    return engine_.AgeAndMeasure(target_age);
  }

  /// Current fragmentation across all objects.
  core::FragmentationReport Fragmentation() const {
    return engine_.Fragmentation();
  }

  double storage_age() const { return engine_.storage_age(); }
  uint64_t object_count() const { return engine_.object_count(); }
  /// Cumulative device counters (same interface as ShardedRunner, so
  /// the bench harness drives either through one template).
  sim::IoStats device_stats() const {
    return engine_.repository()->device_stats();
  }
  /// Per-shard buffer-pool counters — same interface as ShardedRunner
  /// (a single entry here).
  std::vector<sim::BufferPoolStats> shard_cache_stats() const {
    return {engine_.repository()->cache_stats()};
  }
  /// Cumulative per-op-class latency histograms (empty when the back
  /// end records none) — same interface as ShardedRunner.
  sim::LatencyRecorder latency() const {
    const sim::LatencyRecorder* rec =
        engine_.repository()->latency_recorder();
    return rec != nullptr ? *rec : sim::LatencyRecorder{};
  }
  const core::StorageAgeTracker& age_tracker() const {
    return engine_.age_tracker();
  }
  core::ObjectRepository* repository() { return engine_.repository(); }

 private:
  ShardEngine engine_;
};

}  // namespace workload
}  // namespace lor

#endif  // LOREPO_WORKLOAD_GETPUT_RUNNER_H_
