// GetPutRunner: drives a repository with the paper's synthetic workload
// (§4.3): bulk load to a target occupancy, then rounds of uniform-random
// safe-write replacements with measurement checkpoints at chosen
// storage ages, plus randomized read-throughput probes.

#ifndef LOREPO_WORKLOAD_GETPUT_RUNNER_H_
#define LOREPO_WORKLOAD_GETPUT_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/fragmentation.h"
#include "core/object_repository.h"
#include "core/storage_age.h"
#include "util/random.h"
#include "util/units.h"
#include "workload/size_distribution.h"

namespace lor {
namespace workload {

/// Workload parameters.
struct WorkloadConfig {
  SizeDistribution sizes = SizeDistribution::Constant(10 * kMiB);
  /// Fraction of the volume occupied after bulk load.
  double target_occupancy = 0.5;
  /// Random seed (all randomness derives from it).
  uint64_t seed = 42;
  /// Objects sampled per read-throughput probe (capped at the
  /// population).
  uint64_t read_probe_samples = 256;
};

/// Throughput measured over an interval of simulated time.
struct ThroughputSample {
  uint64_t bytes = 0;
  uint64_t operations = 0;
  double seconds = 0.0;

  double mb_per_s() const {
    return seconds > 0.0
               ? static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds
               : 0.0;
  }
};

/// Drives one repository through the paper's workload.
class GetPutRunner {
 public:
  GetPutRunner(core::ObjectRepository* repo, WorkloadConfig config);

  /// Inserts objects until the target occupancy is reached. Returns the
  /// write throughput during the load (Fig. 4's "during bulk load").
  Result<ThroughputSample> BulkLoad();

  /// Ages the store with uniform-random safe-write replacements until
  /// `target_age` (safe writes per object); returns the write
  /// throughput over the interval.
  Result<ThroughputSample> AgeTo(double target_age);

  /// Reads a uniform-random sample of objects; returns read throughput.
  /// Does not change the store's state (but does advance its clock).
  Result<ThroughputSample> MeasureReadThroughput();

  /// Current fragmentation across all objects.
  core::FragmentationReport Fragmentation() const;

  double storage_age() const { return age_.age(); }
  uint64_t object_count() const { return keys_.size(); }
  const core::StorageAgeTracker& age_tracker() const { return age_; }
  core::ObjectRepository* repository() { return repo_; }

 private:
  std::string KeyFor(uint64_t index) const;

  core::ObjectRepository* repo_;
  WorkloadConfig config_;
  Rng rng_;
  core::StorageAgeTracker age_;
  std::vector<std::string> keys_;
  std::vector<uint64_t> sizes_;
  bool loaded_ = false;
};

}  // namespace workload
}  // namespace lor

#endif  // LOREPO_WORKLOAD_GETPUT_RUNNER_H_
