#include "core/db_repository.h"

#include <algorithm>
#include <cassert>

#include "sim/fault_injector.h"
#include "util/fnv.h"

namespace lor {
namespace core {

DbRepository::DbRepository(DbRepositoryConfig config)
    : config_(std::move(config)) {
  if (config_.spindle != nullptr) {
    // Shared spindle for the data volume; the log device below stays
    // dedicated (see the config comment). Format charges run
    // synchronously on the hub clock — construction is serial, before
    // any plane traffic — and the scheduler is ported afterwards.
    data_device_ = config_.spindle->CreateOwnerDevice(config_.spindle_owner);
    assert(data_device_->capacity() == config_.volume_bytes &&
           "plane region must match volume_bytes");
  } else {
    data_device_ = std::make_unique<sim::BlockDevice>(
        config_.disk.WithCapacity(config_.volume_bytes), config_.data_mode);
  }
  pool_ = std::make_unique<sim::BufferPool>(data_device_.get(), config_.cache);
  data_device_->AttachBufferPool(pool_.get());
  if (config_.log_volume_bytes > 0) {
    log_device_ = std::make_unique<sim::BlockDevice>(
        config_.disk.WithCapacity(config_.log_volume_bytes),
        sim::DataMode::kMetadataOnly);
  }
  store_ = std::make_unique<db::BlobStore>(data_device_.get(),
                                           log_device_.get(), config_.store);
  scheduler_ =
      std::make_unique<sim::IoScheduler>(data_device_.get(), &latency_);
  data_device_->AttachScheduler(scheduler_.get());
  if (config_.spindle != nullptr) {
    scheduler_->AttachSpindle(config_.spindle.get(), config_.spindle_owner);
  }
}

Status DbRepository::SetQueueDepth(uint32_t depth, sim::SchedPolicy policy) {
  if (depth == 0) {
    return Status::InvalidArgument("queue depth must be at least 1");
  }
  if (depth == 1) return scheduler_->Disengage();
  return scheduler_->Engage(depth, policy);
}

Status DbRepository::DrainIo() {
  // Dirty cached frames count as in-flight work: flush them onto the
  // queue before draining it (see FsRepository::DrainIo, including the
  // shared-spindle op-scope rationale).
  {
    sim::OpScope scope(scheduler_->port_mode() ? scheduler_.get() : nullptr,
                       sim::OpClass::kControl);
    LOR_RETURN_IF_ERROR(pool_->FlushAll());
  }
  scheduler_->Drain();
  return Status::OK();
}

Status DbRepository::SettleIo() {
  // See FsRepository::SettleIo — no drain and no cache flush on a
  // dedicated spindle, a phase fence (and nothing else) on a shared
  // one.
  if (!scheduler_->port_mode()) return Status::OK();
  scheduler_->SettlePhase();
  return Status::OK();
}

bool DbRepository::shared_spindle() const { return scheduler_->port_mode(); }

Status DbRepository::FlushCache() {
  sim::OpScope scope(scheduler_->port_mode() ? scheduler_.get() : nullptr,
                     sim::OpClass::kControl);
  return pool_->FlushAll();
}

// -- Handle surface ----------------------------------------------------

Result<ObjectHandle> DbRepository::Open(const std::string& key) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kControl);
  LOR_ASSIGN_OR_RETURN(db::BlobHandle bh, store_->OpenRead(key));
  return MakeHandle(key, /*writable=*/false, bh.slot, bh.gen);
}

Result<ObjectHandle> DbRepository::OpenForWrite(const std::string& key) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kControl);
  LOR_ASSIGN_OR_RETURN(db::BlobHandle bh, store_->OpenWrite(key));
  return MakeHandle(key, /*writable=*/true, bh.slot, bh.gen);
}

Status DbRepository::Release(ObjectHandle* handle) {
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kControl);
  LOR_RETURN_IF_ERROR(ValidateHandle(*handle));
  LOR_RETURN_IF_ERROR(store_->Close({handle->slot_, handle->gen_}));
  handle->owner_ = nullptr;
  handle->gen_ = 0;
  return Status::OK();
}

Status DbRepository::Get(const ObjectHandle& handle,
                         std::vector<uint8_t>* out) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kGet);
  LOR_RETURN_IF_ERROR(ValidateHandle(handle));
  return store_->Get(db::BlobHandle{handle.slot_, handle.gen_}, out);
}

Status DbRepository::SafeWrite(const ObjectHandle& handle, uint64_t size,
                               std::span<const uint8_t> data) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kSafeWrite);
  LOR_RETURN_IF_ERROR(ValidateHandle(handle, /*need_write=*/true));
  return store_->SafeWrite(db::BlobHandle{handle.slot_, handle.gen_}, size,
                           data);
}

Status DbRepository::Delete(ObjectHandle* handle) {
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kDelete);
  LOR_RETURN_IF_ERROR(ValidateHandle(*handle, /*need_write=*/true));
  LOR_RETURN_IF_ERROR(
      store_->Delete(db::BlobHandle{handle->slot_, handle->gen_}));
  handle->owner_ = nullptr;
  handle->gen_ = 0;
  return Status::OK();
}

Result<alloc::ExtentList> DbRepository::ScaleLayout(
    Result<db::BlobLayout> layout) const {
  if (!layout.ok()) return layout.status();
  alloc::ExtentList bytes;
  bytes.reserve(layout->data_runs.size());
  alloc::AppendScaledBytes(layout->data_runs,
                           store_->page_file().page_bytes(), &bytes);
  return bytes;
}

Result<alloc::ExtentList> DbRepository::GetLayout(
    const ObjectHandle& handle) const {
  LOR_RETURN_IF_ERROR(ValidateHandle(handle));
  return ScaleLayout(
      store_->GetLayout(db::BlobHandle{handle.slot_, handle.gen_}));
}

Result<uint64_t> DbRepository::GetSize(const ObjectHandle& handle) const {
  LOR_RETURN_IF_ERROR(ValidateHandle(handle));
  return store_->GetSize(db::BlobHandle{handle.slot_, handle.gen_});
}

// -- Name surface: thin open–op–release wrappers -----------------------

Status DbRepository::Put(const std::string& key, uint64_t size,
                         std::span<const uint8_t> data) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kPut);
  LOR_ASSIGN_OR_RETURN(db::BlobHandle h, store_->OpenWrite(key));
  auto bound = store_->HandleBound(h);
  if (!bound.ok() || *bound) {
    Status c = store_->Close(h);
    (void)c;
    if (!bound.ok()) return bound.status();
    return Status::AlreadyExists("object exists: " + key);
  }
  Status s = store_->SafeWrite(h, size, data);
  Status c = store_->Close(h);
  return s.ok() ? c : s;
}

Status DbRepository::SafeWrite(const std::string& key, uint64_t size,
                               std::span<const uint8_t> data) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kSafeWrite);
  LOR_ASSIGN_OR_RETURN(db::BlobHandle h, store_->OpenWrite(key));
  Status s = store_->SafeWrite(h, size, data);
  Status c = store_->Close(h);
  return s.ok() ? c : s;
}

Status DbRepository::Get(const std::string& key, std::vector<uint8_t>* out) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kGet);
  // The store's per-key read already pays the query + row lookup every
  // call — no handle-table entry needed for a single-shot read.
  return store_->Get(key, out);
}

Status DbRepository::Delete(const std::string& key) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kDelete);
  return store_->Delete(key);
}

bool DbRepository::Exists(const std::string& key) const {
  return store_->Exists(key);
}

Result<alloc::ExtentList> DbRepository::GetLayout(
    const std::string& key) const {
  return ScaleLayout(store_->GetLayout(key));
}

Result<uint64_t> DbRepository::GetSize(const std::string& key) const {
  return store_->GetSize(key);
}

std::vector<std::string> DbRepository::ListKeys() const {
  return store_->ListKeys();
}

void DbRepository::VisitObjects(
    const std::function<void(const std::string& key,
                             const alloc::ExtentList& layout,
                             uint64_t size_bytes)>& visit) const {
  const uint64_t unit = store_->page_file().page_bytes();
  alloc::ExtentList bytes;  // Scratch reused across objects.
  store_->VisitBlobs([&](const std::string& key, const db::BlobLayout& layout) {
    bytes.clear();
    alloc::AppendScaledBytes(layout.data_runs, unit, &bytes);
    visit(key, bytes, layout.data_bytes);
  });
}

const FragmentationTracker* DbRepository::fragmentation_tracker() const {
  return &store_->fragmentation_tracker();
}

uint64_t DbRepository::object_count() const {
  return store_->stats().object_count;
}

uint64_t DbRepository::live_bytes() const {
  return store_->stats().live_bytes;
}

uint64_t DbRepository::volume_bytes() const {
  return data_device_->capacity();
}

uint64_t DbRepository::free_bytes() const {
  // Unused space = free extents inside the file plus the unallocated
  // remainder of the volume.
  return store_->FreeBytes() +
         (data_device_->capacity() - store_->page_file().file_bytes());
}

double DbRepository::now() const { return scheduler_->Now(); }

sim::IoStats DbRepository::device_stats() const {
  return data_device_->stats();
}

Status DbRepository::CheckConsistency() const {
  return store_->CheckConsistency();
}

// -- Crash recovery & verification -------------------------------------

Result<MountReport> DbRepository::Mount() {
  if (scheduler_->port_mode()) {
    return Status::NotSupported(
        "crash simulation is per-spindle: Mount is unavailable in "
        "shared-spindle mode");
  }
  const double t0 = data_device_->clock().now();
  sim::FaultInjector* injector = data_device_->fault_injector();
  if (injector != nullptr && injector->tripped()) {
    // The power cut killed whatever the scheduler still held; the queue
    // is dead, not drainable, and both spindles restart cold.
    scheduler_->Abandon();
    data_device_->NotePowerCycle();
    if (log_device_ != nullptr) log_device_->NotePowerCycle();
  } else {
    // Clean remount: dirty frames reach the platter before the cache
    // forgets them. After a crash they are (correctly) just lost.
    LOR_RETURN_IF_ERROR(pool_->FlushAll());
  }
  // DRAM died with the power: mount starts cold.
  pool_->Reset();
  LOR_ASSIGN_OR_RETURN(db::BlobRecoveryStats rs, store_->Recover());
  MountReport report;
  report.entries_scanned = rs.entries_scanned;
  report.ops_redone = rs.ops_redone;
  report.ops_rolled_back = rs.ops_rolled_back + rs.torn_rolled_back;
  report.lost_objects = rs.lost_objects;
  report.data_loss_bytes = rs.data_loss_bytes;
  report.recovery_seconds = data_device_->clock().now() - t0;
  return report;
}

Result<FsckReport> DbRepository::Fsck() {
  LOR_ASSIGN_OR_RETURN(FsckReport report, ObjectRepository::Fsck());

  // Exact page accounting: every page the LOB allocation unit has
  // handed out must be referenced by exactly one live layout (data or
  // pointer page). Held rollback pre-images or forgotten frees surface
  // as leaks; a layout referencing unallocated pages is the double-
  // allocation hazard.
  uint64_t referenced = 0;
  std::vector<std::pair<std::string, uint64_t>> hashed;
  const bool retain = data_device_->data_mode() == sim::DataMode::kRetain;
  store_->VisitBlobs([&](const std::string& key,
                         const db::BlobLayout& layout) {
    referenced += layout.data_page_count() + layout.pointer_pages.size();
    if (retain && layout.hash_valid && layout.data_bytes > 0) {
      hashed.emplace_back(key, layout.payload_hash);
    }
  });
  const uint64_t allocated = store_->lob_unit().allocated_pages();
  if (allocated > referenced) {
    report.issues.push_back(
        {FsckIssue::Kind::kLeakedExtent,
         std::to_string(allocated - referenced) +
             " allocated LOB pages referenced by no live object"});
  } else if (referenced > allocated) {
    report.issues.push_back(
        {FsckIssue::Kind::kDoubleAllocated,
         std::to_string(referenced - allocated) +
             " live pages beyond the allocation unit's count"});
  }

  // Payload verification: re-read every object written with real bytes
  // and compare against the hash recorded at write time.
  for (const auto& [key, expected] : hashed) {
    std::vector<uint8_t> payload;
    Status read = store_->Get(key, &payload);
    if (!read.ok()) {
      report.issues.push_back({FsckIssue::Kind::kLostObject,
                               key + ": " + read.message()});
      continue;
    }
    ++report.payloads_hashed;
    if (Fnv(payload) != expected) {
      report.issues.push_back({FsckIssue::Kind::kTornPayload,
                               key + ": stored bytes fail recorded hash"});
    }
  }
  report.quarantined_units = store_->quarantined_page_count();
  return report;
}

Result<ScrubReport> DbRepository::Scrub(const ScrubOptions& options) {
  ScrubReport report;
  std::vector<std::string> keys = store_->ListKeys();
  std::sort(keys.begin(), keys.end());
  if (keys.empty()) {
    scrub_cursor_.clear();
    return report;
  }
  size_t start = 0;
  if (!scrub_cursor_.empty()) {
    const auto it =
        std::upper_bound(keys.begin(), keys.end(), scrub_cursor_);
    start = static_cast<size_t>(it - keys.begin()) % keys.size();
  }
  const uint64_t budget =
      options.max_objects == 0 ? keys.size() : options.max_objects;
  const sim::MediaFaultModel* media = data_device_->media_faults();
  std::vector<uint8_t> payload;
  for (uint64_t i = 0; i < budget && i < keys.size(); ++i) {
    const std::string& key = keys[(start + i) % keys.size()];
    scrub_cursor_ = key;
    const uint64_t errors_before =
        media != nullptr ? media->stats().read_errors : 0;
    const Status read = Get(key, &payload);  // Charged like a client read.
    ++report.objects_scanned;
    if (read.ok()) {
      report.bytes_scanned += payload.size();
      // The read succeeded but needed media retries: a transient latent
      // sector error lives under this blob. Repair by supersession —
      // safe-write the payload onto fresh pages and retire the suspect
      // ones via the quarantine divert at free time.
      if (options.repair && media != nullptr &&
          media->stats().read_errors > errors_before) {
        sim::OpScope scope(scheduler_.get(), sim::OpClass::kControl);
        const uint64_t quarantined_before = store_->quarantined_page_count();
        if (store_->MarkPendingBad(key).ok()) {
          const Status moved =
              store_->Replace(key, payload.size(), payload);
          if (moved.ok()) ++report.repaired;
        }
        report.quarantined_units +=
            store_->quarantined_page_count() - quarantined_before;
      }
    } else if (read.IsNotFound()) {
      continue;  // Deleted since the listing: not a media problem.
    } else if (read.IsCorruption()) {
      ++report.corruptions_detected;
      ++report.unrecoverable;
    } else if (read.IsIoError()) {
      ++report.read_errors;
      ++report.unrecoverable;
    } else {
      return read;  // The scrubber itself failed; surface it.
    }
    if (options.max_bytes != 0 && report.bytes_scanned >= options.max_bytes) {
      break;
    }
  }
  return report;
}

}  // namespace core
}  // namespace lor
