#include "core/db_repository.h"

namespace lor {
namespace core {

DbRepository::DbRepository(DbRepositoryConfig config)
    : config_(std::move(config)) {
  data_device_ = std::make_unique<sim::BlockDevice>(
      config_.disk.WithCapacity(config_.volume_bytes), config_.data_mode);
  if (config_.log_volume_bytes > 0) {
    log_device_ = std::make_unique<sim::BlockDevice>(
        config_.disk.WithCapacity(config_.log_volume_bytes),
        sim::DataMode::kMetadataOnly);
  }
  store_ = std::make_unique<db::BlobStore>(data_device_.get(),
                                           log_device_.get(), config_.store);
}

Status DbRepository::Put(const std::string& key, uint64_t size,
                         std::span<const uint8_t> data) {
  return store_->Put(key, size, data);
}

Status DbRepository::SafeWrite(const std::string& key, uint64_t size,
                               std::span<const uint8_t> data) {
  if (store_->Exists(key)) return store_->Replace(key, size, data);
  return store_->Put(key, size, data);
}

Status DbRepository::Get(const std::string& key, std::vector<uint8_t>* out) {
  return store_->Get(key, out);
}

Status DbRepository::Delete(const std::string& key) {
  return store_->Delete(key);
}

bool DbRepository::Exists(const std::string& key) const {
  return store_->Exists(key);
}

Result<alloc::ExtentList> DbRepository::GetLayout(
    const std::string& key) const {
  auto layout = store_->GetLayout(key);
  if (!layout.ok()) return layout.status();
  alloc::ExtentList bytes;
  bytes.reserve(layout->data_runs.size());
  alloc::AppendScaledBytes(layout->data_runs,
                           store_->page_file().page_bytes(), &bytes);
  return bytes;
}

Result<uint64_t> DbRepository::GetSize(const std::string& key) const {
  return store_->GetSize(key);
}

std::vector<std::string> DbRepository::ListKeys() const {
  return store_->ListKeys();
}

void DbRepository::VisitObjects(
    const std::function<void(const std::string& key,
                             const alloc::ExtentList& layout,
                             uint64_t size_bytes)>& visit) const {
  const uint64_t unit = store_->page_file().page_bytes();
  alloc::ExtentList bytes;  // Scratch reused across objects.
  store_->VisitBlobs([&](const std::string& key, const db::BlobLayout& layout) {
    bytes.clear();
    alloc::AppendScaledBytes(layout.data_runs, unit, &bytes);
    visit(key, bytes, layout.data_bytes);
  });
}

const FragmentationTracker* DbRepository::fragmentation_tracker() const {
  return &store_->fragmentation_tracker();
}

uint64_t DbRepository::object_count() const {
  return store_->stats().object_count;
}

uint64_t DbRepository::live_bytes() const {
  return store_->stats().live_bytes;
}

uint64_t DbRepository::volume_bytes() const {
  return data_device_->capacity();
}

uint64_t DbRepository::free_bytes() const {
  // Unused space = free extents inside the file plus the unallocated
  // remainder of the volume.
  return store_->FreeBytes() +
         (data_device_->capacity() - store_->page_file().file_bytes());
}

double DbRepository::now() const { return data_device_->clock().now(); }

sim::IoStats DbRepository::device_stats() const {
  return data_device_->stats();
}

Status DbRepository::CheckConsistency() const {
  return store_->CheckConsistency();
}

}  // namespace core
}  // namespace lor
