#include "core/fs_repository.h"

#include <algorithm>
#include <cassert>

#include "sim/fault_injector.h"
#include "util/fnv.h"

namespace lor {
namespace core {

namespace {

/// Opens a journal batch for the enclosing scope: the whole temp-create
/// / stream / fsync / replace sequence commits as one lazy-writer
/// record (including the error paths).
struct JournalBatch {
  explicit JournalBatch(fs::FileStore* s) : store(s) {
    store->BeginJournalBatch();
  }
  ~JournalBatch() { store->EndJournalBatch(); }
  fs::FileStore* store;
};

}  // namespace

FsRepository::FsRepository(FsRepositoryConfig config)
    : FsRepository(std::move(config), nullptr) {}

FsRepository::FsRepository(FsRepositoryConfig config,
                           std::unique_ptr<alloc::ExtentAllocator> allocator)
    : config_(std::move(config)) {
  if (config_.spindle != nullptr) {
    // Shared spindle: the data volume is this owner's region of the
    // plane's hub disk. Format below still charges synchronously on
    // the hub clock — repositories construct serially, before any
    // plane traffic — and the scheduler is ported only afterwards.
    device_ = config_.spindle->CreateOwnerDevice(config_.spindle_owner);
    assert(device_->capacity() == config_.volume_bytes &&
           "plane region must match volume_bytes");
  } else {
    device_ = std::make_unique<sim::BlockDevice>(
        config_.disk.WithCapacity(config_.volume_bytes), config_.data_mode);
  }
  pool_ = std::make_unique<sim::BufferPool>(device_.get(), config_.cache);
  device_->AttachBufferPool(pool_.get());
  store_ = std::make_unique<fs::FileStore>(device_.get(), config_.store,
                                           std::move(allocator));
  scheduler_ = std::make_unique<sim::IoScheduler>(device_.get(), &latency_);
  device_->AttachScheduler(scheduler_.get());
  if (config_.spindle != nullptr) {
    scheduler_->AttachSpindle(config_.spindle.get(), config_.spindle_owner);
  }
}

Status FsRepository::SetQueueDepth(uint32_t depth, sim::SchedPolicy policy) {
  if (depth == 0) {
    return Status::InvalidArgument("queue depth must be at least 1");
  }
  if (depth == 1) return scheduler_->Disengage();
  return scheduler_->Engage(depth, policy);
}

Status FsRepository::DrainIo() {
  // Dirty cached frames are in-flight work too: push them onto the
  // queue, then drain it. CrashTortureRunner drains before arming the
  // injector, so the loss window never silently includes lazy
  // write-back state. In shared-spindle mode the flush must ride an op
  // scope so its charges queue on the plane instead of racing the hub
  // clock (Drain itself fences outside the scope).
  {
    sim::OpScope scope(scheduler_->port_mode() ? scheduler_.get() : nullptr,
                       sim::OpClass::kControl);
    LOR_RETURN_IF_ERROR(pool_->FlushAll());
  }
  scheduler_->Drain();
  return Status::OK();
}

Status FsRepository::SettleIo() {
  // Dedicated spindle: a phase that engaged the queue already drained
  // through SetQueueDepth(1), and a synchronous phase has nothing
  // outstanding — nothing to settle, and deliberately no cache flush
  // (phase boundaries never flushed historically).
  if (!scheduler_->port_mode()) return Status::OK();
  scheduler_->SettlePhase();
  return Status::OK();
}

bool FsRepository::shared_spindle() const { return scheduler_->port_mode(); }

Status FsRepository::FlushCache() {
  sim::OpScope scope(scheduler_->port_mode() ? scheduler_.get() : nullptr,
                     sim::OpClass::kControl);
  return pool_->FlushAll();
}

std::string FsRepository::NextTempName(const std::string& key) {
  return key + ".tmp" + std::to_string(temp_counter_++);
}

// -- Handle surface ----------------------------------------------------

Result<ObjectHandle> FsRepository::Open(const std::string& key) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kControl);
  LOR_ASSIGN_OR_RETURN(fs::FileHandle fh, store_->OpenRead(key));
  return MakeHandle(key, /*writable=*/false, fh.slot, fh.gen);
}

Result<ObjectHandle> FsRepository::OpenForWrite(const std::string& key) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kControl);
  LOR_ASSIGN_OR_RETURN(fs::FileHandle fh, store_->OpenWrite(key));
  return MakeHandle(key, /*writable=*/true, fh.slot, fh.gen);
}

Status FsRepository::Release(ObjectHandle* handle) {
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kControl);
  LOR_RETURN_IF_ERROR(ValidateHandle(*handle));
  LOR_RETURN_IF_ERROR(store_->Close({handle->slot_, handle->gen_}));
  handle->owner_ = nullptr;
  handle->gen_ = 0;
  return Status::OK();
}

Status FsRepository::Get(const ObjectHandle& handle,
                         std::vector<uint8_t>* out) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kGet);
  LOR_RETURN_IF_ERROR(ValidateHandle(handle));
  return store_->ReadAll(fs::FileHandle{handle.slot_, handle.gen_}, out);
}

Status FsRepository::SafeWriteThrough(fs::FileHandle target,
                                      const std::string& key, uint64_t size,
                                      std::span<const uint8_t> data) {
  if (!data.empty() && data.size() != size) {
    return Status::InvalidArgument("data size does not match object size");
  }
  // Validate the target ticket *before* the temp cycle: a stale handle
  // (e.g. the object was deleted by name) must fail here, not after a
  // fully streamed temp file would be left live with no owner.
  LOR_RETURN_IF_ERROR(store_->HandleBound(target).status());
  JournalBatch batch(store_.get());
  LOR_ASSIGN_OR_RETURN(fs::FileHandle temp,
                       store_->CreateOpen(NextTempName(key)));
  if (config_.preallocate_on_safe_write) {
    Status s = store_->Preallocate(temp, size);
    if (!s.ok()) {
      Status undo = store_->Delete(temp);
      (void)undo;
      return s;
    }
  }
  Status s = store_->AppendStream(temp, size, config_.write_request_bytes,
                                  data);
  if (!s.ok()) {
    Status undo = store_->Delete(temp);
    (void)undo;
    return s;
  }
  LOR_RETURN_IF_ERROR(store_->Fsync(temp));
  return store_->Replace(temp, target);
}

Status FsRepository::SafeWrite(const ObjectHandle& handle, uint64_t size,
                               std::span<const uint8_t> data) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kSafeWrite);
  LOR_RETURN_IF_ERROR(ValidateHandle(handle, /*need_write=*/true));
  return SafeWriteThrough(fs::FileHandle{handle.slot_, handle.gen_},
                          handle.key_, size, data);
}

Status FsRepository::Delete(ObjectHandle* handle) {
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kDelete);
  LOR_RETURN_IF_ERROR(ValidateHandle(*handle, /*need_write=*/true));
  LOR_RETURN_IF_ERROR(
      store_->Delete(fs::FileHandle{handle->slot_, handle->gen_}));
  handle->owner_ = nullptr;
  handle->gen_ = 0;
  return Status::OK();
}

Result<alloc::ExtentList> FsRepository::ScaleExtents(
    Result<alloc::ExtentList> extents) const {
  if (!extents.ok()) return extents.status();
  alloc::ExtentList bytes;
  bytes.reserve(extents->size());
  alloc::AppendScaledBytes(*extents, config_.store.cluster_bytes, &bytes);
  return bytes;
}

Result<alloc::ExtentList> FsRepository::GetLayout(
    const ObjectHandle& handle) const {
  LOR_RETURN_IF_ERROR(ValidateHandle(handle));
  return ScaleExtents(
      store_->GetExtents(fs::FileHandle{handle.slot_, handle.gen_}));
}

Result<uint64_t> FsRepository::GetSize(const ObjectHandle& handle) const {
  LOR_RETURN_IF_ERROR(ValidateHandle(handle));
  return store_->GetSize(fs::FileHandle{handle.slot_, handle.gen_});
}

// -- Name surface: thin open–op–release wrappers -----------------------

Status FsRepository::Put(const std::string& key, uint64_t size,
                         std::span<const uint8_t> data) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kPut);
  LOR_ASSIGN_OR_RETURN(fs::FileHandle h, store_->OpenWrite(key));
  auto bound = store_->HandleBound(h);
  if (!bound.ok() || *bound) {
    Status c = store_->Close(h);
    (void)c;
    if (!bound.ok()) return bound.status();
    return Status::AlreadyExists("object exists: " + key);
  }
  Status s = SafeWriteThrough(h, key, size, data);
  Status c = store_->Close(h);
  return s.ok() ? c : s;
}

Status FsRepository::SafeWrite(const std::string& key, uint64_t size,
                               std::span<const uint8_t> data) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kSafeWrite);
  LOR_ASSIGN_OR_RETURN(fs::FileHandle h, store_->OpenWrite(key));
  Status s = SafeWriteThrough(h, key, size, data);
  Status c = store_->Close(h);
  return s.ok() ? c : s;
}

Status FsRepository::Get(const std::string& key, std::vector<uint8_t>* out) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kGet);
  // The store's name-based read is already the open–read–close session
  // (open CPU + MFT read, data, close CPU) — no handle-table entry
  // needed for a single-shot read.
  return store_->ReadAll(key, out);
}

Status FsRepository::Delete(const std::string& key) {
  sim::OpScope scope(scheduler_.get(), sim::OpClass::kDelete);
  return store_->Delete(key);
}

bool FsRepository::Exists(const std::string& key) const {
  return store_->Exists(key);
}

Result<alloc::ExtentList> FsRepository::GetLayout(
    const std::string& key) const {
  return ScaleExtents(store_->GetExtents(key));
}

Result<uint64_t> FsRepository::GetSize(const std::string& key) const {
  return store_->GetSize(key);
}

std::vector<std::string> FsRepository::ListKeys() const {
  return store_->ListFiles();
}

void FsRepository::VisitObjects(
    const std::function<void(const std::string& key,
                             const alloc::ExtentList& layout,
                             uint64_t size_bytes)>& visit) const {
  const uint64_t unit = config_.store.cluster_bytes;
  alloc::ExtentList bytes;  // Scratch reused across files.
  store_->VisitFiles([&](const std::string& name, const fs::FileInfo& info) {
    bytes.clear();
    alloc::AppendScaledBytes(info.extents, unit, &bytes);
    visit(name, bytes, info.size_bytes);
  });
}

const FragmentationTracker* FsRepository::fragmentation_tracker() const {
  return &store_->fragmentation_tracker();
}

uint64_t FsRepository::object_count() const {
  return store_->stats().file_count;
}

uint64_t FsRepository::live_bytes() const {
  return store_->stats().live_bytes;
}

uint64_t FsRepository::volume_bytes() const { return device_->capacity(); }

uint64_t FsRepository::free_bytes() const { return store_->FreeBytes(); }

double FsRepository::now() const { return scheduler_->Now(); }

sim::IoStats FsRepository::device_stats() const { return device_->stats(); }

Status FsRepository::CheckConsistency() const {
  return store_->CheckConsistency();
}

Result<MountReport> FsRepository::Mount() {
  if (scheduler_->port_mode()) {
    return Status::NotSupported(
        "crash simulation is per-spindle: Mount is unavailable in "
        "shared-spindle mode");
  }
  const double t0 = device_->clock().now();
  const sim::FaultInjector* injector = device_->fault_injector();
  if (injector != nullptr && injector->tripped()) {
    // The submission queue died with the power: its uncharged work
    // never happened, and the head position is unknown after restart.
    scheduler_->Abandon();
    device_->NotePowerCycle();
  } else {
    // Clean remount: dirty frames reach the platter before the cache
    // forgets them. After a crash they are (correctly) just lost.
    LOR_RETURN_IF_ERROR(pool_->FlushAll());
  }
  // DRAM died with the power too: mount starts cold.
  pool_->Reset();
  LOR_ASSIGN_OR_RETURN(fs::RecoveryStats rs, store_->Recover(IsTempName));
  MountReport report;
  report.entries_scanned = rs.entries_scanned;
  report.ops_redone = rs.ops_redone;
  report.ops_rolled_back = rs.ops_rolled_back;
  report.orphan_temps_discarded = rs.orphan_temps_discarded;
  report.data_loss_bytes = rs.data_loss_bytes;
  report.recovery_seconds = device_->clock().now() - t0;
  return report;
}

Result<FsckReport> FsRepository::Fsck() {
  LOR_ASSIGN_OR_RETURN(FsckReport report, ObjectRepository::Fsck());
  // Typed allocator accounting: every data-zone cluster is owned by a
  // live file, an index buffer, or the allocator (free or deferred).
  uint64_t owned = store_->index_buffer_clusters();
  store_->VisitFiles([&](const std::string&, const fs::FileInfo& info) {
    owned += info.allocated_clusters;
  });
  const uint64_t data_zone =
      store_->total_clusters() - store_->mft_clusters();
  const uint64_t unused = store_->allocator()->total_unused_clusters();
  // Clusters the scrubber retired after media errors: owned by nobody,
  // deliberately — reported, but not an issue.
  report.quarantined_units = store_->quarantined_cluster_count();
  const uint64_t accounted = owned + unused + report.quarantined_units;
  if (accounted < data_zone) {
    report.issues.push_back(
        {FsckIssue::Kind::kLeakedExtent,
         std::to_string(data_zone - accounted) +
             " clusters owned by no live object"});
  } else if (accounted > data_zone) {
    report.issues.push_back(
        {FsckIssue::Kind::kDoubleAllocated,
         std::to_string(accounted - data_zone) +
             " clusters claimed twice (object vs free space)"});
  }
  // Payload verification (only possible when the device retains bytes):
  // re-read every hashed file and check its streamed FNV-1a. Orphan
  // temps should not have survived recovery.
  const bool retain = device_->data_mode() == sim::DataMode::kRetain;
  std::vector<std::pair<std::string, uint64_t>> hashed;
  store_->VisitFiles([&](const std::string& name, const fs::FileInfo& info) {
    if (IsTempName(name)) {
      report.issues.push_back({FsckIssue::Kind::kOrphanTemp, name});
    }
    if (retain && info.hash_valid && info.size_bytes > 0) {
      hashed.emplace_back(name, info.payload_hash);
    }
  });
  std::vector<uint8_t> payload;
  for (const auto& [name, expected] : hashed) {
    payload.clear();
    const Status s = store_->ReadAll(name, &payload);
    if (!s.ok()) {
      report.issues.push_back(
          {FsckIssue::Kind::kLostObject, name + ": " + s.ToString()});
      continue;
    }
    ++report.payloads_hashed;
    if (Fnv(payload) != expected) {
      report.issues.push_back(
          {FsckIssue::Kind::kTornPayload, "payload hash mismatch: " + name});
    }
  }
  return report;
}

Result<ScrubReport> FsRepository::Scrub(const ScrubOptions& options) {
  ScrubReport report;
  std::vector<std::string> keys = store_->ListFiles();
  std::sort(keys.begin(), keys.end());
  if (keys.empty()) {
    scrub_cursor_.clear();
    return report;
  }
  size_t start = 0;
  if (!scrub_cursor_.empty()) {
    const auto it =
        std::upper_bound(keys.begin(), keys.end(), scrub_cursor_);
    start = static_cast<size_t>(it - keys.begin()) % keys.size();
  }
  const uint64_t budget =
      options.max_objects == 0 ? keys.size() : options.max_objects;
  const sim::MediaFaultModel* media = device_->media_faults();
  std::vector<uint8_t> payload;
  for (uint64_t i = 0; i < budget && i < keys.size(); ++i) {
    const std::string& key = keys[(start + i) % keys.size()];
    scrub_cursor_ = key;
    const uint64_t errors_before =
        media != nullptr ? media->stats().read_errors : 0;
    const Status read = Get(key, &payload);  // Charged like a client read.
    ++report.objects_scanned;
    if (read.ok()) {
      report.bytes_scanned += payload.size();
      // The read succeeded but needed media retries: a transient latent
      // sector error lives under this file. Repair by rewrite — move
      // the payload onto fresh clusters and retire the suspect ones.
      if (options.repair && media != nullptr &&
          media->stats().read_errors > errors_before) {
        sim::OpScope scope(scheduler_.get(), sim::OpClass::kControl);
        const uint64_t quarantined_before =
            store_->quarantined_cluster_count();
        if (store_->MarkFilePendingBad(key).ok()) {
          auto moved = store_->RelocateFile(key);
          if (moved.ok() && *moved) ++report.repaired;
        }
        report.quarantined_units +=
            store_->quarantined_cluster_count() - quarantined_before;
      }
    } else if (read.IsNotFound()) {
      continue;  // Deleted since the listing: not a media problem.
    } else if (read.IsCorruption()) {
      ++report.corruptions_detected;
      ++report.unrecoverable;
    } else if (read.IsIoError()) {
      ++report.read_errors;
      ++report.unrecoverable;
    } else {
      return read;  // The scrubber itself failed; surface it.
    }
    if (options.max_bytes != 0 && report.bytes_scanned >= options.max_bytes) {
      break;
    }
  }
  return report;
}

}  // namespace core
}  // namespace lor
