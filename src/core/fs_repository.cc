#include "core/fs_repository.h"

#include <algorithm>

namespace lor {
namespace core {

FsRepository::FsRepository(FsRepositoryConfig config)
    : FsRepository(std::move(config), nullptr) {}

FsRepository::FsRepository(FsRepositoryConfig config,
                           std::unique_ptr<alloc::ExtentAllocator> allocator)
    : config_(std::move(config)) {
  device_ = std::make_unique<sim::BlockDevice>(
      config_.disk.WithCapacity(config_.volume_bytes), config_.data_mode);
  store_ = std::make_unique<fs::FileStore>(device_.get(), config_.store,
                                           std::move(allocator));
}

Status FsRepository::StreamAppend(const std::string& file, uint64_t size,
                                  std::span<const uint8_t> data) {
  return store_->AppendStream(file, size, config_.write_request_bytes, data);
}

Status FsRepository::Put(const std::string& key, uint64_t size,
                         std::span<const uint8_t> data) {
  if (store_->Exists(key)) {
    return Status::AlreadyExists("object exists: " + key);
  }
  return SafeWrite(key, size, data);
}

Status FsRepository::SafeWrite(const std::string& key, uint64_t size,
                               std::span<const uint8_t> data) {
  if (!data.empty() && data.size() != size) {
    return Status::InvalidArgument("data size does not match object size");
  }
  // The whole temp-create / stream / fsync / replace sequence commits
  // as one lazy-writer journal batch (including the error paths).
  struct JournalBatch {
    explicit JournalBatch(fs::FileStore* s) : store(s) {
      store->BeginJournalBatch();
    }
    ~JournalBatch() { store->EndJournalBatch(); }
    fs::FileStore* store;
  } batch(store_.get());
  const std::string temp =
      key + ".tmp" + std::to_string(temp_counter_++);
  LOR_RETURN_IF_ERROR(store_->Create(temp));
  if (config_.preallocate_on_safe_write) {
    Status s = store_->Preallocate(temp, size);
    if (!s.ok()) {
      Status undo = store_->Delete(temp);
      (void)undo;
      return s;
    }
  }
  Status s = StreamAppend(temp, size, data);
  if (!s.ok()) {
    Status undo = store_->Delete(temp);
    (void)undo;
    return s;
  }
  LOR_RETURN_IF_ERROR(store_->Fsync(temp));
  return store_->Replace(temp, key);
}

Status FsRepository::Get(const std::string& key, std::vector<uint8_t>* out) {
  return store_->ReadAll(key, out);
}

Status FsRepository::Delete(const std::string& key) {
  return store_->Delete(key);
}

bool FsRepository::Exists(const std::string& key) const {
  return store_->Exists(key);
}

Result<alloc::ExtentList> FsRepository::GetLayout(
    const std::string& key) const {
  auto extents = store_->GetExtents(key);
  if (!extents.ok()) return extents.status();
  alloc::ExtentList bytes;
  bytes.reserve(extents->size());
  alloc::AppendScaledBytes(*extents, config_.store.cluster_bytes, &bytes);
  return bytes;
}

Result<uint64_t> FsRepository::GetSize(const std::string& key) const {
  return store_->GetSize(key);
}

std::vector<std::string> FsRepository::ListKeys() const {
  return store_->ListFiles();
}

void FsRepository::VisitObjects(
    const std::function<void(const std::string& key,
                             const alloc::ExtentList& layout,
                             uint64_t size_bytes)>& visit) const {
  const uint64_t unit = config_.store.cluster_bytes;
  alloc::ExtentList bytes;  // Scratch reused across files.
  store_->VisitFiles([&](const std::string& name, const fs::FileInfo& info) {
    bytes.clear();
    alloc::AppendScaledBytes(info.extents, unit, &bytes);
    visit(name, bytes, info.size_bytes);
  });
}

const FragmentationTracker* FsRepository::fragmentation_tracker() const {
  return &store_->fragmentation_tracker();
}

uint64_t FsRepository::object_count() const {
  return store_->stats().file_count;
}

uint64_t FsRepository::live_bytes() const {
  return store_->stats().live_bytes;
}

uint64_t FsRepository::volume_bytes() const { return device_->capacity(); }

uint64_t FsRepository::free_bytes() const { return store_->FreeBytes(); }

double FsRepository::now() const { return device_->clock().now(); }

sim::IoStats FsRepository::device_stats() const { return device_->stats(); }

Status FsRepository::CheckConsistency() const {
  return store_->CheckConsistency();
}

}  // namespace core
}  // namespace lor
