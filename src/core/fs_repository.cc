#include "core/fs_repository.h"

#include <algorithm>

namespace lor {
namespace core {

FsRepository::FsRepository(FsRepositoryConfig config)
    : FsRepository(std::move(config), nullptr) {}

FsRepository::FsRepository(FsRepositoryConfig config,
                           std::unique_ptr<alloc::ExtentAllocator> allocator)
    : config_(std::move(config)) {
  device_ = std::make_unique<sim::BlockDevice>(
      config_.disk.WithCapacity(config_.volume_bytes), config_.data_mode);
  store_ = std::make_unique<fs::FileStore>(device_.get(), config_.store,
                                           std::move(allocator));
}

Status FsRepository::StreamAppend(const std::string& file, uint64_t size,
                                  std::span<const uint8_t> data) {
  uint64_t written = 0;
  while (written < size) {
    const uint64_t chunk =
        std::min(config_.write_request_bytes, size - written);
    std::span<const uint8_t> slice =
        data.empty() ? std::span<const uint8_t>()
                     : data.subspan(written, chunk);
    LOR_RETURN_IF_ERROR(store_->Append(file, chunk, slice));
    written += chunk;
  }
  return Status::OK();
}

Status FsRepository::Put(const std::string& key, uint64_t size,
                         std::span<const uint8_t> data) {
  if (store_->Exists(key)) {
    return Status::AlreadyExists("object exists: " + key);
  }
  return SafeWrite(key, size, data);
}

Status FsRepository::SafeWrite(const std::string& key, uint64_t size,
                               std::span<const uint8_t> data) {
  if (!data.empty() && data.size() != size) {
    return Status::InvalidArgument("data size does not match object size");
  }
  const std::string temp =
      key + ".tmp" + std::to_string(temp_counter_++);
  LOR_RETURN_IF_ERROR(store_->Create(temp));
  if (config_.preallocate_on_safe_write) {
    Status s = store_->Preallocate(temp, size);
    if (!s.ok()) {
      Status undo = store_->Delete(temp);
      (void)undo;
      return s;
    }
  }
  Status s = StreamAppend(temp, size, data);
  if (!s.ok()) {
    Status undo = store_->Delete(temp);
    (void)undo;
    return s;
  }
  LOR_RETURN_IF_ERROR(store_->Fsync(temp));
  return store_->Replace(temp, key);
}

Status FsRepository::Get(const std::string& key, std::vector<uint8_t>* out) {
  return store_->ReadAll(key, out);
}

Status FsRepository::Delete(const std::string& key) {
  return store_->Delete(key);
}

bool FsRepository::Exists(const std::string& key) const {
  return store_->Exists(key);
}

Result<alloc::ExtentList> FsRepository::GetLayout(
    const std::string& key) const {
  auto extents = store_->GetExtents(key);
  if (!extents.ok()) return extents.status();
  alloc::ExtentList bytes;
  bytes.reserve(extents->size());
  const uint64_t unit = config_.store.cluster_bytes;
  for (const alloc::Extent& e : *extents) {
    alloc::AppendCoalescing(&bytes, {e.start * unit, e.length * unit});
  }
  return bytes;
}

Result<uint64_t> FsRepository::GetSize(const std::string& key) const {
  return store_->GetSize(key);
}

std::vector<std::string> FsRepository::ListKeys() const {
  return store_->ListFiles();
}

uint64_t FsRepository::object_count() const {
  return store_->stats().file_count;
}

uint64_t FsRepository::live_bytes() const {
  return store_->stats().live_bytes;
}

uint64_t FsRepository::volume_bytes() const { return device_->capacity(); }

uint64_t FsRepository::free_bytes() const { return store_->FreeBytes(); }

double FsRepository::now() const { return device_->clock().now(); }

Status FsRepository::CheckConsistency() const {
  return store_->CheckConsistency();
}

}  // namespace core
}  // namespace lor
