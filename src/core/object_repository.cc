#include "core/object_repository.h"

#include <algorithm>

#include "core/fragmentation.h"

namespace lor {
namespace core {

// Default handle surface: name-routed handles (gen 0) that replay the
// resolution on every operation. Back ends with real handle tables
// (FsRepository, DbRepository) override everything here; these defaults
// keep wrapper repositories (e.g. workload::RecordingRepository) and
// future back ends working unchanged.

Status ObjectRepository::ValidateHandle(const ObjectHandle& handle,
                                        bool need_write) const {
  if (!handle.valid()) {
    return Status::InvalidArgument("invalid object handle");
  }
  if (handle.owner_ != this) {
    return Status::InvalidArgument(
        "object handle belongs to another repository");
  }
  if (need_write && !handle.writable_) {
    return Status::InvalidArgument(
        "object handle not opened for write: " + handle.key_);
  }
  return Status::OK();
}

ObjectHandle ObjectRepository::MakeHandle(const std::string& key,
                                          bool writable, uint64_t slot,
                                          uint64_t gen) const {
  ObjectHandle handle;
  handle.owner_ = this;
  handle.slot_ = slot;
  handle.gen_ = gen;
  handle.key_ = key;
  handle.writable_ = writable;
  return handle;
}

Status ObjectRepository::SetQueueDepth(uint32_t depth,
                                       sim::SchedPolicy /*policy*/) {
  if (depth == 0) {
    return Status::InvalidArgument("queue depth must be at least 1");
  }
  if (depth == 1) return Status::OK();  // Synchronous: every back end.
  return Status::NotSupported(name() +
                              " does not support queued submission");
}

Status ObjectRepository::DrainIo() { return Status::OK(); }

Result<MountReport> ObjectRepository::Mount() { return MountReport{}; }

Result<FsckReport> ObjectRepository::Fsck() {
  FsckReport report;
  // Extent cross-check: no byte may belong to two objects. Works purely
  // through the name-routed introspection surface, so wrappers that
  // forward VisitObjects get a working verifier for free.
  std::vector<alloc::Extent> all;
  VisitObjects([&](const std::string&, const alloc::ExtentList& layout,
                   uint64_t) {
    ++report.objects_checked;
    all.insert(all.end(), layout.begin(), layout.end());
  });
  std::sort(all.begin(), all.end(),
            [](const alloc::Extent& a, const alloc::Extent& b) {
              return a.start < b.start;
            });
  for (size_t i = 1; i < all.size(); ++i) {
    if (all[i].start < all[i - 1].end()) {
      report.issues.push_back(
          {FsckIssue::Kind::kDoubleAllocated,
           "overlapping object extents at byte " +
               std::to_string(all[i].start)});
    }
  }
  // Tracker vs. full scan: the incrementally maintained counts must
  // match a from-scratch walk of every layout.
  if (const FragmentationTracker* tracker = fragmentation_tracker()) {
    const FragmentationReport scan = AnalyzeFragmentationFullScan(*this);
    const FragmentationReport snap = tracker->Snapshot();
    if (snap.objects != scan.objects ||
        snap.fragments_per_object != scan.fragments_per_object ||
        snap.max_fragments != scan.max_fragments) {
      report.issues.push_back(
          {FsckIssue::Kind::kAccounting,
           "fragmentation tracker diverges from full scan"});
    }
  }
  // Structural invariants (allocator accounting, shared clusters).
  const Status consistency = CheckConsistency();
  if (!consistency.ok()) {
    report.issues.push_back(
        {FsckIssue::Kind::kAccounting, consistency.ToString()});
  }
  return report;
}

Result<ScrubReport> ObjectRepository::Scrub(const ScrubOptions& options) {
  // Name-routed default: detect-only. Walks the sorted key space from
  // the persistent cursor, re-reading each payload through the public
  // Get surface (charged like any client read, typed errors included).
  // Wrapper repositories therefore scrub whatever they wrap; repair
  // needs back-end layout access and lives in the overrides.
  ScrubReport report;
  std::vector<std::string> keys = ListKeys();
  std::sort(keys.begin(), keys.end());
  if (keys.empty()) {
    scrub_cursor_.clear();
    return report;
  }
  // Resume strictly after the cursor, wrapping at the end.
  size_t start = 0;
  if (!scrub_cursor_.empty()) {
    const auto it =
        std::upper_bound(keys.begin(), keys.end(), scrub_cursor_);
    start = static_cast<size_t>(it - keys.begin()) % keys.size();
  }
  const uint64_t budget =
      options.max_objects == 0 ? keys.size() : options.max_objects;
  std::vector<uint8_t> payload;
  for (uint64_t i = 0; i < budget && i < keys.size(); ++i) {
    const std::string& key = keys[(start + i) % keys.size()];
    scrub_cursor_ = key;
    const Status read = Get(key, &payload);
    ++report.objects_scanned;
    if (read.ok()) {
      report.bytes_scanned += payload.size();
    } else if (read.IsNotFound()) {
      continue;  // Deleted since ListKeys: not a media problem.
    } else if (read.IsCorruption()) {
      ++report.corruptions_detected;
      ++report.unrecoverable;
    } else if (read.IsIoError()) {
      ++report.read_errors;
      ++report.unrecoverable;
    } else {
      return read;  // The scrubber itself failed; surface it.
    }
    if (options.max_bytes != 0 && report.bytes_scanned >= options.max_bytes) {
      break;
    }
  }
  return report;
}

Result<ObjectHandle> ObjectRepository::Open(const std::string& key) {
  if (!Exists(key)) return Status::NotFound("no object: " + key);
  return MakeHandle(key, /*writable=*/false);
}

Result<ObjectHandle> ObjectRepository::OpenForWrite(const std::string& key) {
  return MakeHandle(key, /*writable=*/true);
}

Status ObjectRepository::Release(ObjectHandle* handle) {
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  LOR_RETURN_IF_ERROR(ValidateHandle(*handle));
  handle->owner_ = nullptr;
  handle->gen_ = 0;
  return Status::OK();
}

Status ObjectRepository::Get(const ObjectHandle& handle,
                             std::vector<uint8_t>* out) {
  LOR_RETURN_IF_ERROR(ValidateHandle(handle));
  return Get(handle.key_, out);
}

Status ObjectRepository::SafeWrite(const ObjectHandle& handle, uint64_t size,
                                   std::span<const uint8_t> data) {
  LOR_RETURN_IF_ERROR(ValidateHandle(handle, /*need_write=*/true));
  return SafeWrite(handle.key_, size, data);
}

Status ObjectRepository::Delete(ObjectHandle* handle) {
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  LOR_RETURN_IF_ERROR(ValidateHandle(*handle, /*need_write=*/true));
  LOR_RETURN_IF_ERROR(Delete(handle->key_));
  handle->owner_ = nullptr;
  handle->gen_ = 0;
  return Status::OK();
}

Result<alloc::ExtentList> ObjectRepository::GetLayout(
    const ObjectHandle& handle) const {
  LOR_RETURN_IF_ERROR(ValidateHandle(handle));
  return GetLayout(handle.key_);
}

Result<uint64_t> ObjectRepository::GetSize(const ObjectHandle& handle) const {
  LOR_RETURN_IF_ERROR(ValidateHandle(handle));
  return GetSize(handle.key_);
}

}  // namespace core
}  // namespace lor
