#include "core/fragmentation_tracker.h"

#include <cassert>

namespace lor {
namespace core {

void FragmentationTracker::Add(uint64_t fragments, uint64_t bytes) {
  if (fragments < counts_.size()) {
    ++counts_[fragments];
  } else {
    ++overflow_[fragments];
  }
  ++objects_;
  total_fragments_ += fragments;
  total_bytes_ += bytes;
  if (fragments <= 1) ++contiguous_;
}

void FragmentationTracker::Remove(uint64_t fragments, uint64_t bytes) {
  assert(objects_ > 0);
  if (fragments < counts_.size()) {
    assert(counts_[fragments] > 0);
    --counts_[fragments];
  } else {
    auto it = overflow_.find(fragments);
    assert(it != overflow_.end());
    if (it != overflow_.end() && --it->second == 0) overflow_.erase(it);
  }
  --objects_;
  total_fragments_ -= fragments;
  total_bytes_ -= bytes;
  if (fragments <= 1) --contiguous_;
}

void FragmentationTracker::Update(uint64_t old_fragments, uint64_t old_bytes,
                                  uint64_t new_fragments,
                                  uint64_t new_bytes) {
  if (old_fragments == new_fragments && old_bytes == new_bytes) return;
  Remove(old_fragments, old_bytes);
  Add(new_fragments, new_bytes);
}

void FragmentationTracker::Merge(const FragmentationTracker& other) {
  for (size_t f = 0; f < counts_.size(); ++f) counts_[f] += other.counts_[f];
  for (const auto& [fragments, n] : other.overflow_) {
    overflow_[fragments] += n;
  }
  objects_ += other.objects_;
  total_fragments_ += other.total_fragments_;
  total_bytes_ += other.total_bytes_;
  contiguous_ += other.contiguous_;
}

FragmentationReport FragmentationTracker::Snapshot() const {
  FragmentationReport report;
  report.objects = objects_;
  for (uint64_t f = 0; f < counts_.size(); ++f) {
    report.histogram.AddCount(f, counts_[f]);
  }
  for (const auto& [fragments, n] : overflow_) {
    report.histogram.AddCount(fragments, n);
  }
  if (objects_ == 0) return report;
  report.fragments_per_object = static_cast<double>(total_fragments_) /
                                static_cast<double>(objects_);
  report.max_fragments = report.histogram.max();
  report.p50_fragments = report.histogram.Percentile(0.5);
  report.p99_fragments = report.histogram.Percentile(0.99);
  report.mean_fragment_bytes =
      total_fragments_ == 0
          ? 0.0
          : static_cast<double>(total_bytes_) /
                static_cast<double>(total_fragments_);
  report.contiguous_fraction =
      static_cast<double>(contiguous_) / static_cast<double>(objects_);
  return report;
}

}  // namespace core
}  // namespace lor
