// FsRepository: the paper's filesystem configuration (§4.1) — one file
// per object on an otherwise-empty NTFS volume, updated with safe
// writes (write temp file, force it, atomically replace the target).
//
// The object-name → path metadata database the paper co-located on
// separate drives is modelled as per-operation CPU cost only (it stays
// cached and its I/O goes to other spindles).
//
// Access stack: the handle operations are the primary path — Open pins
// the file's MFT record and extent map in the FileStore handle table,
// and Get/SafeWrite through the handle skip the per-operation
// open-by-name. The name-based mutations are thin open–op–release
// wrappers over the same handle code; the name-based Get is the
// store's own per-call open–read–close session. Both charge exactly
// what the historical per-operation path charged. SafeWrite streams
// into a temp file whose MFT record id comes from the store's recycle
// pool, so aging workloads rewrite a bounded set of record slots
// instead of marching fresh records through the MFT zone.

#ifndef LOREPO_CORE_FS_REPOSITORY_H_
#define LOREPO_CORE_FS_REPOSITORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/object_repository.h"
#include "fs/file_store.h"
#include "sim/block_device.h"
#include "sim/buffer_pool.h"
#include "sim/spindle_plane.h"

namespace lor {
namespace core {

/// Configuration of the filesystem-backed repository.
struct FsRepositoryConfig {
  /// Data volume size.
  uint64_t volume_bytes = 40 * kGiB;
  /// Drive model; capacity is overridden by volume_bytes.
  sim::DiskParams disk = sim::DiskParams::St3400832as();
  /// Retain payload bytes (tests only).
  sim::DataMode data_mode = sim::DataMode::kMetadataOnly;
  /// Size of the application's append requests (64 KB in the paper).
  uint64_t write_request_bytes = 64 * kKiB;
  /// Buffer pool fronting the data volume. Capacity 0 (the default)
  /// disables the pool entirely — the paper's cold-cache regime.
  sim::BufferPoolOptions cache;
  /// File store tuning.
  fs::FileStoreOptions store;
  /// When true, SafeWrite preallocates the temp file to its final size
  /// before streaming — the paper's proposed interface extension.
  bool preallocate_on_safe_write = false;
  /// Shared-spindle binding. Non-null: the data volume is owner
  /// `spindle_owner`'s region of this plane (the plane's region size
  /// must equal volume_bytes) and the scheduler is ported onto it —
  /// `disk` and `data_mode` above are then ignored for the data volume,
  /// which shares the plane's hub disk. Null (default): dedicated
  /// spindle, bit-identical historical behavior. Crash simulation
  /// (Mount/recovery) is unavailable in shared mode.
  std::shared_ptr<sim::SpindlePlane> spindle;
  uint32_t spindle_owner = 0;
};

/// Filesystem-backed ObjectRepository.
class FsRepository : public ObjectRepository {
 public:
  explicit FsRepository(FsRepositoryConfig config = {});

  /// Variant that injects a custom allocator (policy ablations).
  FsRepository(FsRepositoryConfig config,
               std::unique_ptr<alloc::ExtentAllocator> allocator);

  // Name-based surface (open–op–release wrappers).
  Status Put(const std::string& key, uint64_t size,
             std::span<const uint8_t> data = {}) override;
  Status SafeWrite(const std::string& key, uint64_t size,
                   std::span<const uint8_t> data = {}) override;
  Status Get(const std::string& key,
             std::vector<uint8_t>* out = nullptr) override;
  Status Delete(const std::string& key) override;
  bool Exists(const std::string& key) const override;
  Result<alloc::ExtentList> GetLayout(const std::string& key) const override;
  Result<uint64_t> GetSize(const std::string& key) const override;

  // Handle surface (FileStore handle table underneath).
  Result<ObjectHandle> Open(const std::string& key) override;
  Result<ObjectHandle> OpenForWrite(const std::string& key) override;
  Status Release(ObjectHandle* handle) override;
  Status Get(const ObjectHandle& handle,
             std::vector<uint8_t>* out = nullptr) override;
  Status SafeWrite(const ObjectHandle& handle, uint64_t size,
                   std::span<const uint8_t> data = {}) override;
  Status Delete(ObjectHandle* handle) override;
  Result<alloc::ExtentList> GetLayout(
      const ObjectHandle& handle) const override;
  Result<uint64_t> GetSize(const ObjectHandle& handle) const override;

  std::vector<std::string> ListKeys() const override;
  void VisitObjects(
      const std::function<void(const std::string& key,
                               const alloc::ExtentList& layout,
                               uint64_t size_bytes)>& visit) const override;
  const FragmentationTracker* fragmentation_tracker() const override;
  uint64_t object_count() const override;
  uint64_t live_bytes() const override;
  uint64_t volume_bytes() const override;
  uint64_t free_bytes() const override;
  double now() const override;
  sim::IoStats device_stats() const override;
  sim::BufferPoolStats cache_stats() const override {
    return pool_->stats();
  }
  Status FlushCache() override;
  Status CheckConsistency() const override;
  std::string name() const override { return "filesystem"; }

  /// Journal recovery against the attached sim::FaultInjector's
  /// durability verdicts (fs::FileStore::Recover). When the injector
  /// tripped, the scheduler's dead queue is abandoned and the head
  /// position invalidated first, so calling Mount right after
  /// MaterializeCrash is the whole restart sequence. Recovery I/O is
  /// charged synchronously; recovery_seconds is the simulated elapsed
  /// time.
  Result<MountReport> Mount() override;

  /// Adds to the base verifier: payload FNV-1a checks under
  /// DataMode::kRetain (kTornPayload / kLostObject), typed allocator
  /// accounting (kLeakedExtent / kDoubleAllocated), and an orphan
  /// safe-write-temp scan (kOrphanTemp). Not meaningful while a crash
  /// window is armed (rollback holds look like leaks).
  Result<FsckReport> Fsck() override;

  /// Background scrubber pass with repair: walks files from the
  /// persistent cursor re-reading payloads with charged I/O. A read
  /// that only succeeded through media retries marks the file's
  /// clusters pending-bad and relocates it onto fresh ones (the old
  /// clusters divert to the quarantine list); reads that stay broken
  /// after retry count as unrecoverable (a client rewrite heals them).
  Result<ScrubReport> Scrub(const ScrubOptions& options = {}) override;

  // Submission/completion pipeline.
  Status SetQueueDepth(
      uint32_t depth,
      sim::SchedPolicy policy = sim::SchedPolicy::kSptf) override;
  Status DrainIo() override;
  Status SettleIo() override;
  bool shared_spindle() const override;
  const sim::LatencyRecorder* latency_recorder() const override {
    return &latency_;
  }

  fs::FileStore* store() { return store_.get(); }
  sim::BlockDevice* device() { return device_.get(); }
  sim::IoScheduler* io_scheduler() { return scheduler_.get(); }
  sim::BufferPool* buffer_pool() { return pool_.get(); }
  const FsRepositoryConfig& config() const { return config_; }

 private:
  /// The safe-write cycle against an already-opened target handle:
  /// create temp (recycled MFT record), optional preallocate, stream,
  /// fsync, atomic replace — all journal charges in one lazy-writer
  /// batch.
  Status SafeWriteThrough(fs::FileHandle target, const std::string& key,
                          uint64_t size, std::span<const uint8_t> data);

  /// Fresh safe-write temp name (counter keeps names collision-free
  /// against user keys and leftover temps).
  std::string NextTempName(const std::string& key);

  /// True for names NextTempName could have produced (Mount's orphan
  /// sweep and Fsck's orphan scan).
  static bool IsTempName(const std::string& name) {
    return name.find(".tmp") != std::string::npos;
  }

  /// Converts a byte-extent layout from cluster extents.
  Result<alloc::ExtentList> ScaleExtents(
      Result<alloc::ExtentList> extents) const;

  FsRepositoryConfig config_;
  std::unique_ptr<sim::BlockDevice> device_;
  /// Cache tier fronting device_; attached before the store is built so
  /// every store path sees it. Always constructed (possibly disabled).
  std::unique_ptr<sim::BufferPool> pool_;
  std::unique_ptr<fs::FileStore> store_;
  sim::LatencyRecorder latency_;
  /// Owns the data volume's submission queue; attached to device_ for
  /// the repository's whole lifetime (disengaged = synchronous).
  std::unique_ptr<sim::IoScheduler> scheduler_;
  uint64_t temp_counter_ = 0;
};

}  // namespace core
}  // namespace lor

#endif  // LOREPO_CORE_FS_REPOSITORY_H_
