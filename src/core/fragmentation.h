// FragmentationAnalyzer: measures fragments per object across a
// repository — the role of the paper's marker-tagging scan tool (§5.3),
// which the authors validated against the Windows defragmentation
// utility's reports. Our back ends expose physical layout directly, so
// the analyzer reads it rather than scanning for markers.

#ifndef LOREPO_CORE_FRAGMENTATION_H_
#define LOREPO_CORE_FRAGMENTATION_H_

#include <cstdint>
#include <string>

#include "core/object_repository.h"
#include "util/histogram.h"

namespace lor {
namespace core {

/// Volume-wide fragmentation measurements.
struct FragmentationReport {
  uint64_t objects = 0;
  /// The paper's headline metric (contiguous object == 1).
  double fragments_per_object = 0.0;
  uint64_t max_fragments = 0;
  uint64_t p50_fragments = 0;
  uint64_t p99_fragments = 0;
  /// Mean bytes per physically contiguous piece.
  double mean_fragment_bytes = 0.0;
  /// Fraction of objects stored contiguously.
  double contiguous_fraction = 0.0;
  /// Full distribution for further analysis.
  IntHistogram histogram{4096};

  std::string ToString() const;
};

/// Computes a FragmentationReport by walking every object's layout.
FragmentationReport AnalyzeFragmentation(const ObjectRepository& repo);

}  // namespace core
}  // namespace lor

#endif  // LOREPO_CORE_FRAGMENTATION_H_
