// Fragmentation analysis: measures fragments per object across a
// repository — the role of the paper's marker-tagging scan tool (§5.3),
// which the authors validated against the Windows defragmentation
// utility's reports. Our back ends expose physical layout directly, so
// the analyzer reads it rather than scanning for markers.
//
// Two paths produce the same FragmentationReport:
//   * AnalyzeFragmentation reads the repository's incrementally
//     maintained FragmentationTracker when one exists — O(histogram
//     resolution) per checkpoint, independent of stored bytes. Debug
//     builds cross-check the snapshot against the full scan.
//   * AnalyzeFragmentationFullScan walks every object's layout through
//     ObjectRepository::VisitObjects (no key-list materialization).

#ifndef LOREPO_CORE_FRAGMENTATION_H_
#define LOREPO_CORE_FRAGMENTATION_H_

#include "core/fragmentation_tracker.h"
#include "core/object_repository.h"

namespace lor {
namespace core {

/// Computes a FragmentationReport. Uses the repository's tracker when
/// available, falling back to the full scan.
FragmentationReport AnalyzeFragmentation(const ObjectRepository& repo);

/// Computes a FragmentationReport by walking every object's layout.
/// Kept as the tracker's cross-check and for repositories without one.
FragmentationReport AnalyzeFragmentationFullScan(const ObjectRepository& repo);

}  // namespace core
}  // namespace lor

#endif  // LOREPO_CORE_FRAGMENTATION_H_
