#include "core/fragmentation.h"

#include <cstdio>

namespace lor {
namespace core {

std::string FragmentationReport::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "objects=%llu fragments/object=%.2f p50=%llu p99=%llu "
                "max=%llu contiguous=%.1f%%",
                static_cast<unsigned long long>(objects),
                fragments_per_object,
                static_cast<unsigned long long>(p50_fragments),
                static_cast<unsigned long long>(p99_fragments),
                static_cast<unsigned long long>(max_fragments),
                contiguous_fraction * 100.0);
  return buf;
}

FragmentationReport AnalyzeFragmentation(const ObjectRepository& repo) {
  FragmentationReport report;
  uint64_t total_fragments = 0;
  uint64_t total_bytes = 0;
  uint64_t contiguous = 0;
  for (const std::string& key : repo.ListKeys()) {
    auto layout = repo.GetLayout(key);
    if (!layout.ok()) continue;
    auto size = repo.GetSize(key);
    if (!size.ok()) continue;
    const uint64_t fragments = alloc::CountFragments(*layout);
    report.histogram.Add(fragments);
    total_fragments += fragments;
    total_bytes += *size;
    if (fragments <= 1) ++contiguous;
    ++report.objects;
  }
  if (report.objects == 0) return report;
  report.fragments_per_object =
      static_cast<double>(total_fragments) /
      static_cast<double>(report.objects);
  report.max_fragments = report.histogram.max();
  report.p50_fragments = report.histogram.Percentile(0.5);
  report.p99_fragments = report.histogram.Percentile(0.99);
  report.mean_fragment_bytes =
      total_fragments == 0
          ? 0.0
          : static_cast<double>(total_bytes) /
                static_cast<double>(total_fragments);
  report.contiguous_fraction =
      static_cast<double>(contiguous) / static_cast<double>(report.objects);
  return report;
}

}  // namespace core
}  // namespace lor
