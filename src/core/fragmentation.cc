#include "core/fragmentation.h"

#include <cassert>
#include <cstdio>

namespace lor {
namespace core {

std::string FragmentationReport::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "objects=%llu fragments/object=%.2f p50=%llu p99=%llu "
                "max=%llu contiguous=%.1f%%",
                static_cast<unsigned long long>(objects),
                fragments_per_object,
                static_cast<unsigned long long>(p50_fragments),
                static_cast<unsigned long long>(p99_fragments),
                static_cast<unsigned long long>(max_fragments),
                contiguous_fraction * 100.0);
  return buf;
}

FragmentationReport AnalyzeFragmentationFullScan(
    const ObjectRepository& repo) {
  FragmentationReport report;
  uint64_t total_fragments = 0;
  uint64_t total_bytes = 0;
  uint64_t contiguous = 0;
  repo.VisitObjects([&](const std::string& /*key*/,
                        const alloc::ExtentList& layout,
                        uint64_t size_bytes) {
    const uint64_t fragments = alloc::CountFragments(layout);
    report.histogram.Add(fragments);
    total_fragments += fragments;
    total_bytes += size_bytes;
    if (fragments <= 1) ++contiguous;
    ++report.objects;
  });
  if (report.objects == 0) return report;
  report.fragments_per_object =
      static_cast<double>(total_fragments) /
      static_cast<double>(report.objects);
  report.max_fragments = report.histogram.max();
  report.p50_fragments = report.histogram.Percentile(0.5);
  report.p99_fragments = report.histogram.Percentile(0.99);
  report.mean_fragment_bytes =
      total_fragments == 0
          ? 0.0
          : static_cast<double>(total_bytes) /
                static_cast<double>(total_fragments);
  report.contiguous_fraction =
      static_cast<double>(contiguous) / static_cast<double>(report.objects);
  return report;
}

FragmentationReport AnalyzeFragmentation(const ObjectRepository& repo) {
  const FragmentationTracker* tracker = repo.fragmentation_tracker();
  if (tracker == nullptr) return AnalyzeFragmentationFullScan(repo);
  FragmentationReport report = tracker->Snapshot();
#ifndef NDEBUG
  // Debug-mode cross-check: the maintained counts must agree with a
  // fresh walk of every object's layout.
  const FragmentationReport full = AnalyzeFragmentationFullScan(repo);
  assert(report.objects == full.objects);
  assert(report.max_fragments == full.max_fragments);
  assert(report.p50_fragments == full.p50_fragments);
  assert(report.p99_fragments == full.p99_fragments);
  assert(report.histogram.count() == full.histogram.count());
#endif
  return report;
}

}  // namespace core
}  // namespace lor
