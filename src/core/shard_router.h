// ShardRouter: hash-partitioning of the object-key namespace across N
// shards. A production deployment of the paper's repository (millions
// of users, many spindles) splits the namespace over independent
// per-shard stores; the router decides ownership. The hash depends only
// on the key bytes and the shard count — never on seeds, pointers, or
// platform details — so a key's owner is stable across runs, processes,
// and back ends.

#ifndef LOREPO_CORE_SHARD_ROUTER_H_
#define LOREPO_CORE_SHARD_ROUTER_H_

#include <cstdint>
#include <string_view>

namespace lor {
namespace core {

/// Maps object keys to shard indices in [0, shard_count).
class ShardRouter {
 public:
  /// `shard_count` must be at least 1 (0 is treated as 1).
  explicit ShardRouter(uint32_t shard_count);

  uint32_t shard_count() const { return shard_count_; }

  /// Shard owning `key`. Always 0 for a single-shard router.
  uint32_t ShardOf(std::string_view key) const;

  /// Stable 64-bit key hash (FNV-1a with a splitmix-style finalizer so
  /// keys differing only in a trailing digit spread across shards).
  static uint64_t HashKey(std::string_view key);

 private:
  uint32_t shard_count_;
};

}  // namespace core
}  // namespace lor

#endif  // LOREPO_CORE_SHARD_ROUTER_H_
