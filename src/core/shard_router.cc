#include "core/shard_router.h"

namespace lor {
namespace core {

ShardRouter::ShardRouter(uint32_t shard_count)
    : shard_count_(shard_count == 0 ? 1 : shard_count) {}

uint64_t ShardRouter::HashKey(std::string_view key) {
  // FNV-1a over the key bytes...
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x00000100000001b3ULL;
  }
  // ...then a splitmix64-style finalizer: FNV alone leaves the low bits
  // of near-identical keys ("obj00000001" vs "obj00000002") correlated,
  // which a modulo would turn into a lopsided shard assignment.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

uint32_t ShardRouter::ShardOf(std::string_view key) const {
  if (shard_count_ == 1) return 0;
  return static_cast<uint32_t>(HashKey(key) % shard_count_);
}

}  // namespace core
}  // namespace lor
