// StorageAgeTracker: the paper's time axis (§4.4).
//
//   "We measure time using storage age; the ratio of bytes in objects
//    that once existed on a volume to the number of bytes in use on the
//    volume."
//
// For the safe-write workload this is "safe writes per object". Ages
// are measured from the end of bulk load (the paper's age 0), so call
// `MarkBulkLoadComplete()` once the initial population is in place.

#ifndef LOREPO_CORE_STORAGE_AGE_H_
#define LOREPO_CORE_STORAGE_AGE_H_

#include <cstdint>

namespace lor {
namespace core {

/// Tracks storage age over a repository's write traffic.
class StorageAgeTracker {
 public:
  /// Records bytes written during initial population (age stays 0).
  void RecordBulkLoad(uint64_t bytes) { live_bytes_ += bytes; }

  /// Freezes the live-byte denominator; subsequent churn ages the store.
  void MarkBulkLoadComplete() { bulk_load_done_ = true; }

  /// Records a whole-object replacement (insert/update/delete churn).
  /// `old_bytes` leave the store, `new_bytes` enter it.
  void RecordReplacement(uint64_t old_bytes, uint64_t new_bytes) {
    churned_bytes_ += new_bytes;
    live_bytes_ += new_bytes;
    live_bytes_ -= old_bytes;
  }

  /// Records a deletion without replacement.
  void RecordDelete(uint64_t bytes) { live_bytes_ -= bytes; }

  /// Current storage age: churned bytes / live bytes. Zero before or at
  /// the end of bulk load.
  double age() const {
    if (!bulk_load_done_ || live_bytes_ == 0) return 0.0;
    return static_cast<double>(churned_bytes_) /
           static_cast<double>(live_bytes_);
  }

  uint64_t live_bytes() const { return live_bytes_; }
  uint64_t churned_bytes() const { return churned_bytes_; }

 private:
  uint64_t live_bytes_ = 0;
  uint64_t churned_bytes_ = 0;
  bool bulk_load_done_ = false;
};

}  // namespace core
}  // namespace lor

#endif  // LOREPO_CORE_STORAGE_AGE_H_
