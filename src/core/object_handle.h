// ObjectHandle: an open-once, operate-many ticket for one repository
// object. Opening resolves the name → metadata path once (the NTFS
// open-by-name / database metadata-row lookup the paper's workloads pay
// on every operation) and pins the resolved state — cached extent map
// and MFT record on the filesystem back end, cached metadata row and a
// positioned blob-tree cursor on the database back end — so subsequent
// operations through the handle skip the per-operation lookup.
//
// Handles are move-only tickets: they do not own the object, and the
// repository reclaims all handle state when it is destroyed, so leaking
// a handle is harmless (releasing it is still good hygiene and is what
// the name-based compatibility wrappers do). A handle is invalidated by
// Release, by deleting the object (through any path), and by the
// safe-write temp consumption inside the store; any use after that
// fails with InvalidArgument rather than touching stale state.

#ifndef LOREPO_CORE_OBJECT_HANDLE_H_
#define LOREPO_CORE_OBJECT_HANDLE_H_

#include <cstdint>
#include <string>
#include <utility>

namespace lor {
namespace core {

class ObjectRepository;

/// Move-only ticket for an open object (see file comment).
class ObjectHandle {
 public:
  ObjectHandle() = default;

  ObjectHandle(ObjectHandle&& other) noexcept { *this = std::move(other); }
  ObjectHandle& operator=(ObjectHandle&& other) noexcept {
    if (this == &other) return *this;  // Self-move keeps the ticket live.
    owner_ = other.owner_;
    slot_ = other.slot_;
    gen_ = other.gen_;
    key_ = std::move(other.key_);
    writable_ = other.writable_;
    other.owner_ = nullptr;  // The moved-from ticket is dead.
    other.gen_ = 0;
    return *this;
  }

  ObjectHandle(const ObjectHandle&) = delete;
  ObjectHandle& operator=(const ObjectHandle&) = delete;

  /// False for default-constructed, released, and moved-from handles.
  bool valid() const { return owner_ != nullptr; }
  /// True for OpenForWrite handles (required by SafeWrite/Delete).
  bool writable() const { return writable_; }
  /// The key the handle was opened on.
  const std::string& key() const { return key_; }

 private:
  // Only repositories mint and interpret the ticket fields.
  friend class ObjectRepository;
  friend class FsRepository;
  friend class DbRepository;

  const ObjectRepository* owner_ = nullptr;
  /// Back-end handle-table coordinates. gen_ == 0 marks a name-routed
  /// handle (the base-class fallback for back ends without a table).
  uint64_t slot_ = 0;
  uint64_t gen_ = 0;
  std::string key_;
  bool writable_ = false;
};

}  // namespace core
}  // namespace lor

#endif  // LOREPO_CORE_OBJECT_HANDLE_H_
