// ObjectRepository: the get/put abstraction the paper's applications
// program against (§4). Both back ends — NTFS-like files and SQL-like
// BLOBs — implement this interface with equivalent semantics: atomic
// whole-object replacement, no recovery of object payloads after media
// failure, and no partial updates.
//
// Two access surfaces share one implementation:
//   * the historical name-based operations (the compatibility surface —
//     every call resolves the key, exactly the per-operation open the
//     paper's workloads measure), and
//   * the handle-based operations: Open/OpenForWrite resolve the key
//     once and return a core::ObjectHandle pinning the resolved state;
//     Get/SafeWrite/GetLayout/GetSize/Delete overloads then operate
//     without a name lookup. The name-based mutations are thin
//     open–op–release wrappers over the same handle ops, so both paths
//     produce identical layouts and tracker state by construction.

#ifndef LOREPO_CORE_OBJECT_REPOSITORY_H_
#define LOREPO_CORE_OBJECT_REPOSITORY_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "alloc/extent.h"
#include "core/object_handle.h"
#include "sim/buffer_pool.h"
#include "sim/io_stats.h"
#include "sim/latency_recorder.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace core {

class FragmentationTracker;

/// What mount-time crash recovery found and did (see
/// ObjectRepository::Mount). Back ends without a recovery path return
/// an all-zeros report.
struct MountReport {
  /// Journal/log records scanned during replay.
  uint64_t entries_scanned = 0;
  /// Committed operations re-applied (journal redo / log-tail replay).
  uint64_t ops_redone = 0;
  /// Operations rolled back: uncommitted at the cut, or committed with
  /// bulk-logged payload pages that missed the platter.
  uint64_t ops_rolled_back = 0;
  /// Safe-write temps discarded by the orphan sweep.
  uint64_t orphan_temps_discarded = 0;
  /// Objects with a committed version that could not be recovered.
  uint64_t lost_objects = 0;
  /// Payload bytes of acknowledged operations whose effects were rolled
  /// back — the data-loss window.
  uint64_t data_loss_bytes = 0;
  /// Simulated seconds the recovery I/O and CPU charged.
  double recovery_seconds = 0.0;
};

/// One verifier finding (see ObjectRepository::Fsck).
struct FsckIssue {
  enum class Kind : uint8_t {
    kLostObject,       ///< Metadata references an object that is gone.
    kTornPayload,      ///< Stored bytes fail the recorded payload hash.
    kLeakedExtent,     ///< Allocated space owned by no live object.
    kDoubleAllocated,  ///< One run claimed by two owners (or marked free).
    kOrphanTemp,       ///< Safe-write temp that survived recovery.
    kAccounting,       ///< Tracker/stats/consistency cross-check failed.
  };
  Kind kind = Kind::kAccounting;
  std::string detail;
};

/// Full verifier result: every issue found, most severe first not
/// guaranteed — callers filter by Kind.
struct FsckReport {
  std::vector<FsckIssue> issues;
  uint64_t objects_checked = 0;
  uint64_t payloads_hashed = 0;
  /// Allocation units (fs clusters / db pages) quarantined for media
  /// faults: owned by no object and withheld from the allocator so bad
  /// sectors are never reallocated. Deliberate isolation, not an issue
  /// — clean() stays true for a quarantining volume.
  uint64_t quarantined_units = 0;
  bool clean() const { return issues.empty(); }
};

/// Rate limits and repair policy for one scrubber pass (see
/// ObjectRepository::Scrub).
struct ScrubOptions {
  /// Objects to examine this pass (0 = every live object). The cursor
  /// persists across passes, so bounded passes resume where the last
  /// one stopped and wrap at the end — a background scrubber trickling
  /// through the volume.
  uint64_t max_objects = 0;
  /// Stop after charging this many payload bytes of scrub reads
  /// (0 = unlimited); checked after each object.
  uint64_t max_bytes = 0;
  /// Repair what can be repaired: rewrite objects whose media errors
  /// recovered (quarantining the suspect units), leave typed reports
  /// for what cannot. False = detect and report only.
  bool repair = true;
};

/// What one scrubber pass saw and did.
struct ScrubReport {
  uint64_t objects_scanned = 0;
  uint64_t bytes_scanned = 0;
  /// Objects whose read hit a typed media error (transient or not).
  uint64_t read_errors = 0;
  /// Objects whose payload failed checksum verification.
  uint64_t corruptions_detected = 0;
  /// Objects rewritten onto fresh space (suspect units quarantined).
  uint64_t repaired = 0;
  /// Objects left in a typed-error state: persistent LSE or corrupt
  /// payload with no good copy to rewrite from. Never silent — every
  /// subsequent read returns the typed error.
  uint64_t unrecoverable = 0;
  /// Allocation units newly quarantined by this pass's repairs.
  uint64_t quarantined_units = 0;
};

/// Abstract get/put large-object repository.
class ObjectRepository {
 public:
  virtual ~ObjectRepository() = default;

  // -- Name-based surface (one resolution per operation) ---------------

  /// Stores a new object. Fails with AlreadyExists for a live key.
  /// `data` may be empty (timing-only workloads).
  virtual Status Put(const std::string& key, uint64_t size,
                     std::span<const uint8_t> data = {}) = 0;

  /// Atomically creates or replaces an object (the paper's safe write).
  virtual Status SafeWrite(const std::string& key, uint64_t size,
                           std::span<const uint8_t> data = {}) = 0;

  /// Reads a whole object; `out` receives the payload when non-null.
  virtual Status Get(const std::string& key,
                     std::vector<uint8_t>* out = nullptr) = 0;

  virtual Status Delete(const std::string& key) = 0;

  virtual bool Exists(const std::string& key) const = 0;

  /// Physical layout of the object in *byte* extents on the data
  /// volume, in logical order. The analyzer counts fragments from this
  /// (the role of the paper's marker-scanning tool).
  virtual Result<alloc::ExtentList> GetLayout(
      const std::string& key) const = 0;

  virtual Result<uint64_t> GetSize(const std::string& key) const = 0;

  // -- Handle-based surface (resolve once, operate many) ---------------

  /// Opens an existing object for reading. Charges the back end's
  /// open-by-name cost (the cost the name-based Get pays per call);
  /// NotFound when the key is not live.
  virtual Result<ObjectHandle> Open(const std::string& key);

  /// Opens a key for writing. The object need not exist yet: the first
  /// SafeWrite through the handle creates it (Put semantics are an
  /// exists check away). Charges only the resolution the write path
  /// already paid per operation, never extra metadata I/O.
  virtual Result<ObjectHandle> OpenForWrite(const std::string& key);

  /// Releases a handle (invalidating it). Read handles charge the
  /// back end's close cost, mirroring the name-based Get; releasing an
  /// already-released or foreign handle is an error.
  virtual Status Release(ObjectHandle* handle);

  /// Handle twins of the name-based operations. SafeWrite and Delete
  /// require a writable handle; Delete invalidates every open handle on
  /// the object (use-after-delete fails, it does not touch stale
  /// state). Default implementations route through the name-based ops
  /// so alternative back ends keep working without a handle table.
  virtual Status Get(const ObjectHandle& handle,
                     std::vector<uint8_t>* out = nullptr);
  virtual Status SafeWrite(const ObjectHandle& handle, uint64_t size,
                           std::span<const uint8_t> data = {});
  virtual Status Delete(ObjectHandle* handle);
  virtual Result<alloc::ExtentList> GetLayout(const ObjectHandle& handle) const;
  virtual Result<uint64_t> GetSize(const ObjectHandle& handle) const;

  // -- Introspection ----------------------------------------------------

  virtual std::vector<std::string> ListKeys() const = 0;

  /// Visits every live object without materializing a key list:
  /// `visit(key, layout, size_bytes)`, where `layout` is the byte-extent
  /// layout GetLayout would return. Visit order is unspecified. This is
  /// the checkpoint-scan path — one pass, no per-object lookups.
  virtual void VisitObjects(
      const std::function<void(const std::string& key,
                               const alloc::ExtentList& layout,
                               uint64_t size_bytes)>& visit) const = 0;

  /// Incrementally maintained fragmentation accounting, or null when
  /// the back end does not keep one (analysis then falls back to the
  /// full layout scan).
  virtual const FragmentationTracker* fragmentation_tracker() const {
    return nullptr;
  }

  virtual uint64_t object_count() const = 0;
  virtual uint64_t live_bytes() const = 0;
  /// Data-volume capacity in bytes.
  virtual uint64_t volume_bytes() const = 0;
  /// Unused bytes on the data volume.
  virtual uint64_t free_bytes() const = 0;

  /// Simulated seconds elapsed on this repository's clock.
  virtual double now() const = 0;

  /// Cumulative data-volume device activity. Per-shard repositories
  /// snapshot this so aggregate device figures merge exactly
  /// (sim::Sum); back ends without a device model return zeros.
  virtual sim::IoStats device_stats() const { return {}; }

  /// Cumulative buffer-pool counters for the data volume's cache tier
  /// (hits, misses, fills, evictions, writebacks, hit-rate). All-zeros
  /// when the back end has no pool or the pool is disabled — the
  /// plumbing twin of device_stats().
  virtual sim::BufferPoolStats cache_stats() const { return {}; }

  /// Writes back every dirty cached frame to the data volume. A no-op
  /// without a pool; DrainIo implies it.
  virtual Status FlushCache() { return Status::OK(); }

  // -- Submission/completion pipeline -----------------------------------

  /// Sets the number of operations the repository keeps in flight
  /// against its data volume. Depth 1 (the default) is the synchronous
  /// path: each operation completes before the next is issued, and
  /// every historical figure is reproduced exactly. Depth > 1 engages
  /// the back end's IoScheduler: device requests queue per operation
  /// and service in `policy` order (NCQ-style SPTF by default), so
  /// completion latency includes queueing delay. Back ends without a
  /// scheduler accept only depth 1. Pending work is drained before the
  /// depth changes; may not be called mid-operation.
  virtual Status SetQueueDepth(uint32_t depth,
                               sim::SchedPolicy policy = sim::SchedPolicy::kSptf);

  /// Services everything queued and advances the clock to the
  /// completion horizon. A no-op at depth 1.
  virtual Status DrainIo();

  /// Phase-boundary settle for shared-spindle back ends: drains this
  /// repository's outstanding submissions and parks its spindle owner
  /// at a phase fence so the plane can re-align every owner's closed
  /// loop once all of them arrive (sim::SpindlePlane). Workload
  /// runners call this on every shard at the end of each phase, before
  /// reading phase-end clocks or stats. Contract: a barrier must
  /// separate it from the shard's next operations. Deliberately does
  /// NOT flush the cache — dedicated-spindle phases never flush at
  /// their boundaries, and a shared single-owner run must charge the
  /// same I/O. The default (and the dedicated-spindle behavior) is a
  /// no-op: a synchronous or drained-by-Exit phase end has nothing to
  /// settle.
  virtual Status SettleIo() { return Status::OK(); }

  /// True when this repository's data volume is an owner view on a
  /// shared sim::SpindlePlane (its clock, stats, and drains then
  /// follow the plane's round protocol). Workload runners use this to
  /// gate shared-spindle-only behavior.
  virtual bool shared_spindle() const { return false; }

  /// Per-op-class submit-to-completion latency histograms, or null when
  /// the back end does not record them. Populated on both the
  /// synchronous and the queued path.
  virtual const sim::LatencyRecorder* latency_recorder() const {
    return nullptr;
  }

  // -- Crash recovery & verification ------------------------------------

  /// Mount-time recovery: replays the back end's journal/log against
  /// the post-crash volume state, rolling back whatever did not commit,
  /// and charges realistic recovery I/O so the report's
  /// recovery_seconds is a simulated metric. The default (wrapper back
  /// ends, stores without a crash model) recovers nothing and returns
  /// an empty report.
  virtual Result<MountReport> Mount();

  /// Full-volume verifier: cross-checks every object's payload hash,
  /// extent layout vs. allocator state, and the FragmentationTracker
  /// vs. a full scan, reporting a typed corruption taxonomy. Never
  /// fails just because the volume is corrupt — corruption is the
  /// report's payload; a Status error means the verifier itself could
  /// not run. The default implementation is name-routed (VisitObjects +
  /// GetLayout + CheckConsistency only), so RecordingRepository-style
  /// wrappers keep working.
  virtual Result<FsckReport> Fsck();

  /// One background-scrubber pass: walks live objects from the
  /// persistent scrub cursor, re-reads payloads with charged I/O,
  /// verifies end-to-end checksums, and (when options.repair) rewrites
  /// recovered objects off suspect media, quarantining the old units.
  /// Detected-but-unrepairable objects stay typed-error, never silently
  /// wrong. The default implementation is name-routed (ListKeys + Get),
  /// so wrapper repositories scrub what they wrap — it detects typed
  /// errors and corruption but repairs nothing.
  virtual Result<ScrubReport> Scrub(const ScrubOptions& options = {});

  /// Structural invariants (no shared clusters/extents, accounting).
  virtual Status CheckConsistency() const = 0;

  /// "filesystem" or "database" (the paper's series labels).
  virtual std::string name() const = 0;

 protected:
  /// Checks that `handle` is live, minted by this repository, and (when
  /// `need_write`) was opened for writing.
  Status ValidateHandle(const ObjectHandle& handle,
                        bool need_write = false) const;

  /// Mints a handle. Back ends pass their table coordinates; the
  /// defaults mint a name-routed handle (gen 0).
  ObjectHandle MakeHandle(const std::string& key, bool writable,
                          uint64_t slot = 0, uint64_t gen = 0) const;

  /// Background-scrubber resume point: the last key the previous Scrub
  /// pass examined (empty = start of the key space). Shared by the
  /// default implementation and the back-end overrides.
  std::string scrub_cursor_;
};

}  // namespace core
}  // namespace lor

#endif  // LOREPO_CORE_OBJECT_REPOSITORY_H_
