// HandleTable: the slot/generation open-handle table shared by both
// back ends' stores. One table maps cheap tickets (slot + generation)
// to per-handle payloads, with a name index so namespace mutations can
// invalidate every open handle on a name (delete, replace-source) or
// visit them (bind-on-create, cursor resets). Slots are recycled
// through a free list; a released or invalidated slot bumps nothing —
// the next Register stamps a fresh generation, so stale tickets fail
// the generation check instead of touching reused slots.
//
// `Ticket` is the store's public handle struct (fs::FileHandle,
// db::BlobHandle): structurally {slot, gen}, kept distinct per back end
// so handles cannot cross stores at compile time.

#ifndef LOREPO_CORE_HANDLE_TABLE_H_
#define LOREPO_CORE_HANDLE_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lor {
namespace core {

template <typename Entry, typename Ticket>
class HandleTable {
 public:
  /// One table slot: the payload plus the name it was opened on.
  struct Slot {
    Entry entry{};
    std::string name;
    uint64_t gen = 0;
    bool in_use = false;
  };

  /// Mints a ticket for `name` with the given payload.
  Ticket Register(const std::string& name, Entry entry) {
    uint64_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = slots_.size();
      slots_.emplace_back();
    }
    Slot& slot = slots_[index];
    slot.entry = std::move(entry);
    slot.name = name;
    slot.gen = next_gen_++;
    slot.in_use = true;
    by_name_.emplace(name, index);
    ++open_;
    return Ticket{index, slot.gen};
  }

  /// Live slot for `ticket`, or null when stale/released/foreign.
  Slot* Resolve(Ticket ticket) {
    if (ticket.slot >= slots_.size()) return nullptr;
    Slot& slot = slots_[ticket.slot];
    if (!slot.in_use || slot.gen != ticket.gen) return nullptr;
    return &slot;
  }
  const Slot* Resolve(Ticket ticket) const {
    return const_cast<HandleTable*>(this)->Resolve(ticket);
  }

  /// Releases one slot (free-list push + name-index erase).
  void Release(uint64_t index) {
    Slot& slot = slots_[index];
    auto [begin, end] = by_name_.equal_range(slot.name);
    for (auto it = begin; it != end; ++it) {
      if (it->second == index) {
        by_name_.erase(it);
        break;
      }
    }
    slot.in_use = false;
    slot.entry = Entry{};
    slot.name.clear();
    free_.push_back(index);
    --open_;
  }

  /// Invalidates every open handle on `name`.
  void InvalidateAll(const std::string& name) {
    auto [begin, end] = by_name_.equal_range(name);
    if (begin == end) return;
    // Release mutates the name index, so stage the slots first — in a
    // member scratch, since this runs once per safe write (the temp's
    // teardown) and must not allocate per operation.
    invalidate_scratch_.clear();
    for (auto it = begin; it != end; ++it) {
      invalidate_scratch_.push_back(it->second);
    }
    for (uint64_t index : invalidate_scratch_) Release(index);
  }

  /// Visits the payload of every open handle on `name` (bind-on-create,
  /// cursor resets, cache refresh). `fn(Entry&)` must not open/release.
  template <typename Fn>
  void ForEachOpen(const std::string& name, Fn fn) {
    auto [begin, end] = by_name_.equal_range(name);
    for (auto it = begin; it != end; ++it) fn(slots_[it->second].entry);
  }

  uint64_t open_count() const { return open_; }

 private:
  std::vector<Slot> slots_;
  std::vector<uint64_t> free_;
  std::unordered_multimap<std::string, uint64_t> by_name_;
  std::vector<uint64_t> invalidate_scratch_;
  uint64_t next_gen_ = 1;
  uint64_t open_ = 0;
};

}  // namespace core
}  // namespace lor

#endif  // LOREPO_CORE_HANDLE_TABLE_H_
