#include "core/repository_factory.h"

#include <cassert>

namespace lor {
namespace core {

namespace {

uint64_t SplitVolume(uint64_t total_bytes, uint32_t shard_count) {
  return shard_count == 0 ? total_bytes : total_bytes / shard_count;
}

}  // namespace

std::shared_ptr<sim::SpindlePlane> RepositoryFactory::PlaneForShard(
    uint32_t shard, uint32_t shard_count, uint64_t region_bytes,
    const sim::DiskParams& disk, sim::DataMode data_mode) const {
  const uint32_t k = topology_.owners_per_spindle;
  if (k <= 1) return nullptr;
  if (planes_shard_count_ != shard_count || shard == 0) {
    planes_.clear();
    const uint32_t spindles = (shard_count + k - 1) / k;
    planes_.reserve(spindles);
    for (uint32_t s = 0; s < spindles; ++s) {
      sim::SpindlePlane::Params p;
      p.disk = disk;
      p.region_bytes = region_bytes;
      p.owners = std::min(k, shard_count - s * k);
      p.data_mode = data_mode;
      p.policy = topology_.policy;
      // Distinct deterministic interleave stream per spindle.
      p.seed = topology_.seed + 0x9E3779B97F4A7C15ull * (s + 1);
      planes_.push_back(std::make_shared<sim::SpindlePlane>(p));
    }
    planes_shard_count_ = shard_count;
  }
  return planes_[shard / k];
}

FsRepositoryFactory::FsRepositoryFactory(FsRepositoryConfig base)
    : base_(std::move(base)) {}

std::unique_ptr<ObjectRepository> FsRepositoryFactory::Create(
    uint32_t shard, uint32_t shard_count) const {
  assert(shard < shard_count);
  (void)shard;
  FsRepositoryConfig config = base_;
  config.volume_bytes = SplitVolume(base_.volume_bytes, shard_count);
  // Each shard's pool gets its slice of the configured cache, like the
  // volume: total DRAM is a host-level budget.
  config.cache.capacity_bytes =
      SplitVolume(base_.cache.capacity_bytes, shard_count);
  config.spindle = PlaneForShard(shard, shard_count, config.volume_bytes,
                                 config.disk, config.data_mode);
  config.spindle_owner =
      config.spindle != nullptr ? shard % topology_.owners_per_spindle : 0;
  return std::make_unique<FsRepository>(std::move(config));
}

DbRepositoryFactory::DbRepositoryFactory(DbRepositoryConfig base)
    : base_(std::move(base)) {}

std::unique_ptr<ObjectRepository> DbRepositoryFactory::Create(
    uint32_t shard, uint32_t shard_count) const {
  assert(shard < shard_count);
  (void)shard;
  DbRepositoryConfig config = base_;
  config.volume_bytes = SplitVolume(base_.volume_bytes, shard_count);
  config.log_volume_bytes = SplitVolume(base_.log_volume_bytes, shard_count);
  config.cache.capacity_bytes =
      SplitVolume(base_.cache.capacity_bytes, shard_count);
  // Only the data volumes share spindles; each shard's log device stays
  // dedicated (see DbRepositoryConfig::spindle).
  config.spindle = PlaneForShard(shard, shard_count, config.volume_bytes,
                                 config.disk, config.data_mode);
  config.spindle_owner =
      config.spindle != nullptr ? shard % topology_.owners_per_spindle : 0;
  return std::make_unique<DbRepository>(std::move(config));
}

}  // namespace core
}  // namespace lor
