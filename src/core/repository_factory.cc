#include "core/repository_factory.h"

#include <cassert>

namespace lor {
namespace core {

namespace {

uint64_t SplitVolume(uint64_t total_bytes, uint32_t shard_count) {
  return shard_count == 0 ? total_bytes : total_bytes / shard_count;
}

}  // namespace

FsRepositoryFactory::FsRepositoryFactory(FsRepositoryConfig base)
    : base_(std::move(base)) {}

std::unique_ptr<ObjectRepository> FsRepositoryFactory::Create(
    uint32_t shard, uint32_t shard_count) const {
  assert(shard < shard_count);
  (void)shard;
  FsRepositoryConfig config = base_;
  config.volume_bytes = SplitVolume(base_.volume_bytes, shard_count);
  // Each shard's pool gets its slice of the configured cache, like the
  // volume: total DRAM is a host-level budget.
  config.cache.capacity_bytes =
      SplitVolume(base_.cache.capacity_bytes, shard_count);
  return std::make_unique<FsRepository>(std::move(config));
}

DbRepositoryFactory::DbRepositoryFactory(DbRepositoryConfig base)
    : base_(std::move(base)) {}

std::unique_ptr<ObjectRepository> DbRepositoryFactory::Create(
    uint32_t shard, uint32_t shard_count) const {
  assert(shard < shard_count);
  (void)shard;
  DbRepositoryConfig config = base_;
  config.volume_bytes = SplitVolume(base_.volume_bytes, shard_count);
  config.log_volume_bytes = SplitVolume(base_.log_volume_bytes, shard_count);
  config.cache.capacity_bytes =
      SplitVolume(base_.cache.capacity_bytes, shard_count);
  return std::make_unique<DbRepository>(std::move(config));
}

}  // namespace core
}  // namespace lor
