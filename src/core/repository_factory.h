// RepositoryFactory: constructs the independent per-shard repositories
// behind the sharded workload runner. Each shard owns a full private
// stack — its own simulated volume(s), BlockDevice + SimClock, and
// file store or page file — the simulation's analogue of per-shard
// directories / database files. Because nothing is shared, one thread
// can drive each shard with no synchronization below the runner.
//
// The factories split the configured volume evenly across shards, so
// total capacity (and the workload's total data volume) is independent
// of the shard count; `Create(0, 1)` is exactly the single-shard
// repository the fig1–fig6 benches construct directly.

#ifndef LOREPO_CORE_REPOSITORY_FACTORY_H_
#define LOREPO_CORE_REPOSITORY_FACTORY_H_

#include <memory>
#include <string>

#include "core/db_repository.h"
#include "core/fs_repository.h"
#include "core/object_repository.h"

namespace lor {
namespace core {

/// Builds N independent repository instances for sharded execution.
class RepositoryFactory {
 public:
  virtual ~RepositoryFactory() = default;

  /// Builds shard `shard` of `shard_count` (both backed by volumes of
  /// total/shard_count bytes). Requires shard < shard_count.
  virtual std::unique_ptr<ObjectRepository> Create(
      uint32_t shard, uint32_t shard_count) const = 0;

  /// Backend label ("filesystem" or "database", the paper's series).
  virtual std::string name() const = 0;
};

/// Factory for FsRepository shards. `base` describes the whole
/// deployment; each shard gets base.volume_bytes / shard_count.
class FsRepositoryFactory : public RepositoryFactory {
 public:
  explicit FsRepositoryFactory(FsRepositoryConfig base = {});

  std::unique_ptr<ObjectRepository> Create(
      uint32_t shard, uint32_t shard_count) const override;
  std::string name() const override { return "filesystem"; }

  const FsRepositoryConfig& base_config() const { return base_; }

 private:
  FsRepositoryConfig base_;
};

/// Factory for DbRepository shards. Data and log volumes are both split
/// across shards.
class DbRepositoryFactory : public RepositoryFactory {
 public:
  explicit DbRepositoryFactory(DbRepositoryConfig base = {});

  std::unique_ptr<ObjectRepository> Create(
      uint32_t shard, uint32_t shard_count) const override;
  std::string name() const override { return "database"; }

  const DbRepositoryConfig& base_config() const { return base_; }

 private:
  DbRepositoryConfig base_;
};

}  // namespace core
}  // namespace lor

#endif  // LOREPO_CORE_REPOSITORY_FACTORY_H_
