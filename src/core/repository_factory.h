// RepositoryFactory: constructs the independent per-shard repositories
// behind the sharded workload runner. Each shard owns a full private
// stack — its own simulated volume(s), BlockDevice + SimClock, and
// file store or page file — the simulation's analogue of per-shard
// directories / database files. Because nothing is shared, one thread
// can drive each shard with no synchronization below the runner.
//
// The factories split the configured volume evenly across shards, so
// total capacity (and the workload's total data volume) is independent
// of the shard count; `Create(0, 1)` is exactly the single-shard
// repository the fig1–fig6 benches construct directly.
//
// Shared spindles: `set_spindle_topology` maps several shards' data
// volumes onto one physical disk (a sim::SpindlePlane hub) — shard i
// lands on spindle i / owners_per_spindle as owner i %
// owners_per_spindle, spindles are created lazily per deployment, and
// each holds min(owners_per_spindle, remaining) regions of one disk
// whose capacity spans them all. Interleaved batches from co-located
// shards then pay real seek interference against one head. The default
// topology (one owner per spindle) is the historical dedicated layout,
// bit for bit. Requesting shard 0 starts a new deployment and a fresh
// spindle farm, so a factory can be reused across runs; Create must be
// called serially (the sharded runner constructs repositories on one
// thread before starting workers).

#ifndef LOREPO_CORE_REPOSITORY_FACTORY_H_
#define LOREPO_CORE_REPOSITORY_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/db_repository.h"
#include "core/fs_repository.h"
#include "core/object_repository.h"
#include "sim/spindle_plane.h"

namespace lor {
namespace core {

/// How shards map onto physical spindles.
struct SpindleTopology {
  /// Shards sharing one disk. 1 (default) = a dedicated spindle per
  /// shard, the historical bit-identical layout.
  uint32_t owners_per_spindle = 1;
  /// Service policy of each shared head (fixed per plane).
  sim::SchedPolicy policy = sim::SchedPolicy::kSptf;
  /// Salts the planes' deterministic service interleave.
  uint64_t seed = 0;
};

/// Builds N independent repository instances for sharded execution.
class RepositoryFactory {
 public:
  virtual ~RepositoryFactory() = default;

  /// Builds shard `shard` of `shard_count` (both backed by volumes of
  /// total/shard_count bytes). Requires shard < shard_count.
  virtual std::unique_ptr<ObjectRepository> Create(
      uint32_t shard, uint32_t shard_count) const = 0;

  /// Backend label ("filesystem" or "database", the paper's series).
  virtual std::string name() const = 0;

  /// Installs the shard→spindle mapping for subsequent Create calls
  /// (and discards any existing spindle farm).
  void set_spindle_topology(const SpindleTopology& topology) {
    topology_ = topology;
    planes_.clear();
    planes_shard_count_ = 0;
  }
  const SpindleTopology& spindle_topology() const { return topology_; }

 protected:
  /// The shared plane `shard` belongs to, or null under the dedicated
  /// topology. Builds the deployment's spindle farm on first use (and
  /// rebuilds it when shard 0 or a different shard_count is requested).
  std::shared_ptr<sim::SpindlePlane> PlaneForShard(
      uint32_t shard, uint32_t shard_count, uint64_t region_bytes,
      const sim::DiskParams& disk, sim::DataMode data_mode) const;

  SpindleTopology topology_;

 private:
  mutable std::vector<std::shared_ptr<sim::SpindlePlane>> planes_;
  mutable uint32_t planes_shard_count_ = 0;
};

/// Factory for FsRepository shards. `base` describes the whole
/// deployment; each shard gets base.volume_bytes / shard_count.
class FsRepositoryFactory : public RepositoryFactory {
 public:
  explicit FsRepositoryFactory(FsRepositoryConfig base = {});

  std::unique_ptr<ObjectRepository> Create(
      uint32_t shard, uint32_t shard_count) const override;
  std::string name() const override { return "filesystem"; }

  const FsRepositoryConfig& base_config() const { return base_; }

 private:
  FsRepositoryConfig base_;
};

/// Factory for DbRepository shards. Data and log volumes are both split
/// across shards.
class DbRepositoryFactory : public RepositoryFactory {
 public:
  explicit DbRepositoryFactory(DbRepositoryConfig base = {});

  std::unique_ptr<ObjectRepository> Create(
      uint32_t shard, uint32_t shard_count) const override;
  std::string name() const override { return "database"; }

  const DbRepositoryConfig& base_config() const { return base_; }

 private:
  DbRepositoryConfig base_;
};

}  // namespace core
}  // namespace lor

#endif  // LOREPO_CORE_REPOSITORY_FACTORY_H_
