// FragmentationTracker: incrementally maintained fragments-per-object
// accounting. The storage back ends notify the tracker on every extent
// mutation (append, preallocate, replace, delete, defrag relocate), so
// a checkpoint's FragmentationReport is a snapshot of maintained state
// — O(histogram resolution), independent of object count and stored
// bytes — instead of a walk over every object's full layout. The
// full-layout scan survives in AnalyzeFragmentationFullScan as the
// debug-mode cross-check.

#ifndef LOREPO_CORE_FRAGMENTATION_TRACKER_H_
#define LOREPO_CORE_FRAGMENTATION_TRACKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace lor {
namespace core {

/// Volume-wide fragmentation measurements.
struct FragmentationReport {
  uint64_t objects = 0;
  /// The paper's headline metric (contiguous object == 1).
  double fragments_per_object = 0.0;
  uint64_t max_fragments = 0;
  uint64_t p50_fragments = 0;
  uint64_t p99_fragments = 0;
  /// Mean bytes per physically contiguous piece.
  double mean_fragment_bytes = 0.0;
  /// Fraction of objects stored contiguously.
  double contiguous_fraction = 0.0;
  /// Full distribution for further analysis.
  IntHistogram histogram{kHistogramResolution};

  /// Unit-width histogram buckets; fragment counts above this land in
  /// the overflow bucket. The tracker uses the same resolution so its
  /// snapshots are bit-identical to full-scan reports.
  static constexpr uint64_t kHistogramResolution = 4096;

  std::string ToString() const;
};

/// Live fragment-count accounting for one repository.
///
/// Repositories report per-object (fragment count, byte size) pairs:
/// Add when an object appears, Remove when it disappears, Update when a
/// mutation changes its layout or size. All three are O(1) except for
/// objects beyond kHistogramResolution fragments (O(log distinct
/// overflow values) — pathological layouts only).
class FragmentationTracker {
 public:
  void Add(uint64_t fragments, uint64_t bytes);
  void Remove(uint64_t fragments, uint64_t bytes);
  void Update(uint64_t old_fragments, uint64_t old_bytes,
              uint64_t new_fragments, uint64_t new_bytes);

  /// Folds another tracker's population into this one (exact integer
  /// merge — counts, overflow values, and totals all add). This is how
  /// the sharded runner produces one volume-wide report from per-shard
  /// repositories: merge the shard trackers, then Snapshot().
  void Merge(const FragmentationTracker& other);

  uint64_t objects() const { return objects_; }
  uint64_t total_fragments() const { return total_fragments_; }
  uint64_t total_bytes() const { return total_bytes_; }

  /// Builds a FragmentationReport from the maintained counts. Field-for-
  /// field identical to AnalyzeFragmentationFullScan over the same
  /// population (same integer totals, same histogram contents).
  FragmentationReport Snapshot() const;

 private:
  /// counts_[f] = live objects currently laid out in f fragments.
  std::vector<uint64_t> counts_ =
      std::vector<uint64_t>(FragmentationReport::kHistogramResolution + 1, 0);
  /// Exact counts for fragment values beyond the bucket range.
  std::map<uint64_t, uint64_t> overflow_;
  uint64_t objects_ = 0;
  uint64_t total_fragments_ = 0;
  uint64_t total_bytes_ = 0;
  /// Objects with <= 1 fragment (the report's contiguous fraction).
  uint64_t contiguous_ = 0;
};

}  // namespace core
}  // namespace lor

#endif  // LOREPO_CORE_FRAGMENTATION_TRACKER_H_
