// DbRepository: the paper's database configuration (§4.2) — objects as
// out-of-row BLOBs in a SQL-Server-like engine running in bulk-logged
// mode, with the log on a dedicated drive.
//
// Access stack: the handle operations are the primary path — Open pins
// the metadata row, the blob layout, and positioned metadata/blob-tree
// cursors in the BlobStore handle table, so Get/SafeWrite through the
// handle skip the per-operation query + row lookup. The name-based
// mutations are thin open–op–release wrappers over the same code (the
// name-based Get is the store's own per-call query + lookup + read),
// charging exactly what the historical per-operation path charged.

#ifndef LOREPO_CORE_DB_REPOSITORY_H_
#define LOREPO_CORE_DB_REPOSITORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/object_repository.h"
#include "db/blob_store.h"
#include "sim/block_device.h"
#include "sim/buffer_pool.h"
#include "sim/spindle_plane.h"

namespace lor {
namespace core {

/// Configuration of the database-backed repository.
struct DbRepositoryConfig {
  /// Data volume size.
  uint64_t volume_bytes = 40 * kGiB;
  /// Dedicated log volume size (0 disables the log device and charges
  /// commits as CPU only).
  uint64_t log_volume_bytes = 4 * kGiB;
  /// Drive model; capacity is overridden per volume.
  sim::DiskParams disk = sim::DiskParams::St3400832as();
  sim::DataMode data_mode = sim::DataMode::kMetadataOnly;
  /// Buffer pool fronting the data volume (the log stays uncached — a
  /// strictly-ordered append stream gains nothing from one). Capacity 0
  /// (the default) disables the pool — the paper's cold-cache regime.
  sim::BufferPoolOptions cache;
  /// Engine tuning (write request size, bulk-logged mode, costs...).
  db::BlobStoreOptions store;
  /// Shared-spindle binding for the *data* volume (see
  /// FsRepositoryConfig::spindle). The dedicated log device, when
  /// enabled, stays private to this shard — its own spindle, its own
  /// clock — matching the paper's log-on-a-separate-drive setup. Crash
  /// simulation is unavailable in shared mode.
  std::shared_ptr<sim::SpindlePlane> spindle;
  uint32_t spindle_owner = 0;
};

/// Database-backed ObjectRepository.
class DbRepository : public ObjectRepository {
 public:
  explicit DbRepository(DbRepositoryConfig config = {});

  // Name-based surface (open–op–release wrappers).
  Status Put(const std::string& key, uint64_t size,
             std::span<const uint8_t> data = {}) override;
  Status SafeWrite(const std::string& key, uint64_t size,
                   std::span<const uint8_t> data = {}) override;
  Status Get(const std::string& key,
             std::vector<uint8_t>* out = nullptr) override;
  Status Delete(const std::string& key) override;
  bool Exists(const std::string& key) const override;
  Result<alloc::ExtentList> GetLayout(const std::string& key) const override;
  Result<uint64_t> GetSize(const std::string& key) const override;

  // Handle surface (BlobStore handle table underneath).
  Result<ObjectHandle> Open(const std::string& key) override;
  Result<ObjectHandle> OpenForWrite(const std::string& key) override;
  Status Release(ObjectHandle* handle) override;
  Status Get(const ObjectHandle& handle,
             std::vector<uint8_t>* out = nullptr) override;
  Status SafeWrite(const ObjectHandle& handle, uint64_t size,
                   std::span<const uint8_t> data = {}) override;
  Status Delete(ObjectHandle* handle) override;
  Result<alloc::ExtentList> GetLayout(
      const ObjectHandle& handle) const override;
  Result<uint64_t> GetSize(const ObjectHandle& handle) const override;

  std::vector<std::string> ListKeys() const override;
  void VisitObjects(
      const std::function<void(const std::string& key,
                               const alloc::ExtentList& layout,
                               uint64_t size_bytes)>& visit) const override;
  const FragmentationTracker* fragmentation_tracker() const override;
  uint64_t object_count() const override;
  uint64_t live_bytes() const override;
  uint64_t volume_bytes() const override;
  uint64_t free_bytes() const override;
  double now() const override;
  sim::IoStats device_stats() const override;
  sim::BufferPoolStats cache_stats() const override {
    return pool_->stats();
  }
  Status FlushCache() override;
  Status CheckConsistency() const override;
  std::string name() const override { return "database"; }

  /// Checkpoint + log-tail replay against the attached
  /// sim::FaultInjector's durability verdicts (db::BlobStore::Recover).
  /// When the injector tripped, the data scheduler's dead queue is
  /// abandoned and both volumes' head positions invalidated first, so
  /// calling Mount right after MaterializeCrash is the whole restart.
  Result<MountReport> Mount() override;

  /// Adds to the base verifier: payload FNV-1a checks under
  /// DataMode::kRetain (kTornPayload / kLostObject), and exact page
  /// accounting of live layouts against the LOB allocation unit
  /// (kLeakedExtent / kDoubleAllocated). Not meaningful while a crash
  /// window is armed — held pre-images look like leaks.
  Result<FsckReport> Fsck() override;

  /// Background scrubber pass with repair: walks objects from the
  /// persistent cursor re-reading payloads with charged I/O. A read
  /// that only succeeded through media retries marks the blob's pages
  /// pending-bad and supersedes it with a safe write (the old pages
  /// divert to the allocation unit's quarantine list when freed);
  /// reads that stay broken after retry count as unrecoverable (a
  /// client rewrite heals them).
  Result<ScrubReport> Scrub(const ScrubOptions& options = {}) override;

  // Submission/completion pipeline. The scheduler fronts the data
  // volume only: the log stays a strictly-ordered synchronous append
  // stream (bulk-logged commits are tiny and serialized by the engine),
  // with commit waits charged to the op's chain as CPU.
  Status SetQueueDepth(
      uint32_t depth,
      sim::SchedPolicy policy = sim::SchedPolicy::kSptf) override;
  Status DrainIo() override;
  Status SettleIo() override;
  bool shared_spindle() const override;
  const sim::LatencyRecorder* latency_recorder() const override {
    return &latency_;
  }

  db::BlobStore* blob_store() { return store_.get(); }
  sim::BlockDevice* data_device() { return data_device_.get(); }
  /// Null when the configuration disables the dedicated log volume.
  sim::BlockDevice* log_device() { return log_device_.get(); }
  sim::IoScheduler* io_scheduler() { return scheduler_.get(); }
  sim::BufferPool* buffer_pool() { return pool_.get(); }
  const DbRepositoryConfig& config() const { return config_; }

 private:
  /// Converts a page-run layout into byte extents.
  Result<alloc::ExtentList> ScaleLayout(Result<db::BlobLayout> layout) const;

  DbRepositoryConfig config_;
  std::unique_ptr<sim::BlockDevice> data_device_;
  /// Cache tier fronting data_device_ only. Always constructed
  /// (possibly disabled).
  std::unique_ptr<sim::BufferPool> pool_;
  std::unique_ptr<sim::BlockDevice> log_device_;
  std::unique_ptr<db::BlobStore> store_;
  sim::LatencyRecorder latency_;
  /// Fronts data_device_ for the repository's whole lifetime
  /// (disengaged = synchronous).
  std::unique_ptr<sim::IoScheduler> scheduler_;
};

}  // namespace core
}  // namespace lor

#endif  // LOREPO_CORE_DB_REPOSITORY_H_
