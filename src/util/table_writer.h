// Plain-text table / CSV emitter for the benchmark harness, so every
// bench binary prints the paper's rows in an aligned, diff-friendly form.

#ifndef LOREPO_UTIL_TABLE_WRITER_H_
#define LOREPO_UTIL_TABLE_WRITER_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace lor {

/// Collects rows of strings and prints them as an aligned text table or
/// as CSV. Numeric convenience overloads format with sensible precision.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Starts a new row; subsequent Cell() calls fill it left to right.
  TableWriter& Row();
  TableWriter& Cell(const std::string& value);
  TableWriter& Cell(const char* value);
  TableWriter& Cell(double value, int precision = 2);
  TableWriter& Cell(uint64_t value);
  TableWriter& Cell(int value);

  /// Adds a complete row at once.
  void AddRow(std::vector<std::string> cells);

  size_t row_count() const { return rows_.size(); }

  /// Aligned, pipe-separated text table with a rule under the header.
  void PrintText(std::ostream& os) const;
  /// RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  void PrintCsv(std::ostream& os) const;
  /// Convenience overloads writing to stdout.
  void PrintText() const;
  void PrintCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lor

#endif  // LOREPO_UTIL_TABLE_WRITER_H_
