#include "util/table_writer.h"

#include <algorithm>
#include <cstdio>
#include <iostream>

namespace lor {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

TableWriter& TableWriter::Row() {
  rows_.emplace_back();
  return *this;
}

TableWriter& TableWriter::Cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

TableWriter& TableWriter::Cell(const char* value) {
  rows_.back().emplace_back(value);
  return *this;
}

TableWriter& TableWriter::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  rows_.back().emplace_back(buf);
  return *this;
}

TableWriter& TableWriter::Cell(uint64_t value) {
  rows_.back().push_back(std::to_string(value));
  return *this;
}

TableWriter& TableWriter::Cell(int value) {
  rows_.back().push_back(std::to_string(value));
  return *this;
}

void TableWriter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TableWriter::PrintText(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << (i == 0 ? "| " : " ");
      os << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(header_);
  for (size_t i = 0; i < widths.size(); ++i) {
    os << (i == 0 ? "|" : "") << std::string(widths[i] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TableWriter::PrintText() const { PrintText(std::cout); }

void TableWriter::PrintCsv() const { PrintCsv(std::cout); }

void TableWriter::PrintCsv(std::ostream& os) const {
  auto print_field = [&](const std::string& field) {
    if (field.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (char c : field) {
        if (c == '"') os << '"';
        os << c;
      }
      os << '"';
    } else {
      os << field;
    }
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      print_field(row[i]);
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace lor
