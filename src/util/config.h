// Build-configuration guards for lorepo.

#ifndef LOREPO_UTIL_CONFIG_H_
#define LOREPO_UTIL_CONFIG_H_

// The codebase requires C++20: alloc/extent.h uses a defaulted
// operator== and sim/block_device.h uses std::span. Without this guard a
// C++17 build dies deep inside extent.h with a cryptic "defaulted
// comparison only available with -std=c++20" error; fail up front with
// an actionable message instead.
#if !defined(__cplusplus) || __cplusplus < 202002L
#error "lorepo requires C++20. Build with -std=c++20 (the CMake build sets this via CMAKE_CXX_STANDARD 20)."
#endif

#endif  // LOREPO_UTIL_CONFIG_H_
