// Streaming summary statistics and a fixed-resolution histogram, used by
// the fragmentation analyzer and the benchmark harness.

#ifndef LOREPO_UTIL_HISTOGRAM_H_
#define LOREPO_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lor {

/// Running mean/min/max/stddev without storing samples (Welford).
class SummaryStats {
 public:
  void Add(double x);
  void Merge(const SummaryStats& other);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Population variance.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  std::string ToString() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Histogram over integer values with unit-width buckets up to a cap;
/// values above the cap land in an overflow bucket. Suited to
/// fragments-per-object distributions, which are small integers.
class IntHistogram {
 public:
  explicit IntHistogram(uint64_t max_tracked = 1024);

  void Add(uint64_t value);
  /// Adds `n` samples of `value` at once (bulk fill from maintained
  /// per-value counts, e.g. FragmentationTracker snapshots).
  void AddCount(uint64_t value, uint64_t n);
  void Merge(const IntHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const;
  uint64_t min() const;
  uint64_t max() const;
  /// Smallest v such that at least `q` fraction of samples are <= v.
  uint64_t Percentile(double q) const;
  uint64_t BucketCount(uint64_t value) const;

  std::string ToString() const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t overflow_ = 0;
  uint64_t overflow_max_ = 0;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

}  // namespace lor

#endif  // LOREPO_UTIL_HISTOGRAM_H_
