// Streaming summary statistics and a fixed-resolution histogram, used by
// the fragmentation analyzer and the benchmark harness.

#ifndef LOREPO_UTIL_HISTOGRAM_H_
#define LOREPO_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lor {

/// Running mean/min/max/stddev without storing samples (Welford).
class SummaryStats {
 public:
  void Add(double x);
  void Merge(const SummaryStats& other);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Population variance.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  std::string ToString() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Log-bucketed histogram for positive durations in seconds, built for
/// per-operation latency percentiles. Buckets subdivide each power-of-two
/// octave into kSubBuckets linear slices, covering ~60 ns to ~36 hours
/// with under/overflow buckets at the ends, so p50/p99/p999 resolve to
/// within one part in kSubBuckets across the whole range. Merge and
/// operator- are exact per-bucket integer arithmetic, which lets
/// cumulative per-shard recorders be summed (like sim::Sum for IoStats)
/// and checkpoint snapshots be differenced without drift.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Add(double seconds);
  /// Exact per-bucket merge: the result is identical to adding both
  /// inputs' samples into one histogram.
  void Merge(const LatencyHistogram& other);
  /// Exact per-bucket difference for cumulative snapshots: `*this` must
  /// have been produced by adding samples on top of `other`. The
  /// difference's min/max are known only to bucket resolution.
  LatencyHistogram operator-(const LatencyHistogram& other) const;
  void Reset();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  /// Exact extrema of the added samples (bucket bounds after operator-).
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Value v such that at least a `q` fraction of samples are <= v's
  /// bucket: the midpoint of the target bucket, clamped to [min, max].
  /// A single-sample histogram therefore returns that sample exactly.
  double Quantile(double q) const;

  std::string ToString() const;

  /// Linear sub-buckets per power-of-two octave.
  static constexpr int kSubBuckets = 16;

  /// Bucket mapping, exposed so tests can pin the boundary behaviour.
  static size_t BucketIndex(double seconds);
  static double BucketLowerBound(size_t index);
  static double BucketUpperBound(size_t index);
  static size_t bucket_count() { return kBucketCount; }

 private:
  static constexpr int kMinOctave = -24;  // 2^-24 s ~ 60 ns
  static constexpr int kMaxOctave = 17;   // 2^17 s ~ 36 hours
  static constexpr size_t kBucketCount =
      static_cast<size_t>(kMaxOctave - kMinOctave) * kSubBuckets + 2;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram over integer values with unit-width buckets up to a cap;
/// values above the cap land in an overflow bucket. Suited to
/// fragments-per-object distributions, which are small integers.
class IntHistogram {
 public:
  explicit IntHistogram(uint64_t max_tracked = 1024);

  void Add(uint64_t value);
  /// Adds `n` samples of `value` at once (bulk fill from maintained
  /// per-value counts, e.g. FragmentationTracker snapshots).
  void AddCount(uint64_t value, uint64_t n);
  void Merge(const IntHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const;
  uint64_t min() const;
  uint64_t max() const;
  /// Smallest v such that at least `q` fraction of samples are <= v.
  uint64_t Percentile(double q) const;
  uint64_t BucketCount(uint64_t value) const;

  std::string ToString() const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t overflow_ = 0;
  uint64_t overflow_max_ = 0;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

}  // namespace lor

#endif  // LOREPO_UTIL_HISTOGRAM_H_
