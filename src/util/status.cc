#include "util/status.h"

namespace lor {

std::string_view StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kNoSpace:
      return "NoSpace";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace lor
