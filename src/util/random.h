// Deterministic PRNG for workload generation.
//
// All randomness in lorepo flows through `Rng` so that every experiment is
// reproducible from a seed. The generator is xoshiro256++, which is fast,
// has a 2^256-1 period, and passes BigCrush.

#ifndef LOREPO_UTIL_RANDOM_H_
#define LOREPO_UTIL_RANDOM_H_

#include <cstdint>
#include <cmath>

namespace lor {

/// xoshiro256++ pseudo-random generator with convenience distributions.
class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n == 0 returns 0. Uses Lemire's unbiased method.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Log-normal with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma);

  /// Skips ahead as-if 2^128 calls; used to derive independent streams.
  void LongJump();

  /// A fresh generator whose stream is independent of this one.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace lor

#endif  // LOREPO_UTIL_RANDOM_H_
