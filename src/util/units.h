// Byte-size units and formatting helpers used throughout lorepo.

#ifndef LOREPO_UTIL_UNITS_H_
#define LOREPO_UTIL_UNITS_H_

#include <cstdint>
#include <string>

#include "util/config.h"  // C++20 floor guard

namespace lor {

inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;
inline constexpr uint64_t kTiB = 1024ULL * kGiB;

/// "64 KB", "1.5 MB", "400 GB" — compact human form (power-of-two units,
/// printed with the decimal suffixes the paper uses).
std::string FormatBytes(uint64_t bytes);

/// "12.34 MB/s" from bytes and seconds; "inf" guarded.
std::string FormatThroughput(uint64_t bytes, double seconds);

/// Seconds to "1.23 ms" / "4.5 s" style.
std::string FormatSeconds(double seconds);

/// Parse "256K", "1M", "40G", "123" (bytes). Returns 0 on parse failure.
uint64_t ParseBytes(const std::string& text);

}  // namespace lor

#endif  // LOREPO_UTIL_UNITS_H_
