// FNV-1a 64-bit hashing for payload integrity checks. Streamable: a
// hash folded chunk by chunk equals the hash of the concatenation, so
// the stores can maintain an object's payload hash across streamed
// appends without buffering.

#ifndef LOREPO_UTIL_FNV_H_
#define LOREPO_UTIL_FNV_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/config.h"  // C++20 floor guard (std::span above)

namespace lor {

inline constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
inline constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// Granularity of the stores' end-to-end media checksums: one FNV-1a
/// sum per this many logical payload bytes (matches the paper's 64 KB
/// request size, so a streamed safe write seals one sum per request).
inline constexpr uint64_t kChecksumBlockBytes = 64 * 1024;

/// Folds `data` into a running FNV-1a state.
inline uint64_t FnvUpdate(uint64_t state, std::span<const uint8_t> data) {
  for (uint8_t b : data) {
    state ^= b;
    state *= kFnvPrime;
  }
  return state;
}

/// One-shot hash of a buffer.
inline uint64_t Fnv(std::span<const uint8_t> data) {
  return FnvUpdate(kFnvBasis, data);
}

/// Per-block sums of a whole payload: one sum per kChecksumBlockBytes
/// chunk, partial tail included as the last sum. Used by writers that
/// see the full payload at once (the database engine); the streaming
/// filesystem writer maintains the same sums incrementally.
inline std::vector<uint64_t> FnvBlockSums(std::span<const uint8_t> data) {
  std::vector<uint64_t> sums;
  sums.reserve((data.size() + kChecksumBlockBytes - 1) / kChecksumBlockBytes);
  for (uint64_t pos = 0; pos < data.size(); pos += kChecksumBlockBytes) {
    const uint64_t take =
        std::min<uint64_t>(kChecksumBlockBytes, data.size() - pos);
    sums.push_back(Fnv(data.subspan(pos, take)));
  }
  return sums;
}

}  // namespace lor

#endif  // LOREPO_UTIL_FNV_H_
