// FNV-1a 64-bit hashing for payload integrity checks. Streamable: a
// hash folded chunk by chunk equals the hash of the concatenation, so
// the stores can maintain an object's payload hash across streamed
// appends without buffering.

#ifndef LOREPO_UTIL_FNV_H_
#define LOREPO_UTIL_FNV_H_

#include <cstdint>
#include <span>

#include "util/config.h"  // C++20 floor guard (std::span above)

namespace lor {

inline constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
inline constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// Folds `data` into a running FNV-1a state.
inline uint64_t FnvUpdate(uint64_t state, std::span<const uint8_t> data) {
  for (uint8_t b : data) {
    state ^= b;
    state *= kFnvPrime;
  }
  return state;
}

/// One-shot hash of a buffer.
inline uint64_t Fnv(std::span<const uint8_t> data) {
  return FnvUpdate(kFnvBasis, data);
}

}  // namespace lor

#endif  // LOREPO_UTIL_FNV_H_
