// Result<T>: a value-or-Status union, the companion of Status for
// functions that produce a value on success.

#ifndef LOREPO_UTIL_RESULT_H_
#define LOREPO_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace lor {

/// Either a `T` or a non-OK `Status`.
///
/// Constructing from a value yields an OK result; constructing from a
/// status requires the status to be non-OK. Access to the value asserts
/// `ok()` in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::InvalidArgument("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : status_;
  }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace lor

/// Evaluate `rexpr` (a Result<T>); on error return its status, otherwise
/// bind the value to `lhs`.
#define LOR_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  LOR_ASSIGN_OR_RETURN_IMPL_(                            \
      LOR_STATUS_MACRO_CONCAT_(_lor_result, __LINE__), lhs, rexpr)

#define LOR_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#define LOR_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define LOR_STATUS_MACRO_CONCAT_(x, y) LOR_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // LOREPO_UTIL_RESULT_H_
