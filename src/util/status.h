// Status: lightweight error propagation for lorepo, following the
// RocksDB/Arrow idiom of returning status objects instead of throwing
// exceptions on storage-layer failure paths.

#ifndef LOREPO_UTIL_STATUS_H_
#define LOREPO_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace lor {

/// Outcome of a storage operation.
///
/// A `Status` is either OK (the default) or carries an error code plus a
/// human-readable message. Statuses are cheap to copy in the OK case and
/// must be checked by the caller; helper macros `LOR_RETURN_IF_ERROR` and
/// `LOR_ASSIGN_OR_RETURN` make propagation terse.
class Status {
 public:
  /// Error taxonomy. Mirrors the failure classes a get/put repository can
  /// report to an application.
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,        ///< No object/file/row with the given key.
    kAlreadyExists = 2,   ///< Create of a key that is present.
    kNoSpace = 3,         ///< Volume cannot satisfy the allocation.
    kInvalidArgument = 4, ///< Caller passed an out-of-contract value.
    kCorruption = 5,      ///< On-disk state failed an integrity check.
    kIoError = 6,         ///< Simulated device rejected the request.
    kNotSupported = 7,    ///< Operation not implemented by this back end.
    kBusy = 8,            ///< Resource is temporarily unavailable.
    kAborted = 9,         ///< Operation was rolled back.
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status NoSpace(std::string_view msg) {
    return Status(Code::kNoSpace, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(Code::kIoError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Busy(std::string_view msg) { return Status(Code::kBusy, msg); }
  static Status Aborted(std::string_view msg) {
    return Status(Code::kAborted, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsNoSpace() const { return code_ == Code::kNoSpace; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAborted() const { return code_ == Code::kAborted; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Human-readable name of a status code ("NotFound", ...).
std::string_view StatusCodeName(Status::Code code);

}  // namespace lor

/// Propagate a non-OK Status to the caller.
#define LOR_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::lor::Status _lor_status = (expr);          \
    if (!_lor_status.ok()) return _lor_status;   \
  } while (false)

#endif  // LOREPO_UTIL_STATUS_H_
