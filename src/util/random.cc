#include "util/random.h"

namespace lor {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  if (n == 0) return 0;
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    uint64_t threshold = -n % n;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

void Rng::LongJump() {
  static constexpr uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Rng Rng::Fork() {
  // The child continues from the current position; the parent jumps to
  // the next 2^128-length stream block, so the two never overlap and
  // successive forks all differ.
  Rng child = *this;
  child.has_cached_gaussian_ = false;
  LongJump();
  return child;
}

}  // namespace lor
