#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace lor {

void SummaryStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ = total;
}

void SummaryStats::Reset() { *this = SummaryStats(); }

double SummaryStats::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

std::string SummaryStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3f min=%.3f max=%.3f stddev=%.3f",
                static_cast<unsigned long long>(count_), mean(), min(), max(),
                stddev());
  return buf;
}

LatencyHistogram::LatencyHistogram() : buckets_(kBucketCount, 0) {}

size_t LatencyHistogram::BucketIndex(double seconds) {
  // Everything below the tracked range (including zero and any negative
  // or non-finite garbage) lands in the underflow bucket.
  if (!(seconds >= std::ldexp(1.0, kMinOctave))) return 0;
  if (seconds >= std::ldexp(1.0, kMaxOctave)) return kBucketCount - 1;
  int exp = 0;
  const double m = std::frexp(seconds, &exp);  // seconds = m * 2^exp, m in [0.5, 1)
  const int octave = exp - 1;                  // seconds in [2^octave, 2^(octave+1))
  int sub = static_cast<int>((m * 2.0 - 1.0) * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 +
         static_cast<size_t>(octave - kMinOctave) * kSubBuckets +
         static_cast<size_t>(sub);
}

double LatencyHistogram::BucketLowerBound(size_t index) {
  if (index == 0) return 0.0;
  if (index >= kBucketCount - 1) return std::ldexp(1.0, kMaxOctave);
  const size_t linear = index - 1;
  const int octave = kMinOctave + static_cast<int>(linear / kSubBuckets);
  const int sub = static_cast<int>(linear % kSubBuckets);
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

double LatencyHistogram::BucketUpperBound(size_t index) {
  if (index >= kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return BucketLowerBound(index + 1);
}

void LatencyHistogram::Add(double seconds) {
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
  ++buckets_[BucketIndex(seconds)];
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

LatencyHistogram LatencyHistogram::operator-(
    const LatencyHistogram& other) const {
  LatencyHistogram diff;
  size_t first = kBucketCount;
  size_t last = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    const uint64_t d =
        buckets_[i] >= other.buckets_[i] ? buckets_[i] - other.buckets_[i] : 0;
    diff.buckets_[i] = d;
    if (d != 0) {
      first = std::min(first, i);
      last = i;
    }
    diff.count_ += d;
  }
  diff.sum_ = sum_ - other.sum_;
  if (diff.count_ != 0) {
    // Exact extrema are gone after subtraction; bound them by the
    // occupied buckets (the overflow bucket's upper bound is the
    // cumulative max, the tightest value still known).
    diff.min_ = BucketLowerBound(first);
    diff.max_ = last >= kBucketCount - 1 ? max_ : BucketUpperBound(last);
  }
  return diff;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double LatencyHistogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t seen = 0;
  size_t bucket = kBucketCount - 1;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      bucket = i;
      break;
    }
  }
  double v;
  if (bucket >= kBucketCount - 1) {
    v = max_;  // Overflow bucket: the exact max is the best answer.
  } else {
    v = (BucketLowerBound(bucket) + BucketUpperBound(bucket)) / 2.0;
  }
  return std::clamp(v, min_, max_);
}

std::string LatencyHistogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu p50=%.3fms p99=%.3fms p999=%.3fms max=%.3fms",
                static_cast<unsigned long long>(count_),
                Quantile(0.5) * 1e3, Quantile(0.99) * 1e3,
                Quantile(0.999) * 1e3, max() * 1e3);
  return buf;
}

IntHistogram::IntHistogram(uint64_t max_tracked)
    : buckets_(max_tracked + 1, 0) {}

void IntHistogram::Add(uint64_t value) {
  ++count_;
  sum_ += value;
  if (value < buckets_.size()) {
    ++buckets_[value];
  } else {
    ++overflow_;
    overflow_max_ = std::max(overflow_max_, value);
  }
}

void IntHistogram::AddCount(uint64_t value, uint64_t n) {
  if (n == 0) return;
  count_ += n;
  sum_ += value * n;
  if (value < buckets_.size()) {
    buckets_[value] += n;
  } else {
    overflow_ += n;
    overflow_max_ = std::max(overflow_max_, value);
  }
}

void IntHistogram::Merge(const IntHistogram& other) {
  const size_t shared = std::min(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < shared; ++i) buckets_[i] += other.buckets_[i];
  for (size_t i = shared; i < other.buckets_.size(); ++i) {
    if (other.buckets_[i] != 0) {
      overflow_ += other.buckets_[i];
      overflow_max_ = std::max(overflow_max_, static_cast<uint64_t>(i));
    }
  }
  overflow_ += other.overflow_;
  overflow_max_ = std::max(overflow_max_, other.overflow_max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void IntHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  overflow_ = 0;
  overflow_max_ = 0;
  count_ = 0;
  sum_ = 0;
}

double IntHistogram::mean() const {
  return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                : 0.0;
}

uint64_t IntHistogram::min() const {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) return i;
  }
  return overflow_ != 0 ? buckets_.size() : 0;
}

uint64_t IntHistogram::max() const {
  if (overflow_ != 0) return overflow_max_;
  for (size_t i = buckets_.size(); i-- > 0;) {
    if (buckets_[i] != 0) return i;
  }
  return 0;
}

uint64_t IntHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return i;
  }
  return overflow_max_;
}

uint64_t IntHistogram::BucketCount(uint64_t value) const {
  return value < buckets_.size() ? buckets_[value] : 0;
}

std::string IntHistogram::ToString() const {
  char buf[160];
  std::snprintf(
      buf, sizeof(buf), "n=%llu mean=%.3f min=%llu p50=%llu p99=%llu max=%llu",
      static_cast<unsigned long long>(count_), mean(),
      static_cast<unsigned long long>(min()),
      static_cast<unsigned long long>(Percentile(0.5)),
      static_cast<unsigned long long>(Percentile(0.99)),
      static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace lor
