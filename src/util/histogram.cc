#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lor {

void SummaryStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ = total;
}

void SummaryStats::Reset() { *this = SummaryStats(); }

double SummaryStats::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

std::string SummaryStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3f min=%.3f max=%.3f stddev=%.3f",
                static_cast<unsigned long long>(count_), mean(), min(), max(),
                stddev());
  return buf;
}

IntHistogram::IntHistogram(uint64_t max_tracked)
    : buckets_(max_tracked + 1, 0) {}

void IntHistogram::Add(uint64_t value) {
  ++count_;
  sum_ += value;
  if (value < buckets_.size()) {
    ++buckets_[value];
  } else {
    ++overflow_;
    overflow_max_ = std::max(overflow_max_, value);
  }
}

void IntHistogram::AddCount(uint64_t value, uint64_t n) {
  if (n == 0) return;
  count_ += n;
  sum_ += value * n;
  if (value < buckets_.size()) {
    buckets_[value] += n;
  } else {
    overflow_ += n;
    overflow_max_ = std::max(overflow_max_, value);
  }
}

void IntHistogram::Merge(const IntHistogram& other) {
  const size_t shared = std::min(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < shared; ++i) buckets_[i] += other.buckets_[i];
  for (size_t i = shared; i < other.buckets_.size(); ++i) {
    if (other.buckets_[i] != 0) {
      overflow_ += other.buckets_[i];
      overflow_max_ = std::max(overflow_max_, static_cast<uint64_t>(i));
    }
  }
  overflow_ += other.overflow_;
  overflow_max_ = std::max(overflow_max_, other.overflow_max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void IntHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  overflow_ = 0;
  overflow_max_ = 0;
  count_ = 0;
  sum_ = 0;
}

double IntHistogram::mean() const {
  return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                : 0.0;
}

uint64_t IntHistogram::min() const {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) return i;
  }
  return overflow_ != 0 ? buckets_.size() : 0;
}

uint64_t IntHistogram::max() const {
  if (overflow_ != 0) return overflow_max_;
  for (size_t i = buckets_.size(); i-- > 0;) {
    if (buckets_[i] != 0) return i;
  }
  return 0;
}

uint64_t IntHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return i;
  }
  return overflow_max_;
}

uint64_t IntHistogram::BucketCount(uint64_t value) const {
  return value < buckets_.size() ? buckets_[value] : 0;
}

std::string IntHistogram::ToString() const {
  char buf[160];
  std::snprintf(
      buf, sizeof(buf), "n=%llu mean=%.3f min=%llu p50=%llu p99=%llu max=%llu",
      static_cast<unsigned long long>(count_), mean(),
      static_cast<unsigned long long>(min()),
      static_cast<unsigned long long>(Percentile(0.5)),
      static_cast<unsigned long long>(Percentile(0.99)),
      static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace lor
