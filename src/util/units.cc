#include "util/units.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace lor {

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kTiB && bytes % kTiB == 0) {
    std::snprintf(buf, sizeof(buf), "%llu TB",
                  static_cast<unsigned long long>(bytes / kTiB));
  } else if (bytes >= kGiB) {
    if (bytes % kGiB == 0) {
      std::snprintf(buf, sizeof(buf), "%llu GB",
                    static_cast<unsigned long long>(bytes / kGiB));
    } else {
      std::snprintf(buf, sizeof(buf), "%.2f GB",
                    static_cast<double>(bytes) / static_cast<double>(kGiB));
    }
  } else if (bytes >= kMiB) {
    if (bytes % kMiB == 0) {
      std::snprintf(buf, sizeof(buf), "%llu MB",
                    static_cast<unsigned long long>(bytes / kMiB));
    } else {
      std::snprintf(buf, sizeof(buf), "%.2f MB",
                    static_cast<double>(bytes) / static_cast<double>(kMiB));
    }
  } else if (bytes >= kKiB) {
    if (bytes % kKiB == 0) {
      std::snprintf(buf, sizeof(buf), "%llu KB",
                    static_cast<unsigned long long>(bytes / kKiB));
    } else {
      std::snprintf(buf, sizeof(buf), "%.2f KB",
                    static_cast<double>(bytes) / static_cast<double>(kKiB));
    }
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatThroughput(uint64_t bytes, double seconds) {
  char buf[64];
  if (seconds <= 0.0) return "inf";
  const double mbps =
      static_cast<double>(bytes) / static_cast<double>(kMiB) / seconds;
  std::snprintf(buf, sizeof(buf), "%.2f MB/s", mbps);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

uint64_t ParseBytes(const std::string& text) {
  if (text.empty()) return 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0) return 0;
  uint64_t multiplier = 1;
  // Accept K/KB/KiB, M/MB/MiB, G, T; case-insensitive.
  if (*end != '\0') {
    switch (std::toupper(*end)) {
      case 'K':
        multiplier = kKiB;
        break;
      case 'M':
        multiplier = kMiB;
        break;
      case 'G':
        multiplier = kGiB;
        break;
      case 'T':
        multiplier = kTiB;
        break;
      default:
        return 0;
    }
  }
  return static_cast<uint64_t>(value * static_cast<double>(multiplier));
}

}  // namespace lor
