// DeferredFreeQueue: freed extents parked until the journal commits.
//
// NTFS requires the transactional log entry for a deletion to commit
// before the freed clusters can be reallocated (paper §2). The practical
// consequence for a safe-write workload is that a replacement object can
// never land in the hole its own delete just opened — a first-order
// driver of fragmentation that immediate-reuse allocators do not show.

#ifndef LOREPO_ALLOC_DEFERRED_FREE_QUEUE_H_
#define LOREPO_ALLOC_DEFERRED_FREE_QUEUE_H_

#include <cstdint>
#include <vector>

#include "alloc/extent.h"
#include "alloc/free_space_map.h"
#include "util/status.h"

namespace lor {
namespace alloc {

/// Holds freed extents for `commit_interval` ticks before releasing them
/// into a FreeSpaceMap.
class DeferredFreeQueue {
 public:
  /// `commit_interval` == 0 means frees are released on the next Tick.
  explicit DeferredFreeQueue(uint32_t commit_interval = 8)
      : commit_interval_(commit_interval) {}

  /// Parks an extent.
  void Defer(const Extent& extent) {
    pending_.push_back(extent);
    pending_clusters_ += extent.length;
  }

  /// Advances the tick counter; commits into `map` when the interval
  /// elapses. Returns the status of the commit (OK if nothing committed).
  Status Tick(FreeSpaceMap* map) {
    if (++ticks_since_commit_ > commit_interval_) {
      return Commit(map);
    }
    return Status::OK();
  }

  /// Releases all pending extents into `map` now.
  Status Commit(FreeSpaceMap* map) {
    ticks_since_commit_ = 0;
    for (const Extent& e : pending_) {
      LOR_RETURN_IF_ERROR(map->Free(e));
    }
    pending_.clear();
    pending_clusters_ = 0;
    return Status::OK();
  }

  uint64_t pending_clusters() const { return pending_clusters_; }
  size_t pending_count() const { return pending_.size(); }

 private:
  uint32_t commit_interval_;
  uint32_t ticks_since_commit_ = 0;
  std::vector<Extent> pending_;
  uint64_t pending_clusters_ = 0;
};

}  // namespace alloc
}  // namespace lor

#endif  // LOREPO_ALLOC_DEFERRED_FREE_QUEUE_H_
