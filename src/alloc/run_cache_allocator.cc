#include "alloc/run_cache_allocator.h"

#include <algorithm>

namespace lor {
namespace alloc {

RunCacheAllocator::RunCacheAllocator(uint64_t clusters,
                                     RunCacheOptions options,
                                     uint64_t reserved)
    : options_(options), map_(0), deferred_(options.commit_interval) {
  if (clusters > reserved) {
    Status s = map_.Free({reserved, clusters - reserved});
    (void)s;
  }
  band_limit_ =
      reserved + static_cast<uint64_t>(
                     static_cast<double>(clusters - reserved) *
                     options_.outer_band_fraction);
}

Extent RunCacheAllocator::TakeRun(uint64_t length, bool new_stream) {
  // One allocation-free pass over the run cache (the `cache_size`
  // largest runs) computes every candidate the policy can pick:
  //   * outer: lowest-offset fitting run starting inside the outer band,
  //   * best:  snuggest fitting cached run (ties to the highest offset,
  //            matching the former size-descending rescan),
  //   * largest: the cache head (ties to the lowest cached offset),
  // exactly as the former materialize-and-sort selection chose them.
  constexpr uint64_t kNone = ~0ULL;
  bool any = false;
  uint64_t largest_length = 0;
  uint64_t largest_start = 0;
  uint64_t outer_start = kNone;
  uint64_t best_length = 0;
  uint64_t best_start = kNone;
  map_.ForEachLargestRun(options_.cache_size, [&](const Extent& run) {
    if (!any) {
      any = true;
      largest_length = run.length;
    }
    if (run.length == largest_length) {
      largest_start = run.start;  // Walk is start-descending within ties.
    }
    if (run.length >= length) {
      if (run.start < band_limit_ && run.start < outer_start) {
        outer_start = run.start;
      }
      if (best_start == kNone || run.length < best_length) {
        best_length = run.length;
        best_start = run.start;  // First of a tie group = highest start.
      }
    }
    return true;
  });
  if (!any) return Extent{};

  uint64_t chosen_start = outer_start;
  uint64_t take = length;

  const bool sweep =
      options_.selection == RunSelection::kCursorSweep ||
      (options_.selection == RunSelection::kSweepThenBestFit && new_stream);
  if (chosen_start == kNone && sweep) {
    Extent taken = map_.AllocateFrom(sweep_cursor_, length);
    if (!taken.empty()) sweep_cursor_ = taken.end();
    return taken;
  }

  if (chosen_start == kNone &&
      (options_.selection == RunSelection::kBestFitCached ||
       options_.selection == RunSelection::kSweepThenBestFit)) {
    chosen_start = best_start;
    // Nothing fits: fall through to consume the largest whole.
  }

  // Largest-first path: when even the largest run is smaller than the
  // request, it is consumed whole and the caller loops — the file
  // fragments.
  if (chosen_start == kNone) {
    chosen_start = largest_start;
    take = std::min(length, largest_length);
  }
  Extent result{chosen_start, take};
  Status s = map_.AllocateAt(result);
  if (!s.ok()) return Extent{};
  return result;
}

Status RunCacheAllocator::Allocate(uint64_t length, uint64_t extend_hint,
                                   ExtentList* out) {
  if (length == 0) return Status::InvalidArgument("zero-length allocation");
  if (length > map_.free_clusters()) {
    // Space pressure forces a journal commit before failing, as NTFS
    // does when the volume approaches full.
    LOR_RETURN_IF_ERROR(deferred_.Commit(&map_));
    if (length > map_.free_clusters()) {
      return Status::NoSpace("allocation exceeds free clusters");
    }
  }

  ExtentList acquired;
  uint64_t remaining = length;
  const bool new_stream = extend_hint == kNoHint;

  if (options_.allow_extension && extend_hint != kNoHint) {
    const uint64_t got = map_.ExtendAt(extend_hint, remaining);
    if (got > 0) {
      acquired.push_back({extend_hint, got});
      remaining -= got;
    }
  }

  while (remaining > 0) {
    Extent e = TakeRun(remaining, new_stream);
    if (e.empty()) {
      for (const Extent& a : acquired) {
        Status s = map_.Free(a);
        (void)s;
      }
      return Status::NoSpace("free space exhausted mid-allocation");
    }
    acquired.push_back(e);
    remaining -= e.length;
  }

  for (const Extent& e : acquired) AppendCoalescing(out, e);
  return Status::OK();
}

Status RunCacheAllocator::Free(const Extent& extent) {
  if (extent.empty()) return Status::OK();
  if (options_.deferred_free) {
    deferred_.Defer(extent);
    return Status::OK();
  }
  return map_.Free(extent);
}

void RunCacheAllocator::Tick() {
  if (options_.deferred_free) {
    Status s = deferred_.Tick(&map_);
    (void)s;
  }
}

void RunCacheAllocator::CommitPending() {
  Status s = deferred_.Commit(&map_);
  (void)s;
}

}  // namespace alloc
}  // namespace lor
