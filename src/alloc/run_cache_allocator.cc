#include "alloc/run_cache_allocator.h"

#include <algorithm>

namespace lor {
namespace alloc {

RunCacheAllocator::RunCacheAllocator(uint64_t clusters,
                                     RunCacheOptions options,
                                     uint64_t reserved)
    : options_(options), map_(0), deferred_(options.commit_interval) {
  if (clusters > reserved) {
    Status s = map_.Free({reserved, clusters - reserved});
    (void)s;
  }
  band_limit_ =
      reserved + static_cast<uint64_t>(
                     static_cast<double>(clusters - reserved) *
                     options_.outer_band_fraction);
}

Extent RunCacheAllocator::TakeRun(uint64_t length, bool new_stream) {
  const std::vector<Extent> cache = map_.LargestRuns(options_.cache_size);
  if (cache.empty()) return Extent{};

  // Outer-band attempt: lowest-offset cached run starting inside the
  // band that satisfies the request in one piece.
  const Extent* chosen = nullptr;
  for (const Extent& run : cache) {
    if (run.length < length) break;  // Cache is size-descending.
    if (run.start >= band_limit_) continue;
    if (chosen == nullptr || run.start < chosen->start) chosen = &run;
  }

  const bool sweep =
      options_.selection == RunSelection::kCursorSweep ||
      (options_.selection == RunSelection::kSweepThenBestFit && new_stream);
  if (chosen == nullptr && sweep) {
    Extent taken = map_.AllocateFrom(sweep_cursor_, length);
    if (!taken.empty()) sweep_cursor_ = taken.end();
    return taken;
  }

  if (chosen == nullptr &&
      (options_.selection == RunSelection::kBestFitCached ||
       options_.selection == RunSelection::kSweepThenBestFit)) {
    // The cache is size-descending; the last entry that still fits is
    // the snuggest cached run.
    for (const Extent& run : cache) {
      if (run.length >= length) chosen = &run;
    }
    // Nothing fits: fall through to consume the largest whole.
  }

  // Largest-first path: when even the largest run is smaller than the
  // request, it is consumed whole and the caller loops — the file
  // fragments.
  if (chosen == nullptr) chosen = &cache.front();
  const uint64_t take = std::min(length, chosen->length);
  Extent result{chosen->start, take};
  Status s = map_.AllocateAt(result);
  if (!s.ok()) return Extent{};
  return result;
}

Status RunCacheAllocator::Allocate(uint64_t length, uint64_t extend_hint,
                                   ExtentList* out) {
  if (length == 0) return Status::InvalidArgument("zero-length allocation");
  if (length > map_.free_clusters()) {
    // Space pressure forces a journal commit before failing, as NTFS
    // does when the volume approaches full.
    LOR_RETURN_IF_ERROR(deferred_.Commit(&map_));
    if (length > map_.free_clusters()) {
      return Status::NoSpace("allocation exceeds free clusters");
    }
  }

  ExtentList acquired;
  uint64_t remaining = length;
  const bool new_stream = extend_hint == kNoHint;

  if (options_.allow_extension && extend_hint != kNoHint) {
    const uint64_t got = map_.ExtendAt(extend_hint, remaining);
    if (got > 0) {
      acquired.push_back({extend_hint, got});
      remaining -= got;
    }
  }

  while (remaining > 0) {
    Extent e = TakeRun(remaining, new_stream);
    if (e.empty()) {
      for (const Extent& a : acquired) {
        Status s = map_.Free(a);
        (void)s;
      }
      return Status::NoSpace("free space exhausted mid-allocation");
    }
    acquired.push_back(e);
    remaining -= e.length;
  }

  for (const Extent& e : acquired) AppendCoalescing(out, e);
  return Status::OK();
}

Status RunCacheAllocator::Free(const Extent& extent) {
  if (extent.empty()) return Status::OK();
  if (options_.deferred_free) {
    deferred_.Defer(extent);
    return Status::OK();
  }
  return map_.Free(extent);
}

void RunCacheAllocator::Tick() {
  if (options_.deferred_free) {
    Status s = deferred_.Tick(&map_);
    (void)s;
  }
}

void RunCacheAllocator::CommitPending() {
  Status s = deferred_.Commit(&map_);
  (void)s;
}

}  // namespace alloc
}  // namespace lor
