#include "alloc/free_space_map.h"

#include <algorithm>

namespace lor {
namespace alloc {

std::string_view FitPolicyName(FitPolicy policy) {
  switch (policy) {
    case FitPolicy::kFirstFit:
      return "first-fit";
    case FitPolicy::kBestFit:
      return "best-fit";
    case FitPolicy::kWorstFit:
      return "worst-fit";
    case FitPolicy::kNextFit:
      return "next-fit";
  }
  return "unknown";
}

FreeSpaceMap::FreeSpaceMap(uint64_t clusters) {
  if (clusters > 0) InsertRun(0, clusters);
}

void FreeSpaceMap::EraseRun(RunMap::iterator it) {
  by_size_.erase({it->second, it->first});
  free_clusters_ -= it->second;
  runs_.erase(it);
}

void FreeSpaceMap::InsertRun(uint64_t start, uint64_t length) {
  runs_.emplace(start, length);
  by_size_.emplace(length, start);
  free_clusters_ += length;
}

Status FreeSpaceMap::Free(const Extent& extent) {
  if (extent.empty()) return Status::OK();
  // Find the first run at or after the freed range and its predecessor.
  auto next = runs_.lower_bound(extent.start);
  if (next != runs_.end() && next->first < extent.end()) {
    return Status::InvalidArgument("double free: overlaps following run");
  }
  auto prev = next;
  if (prev != runs_.begin()) {
    --prev;
    if (prev->first + prev->second > extent.start) {
      return Status::InvalidArgument("double free: overlaps preceding run");
    }
  } else {
    prev = runs_.end();
  }

  uint64_t start = extent.start;
  uint64_t length = extent.length;
  if (prev != runs_.end() && prev->first + prev->second == extent.start) {
    start = prev->first;
    length += prev->second;
    EraseRun(prev);
  }
  if (next != runs_.end() && next->first == extent.end()) {
    length += next->second;
    EraseRun(next);
  }
  InsertRun(start, length);
  return Status::OK();
}

FreeSpaceMap::RunMap::iterator FreeSpaceMap::LargestRun() {
  if (by_size_.empty()) return runs_.end();
  return runs_.find(by_size_.rbegin()->second);
}

FreeSpaceMap::RunMap::iterator FreeSpaceMap::SelectRun(uint64_t length,
                                                       FitPolicy policy) {
  switch (policy) {
    case FitPolicy::kFirstFit: {
      for (auto it = runs_.begin(); it != runs_.end(); ++it) {
        if (it->second >= length) return it;
      }
      return runs_.end();
    }
    case FitPolicy::kBestFit: {
      auto sized = by_size_.lower_bound({length, 0});
      if (sized == by_size_.end()) return runs_.end();
      return runs_.find(sized->second);
    }
    case FitPolicy::kWorstFit: {
      auto it = LargestRun();
      if (it == runs_.end() || it->second < length) return runs_.end();
      return it;
    }
    case FitPolicy::kNextFit: {
      auto start = runs_.lower_bound(next_fit_cursor_);
      for (auto it = start; it != runs_.end(); ++it) {
        if (it->second >= length) return it;
      }
      for (auto it = runs_.begin(); it != start; ++it) {
        if (it->second >= length) return it;
      }
      return runs_.end();
    }
  }
  return runs_.end();
}

Extent FreeSpaceMap::TakeFromRun(RunMap::iterator it, uint64_t take) {
  const uint64_t run_start = it->first;
  const uint64_t run_length = it->second;
  EraseRun(it);
  if (take < run_length) {
    InsertRun(run_start + take, run_length - take);
  }
  next_fit_cursor_ = run_start + take;
  return Extent{run_start, take};
}

Result<Extent> FreeSpaceMap::AllocateContiguous(uint64_t length,
                                                FitPolicy policy) {
  if (length == 0) return Status::InvalidArgument("zero-length allocation");
  auto it = SelectRun(length, policy);
  if (it == runs_.end()) {
    return Status::NoSpace("no contiguous run of requested length");
  }
  return TakeFromRun(it, length);
}

Extent FreeSpaceMap::AllocateUpTo(uint64_t max_length, FitPolicy policy) {
  if (max_length == 0 || runs_.empty()) return Extent{};
  auto it = SelectRun(max_length, policy);
  if (it == runs_.end()) {
    // No run fits the whole request; fall back to the largest run so the
    // caller makes forward progress (this is where fragmentation happens).
    it = LargestRun();
    if (it == runs_.end()) return Extent{};
  }
  return TakeFromRun(it, std::min(max_length, it->second));
}

Extent FreeSpaceMap::AllocateFrom(uint64_t cursor, uint64_t max_length) {
  if (max_length == 0 || runs_.empty()) return Extent{};
  auto it = runs_.lower_bound(cursor);
  if (it == runs_.end()) it = runs_.begin();
  return TakeFromRun(it, std::min(max_length, it->second));
}

Status FreeSpaceMap::AllocateAt(const Extent& extent) {
  if (extent.empty()) return Status::InvalidArgument("empty extent");
  if (!IsFree(extent)) return Status::NoSpace("requested range not free");
  auto it = runs_.upper_bound(extent.start);
  --it;  // IsFree guarantees a containing run exists.
  const uint64_t run_start = it->first;
  const uint64_t run_length = it->second;
  EraseRun(it);
  if (extent.start > run_start) {
    InsertRun(run_start, extent.start - run_start);
  }
  const uint64_t tail = run_start + run_length - extent.end();
  if (tail > 0) InsertRun(extent.end(), tail);
  return Status::OK();
}

uint64_t FreeSpaceMap::ExtendAt(uint64_t start, uint64_t max_length) {
  if (max_length == 0) return 0;
  auto it = runs_.upper_bound(start);
  if (it == runs_.begin()) return 0;
  --it;
  if (it->first > start || it->first + it->second <= start) return 0;
  if (it->first != start) {
    // `start` is inside the run but not at its head; split so the head
    // stays free.
    const uint64_t head = start - it->first;
    const uint64_t run_length = it->second;
    const uint64_t run_start = it->first;
    EraseRun(it);
    InsertRun(run_start, head);
    InsertRun(start, run_length - head);
    it = runs_.find(start);
  }
  const uint64_t take = std::min(max_length, it->second);
  TakeFromRun(it, take);
  return take;
}

bool FreeSpaceMap::IsFree(const Extent& extent) const {
  if (extent.empty()) return false;
  auto it = runs_.upper_bound(extent.start);
  if (it == runs_.begin()) return false;
  --it;
  return it->first <= extent.start && it->first + it->second >= extent.end();
}

uint64_t FreeSpaceMap::largest_run() const {
  return by_size_.empty() ? 0 : by_size_.rbegin()->first;
}

FreeSpaceStats FreeSpaceMap::Stats() const {
  FreeSpaceStats s;
  s.free_clusters = free_clusters_;
  s.run_count = runs_.size();
  s.largest_run = largest_run();
  s.mean_run = runs_.empty() ? 0.0
                             : static_cast<double>(free_clusters_) /
                                   static_cast<double>(runs_.size());
  s.external_fragmentation =
      free_clusters_ == 0
          ? 0.0
          : 1.0 - static_cast<double>(s.largest_run) /
                      static_cast<double>(free_clusters_);
  return s;
}

std::vector<Extent> FreeSpaceMap::Snapshot() const {
  std::vector<Extent> out;
  out.reserve(runs_.size());
  for (const auto& [start, length] : runs_) out.push_back({start, length});
  return out;
}

std::vector<Extent> FreeSpaceMap::LargestRuns(uint32_t k) const {
  std::vector<Extent> out;
  out.reserve(std::min<size_t>(k, by_size_.size()));
  for (auto it = by_size_.rbegin(); it != by_size_.rend() && out.size() < k;
       ++it) {
    out.push_back({it->second, it->first});
  }
  // by_size_ descending gives (size desc, start desc); fix ties to
  // (size desc, start asc).
  std::stable_sort(out.begin(), out.end(),
                   [](const Extent& a, const Extent& b) {
                     if (a.length != b.length) return a.length > b.length;
                     return a.start < b.start;
                   });
  return out;
}

Status FreeSpaceMap::CheckConsistency() const {
  if (runs_.size() != by_size_.size()) {
    return Status::Corruption("index sizes disagree");
  }
  uint64_t total = 0;
  uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [start, length] : runs_) {
    if (length == 0) return Status::Corruption("zero-length run");
    if (!first && start <= prev_end) {
      return Status::Corruption(start == prev_end
                                    ? "uncoalesced adjacent runs"
                                    : "overlapping runs");
    }
    if (by_size_.find({length, start}) == by_size_.end()) {
      return Status::Corruption("run missing from size index");
    }
    total += length;
    prev_end = start + length;
    first = false;
  }
  if (total != free_clusters_) {
    return Status::Corruption("free cluster count disagrees with runs");
  }
  return Status::OK();
}

}  // namespace alloc
}  // namespace lor
