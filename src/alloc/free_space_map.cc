#include "alloc/free_space_map.h"

#include <algorithm>

namespace lor {
namespace alloc {

std::string_view FitPolicyName(FitPolicy policy) {
  switch (policy) {
    case FitPolicy::kFirstFit:
      return "first-fit";
    case FitPolicy::kBestFit:
      return "best-fit";
    case FitPolicy::kWorstFit:
      return "worst-fit";
    case FitPolicy::kNextFit:
      return "next-fit";
  }
  return "unknown";
}

FreeSpaceMap::FreeSpaceMap(uint64_t clusters) {
  if (clusters > 0) InsertRun(0, clusters);
}

FreeSpaceMap::FreeSpaceMap(const FreeSpaceMap& other) { *this = other; }

FreeSpaceMap& FreeSpaceMap::operator=(const FreeSpaceMap& other) {
  if (this == &other) return *this;
  other.FlushPendingResize();
  runs_ = other.runs_;
  by_size_ = other.by_size_;
  buckets_ = other.buckets_;
  bucket_mask_ = other.bucket_mask_;
  buckets_enabled_ = other.buckets_enabled_;
  pending_valid_ = false;
  shrink_cache_valid_ = false;
  free_clusters_ = other.free_clusters_;
  next_fit_cursor_ = other.next_fit_cursor_;
  return *this;
}

FreeSpaceMap::FreeSpaceMap(FreeSpaceMap&& other) noexcept {
  *this = std::move(other);
}

FreeSpaceMap& FreeSpaceMap::operator=(FreeSpaceMap&& other) noexcept {
  if (this == &other) return *this;
  other.FlushPendingResize();
  other.shrink_cache_valid_ = false;
  runs_ = std::move(other.runs_);
  by_size_ = std::move(other.by_size_);
  buckets_ = std::move(other.buckets_);
  bucket_mask_ = other.bucket_mask_;
  buckets_enabled_ = other.buckets_enabled_;
  pending_valid_ = false;
  shrink_cache_valid_ = false;
  free_clusters_ = other.free_clusters_;
  next_fit_cursor_ = other.next_fit_cursor_;
  return *this;
}

void FreeSpaceMap::FlushPendingResize() const {
  if (!pending_valid_) return;
  by_size_.erase(pending_stale_);
  by_size_.insert(pending_true_);
  pending_valid_ = false;
}

void FreeSpaceMap::EraseRun(RunMap::iterator it) {
  if (pending_valid_ && pending_true_.second == it->first) {
    by_size_.erase(pending_stale_);
    pending_valid_ = false;
  } else {
    by_size_.erase({it->second, it->first});
  }
  if (shrink_cache_valid_ && shrink_cache_it_ == it) {
    shrink_cache_valid_ = false;
  }
  if (buckets_enabled_) {
    const int bucket = BucketFor(it->second);
    buckets_[bucket].erase(it->first);
    if (buckets_[bucket].empty()) bucket_mask_ &= ~(1ULL << bucket);
  }
  free_clusters_ -= it->second;
  runs_.erase(it);
}

void FreeSpaceMap::InsertRun(uint64_t start, uint64_t length) {
  runs_.emplace(start, length);
  by_size_.emplace(length, start);
  if (buckets_enabled_) {
    const int bucket = BucketFor(length);
    buckets_[bucket].emplace(start, length);
    bucket_mask_ |= 1ULL << bucket;
  }
  free_clusters_ += length;
}

void FreeSpaceMap::BuildBuckets() {
  for (const auto& [start, length] : runs_) {
    const int bucket = BucketFor(length);
    buckets_[bucket].emplace(start, length);
    bucket_mask_ |= 1ULL << bucket;
  }
  buckets_enabled_ = true;
}

Status FreeSpaceMap::Free(const Extent& extent) {
  if (extent.empty()) return Status::OK();
  // Find the first run at or after the freed range and its predecessor.
  auto next = runs_.lower_bound(extent.start);
  if (next != runs_.end() && next->first < extent.end()) {
    return Status::InvalidArgument("double free: overlaps following run");
  }
  auto prev = next;
  if (prev != runs_.begin()) {
    --prev;
    if (prev->first + prev->second > extent.start) {
      return Status::InvalidArgument("double free: overlaps preceding run");
    }
  } else {
    prev = runs_.end();
  }

  uint64_t start = extent.start;
  uint64_t length = extent.length;
  if (prev != runs_.end() && prev->first + prev->second == extent.start) {
    start = prev->first;
    length += prev->second;
    EraseRun(prev);
  }
  if (next != runs_.end() && next->first == extent.end()) {
    length += next->second;
    EraseRun(next);
  }
  InsertRun(start, length);
  return Status::OK();
}

FreeSpaceMap::RunMap::iterator FreeSpaceMap::LargestRun() {
  FlushPendingResize();
  if (by_size_.empty()) return runs_.end();
  return runs_.find(by_size_.rbegin()->second);
}

uint64_t FreeSpaceMap::FindFrom(uint64_t length, uint64_t cursor) {
  if (!buckets_enabled_) BuildBuckets();
  uint64_t best = kNoRun;
  const int boundary = BucketFor(length);
  // Every non-empty bucket above the boundary guarantees a fit; each
  // contributes its lowest start at or after the cursor.
  uint64_t mask = bucket_mask_ & ~((2ULL << boundary) - 1);
  while (mask != 0) {
    const int k = std::countr_zero(mask);
    mask &= mask - 1;
    const auto& bucket = buckets_[k];
    auto it = cursor == 0 ? bucket.begin() : bucket.lower_bound(cursor);
    if (it != bucket.end() && it->first < best) best = it->first;
  }
  // Boundary bucket: lengths share the request's power-of-two band, so
  // each run needs an explicit check. Address order allows stopping as
  // soon as starts pass the best guaranteed candidate.
  const auto& bucket = buckets_[boundary];
  for (auto it = cursor == 0 ? bucket.begin() : bucket.lower_bound(cursor);
       it != bucket.end() && it->first < best; ++it) {
    if (it->second >= length) {
      best = it->first;
      break;
    }
  }
  return best;
}

FreeSpaceMap::RunMap::iterator FreeSpaceMap::SelectRun(uint64_t length,
                                                       FitPolicy policy) {
  switch (policy) {
    case FitPolicy::kFirstFit: {
      const uint64_t start = FindFrom(length, 0);
      return start == kNoRun ? runs_.end() : runs_.find(start);
    }
    case FitPolicy::kBestFit: {
      FlushPendingResize();
      auto sized = by_size_.lower_bound({length, 0});
      if (sized == by_size_.end()) return runs_.end();
      return runs_.find(sized->second);
    }
    case FitPolicy::kWorstFit: {
      auto it = LargestRun();
      if (it == runs_.end() || it->second < length) return runs_.end();
      return it;
    }
    case FitPolicy::kNextFit: {
      // First fit at or after the cursor; runs before it only qualify
      // on the wrapped pass (which no run >= cursor can win, so a plain
      // lowest-address query is equivalent).
      uint64_t start = FindFrom(length, next_fit_cursor_);
      if (start == kNoRun) start = FindFrom(length, 0);
      return start == kNoRun ? runs_.end() : runs_.find(start);
    }
  }
  return runs_.end();
}

Extent FreeSpaceMap::TakeFromRun(RunMap::iterator it, uint64_t take) {
  const uint64_t run_start = it->first;
  const uint64_t run_length = it->second;
  if (take >= run_length) {
    EraseRun(it);
  } else {
    // Shrink the run in place — [start, end) becomes [start+take, end)
    // — by re-keying the existing nodes of every index. This is the
    // sequential-extension hot path (one call per append request at
    // scale), so it must not allocate.
    const uint64_t new_start = run_start + take;
    const uint64_t new_length = run_length - take;
    // Defer the by_size_ re-key: repeated shrinks of the same run (the
    // sequential-extension pattern) collapse into one reconcile at the
    // next by_size_ read.
    if (pending_valid_ && pending_true_.second == run_start) {
      pending_true_ = {new_length, new_start};
    } else {
      FlushPendingResize();
      pending_stale_ = {run_length, run_start};
      pending_true_ = {new_length, new_start};
      pending_valid_ = true;
    }
    if (buckets_enabled_) {
      const int old_bucket = BucketFor(run_length);
      const int new_bucket = BucketFor(new_length);
      auto bucket_node = buckets_[old_bucket].extract(run_start);
      bucket_node.key() = new_start;
      bucket_node.mapped() = new_length;
      buckets_[new_bucket].insert(std::move(bucket_node));
      if (buckets_[old_bucket].empty()) bucket_mask_ &= ~(1ULL << old_bucket);
      bucket_mask_ |= 1ULL << new_bucket;
    }
    // The shifted key still sorts immediately before the old successor.
    auto next = std::next(it);
    auto run_node = runs_.extract(it);
    run_node.key() = new_start;
    run_node.mapped() = new_length;
    shrink_cache_it_ = runs_.insert(next, std::move(run_node));
    shrink_cache_valid_ = true;
    free_clusters_ -= take;
  }
  next_fit_cursor_ = run_start + take;
  return Extent{run_start, take};
}

Result<Extent> FreeSpaceMap::AllocateContiguous(uint64_t length,
                                                FitPolicy policy) {
  if (length == 0) return Status::InvalidArgument("zero-length allocation");
  auto it = SelectRun(length, policy);
  if (it == runs_.end()) {
    return Status::NoSpace("no contiguous run of requested length");
  }
  return TakeFromRun(it, length);
}

Extent FreeSpaceMap::AllocateUpTo(uint64_t max_length, FitPolicy policy) {
  if (max_length == 0 || runs_.empty()) return Extent{};
  auto it = SelectRun(max_length, policy);
  if (it == runs_.end()) {
    // No run fits the whole request; fall back to the largest run so the
    // caller makes forward progress (this is where fragmentation happens).
    it = LargestRun();
    if (it == runs_.end()) return Extent{};
  }
  return TakeFromRun(it, std::min(max_length, it->second));
}

Extent FreeSpaceMap::AllocateFrom(uint64_t cursor, uint64_t max_length) {
  if (max_length == 0 || runs_.empty()) return Extent{};
  auto it = runs_.lower_bound(cursor);
  if (it == runs_.end()) it = runs_.begin();
  return TakeFromRun(it, std::min(max_length, it->second));
}

Status FreeSpaceMap::AllocateAt(const Extent& extent) {
  if (extent.empty()) return Status::InvalidArgument("empty extent");
  if (!IsFree(extent)) return Status::NoSpace("requested range not free");
  auto it = runs_.upper_bound(extent.start);
  --it;  // IsFree guarantees a containing run exists.
  if (it->first == extent.start) {
    // Head take (the run-cache allocator's common case): reuse the
    // node-rekeying shrink, which AllocateAt must not let move the
    // next-fit cursor.
    const uint64_t cursor = next_fit_cursor_;
    TakeFromRun(it, extent.length);
    next_fit_cursor_ = cursor;
    return Status::OK();
  }
  const uint64_t run_start = it->first;
  const uint64_t run_length = it->second;
  EraseRun(it);
  InsertRun(run_start, extent.start - run_start);
  const uint64_t tail = run_start + run_length - extent.end();
  if (tail > 0) InsertRun(extent.end(), tail);
  return Status::OK();
}

uint64_t FreeSpaceMap::ExtendAt(uint64_t start, uint64_t max_length) {
  if (max_length == 0) return 0;
  if (shrink_cache_valid_ && shrink_cache_it_->first == start) {
    // The run shrunk last time starts exactly here — the sequential-
    // extension pattern. Skip the address lookup.
    const uint64_t take = std::min(max_length, shrink_cache_it_->second);
    TakeFromRun(shrink_cache_it_, take);
    return take;
  }
  auto it = runs_.upper_bound(start);
  if (it == runs_.begin()) return 0;
  --it;
  if (it->first > start || it->first + it->second <= start) return 0;
  if (it->first != start) {
    // `start` is inside the run but not at its head; split so the head
    // stays free.
    const uint64_t head = start - it->first;
    const uint64_t run_length = it->second;
    const uint64_t run_start = it->first;
    EraseRun(it);
    InsertRun(run_start, head);
    InsertRun(start, run_length - head);
    it = runs_.find(start);
  }
  const uint64_t take = std::min(max_length, it->second);
  TakeFromRun(it, take);
  return take;
}

bool FreeSpaceMap::IsFree(const Extent& extent) const {
  if (extent.empty()) return false;
  auto it = runs_.upper_bound(extent.start);
  if (it == runs_.begin()) return false;
  --it;
  return it->first <= extent.start && it->first + it->second >= extent.end();
}

uint64_t FreeSpaceMap::largest_run() const {
  FlushPendingResize();
  return by_size_.empty() ? 0 : by_size_.rbegin()->first;
}

FreeSpaceStats FreeSpaceMap::Stats() const {
  FreeSpaceStats s;
  s.free_clusters = free_clusters_;
  s.run_count = runs_.size();
  s.largest_run = largest_run();
  s.mean_run = runs_.empty() ? 0.0
                             : static_cast<double>(free_clusters_) /
                                   static_cast<double>(runs_.size());
  s.external_fragmentation =
      free_clusters_ == 0
          ? 0.0
          : 1.0 - static_cast<double>(s.largest_run) /
                      static_cast<double>(free_clusters_);
  return s;
}

std::vector<Extent> FreeSpaceMap::Snapshot() const {
  std::vector<Extent> out;
  out.reserve(runs_.size());
  for (const auto& [start, length] : runs_) out.push_back({start, length});
  return out;
}

std::vector<Extent> FreeSpaceMap::LargestRuns(uint32_t k) const {
  FlushPendingResize();
  std::vector<Extent> out;
  out.reserve(std::min<size_t>(k, by_size_.size()));
  for (auto it = by_size_.rbegin(); it != by_size_.rend() && out.size() < k;
       ++it) {
    out.push_back({it->second, it->first});
  }
  // by_size_ descending gives (size desc, start desc); fix ties to
  // (size desc, start asc).
  std::stable_sort(out.begin(), out.end(),
                   [](const Extent& a, const Extent& b) {
                     if (a.length != b.length) return a.length > b.length;
                     return a.start < b.start;
                   });
  return out;
}

Status FreeSpaceMap::CheckConsistency() const {
  FlushPendingResize();
  if (runs_.size() != by_size_.size()) {
    return Status::Corruption("index sizes disagree");
  }
  uint64_t total = 0;
  uint64_t prev_end = 0;
  uint64_t bucketed = 0;
  bool first = true;
  for (const auto& [start, length] : runs_) {
    if (length == 0) return Status::Corruption("zero-length run");
    if (!first && start <= prev_end) {
      return Status::Corruption(start == prev_end
                                    ? "uncoalesced adjacent runs"
                                    : "overlapping runs");
    }
    if (by_size_.find({length, start}) == by_size_.end()) {
      return Status::Corruption("run missing from size index");
    }
    if (buckets_enabled_) {
      const auto& bucket = buckets_[BucketFor(length)];
      auto it = bucket.find(start);
      if (it == bucket.end() || it->second != length) {
        return Status::Corruption("run missing from its size bucket");
      }
    }
    total += length;
    prev_end = start + length;
    first = false;
  }
  if (total != free_clusters_) {
    return Status::Corruption("free cluster count disagrees with runs");
  }
  for (int k = 0; k < kBucketCount; ++k) {
    bucketed += buckets_[k].size();
    const bool mask_bit = (bucket_mask_ >> k) & 1;
    if (mask_bit != !buckets_[k].empty()) {
      return Status::Corruption("bucket occupancy mask disagrees");
    }
    for (const auto& [start, length] : buckets_[k]) {
      if (BucketFor(length) != k) {
        return Status::Corruption("run filed in the wrong size bucket");
      }
    }
  }
  if (bucketed != (buckets_enabled_ ? runs_.size() : 0)) {
    return Status::Corruption("bucket index size disagrees with runs");
  }
  return Status::OK();
}

}  // namespace alloc
}  // namespace lor
