// RunCacheAllocator: the NTFS-like allocation policy the paper describes
// in §2:
//
//   "NTFS allocates space for file stream data from a run-based lookup
//    cache. Runs of contiguous free clusters are ordered in decreasing
//    size and volume offset. NTFS attempts to satisfy a new space
//    allocation from the outer band. If that fails, large extents within
//    the free space cache are used. If that fails, the file is
//    fragmented. Additionally, the NTFS transactional log entry must be
//    committed before freed space can be reallocated after file
//    deletion."
//
// Concretely:
//   * the allocator sees only the `cache_size` largest free runs (the
//     run cache); smaller holes are invisible until they rank,
//   * within the cache it prefers the lowest-offset (outermost) run that
//     satisfies the request in one piece,
//   * if no cached run fits, the largest cached run is consumed whole
//     and the allocation continues — the file fragments,
//   * sequential appends extend the previous extent in place when the
//     following clusters are free (NTFS's aggressive contiguation),
//   * frees are deferred until the journal commit interval elapses.

#ifndef LOREPO_ALLOC_RUN_CACHE_ALLOCATOR_H_
#define LOREPO_ALLOC_RUN_CACHE_ALLOCATOR_H_

#include <cstdint>
#include <string>

#include "alloc/allocator.h"
#include "alloc/deferred_free_queue.h"

namespace lor {
namespace alloc {

/// How a fresh run is chosen when extension and the outer band fail.
enum class RunSelection {
  /// The default, matching NTFS's observed aging behaviour: each
  /// write-request-sized allocation is served from the *smallest*
  /// cached run that fits it. Because space is allocated per append
  /// request, before the file's final size is known (paper §5.4), small
  /// freed pieces keep circulating at write-request granularity — this
  /// is what drives the paper's one-fragment-per-64 KB convergence and
  /// makes constant-size workloads fragment like uniform ones.
  kBestFitCached,
  /// Bitmap scan from a moving cursor for every request (FindFreeRun
  /// from a volume hint). Ablation.
  kCursorSweep,
  /// Cursor sweep for a file's first request, best-fit for spills.
  /// Ablation.
  kSweepThenBestFit,
  /// Serve from the largest cached run (the literal reading of the
  /// run-cache description). Ablation; too conservative to reproduce
  /// the paper's aging curves on its own.
  kLargestFirst,
};

/// Tuning knobs for the NTFS-like policy.
struct RunCacheOptions {
  RunSelection selection = RunSelection::kBestFitCached;
  /// Number of largest runs visible to the allocator.
  uint32_t cache_size = 32;
  /// Honour extension hints (sequential-append contiguation).
  bool allow_extension = true;
  /// Defer frees until the journal commits.
  bool deferred_free = true;
  /// Allocator ticks between journal commits. NTFS's lazy writer
  /// commits every few seconds; at tens of milliseconds per operation
  /// and a few ticks per operation this is on the order of a hundred
  /// ticks.
  uint32_t commit_interval = 128;
  /// Fraction of the volume treated as the preferred "outer band":
  /// requests that fit entirely in a free run starting inside the band
  /// are placed there (lowest offset first) before the large-extent
  /// cache is consulted.
  double outer_band_fraction = 0.125;
};

/// NTFS-like run-cache allocator.
class RunCacheAllocator : public ExtentAllocator {
 public:
  /// Manages clusters [reserved, clusters); [0, reserved) models the MFT
  /// zone and is never allocated to file data.
  RunCacheAllocator(uint64_t clusters, RunCacheOptions options = {},
                    uint64_t reserved = 0);

  Status Allocate(uint64_t length, uint64_t extend_hint,
                  ExtentList* out) override;
  Status Free(const Extent& extent) override;
  void Tick() override;
  void CommitPending() override;
  uint64_t free_clusters() const override { return map_.free_clusters(); }
  uint64_t total_unused_clusters() const override {
    return map_.free_clusters() + deferred_.pending_clusters();
  }
  FreeSpaceStats FreeStats() const override { return map_.Stats(); }
  std::string name() const override { return "ntfs-run-cache"; }

  const FreeSpaceMap& map() const { return map_; }
  /// Exposed for fault-injection experiments (pre-fragmenting a volume).
  FreeSpaceMap* mutable_map() { return &map_; }
  FreeSpaceMap* free_map() override { return &map_; }

 private:
  /// Picks the run to serve a request of `length` clusters:
  ///   1. the lowest-offset cached run inside the outer band that fits
  ///      the request entirely (the "outer band" attempt), else
  ///   2. per `RunSelection` (sweep cursor / best-fit / largest), else
  ///   3. the largest cached run, consumed whole — the file fragments.
  /// `new_stream` marks the first request of a file (no extension hint
  /// existed), which the default policy starts at the sweep cursor.
  /// Returns an empty extent when nothing is free.
  Extent TakeRun(uint64_t length, bool new_stream);

  RunCacheOptions options_;
  FreeSpaceMap map_;
  DeferredFreeQueue deferred_;
  uint64_t band_limit_ = 0;  ///< First cluster beyond the outer band.
  uint64_t sweep_cursor_ = 0;
};

}  // namespace alloc
}  // namespace lor

#endif  // LOREPO_ALLOC_RUN_CACHE_ALLOCATOR_H_
