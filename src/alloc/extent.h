// Extent: a contiguous run of clusters, the unit of space management in
// both storage back ends.

#ifndef LOREPO_ALLOC_EXTENT_H_
#define LOREPO_ALLOC_EXTENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/config.h"  // C++20 floor guard (defaulted operator== below)

namespace lor {
namespace alloc {

/// A contiguous run of `length` clusters starting at cluster `start`.
struct Extent {
  uint64_t start = 0;
  uint64_t length = 0;

  uint64_t end() const { return start + length; }
  bool empty() const { return length == 0; }

  bool operator==(const Extent& other) const = default;

  /// True if the two extents share at least one cluster.
  bool Overlaps(const Extent& other) const {
    return start < other.end() && other.start < end();
  }

  /// True if `other` begins exactly where this extent ends.
  bool AdjacentBefore(const Extent& other) const {
    return end() == other.start;
  }

  std::string ToString() const;
};

/// Ordered list of extents describing one object's physical layout.
using ExtentList = std::vector<Extent>;

/// Total clusters covered by the list.
uint64_t TotalLength(const ExtentList& extents);

/// Number of physically contiguous runs, merging adjacent entries; this
/// is the paper's "fragments per object" (contiguous object == 1).
uint64_t CountFragments(const ExtentList& extents);

/// Merges physically adjacent neighbouring entries in place.
void CoalesceAdjacent(ExtentList* extents);

/// Appends `extent` to the list, merging with the tail when adjacent.
/// Inline: every allocation and range mapping goes through this.
inline void AppendCoalescing(ExtentList* extents, const Extent& extent) {
  if (extent.empty()) return;
  if (!extents->empty() && extents->back().AdjacentBefore(extent)) {
    extents->back().length += extent.length;
  } else {
    extents->push_back(extent);
  }
}

/// Appends `extents` scaled by `unit_bytes` into `out`, coalescing
/// adjacent runs — how cluster/page layouts become the byte layouts the
/// repository API exposes (GetLayout, VisitObjects).
inline void AppendScaledBytes(const ExtentList& extents, uint64_t unit_bytes,
                              ExtentList* out) {
  for (const Extent& e : extents) {
    AppendCoalescing(out, {e.start * unit_bytes, e.length * unit_bytes});
  }
}

std::string ToString(const ExtentList& extents);

}  // namespace alloc
}  // namespace lor

#endif  // LOREPO_ALLOC_EXTENT_H_
