// BuddyAllocator: power-of-two buddy-system allocation, the DTSS
// filesystem baseline the paper discusses (§3.4, Koch's TOCS paper).
// Every allocation is a single contiguous block, so external
// fragmentation never splits an object — at the cost of internal
// fragmentation (a 10 MB request consumes 16 MB).

#ifndef LOREPO_ALLOC_BUDDY_ALLOCATOR_H_
#define LOREPO_ALLOC_BUDDY_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "alloc/allocator.h"

namespace lor {
namespace alloc {

/// Buddy-system allocator over [0, clusters).
///
/// Internally the space is rounded up to the next power of two; the
/// phantom tail is permanently marked allocated. Each request is rounded
/// up to a power-of-two order and served as one block.
class BuddyAllocator : public ExtentAllocator {
 public:
  explicit BuddyAllocator(uint64_t clusters);

  /// Allocates one block of at least `length` clusters (extend hints are
  /// meaningless under the buddy discipline and are ignored). The
  /// returned extent has the full rounded length; internal fragmentation
  /// is tracked via `internal_waste_clusters()`.
  Status Allocate(uint64_t length, uint64_t extend_hint,
                  ExtentList* out) override;

  /// Frees a block previously returned by Allocate (must match exactly).
  Status Free(const Extent& extent) override;

  uint64_t free_clusters() const override { return free_clusters_; }
  FreeSpaceStats FreeStats() const override;
  std::string name() const override { return "buddy"; }

  /// Clusters lost to power-of-two rounding across live allocations,
  /// assuming callers asked for exactly what they needed.
  uint64_t internal_waste_clusters() const { return internal_waste_; }

  /// Checks the free lists for overlaps/duplicates.
  Status CheckConsistency() const;

  static uint32_t OrderFor(uint64_t length);

 private:
  uint64_t BlockSize(uint32_t order) const { return 1ULL << order; }

  /// Removes the specific block [addr, addr + 2^order) from the free
  /// lists, splitting larger blocks as needed. `addr` must be inside a
  /// free block of order >= `order`.
  void CarveBlock(uint64_t addr, uint32_t order);

  uint64_t capacity_;          ///< Usable clusters.
  uint64_t rounded_capacity_;  ///< Power-of-two envelope.
  uint32_t max_order_;
  uint64_t free_clusters_ = 0;
  uint64_t internal_waste_ = 0;
  /// Free block start offsets per order.
  std::vector<std::set<uint64_t>> free_lists_;
  /// Live allocations: start -> (order, requested length).
  std::map<uint64_t, std::pair<uint32_t, uint64_t>> live_;
};

}  // namespace alloc
}  // namespace lor

#endif  // LOREPO_ALLOC_BUDDY_ALLOCATOR_H_
