#include "alloc/extent.h"

#include <cstdio>

namespace lor {
namespace alloc {

std::string Extent::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%llu,+%llu)",
                static_cast<unsigned long long>(start),
                static_cast<unsigned long long>(length));
  return buf;
}

uint64_t TotalLength(const ExtentList& extents) {
  uint64_t total = 0;
  for (const Extent& e : extents) total += e.length;
  return total;
}

uint64_t CountFragments(const ExtentList& extents) {
  uint64_t fragments = 0;
  for (size_t i = 0; i < extents.size(); ++i) {
    if (extents[i].empty()) continue;
    if (fragments == 0 || !extents[i - 1].AdjacentBefore(extents[i])) {
      ++fragments;
    }
  }
  return fragments;
}

void CoalesceAdjacent(ExtentList* extents) {
  ExtentList merged;
  merged.reserve(extents->size());
  for (const Extent& e : *extents) {
    if (e.empty()) continue;
    AppendCoalescing(&merged, e);
  }
  extents->swap(merged);
}

std::string ToString(const ExtentList& extents) {
  std::string out = "{";
  for (size_t i = 0; i < extents.size(); ++i) {
    if (i != 0) out += ", ";
    out += extents[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace alloc
}  // namespace lor
