// ExtentAllocator: the interface the file store uses to obtain and
// release clusters. Implementations differ in *policy* (which free run a
// request is served from, when freed space becomes reusable) while
// sharing the FreeSpaceMap mechanism.

#ifndef LOREPO_ALLOC_ALLOCATOR_H_
#define LOREPO_ALLOC_ALLOCATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/extent.h"
#include "alloc/free_space_map.h"
#include "util/status.h"

namespace lor {
namespace alloc {

/// Sentinel for "no placement hint".
inline constexpr uint64_t kNoHint = ~0ULL;

/// Abstract cluster allocator.
class ExtentAllocator {
 public:
  virtual ~ExtentAllocator() = default;

  /// Allocates `length` clusters, appending one or more extents to
  /// `out`. If `extend_hint` is a cluster number, the allocator should
  /// first try to allocate starting exactly there (contiguous file
  /// extension). Partial failure is not possible: either all `length`
  /// clusters are allocated or NoSpace is returned and `out` is
  /// unchanged.
  virtual Status Allocate(uint64_t length, uint64_t extend_hint,
                          ExtentList* out) = 0;

  /// Releases an extent. Depending on the implementation the space may
  /// not be reusable until the next Tick/commit.
  virtual Status Free(const Extent& extent) = 0;

  /// Operation boundary (e.g. one repository op finished). Gives the
  /// allocator a chance to commit deferred frees.
  virtual void Tick() {}

  /// Forces any deferred frees to become reusable immediately.
  virtual void CommitPending() {}

  /// Clusters currently reusable (excludes deferred frees).
  virtual uint64_t free_clusters() const = 0;

  /// Clusters free or pending-free (total unused space).
  virtual uint64_t total_unused_clusters() const { return free_clusters(); }

  virtual FreeSpaceStats FreeStats() const = 0;

  /// Direct access to the underlying free-space map, for maintenance
  /// tools (defragmentation, zone migration) that place data at
  /// explicit addresses. Null when the allocator has no such map (the
  /// buddy system).
  virtual FreeSpaceMap* free_map() { return nullptr; }

  virtual std::string name() const = 0;
};

}  // namespace alloc
}  // namespace lor

#endif  // LOREPO_ALLOC_ALLOCATOR_H_
