#include "alloc/policy_allocator.h"

namespace lor {
namespace alloc {

PolicyAllocator::PolicyAllocator(uint64_t clusters,
                                 PolicyAllocatorOptions options,
                                 uint64_t reserved)
    : options_(options),
      map_(0),
      deferred_(options.commit_interval) {
  if (clusters > reserved) {
    Status s = map_.Free({reserved, clusters - reserved});
    (void)s;  // Freeing into an empty map cannot fail.
  }
}

Status PolicyAllocator::Allocate(uint64_t length, uint64_t extend_hint,
                                 ExtentList* out) {
  if (length == 0) return Status::InvalidArgument("zero-length allocation");
  if (length > map_.free_clusters()) {
    // Try releasing deferred frees before giving up, as a real volume
    // would force a log commit under space pressure.
    LOR_RETURN_IF_ERROR(deferred_.Commit(&map_));
    if (length > map_.free_clusters()) {
      return Status::NoSpace("allocation exceeds free clusters");
    }
  }

  ExtentList acquired;
  uint64_t remaining = length;

  if (options_.allow_extension && extend_hint != kNoHint) {
    const uint64_t got = map_.ExtendAt(extend_hint, remaining);
    if (got > 0) {
      acquired.push_back({extend_hint, got});
      remaining -= got;
    }
  }

  while (remaining > 0) {
    Extent e = map_.AllocateUpTo(remaining, options_.policy);
    if (e.empty()) {
      // Roll back: free space vanished between the check and here (can
      // only happen via the deferred queue accounting).
      for (const Extent& a : acquired) {
        Status s = map_.Free(a);
        (void)s;
      }
      return Status::NoSpace("free space exhausted mid-allocation");
    }
    acquired.push_back(e);
    remaining -= e.length;
  }

  for (const Extent& e : acquired) AppendCoalescing(out, e);
  return Status::OK();
}

Status PolicyAllocator::Free(const Extent& extent) {
  if (extent.empty()) return Status::OK();
  if (options_.deferred_free) {
    deferred_.Defer(extent);
    return Status::OK();
  }
  return map_.Free(extent);
}

void PolicyAllocator::Tick() {
  if (options_.deferred_free) {
    Status s = deferred_.Tick(&map_);
    (void)s;
  }
}

void PolicyAllocator::CommitPending() {
  Status s = deferred_.Commit(&map_);
  (void)s;
}

std::string PolicyAllocator::name() const {
  std::string n(FitPolicyName(options_.policy));
  if (options_.deferred_free) n += "+deferred";
  if (!options_.allow_extension) n += "-noextend";
  return n;
}

}  // namespace alloc
}  // namespace lor
