// PolicyAllocator: textbook first/best/worst/next-fit allocation over a
// FreeSpaceMap, with optional immediate or deferred free. These are the
// baseline policies from the theory literature the paper discusses
// (§3.2); the NTFS-like RunCacheAllocator is the production-path
// comparator.

#ifndef LOREPO_ALLOC_POLICY_ALLOCATOR_H_
#define LOREPO_ALLOC_POLICY_ALLOCATOR_H_

#include <cstdint>
#include <string>

#include "alloc/allocator.h"
#include "alloc/deferred_free_queue.h"

namespace lor {
namespace alloc {

/// Configuration for PolicyAllocator.
struct PolicyAllocatorOptions {
  FitPolicy policy = FitPolicy::kBestFit;
  /// Honour extend hints (contiguous file extension) before applying the
  /// fit policy.
  bool allow_extension = true;
  /// If true, freed space is reusable only after the commit interval.
  bool deferred_free = false;
  uint32_t commit_interval = 8;
};

/// Fit-policy allocator over a single free-space map.
class PolicyAllocator : public ExtentAllocator {
 public:
  /// Manages clusters [reserved, clusters); [0, reserved) is never
  /// handed out (metadata region).
  PolicyAllocator(uint64_t clusters, PolicyAllocatorOptions options,
                  uint64_t reserved = 0);

  Status Allocate(uint64_t length, uint64_t extend_hint,
                  ExtentList* out) override;
  Status Free(const Extent& extent) override;
  void Tick() override;
  void CommitPending() override;
  uint64_t free_clusters() const override { return map_.free_clusters(); }
  uint64_t total_unused_clusters() const override {
    return map_.free_clusters() + deferred_.pending_clusters();
  }
  FreeSpaceStats FreeStats() const override { return map_.Stats(); }
  std::string name() const override;

  const FreeSpaceMap& map() const { return map_; }
  FreeSpaceMap* mutable_map() { return &map_; }
  FreeSpaceMap* free_map() override { return &map_; }

 private:
  PolicyAllocatorOptions options_;
  FreeSpaceMap map_;
  DeferredFreeQueue deferred_;
};

}  // namespace alloc
}  // namespace lor

#endif  // LOREPO_ALLOC_POLICY_ALLOCATOR_H_
