// FreeSpaceMap: a coalescing map of free cluster runs with pluggable fit
// policies. This is the mechanism underneath every allocator baseline;
// the NTFS-like run cache and the policy allocators are policies layered
// on top (the mechanism/policy split follows Wilson et al.'s malloc
// survey, which the paper cites).

#ifndef LOREPO_ALLOC_FREE_SPACE_MAP_H_
#define LOREPO_ALLOC_FREE_SPACE_MAP_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "alloc/extent.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace alloc {

/// Which free run a request is satisfied from.
enum class FitPolicy {
  kFirstFit,  ///< Lowest-addressed run that fits.
  kBestFit,   ///< Smallest run that fits (ties to lowest address).
  kWorstFit,  ///< Largest run (ties to lowest address).
  kNextFit,   ///< First fit starting from a roving cursor.
};

std::string_view FitPolicyName(FitPolicy policy);

/// Aggregate description of free space, used by experiments.
struct FreeSpaceStats {
  uint64_t free_clusters = 0;
  uint64_t run_count = 0;
  uint64_t largest_run = 0;
  double mean_run = 0.0;
  /// 1 - largest_run/free_clusters; 0 when free space is one run.
  double external_fragmentation = 0.0;
};

/// Address-ordered run map with a size-ordered secondary index.
///
/// Complexity: Free/AllocateAt/ExtendAt and best/worst-fit selection are
/// O(log R) for R runs; first-fit and next-fit selection are O(R) scans
/// (acceptable for the baseline policies; the production-path allocators
/// use best-fit-style selection).
class FreeSpaceMap {
 public:
  FreeSpaceMap() = default;

  /// Map with a single free run [0, clusters).
  explicit FreeSpaceMap(uint64_t clusters);

  /// Marks a run free, coalescing with neighbours. Double frees are
  /// rejected with InvalidArgument.
  Status Free(const Extent& extent);

  /// Allocates exactly `length` contiguous clusters per `policy`, or
  /// NoSpace if no single run is large enough.
  Result<Extent> AllocateContiguous(uint64_t length, FitPolicy policy);

  /// Allocates up to `max_length` clusters from the run chosen by
  /// `policy` (taking the run's head). Returns an empty extent when the
  /// map is empty. Never splits across runs — callers loop to build
  /// multi-extent allocations.
  Extent AllocateUpTo(uint64_t max_length, FitPolicy policy);

  /// Cursor-sweep allocation: takes up to `max_length` clusters from
  /// the head of the first free run starting at or after `cursor`,
  /// wrapping to the lowest run when none follows. Any run qualifies
  /// regardless of size. Returns an empty extent when the map is empty.
  /// This models a bitmap scan from a moving allocation hint (the NTFS
  /// first-fit-from-hint behaviour).
  Extent AllocateFrom(uint64_t cursor, uint64_t max_length);

  /// Claims the specific range if (and only if) it is entirely free.
  Status AllocateAt(const Extent& extent);

  /// Extends an allocation in place: claims up to `max_length` clusters
  /// starting exactly at `start`, returning how many were claimed (0 if
  /// `start` is not free).
  uint64_t ExtendAt(uint64_t start, uint64_t max_length);

  /// True if every cluster of `extent` is free.
  bool IsFree(const Extent& extent) const;

  uint64_t free_clusters() const { return free_clusters_; }
  uint64_t run_count() const { return runs_.size(); }
  uint64_t largest_run() const;
  FreeSpaceStats Stats() const;

  /// All free runs in address order (for analysis and tests).
  std::vector<Extent> Snapshot() const;

  /// Up to `k` largest runs, ordered by decreasing size then increasing
  /// start — the ordering of NTFS's run cache.
  std::vector<Extent> LargestRuns(uint32_t k) const;

  /// Checks internal invariants (index agreement, no adjacency); used by
  /// property tests.
  Status CheckConsistency() const;

 private:
  using RunMap = std::map<uint64_t, uint64_t>;  // start -> length

  /// Removes a run from both indexes.
  void EraseRun(RunMap::iterator it);
  /// Inserts a run into both indexes (no coalescing).
  void InsertRun(uint64_t start, uint64_t length);
  /// Chooses a run with length >= `length`, or runs_.end().
  RunMap::iterator SelectRun(uint64_t length, FitPolicy policy);
  /// Largest run in the map, or runs_.end().
  RunMap::iterator LargestRun();
  /// Takes `take` clusters from the head of run `it`.
  Extent TakeFromRun(RunMap::iterator it, uint64_t take);

  RunMap runs_;
  std::set<std::pair<uint64_t, uint64_t>> by_size_;  // (length, start)
  uint64_t free_clusters_ = 0;
  uint64_t next_fit_cursor_ = 0;
};

}  // namespace alloc
}  // namespace lor

#endif  // LOREPO_ALLOC_FREE_SPACE_MAP_H_
