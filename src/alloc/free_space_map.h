// FreeSpaceMap: a coalescing map of free cluster runs with pluggable fit
// policies. This is the mechanism underneath every allocator baseline;
// the NTFS-like run cache and the policy allocators are policies layered
// on top (the mechanism/policy split follows Wilson et al.'s malloc
// survey, which the paper cites).

#ifndef LOREPO_ALLOC_FREE_SPACE_MAP_H_
#define LOREPO_ALLOC_FREE_SPACE_MAP_H_

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "alloc/extent.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace alloc {

/// Which free run a request is satisfied from.
enum class FitPolicy {
  kFirstFit,  ///< Lowest-addressed run that fits.
  kBestFit,   ///< Smallest run that fits (ties to lowest address).
  kWorstFit,  ///< Largest run (ties to lowest address).
  kNextFit,   ///< First fit starting from a roving cursor.
};

std::string_view FitPolicyName(FitPolicy policy);

/// Aggregate description of free space, used by experiments.
struct FreeSpaceStats {
  uint64_t free_clusters = 0;
  uint64_t run_count = 0;
  uint64_t largest_run = 0;
  double mean_run = 0.0;
  /// 1 - largest_run/free_clusters; 0 when free space is one run.
  double external_fragmentation = 0.0;
};

/// Address-ordered run map with a size-ordered secondary index and
/// power-of-two size-bucketed free lists (the bblocks extentfs idiom).
///
/// Complexity: Free/AllocateAt/ExtendAt and best/worst-fit selection are
/// O(log R) for R runs. First-fit and next-fit select through the size
/// buckets: every bucket that guarantees a fit contributes its lowest
/// candidate in O(log R), and only the single boundary bucket (runs
/// within the same power-of-two band as the request) is scanned, with
/// early exit once addresses pass the best candidate — O(log buckets +
/// log R) in practice instead of the former O(R) address-order scans.
/// Placement decisions are bit-identical to the linear scans.
///
/// The bucket index is pay-as-you-go: it is built on the first
/// first/next-fit query and maintained from then on, so callers that
/// never issue those queries (the NTFS run-cache path lives on
/// ExtendAt/AllocateAt/ForEachLargestRun) carry no bucket overhead.
class FreeSpaceMap {
 public:
  FreeSpaceMap() = default;

  /// Map with a single free run [0, clusters).
  explicit FreeSpaceMap(uint64_t clusters);

  // Copies/moves reconcile the deferred by_size_ re-key and drop the
  // shrink-position cache (its iterator must not cross containers).
  FreeSpaceMap(const FreeSpaceMap& other);
  FreeSpaceMap& operator=(const FreeSpaceMap& other);
  FreeSpaceMap(FreeSpaceMap&& other) noexcept;
  FreeSpaceMap& operator=(FreeSpaceMap&& other) noexcept;

  /// Marks a run free, coalescing with neighbours. Double frees are
  /// rejected with InvalidArgument.
  Status Free(const Extent& extent);

  /// Allocates exactly `length` contiguous clusters per `policy`, or
  /// NoSpace if no single run is large enough.
  Result<Extent> AllocateContiguous(uint64_t length, FitPolicy policy);

  /// Allocates up to `max_length` clusters from the run chosen by
  /// `policy` (taking the run's head). Returns an empty extent when the
  /// map is empty. Never splits across runs — callers loop to build
  /// multi-extent allocations.
  Extent AllocateUpTo(uint64_t max_length, FitPolicy policy);

  /// Cursor-sweep allocation: takes up to `max_length` clusters from
  /// the head of the first free run starting at or after `cursor`,
  /// wrapping to the lowest run when none follows. Any run qualifies
  /// regardless of size. Returns an empty extent when the map is empty.
  /// This models a bitmap scan from a moving allocation hint (the NTFS
  /// first-fit-from-hint behaviour).
  Extent AllocateFrom(uint64_t cursor, uint64_t max_length);

  /// Claims the specific range if (and only if) it is entirely free.
  Status AllocateAt(const Extent& extent);

  /// Extends an allocation in place: claims up to `max_length` clusters
  /// starting exactly at `start`, returning how many were claimed (0 if
  /// `start` is not free).
  uint64_t ExtendAt(uint64_t start, uint64_t max_length);

  /// True if every cluster of `extent` is free.
  bool IsFree(const Extent& extent) const;

  uint64_t free_clusters() const { return free_clusters_; }
  uint64_t run_count() const { return runs_.size(); }
  uint64_t largest_run() const;
  FreeSpaceStats Stats() const;

  /// All free runs in address order (for analysis and tests).
  std::vector<Extent> Snapshot() const;

  /// Up to `k` largest runs, ordered by decreasing size then increasing
  /// start — the ordering of NTFS's run cache.
  std::vector<Extent> LargestRuns(uint32_t k) const;

  /// Allocation-free walk over the same `k`-run subset LargestRuns
  /// returns, in (size desc, start desc) iteration order. `fn` returns
  /// false to stop early. Hot-path alternative for callers (the NTFS
  /// run cache) that only need one pass and no materialized vector;
  /// note the tie order differs from LargestRuns' sorted output.
  template <typename Fn>
  void ForEachLargestRun(uint32_t k, Fn&& fn) const {
    FlushPendingResize();
    uint32_t seen = 0;
    for (auto it = by_size_.rbegin(); it != by_size_.rend() && seen < k;
         ++it, ++seen) {
      if (!fn(Extent{it->second, it->first})) return;
    }
  }

  /// Checks internal invariants (index agreement, no adjacency); used by
  /// property tests.
  Status CheckConsistency() const;

 private:
  using RunMap = std::map<uint64_t, uint64_t>;  // start -> length

  /// One free list per power-of-two size class: bucket k holds runs
  /// with length in [2^k, 2^(k+1)), address-ordered.
  static constexpr int kBucketCount = 64;
  static int BucketFor(uint64_t length) {
    return std::bit_width(length) - 1;  // length >= 1 always holds.
  }

  /// Removes a run from all indexes.
  void EraseRun(RunMap::iterator it);
  /// Inserts a run into all indexes (no coalescing).
  void InsertRun(uint64_t start, uint64_t length);
  /// Chooses a run with length >= `length`, or runs_.end().
  RunMap::iterator SelectRun(uint64_t length, FitPolicy policy);
  /// Largest run in the map, or runs_.end().
  RunMap::iterator LargestRun();
  /// Takes `take` clusters from the head of run `it`.
  Extent TakeFromRun(RunMap::iterator it, uint64_t take);
  /// Lowest start >= `cursor` among runs with length >= `length`
  /// (bucketed first-fit query), or kNoRun. Builds the bucket index on
  /// first use.
  uint64_t FindFrom(uint64_t length, uint64_t cursor);
  /// Populates the bucket index from runs_ and starts maintaining it.
  void BuildBuckets();
  /// Applies the deferred by_size_ re-key of the run under sequential
  /// shrinking (see pending_* below). Must run before any by_size_
  /// read; mutates only mutable state so const readers can call it.
  void FlushPendingResize() const;

  static constexpr uint64_t kNoRun = ~0ULL;

  RunMap runs_;
  /// (length, start). For the single run recorded in pending_*, the
  /// entry is stale until FlushPendingResize() runs; everything else is
  /// exact. Mutable so const readers can reconcile.
  mutable std::set<std::pair<uint64_t, uint64_t>> by_size_;
  std::array<std::map<uint64_t, uint64_t>, kBucketCount>
      buckets_;                   // Per size class: start -> length.
  uint64_t bucket_mask_ = 0;      ///< Bit k set iff buckets_[k] non-empty.
  bool buckets_enabled_ = false;  ///< Built on first first/next-fit query.
  /// Sequential extension shrinks one run thousands of times in a row;
  /// its by_size_ entry is re-keyed lazily (one reconcile per reader
  /// instead of two tree walks per shrink). `pending_stale_` is the key
  /// still present in by_size_, `pending_true_` the live (length,
  /// start) held by runs_.
  mutable std::pair<uint64_t, uint64_t> pending_stale_{};
  mutable std::pair<uint64_t, uint64_t> pending_true_{};
  mutable bool pending_valid_ = false;
  /// Position of the most recently shrunk run: lets the next ExtendAt
  /// at its head skip the address lookup entirely.
  RunMap::iterator shrink_cache_it_{};
  bool shrink_cache_valid_ = false;
  uint64_t free_clusters_ = 0;
  uint64_t next_fit_cursor_ = 0;
};

}  // namespace alloc
}  // namespace lor

#endif  // LOREPO_ALLOC_FREE_SPACE_MAP_H_
