#include "alloc/buddy_allocator.h"

#include <algorithm>

namespace lor {
namespace alloc {

uint32_t BuddyAllocator::OrderFor(uint64_t length) {
  uint32_t order = 0;
  while ((1ULL << order) < length) ++order;
  return order;
}

BuddyAllocator::BuddyAllocator(uint64_t clusters) : capacity_(clusters) {
  max_order_ = OrderFor(std::max<uint64_t>(clusters, 1));
  rounded_capacity_ = 1ULL << max_order_;
  free_lists_.resize(max_order_ + 1);
  free_lists_[max_order_].insert(0);
  free_clusters_ = rounded_capacity_;

  // Permanently claim the phantom tail [capacity_, rounded_capacity_):
  // walk it as naturally-aligned power-of-two pieces and carve each one
  // out of the free lists. These pieces are never freed.
  uint64_t addr = capacity_;
  while (addr < rounded_capacity_) {
    uint32_t order = 0;
    while (addr % BlockSize(order + 1) == 0 &&
           addr + BlockSize(order + 1) <= rounded_capacity_) {
      ++order;
    }
    CarveBlock(addr, order);
    free_clusters_ -= BlockSize(order);
    addr += BlockSize(order);
  }
}

void BuddyAllocator::CarveBlock(uint64_t addr, uint32_t order) {
  // Find the free block containing `addr` (it must exist) and split it
  // down until a block of exactly [addr, addr + 2^order) is isolated.
  for (uint32_t o = order; o <= max_order_; ++o) {
    const uint64_t block_start = addr & ~(BlockSize(o) - 1);
    auto it = free_lists_[o].find(block_start);
    if (it == free_lists_[o].end()) continue;
    free_lists_[o].erase(it);
    uint64_t cur_start = block_start;
    for (uint32_t cur = o; cur > order; --cur) {
      const uint64_t half = BlockSize(cur - 1);
      if (addr < cur_start + half) {
        free_lists_[cur - 1].insert(cur_start + half);
      } else {
        free_lists_[cur - 1].insert(cur_start);
        cur_start += half;
      }
    }
    return;
  }
}

Status BuddyAllocator::Allocate(uint64_t length, uint64_t /*extend_hint*/,
                                ExtentList* out) {
  if (length == 0) return Status::InvalidArgument("zero-length allocation");
  const uint32_t order = OrderFor(length);
  if (order > max_order_) return Status::NoSpace("request exceeds capacity");

  // Find the smallest order with a free block.
  uint32_t o = order;
  while (o <= max_order_ && free_lists_[o].empty()) ++o;
  if (o > max_order_) {
    return Status::NoSpace("no buddy block large enough");
  }

  // Prefer the lowest-addressed block at that order.
  uint64_t start = *free_lists_[o].begin();
  free_lists_[o].erase(free_lists_[o].begin());
  // Split down to the requested order, returning upper halves.
  while (o > order) {
    --o;
    free_lists_[o].insert(start + BlockSize(o));
  }

  free_clusters_ -= BlockSize(order);
  internal_waste_ += BlockSize(order) - length;
  live_[start] = {order, length};
  AppendCoalescing(out, {start, BlockSize(order)});
  return Status::OK();
}

Status BuddyAllocator::Free(const Extent& extent) {
  if (extent.empty()) return Status::OK();
  auto it = live_.find(extent.start);
  if (it == live_.end()) {
    return Status::InvalidArgument("free of unknown buddy block");
  }
  uint32_t order = it->second.first;
  if (extent.length != BlockSize(order)) {
    return Status::InvalidArgument("free length does not match block");
  }
  internal_waste_ -= BlockSize(order) - it->second.second;
  live_.erase(it);

  uint64_t start = extent.start;
  free_clusters_ += BlockSize(order);
  // Merge with the buddy while it is free.
  while (order < max_order_) {
    const uint64_t buddy = start ^ BlockSize(order);
    auto& fl = free_lists_[order];
    auto bit = fl.find(buddy);
    if (bit == fl.end()) break;
    fl.erase(bit);
    start = std::min(start, buddy);
    ++order;
  }
  free_lists_[order].insert(start);
  return Status::OK();
}

FreeSpaceStats BuddyAllocator::FreeStats() const {
  FreeSpaceStats s;
  s.free_clusters = free_clusters_;
  uint64_t largest = 0;
  uint64_t count = 0;
  for (uint32_t o = 0; o <= max_order_; ++o) {
    if (!free_lists_[o].empty()) {
      largest = BlockSize(o);
      count += free_lists_[o].size();
    }
  }
  s.run_count = count;
  s.largest_run = largest;
  s.mean_run = count ? static_cast<double>(free_clusters_) /
                           static_cast<double>(count)
                     : 0.0;
  s.external_fragmentation =
      free_clusters_ == 0
          ? 0.0
          : 1.0 - static_cast<double>(largest) /
                      static_cast<double>(free_clusters_);
  return s;
}

Status BuddyAllocator::CheckConsistency() const {
  uint64_t total = 0;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;  // (start, end)
  for (uint32_t o = 0; o < free_lists_.size(); ++o) {
    for (uint64_t start : free_lists_[o]) {
      if (start % BlockSize(o) != 0) {
        return Status::Corruption("misaligned free block");
      }
      ranges.emplace_back(start, start + BlockSize(o));
      total += BlockSize(o);
    }
  }
  for (const auto& [start, len_req] : live_) {
    ranges.emplace_back(start, start + BlockSize(len_req.first));
  }
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i].first < ranges[i - 1].second) {
      return Status::Corruption("overlapping buddy blocks");
    }
  }
  if (total != free_clusters_) {
    return Status::Corruption("free cluster accounting mismatch");
  }
  return Status::OK();
}

}  // namespace alloc
}  // namespace lor
