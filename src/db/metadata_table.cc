#include "db/metadata_table.h"

#include <algorithm>

#include "db/blob_btree.h"

namespace lor {
namespace db {

namespace {
/// Assumed on-page row footprint (key + fixed columns + record
/// overhead); determines leaf fanout.
constexpr uint64_t kAssumedRowBytes = 128;
/// Separator key + child pointer footprint in internal nodes.
constexpr uint64_t kInternalEntryBytes = 40;
}  // namespace

struct MetadataTable::Node {
  bool leaf = true;
  uint64_t page_id = 0;
  // Leaf: keys_ parallel to rows_. Internal: separators; children_ has
  // one more entry than keys_, and keys_[i] is the smallest key in the
  // subtree of children_[i + 1].
  std::vector<std::string> keys;
  std::vector<ObjectRow> rows;
  std::vector<std::unique_ptr<Node>> children;
};

MetadataTable::MetadataTable(PageFile* file, const sim::OpCostModel* costs,
                             uint32_t ops_per_checkpoint)
    : file_(file), costs_(costs), ops_per_checkpoint_(ops_per_checkpoint) {
  root_ = std::make_unique<Node>();
  stats_.leaf_pages = 1;
  // Allocate the root's page.
  auto extent = file_->AllocateExtent();
  if (extent.ok()) {
    const uint64_t first = file_->ExtentFirstPage(*extent);
    for (uint64_t i = 0; i < file_->pages_per_extent(); ++i) {
      page_pool_.push_back(first + i);
    }
  }
  if (!page_pool_.empty()) {
    root_->page_id = page_pool_.back();
    page_pool_.pop_back();
  }
}

MetadataTable::~MetadataTable() = default;

uint64_t MetadataTable::LeafCapacity() const {
  return (file_->page_bytes() - BlobBtree::kPageHeaderBytes) /
         kAssumedRowBytes;
}

uint64_t MetadataTable::InternalCapacity() const {
  return (file_->page_bytes() - BlobBtree::kPageHeaderBytes) /
         kInternalEntryBytes;
}

void MetadataTable::ChargeLookupCpu(uint64_t levels) const {
  file_->device()->ChargeCpu(costs_->db_per_page_cpu_s *
                             static_cast<double>(levels + 1));
}

void MetadataTable::MarkDirty(Node* node) {
  dirty_pages_.push_back(node->page_id);
}

void MetadataTable::MaybeCheckpoint() {
  if (ops_per_checkpoint_ == 0) return;
  if (++ops_since_checkpoint_ < ops_per_checkpoint_) return;
  ops_since_checkpoint_ = 0;
  ++stats_.checkpoints;
  // Write back dirty pages, coalescing adjacent page ids; the whole
  // multi-run flush goes to the device as one vectored submission
  // (charge-identical to the historical request-per-run loop).
  std::sort(dirty_pages_.begin(), dirty_pages_.end());
  dirty_pages_.erase(
      std::unique(dirty_pages_.begin(), dirty_pages_.end()),
      dirty_pages_.end());
  checkpoint_runs_.clear();
  uint64_t run_start = 0;
  uint64_t run_len = 0;
  for (uint64_t page : dirty_pages_) {
    if (run_len != 0 && page == run_start + run_len) {
      ++run_len;
      continue;
    }
    if (run_len != 0) {
      checkpoint_runs_.push_back({run_start, run_len, nullptr, nullptr});
    }
    run_start = page;
    run_len = 1;
  }
  if (run_len != 0) {
    checkpoint_runs_.push_back({run_start, run_len, nullptr, nullptr});
  }
  Status s = file_->WritePagesV(checkpoint_runs_);
  (void)s;
  dirty_pages_.clear();
}

namespace {

/// Result of a child insert that overflowed: the separator and the new
/// right sibling.
struct SplitResult {
  std::string separator;
  std::unique_ptr<MetadataTable::Node> right;
};

}  // namespace

Status MetadataTable::Insert(const ObjectRow& row) {
  if (row.key.empty()) return Status::InvalidArgument("empty key");

  // Walk down, remembering the path for splits.
  std::vector<Node*> path;
  Node* node = root_.get();
  while (!node->leaf) {
    path.push_back(node);
    const size_t idx =
        std::upper_bound(node->keys.begin(), node->keys.end(), row.key) -
        node->keys.begin();
    node = node->children[idx].get();
  }
  ChargeLookupCpu(path.size() + 1);

  const size_t pos =
      std::lower_bound(node->keys.begin(), node->keys.end(), row.key) -
      node->keys.begin();
  if (pos < node->keys.size() && node->keys[pos] == row.key) {
    ObjectRow& existing = node->rows[pos];
    if (!existing.ghost) {
      return Status::AlreadyExists("row exists: " + row.key);
    }
    // Resurrect the ghost in place.
    existing = row;
    existing.ghost = false;
    --stats_.ghosts;
    ++stats_.rows;
    MarkDirty(node);
    MaybeCheckpoint();
    return Status::OK();
  }

  node->keys.insert(node->keys.begin() + pos, row.key);
  node->rows.insert(node->rows.begin() + pos, row);
  node->rows[pos].ghost = false;
  ++stats_.rows;
  MarkDirty(node);

  // Split upward while nodes overflow.
  Node* current = node;
  size_t level = path.size();
  std::unique_ptr<Node> pending_right;
  std::string pending_sep;
  const uint64_t leaf_cap = LeafCapacity();
  const uint64_t internal_cap = InternalCapacity();

  auto take_page = [&]() -> uint64_t {
    if (page_pool_.empty()) {
      auto extent = file_->AllocateExtent();
      if (extent.ok()) {
        const uint64_t first = file_->ExtentFirstPage(*extent);
        for (uint64_t i = 0; i < file_->pages_per_extent(); ++i) {
          page_pool_.push_back(first + i);
        }
      }
    }
    if (page_pool_.empty()) return 0;
    const uint64_t page = page_pool_.back();
    page_pool_.pop_back();
    return page;
  };

  while (true) {
    const uint64_t cap = current->leaf ? leaf_cap : internal_cap;
    const uint64_t size =
        current->leaf ? current->keys.size() : current->children.size();
    if (size <= cap) break;

    auto right = std::make_unique<Node>();
    right->leaf = current->leaf;
    right->page_id = take_page();
    ++stats_.splits;
    ++structure_gen_;  // Rows move between nodes: cursors re-descend.
    if (current->leaf) {
      const size_t mid = current->keys.size() / 2;
      pending_sep = current->keys[mid];
      right->keys.assign(current->keys.begin() + mid, current->keys.end());
      right->rows.assign(current->rows.begin() + mid, current->rows.end());
      current->keys.resize(mid);
      current->rows.resize(mid);
      ++stats_.leaf_pages;
    } else {
      const size_t mid = current->keys.size() / 2;
      pending_sep = current->keys[mid];
      right->keys.assign(current->keys.begin() + mid + 1,
                         current->keys.end());
      for (size_t i = mid + 1; i < current->children.size(); ++i) {
        right->children.push_back(std::move(current->children[i]));
      }
      current->keys.resize(mid);
      current->children.resize(mid + 1);
      ++stats_.internal_pages;
    }
    MarkDirty(current);
    MarkDirty(right.get());
    pending_right = std::move(right);

    if (level == 0) {
      // Split the root: grow the tree by one level.
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      new_root->page_id = take_page();
      new_root->keys.push_back(pending_sep);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(pending_right));
      root_ = std::move(new_root);
      ++stats_.internal_pages;
      MarkDirty(root_.get());
      break;
    }
    // Attach to the parent.
    Node* parent = path[level - 1];
    const size_t idx =
        std::upper_bound(parent->keys.begin(), parent->keys.end(),
                         pending_sep) -
        parent->keys.begin();
    parent->keys.insert(parent->keys.begin() + idx, pending_sep);
    parent->children.insert(parent->children.begin() + idx + 1,
                            std::move(pending_right));
    MarkDirty(parent);
    current = parent;
    --level;
  }

  MaybeCheckpoint();
  return Status::OK();
}

Result<ObjectRow> MetadataTable::Lookup(const std::string& key) const {
  const Node* node = root_.get();
  uint64_t levels = 1;
  while (!node->leaf) {
    const size_t idx =
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin();
    node = node->children[idx].get();
    ++levels;
  }
  ChargeLookupCpu(levels);
  const size_t pos =
      std::lower_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin();
  if (pos >= node->keys.size() || node->keys[pos] != key ||
      node->rows[pos].ghost) {
    return Status::NotFound("no row: " + key);
  }
  return node->rows[pos];
}

Status MetadataTable::Update(const ObjectRow& row) {
  return UpdateAt(nullptr, row);
}

Status MetadataTable::UpdateAt(RowCursor* cursor, const ObjectRow& row) {
  Node* node = nullptr;
  size_t pos = 0;
  // A positioned cursor skips the descent: same page touched, same
  // buffer-pool charge, no key comparisons down the tree.
  if (cursor != nullptr && cursor->leaf != nullptr &&
      cursor->structure_gen == structure_gen_ &&
      cursor->pos < cursor->leaf->keys.size() &&
      cursor->leaf->keys[cursor->pos] == row.key) {
    node = cursor->leaf;
    pos = cursor->pos;
  } else {
    node = root_.get();
    while (!node->leaf) {
      const size_t idx =
          std::upper_bound(node->keys.begin(), node->keys.end(), row.key) -
          node->keys.begin();
      node = node->children[idx].get();
    }
    pos = std::lower_bound(node->keys.begin(), node->keys.end(), row.key) -
          node->keys.begin();
  }
  ChargeLookupCpu(1);
  if (pos >= node->keys.size() || node->keys[pos] != row.key ||
      node->rows[pos].ghost) {
    return Status::NotFound("no row: " + row.key);
  }
  if (cursor != nullptr) {
    cursor->leaf = node;
    cursor->pos = pos;
    cursor->structure_gen = structure_gen_;
  }
  node->rows[pos] = row;
  node->rows[pos].ghost = false;
  MarkDirty(node);
  MaybeCheckpoint();
  return Status::OK();
}

Status MetadataTable::Delete(const std::string& key) {
  Node* node = root_.get();
  while (!node->leaf) {
    const size_t idx =
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin();
    node = node->children[idx].get();
  }
  ChargeLookupCpu(1);
  const size_t pos =
      std::lower_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin();
  if (pos >= node->keys.size() || node->keys[pos] != key ||
      node->rows[pos].ghost) {
    return Status::NotFound("no row: " + key);
  }
  node->rows[pos].ghost = true;
  --stats_.rows;
  ++stats_.ghosts;
  MarkDirty(node);
  MaybeCheckpoint();
  return Status::OK();
}

namespace {

void PurgeNode(MetadataTable::Node* node) {
  if (node->leaf) {
    size_t w = 0;
    for (size_t i = 0; i < node->keys.size(); ++i) {
      if (!node->rows[i].ghost) {
        if (w != i) {
          node->keys[w] = std::move(node->keys[i]);
          node->rows[w] = std::move(node->rows[i]);
        }
        ++w;
      }
    }
    node->keys.resize(w);
    node->rows.resize(w);
    return;
  }
  for (auto& child : node->children) PurgeNode(child.get());
}

void ScanNode(const MetadataTable::Node* node,
              std::vector<std::string>* out) {
  if (node->leaf) {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      if (!node->rows[i].ghost) out->push_back(node->keys[i]);
    }
    return;
  }
  for (const auto& child : node->children) ScanNode(child.get(), out);
}

}  // namespace

void MetadataTable::PurgeGhosts() {
  PurgeNode(root_.get());
  stats_.ghosts = 0;
  ++structure_gen_;  // Compaction shifts row positions.
}

std::vector<std::string> MetadataTable::ScanKeys() const {
  std::vector<std::string> out;
  out.reserve(stats_.rows);
  ScanNode(root_.get(), &out);
  return out;
}

MetadataTableStats MetadataTable::stats() const {
  MetadataTableStats s = stats_;
  uint64_t height = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    ++height;
    node = node->children.front().get();
  }
  s.height = height;
  return s;
}

namespace {

// Recursive invariant check; returns leaf depth or -1 on failure.
int CheckNode(const MetadataTable::Node* node, const std::string* lo,
              const std::string* hi, uint64_t leaf_cap, uint64_t internal_cap,
              Status* status) {
  auto fail = [&](const char* msg) {
    *status = Status::Corruption(msg);
    return -1;
  };
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
    return fail("keys out of order");
  }
  for (const std::string& k : node->keys) {
    if (lo != nullptr && k < *lo) return fail("key below lower bound");
    if (hi != nullptr && k >= *hi) return fail("key above upper bound");
  }
  if (node->leaf) {
    if (node->keys.size() != node->rows.size()) {
      return fail("leaf keys/rows size mismatch");
    }
    if (node->keys.size() > leaf_cap) return fail("leaf overflow");
    return 1;
  }
  if (node->children.size() != node->keys.size() + 1) {
    return fail("internal child count mismatch");
  }
  if (node->children.size() > internal_cap + 1) {
    return fail("internal overflow");
  }
  int depth = -2;
  for (size_t i = 0; i < node->children.size(); ++i) {
    const std::string* child_lo = i == 0 ? lo : &node->keys[i - 1];
    const std::string* child_hi = i == node->keys.size() ? hi : &node->keys[i];
    const int d = CheckNode(node->children[i].get(), child_lo, child_hi,
                            leaf_cap, internal_cap, status);
    if (d < 0) return -1;
    if (depth == -2) {
      depth = d;
    } else if (depth != d) {
      return fail("leaves at different depths");
    }
  }
  return depth + 1;
}

}  // namespace

Status MetadataTable::CheckConsistency() const {
  Status status = Status::OK();
  CheckNode(root_.get(), nullptr, nullptr, LeafCapacity(),
            InternalCapacity(), &status);
  return status;
}

}  // namespace db
}  // namespace lor
