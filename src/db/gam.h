// GamBitmap: a Global Allocation Map in the style of SQL Server's GAM
// pages — one bit per 64 KB extent, scanned lowest-first when an
// allocation is needed.
//
// The lowest-free-extent-first reuse discipline is the mechanism behind
// the paper's observation that SQL Server's BLOB fragmentation grows
// almost linearly with storage age: freed extents anywhere in the file
// are reused before the contiguous tail, so a replacement object is
// assembled from holes scattered across the whole file.

#ifndef LOREPO_DB_GAM_H_
#define LOREPO_DB_GAM_H_

#include <cstdint>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace db {

/// Sentinel returned when no free extent exists.
inline constexpr uint64_t kNoExtent = ~0ULL;

/// Two-level bitmap over extent ids [0, capacity).
///
/// Level 0 stores one bit per extent (1 = free); level 1 stores one bit
/// per level-0 word (1 = word has a free bit), making the first-free
/// scan O(capacity / 4096) words in the worst case.
class GamBitmap {
 public:
  explicit GamBitmap(uint64_t capacity_extents);

  /// Total extents the map covers.
  uint64_t capacity() const { return capacity_; }
  uint64_t free_count() const { return free_count_; }

  /// Marks `count` extents starting at `first` free (file growth or
  /// deallocation). Fails if any extent is already free.
  Status Release(uint64_t first, uint64_t count);

  /// Claims the lowest free extent at or above `from`. Returns kNoExtent
  /// when none exists.
  uint64_t AllocateLowest(uint64_t from = 0);

  /// Lowest free extent at or above `from` without claiming it, or
  /// kNoExtent. O(capacity / 4096) worst case via the summary level.
  uint64_t FindLowestFree(uint64_t from = 0) const;

  /// Idempotently marks one extent free / not free, maintaining the
  /// free count. Unlike Release/AllocateSpecific these never fail,
  /// which lets callers (e.g. LobAllocationUnit's free-page index) use
  /// the bitmap as a plain membership index.
  void MarkFree(uint64_t extent);
  void MarkUsed(uint64_t extent);

  /// Claims a specific extent; fails if it is not free.
  Status AllocateSpecific(uint64_t extent);

  /// Claims up to `count` *consecutive* free extents starting at the
  /// lowest free extent >= `from`; returns the run (possibly shorter
  /// than `count`). Models SQL Server's preference for allocating runs
  /// of extents to one object when they happen to be adjacent. Returns
  /// {kNoExtent, 0} when nothing is free.
  std::pair<uint64_t, uint64_t> AllocateRun(uint64_t count,
                                            uint64_t from = 0);

  bool IsFree(uint64_t extent) const;

  /// Verifies the summary level agrees with level 0 and the free count.
  Status CheckConsistency() const;

 private:
  void SetFree(uint64_t extent);
  void ClearFree(uint64_t extent);

  uint64_t capacity_;
  uint64_t free_count_ = 0;
  std::vector<uint64_t> bits_;     ///< 1 bit per extent; 1 = free.
  std::vector<uint64_t> summary_;  ///< 1 bit per bits_ word; 1 = any free.
};

}  // namespace db
}  // namespace lor

#endif  // LOREPO_DB_GAM_H_
