// LobAllocationUnit: page-granular allocation within extents owned by
// one allocation unit — SQL Server's IAM/PFS discipline for LOB data.
//
// Extents are acquired from the GAM (lowest-first from a scan hint) and
// *shared between blobs*: a blob's tail pages and the next blob's head
// pages can occupy the same extent. Pages freed by deletions leave
// partially-used extents whose free pages are reused by later writes,
// so after churn a new blob's pages scatter across many partially-free
// extents — the sub-extent mixing that drives the paper's near-linear
// database fragmentation growth. A fully-freed extent is returned to
// the GAM (subject to the PageFile's deferred-release discipline).

#ifndef LOREPO_DB_LOB_ALLOCATION_UNIT_H_
#define LOREPO_DB_LOB_ALLOCATION_UNIT_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "alloc/extent.h"
#include "db/gam.h"
#include "db/page_file.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace db {

/// Page-allocation policy within the unit.
enum class PageScanPolicy {
  /// Scan owned extents from the lowest page id (PFS order). Strongest
  /// reuse of low holes; scatters aggressively under churn.
  kLowestFirst,
  /// Scan from the extent of the most recent allocation, wrapping —
  /// SQL Server caches allocation hints per unit rather than
  /// re-scanning from the front each time.
  kFromHint,
};

/// One table's LOB allocation unit.
///
/// Bookkeeping is flat and O(1) per page operation: a per-extent free-
/// page bitmap indexed directly by extent id, plus a two-level bitmap
/// (GamBitmap reused as a membership index) over extents with free
/// pages so the PFS-order / from-hint scans are summary-level word
/// scans instead of ordered-set walks. This is the engine's hottest
/// path — every blob write and free goes through it page by page.
class LobAllocationUnit {
 public:
  LobAllocationUnit(PageFile* file,
                    PageScanPolicy policy = PageScanPolicy::kFromHint)
      : file_(file),
        policy_(policy),
        bitmaps_(file->capacity_extents(), kUnowned),
        with_free_(file->capacity_extents()),
        pages_per_extent_(file->pages_per_extent()),
        all_free_(static_cast<uint16_t>((1u << pages_per_extent_) - 1)) {}

  /// Allocates one page, preferring free pages in owned extents before
  /// acquiring a new extent from the GAM.
  Result<uint64_t> AllocatePage();

  /// Allocates `count` pages — the identical page-id sequence `count`
  /// AllocatePage calls would produce, batched per extent (one scan +
  /// one bitmap update per extent instead of per page). Appends the
  /// pages to `out` as coalesced page runs. On failure the pages
  /// acquired by this call are rolled back and `out` is untouched.
  Status AllocatePages(uint64_t count, alloc::ExtentList* out);

  /// Frees one page; returns the extent to the GAM once it is entirely
  /// free.
  Status FreePage(uint64_t page_id);

  /// Frees a run of pages — equivalent to FreePage on each page of
  /// `run` in ascending order, batched per extent.
  Status FreePages(const alloc::Extent& run);

  /// Pages currently allocated through this unit.
  uint64_t allocated_pages() const { return allocated_pages_; }
  /// Free pages inside owned (partially used) extents.
  uint64_t reserved_free_pages() const { return reserved_free_; }
  /// Extents currently owned by the unit.
  uint64_t owned_extents() const { return owned_count_; }

  // -- Media quarantine ------------------------------------------------

  /// Marks a page pending-bad: when it is next freed (the repair path
  /// supersedes the blob with a safe write, then frees the old pages),
  /// it diverts to the quarantine list instead of becoming reusable.
  /// Its bitmap bit stays "used", so the page is never re-issued and
  /// its extent never returns to the GAM.
  void MarkPendingBad(uint64_t page_id) { pending_bad_pages_.insert(page_id); }

  /// Drops pending-bad marks that never reached a free (e.g. a repair
  /// whose rewrite failed and left the old blob in place).
  void ClearPendingBad() { pending_bad_pages_.clear(); }

  uint64_t pending_bad_count() const { return pending_bad_pages_.size(); }
  uint64_t quarantined_page_count() const { return quarantined_pages_.size(); }
  bool IsQuarantined(uint64_t page_id) const {
    return quarantined_pages_.count(page_id) != 0;
  }

  /// Sequential-fill mode for table rebuilds: while enabled, page
  /// allocation never reuses free pages in old partially-used extents;
  /// it only fills the tail of the most recently acquired extent or
  /// acquires a fresh one, so copies land contiguously.
  void set_sequential_fill(bool on) { sequential_fill_ = on; }

  /// Verifies internal bookkeeping (bitmaps vs counters vs index).
  Status CheckConsistency() const;

 private:
  /// Sentinel bitmap value for extents the unit does not own. Owned
  /// extents hold their free-page bits (bit i = page i of extent free);
  /// 0 means owned and fully used.
  static constexpr uint16_t kUnowned = 0xFFFF;

  /// Picks an owned extent with at least one free page, or returns
  /// kNoExtent.
  uint64_t PickExtent();

  PageFile* file_;
  PageScanPolicy policy_;
  /// Free-page bitmap per extent id, kUnowned where not owned. Only
  /// extents with used pages are owned; an extent whose pages are all
  /// free is released back to the GAM.
  std::vector<uint16_t> bitmaps_;
  /// Membership index over extents with at least one free page.
  GamBitmap with_free_;
  /// Cached geometry: page <-> extent translation runs on every page
  /// operation, so avoid re-deriving it through the file.
  uint64_t pages_per_extent_;
  uint16_t all_free_;
  uint64_t hint_extent_ = 0;
  uint64_t allocated_pages_ = 0;
  uint64_t reserved_free_ = 0;
  uint64_t owned_count_ = 0;
  bool sequential_fill_ = false;
  /// Pages marked bad whose free has not happened yet (scrub state).
  std::unordered_set<uint64_t> pending_bad_pages_;
  /// Retired bad pages: bitmap bit held "used" forever, counted apart
  /// from allocated_pages_ (no blob owns them).
  std::unordered_set<uint64_t> quarantined_pages_;
};

}  // namespace db
}  // namespace lor

#endif  // LOREPO_DB_LOB_ALLOCATION_UNIT_H_
