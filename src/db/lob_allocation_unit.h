// LobAllocationUnit: page-granular allocation within extents owned by
// one allocation unit — SQL Server's IAM/PFS discipline for LOB data.
//
// Extents are acquired from the GAM (lowest-first from a scan hint) and
// *shared between blobs*: a blob's tail pages and the next blob's head
// pages can occupy the same extent. Pages freed by deletions leave
// partially-used extents whose free pages are reused by later writes,
// so after churn a new blob's pages scatter across many partially-free
// extents — the sub-extent mixing that drives the paper's near-linear
// database fragmentation growth. A fully-freed extent is returned to
// the GAM (subject to the PageFile's deferred-release discipline).

#ifndef LOREPO_DB_LOB_ALLOCATION_UNIT_H_
#define LOREPO_DB_LOB_ALLOCATION_UNIT_H_

#include <cstdint>
#include <map>
#include <set>

#include "db/page_file.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace db {

/// Page-allocation policy within the unit.
enum class PageScanPolicy {
  /// Scan owned extents from the lowest page id (PFS order). Strongest
  /// reuse of low holes; scatters aggressively under churn.
  kLowestFirst,
  /// Scan from the extent of the most recent allocation, wrapping —
  /// SQL Server caches allocation hints per unit rather than
  /// re-scanning from the front each time.
  kFromHint,
};

/// One table's LOB allocation unit.
class LobAllocationUnit {
 public:
  LobAllocationUnit(PageFile* file,
                    PageScanPolicy policy = PageScanPolicy::kFromHint)
      : file_(file), policy_(policy) {}

  /// Allocates one page, preferring free pages in owned extents before
  /// acquiring a new extent from the GAM.
  Result<uint64_t> AllocatePage();

  /// Frees one page; returns the extent to the GAM once it is entirely
  /// free.
  Status FreePage(uint64_t page_id);

  /// Pages currently allocated through this unit.
  uint64_t allocated_pages() const { return allocated_pages_; }
  /// Free pages inside owned (partially used) extents.
  uint64_t reserved_free_pages() const { return reserved_free_; }
  /// Extents currently owned by the unit.
  uint64_t owned_extents() const { return owned_.size(); }

  /// Sequential-fill mode for table rebuilds: while enabled, page
  /// allocation never reuses free pages in old partially-used extents;
  /// it only fills the tail of the most recently acquired extent or
  /// acquires a fresh one, so copies land contiguously.
  void set_sequential_fill(bool on) { sequential_fill_ = on; }

  /// Verifies internal bookkeeping (bitmaps vs counters vs index).
  Status CheckConsistency() const;

 private:
  /// Picks an owned extent with at least one free page, or returns
  /// kNoExtent.
  uint64_t PickExtent();

  PageFile* file_;
  PageScanPolicy policy_;
  /// extent id -> bitmap of free pages (bit i = page i of extent free).
  /// Only extents with used pages or free pages are owned; an extent
  /// whose pages are all free is released back to the GAM.
  std::map<uint64_t, uint8_t> owned_;
  /// Extents with at least one free page, ordered by id.
  std::set<uint64_t> with_free_;
  uint64_t hint_extent_ = 0;
  uint64_t allocated_pages_ = 0;
  uint64_t reserved_free_ = 0;
  bool sequential_fill_ = false;
};

}  // namespace db
}  // namespace lor

#endif  // LOREPO_DB_LOB_ALLOCATION_UNIT_H_
