// BlobStore: the SQL-Server-like storage engine for large objects.
//
// Matches the paper's §4.2 configuration:
//   * BLOBs stored out-of-row (data pages separate from the row pages,
//     so the metadata table stays cacheable),
//   * bulk-logged recovery: blob pages are written to the data file and
//     forced at commit; only a small commit record goes to the log
//     (which lives on its own dedicated device, as the paper gave SQL
//     Server a dedicated log drive),
//   * replacement = insert new BLOB + repoint row + free old BLOB,
//   * freed extents are reusable immediately after commit, via the
//     lowest-first GAM scan — the behaviour behind SQL Server's linear
//     fragmentation growth.

#ifndef LOREPO_DB_BLOB_STORE_H_
#define LOREPO_DB_BLOB_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fragmentation_tracker.h"
#include "db/blob_btree.h"
#include "db/lob_allocation_unit.h"
#include "db/metadata_table.h"
#include "db/page_file.h"
#include "sim/block_device.h"
#include "sim/op_cost_model.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace db {

/// Configuration of the engine.
struct BlobStoreOptions {
  PageFileOptions page_file;
  sim::OpCostModel costs;
  /// Client write-request size; allocation happens per request (§5.4).
  uint64_t write_request_bytes = 64 * kKiB;
  /// How the LOB allocation unit scans owned extents for free pages.
  PageScanPolicy page_scan = PageScanPolicy::kFromHint;
  /// Bulk-logged mode (the paper's setting). When false the engine is
  /// fully logged: blob bytes are also written to the log device —
  /// slower, but the BLOB survives media failure. Kept as an ablation.
  bool bulk_logged = true;
  /// Metadata checkpoint cadence (operations).
  uint32_t ops_per_checkpoint = 256;
  /// Ghost-cleanup cadence (delete operations).
  uint32_t deletes_per_ghost_purge = 512;
};

/// Engine-level counters.
struct BlobStoreStats {
  uint64_t object_count = 0;
  uint64_t live_bytes = 0;
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t replaces = 0;
  uint64_t log_records = 0;
  uint64_t log_bytes = 0;
};

/// SQL-Server-like BLOB engine over a data device and a log device.
class BlobStore {
 public:
  /// `log_device` may be null, in which case log writes are charged as
  /// CPU-only commit cost (equivalent to an infinitely fast log drive).
  BlobStore(sim::BlockDevice* data_device, sim::BlockDevice* log_device,
            BlobStoreOptions options = {});

  /// Inserts a new object. `data` empty = timing-only.
  Status Put(const std::string& key, uint64_t size,
             std::span<const uint8_t> data = {});

  /// Replaces an existing object wholesale (the database analogue of a
  /// safe write): the new BLOB is written before the old one is freed.
  Status Replace(const std::string& key, uint64_t size,
                 std::span<const uint8_t> data = {});

  /// Reads an object; `out` receives payload bytes when non-null.
  Status Get(const std::string& key, std::vector<uint8_t>* out = nullptr);

  /// Deletes an object (row becomes a ghost; extents are freed now).
  Status Delete(const std::string& key);

  bool Exists(const std::string& key) const;

  /// Physical layout of an object's data pages, for the fragmentation
  /// analyzer.
  Result<BlobLayout> GetLayout(const std::string& key) const;

  Result<uint64_t> GetSize(const std::string& key) const;

  std::vector<std::string> ListKeys() const;

  /// Visits every live object's layout without materializing a key list
  /// (unordered).
  void VisitBlobs(
      const std::function<void(const std::string& key,
                               const BlobLayout& layout)>& visit) const;

  /// Incrementally maintained fragments-per-object accounting; updated
  /// on every BLOB allocation, replacement, delete, and rebuild.
  const core::FragmentationTracker& fragmentation_tracker() const {
    return tracker_;
  }

  const BlobStoreStats& stats() const { return stats_; }
  const PageFile& page_file() const { return page_file_; }
  PageFile* mutable_page_file() { return &page_file_; }
  const MetadataTable& metadata() const { return *metadata_; }
  const LobAllocationUnit& lob_unit() const { return lob_unit_; }
  const BlobStoreOptions& options() const { return options_; }

  /// Bytes of data-file space not referenced by any live object (free
  /// extents plus freed-but-pending extents inside the file).
  uint64_t FreeBytes() const {
    return (page_file_.free_extents() + page_file_.pending_free_extents()) *
           page_file_.extent_bytes();
  }

  /// Verifies: layouts are pairwise disjoint, no layout extent is free
  /// in the GAM, metadata rows and layouts agree.
  Status CheckConsistency() const;

  /// The paper's §5.3 defragmentation procedure for BLOB tables: "create
  /// a new table in a new file group, copy the old records to the new
  /// table and drop the old table". Every object is re-read and
  /// re-written in key order into freshly allocated space, then the old
  /// copies are dropped. Charges all the copy I/O; returns statistics.
  struct RebuildReport {
    uint64_t objects_moved = 0;
    uint64_t bytes_moved = 0;
    double fragments_before = 0.0;
    double fragments_after = 0.0;
    double elapsed_seconds = 0.0;
  };
  Result<RebuildReport> RebuildTable();

 private:
  /// Writes a commit record (plus blob payload when fully logged).
  void LogCommit(uint64_t payload_bytes);

  sim::BlockDevice* data_device_;
  sim::BlockDevice* log_device_;
  BlobStoreOptions options_;
  PageFile page_file_;
  LobAllocationUnit lob_unit_;
  std::unique_ptr<MetadataTable> metadata_;
  std::unordered_map<std::string, BlobLayout> layouts_;
  core::FragmentationTracker tracker_;
  BlobStoreStats stats_;
  uint64_t log_cursor_ = 0;
  uint64_t next_version_ = 1;
  uint32_t deletes_since_purge_ = 0;
};

}  // namespace db
}  // namespace lor

#endif  // LOREPO_DB_BLOB_STORE_H_
