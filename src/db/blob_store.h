// BlobStore: the SQL-Server-like storage engine for large objects.
//
// Matches the paper's §4.2 configuration:
//   * BLOBs stored out-of-row (data pages separate from the row pages,
//     so the metadata table stays cacheable),
//   * bulk-logged recovery: blob pages are written to the data file and
//     forced at commit; only a small commit record goes to the log
//     (which lives on its own dedicated device, as the paper gave SQL
//     Server a dedicated log drive),
//   * replacement = insert new BLOB + repoint row + free old BLOB,
//   * freed extents are reusable immediately after commit, via the
//     lowest-first GAM scan — the behaviour behind SQL Server's linear
//     fragmentation growth.
//
// Two access surfaces: the historical per-key operations (each pays the
// query CPU + metadata-row lookup), and a handle table — OpenRead /
// OpenWrite resolve the key once and pin the metadata row, the layout,
// a positioned metadata-table cursor (updates skip the B+tree descent)
// and a positioned BlobBtree read cursor (sequential range reads skip
// the pointer-page walk). Handles are invalidated when their object is
// deleted; stale use fails cleanly. Replacement assigns the new layout
// into the object's node, so handles stay valid across safe writes.

#ifndef LOREPO_DB_BLOB_STORE_H_
#define LOREPO_DB_BLOB_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fragmentation_tracker.h"
#include "core/handle_table.h"
#include "db/blob_btree.h"
#include "db/lob_allocation_unit.h"
#include "db/metadata_table.h"
#include "db/page_file.h"
#include "sim/block_device.h"
#include "sim/media_fault.h"
#include "sim/op_cost_model.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace db {

/// Configuration of the engine.
struct BlobStoreOptions {
  PageFileOptions page_file;
  sim::OpCostModel costs;
  /// Client write-request size; allocation happens per request (§5.4).
  uint64_t write_request_bytes = 64 * kKiB;
  /// How the LOB allocation unit scans owned extents for free pages.
  PageScanPolicy page_scan = PageScanPolicy::kFromHint;
  /// Bulk-logged mode (the paper's setting). When false the engine is
  /// fully logged: blob bytes are also written to the log device —
  /// slower, but the BLOB survives media failure. Kept as an ablation.
  bool bulk_logged = true;
  /// Metadata checkpoint cadence (operations).
  uint32_t ops_per_checkpoint = 256;
  /// Ghost-cleanup cadence (delete operations).
  uint32_t deletes_per_ghost_purge = 512;
  /// Retry/backoff for reads refused by an armed media-fault model
  /// (transient latent sector errors clear after a few attempts).
  sim::MediaRetryPolicy media_retry;
};

/// One armed-window intent in the engine's host-side recovery log.
/// While a sim::FaultInjector window is armed, every mutating operation
/// records an entry stamped with the injector sequence numbers of its
/// data-page writes and of its commit record; mount-time recovery
/// replays the log against the injector's durability verdicts.
struct BlobRecoveryEntry {
  enum class Kind : uint8_t { kPut, kReplace, kDelete };
  Kind kind = Kind::kPut;
  std::string key;
  /// Pre-image for rollback (kReplace/kDelete). The old pages stay
  /// allocated while the window is armed ("held"), so restoring the
  /// layout is pointer surgery, never page I/O.
  BlobLayout old_layout;
  /// Root page and size of the blob this entry wrote (kPut/kReplace);
  /// lets recovery tell whether the entry's effect is still current or
  /// was superseded by a later committed write of the same key.
  uint64_t new_root_page = 0;
  uint64_t new_bytes = 0;
  /// Injector sequence range of the new blob's data-page writes; in
  /// bulk-logged mode these are not redoable from the log, so a
  /// committed entry whose range is not fully durable is the paper's
  /// data-loss window. lo == 0 means no device writes (vacuous).
  uint64_t data_seq_lo = 0;
  uint64_t data_seq_hi = 0;
  /// Sequence of the commit record on the log device (0 = vacuously
  /// durable: no log device attached).
  uint64_t commit_seq = 0;
  /// Fully-logged mode only: the payload image that rode the commit
  /// record into the log, from which redo rewrites torn data pages.
  /// Empty in bulk-logged mode (that asymmetry IS the loss window) and
  /// in metadata-only simulations.
  std::vector<uint8_t> payload;
};

/// What BlobStore::Recover did.
struct BlobRecoveryStats {
  uint64_t entries_scanned = 0;
  /// Committed entries whose effects survived (redo verified).
  uint64_t ops_redone = 0;
  /// Uncommitted entries undone.
  uint64_t ops_rolled_back = 0;
  /// Committed entries rolled back because their bulk-logged data pages
  /// missed the cut (the data-loss window); fully-logged mode redoes
  /// these from the log instead.
  uint64_t torn_rolled_back = 0;
  /// Acked objects that no longer exist at all after recovery
  /// (committed puts whose data pages were lost in bulk-logged mode).
  uint64_t lost_objects = 0;
  /// Payload bytes whose newest image did not survive recovery
  /// (uncommitted atomic aborts plus the bulk-logged torn window).
  uint64_t data_loss_bytes = 0;
};

/// Engine-level counters.
struct BlobStoreStats {
  uint64_t object_count = 0;
  uint64_t live_bytes = 0;
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t replaces = 0;
  uint64_t log_records = 0;
  uint64_t log_bytes = 0;
};

/// Ticket for an entry in the BlobStore handle table. Cheap to copy;
/// validity is checked on every use (slot + generation).
struct BlobHandle {
  uint64_t slot = 0;
  uint64_t gen = 0;  ///< 0 = invalid.
  bool valid() const { return gen != 0; }
};

/// SQL-Server-like BLOB engine over a data device and a log device.
class BlobStore {
 public:
  /// `log_device` may be null, in which case log writes are charged as
  /// CPU-only commit cost (equivalent to an infinitely fast log drive).
  BlobStore(sim::BlockDevice* data_device, sim::BlockDevice* log_device,
            BlobStoreOptions options = {});

  /// Inserts a new object. `data` empty = timing-only.
  Status Put(const std::string& key, uint64_t size,
             std::span<const uint8_t> data = {});

  /// Replaces an existing object wholesale (the database analogue of a
  /// safe write): the new BLOB is written before the old one is freed.
  Status Replace(const std::string& key, uint64_t size,
                 std::span<const uint8_t> data = {});

  /// Reads an object; `out` receives payload bytes when non-null.
  Status Get(const std::string& key, std::vector<uint8_t>* out = nullptr);

  /// Deletes an object (row becomes a ghost; extents are freed now).
  Status Delete(const std::string& key);

  bool Exists(const std::string& key) const;

  // -- Handle table ----------------------------------------------------

  /// Opens an existing object for reading: charges the query CPU and
  /// the metadata-row lookup the per-key Get pays on every call, and
  /// pins the row + layout. NotFound when the key is not live.
  Result<BlobHandle> OpenRead(const std::string& key);

  /// Opens a key for writing; the object need not exist (the handle is
  /// unbound until the first SafeWrite). Charges the query CPU the
  /// per-key write path pays per operation.
  Result<BlobHandle> OpenWrite(const std::string& key);

  /// Closes a handle; closing a stale handle is an error.
  Status Close(BlobHandle handle);

  /// True when the handle is currently bound to a live object.
  Result<bool> HandleBound(BlobHandle handle) const;

  /// Handle twins: identical engine behaviour minus the per-operation
  /// query CPU + row lookup already paid at open.
  Status Get(BlobHandle handle, std::vector<uint8_t>* out = nullptr);
  /// Range read through the handle's positioned BlobBtree cursor
  /// (sequential calls skip the pointer-page descent and run scan).
  Status GetRange(BlobHandle handle, uint64_t offset, uint64_t length,
                  std::vector<uint8_t>* out = nullptr);
  /// Put-or-replace (the safe write). Creates the object when the
  /// handle is unbound, else replaces it wholesale.
  Status SafeWrite(BlobHandle handle, uint64_t size,
                   std::span<const uint8_t> data = {});
  /// Deletes the object and consumes the handle (other handles on the
  /// key are invalidated).
  Status Delete(BlobHandle handle);
  Result<BlobLayout> GetLayout(BlobHandle handle) const;
  Result<uint64_t> GetSize(BlobHandle handle) const;

  /// The pinned metadata row — no query or B+tree charge. Available on
  /// read handles from open, and on any handle once a write through
  /// the key has refreshed it; NotFound before that (write handles
  /// never pay a row lookup at open). Kept coherent across every open
  /// handle on the key by the write paths.
  Result<ObjectRow> Row(BlobHandle handle) const;

  /// Open handle-table entries (tests / leak checks).
  uint64_t open_handle_count() const { return handles_.open_count(); }

  /// Physical layout of an object's data pages, for the fragmentation
  /// analyzer.
  Result<BlobLayout> GetLayout(const std::string& key) const;

  Result<uint64_t> GetSize(const std::string& key) const;

  std::vector<std::string> ListKeys() const;

  /// Visits every live object's layout without materializing a key list
  /// (unordered).
  void VisitBlobs(
      const std::function<void(const std::string& key,
                               const BlobLayout& layout)>& visit) const;

  /// Incrementally maintained fragments-per-object accounting; updated
  /// on every BLOB allocation, replacement, delete, and rebuild.
  const core::FragmentationTracker& fragmentation_tracker() const {
    return tracker_;
  }

  const BlobStoreStats& stats() const { return stats_; }
  const PageFile& page_file() const { return page_file_; }
  PageFile* mutable_page_file() { return &page_file_; }
  const MetadataTable& metadata() const { return *metadata_; }
  const LobAllocationUnit& lob_unit() const { return lob_unit_; }
  const BlobStoreOptions& options() const { return options_; }

  /// Bytes of data-file space not referenced by any live object (free
  /// extents plus freed-but-pending extents inside the file).
  uint64_t FreeBytes() const {
    return (page_file_.free_extents() + page_file_.pending_free_extents()) *
           page_file_.extent_bytes();
  }

  /// Verifies: layouts are pairwise disjoint, no layout extent is free
  /// in the GAM, metadata rows and layouts agree.
  Status CheckConsistency() const;

  // -- Media repair ------------------------------------------------------

  /// Marks every page of `key`'s current blob (data and pointer pages)
  /// pending-bad in the allocation unit. The repair then supersedes the
  /// blob with a safe write; when the old pages are freed they divert
  /// to the quarantine list instead of returning to circulation.
  Status MarkPendingBad(const std::string& key);

  /// Bad pages retired from circulation (allocation-unit quarantine).
  uint64_t quarantined_page_count() const {
    return lob_unit_.quarantined_page_count();
  }

  // -- Crash recovery ---------------------------------------------------

  /// Mount-time recovery after a materialized crash (or a no-op replay
  /// when nothing tripped). Charges the analysis pass (metadata
  /// checkpoint read + log-tail read), walks the armed-window recovery
  /// log against the injector's durability verdicts — committed entries
  /// are redo-verified (bulk-logged entries whose data pages missed the
  /// cut are detected and rolled back; fully-logged ones are redone
  /// from the log), uncommitted entries are undone in reverse — and
  /// releases the held pre-image pages of committed replaces/deletes.
  Result<BlobRecoveryStats> Recover();

  /// Clean end of an armed window that never tripped: frees the held
  /// pre-image pages and drops the recovery log. Must be called (or
  /// Recover) before the next Arm.
  void EndCrashWindow();

  /// Entries currently in the armed-window recovery log (tests).
  uint64_t recovery_log_entries() const { return recovery_log_.size(); }

  /// The paper's §5.3 defragmentation procedure for BLOB tables: "create
  /// a new table in a new file group, copy the old records to the new
  /// table and drop the old table". Every object is re-read and
  /// re-written in key order into freshly allocated space, then the old
  /// copies are dropped. Charges all the copy I/O; returns statistics.
  struct RebuildReport {
    uint64_t objects_moved = 0;
    uint64_t bytes_moved = 0;
    double fragments_before = 0.0;
    double fragments_after = 0.0;
    double elapsed_seconds = 0.0;
  };
  Result<RebuildReport> RebuildTable();

 private:
  /// Per-handle payload. `layout` is null for unbound write handles.
  /// BlobLayout addresses are stable (node-based map; Replace assigns
  /// into the node), so the pinned pointer survives replacements.
  struct OpenBlobEntry {
    BlobLayout* layout = nullptr;
    ObjectRow row;                       ///< Pinned metadata row.
    MetadataTable::RowCursor row_cursor; ///< Positioned row update path.
    BlobBtree::ReadCursor read_cursor;   ///< Positioned range reads.
  };
  using OpenBlobSlot =
      core::HandleTable<OpenBlobEntry, BlobHandle>::Slot;

  /// Writes a commit record (plus blob payload when fully logged).
  /// Returns the injector sequence number of the commit-record write,
  /// or 0 when there is no log device or no armed injector.
  uint64_t LogCommit(uint64_t payload_bytes);

  /// True while a fault-injection window is armed on the data device.
  bool CrashArmed() const;

  /// Reverses one recovery-log entry (uncommitted, or committed with
  /// lost bulk-logged data pages).
  void UndoEntry(const BlobRecoveryEntry& entry, BlobRecoveryStats* stats);

  /// Invalidates every open handle on `key` (delete path).
  void InvalidateHandles(const std::string& key);
  /// Binds unbound write handles on `key` to `layout` and refreshes
  /// every open handle's pinned row + read cursor (the write paths'
  /// cache-coherence step). `row` may be null (rebuild keeps rows).
  void BindHandles(const std::string& key, BlobLayout* layout,
                   const ObjectRow* row);

  /// Insert core (no query charge): allocate + write the blob, insert
  /// the row; BindHandles gives every open handle on the key the new
  /// layout and row.
  Status PutResolved(const std::string& key, uint64_t size,
                     std::span<const uint8_t> data);
  /// Replace core (no query charge) over a bound entry.
  Status ReplaceResolved(const std::string& key, OpenBlobEntry* entry,
                         uint64_t size, std::span<const uint8_t> data);
  /// Delete core (no query charge) over a resolved layout node.
  Status DeleteResolved(
      std::unordered_map<std::string, BlobLayout>::iterator it);

  /// Charged read of [offset, offset+length) with media retry and
  /// end-to-end checksum verification: typed IoError reads are retried
  /// per options_.media_retry; delivered bytes are verified against the
  /// layout's block sums (cached pages are dropped and re-read once on
  /// mismatch before the read fails as Corruption).
  Status ReadVerified(const std::string& key, const BlobLayout& layout,
                      uint64_t offset, uint64_t length,
                      std::vector<uint8_t>* out,
                      BlobBtree::ReadCursor* cursor);

  /// The verification half of ReadVerified (no retry); `out` holds the
  /// range's bytes.
  Status VerifyChecksums(const std::string& key, const BlobLayout& layout,
                         uint64_t offset, uint64_t length,
                         std::vector<uint8_t>* out);

  sim::BlockDevice* data_device_;
  sim::BlockDevice* log_device_;
  BlobStoreOptions options_;
  PageFile page_file_;
  LobAllocationUnit lob_unit_;
  std::unique_ptr<MetadataTable> metadata_;
  std::unordered_map<std::string, BlobLayout> layouts_;
  core::FragmentationTracker tracker_;
  BlobStoreStats stats_;
  uint64_t log_cursor_ = 0;
  uint64_t next_version_ = 1;
  uint32_t deletes_since_purge_ = 0;
  /// Armed-window recovery log; entries for replaces/deletes hold the
  /// old layout (its pages stay allocated until the window resolves).
  std::vector<BlobRecoveryEntry> recovery_log_;
  /// Log bytes written during the armed window (Recover's tail-read
  /// charge).
  uint64_t window_log_bytes_ = 0;
  /// Open-handle table (slot/generation tickets + key index).
  core::HandleTable<OpenBlobEntry, BlobHandle> handles_;
};

}  // namespace db
}  // namespace lor

#endif  // LOREPO_DB_BLOB_STORE_H_
