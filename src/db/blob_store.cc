#include "db/blob_store.h"

#include <algorithm>

namespace lor {
namespace db {

namespace {
constexpr uint64_t kCommitRecordBytes = 4096;
}

BlobStore::BlobStore(sim::BlockDevice* data_device,
                     sim::BlockDevice* log_device, BlobStoreOptions options)
    : data_device_(data_device),
      log_device_(log_device),
      options_(options),
      page_file_(data_device, options.page_file),
      lob_unit_(&page_file_, options.page_scan) {
  metadata_ = std::make_unique<MetadataTable>(&page_file_, &options_.costs,
                                              options_.ops_per_checkpoint);
}

void BlobStore::LogCommit(uint64_t payload_bytes) {
  const uint64_t record =
      kCommitRecordBytes + (options_.bulk_logged ? 0 : payload_bytes);
  ++stats_.log_records;
  stats_.log_bytes += record;
  data_device_->ChargeCpu(options_.costs.db_commit_s);
  if (log_device_ == nullptr) return;
  if (log_cursor_ + record > log_device_->capacity()) log_cursor_ = 0;
  // The transaction blocks until the log write completes, so the log
  // device's time is charged to the session clock as well.
  const double t0 = log_device_->clock().now();
  Status s = log_device_->Write(log_cursor_, record);
  (void)s;
  log_cursor_ += record;
  data_device_->ChargeCpu(log_device_->clock().now() - t0);
}

// -- Handle table ------------------------------------------------------

void BlobStore::InvalidateHandles(const std::string& key) {
  handles_.InvalidateAll(key);
}

void BlobStore::BindHandles(const std::string& key, BlobLayout* layout,
                            const ObjectRow* row) {
  handles_.ForEachOpen(key, [layout, row](OpenBlobEntry& entry) {
    if (entry.layout == nullptr) entry.layout = layout;
    entry.read_cursor = {};  // Fresh layout: positioned reads restart.
    if (row != nullptr) entry.row = *row;
  });
}

Result<BlobHandle> BlobStore::OpenRead(const std::string& key) {
  // The per-operation query + metadata-row resolution the name-based
  // Get pays on every call; reads through the handle skip both.
  data_device_->ChargeCpu(options_.costs.db_query_s);
  auto row = metadata_->Lookup(key);
  if (!row.ok()) return row.status();
  auto it = layouts_.find(key);
  if (it == layouts_.end()) {
    return Status::Corruption("row without layout: " + key);
  }
  OpenBlobEntry entry;
  entry.layout = &it->second;
  entry.row = *row;
  return handles_.Register(key, std::move(entry));
}

Result<BlobHandle> BlobStore::OpenWrite(const std::string& key) {
  data_device_->ChargeCpu(options_.costs.db_query_s);
  auto it = layouts_.find(key);
  OpenBlobEntry entry;
  entry.layout = it == layouts_.end() ? nullptr : &it->second;
  return handles_.Register(key, std::move(entry));
}

Status BlobStore::Close(BlobHandle handle) {
  if (handles_.Resolve(handle) == nullptr) {
    return Status::InvalidArgument("stale blob handle");
  }
  handles_.Release(handle.slot);
  return Status::OK();
}

Result<bool> BlobStore::HandleBound(BlobHandle handle) const {
  const OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  return slot->entry.layout != nullptr;
}

Status BlobStore::Get(BlobHandle handle, std::vector<uint8_t>* out) {
  OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.layout == nullptr) {
    return Status::NotFound("no object: " + slot->name);
  }
  LOR_RETURN_IF_ERROR(
      BlobBtree::Read(&page_file_, *slot->entry.layout, options_.costs, out));
  ++stats_.gets;
  return Status::OK();
}

Status BlobStore::GetRange(BlobHandle handle, uint64_t offset,
                           uint64_t length, std::vector<uint8_t>* out) {
  OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.layout == nullptr) {
    return Status::NotFound("no object: " + slot->name);
  }
  LOR_RETURN_IF_ERROR(BlobBtree::ReadAt(&page_file_, *slot->entry.layout,
                                        options_.costs, offset, length, out,
                                        &slot->entry.read_cursor));
  ++stats_.gets;
  return Status::OK();
}

Status BlobStore::SafeWrite(BlobHandle handle, uint64_t size,
                            std::span<const uint8_t> data) {
  OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.layout == nullptr) {
    return PutResolved(slot->name, size, data);
  }
  return ReplaceResolved(slot->name, &slot->entry, size, data);
}

Status BlobStore::Delete(BlobHandle handle) {
  OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.layout == nullptr) {
    return Status::NotFound("no object: " + slot->name);
  }
  // No query charge: the handle already paid the row resolution at
  // open. The find supplies the erase iterator only.
  auto it = layouts_.find(slot->name);
  if (it == layouts_.end()) {
    return Status::Corruption("bound handle without layout: " + slot->name);
  }
  return DeleteResolved(it);
}

Result<BlobLayout> BlobStore::GetLayout(BlobHandle handle) const {
  const OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.layout == nullptr) {
    return Status::NotFound("no object: " + slot->name);
  }
  return *slot->entry.layout;
}

Result<uint64_t> BlobStore::GetSize(BlobHandle handle) const {
  const OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.layout == nullptr) {
    return Status::NotFound("no object: " + slot->name);
  }
  return slot->entry.layout->data_bytes;
}

Result<ObjectRow> BlobStore::Row(BlobHandle handle) const {
  const OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.row.key.empty()) {
    return Status::NotFound("row not pinned: " + slot->name);
  }
  return slot->entry.row;
}

// -- Write paths -------------------------------------------------------

Status BlobStore::Put(const std::string& key, uint64_t size,
                      std::span<const uint8_t> data) {
  data_device_->ChargeCpu(options_.costs.db_query_s);
  if (layouts_.count(key) != 0) {
    return Status::AlreadyExists("object exists: " + key);
  }
  return PutResolved(key, size, data);
}

Status BlobStore::PutResolved(const std::string& key, uint64_t size,
                              std::span<const uint8_t> data) {
  auto layout = BlobBtree::Write(&page_file_, &lob_unit_, size, data,
                                 options_.write_request_bytes,
                                 options_.costs);
  if (!layout.ok()) return layout.status();

  ObjectRow row;
  row.key = key;
  row.blob_ref = layout->root_page();
  row.size_bytes = size;
  row.version = next_version_++;
  Status s = metadata_->Insert(row);
  if (!s.ok()) {
    Status undo = BlobBtree::Free(&lob_unit_, *layout);
    (void)undo;
    return s;
  }
  tracker_.Add(layout->Fragments(), size);
  auto it = layouts_.emplace(key, std::move(*layout)).first;
  BindHandles(key, &it->second, &row);
  LogCommit(size);
  ++stats_.puts;
  ++stats_.object_count;
  stats_.live_bytes += size;
  return Status::OK();
}

Status BlobStore::Replace(const std::string& key, uint64_t size,
                          std::span<const uint8_t> data) {
  data_device_->ChargeCpu(options_.costs.db_query_s);
  auto it = layouts_.find(key);
  if (it == layouts_.end()) {
    return Status::NotFound("no object: " + key);
  }
  // Route through a transient entry-shaped view so the name path and
  // the handle path are one implementation (no cursor reuse here: the
  // per-operation path re-descends, as it always has).
  OpenBlobEntry transient;
  transient.layout = &it->second;
  Status s = ReplaceResolved(key, &transient, size, data);
  return s;
}

Status BlobStore::ReplaceResolved(const std::string& key,
                                  OpenBlobEntry* entry, uint64_t size,
                                  std::span<const uint8_t> data) {
  auto layout = BlobBtree::Write(&page_file_, &lob_unit_, size, data,
                                 options_.write_request_bytes,
                                 options_.costs);
  if (!layout.ok()) return layout.status();

  ObjectRow row;
  row.key = key;
  row.blob_ref = layout->root_page();
  row.size_bytes = size;
  row.version = next_version_++;
  LOR_RETURN_IF_ERROR(metadata_->UpdateAt(&entry->row_cursor, row));

  // The old pages become reusable once the ghost-cleanup delay elapses.
  BlobLayout* target = entry->layout;
  const uint64_t old_size = target->data_bytes;
  const uint64_t old_fragments = target->Fragments();
  LOR_RETURN_IF_ERROR(BlobBtree::Free(&lob_unit_, *target));
  tracker_.Update(old_fragments, old_size, layout->Fragments(), size);
  *target = std::move(*layout);
  // Every open handle on the key (this one included) restarts its
  // positioned reads against the fresh layout and sees the new row.
  BindHandles(key, target, &row);
  LogCommit(size);
  ++stats_.replaces;
  stats_.live_bytes += size;
  stats_.live_bytes -= old_size;
  return Status::OK();
}

Status BlobStore::Get(const std::string& key, std::vector<uint8_t>* out) {
  data_device_->ChargeCpu(options_.costs.db_query_s);
  auto row = metadata_->Lookup(key);
  if (!row.ok()) return row.status();
  auto it = layouts_.find(key);
  if (it == layouts_.end()) {
    return Status::Corruption("row without layout: " + key);
  }
  LOR_RETURN_IF_ERROR(
      BlobBtree::Read(&page_file_, it->second, options_.costs, out));
  ++stats_.gets;
  return Status::OK();
}

Status BlobStore::Delete(const std::string& key) {
  data_device_->ChargeCpu(options_.costs.db_query_s);
  auto it = layouts_.find(key);
  if (it == layouts_.end()) {
    return Status::NotFound("no object: " + key);
  }
  return DeleteResolved(it);
}

Status BlobStore::DeleteResolved(
    std::unordered_map<std::string, BlobLayout>::iterator it) {
  const std::string& key = it->first;
  LOR_RETURN_IF_ERROR(metadata_->Delete(key));
  LOR_RETURN_IF_ERROR(BlobBtree::Free(&lob_unit_, it->second));
  stats_.live_bytes -= it->second.data_bytes;
  tracker_.Remove(it->second.Fragments(), it->second.data_bytes);
  InvalidateHandles(key);
  layouts_.erase(it);
  LogCommit(0);
  ++stats_.deletes;
  --stats_.object_count;
  if (++deletes_since_purge_ >= options_.deletes_per_ghost_purge) {
    deletes_since_purge_ = 0;
    metadata_->PurgeGhosts();
  }
  return Status::OK();
}

bool BlobStore::Exists(const std::string& key) const {
  return layouts_.count(key) != 0;
}

Result<BlobLayout> BlobStore::GetLayout(const std::string& key) const {
  auto it = layouts_.find(key);
  if (it == layouts_.end()) return Status::NotFound("no object: " + key);
  return it->second;
}

Result<uint64_t> BlobStore::GetSize(const std::string& key) const {
  auto it = layouts_.find(key);
  if (it == layouts_.end()) return Status::NotFound("no object: " + key);
  return it->second.data_bytes;
}

std::vector<std::string> BlobStore::ListKeys() const {
  return metadata_->ScanKeys();
}

void BlobStore::VisitBlobs(
    const std::function<void(const std::string& key, const BlobLayout& layout)>&
        visit) const {
  for (const auto& [key, layout] : layouts_) visit(key, layout);
}

Result<BlobStore::RebuildReport> BlobStore::RebuildTable() {
  RebuildReport report;
  const double t0 = data_device_->clock().now();
  const std::vector<std::string> keys = ListKeys();
  if (keys.empty()) return report;

  for (const std::string& key : keys) {
    report.fragments_before +=
        static_cast<double>(layouts_.at(key).Fragments());
  }
  report.fragments_before /= static_cast<double>(keys.size());

  // A rebuild targets a fresh filegroup: grow a contiguous region big
  // enough for all live data and point the allocation scan at it so
  // copies land sequentially. (If the device cannot fit a full second
  // copy, the rebuild still proceeds, reusing freed space as it goes.)
  const uint64_t live_extents =
      (stats_.live_bytes + page_file_.extent_bytes() - 1) /
      page_file_.extent_bytes();
  page_file_.SeekScanCursorToEnd();
  page_file_.GrowBy(live_extents + live_extents / 16 + keys.size() / 4 + 1);
  lob_unit_.set_sequential_fill(true);

  const bool retain = data_device_->data_mode() == sim::DataMode::kRetain;
  auto copy_all = [&]() -> Status {
    for (const std::string& key : keys) {
      auto it = layouts_.find(key);
      std::vector<uint8_t> payload;
      LOR_RETURN_IF_ERROR(BlobBtree::Read(&page_file_, it->second,
                                          options_.costs,
                                          retain ? &payload : nullptr));
      auto fresh = BlobBtree::Write(&page_file_, &lob_unit_,
                                    it->second.data_bytes, payload,
                                    options_.write_request_bytes,
                                    options_.costs);
      if (!fresh.ok()) return fresh.status();
      ObjectRow row;
      row.key = key;
      row.blob_ref = fresh->root_page();
      row.size_bytes = fresh->data_bytes;
      row.version = next_version_++;
      LOR_RETURN_IF_ERROR(metadata_->Update(row));
      const uint64_t old_fragments = it->second.Fragments();
      const uint64_t old_bytes = it->second.data_bytes;
      LOR_RETURN_IF_ERROR(BlobBtree::Free(&lob_unit_, it->second));
      tracker_.Update(old_fragments, old_bytes, fresh->Fragments(),
                      fresh->data_bytes);
      report.bytes_moved += fresh->data_bytes;
      ++report.objects_moved;
      it->second = std::move(*fresh);
      // Open handles keep their pinned layout pointer (the node is
      // assigned in place) but restart positioned reads and see the
      // rebuilt row.
      BindHandles(key, &it->second, &row);
      LogCommit(it->second.data_bytes);
    }
    return Status::OK();
  };
  Status copied = copy_all();
  lob_unit_.set_sequential_fill(false);
  LOR_RETURN_IF_ERROR(copied);

  for (const std::string& key : keys) {
    report.fragments_after +=
        static_cast<double>(layouts_.at(key).Fragments());
  }
  report.fragments_after /= static_cast<double>(keys.size());
  report.elapsed_seconds = data_device_->clock().now() - t0;
  return report;
}

Status BlobStore::CheckConsistency() const {
  // Page usage across layouts must be pairwise disjoint, every page's
  // extent must be live in the GAM, and rows must agree with layouts.
  std::vector<alloc::Extent> runs;
  for (const auto& [key, layout] : layouts_) {
    uint64_t pages = 0;
    for (const alloc::Extent& run : layout.data_runs) {
      pages += run.length;
      runs.push_back(run);
      for (uint64_t e = run.start / page_file_.pages_per_extent();
           e <= (run.end() - 1) / page_file_.pages_per_extent(); ++e) {
        if (page_file_.gam().IsFree(e)) {
          return Status::Corruption("live page in free extent: " + key);
        }
      }
    }
    for (uint64_t p : layout.pointer_pages) runs.push_back({p, 1});
    if (pages != BlobBtree::DataPagesFor(page_file_, layout.data_bytes)) {
      return Status::Corruption("layout page count mismatch: " + key);
    }
    auto row = metadata_->Lookup(key);
    if (!row.ok()) return Status::Corruption("layout without row: " + key);
    if (row->size_bytes != layout.data_bytes) {
      return Status::Corruption("row size disagrees with layout: " + key);
    }
  }
  std::sort(runs.begin(), runs.end(),
            [](const alloc::Extent& a, const alloc::Extent& b) {
              return a.start < b.start;
            });
  for (size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].start < runs[i - 1].end()) {
      return Status::Corruption("blobs share pages");
    }
  }
  if (metadata_->size() != layouts_.size()) {
    return Status::Corruption("row count disagrees with layout count");
  }
  LOR_RETURN_IF_ERROR(lob_unit_.CheckConsistency());
  return metadata_->CheckConsistency();
}

}  // namespace db
}  // namespace lor
