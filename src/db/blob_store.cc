#include "db/blob_store.h"

#include <algorithm>

#include "sim/fault_injector.h"
#include "util/fnv.h"

namespace lor {
namespace db {

namespace {
constexpr uint64_t kCommitRecordBytes = 4096;
}

BlobStore::BlobStore(sim::BlockDevice* data_device,
                     sim::BlockDevice* log_device, BlobStoreOptions options)
    : data_device_(data_device),
      log_device_(log_device),
      options_(options),
      page_file_(data_device, options.page_file),
      lob_unit_(&page_file_, options.page_scan) {
  metadata_ = std::make_unique<MetadataTable>(&page_file_, &options_.costs,
                                              options_.ops_per_checkpoint);
}

uint64_t BlobStore::LogCommit(uint64_t payload_bytes) {
  const uint64_t record =
      kCommitRecordBytes + (options_.bulk_logged ? 0 : payload_bytes);
  ++stats_.log_records;
  stats_.log_bytes += record;
  if (CrashArmed()) window_log_bytes_ += record;
  data_device_->ChargeCpu(options_.costs.db_commit_s);
  if (log_device_ == nullptr) return 0;
  if (log_cursor_ + record > log_device_->capacity()) log_cursor_ = 0;
  // The transaction blocks until the log write completes, so the log
  // device's time is charged to the session clock as well.
  const double t0 = log_device_->clock().now();
  Status s = log_device_->Write(log_cursor_, record);
  (void)s;
  log_cursor_ += record;
  data_device_->ChargeCpu(log_device_->clock().now() - t0);
  // The log device has no scheduler, so the commit record is serviced
  // at submission: its sequence number decides commit durability.
  const sim::FaultInjector* injector = log_device_->fault_injector();
  return (injector != nullptr && injector->armed()) ? injector->last_seq()
                                                    : 0;
}

bool BlobStore::CrashArmed() const {
  const sim::FaultInjector* injector = data_device_->fault_injector();
  return injector != nullptr && injector->armed();
}

// -- Handle table ------------------------------------------------------

void BlobStore::InvalidateHandles(const std::string& key) {
  handles_.InvalidateAll(key);
}

void BlobStore::BindHandles(const std::string& key, BlobLayout* layout,
                            const ObjectRow* row) {
  handles_.ForEachOpen(key, [layout, row](OpenBlobEntry& entry) {
    if (entry.layout == nullptr) entry.layout = layout;
    entry.read_cursor = {};  // Fresh layout: positioned reads restart.
    if (row != nullptr) entry.row = *row;
  });
}

Result<BlobHandle> BlobStore::OpenRead(const std::string& key) {
  // The per-operation query + metadata-row resolution the name-based
  // Get pays on every call; reads through the handle skip both.
  data_device_->ChargeCpu(options_.costs.db_query_s);
  auto row = metadata_->Lookup(key);
  if (!row.ok()) return row.status();
  auto it = layouts_.find(key);
  if (it == layouts_.end()) {
    return Status::Corruption("row without layout: " + key);
  }
  OpenBlobEntry entry;
  entry.layout = &it->second;
  entry.row = *row;
  return handles_.Register(key, std::move(entry));
}

Result<BlobHandle> BlobStore::OpenWrite(const std::string& key) {
  data_device_->ChargeCpu(options_.costs.db_query_s);
  auto it = layouts_.find(key);
  OpenBlobEntry entry;
  entry.layout = it == layouts_.end() ? nullptr : &it->second;
  return handles_.Register(key, std::move(entry));
}

Status BlobStore::Close(BlobHandle handle) {
  if (handles_.Resolve(handle) == nullptr) {
    return Status::InvalidArgument("stale blob handle");
  }
  handles_.Release(handle.slot);
  return Status::OK();
}

Result<bool> BlobStore::HandleBound(BlobHandle handle) const {
  const OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  return slot->entry.layout != nullptr;
}

Status BlobStore::Get(BlobHandle handle, std::vector<uint8_t>* out) {
  OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.layout == nullptr) {
    return Status::NotFound("no object: " + slot->name);
  }
  LOR_RETURN_IF_ERROR(ReadVerified(slot->name, *slot->entry.layout, 0,
                                   slot->entry.layout->data_bytes, out,
                                   nullptr));
  ++stats_.gets;
  return Status::OK();
}

Status BlobStore::GetRange(BlobHandle handle, uint64_t offset,
                           uint64_t length, std::vector<uint8_t>* out) {
  OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.layout == nullptr) {
    return Status::NotFound("no object: " + slot->name);
  }
  LOR_RETURN_IF_ERROR(ReadVerified(slot->name, *slot->entry.layout, offset,
                                   length, out, &slot->entry.read_cursor));
  ++stats_.gets;
  return Status::OK();
}

Status BlobStore::SafeWrite(BlobHandle handle, uint64_t size,
                            std::span<const uint8_t> data) {
  OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.layout == nullptr) {
    return PutResolved(slot->name, size, data);
  }
  return ReplaceResolved(slot->name, &slot->entry, size, data);
}

Status BlobStore::Delete(BlobHandle handle) {
  OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.layout == nullptr) {
    return Status::NotFound("no object: " + slot->name);
  }
  // No query charge: the handle already paid the row resolution at
  // open. The find supplies the erase iterator only.
  auto it = layouts_.find(slot->name);
  if (it == layouts_.end()) {
    return Status::Corruption("bound handle without layout: " + slot->name);
  }
  return DeleteResolved(it);
}

Result<BlobLayout> BlobStore::GetLayout(BlobHandle handle) const {
  const OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.layout == nullptr) {
    return Status::NotFound("no object: " + slot->name);
  }
  return *slot->entry.layout;
}

Result<uint64_t> BlobStore::GetSize(BlobHandle handle) const {
  const OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.layout == nullptr) {
    return Status::NotFound("no object: " + slot->name);
  }
  return slot->entry.layout->data_bytes;
}

Result<ObjectRow> BlobStore::Row(BlobHandle handle) const {
  const OpenBlobSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale blob handle");
  if (slot->entry.row.key.empty()) {
    return Status::NotFound("row not pinned: " + slot->name);
  }
  return slot->entry.row;
}

// -- Write paths -------------------------------------------------------

Status BlobStore::Put(const std::string& key, uint64_t size,
                      std::span<const uint8_t> data) {
  data_device_->ChargeCpu(options_.costs.db_query_s);
  if (layouts_.count(key) != 0) {
    return Status::AlreadyExists("object exists: " + key);
  }
  return PutResolved(key, size, data);
}

Status BlobStore::PutResolved(const std::string& key, uint64_t size,
                              std::span<const uint8_t> data) {
  const sim::FaultInjector* injector = data_device_->fault_injector();
  const bool armed = injector != nullptr && injector->armed();
  const uint64_t seq_before = armed ? injector->last_seq() : 0;
  auto layout = BlobBtree::Write(&page_file_, &lob_unit_, size, data,
                                 options_.write_request_bytes,
                                 options_.costs);
  if (!layout.ok()) return layout.status();
  const uint64_t seq_after = armed ? injector->last_seq() : 0;
  if (!data.empty()) {
    layout->payload_hash = Fnv(data);
    layout->hash_valid = true;
    layout->block_sums = FnvBlockSums(data);
  }

  ObjectRow row;
  row.key = key;
  row.blob_ref = layout->root_page();
  row.size_bytes = size;
  row.version = next_version_++;
  Status s = metadata_->Insert(row);
  if (!s.ok()) {
    Status undo = BlobBtree::Free(&lob_unit_, *layout);
    (void)undo;
    return s;
  }
  tracker_.Add(layout->Fragments(), size);
  auto it = layouts_.emplace(key, std::move(*layout)).first;
  BindHandles(key, &it->second, &row);
  const uint64_t commit_seq = LogCommit(size);
  if (armed) {
    BlobRecoveryEntry entry;
    entry.kind = BlobRecoveryEntry::Kind::kPut;
    entry.key = key;
    entry.new_root_page = it->second.root_page();
    entry.new_bytes = size;
    entry.data_seq_lo = seq_after > seq_before ? seq_before + 1 : 0;
    entry.data_seq_hi = seq_after;
    entry.commit_seq = commit_seq;
    if (!options_.bulk_logged && !data.empty()) {
      entry.payload.assign(data.begin(), data.end());
    }
    recovery_log_.push_back(std::move(entry));
  }
  ++stats_.puts;
  ++stats_.object_count;
  stats_.live_bytes += size;
  return Status::OK();
}

Status BlobStore::Replace(const std::string& key, uint64_t size,
                          std::span<const uint8_t> data) {
  data_device_->ChargeCpu(options_.costs.db_query_s);
  auto it = layouts_.find(key);
  if (it == layouts_.end()) {
    return Status::NotFound("no object: " + key);
  }
  // Route through a transient entry-shaped view so the name path and
  // the handle path are one implementation (no cursor reuse here: the
  // per-operation path re-descends, as it always has).
  OpenBlobEntry transient;
  transient.layout = &it->second;
  Status s = ReplaceResolved(key, &transient, size, data);
  return s;
}

Status BlobStore::ReplaceResolved(const std::string& key,
                                  OpenBlobEntry* entry, uint64_t size,
                                  std::span<const uint8_t> data) {
  const sim::FaultInjector* injector = data_device_->fault_injector();
  const bool armed = injector != nullptr && injector->armed();
  const uint64_t seq_before = armed ? injector->last_seq() : 0;
  auto layout = BlobBtree::Write(&page_file_, &lob_unit_, size, data,
                                 options_.write_request_bytes,
                                 options_.costs);
  if (!layout.ok()) return layout.status();
  const uint64_t seq_after = armed ? injector->last_seq() : 0;
  if (!data.empty()) {
    layout->payload_hash = Fnv(data);
    layout->hash_valid = true;
    layout->block_sums = FnvBlockSums(data);
  }

  ObjectRow row;
  row.key = key;
  row.blob_ref = layout->root_page();
  row.size_bytes = size;
  row.version = next_version_++;
  LOR_RETURN_IF_ERROR(metadata_->UpdateAt(&entry->row_cursor, row));

  // The old pages become reusable once the ghost-cleanup delay elapses.
  // While a crash window is armed they are held instead (kept allocated
  // in the recovery-log entry), so rollback can reinstate the old blob
  // without any page machinery.
  BlobLayout* target = entry->layout;
  const uint64_t old_size = target->data_bytes;
  const uint64_t old_fragments = target->Fragments();
  BlobRecoveryEntry rec;
  if (armed) {
    rec.kind = BlobRecoveryEntry::Kind::kReplace;
    rec.key = key;
    rec.old_layout = *target;
    rec.new_bytes = size;
    rec.data_seq_lo = seq_after > seq_before ? seq_before + 1 : 0;
    rec.data_seq_hi = seq_after;
    if (!options_.bulk_logged && !data.empty()) {
      rec.payload.assign(data.begin(), data.end());
    }
  } else {
    LOR_RETURN_IF_ERROR(BlobBtree::Free(&lob_unit_, *target));
  }
  tracker_.Update(old_fragments, old_size, layout->Fragments(), size);
  *target = std::move(*layout);
  // Every open handle on the key (this one included) restarts its
  // positioned reads against the fresh layout and sees the new row.
  BindHandles(key, target, &row);
  const uint64_t commit_seq = LogCommit(size);
  if (armed) {
    rec.new_root_page = target->root_page();
    rec.commit_seq = commit_seq;
    recovery_log_.push_back(std::move(rec));
  }
  ++stats_.replaces;
  stats_.live_bytes += size;
  stats_.live_bytes -= old_size;
  return Status::OK();
}

Status BlobStore::Get(const std::string& key, std::vector<uint8_t>* out) {
  data_device_->ChargeCpu(options_.costs.db_query_s);
  auto row = metadata_->Lookup(key);
  if (!row.ok()) return row.status();
  auto it = layouts_.find(key);
  if (it == layouts_.end()) {
    return Status::Corruption("row without layout: " + key);
  }
  LOR_RETURN_IF_ERROR(ReadVerified(key, it->second, 0, it->second.data_bytes,
                                   out, nullptr));
  ++stats_.gets;
  return Status::OK();
}

Status BlobStore::ReadVerified(const std::string& key,
                               const BlobLayout& layout, uint64_t offset,
                               uint64_t length, std::vector<uint8_t>* out,
                               BlobBtree::ReadCursor* cursor) {
  Status s = BlobBtree::ReadAt(&page_file_, layout, options_.costs, offset,
                               length, out, cursor);
  const sim::MediaRetryPolicy& retry = options_.media_retry;
  for (uint32_t attempt = 1; s.IsIoError() && attempt < retry.max_attempts;
       ++attempt) {
    // Linear backoff before re-driving the read (transient latent
    // sector errors clear after a few attempts).
    data_device_->ChargeCpu(retry.backoff_s * attempt);
    s = BlobBtree::ReadAt(&page_file_, layout, options_.costs, offset, length,
                          out, cursor);
  }
  LOR_RETURN_IF_ERROR(s);
  return VerifyChecksums(key, layout, offset, length, out);
}

Status BlobStore::VerifyChecksums(const std::string& key,
                                  const BlobLayout& layout, uint64_t offset,
                                  uint64_t length, std::vector<uint8_t>* out) {
  if (out == nullptr || length == 0 || !layout.hash_valid ||
      layout.block_sums.empty()) {
    return Status::OK();
  }
  if (data_device_->media_faults() == nullptr ||
      data_device_->data_mode() != sim::DataMode::kRetain) {
    return Status::OK();
  }
  // Verify every block sum whose block lies wholly inside the returned
  // range (the tail sum covers a partial block of the *object*, so it
  // qualifies whenever the range reaches the object's end).
  const uint64_t kB = kChecksumBlockBytes;
  const uint64_t end = offset + length;
  const uint64_t first = (offset + kB - 1) / kB;
  const auto verify = [&]() {
    for (uint64_t b = first; b < layout.block_sums.size(); ++b) {
      const uint64_t bstart = b * kB;
      const uint64_t bend = std::min(bstart + kB, layout.data_bytes);
      if (bend > end) break;
      const std::span<const uint8_t> got(out->data() + (bstart - offset),
                                         bend - bstart);
      if (Fnv(got) != layout.block_sums[b]) return false;
    }
    return true;
  };
  if (verify()) return Status::OK();
  // The mismatch could be a poisoned cached frame rather than the
  // medium: drop every cached page of the blob and re-drive the read
  // once from the device before declaring the blob corrupt.
  for (const alloc::Extent& run : layout.data_runs) {
    page_file_.InvalidatePages(run.start, run.length);
  }
  std::vector<uint8_t> fresh;
  LOR_RETURN_IF_ERROR(BlobBtree::ReadAt(&page_file_, layout, options_.costs,
                                        offset, length, &fresh, nullptr));
  *out = std::move(fresh);
  if (verify()) return Status::OK();
  return Status::Corruption("checksum mismatch in blob " + key);
}

Status BlobStore::MarkPendingBad(const std::string& key) {
  auto it = layouts_.find(key);
  if (it == layouts_.end()) {
    return Status::NotFound("no object: " + key);
  }
  for (const alloc::Extent& run : it->second.data_runs) {
    for (uint64_t p = run.start; p < run.end(); ++p) {
      lob_unit_.MarkPendingBad(p);
    }
  }
  for (const uint64_t p : it->second.pointer_pages) {
    lob_unit_.MarkPendingBad(p);
  }
  return Status::OK();
}

Status BlobStore::Delete(const std::string& key) {
  data_device_->ChargeCpu(options_.costs.db_query_s);
  auto it = layouts_.find(key);
  if (it == layouts_.end()) {
    return Status::NotFound("no object: " + key);
  }
  return DeleteResolved(it);
}

Status BlobStore::DeleteResolved(
    std::unordered_map<std::string, BlobLayout>::iterator it) {
  const std::string& key = it->first;
  const bool armed = CrashArmed();
  LOR_RETURN_IF_ERROR(metadata_->Delete(key));
  BlobRecoveryEntry rec;
  if (armed) {
    // Hold the pages: an uncommitted delete resurrects the blob intact.
    rec.kind = BlobRecoveryEntry::Kind::kDelete;
    rec.key = key;
    rec.old_layout = it->second;
  } else {
    LOR_RETURN_IF_ERROR(BlobBtree::Free(&lob_unit_, it->second));
  }
  stats_.live_bytes -= it->second.data_bytes;
  tracker_.Remove(it->second.Fragments(), it->second.data_bytes);
  InvalidateHandles(key);
  layouts_.erase(it);
  const uint64_t commit_seq = LogCommit(0);
  if (armed) {
    rec.commit_seq = commit_seq;
    recovery_log_.push_back(std::move(rec));
  }
  ++stats_.deletes;
  --stats_.object_count;
  if (++deletes_since_purge_ >= options_.deletes_per_ghost_purge) {
    deletes_since_purge_ = 0;
    metadata_->PurgeGhosts();
  }
  return Status::OK();
}

bool BlobStore::Exists(const std::string& key) const {
  return layouts_.count(key) != 0;
}

Result<BlobLayout> BlobStore::GetLayout(const std::string& key) const {
  auto it = layouts_.find(key);
  if (it == layouts_.end()) return Status::NotFound("no object: " + key);
  return it->second;
}

Result<uint64_t> BlobStore::GetSize(const std::string& key) const {
  auto it = layouts_.find(key);
  if (it == layouts_.end()) return Status::NotFound("no object: " + key);
  return it->second.data_bytes;
}

std::vector<std::string> BlobStore::ListKeys() const {
  return metadata_->ScanKeys();
}

void BlobStore::VisitBlobs(
    const std::function<void(const std::string& key, const BlobLayout& layout)>&
        visit) const {
  for (const auto& [key, layout] : layouts_) visit(key, layout);
}

Result<BlobStore::RebuildReport> BlobStore::RebuildTable() {
  if (CrashArmed()) {
    return Status::InvalidArgument(
        "table rebuild inside an armed crash window is not supported");
  }
  RebuildReport report;
  const double t0 = data_device_->clock().now();
  const std::vector<std::string> keys = ListKeys();
  if (keys.empty()) return report;

  for (const std::string& key : keys) {
    report.fragments_before +=
        static_cast<double>(layouts_.at(key).Fragments());
  }
  report.fragments_before /= static_cast<double>(keys.size());

  // A rebuild targets a fresh filegroup: grow a contiguous region big
  // enough for all live data and point the allocation scan at it so
  // copies land sequentially. (If the device cannot fit a full second
  // copy, the rebuild still proceeds, reusing freed space as it goes.)
  const uint64_t live_extents =
      (stats_.live_bytes + page_file_.extent_bytes() - 1) /
      page_file_.extent_bytes();
  page_file_.SeekScanCursorToEnd();
  page_file_.GrowBy(live_extents + live_extents / 16 + keys.size() / 4 + 1);
  lob_unit_.set_sequential_fill(true);

  const bool retain = data_device_->data_mode() == sim::DataMode::kRetain;
  auto copy_all = [&]() -> Status {
    for (const std::string& key : keys) {
      auto it = layouts_.find(key);
      std::vector<uint8_t> payload;
      LOR_RETURN_IF_ERROR(BlobBtree::Read(&page_file_, it->second,
                                          options_.costs,
                                          retain ? &payload : nullptr));
      auto fresh = BlobBtree::Write(&page_file_, &lob_unit_,
                                    it->second.data_bytes, payload,
                                    options_.write_request_bytes,
                                    options_.costs);
      if (!fresh.ok()) return fresh.status();
      // The copy carries the original bytes, so the recorded hashes
      // move with it.
      fresh->payload_hash = it->second.payload_hash;
      fresh->hash_valid = it->second.hash_valid;
      fresh->block_sums = it->second.block_sums;
      ObjectRow row;
      row.key = key;
      row.blob_ref = fresh->root_page();
      row.size_bytes = fresh->data_bytes;
      row.version = next_version_++;
      LOR_RETURN_IF_ERROR(metadata_->Update(row));
      const uint64_t old_fragments = it->second.Fragments();
      const uint64_t old_bytes = it->second.data_bytes;
      LOR_RETURN_IF_ERROR(BlobBtree::Free(&lob_unit_, it->second));
      tracker_.Update(old_fragments, old_bytes, fresh->Fragments(),
                      fresh->data_bytes);
      report.bytes_moved += fresh->data_bytes;
      ++report.objects_moved;
      it->second = std::move(*fresh);
      // Open handles keep their pinned layout pointer (the node is
      // assigned in place) but restart positioned reads and see the
      // rebuilt row.
      BindHandles(key, &it->second, &row);
      LogCommit(it->second.data_bytes);
    }
    return Status::OK();
  };
  Status copied = copy_all();
  lob_unit_.set_sequential_fill(false);
  LOR_RETURN_IF_ERROR(copied);

  for (const std::string& key : keys) {
    report.fragments_after +=
        static_cast<double>(layouts_.at(key).Fragments());
  }
  report.fragments_after /= static_cast<double>(keys.size());
  report.elapsed_seconds = data_device_->clock().now() - t0;
  return report;
}

Status BlobStore::CheckConsistency() const {
  // Page usage across layouts must be pairwise disjoint, every page's
  // extent must be live in the GAM, and rows must agree with layouts.
  std::vector<alloc::Extent> runs;
  for (const auto& [key, layout] : layouts_) {
    uint64_t pages = 0;
    for (const alloc::Extent& run : layout.data_runs) {
      pages += run.length;
      runs.push_back(run);
      for (uint64_t e = run.start / page_file_.pages_per_extent();
           e <= (run.end() - 1) / page_file_.pages_per_extent(); ++e) {
        if (page_file_.gam().IsFree(e)) {
          return Status::Corruption("live page in free extent: " + key);
        }
      }
    }
    for (uint64_t p : layout.pointer_pages) runs.push_back({p, 1});
    if (pages != BlobBtree::DataPagesFor(page_file_, layout.data_bytes)) {
      return Status::Corruption("layout page count mismatch: " + key);
    }
    auto row = metadata_->Lookup(key);
    if (!row.ok()) return Status::Corruption("layout without row: " + key);
    if (row->size_bytes != layout.data_bytes) {
      return Status::Corruption("row size disagrees with layout: " + key);
    }
  }
  std::sort(runs.begin(), runs.end(),
            [](const alloc::Extent& a, const alloc::Extent& b) {
              return a.start < b.start;
            });
  for (size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].start < runs[i - 1].end()) {
      return Status::Corruption("blobs share pages");
    }
  }
  if (metadata_->size() != layouts_.size()) {
    return Status::Corruption("row count disagrees with layout count");
  }
  LOR_RETURN_IF_ERROR(lob_unit_.CheckConsistency());
  return metadata_->CheckConsistency();
}

// -- Crash recovery ----------------------------------------------------

void BlobStore::UndoEntry(const BlobRecoveryEntry& entry,
                          BlobRecoveryStats* stats) {
  switch (entry.kind) {
    case BlobRecoveryEntry::Kind::kPut: {
      auto it = layouts_.find(entry.key);
      if (it == layouts_.end()) return;
      stats->data_loss_bytes += it->second.data_bytes;
      stats_.live_bytes -= it->second.data_bytes;
      tracker_.Remove(it->second.Fragments(), it->second.data_bytes);
      Status freed = BlobBtree::Free(&lob_unit_, it->second);
      (void)freed;
      Status dropped = metadata_->Delete(entry.key);
      (void)dropped;
      InvalidateHandles(entry.key);
      layouts_.erase(it);
      --stats_.object_count;
      break;
    }
    case BlobRecoveryEntry::Kind::kReplace: {
      auto it = layouts_.find(entry.key);
      if (it == layouts_.end()) return;
      BlobLayout* target = &it->second;
      stats->data_loss_bytes += target->data_bytes;
      stats_.live_bytes += entry.old_layout.data_bytes;
      stats_.live_bytes -= target->data_bytes;
      tracker_.Update(target->Fragments(), target->data_bytes,
                      entry.old_layout.Fragments(),
                      entry.old_layout.data_bytes);
      Status freed = BlobBtree::Free(&lob_unit_, *target);
      (void)freed;
      // The old pages were held through the window, so reinstating the
      // blob is pointer surgery.
      *target = entry.old_layout;
      ObjectRow row;
      row.key = entry.key;
      row.blob_ref = target->root_page();
      row.size_bytes = target->data_bytes;
      row.version = next_version_++;
      Status repointed = metadata_->Update(row);
      (void)repointed;
      InvalidateHandles(entry.key);
      break;
    }
    case BlobRecoveryEntry::Kind::kDelete: {
      ObjectRow row;
      row.key = entry.key;
      row.blob_ref = entry.old_layout.root_page();
      row.size_bytes = entry.old_layout.data_bytes;
      row.version = next_version_++;
      // The delete left a ghost; Insert resurrects it in place (or
      // re-inserts if the ghost was purged meanwhile).
      Status resurrected = metadata_->Insert(row);
      (void)resurrected;
      tracker_.Add(entry.old_layout.Fragments(),
                   entry.old_layout.data_bytes);
      stats_.live_bytes += entry.old_layout.data_bytes;
      layouts_.emplace(entry.key, entry.old_layout);
      ++stats_.object_count;
      break;
    }
  }
}

Result<BlobRecoveryStats> BlobStore::Recover() {
  BlobRecoveryStats rs;
  rs.entries_scanned = recovery_log_.size();
  const sim::FaultInjector* injector = data_device_->fault_injector();

  // Analysis pass: re-read the metadata checkpoint pages, then the log
  // tail written since the window opened (the restart blocks on the log
  // device, so its time lands on the session clock like commits do).
  const MetadataTableStats ms = metadata_->stats();
  const uint64_t checkpoint_bytes =
      (ms.leaf_pages + ms.internal_pages) * page_file_.page_bytes();
  if (checkpoint_bytes > 0) {
    Status s = data_device_->Read(
        0, std::min(checkpoint_bytes, data_device_->capacity()));
    (void)s;
  }
  if (log_device_ != nullptr && window_log_bytes_ > 0) {
    const uint64_t tail = std::min(window_log_bytes_, log_device_->capacity());
    const uint64_t tail_start = log_cursor_ >= tail ? log_cursor_ - tail : 0;
    const double t0 = log_device_->clock().now();
    Status s = log_device_->Read(tail_start, tail);
    (void)s;
    data_device_->ChargeCpu(log_device_->clock().now() - t0);
  }

  // Commit prefix: the log is sequential, so the first commit record
  // that missed the cut truncates it — everything after is uncommitted
  // regardless of its own fate.
  auto durable = [injector](uint64_t seq) {
    return injector == nullptr || injector->IsDurable(seq);
  };
  size_t committed = 0;
  while (committed < recovery_log_.size() &&
         durable(recovery_log_[committed].commit_seq)) {
    ++committed;
  }

  // Forward redo pass over the committed prefix: one root-page read per
  // blob write (the page-LSN check a real redo performs), classifying
  // committed entries whose data pages missed the cut.
  std::vector<bool> torn(committed, false);
  for (size_t i = 0; i < committed; ++i) {
    const BlobRecoveryEntry& entry = recovery_log_[i];
    data_device_->ChargeCpu(options_.costs.db_query_s);
    if (entry.kind == BlobRecoveryEntry::Kind::kDelete) continue;
    Status s =
        data_device_->Read(entry.new_root_page * page_file_.page_bytes(),
                           page_file_.page_bytes());
    (void)s;
    if (injector != nullptr &&
        !injector->RangeDurable(entry.data_seq_lo, entry.data_seq_hi)) {
      torn[i] = true;
    }
  }

  // Frees the pre-image a replace/delete held through the window (the
  // deferred ghost-cleanup of a surviving committed entry).
  auto release_held = [this](const BlobRecoveryEntry& entry) {
    if (entry.kind == BlobRecoveryEntry::Kind::kPut) return;
    Status s = BlobBtree::Free(&lob_unit_, entry.old_layout);
    (void)s;
  };

  // Resolution in reverse (strict LIFO keeps chained operations on one
  // key coherent): undo the uncommitted suffix; in bulk-logged mode
  // roll back committed entries with lost data pages — the paper's
  // data-loss window — while fully-logged mode redoes them from the
  // log; release held pre-images of everything that survives.
  for (size_t i = recovery_log_.size(); i-- > 0;) {
    const BlobRecoveryEntry& entry = recovery_log_[i];
    if (i >= committed) {
      UndoEntry(entry, &rs);
      ++rs.ops_rolled_back;
      continue;
    }
    if (torn[i]) {
      auto it = layouts_.find(entry.key);
      const bool current = it != layouts_.end() &&
                           it->second.root_page() == entry.new_root_page;
      if (!current) {
        // A later committed write of the key superseded the torn image;
        // nothing reachable was lost.
        release_held(entry);
        ++rs.ops_redone;
        continue;
      }
      if (!options_.bulk_logged) {
        // Fully logged: the payload rode the commit record into the
        // log, so redo rewrites the blob from that image (the torn
        // on-disk copy is discarded, same as a rebuild copy).
        const BlobLayout stale = it->second;
        auto fresh = BlobBtree::Write(&page_file_, &lob_unit_,
                                      stale.data_bytes, entry.payload,
                                      options_.write_request_bytes,
                                      options_.costs);
        if (fresh.ok()) {
          if (!entry.payload.empty()) {
            fresh->payload_hash = Fnv(entry.payload);
            fresh->hash_valid = true;
            fresh->block_sums = FnvBlockSums(entry.payload);
          }
          ObjectRow row;
          row.key = entry.key;
          row.blob_ref = fresh->root_page();
          row.size_bytes = fresh->data_bytes;
          row.version = next_version_++;
          Status repointed = metadata_->Update(row);
          (void)repointed;
          tracker_.Update(stale.Fragments(), stale.data_bytes,
                          fresh->Fragments(), fresh->data_bytes);
          Status freed = BlobBtree::Free(&lob_unit_, stale);
          (void)freed;
          it->second = std::move(*fresh);
          InvalidateHandles(entry.key);
        }
        release_held(entry);
        ++rs.ops_redone;
        continue;
      }
      ++rs.torn_rolled_back;
      if (entry.kind == BlobRecoveryEntry::Kind::kPut) ++rs.lost_objects;
      UndoEntry(entry, &rs);
      continue;
    }
    ++rs.ops_redone;
    release_held(entry);
  }

  recovery_log_.clear();
  window_log_bytes_ = 0;
  // The completion record that ends crash recovery.
  LogCommit(0);
  return rs;
}

void BlobStore::EndCrashWindow() {
  for (const BlobRecoveryEntry& entry : recovery_log_) {
    if (entry.kind == BlobRecoveryEntry::Kind::kPut) continue;
    Status s = BlobBtree::Free(&lob_unit_, entry.old_layout);
    (void)s;
  }
  recovery_log_.clear();
  window_log_bytes_ = 0;
}

}  // namespace db
}  // namespace lor
