#include "db/page_file.h"

#include <algorithm>

namespace lor {
namespace db {

PageFile::PageFile(sim::BlockDevice* device, PageFileOptions options)
    : device_(device),
      options_(options),
      gam_(0),
      capacity_extents_(0) {
  const uint64_t max_bytes =
      options_.max_bytes == 0
          ? device_->capacity()
          : std::min(options_.max_bytes, device_->capacity());
  capacity_extents_ = max_bytes / extent_bytes();
  gam_ = GamBitmap(capacity_extents_);
  const uint64_t initial_extents = std::min(
      capacity_extents_,
      std::max<uint64_t>(1, options_.initial_bytes / extent_bytes()));
  file_extents_ = initial_extents;
  Status s = gam_.Release(0, initial_extents);
  (void)s;
}

sim::BufferPool* PageFile::ActivePool() const {
  sim::BufferPool* pool = device_->buffer_pool();
  return (pool != nullptr && pool->enabled()) ? pool : nullptr;
}

void PageFile::InvalidatePages(uint64_t first_page, uint64_t count) {
  if (count == 0) return;
  if (sim::BufferPool* pool = ActivePool()) {
    pool->Invalidate(PageOffset(first_page), count * options_.page_bytes);
  }
}

Status PageFile::Grow() {
  if (file_extents_ >= capacity_extents_) {
    return Status::NoSpace("data file at capacity");
  }
  uint64_t grow_extents = static_cast<uint64_t>(
      static_cast<double>(file_extents_) * options_.autogrow_fraction);
  grow_extents = std::max<uint64_t>(grow_extents, 1);
  grow_extents = std::min(grow_extents, capacity_extents_ - file_extents_);
  LOR_RETURN_IF_ERROR(gam_.Release(file_extents_, grow_extents));
  file_extents_ += grow_extents;
  ++stats_.growths;
  // Growth zero-fills the new region (instant file initialization was
  // not the default in 2005); charge the sequential write.
  LOR_RETURN_IF_ERROR(device_->Write(
      (file_extents_ - grow_extents) * extent_bytes(),
      grow_extents * extent_bytes()));
  return Status::OK();
}

uint64_t PageFile::GrowBy(uint64_t extents) {
  const uint64_t grow =
      std::min(extents, capacity_extents_ - file_extents_);
  if (grow == 0) return 0;
  Status s = gam_.Release(file_extents_, grow);
  if (!s.ok()) return 0;
  file_extents_ += grow;
  ++stats_.growths;
  Status io = device_->Write((file_extents_ - grow) * extent_bytes(),
                             grow * extent_bytes());
  (void)io;
  return grow;
}

Status PageFile::ReleaseDue() {
  size_t released = 0;
  while (released < pending_.size() &&
         pending_[released].due <= alloc_counter_) {
    LOR_RETURN_IF_ERROR(
        gam_.Release(pending_[released].first, pending_[released].count));
    pending_extents_ -= pending_[released].count;
    ++released;
  }
  if (released > 0) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(released));
  }
  return Status::OK();
}

Status PageFile::ReleaseAllPending() {
  for (const PendingFree& p : pending_) {
    LOR_RETURN_IF_ERROR(gam_.Release(p.first, p.count));
    pending_extents_ -= p.count;
  }
  pending_.clear();
  return Status::OK();
}

Result<uint64_t> PageFile::AllocateExtent() {
  auto run = AllocateExtentRun(1);
  if (!run.ok()) return run.status();
  return run->first;
}

Result<std::pair<uint64_t, uint64_t>> PageFile::AllocateExtentRun(
    uint64_t count) {
  LOR_RETURN_IF_ERROR(ReleaseDue());
  const uint64_t from = options_.scan_from_hint ? scan_cursor_ : 0;
  auto run = gam_.AllocateRun(count, from);
  if (run.first == kNoExtent && from != 0) {
    run = gam_.AllocateRun(count, 0);  // Wrap the scan.
  }
  if (run.first == kNoExtent) {
    Status grown = Grow();
    if (!grown.ok()) {
      // Space pressure: release everything pending and retry before
      // failing, as the engine forces ghost cleanup when full.
      LOR_RETURN_IF_ERROR(ReleaseAllPending());
    }
    run = gam_.AllocateRun(count, 0);
    if (run.first == kNoExtent) return Status::NoSpace("no free extent");
  }
  scan_cursor_ = run.first + run.second;
  stats_.extents_allocated += run.second;
  alloc_counter_ += run.second;
  return run;
}

Status PageFile::FreeExtents(uint64_t first, uint64_t count) {
  if (first + count > file_extents_) {
    return Status::InvalidArgument("free beyond end of file");
  }
  // The extents leave their owner whether the release is immediate or
  // deferred — cached frames must die now, so a dirty frame can never
  // flush over the next owner's pages.
  InvalidatePages(ExtentFirstPage(first), count * options_.pages_per_extent);
  stats_.extents_freed += count;
  if (options_.deferred_free_allocations == 0) {
    return gam_.Release(first, count);
  }
  pending_.push_back(
      {alloc_counter_ + options_.deferred_free_allocations, first, count});
  pending_extents_ += count;
  return Status::OK();
}

Status PageFile::ReadPages(uint64_t first_page, uint64_t count,
                           std::vector<uint8_t>* out) {
  if (count == 0) return Status::OK();
  const uint64_t end_extent =
      (first_page + count - 1) / options_.pages_per_extent;
  if (end_extent >= file_extents_) {
    return Status::InvalidArgument("page read beyond end of file");
  }
  const uint64_t offset = PageOffset(first_page);
  const uint64_t length = count * options_.page_bytes;
  if (sim::BufferPool* pool = ActivePool()) {
    if (out != nullptr) out->resize(length);
    cache_slices_.assign(
        1, {offset, length, nullptr, out != nullptr ? out->data() : nullptr,
            offset, length});
    return pool->ReadThrough(cache_slices_);
  }
  return device_->Read(offset, length, out);
}

Status PageFile::WritePages(uint64_t first_page, uint64_t count,
                            std::span<const uint8_t> data) {
  if (count == 0) return Status::OK();
  const uint64_t end_extent =
      (first_page + count - 1) / options_.pages_per_extent;
  if (end_extent >= file_extents_) {
    return Status::InvalidArgument("page write beyond end of file");
  }
  const uint64_t offset = PageOffset(first_page);
  const uint64_t length = count * options_.page_bytes;
  if (sim::BufferPool* pool = ActivePool()) {
    cache_slices_.assign(
        1, {offset, length, data.empty() ? nullptr : data.data(), nullptr,
            offset, length});
    return pool->WriteThrough(cache_slices_);
  }
  return device_->Write(offset, length, data);
}

Status PageFile::CollectSlices(std::span<const PageRun> runs, bool write) {
  io_slices_.clear();
  for (const PageRun& run : runs) {
    if (run.count == 0) continue;
    const uint64_t end_extent =
        (run.first_page + run.count - 1) / options_.pages_per_extent;
    if (end_extent >= file_extents_) {
      return Status::InvalidArgument(write
                                         ? "page write beyond end of file"
                                         : "page read beyond end of file");
    }
    sim::IoSlice slice;
    slice.offset = PageOffset(run.first_page);
    slice.length = run.count * options_.page_bytes;
    slice.src = run.src;
    slice.dst = run.dst;
    io_slices_.push_back(slice);
  }
  return Status::OK();
}

Status PageFile::ReadPagesV(std::span<const PageRun> runs) {
  LOR_RETURN_IF_ERROR(CollectSlices(runs, /*write=*/false));
  if (io_slices_.empty()) return Status::OK();
  if (sim::BufferPool* pool = ActivePool()) {
    // Each run fills as one frame: the caller's batch plan (extent runs,
    // capped read-ahead) is exactly the granularity the pool caches at.
    cache_slices_.clear();
    for (const sim::IoSlice& s : io_slices_) {
      cache_slices_.push_back(
          {s.offset, s.length, nullptr, s.dst, s.offset, s.length});
    }
    return pool->ReadThrough(cache_slices_);
  }
  return device_->ReadV(io_slices_);
}

Status PageFile::WritePagesV(std::span<const PageRun> runs) {
  LOR_RETURN_IF_ERROR(CollectSlices(runs, /*write=*/true));
  if (io_slices_.empty()) return Status::OK();
  if (sim::BufferPool* pool = ActivePool()) {
    cache_slices_.clear();
    for (const sim::IoSlice& s : io_slices_) {
      cache_slices_.push_back(
          {s.offset, s.length, s.src, nullptr, s.offset, s.length});
    }
    return pool->WriteThrough(cache_slices_);
  }
  return device_->WriteV(io_slices_);
}

}  // namespace db
}  // namespace lor
