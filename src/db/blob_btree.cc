#include "db/blob_btree.h"

#include <algorithm>
#include <cstring>

#include "sim/buffer_pool.h"

namespace lor {
namespace db {

namespace {

/// Maximum bytes fetched by one read-ahead device request.
constexpr uint64_t kReadAheadBytes = 512 * kKiB;

/// Serializes a uint64 little-endian.
void PutU64(uint8_t* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t GetU64(const uint8_t* src) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(src[i]) << (8 * i);
  return v;
}

/// Enumerates all data page ids of a layout in logical order.
std::vector<uint64_t> EnumeratePages(const alloc::ExtentList& runs) {
  std::vector<uint64_t> pages;
  pages.reserve(TotalLength(runs));
  for (const alloc::Extent& run : runs) {
    for (uint64_t p = run.start; p < run.end(); ++p) pages.push_back(p);
  }
  return pages;
}

}  // namespace

uint64_t BlobBtree::DataPagesFor(const PageFile& file, uint64_t nbytes) {
  const uint64_t payload = PayloadPerPage(file);
  return (nbytes + payload - 1) / payload;
}

Result<BlobLayout> BlobBtree::Write(PageFile* file, LobAllocationUnit* unit,
                                    uint64_t nbytes,
                                    std::span<const uint8_t> data,
                                    uint64_t write_request_bytes,
                                    const sim::OpCostModel& costs) {
  if (nbytes == 0) return Status::InvalidArgument("empty blob");
  if (!data.empty() && data.size() != nbytes) {
    return Status::InvalidArgument("data size does not match blob size");
  }
  if (write_request_bytes == 0) {
    return Status::InvalidArgument("zero write request size");
  }

  const uint64_t payload = PayloadPerPage(*file);
  const uint64_t page_bytes = file->page_bytes();
  const uint64_t total_pages = DataPagesFor(*file, nbytes);
  const bool retain =
      file->device()->data_mode() == sim::DataMode::kRetain && !data.empty();

  BlobLayout layout;
  layout.data_bytes = nbytes;

  auto free_partial = [&]() {
    for (const alloc::Extent& run : layout.data_runs) {
      Status s = unit->FreePages(run);
      (void)s;
    }
    for (uint64_t p : layout.pointer_pages) {
      Status s = unit->FreePage(p);
      (void)s;
    }
  };

  file->device()->BeginStreamWindow();

  // Stream the blob in client write-request slices; pages are
  // allocated from the unit as each slice arrives.
  uint64_t pages_done = 0;
  uint64_t bytes_done = 0;
  std::vector<alloc::Extent> slice_runs;  // Page runs, reused per slice.
  // Vectored batch plan, borrowed from the PageFile's reusable scratch
  // (no allocation per call; PageFile calls never read it).
  std::vector<PageFile::PageRun>& page_runs = file->plan_scratch();

  while (bytes_done < nbytes) {
    const uint64_t slice = std::min(write_request_bytes, nbytes - bytes_done);
    const uint64_t end_pages =
        std::min(total_pages, (bytes_done + slice + payload - 1) / payload);

    slice_runs.clear();
    Status allocated = unit->AllocatePages(end_pages - pages_done,
                                           &slice_runs);
    if (!allocated.ok()) {
      // AllocatePages rolled its own pages back; release prior slices.
      free_partial();
      return allocated;
    }

    // Write the slice's pages: one vectored submission carrying one
    // run per contiguous page run. Content (in retain mode) is fixed
    // up after the loop, once the full logical-to-physical mapping is
    // known.
    page_runs.clear();
    for (const alloc::Extent& run : slice_runs) {
      page_runs.push_back({run.start, run.length, nullptr, nullptr});
    }
    Status s = file->WritePagesV(page_runs);
    if (!s.ok()) {
      for (const alloc::Extent& r2 : slice_runs) {
        Status undo = unit->FreePages(r2);
        (void)undo;
      }
      free_partial();
      return s;
    }
    for (const alloc::Extent& run : slice_runs) {
      alloc::AppendCoalescing(&layout.data_runs, run);
    }
    pages_done = end_pages;
    bytes_done += slice;
  }

  // When retaining data (integrity tests on small volumes), rewrite the
  // page payloads with the real bytes now that the full mapping is
  // known. This charges extra device time; retain mode is a
  // correctness harness, not a timing one. One vectored submission
  // carries the per-page rewrite charges; the payload itself moves
  // straight from the caller's buffer into the arena via WriteView —
  // no per-page image staging.
  if (retain) {
    sim::BufferPool* pool = file->device()->buffer_pool();
    const bool pooled = pool != nullptr && pool->enabled();
    const std::vector<uint64_t> pages = EnumeratePages(layout.data_runs);
    // Timing-only per-page writes (zeros stored, headers included)...
    Status s;
    if (pooled) {
      // The streamed submissions above installed frames for these
      // pages, so the rewrite must run against the pool too — a raw
      // device write here would be clobbered by a later dirty flush.
      std::vector<sim::CacheSlice> rewrite;
      rewrite.reserve(pages.size());
      for (uint64_t page : pages) {
        const uint64_t off = file->PageOffset(page);
        rewrite.push_back({off, page_bytes, nullptr, nullptr, off,
                           page_bytes});
      }
      s = pool->WriteThrough(rewrite);
    } else {
      std::vector<sim::IoSlice> rewrite;
      rewrite.reserve(pages.size());
      for (uint64_t page : pages) {
        rewrite.push_back({file->PageOffset(page), page_bytes, nullptr,
                           nullptr});
      }
      s = file->device()->WriteV(rewrite);
    }
    if (!s.ok()) {
      free_partial();
      return s;
    }
    // ...then the payload lands zero-copy behind the page headers —
    // into the resident frames when cached, straight into the arena
    // otherwise.
    for (uint64_t i = 0; i < pages.size(); ++i) {
      const uint64_t off = i * payload;
      const uint64_t chunk = std::min(payload, nbytes - off);
      const uint8_t* src = data.data() + off;
      auto fill = [&src](std::span<uint8_t> dst) {
        std::memcpy(dst.data(), src, dst.size());
        src += dst.size();
      };
      const uint64_t dst_off = file->PageOffset(pages[i]) + kPageHeaderBytes;
      if (pooled) {
        pool->WriteViewThrough(dst_off, chunk, fill);
      } else {
        file->device()->WriteView(dst_off, chunk, fill);
      }
    }
  }

  file->device()->EndStreamWindow(nbytes, costs.db_write_stream_bandwidth);
  file->device()->ChargeCpu(costs.db_per_page_cpu_s *
                            static_cast<double>(total_pages));

  // Build the pointer-page levels bottom-up, allocating tree pages from
  // the same unit (SQL Server's LOB tree pages live in the same
  // allocation unit as the data). Metadata-only devices never read the
  // serialized children back, so that path skips the page enumeration
  // entirely — only the level sizes matter — and submits each level's
  // node writes as one vectored batch of single-page runs (the same
  // request sequence the write-per-node loop issued).
  const uint64_t fanout = Fanout(*file);
  const bool serialize =
      file->device()->data_mode() == sim::DataMode::kRetain;
  std::vector<uint64_t> level;
  if (serialize) level = EnumeratePages(layout.data_runs);
  uint64_t level_size = total_pages;
  std::vector<uint64_t> node_pages;
  while (level_size > 1) {
    const uint64_t nodes = (level_size + fanout - 1) / fanout;
    node_pages.clear();
    node_pages.reserve(nodes);
    for (uint64_t n = 0; n < nodes; ++n) {
      auto page = unit->AllocatePage();
      if (!page.ok()) {
        for (uint64_t p : node_pages) {
          Status s = unit->FreePage(p);
          (void)s;
        }
        free_partial();
        return page.status();
      }
      node_pages.push_back(*page);
    }
    if (serialize) {
      // Serialize and write each pointer page.
      for (uint64_t n = 0; n < nodes; ++n) {
        const uint64_t begin = n * fanout;
        const uint64_t end = std::min<uint64_t>(begin + fanout, level.size());
        std::vector<uint8_t> image(page_bytes, 0);
        PutU64(image.data(), end - begin);  // Child count in the header.
        for (uint64_t c = begin; c < end; ++c) {
          PutU64(image.data() + kPageHeaderBytes + (c - begin) * 8, level[c]);
        }
        Status s = file->WritePages(node_pages[n], 1, image);
        if (!s.ok()) {
          for (uint64_t i = n; i < nodes; ++i) {
            Status undo = unit->FreePage(node_pages[i]);
            (void)undo;
          }
          free_partial();
          return s;
        }
        layout.pointer_pages.push_back(node_pages[n]);
      }
      level.assign(node_pages.begin(), node_pages.begin() + nodes);
    } else {
      page_runs.clear();
      for (uint64_t n = 0; n < nodes; ++n) {
        page_runs.push_back({node_pages[n], 1, nullptr, nullptr});
      }
      Status s = file->WritePagesV(page_runs);
      if (!s.ok()) {
        for (uint64_t p : node_pages) {
          Status undo = unit->FreePage(p);
          (void)undo;
        }
        free_partial();
        return s;
      }
      layout.pointer_pages.insert(layout.pointer_pages.end(),
                                  node_pages.begin(), node_pages.end());
    }
    level_size = nodes;
  }

  return layout;
}

Status BlobBtree::Read(PageFile* file, const BlobLayout& layout,
                       const sim::OpCostModel& costs,
                       std::vector<uint8_t>* out) {
  return ReadAt(file, layout, costs, 0, layout.data_bytes, out, nullptr);
}

Status BlobBtree::ReadAt(PageFile* file, const BlobLayout& layout,
                         const sim::OpCostModel& costs, uint64_t offset,
                         uint64_t length, std::vector<uint8_t>* out,
                         ReadCursor* cursor) {
  if (length > layout.data_bytes || offset > layout.data_bytes - length) {
    return Status::InvalidArgument("read beyond end of blob");
  }
  const uint64_t page_bytes = file->page_bytes();
  const uint64_t payload = PayloadPerPage(*file);
  const uint64_t total_pages = layout.data_page_count();
  const uint64_t first_page = std::min(total_pages, offset / payload);
  const uint64_t end_page =
      length == 0 ? first_page
                  : std::min(total_pages,
                             (offset + length + payload - 1) / payload);

  // Position on first_page: a cursor sitting on it resumes the
  // previous read (no descent, no run scan). A read that stopped
  // *inside* a page leaves the cursor one past the partially-consumed
  // page (next_page is the ceil), so a sequential resume may start on
  // next_page - 1 — step back one page rather than re-descending.
  // Otherwise walk the runs from the front and charge the pointer-page
  // descent.
  size_t run_index = 0;
  uint64_t page_in_run = 0;
  bool positioned = false;
  if (cursor != nullptr && cursor->valid) {
    if (cursor->next_page == first_page) {
      run_index = cursor->run_index;
      page_in_run = cursor->page_in_run;
      positioned = true;
    } else if (cursor->next_page == first_page + 1) {
      run_index = cursor->run_index;
      page_in_run = cursor->page_in_run;
      if (page_in_run > 0) {
        --page_in_run;
        positioned = true;
      } else if (run_index > 0) {
        --run_index;
        page_in_run = layout.data_runs[run_index].length - 1;
        positioned = true;
      }
    }
  }
  if (!positioned) {
    uint64_t seen = 0;
    while (run_index < layout.data_runs.size() &&
           seen + layout.data_runs[run_index].length <= first_page) {
      seen += layout.data_runs[run_index].length;
      ++run_index;
    }
    page_in_run = first_page - seen;
  }
  // Pointer pages are buffer-pool hits (CPU only), data pages charge
  // CPU per page on top of the device reads below.
  file->device()->ChargeCpu(
      costs.db_per_page_cpu_s *
      static_cast<double>(
          (positioned ? 0 : layout.pointer_pages.size()) +
          (end_page - first_page)));

  if (out != nullptr) {
    out->clear();
    out->reserve(length);
  }

  // Plan the read-ahead: contiguous page runs split into capped
  // sequential requests, all submitted as one vectored batch (each
  // request still charged individually — continuations are sequential
  // hits, exactly as the historical request-per-batch loop). The plan
  // vector is reused across calls on this thread — no allocation on
  // the measured read path.
  std::vector<PageFile::PageRun>& batches = file->plan_scratch();
  batches.clear();
  uint64_t page = first_page;
  while (page < end_page) {
    const alloc::Extent& run = layout.data_runs[run_index];
    const uint64_t batch = std::min(
        {run.length - page_in_run, end_page - page,
         std::max<uint64_t>(1, kReadAheadBytes / page_bytes)});
    batches.push_back({run.start + page_in_run, batch, nullptr, nullptr});
    page += batch;
    page_in_run += batch;
    if (page_in_run == run.length) {
      ++run_index;
      page_in_run = 0;
    }
  }

  sim::BufferPool* pool = file->device()->buffer_pool();
  const bool pooled = pool != nullptr && pool->enabled();
  // Media admission for the unpooled payload path: the charged batch
  // read below carries no destination (payload moves via views), so
  // the device's implicit read-side fault check never sees it. With a
  // pool active the miss fills carry frame memory and are admitted
  // there — and resident frames legitimately serve their cached bytes
  // without touching media.
  if (out != nullptr && !pooled) {
    for (const PageFile::PageRun& b : batches) {
      LOR_RETURN_IF_ERROR(file->device()->PreflightMediaRead(
          file->PageOffset(b.first_page), b.count * page_bytes));
    }
  }

  file->device()->BeginStreamWindow();
  LOR_RETURN_IF_ERROR(file->ReadPagesV(batches));
  if (out != nullptr) {
    // Payload moves straight from the arena into `out` via ReadView —
    // no page-image staging buffer. Unwritten pages (and metadata-only
    // devices) view as zeros, preserving the historical bytes. With a
    // buffer pool active the view goes through the pool instead, so
    // dirty write-back frames are served their cached bytes.
    const auto sink = [out](std::span<const uint8_t> src) {
      out->insert(out->end(), src.begin(), src.end());
    };
    uint64_t logical = first_page;
    for (const PageFile::PageRun& b : batches) {
      for (uint64_t i = 0; i < b.count; ++i) {
        const uint64_t pstart = (logical + i) * payload;
        const uint64_t pend = std::min(pstart + payload, layout.data_bytes);
        const uint64_t lo = std::max(pstart, offset);
        const uint64_t hi = std::min(pend, offset + length);
        if (hi <= lo) continue;
        const uint64_t src_off = file->PageOffset(b.first_page + i) +
                                 kPageHeaderBytes + (lo - pstart);
        if (pooled) {
          pool->View(src_off, hi - lo, sink);
        } else {
          file->device()->ReadView(src_off, hi - lo, sink);
        }
      }
      logical += b.count;
    }
  }
  file->device()->EndStreamWindow(length, costs.db_read_stream_bandwidth);
  if (cursor != nullptr) {
    cursor->valid = true;
    cursor->next_page = end_page;
    cursor->run_index = run_index;
    cursor->page_in_run = page_in_run;
  }
  return Status::OK();
}

Status BlobBtree::Free(LobAllocationUnit* unit, const BlobLayout& layout) {
  for (const alloc::Extent& run : layout.data_runs) {
    LOR_RETURN_IF_ERROR(unit->FreePages(run));
  }
  for (uint64_t p : layout.pointer_pages) {
    LOR_RETURN_IF_ERROR(unit->FreePage(p));
  }
  return Status::OK();
}

Status BlobBtree::VerifyTree(PageFile* file, const BlobLayout& layout) {
  if (file->device()->data_mode() != sim::DataMode::kRetain) {
    return Status::NotSupported("tree verification needs a data-retaining device");
  }
  const std::vector<uint64_t> data_pages = EnumeratePages(layout.data_runs);
  if (layout.pointer_pages.empty()) {
    if (data_pages.size() > 1) {
      return Status::Corruption("multi-page blob without pointer pages");
    }
    return Status::OK();
  }
  // Walk levels top-down starting from the root and expand to leaves.
  std::vector<uint64_t> frontier = {layout.root_page()};
  const uint64_t fanout = Fanout(*file);
  (void)fanout;
  // Expand until the frontier no longer consists of pointer pages.
  auto is_pointer = [&](uint64_t page) {
    return std::find(layout.pointer_pages.begin(), layout.pointer_pages.end(),
                     page) != layout.pointer_pages.end();
  };
  while (!frontier.empty() && is_pointer(frontier.front())) {
    std::vector<uint64_t> next;
    for (uint64_t page : frontier) {
      std::vector<uint8_t> image;
      // Through the page file, not the raw device: a pooled node write
      // may still be parked in a dirty frame.
      LOR_RETURN_IF_ERROR(file->ReadPages(page, 1, &image));
      const uint64_t children = GetU64(image.data());
      for (uint64_t c = 0; c < children; ++c) {
        next.push_back(GetU64(image.data() + kPageHeaderBytes + c * 8));
      }
    }
    frontier.swap(next);
  }
  if (frontier != data_pages) {
    return Status::Corruption("pointer tree does not enumerate data pages");
  }
  return Status::OK();
}

}  // namespace db
}  // namespace lor
