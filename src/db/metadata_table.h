// MetadataTable: the clustered-index row table both experiment
// configurations use (§4.1-4.2 of the paper: object names and metadata
// live in SQL Server tables in both the file and the BLOB variants; the
// BLOB variant keeps the large data out-of-row so the table stays
// cacheable).
//
// Implemented as a B+tree keyed by object key. Node pages are allocated
// from the data file; lookups are buffer-pool hits (CPU only), while
// dirty nodes are written back at checkpoints, generating the modest
// metadata write traffic a real server shows.

#ifndef LOREPO_DB_METADATA_TABLE_H_
#define LOREPO_DB_METADATA_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/page_file.h"
#include "sim/op_cost_model.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace db {

/// One metadata row.
struct ObjectRow {
  std::string key;
  uint64_t blob_ref = 0;   ///< Opaque handle to the blob (or file id).
  uint64_t size_bytes = 0;
  uint64_t version = 0;
  bool ghost = false;      ///< Deleted but not yet purged (ghost record).
};

/// Statistics about the tree.
struct MetadataTableStats {
  uint64_t rows = 0;          ///< Live rows.
  uint64_t ghosts = 0;        ///< Ghost (deleted, unpurged) rows.
  uint64_t leaf_pages = 0;
  uint64_t internal_pages = 0;
  uint64_t height = 0;
  uint64_t splits = 0;
  uint64_t checkpoints = 0;
};

/// Clustered B+tree over ObjectRow.
class MetadataTable {
 public:
  /// `ops_per_checkpoint` controls how often dirty pages are written
  /// back (0 disables checkpoints entirely).
  MetadataTable(PageFile* file, const sim::OpCostModel* costs,
                uint32_t ops_per_checkpoint = 256);
  ~MetadataTable();

  MetadataTable(const MetadataTable&) = delete;
  MetadataTable& operator=(const MetadataTable&) = delete;

  /// Tree node; public so the implementation's free helper functions
  /// (scan, purge, invariant check) can traverse it.
  struct Node;

  /// A positioned cursor: remembers the leaf and slot of one row so
  /// repeat operations on the same key skip the tree descent. Nodes are
  /// never deallocated (splits add, purges compact in place), so the
  /// cached pointer stays safe; a structure-generation check plus a key
  /// match detect rows that moved, falling back to a fresh descent.
  struct RowCursor {
    Node* leaf = nullptr;
    size_t pos = 0;
    uint64_t structure_gen = 0;
  };

  /// Inserts a row; AlreadyExists if a live row with the key exists.
  /// A ghost with the same key is resurrected in place.
  Status Insert(const ObjectRow& row);

  /// Replaces the payload of an existing live row.
  Status Update(const ObjectRow& row);

  /// Update through a cursor: identical charging to Update, but when
  /// `cursor` is still positioned on the row the descent is skipped
  /// entirely. Repositions the cursor either way.
  Status UpdateAt(RowCursor* cursor, const ObjectRow& row);

  /// Bumped whenever rows move between nodes (splits, ghost purges);
  /// cursors from older generations re-descend.
  uint64_t structure_generation() const { return structure_gen_; }

  /// Point lookup. NotFound for missing or ghost rows.
  Result<ObjectRow> Lookup(const std::string& key) const;

  /// Marks the row as a ghost (SQL Server deletes leave ghosts that a
  /// background task later purges).
  Status Delete(const std::string& key);

  /// Purges all ghost rows (the background ghost-cleanup task).
  void PurgeGhosts();

  /// All live keys in key order.
  std::vector<std::string> ScanKeys() const;

  /// Live row count.
  uint64_t size() const { return stats_.rows; }

  MetadataTableStats stats() const;

  /// Verifies B+tree invariants: key order, fill bounds, uniform leaf
  /// depth, parent separators bracketing children.
  Status CheckConsistency() const;

  /// Rows per leaf page (derived from the page size).
  uint64_t LeafCapacity() const;
  /// Children per internal page.
  uint64_t InternalCapacity() const;

 private:

  void ChargeLookupCpu(uint64_t levels) const;
  void MaybeCheckpoint();
  void MarkDirty(Node* node);

  PageFile* file_;
  const sim::OpCostModel* costs_;
  uint32_t ops_per_checkpoint_;
  uint32_t ops_since_checkpoint_ = 0;
  uint64_t structure_gen_ = 0;
  std::unique_ptr<Node> root_;
  mutable MetadataTableStats stats_;
  std::vector<uint64_t> dirty_pages_;
  /// Coalesced dirty runs staged for the vectored checkpoint flush.
  std::vector<PageFile::PageRun> checkpoint_runs_;
  /// Pool of pages available for new nodes (allocated extent-wise).
  std::vector<uint64_t> page_pool_;
};

}  // namespace db
}  // namespace lor

#endif  // LOREPO_DB_METADATA_TABLE_H_
