// BlobBtree: Exodus-style B-tree storage of large objects (the design
// SQL Server adopted for its BLOB storage; the paper cites Carey et
// al.'s EXODUS paper and Biliris's measurements of it).
//
// A BLOB is a sequence of 8 KB data pages plus a tree of pointer pages
// above them. Data pages are allocated extent-at-a-time from the GAM
// (lowest-free-first), which is exactly the reuse pattern that causes
// the database's fragmentation growth. Pointer pages are written with
// real serialized child references so the tree structure on "disk" can
// be independently re-parsed and verified.
//
// Caching model: pointer pages are assumed hot in the buffer pool
// (they are a few KB per multi-MB object), so traversals charge CPU per
// page; data pages always charge device reads, coalesced across
// physically contiguous page runs (read-ahead).

#ifndef LOREPO_DB_BLOB_BTREE_H_
#define LOREPO_DB_BLOB_BTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "alloc/extent.h"
#include "db/lob_allocation_unit.h"
#include "db/page_file.h"
#include "sim/op_cost_model.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace db {

/// Physical description of one stored BLOB. Pages are allocated from a
/// LobAllocationUnit, so extents can be shared with other blobs; the
/// layout therefore tracks pages, not extents.
struct BlobLayout {
  /// Bytes of application data.
  uint64_t data_bytes = 0;
  /// Data pages in logical order, as page-unit extents (coalesced).
  alloc::ExtentList data_runs;
  /// Pointer (tree) pages, bottom-up then root last. Empty for single-
  /// page blobs, whose root is the lone data page.
  std::vector<uint64_t> pointer_pages;
  /// FNV-1a of the payload recorded at write time (host-side state for
  /// the crash-consistency fsck; charges nothing). Valid only when the
  /// blob was written with real bytes (DataMode::kRetain workloads).
  uint64_t payload_hash = 0;
  bool hash_valid = false;
  /// Per-block media checksums: one FNV-1a sum per kChecksumBlockBytes
  /// of payload, partial tail included (util/fnv.h). Recorded alongside
  /// payload_hash under the same validity flag; the read path verifies
  /// the sums covering the returned range so range reads do not need
  /// the whole object.
  std::vector<uint64_t> block_sums;

  uint64_t data_page_count() const { return TotalLength(data_runs); }
  uint64_t root_page() const {
    return pointer_pages.empty()
               ? (data_runs.empty() ? 0 : data_runs.front().start)
               : pointer_pages.back();
  }
  /// The paper's fragments/object metric over the data pages.
  uint64_t Fragments() const { return alloc::CountFragments(data_runs); }
};

/// Builder/reader for Exodus-style blob trees over a PageFile.
class BlobBtree {
 public:
  /// Bytes of payload per 8 KB data page (96-byte header).
  static uint64_t PayloadPerPage(const PageFile& file) {
    return file.page_bytes() - kPageHeaderBytes;
  }
  /// Child references per pointer page.
  static uint64_t Fanout(const PageFile& file) {
    return (file.page_bytes() - kPageHeaderBytes) / sizeof(uint64_t);
  }

  /// Number of data pages a blob of `nbytes` occupies.
  static uint64_t DataPagesFor(const PageFile& file, uint64_t nbytes);

  /// Allocates space for and writes a blob of `nbytes` through `unit`.
  ///
  /// `data` may be empty (timing-only) or exactly `nbytes`. The write is
  /// performed in `write_request_bytes` slices, as the client streams
  /// it; pages are allocated per slice, so the write request size
  /// shapes the physical layout (paper §5.4). `costs` provides the
  /// client-stack bandwidth cap.
  static Result<BlobLayout> Write(PageFile* file, LobAllocationUnit* unit,
                                  uint64_t nbytes,
                                  std::span<const uint8_t> data,
                                  uint64_t write_request_bytes,
                                  const sim::OpCostModel& costs);

  /// Reads a blob back. Charges per-page CPU and coalesced device
  /// reads; fills `out` with the payload bytes when non-null.
  static Status Read(PageFile* file, const BlobLayout& layout,
                     const sim::OpCostModel& costs,
                     std::vector<uint8_t>* out = nullptr);

  /// A read cursor positioned inside a blob's data-page runs. A ReadAt
  /// resuming where the previous one stopped skips the pointer-page
  /// descent and the run scan — the sequential-read fast path an open
  /// handle keeps across calls. Invalidated by the owner whenever the
  /// layout it indexes into is replaced.
  struct ReadCursor {
    bool valid = false;
    uint64_t next_page = 0;   ///< Logical data-page index after the last read.
    size_t run_index = 0;     ///< Run containing next_page...
    uint64_t page_in_run = 0; ///< ...and the page offset inside it.
  };

  /// Reads `length` payload bytes starting at byte `offset`. Identical
  /// charging to Read for a whole-object pass (pointer-page descent +
  /// per-page CPU + coalesced device reads + stream penalty on the
  /// bytes delivered); with a `cursor` still positioned at `offset`,
  /// the descent and run scan are skipped.
  static Status ReadAt(PageFile* file, const BlobLayout& layout,
                       const sim::OpCostModel& costs, uint64_t offset,
                       uint64_t length, std::vector<uint8_t>* out = nullptr,
                       ReadCursor* cursor = nullptr);

  /// Frees every page of the blob back to the allocation unit (which
  /// returns fully-freed extents to the GAM).
  static Status Free(LobAllocationUnit* unit, const BlobLayout& layout);

  /// Re-parses the pointer pages from the device (kRetain mode only)
  /// and verifies they describe exactly `layout`'s data pages. Used by
  /// integrity tests.
  static Status VerifyTree(PageFile* file, const BlobLayout& layout);

  static constexpr uint64_t kPageHeaderBytes = 96;
};

}  // namespace db
}  // namespace lor

#endif  // LOREPO_DB_BLOB_BTREE_H_
