#include "db/lob_allocation_unit.h"

#include <bit>

namespace lor {
namespace db {

uint64_t LobAllocationUnit::PickExtent() {
  if (sequential_fill_) {
    // Only the tail of the extent we are currently filling qualifies.
    return with_free_.IsFree(hint_extent_) ? hint_extent_ : kNoExtent;
  }
  if (with_free_.free_count() == 0) return kNoExtent;
  if (policy_ == PageScanPolicy::kLowestFirst) {
    return with_free_.FindLowestFree(0);
  }
  const uint64_t extent = with_free_.FindLowestFree(hint_extent_);
  return extent != kNoExtent ? extent : with_free_.FindLowestFree(0);
}

Result<uint64_t> LobAllocationUnit::AllocatePage() {
  uint64_t extent = PickExtent();
  if (extent == kNoExtent) {
    auto fresh = file_->AllocateExtent();
    if (!fresh.ok()) return fresh.status();
    extent = *fresh;
    bitmaps_[extent] = all_free_;
    with_free_.MarkFree(extent);
    ++owned_count_;
    reserved_free_ += pages_per_extent_;
  }
  uint16_t& bitmap = bitmaps_[extent];
  const int bit = std::countr_zero(bitmap);
  bitmap = static_cast<uint16_t>(bitmap & ~(1u << bit));
  if (bitmap == 0) with_free_.MarkUsed(extent);
  --reserved_free_;
  ++allocated_pages_;
  hint_extent_ = extent;
  return file_->ExtentFirstPage(extent) + static_cast<uint64_t>(bit);
}

Status LobAllocationUnit::AllocatePages(uint64_t count,
                                        alloc::ExtentList* out) {
  const size_t base = out->size();
  const uint64_t base_back_length = base > 0 ? (*out)[base - 1].length : 0;
  auto rollback = [&]() {
    for (size_t i = base; i < out->size(); ++i) {
      Status s = FreePages((*out)[i]);
      (void)s;
    }
    out->resize(base);
    if (base > 0 && (*out)[base - 1].length > base_back_length) {
      const alloc::Extent& back = (*out)[base - 1];
      Status s = FreePages({back.start + base_back_length,
                            back.length - base_back_length});
      (void)s;
      (*out)[base - 1].length = base_back_length;
    }
  };

  uint64_t remaining = count;
  while (remaining > 0) {
    uint64_t extent = PickExtent();
    if (extent == kNoExtent) {
      auto fresh = file_->AllocateExtent();
      if (!fresh.ok()) {
        rollback();
        return fresh.status();
      }
      extent = *fresh;
      bitmaps_[extent] = all_free_;
      with_free_.MarkFree(extent);
      ++owned_count_;
      reserved_free_ += pages_per_extent_;
    }
    // Drain the extent's free bits lowest-first — the page-id sequence
    // repeated AllocatePage calls would produce.
    uint16_t& bitmap = bitmaps_[extent];
    const uint64_t first_page = file_->ExtentFirstPage(extent);
    uint64_t taken = 0;
    while (bitmap != 0 && taken < remaining) {
      const int bit = std::countr_zero(bitmap);
      bitmap = static_cast<uint16_t>(bitmap & ~(1u << bit));
      alloc::AppendCoalescing(out,
                              {first_page + static_cast<uint64_t>(bit), 1});
      ++taken;
    }
    if (bitmap == 0) with_free_.MarkUsed(extent);
    reserved_free_ -= taken;
    allocated_pages_ += taken;
    hint_extent_ = extent;
    remaining -= taken;
  }
  return Status::OK();
}

Status LobAllocationUnit::FreePage(uint64_t page_id) {
  const uint64_t extent = page_id / pages_per_extent_;
  const uint64_t bit = page_id % pages_per_extent_;
  if (extent >= bitmaps_.size() || bitmaps_[extent] == kUnowned) {
    return Status::InvalidArgument("page's extent not owned by unit");
  }
  uint16_t& bitmap = bitmaps_[extent];
  if ((bitmap >> bit) & 1u) {
    return Status::InvalidArgument("double free of page");
  }
  if (!quarantined_pages_.empty() && quarantined_pages_.count(page_id) != 0) {
    return Status::InvalidArgument("double free of page");
  }
  if (!pending_bad_pages_.empty()) {
    auto it = pending_bad_pages_.find(page_id);
    if (it != pending_bad_pages_.end()) {
      // Divert: the bit stays "used", so the page is never re-issued
      // and the extent never returns to the GAM, but no blob owns it.
      pending_bad_pages_.erase(it);
      quarantined_pages_.insert(page_id);
      file_->InvalidatePages(page_id, 1);
      --allocated_pages_;
      return Status::OK();
    }
  }
  bitmap = static_cast<uint16_t>(bitmap | (1u << bit));
  // The page changes owner even while its extent stays with the unit —
  // any cached frame must die before the next AllocatePage hands it out.
  file_->InvalidatePages(page_id, 1);
  ++reserved_free_;
  --allocated_pages_;
  if (bitmap == all_free_) {
    bitmaps_[extent] = kUnowned;
    with_free_.MarkUsed(extent);
    --owned_count_;
    reserved_free_ -= pages_per_extent_;
    return file_->FreeExtents(extent, 1);
  }
  with_free_.MarkFree(extent);
  return Status::OK();
}

Status LobAllocationUnit::FreePages(const alloc::Extent& run) {
  if (!pending_bad_pages_.empty() || !quarantined_pages_.empty()) {
    // Rare repair regime: per-page frees so marked pages can divert to
    // the quarantine list individually.
    for (uint64_t p = run.start; p < run.start + run.length; ++p) {
      LOR_RETURN_IF_ERROR(FreePage(p));
    }
    return Status::OK();
  }
  uint64_t page = run.start;
  uint64_t left = run.length;
  while (left > 0) {
    const uint64_t extent = page / pages_per_extent_;
    const uint64_t bit = page % pages_per_extent_;
    const uint64_t in_extent = std::min(left, pages_per_extent_ - bit);
    if (extent >= bitmaps_.size() || bitmaps_[extent] == kUnowned) {
      return Status::InvalidArgument("page's extent not owned by unit");
    }
    uint16_t& bitmap = bitmaps_[extent];
    const uint16_t mask =
        static_cast<uint16_t>(((1u << in_extent) - 1) << bit);
    if ((bitmap & mask) != 0) {
      return Status::InvalidArgument("double free of page");
    }
    bitmap = static_cast<uint16_t>(bitmap | mask);
    file_->InvalidatePages(page, in_extent);
    reserved_free_ += in_extent;
    allocated_pages_ -= in_extent;
    if (bitmap == all_free_) {
      bitmaps_[extent] = kUnowned;
      with_free_.MarkUsed(extent);
      --owned_count_;
      reserved_free_ -= pages_per_extent_;
      LOR_RETURN_IF_ERROR(file_->FreeExtents(extent, 1));
    } else {
      with_free_.MarkFree(extent);
    }
    page += in_extent;
    left -= in_extent;
  }
  return Status::OK();
}

Status LobAllocationUnit::CheckConsistency() const {
  uint64_t free_pages = 0;
  uint64_t used_pages = 0;
  uint64_t owned = 0;
  for (uint64_t extent = 0; extent < bitmaps_.size(); ++extent) {
    const uint16_t bitmap = bitmaps_[extent];
    if (bitmap == kUnowned) {
      if (with_free_.IsFree(extent)) {
        return Status::Corruption("free index lists unowned extent");
      }
      continue;
    }
    ++owned;
    const int free_bits = std::popcount(bitmap);
    free_pages += static_cast<uint64_t>(free_bits);
    used_pages += file_->pages_per_extent() - static_cast<uint64_t>(free_bits);
    if ((bitmap != 0) != with_free_.IsFree(extent)) {
      return Status::Corruption("free index disagrees with bitmap");
    }
    if (bitmap == ((1u << file_->pages_per_extent()) - 1)) {
      return Status::Corruption("fully free extent still owned");
    }
    if (file_->gam().IsFree(extent)) {
      return Status::Corruption("owned extent is free in the GAM");
    }
  }
  if (owned != owned_count_) {
    return Status::Corruption("owned extent count mismatch");
  }
  if (free_pages != reserved_free_) {
    return Status::Corruption("reserved free page count mismatch");
  }
  // Quarantined pages hold a "used" bit but belong to no blob, so they
  // account separately from allocated_pages_.
  if (used_pages != allocated_pages_ + quarantined_pages_.size()) {
    return Status::Corruption("allocated page count mismatch");
  }
  for (const uint64_t page : quarantined_pages_) {
    const uint64_t qx = page / pages_per_extent_;
    if (qx >= bitmaps_.size() || bitmaps_[qx] == kUnowned) {
      return Status::Corruption("quarantined page in unowned extent");
    }
    if ((bitmaps_[qx] >> (page % pages_per_extent_)) & 1u) {
      return Status::Corruption("quarantined page marked free");
    }
  }
  return Status::OK();
}

}  // namespace db
}  // namespace lor
