#include "db/lob_allocation_unit.h"

#include <bit>

namespace lor {
namespace db {

uint64_t LobAllocationUnit::PickExtent() {
  if (sequential_fill_) {
    // Only the tail of the extent we are currently filling qualifies.
    return with_free_.count(hint_extent_) != 0 ? hint_extent_ : kNoExtent;
  }
  if (with_free_.empty()) return kNoExtent;
  if (policy_ == PageScanPolicy::kLowestFirst) return *with_free_.begin();
  auto it = with_free_.lower_bound(hint_extent_);
  if (it == with_free_.end()) it = with_free_.begin();
  return *it;
}

Result<uint64_t> LobAllocationUnit::AllocatePage() {
  uint64_t extent = PickExtent();
  if (extent == kNoExtent) {
    auto fresh = file_->AllocateExtent();
    if (!fresh.ok()) return fresh.status();
    extent = *fresh;
    const uint8_t all_free =
        static_cast<uint8_t>((1u << file_->pages_per_extent()) - 1);
    owned_.emplace(extent, all_free);
    with_free_.insert(extent);
    reserved_free_ += file_->pages_per_extent();
  }
  auto it = owned_.find(extent);
  const int bit = std::countr_zero(it->second);
  it->second = static_cast<uint8_t>(it->second & ~(1u << bit));
  if (it->second == 0) with_free_.erase(extent);
  --reserved_free_;
  ++allocated_pages_;
  hint_extent_ = extent;
  return file_->ExtentFirstPage(extent) + static_cast<uint64_t>(bit);
}

Status LobAllocationUnit::FreePage(uint64_t page_id) {
  const uint64_t extent = page_id / file_->pages_per_extent();
  const uint64_t bit = page_id % file_->pages_per_extent();
  auto it = owned_.find(extent);
  if (it == owned_.end()) {
    return Status::InvalidArgument("page's extent not owned by unit");
  }
  if ((it->second >> bit) & 1u) {
    return Status::InvalidArgument("double free of page");
  }
  it->second = static_cast<uint8_t>(it->second | (1u << bit));
  ++reserved_free_;
  --allocated_pages_;
  const uint8_t all_free =
      static_cast<uint8_t>((1u << file_->pages_per_extent()) - 1);
  if (it->second == all_free) {
    owned_.erase(it);
    with_free_.erase(extent);
    reserved_free_ -= file_->pages_per_extent();
    return file_->FreeExtents(extent, 1);
  }
  with_free_.insert(extent);
  return Status::OK();
}

Status LobAllocationUnit::CheckConsistency() const {
  uint64_t free_pages = 0;
  uint64_t used_pages = 0;
  for (const auto& [extent, bitmap] : owned_) {
    const int free_bits = std::popcount(bitmap);
    free_pages += static_cast<uint64_t>(free_bits);
    used_pages += file_->pages_per_extent() - static_cast<uint64_t>(free_bits);
    const bool has_free = bitmap != 0;
    if (has_free != (with_free_.count(extent) != 0)) {
      return Status::Corruption("with_free_ index disagrees with bitmap");
    }
    if (bitmap == ((1u << file_->pages_per_extent()) - 1)) {
      return Status::Corruption("fully free extent still owned");
    }
    if (file_->gam().IsFree(extent)) {
      return Status::Corruption("owned extent is free in the GAM");
    }
  }
  if (free_pages != reserved_free_) {
    return Status::Corruption("reserved free page count mismatch");
  }
  if (used_pages != allocated_pages_) {
    return Status::Corruption("allocated page count mismatch");
  }
  return Status::OK();
}

}  // namespace db
}  // namespace lor
