// PageFile: the database data file — a page/extent space on the
// simulated device with SQL-Server-like autogrow and GAM allocation.
//
// Pages are 8 KB and extents are 8 pages (64 KB), as in SQL Server. The
// file starts small and grows by a fixed fraction whenever the GAM has
// no free extent, up to the device capacity. During bulk load this
// yields purely sequential allocation at the tail; after deletions the
// GAM hands back the lowest free extents first.

#ifndef LOREPO_DB_PAGE_FILE_H_
#define LOREPO_DB_PAGE_FILE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "db/gam.h"
#include "sim/block_device.h"
#include "sim/buffer_pool.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace db {

/// Configuration of the data file.
struct PageFileOptions {
  uint64_t page_bytes = 8192;
  uint64_t pages_per_extent = 8;  ///< 64 KB extents.
  /// Autogrow increment as a fraction of current file size (SQL Server's
  /// default growth setting).
  double autogrow_fraction = 0.10;
  /// Initial file size.
  uint64_t initial_bytes = 32 * kMiB;
  /// Cap on file size; 0 means the device capacity.
  uint64_t max_bytes = 0;
  /// Deferred deallocation: freed extents become reusable only after
  /// this many further extent *allocations* (SQL Server's deferred-drop
  /// and ghost-cleanup tasks release space asynchronously, so holes can
  /// open up in the middle of another object's streamed write). 0 =
  /// immediate release.
  uint32_t deferred_free_allocations = 16;
  /// When true, the GAM scan starts from the last allocated extent and
  /// wraps (SQL Server caches per-allocation-unit hints rather than
  /// rescanning from extent 0 every time). When false, every
  /// allocation scans from the start of the file.
  bool scan_from_hint = true;
};

/// Counters for file maintenance activity.
struct PageFileStats {
  uint64_t growths = 0;
  uint64_t extents_allocated = 0;
  uint64_t extents_freed = 0;
};

/// Page/extent space on a block device.
class PageFile {
 public:
  PageFile(sim::BlockDevice* device, PageFileOptions options = {});

  uint64_t page_bytes() const { return options_.page_bytes; }
  uint64_t pages_per_extent() const { return options_.pages_per_extent; }
  uint64_t extent_bytes() const {
    return options_.page_bytes * options_.pages_per_extent;
  }
  /// Extents currently inside the file.
  uint64_t file_extents() const { return file_extents_; }
  /// Largest extent count the device can ever hold.
  uint64_t capacity_extents() const { return capacity_extents_; }
  uint64_t free_extents() const { return gam_.free_count(); }

  /// Byte offset of a page on the device.
  uint64_t PageOffset(uint64_t page_id) const {
    return page_id * options_.page_bytes;
  }
  /// First page of an extent.
  uint64_t ExtentFirstPage(uint64_t extent_id) const {
    return extent_id * options_.pages_per_extent;
  }

  /// Allocates the lowest free extent, growing the file if necessary.
  Result<uint64_t> AllocateExtent();

  /// Allocates up to `count` consecutive extents (lowest-first), growing
  /// the file if nothing is free. The run may be shorter than requested.
  Result<std::pair<uint64_t, uint64_t>> AllocateExtentRun(uint64_t count);

  /// Returns `count` extents starting at `first` to the free pool.
  /// With deferred deallocation configured the extents only become
  /// allocatable after the configured number of further allocations.
  Status FreeExtents(uint64_t first, uint64_t count);

  /// Releases every pending deferred free immediately (the engine does
  /// this under space pressure before reporting an out-of-space error).
  Status ReleaseAllPending();

  /// Moves the GAM scan hint past the end of the file so subsequent
  /// allocations grow the file and land sequentially — how a rebuild
  /// into a fresh filegroup behaves.
  void SeekScanCursorToEnd() { scan_cursor_ = file_extents_; }

  /// Explicitly grows the file by up to `extents` (capped by the device
  /// capacity), returning how many were added. The new region is
  /// contiguous free space at the old end of file.
  uint64_t GrowBy(uint64_t extents);

  /// Extents freed but not yet reusable.
  uint64_t pending_free_extents() const { return pending_extents_; }

  /// Free now + pending + room the file could still grow into.
  uint64_t unused_extents() const {
    return gam_.free_count() + pending_extents_ +
           (capacity_extents_ - file_extents_);
  }

  /// Reads `count` pages starting at `first_page` as one device request.
  /// `out` receives raw page images when non-null.
  Status ReadPages(uint64_t first_page, uint64_t count,
                   std::vector<uint8_t>* out = nullptr);

  /// Writes `count` pages starting at `first_page` as one device
  /// request. `data` must be empty or exactly count * page_bytes.
  Status WritePages(uint64_t first_page, uint64_t count,
                    std::span<const uint8_t> data = {});

  /// One contiguous page run of a vectored submission. `src`/`dst` may
  /// be null (timing-only); when non-null they must cover
  /// `count * page_bytes()` bytes.
  struct PageRun {
    uint64_t first_page = 0;
    uint64_t count = 0;
    const uint8_t* src = nullptr;  ///< WritePagesV payload source.
    uint8_t* dst = nullptr;        ///< ReadPagesV payload destination.
  };

  /// Submits every run as one vectored device request: the whole batch
  /// is validated first, then charged exactly as the equivalent
  /// ReadPages-per-run loop (zero-count runs are skipped).
  Status ReadPagesV(std::span<const PageRun> runs);

  /// WritePagesV twin of ReadPagesV.
  Status WritePagesV(std::span<const PageRun> runs);

  /// Drops any cached frames covering `count` pages from `first_page` —
  /// called by every free path before pages change owner, so a stale
  /// (or dirty) frame can never be served to, or flushed over, the next
  /// allocation. No-op without an active buffer pool.
  void InvalidatePages(uint64_t first_page, uint64_t count);

  /// Reusable scratch for callers composing PageRun batch plans
  /// (BlobBtree's write slices and read-ahead). Contents are call-local
  /// — cleared by the borrower, never read across PageFile calls
  /// (ReadPagesV/WritePagesV lower into their own slice scratch).
  std::vector<PageRun>& plan_scratch() { return plan_scratch_; }

  const GamBitmap& gam() const { return gam_; }
  const PageFileStats& stats() const { return stats_; }
  sim::BlockDevice* device() { return device_; }

  /// File bytes currently allocated from the device.
  uint64_t file_bytes() const { return file_extents_ * extent_bytes(); }

 private:
  /// The device's buffer pool when one is attached and enabled, else
  /// null — the single check that keeps cache-size-0 a true no-op
  /// (disabled pools leave every call on its historical device path).
  sim::BufferPool* ActivePool() const;
  /// Grows the file by the autogrow increment; NoSpace at the cap.
  Status Grow();
  /// Validates `runs` and lowers them into `io_slices_`.
  Status CollectSlices(std::span<const PageRun> runs, bool write);
  /// Releases deferred frees that have come due.
  Status ReleaseDue();

  struct PendingFree {
    uint64_t due;  ///< alloc_counter_ value at which this releases.
    uint64_t first;
    uint64_t count;
  };

  sim::BlockDevice* device_;
  PageFileOptions options_;
  GamBitmap gam_;
  uint64_t file_extents_ = 0;
  uint64_t capacity_extents_ = 0;
  PageFileStats stats_;
  std::vector<PendingFree> pending_;  ///< FIFO by due time.
  uint64_t pending_extents_ = 0;
  uint64_t alloc_counter_ = 0;
  uint64_t scan_cursor_ = 0;  ///< GAM scan hint (last allocation end).
  /// Scratch for the vectored submissions (reused across calls).
  std::vector<sim::IoSlice> io_slices_;
  /// Scratch for pool-routed submissions.
  std::vector<sim::CacheSlice> cache_slices_;
  /// Batch-plan scratch loaned out via plan_scratch().
  std::vector<PageRun> plan_scratch_;
};

}  // namespace db
}  // namespace lor

#endif  // LOREPO_DB_PAGE_FILE_H_
