#include "db/gam.h"

#include <bit>

namespace lor {
namespace db {

GamBitmap::GamBitmap(uint64_t capacity_extents) : capacity_(capacity_extents) {
  bits_.assign((capacity_ + 63) / 64, 0);
  summary_.assign((bits_.size() + 63) / 64, 0);
}

void GamBitmap::SetFree(uint64_t extent) {
  const uint64_t word = extent / 64;
  bits_[word] |= 1ULL << (extent % 64);
  summary_[word / 64] |= 1ULL << (word % 64);
}

void GamBitmap::ClearFree(uint64_t extent) {
  const uint64_t word = extent / 64;
  bits_[word] &= ~(1ULL << (extent % 64));
  if (bits_[word] == 0) {
    summary_[word / 64] &= ~(1ULL << (word % 64));
  }
}

Status GamBitmap::Release(uint64_t first, uint64_t count) {
  if (first + count > capacity_) {
    return Status::InvalidArgument("release beyond GAM capacity");
  }
  for (uint64_t e = first; e < first + count; ++e) {
    if (IsFree(e)) return Status::InvalidArgument("double release of extent");
  }
  for (uint64_t e = first; e < first + count; ++e) SetFree(e);
  free_count_ += count;
  return Status::OK();
}

bool GamBitmap::IsFree(uint64_t extent) const {
  if (extent >= capacity_) return false;
  return (bits_[extent / 64] >> (extent % 64)) & 1;
}

uint64_t GamBitmap::FindLowestFree(uint64_t from) const {
  if (free_count_ == 0 || from >= capacity_) return kNoExtent;
  uint64_t word = from / 64;
  // Check the partial first word.
  if (word < bits_.size()) {
    const uint64_t masked = bits_[word] & (~0ULL << (from % 64));
    if (masked != 0) {
      return word * 64 + static_cast<uint64_t>(std::countr_zero(masked));
    }
    ++word;
  }
  // Walk the summary level from the next word group.
  uint64_t group = word / 64;
  while (group < summary_.size()) {
    uint64_t smask = summary_[group];
    if (group == word / 64) {
      // Mask off word indices below `word` within this group.
      smask &= ~0ULL << (word % 64);
    }
    if (smask != 0) {
      const uint64_t w =
          group * 64 + static_cast<uint64_t>(std::countr_zero(smask));
      const uint64_t extent =
          w * 64 + static_cast<uint64_t>(std::countr_zero(bits_[w]));
      return extent < capacity_ ? extent : kNoExtent;
    }
    ++group;
  }
  return kNoExtent;
}

void GamBitmap::MarkFree(uint64_t extent) {
  if (extent >= capacity_ || IsFree(extent)) return;
  SetFree(extent);
  ++free_count_;
}

void GamBitmap::MarkUsed(uint64_t extent) {
  if (!IsFree(extent)) return;
  ClearFree(extent);
  --free_count_;
}

uint64_t GamBitmap::AllocateLowest(uint64_t from) {
  const uint64_t extent = FindLowestFree(from);
  if (extent == kNoExtent) return kNoExtent;
  ClearFree(extent);
  --free_count_;
  return extent;
}

Status GamBitmap::AllocateSpecific(uint64_t extent) {
  if (!IsFree(extent)) return Status::NoSpace("extent not free");
  ClearFree(extent);
  --free_count_;
  return Status::OK();
}

std::pair<uint64_t, uint64_t> GamBitmap::AllocateRun(uint64_t count,
                                                     uint64_t from) {
  const uint64_t first = AllocateLowest(from);
  if (first == kNoExtent) return {kNoExtent, 0};
  uint64_t length = 1;
  while (length < count && IsFree(first + length)) {
    ClearFree(first + length);
    --free_count_;
    ++length;
  }
  return {first, length};
}

Status GamBitmap::CheckConsistency() const {
  uint64_t free_bits = 0;
  for (size_t w = 0; w < bits_.size(); ++w) {
    free_bits += static_cast<uint64_t>(std::popcount(bits_[w]));
    const bool summary_bit = (summary_[w / 64] >> (w % 64)) & 1;
    if (summary_bit != (bits_[w] != 0)) {
      return Status::Corruption("summary level disagrees with bitmap");
    }
  }
  if (free_bits != free_count_) {
    return Status::Corruption("free count disagrees with bitmap");
  }
  // Bits beyond capacity must never be set.
  for (uint64_t e = capacity_; e < bits_.size() * 64; ++e) {
    if ((bits_[e / 64] >> (e % 64)) & 1) {
      return Status::Corruption("free bit beyond capacity");
    }
  }
  return Status::OK();
}

}  // namespace db
}  // namespace lor
