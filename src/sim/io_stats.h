// Counters describing the I/O a BlockDevice has performed.

#ifndef LOREPO_SIM_IO_STATS_H_
#define LOREPO_SIM_IO_STATS_H_

#include <cstdint>
#include <span>
#include <string>

#include "util/config.h"  // C++20 floor guard (std::span above)

namespace lor {
namespace sim {

/// Cumulative device activity. Snapshot-and-subtract to measure a phase.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t seeks = 0;            ///< Requests that required head movement.
  uint64_t sequential_hits = 0;  ///< Requests that continued the last one.
  /// ReadV/WriteV submissions that carried at least one run. Each batch
  /// replaces what used to be one device call per contiguous run.
  uint64_t vectored_requests = 0;
  /// Physically contiguous runs carried by those vectored submissions
  /// (each still charged as its own request; positioning is paid only
  /// where a run does not continue the previous one).
  uint64_t coalesced_runs = 0;
  double seek_time_s = 0.0;
  double rotational_time_s = 0.0;
  double transfer_time_s = 0.0;
  double busy_time_s = 0.0;      ///< Total device time including overheads.
  /// Shared-spindle contention accounting. When several owners' volumes
  /// share one head (SpindlePlane), a seek charged because the *previous*
  /// request on the spindle belonged to a different owner is interference:
  /// it would not have been paid on a dedicated spindle. Zero in dedicated
  /// mode by construction.
  uint64_t interference_seeks = 0;
  double interference_seek_time_s = 0.0;  ///< Seek+rotational part of those.
  /// Simulated seconds ops spent queued before the head started serving
  /// them (completion - arrival - chain busy time). Accumulated by the
  /// scheduler/plane, not by the device proper.
  double queue_wait_s = 0.0;
  /// Media-fault accounting (sim/media_fault.h). Typed read failures
  /// returned by this device, and the requests/extra seconds charged
  /// for degraded (slow) regions. All zero without an armed model.
  uint64_t media_read_errors = 0;
  uint64_t degraded_requests = 0;
  double degraded_time_s = 0.0;

  IoStats operator-(const IoStats& other) const;
  IoStats& operator+=(const IoStats& other);
  IoStats operator+(const IoStats& other) const;

  std::string ToString() const;
};

/// Exact elementwise sum of per-device counters — the merge helper for
/// aggregate figures over per-shard devices (integer counters add
/// exactly; the double-valued times accumulate in input order, so a
/// fixed shard order gives bit-stable aggregates).
IoStats Sum(std::span<const IoStats> parts);

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_IO_STATS_H_
