#include "sim/disk_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lor {
namespace sim {

DiskParams DiskParams::St3400832as() {
  DiskParams p;
  p.capacity_bytes = 400 * kGiB;
  p.rpm = 7200.0;
  p.min_seek_s = 0.0008;
  p.max_seek_s = 0.017;   // ~8.5 ms average seek.
  p.outer_bandwidth = 65.0 * 1e6;
  p.inner_bandwidth = 35.0 * 1e6;
  p.num_zones = 16;
  return p;
}

DiskParams DiskParams::WithCapacity(uint64_t bytes) const {
  DiskParams p = *this;
  p.capacity_bytes = bytes;
  return p;
}

std::string DiskParams::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s, %.0f rpm, seek %.1f-%.1f ms, media %.0f-%.0f MB/s, "
                "%u zones",
                FormatBytes(capacity_bytes).c_str(), rpm, min_seek_s * 1e3,
                max_seek_s * 1e3, outer_bandwidth / 1e6, inner_bandwidth / 1e6,
                num_zones);
  return buf;
}

DiskModel::DiskModel(DiskParams params) : params_(params) {
  zone_size_bytes_ =
      std::max<uint64_t>(1, params_.capacity_bytes / params_.num_zones);
}

double DiskModel::SeekTime(uint64_t from_byte, uint64_t to_byte) const {
  if (from_byte == to_byte) return 0.0;
  const uint64_t distance =
      from_byte > to_byte ? from_byte - to_byte : to_byte - from_byte;
  const double d = std::min(
      1.0, static_cast<double>(distance) /
               static_cast<double>(params_.capacity_bytes));
  const double w = params_.seek_sqrt_weight;
  const double shape = w * std::sqrt(d) + (1.0 - w) * d;
  return params_.min_seek_s + (params_.max_seek_s - params_.min_seek_s) * shape;
}

double DiskModel::RevolutionTime() const { return 60.0 / params_.rpm; }

double DiskModel::RotationalLatency() const { return RevolutionTime() / 2.0; }

uint32_t DiskModel::ZoneOf(uint64_t byte_offset) const {
  const uint64_t zone = byte_offset / zone_size_bytes_;
  return static_cast<uint32_t>(
      std::min<uint64_t>(zone, params_.num_zones - 1));
}

double DiskModel::BandwidthAt(uint64_t byte_offset) const {
  const uint32_t zone = ZoneOf(byte_offset);
  if (params_.num_zones <= 1) return params_.outer_bandwidth;
  const double t =
      static_cast<double>(zone) / static_cast<double>(params_.num_zones - 1);
  return params_.outer_bandwidth +
         t * (params_.inner_bandwidth - params_.outer_bandwidth);
}

double DiskModel::TransferTime(uint64_t byte_offset, uint64_t nbytes) const {
  double total = 0.0;
  uint64_t pos = byte_offset;
  uint64_t remaining = nbytes;
  while (remaining > 0) {
    const uint64_t zone_end = (pos / zone_size_bytes_ + 1) * zone_size_bytes_;
    const uint64_t chunk = std::min(remaining, zone_end - pos);
    total += static_cast<double>(chunk) / BandwidthAt(pos);
    pos += chunk;
    remaining -= chunk;
  }
  return total;
}

}  // namespace sim
}  // namespace lor
