// Fixed software-stack costs charged per repository operation.
//
// The paper's client ran C# over the SQL client stack (database) and over
// a UNC path through the SMB redirector (filesystem). Those stacks
// contribute per-operation latencies and cap effective streaming
// bandwidth; neither effect comes from disk layout, so they are modelled
// as explicit constants here rather than emerging from the device model.
// The defaults are calibrated so a clean (bulk-loaded) store reproduces
// the paper's Figure 1 / Figure 4 ordering:
//   * database reads win below ~1 MB (cheap query vs. expensive open),
//   * filesystem reads win at 10 MB (higher streaming cap),
//   * database bulk-load writes beat filesystem safe-writes (17.7 vs
//     10.1 MB/s at 512 KB).

#ifndef LOREPO_SIM_OP_COST_MODEL_H_
#define LOREPO_SIM_OP_COST_MODEL_H_

#include <algorithm>
#include <cstdint>

namespace lor {
namespace sim {

/// Per-operation software costs, seconds and bytes/second.
struct OpCostModel {
  // --- Filesystem path (NTFS via UNC share) ---
  /// CreateFile/open CPU through the SMB redirector (the "file opens are
  /// CPU expensive" folklore). The MFT record read/write I/O is charged
  /// separately by the FileStore and adds the positioning cost.
  double fs_open_s = 0.010;
  /// Close + handle teardown.
  double fs_close_s = 0.001;
  /// ReplaceFile/rename metadata transaction CPU.
  double fs_rename_s = 0.002;
  /// Effective streaming cap through the 2006 SMB stack.
  double fs_stream_bandwidth = 30.0 * 1e6;

  // --- Database path (SQL Server client stack) ---
  /// Query parse/plan/row lookup for one get/put statement.
  double db_query_s = 0.009;
  /// Commit processing (log record to the dedicated log drive).
  double db_commit_s = 0.001;
  /// BLOB read streaming cap (client interface chunking; the paper's
  /// folklore: "database client interfaces are not designed for large
  /// objects").
  double db_read_stream_bandwidth = 23.0 * 1e6;
  /// BLOB write streaming cap (the bulk insert path is cheaper per byte).
  double db_write_stream_bandwidth = 30.0 * 1e6;
  /// CPU per 8 KB page traversed in the large-object B-tree.
  double db_per_page_cpu_s = 0.000002;

  /// Extra seconds implied by a bandwidth cap: the stack cannot move
  /// `len` bytes faster than `cap`, while the device itself took
  /// `device_seconds`; the difference is charged as CPU.
  static double StreamPenalty(uint64_t len, double cap,
                              double device_seconds) {
    const double stack_seconds = static_cast<double>(len) / cap;
    return std::max(0.0, stack_seconds - device_seconds);
  }
};

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_OP_COST_MODEL_H_
