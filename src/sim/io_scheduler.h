// IoScheduler: asynchronous submission/completion front end for one
// BlockDevice — the refactor from call-returns-when-charged to
// submit/complete.
//
// Model. Repository operations are bracketed by OpScope markers. In
// synchronous mode (the default; never engaged, or engaged at nothing)
// the scope just stamps the device clock at the boundaries and records
// the op's latency — the historical charging path is untouched and
// every figure stays bit-identical. When the scheduler is *engaged* at
// queue depth N, the device routes charges made inside an op scope into
// the op's request chain instead of advancing the clock, and the
// scheduler replays chains against the device on a separate event
// timeline:
//
//   * Closed loop: N logical clients. An op's arrival time is the
//     completion time of the slot it reuses (the earliest-freeing
//     slot), so at most N ops are in flight, exactly an application
//     keeping N requests outstanding with zero think time.
//   * Chains: requests within one op service in submission order (the
//     op's own program order — a safe write must write before it
//     fsyncs). CPU charges and stream-penalty windows attach to the
//     chain and extend the op without occupying the device.
//   * Device: one request at a time. Among the ready chain fronts the
//     scheduler picks FIFO (submission order) or SPTF (NCQ-style
//     shortest positioning time from the current head, ties broken by
//     submission order). Positioning is charged in *actual service
//     order* — an interleaved service order pays the seeks the
//     interleaving causes, which is how queueing delay and head
//     interference become visible in simulated time.
//
// Data plane note: payload bytes move at submission time, in host
// program order, so reads always observe the host-order store contents;
// only the *timing* is deferred. Scratch buffers reused across
// in-flight ops therefore behave as they do synchronously.
//
// Determinism: everything is integer/double arithmetic over the same
// submission sequence — no host time, no randomness — so a given
// (workload, queue depth, policy) triple always produces the same
// service order, clock, and histograms.
//
// Threading: an IoScheduler is confined to its device's thread, like
// the device itself. Cross-shard latency aggregation merges
// LatencyRecorder snapshots after the phase barrier.
//
// Port mode (shared spindles): `AttachSpindle` re-homes the scheduler
// onto a device-owned sim::SpindlePlane as owner `owner`. Ops are then
// ALWAYS queued (even at depth 1): each sealed op chain joins a local
// batch, batches of `queue_depth` ops are delivered to the plane, and
// the plane services interleaved rounds — one batch per owner — against
// the shared head with a deterministic (seed, round) interleave. The
// thread-confinement contract relaxes to: submission stays on the
// owner's thread; servicing happens under the plane's lock on whichever
// owner thread drives it. `Settle`/`SettlePhase` are the port-mode
// drain: deliver the partial batch, fence, and wait until the plane has
// serviced everything this owner submitted. Single-owner planes replay
// chains with the synchronous charging arithmetic in submission order,
// so a dedicated spindle at depth 1 is bit-identical through a plane.

#ifndef LOREPO_SIM_IO_SCHEDULER_H_
#define LOREPO_SIM_IO_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <queue>
#include <vector>

#include "sim/latency_recorder.h"
#include "util/status.h"

namespace lor {
namespace sim {

class BlockDevice;
class SpindlePlane;

/// Completion callback for the Submit/SubmitV device API: receives the
/// simulated time at which the submission completed and its typed
/// status. Requests that reach the device (or a queue) always complete
/// OK; a submission refused by the media-fault model fires the
/// completion once, immediately, with the typed error it also returns.
using IoCompletion = std::function<void(double completion_s, const Status& status)>;

/// Per-device submission queue and service-order scheduler.
class IoScheduler {
 public:
  /// `recorder` may be null (no latency accounting). The scheduler
  /// keeps raw pointers; both must outlive it.
  IoScheduler(BlockDevice* device, LatencyRecorder* recorder);
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  /// Engages asynchronous mode at `queue_depth` ops in flight.
  /// Drains any previous state first; fails inside an op scope.
  Status Engage(uint32_t queue_depth, SchedPolicy policy = SchedPolicy::kSptf);

  /// Drains and returns to the synchronous path. In port mode the
  /// scheduler never truly runs synchronously — depth 1 just means one
  /// op per delivered batch — but the sync/async figure semantics are
  /// preserved because a single-owner plane replays chains with the
  /// synchronous arithmetic.
  Status Disengage();

  // -- Port mode (shared spindles) -------------------------------------

  /// Re-homes this scheduler onto `plane` as `owner`. The device must
  /// be an owner view of the plane's hub. Callable once, outside any op
  /// scope, before any async engagement. The plane must outlive the
  /// scheduler.
  void AttachSpindle(SpindlePlane* plane, uint32_t owner);

  bool port_mode() const { return plane_ != nullptr; }

  /// Current simulated time from this owner's perspective: the device
  /// clock in dedicated mode, the owner's closed-loop completion
  /// frontier in port mode.
  double Now() const;

  /// Port mode: delivers the partial batch and fences — returns once
  /// the plane has serviced everything this owner submitted. A no-op
  /// in dedicated mode. Callable only between ops.
  void Settle();

  /// Like Settle but marks a phase boundary: the owner parks at the
  /// fence, and when every live owner has parked the plane resets its
  /// closed-loop epoch so the next phase starts aligned. Workload
  /// runners call this via ObjectRepository::SettleIo before reading
  /// phase-end clocks.
  void SettlePhase();

  /// Services every queued request and advances the device clock to the
  /// completion horizon. Callable only between ops.
  void Drain();

  /// Discards every queued request without servicing or charging it and
  /// returns to the synchronous path — the power just died. Queued
  /// completions never fire and tagged writes are never reported
  /// serviced (the FaultInjector classifies them as lost). Callable
  /// only between ops; the crash harness invokes it after
  /// FaultInjector::MaterializeCrash and before mount-time recovery.
  void Abandon();

  bool engaged() const { return engaged_; }
  uint32_t queue_depth() const { return queue_depth_; }
  SchedPolicy policy() const { return policy_; }
  LatencyRecorder* recorder() { return recorder_; }

  // -- Op lifecycle (driven by OpScope) --------------------------------

  /// Opens an op. In async mode this is the closed-loop admission
  /// point: when all slots are busy, queued work is serviced until one
  /// frees, and the op arrives at that completion time. Nested calls
  /// attach to the outermost op.
  void BeginOp(OpClass cls);

  /// Closes the current op (records sync latency / seals the chain).
  void EndOp();

  /// True when the device should queue charges instead of applying
  /// them: engaged (or ported) and inside an op scope.
  bool ShouldQueue() const {
    return (engaged_ || plane_ != nullptr) && op_depth_ > 0;
  }

  // -- Charge intake from the device (async mode only) -----------------

  /// `tag` is the FaultInjector completion tag (0 = untracked); it is
  /// reported back to the device when the request is serviced.
  void EnqueueRequest(bool write, uint64_t offset, uint64_t len,
                      IoCompletion done, uint64_t tag = 0);
  void EnqueueFlush();
  void EnqueueCpu(double seconds);
  void EnqueueWindowBegin();
  void EnqueueWindowEnd(uint64_t len, double bandwidth_cap);

  // -- Introspection (tests) -------------------------------------------

  uint64_t completed_ops() const { return completed_ops_; }
  uint64_t serviced_requests() const { return serviced_requests_; }
  /// Ops admitted and not yet completed.
  uint32_t inflight_ops() const;

  // -- Wire types (shared with SpindlePlane) ---------------------------

  struct Request {
    enum class Kind : uint8_t { kIo, kFlush, kCpu, kWinBegin, kWinEnd };
    Kind kind = Kind::kIo;
    bool write = false;
    uint64_t offset = 0;
    uint64_t len = 0;
    double cpu_s = 0.0;   // kCpu
    double cap = 0.0;     // kWinEnd: bandwidth cap (bytes/s)
    uint64_t seq = 0;     // global submission order (FIFO + tie-break)
    uint64_t tag = 0;     // fault-injector tag (0 = untracked)
    IoCompletion done;    // fires at service completion
  };

  /// One in-flight operation and its request chain.
  struct Op {
    OpClass cls = OpClass::kControl;
    double arrival = 0.0;      // slot reuse time (closed loop)
    double ready = 0.0;        // completion time of the serviced prefix
    double busy = 0.0;         // serviced seconds (device + cpu + penalties)
    double window_base = 0.0;  // `busy` at the open stream window's start
    std::deque<Request> chain;
  };

 private:
  friend class SpindlePlane;  // Publishes completion counters at service.

  /// Port mode: hands the accumulated batch to the plane (no-op when
  /// empty).
  void DeliverBatch();

  /// Consumes any non-device entries at the chain front (CPU, window
  /// markers): they extend the op without occupying the device.
  void SettleFront(Op* op);

  /// Completion bookkeeping: latency record, horizon, freed slot.
  void CompleteOp(const Op& op);

  /// Services exactly one device request (the scheduling decision);
  /// false when nothing is pending.
  bool ServiceOne();

  /// Seals the op being built and moves it to the pending list (or
  /// completes it outright when its chain is already empty).
  void SealCurrentOp();

  BlockDevice* device_;
  LatencyRecorder* recorder_;

  bool engaged_ = false;
  uint32_t queue_depth_ = 1;
  SchedPolicy policy_ = SchedPolicy::kSptf;

  // Op-scope state (both modes).
  int op_depth_ = 0;
  OpClass sync_class_ = OpClass::kControl;
  double sync_t0_ = 0.0;

  // Async state.
  bool building_open_ = false;
  Op building_;                 // op currently accepting requests
  std::list<Op> pending_;       // sealed ops with unserviced chains
  double device_free_ = 0.0;    // absolute time the device frees up
  double horizon_ = 0.0;        // latest completion seen
  uint32_t allocated_slots_ = 0;
  /// Completion times of freed, not-yet-reused slots (earliest first).
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      free_slots_;
  uint64_t next_seq_ = 0;
  uint64_t completed_ops_ = 0;
  uint64_t serviced_requests_ = 0;

  // Port-mode state.
  SpindlePlane* plane_ = nullptr;
  uint32_t port_owner_ = 0;
  std::vector<Op> batch_;  // sealed ops awaiting delivery to the plane
};

/// RAII op-boundary marker for repository operations. Constructing with
/// a null scheduler is a no-op, so wrapper back ends without a pipeline
/// need no special casing.
class OpScope {
 public:
  OpScope(IoScheduler* scheduler, OpClass cls) : scheduler_(scheduler) {
    if (scheduler_ != nullptr) scheduler_->BeginOp(cls);
  }
  ~OpScope() {
    if (scheduler_ != nullptr) scheduler_->EndOp();
  }

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  IoScheduler* scheduler_;
};

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_IO_SCHEDULER_H_
