#include "sim/block_device.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace lor {
namespace sim {

namespace {

/// Shared all-zeros slab backing ReadView/ReadChunk over unwritten
/// ranges (and every range in kMetadataOnly mode). Read-only by
/// contract; allocated once per process.
const uint8_t* ZeroSlab() {
  static const std::unique_ptr<uint8_t[]> zero(
      new uint8_t[BlockDevice::kSlabBytes]());
  return zero.get();
}

}  // namespace

/// Level-2 of the arena page table: a fixed span of lazily allocated
/// contiguous slab extents.
struct BlockDevice::SlabGroup {
  std::array<std::unique_ptr<uint8_t[]>, kSlabsPerGroup> slabs;
};

BlockDevice::BlockDevice(DiskParams params, DataMode mode)
    : model_(params), mode_(mode) {
  if (mode_ == DataMode::kRetain) {
    const uint64_t slabs = (capacity() + kSlabBytes - 1) / kSlabBytes;
    groups_.resize((slabs + kSlabsPerGroup - 1) / kSlabsPerGroup);
  }
}

BlockDevice::~BlockDevice() = default;

uint8_t* BlockDevice::SlabAt(uint64_t slab_index) const {
  const uint64_t group = slab_index / kSlabsPerGroup;
  if (group >= groups_.size() || groups_[group] == nullptr) return nullptr;
  return groups_[group]->slabs[slab_index % kSlabsPerGroup].get();
}

uint8_t* BlockDevice::EnsureSlab(uint64_t slab_index) {
  const uint64_t group = slab_index / kSlabsPerGroup;
  if (group >= groups_.size()) return nullptr;  // Beyond capacity: dropped.
  if (groups_[group] == nullptr) {
    groups_[group] = std::make_unique<SlabGroup>();
  }
  std::unique_ptr<uint8_t[]>& slab =
      groups_[group]->slabs[slab_index % kSlabsPerGroup];
  if (slab == nullptr) slab.reset(new uint8_t[kSlabBytes]());  // Zero-filled.
  return slab.get();
}

const uint8_t* BlockDevice::ReadChunk(uint64_t offset, uint64_t len,
                                      uint64_t* chunk) const {
  const uint64_t in_slab = offset % kSlabBytes;
  *chunk = std::min(len, kSlabBytes - in_slab);
  const uint8_t* base = SlabAt(offset / kSlabBytes);
  return (base != nullptr ? base : ZeroSlab()) + in_slab;
}

uint8_t* BlockDevice::WriteChunk(uint64_t offset, uint64_t len,
                                 uint64_t* chunk) {
  const uint64_t in_slab = offset % kSlabBytes;
  *chunk = std::min(len, kSlabBytes - in_slab);
  if (mode_ != DataMode::kRetain) return nullptr;
  uint8_t* base = EnsureSlab(offset / kSlabBytes);
  return base == nullptr ? nullptr : base + in_slab;
}

Status BlockDevice::CheckRange(uint64_t offset, uint64_t len) const {
  if (offset > capacity() || len > capacity() - offset) {
    return Status::InvalidArgument("request beyond device capacity");
  }
  return Status::OK();
}

void BlockDevice::ChargePositioning(uint64_t offset, uint64_t len) {
  double t = model_.params().per_request_overhead_s;
  if (head_valid_ && offset == head_) {
    ++stats_.sequential_hits;
  } else {
    const double seek = model_.SeekTime(head_valid_ ? head_ : 0, offset);
    const double rot = model_.RotationalLatency();
    stats_.seek_time_s += seek;
    stats_.rotational_time_s += rot;
    t += seek + rot;
    ++stats_.seeks;
  }
  const double transfer = model_.TransferTime(offset, len);
  stats_.transfer_time_s += transfer;
  t += transfer;
  stats_.busy_time_s += t;
  clock_.Advance(t);
  head_ = offset + len;
  head_valid_ = true;
}

void BlockDevice::StoreBytes(uint64_t offset, const uint8_t* src,
                             uint64_t len) {
  while (len > 0) {
    uint64_t chunk = 0;
    uint8_t* dst = WriteChunk(offset, len, &chunk);
    if (dst != nullptr) {
      if (src != nullptr) {
        std::memcpy(dst, src, chunk);
        src += chunk;
      } else {
        std::memset(dst, 0, chunk);
      }
    }
    offset += chunk;
    len -= chunk;
  }
}

void BlockDevice::LoadBytesInto(uint64_t offset, uint8_t* dst,
                                uint64_t len) const {
  while (len > 0) {
    const uint64_t in_slab = offset % kSlabBytes;
    const uint64_t chunk = std::min(len, kSlabBytes - in_slab);
    const uint8_t* base = SlabAt(offset / kSlabBytes);
    if (base != nullptr) {
      std::memcpy(dst, base + in_slab, chunk);
    } else {
      std::memset(dst, 0, chunk);
    }
    dst += chunk;
    offset += chunk;
    len -= chunk;
  }
}

Status BlockDevice::Write(uint64_t offset, uint64_t len,
                          std::span<const uint8_t> data) {
  LOR_RETURN_IF_ERROR(CheckRange(offset, len));
  if (!data.empty() && data.size() != len) {
    return Status::InvalidArgument("data size does not match request length");
  }
  if (len == 0) return Status::OK();  // No bytes: no charge, no head move.
  ChargePositioning(offset, len);
  ++stats_.writes;
  stats_.bytes_written += len;
  if (mode_ == DataMode::kRetain) {
    StoreBytes(offset, data.empty() ? nullptr : data.data(), len);
  }
  return Status::OK();
}

Status BlockDevice::Read(uint64_t offset, uint64_t len,
                         std::vector<uint8_t>* out) {
  LOR_RETURN_IF_ERROR(CheckRange(offset, len));
  if (len == 0) {
    if (out != nullptr) out->clear();
    return Status::OK();
  }
  ChargePositioning(offset, len);
  ++stats_.reads;
  stats_.bytes_read += len;
  if (out != nullptr) {
    // Reuse the caller's capacity; every byte of the range is then
    // written exactly once (memcpy where backed, memset where not), so
    // no assign()-style zero-fill precedes the copy.
    out->resize(len);
    LoadBytesInto(offset, out->data(), len);
  }
  return Status::OK();
}

Status BlockDevice::ReadV(std::span<const IoSlice> slices) {
  for (const IoSlice& s : slices) {
    LOR_RETURN_IF_ERROR(CheckRange(s.offset, s.length));
  }
  bool charged = false;
  for (const IoSlice& s : slices) {
    if (s.length == 0) continue;
    ChargePositioning(s.offset, s.length);
    ++stats_.reads;
    stats_.bytes_read += s.length;
    ++stats_.coalesced_runs;
    charged = true;
    if (s.dst != nullptr) LoadBytesInto(s.offset, s.dst, s.length);
  }
  if (charged) ++stats_.vectored_requests;
  return Status::OK();
}

Status BlockDevice::WriteV(std::span<const IoSlice> slices) {
  for (const IoSlice& s : slices) {
    LOR_RETURN_IF_ERROR(CheckRange(s.offset, s.length));
  }
  bool charged = false;
  for (const IoSlice& s : slices) {
    if (s.length == 0) continue;
    ChargePositioning(s.offset, s.length);
    ++stats_.writes;
    stats_.bytes_written += s.length;
    ++stats_.coalesced_runs;
    charged = true;
    if (mode_ == DataMode::kRetain) StoreBytes(s.offset, s.src, s.length);
  }
  if (charged) ++stats_.vectored_requests;
  return Status::OK();
}

void BlockDevice::Flush() {
  head_valid_ = false;
  stats_.busy_time_s += kFlushCost;
  clock_.Advance(kFlushCost);
}

void BlockDevice::ChargeCpu(double seconds) { clock_.Advance(seconds); }

}  // namespace sim
}  // namespace lor
