#include "sim/block_device.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>

#include "sim/fault_injector.h"
#include "sim/media_fault.h"
#include "sim/op_cost_model.h"

namespace lor {
namespace sim {

namespace {

/// Shared all-zeros slab backing ReadView/ReadChunk over unwritten
/// ranges (and every range in kMetadataOnly mode). Read-only by
/// contract; allocated once per process.
const uint8_t* ZeroSlab() {
  static const std::unique_ptr<uint8_t[]> zero(
      new uint8_t[BlockDevice::kSlabBytes]());
  return zero.get();
}

}  // namespace

/// Level-2 of the arena page table: a fixed span of lazily allocated
/// contiguous slab extents.
struct BlockDevice::SlabGroup {
  std::array<std::unique_ptr<uint8_t[]>, kSlabsPerGroup> slabs;
};

/// Deep copy of the arena's allocated slabs, group table and all.
struct ArenaSnapshot::Rep {
  std::vector<std::unique_ptr<BlockDevice::SlabGroup>> groups;
};

ArenaSnapshot::ArenaSnapshot() : rep_(std::make_unique<Rep>()) {}
ArenaSnapshot::~ArenaSnapshot() = default;
ArenaSnapshot::ArenaSnapshot(ArenaSnapshot&&) noexcept = default;
ArenaSnapshot& ArenaSnapshot::operator=(ArenaSnapshot&&) noexcept = default;

ArenaSnapshot BlockDevice::SnapshotArena() const {
  ArenaSnapshot snapshot;
  snapshot.rep_->groups.resize(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g] == nullptr) continue;
    auto group = std::make_unique<SlabGroup>();
    for (size_t s = 0; s < kSlabsPerGroup; ++s) {
      const uint8_t* slab = groups_[g]->slabs[s].get();
      if (slab == nullptr) continue;
      group->slabs[s].reset(new uint8_t[kSlabBytes]);
      std::memcpy(group->slabs[s].get(), slab, kSlabBytes);
    }
    snapshot.rep_->groups[g] = std::move(group);
  }
  return snapshot;
}

void BlockDevice::RestoreArena(const ArenaSnapshot& snapshot) {
  for (size_t g = 0; g < groups_.size(); ++g) {
    const SlabGroup* from = g < snapshot.rep_->groups.size()
                                ? snapshot.rep_->groups[g].get()
                                : nullptr;
    if (from == nullptr) {
      groups_[g].reset();  // Written since the snapshot: back to zeros.
      continue;
    }
    if (groups_[g] == nullptr) groups_[g] = std::make_unique<SlabGroup>();
    for (size_t s = 0; s < kSlabsPerGroup; ++s) {
      const uint8_t* slab = from->slabs[s].get();
      if (slab == nullptr) {
        groups_[g]->slabs[s].reset();
        continue;
      }
      if (groups_[g]->slabs[s] == nullptr) {
        groups_[g]->slabs[s].reset(new uint8_t[kSlabBytes]);
      }
      std::memcpy(groups_[g]->slabs[s].get(), slab, kSlabBytes);
    }
  }
}

void BlockDevice::AttachMediaFaults(MediaFaultModel* media) {
  media_ = media;
  if (media_ != nullptr) media_->RegisterDevice(this);
}

Status BlockDevice::CheckMediaRead(uint64_t offset, uint64_t len) {
  if (media_ == nullptr) return Status::OK();
  Status s = media_->CheckRead(this, offset, len);
  if (!s.ok()) ++stats_.media_read_errors;
  return s;
}

void BlockDevice::NoteMediaWrite(uint64_t offset, uint64_t len) {
  if (media_ != nullptr) media_->NoteWrite(this, offset, len);
}

uint64_t BlockDevice::NoteWriteSubmission(uint64_t offset, uint64_t len) {
  if (injector_ == nullptr) return 0;
  return injector_->RecordWrite(this, offset, len);
}

void BlockDevice::NoteWriteServiced(uint64_t tag) {
  if (tag != 0 && injector_ != nullptr) injector_->MarkServiced(tag);
}

BlockDevice::BlockDevice(DiskParams params, DataMode mode)
    : model_(params), mode_(mode) {
  if (mode_ == DataMode::kRetain) {
    const uint64_t slabs = (capacity() + kSlabBytes - 1) / kSlabBytes;
    groups_.resize((slabs + kSlabsPerGroup - 1) / kSlabsPerGroup);
  }
}

BlockDevice::~BlockDevice() = default;

std::unique_ptr<BlockDevice> BlockDevice::CreateOwnerView(
    int32_t owner, uint64_t base, uint64_t region_bytes) {
  DiskParams region_params = model_.params();
  region_params.capacity_bytes = region_bytes;
  auto view =
      std::unique_ptr<BlockDevice>(new BlockDevice(region_params, mode_));
  view->groups_.clear();  // Retained bytes live in the hub's arena.
  view->spindle_ = this;
  view->spindle_base_ = base;
  view->spindle_owner_ = owner;
  return view;
}

void BlockDevice::PreallocateArenaGroups() {
  if (mode_ != DataMode::kRetain) return;
  for (auto& group : groups_) {
    if (group == nullptr) group = std::make_unique<SlabGroup>();
  }
}

uint8_t* BlockDevice::SlabAt(uint64_t slab_index) const {
  if (spindle_ != nullptr) {
    return spindle_->SlabAt(slab_index + spindle_base_ / kSlabBytes);
  }
  const uint64_t group = slab_index / kSlabsPerGroup;
  if (group >= groups_.size() || groups_[group] == nullptr) return nullptr;
  return groups_[group]->slabs[slab_index % kSlabsPerGroup].get();
}

uint8_t* BlockDevice::EnsureSlab(uint64_t slab_index) {
  if (spindle_ != nullptr) {
    return spindle_->EnsureSlab(slab_index + spindle_base_ / kSlabBytes);
  }
  const uint64_t group = slab_index / kSlabsPerGroup;
  if (group >= groups_.size()) return nullptr;  // Beyond capacity: dropped.
  if (groups_[group] == nullptr) {
    groups_[group] = std::make_unique<SlabGroup>();
  }
  std::unique_ptr<uint8_t[]>& slab =
      groups_[group]->slabs[slab_index % kSlabsPerGroup];
  if (slab == nullptr) slab.reset(new uint8_t[kSlabBytes]());  // Zero-filled.
  return slab.get();
}

const uint8_t* BlockDevice::ReadChunk(uint64_t offset, uint64_t len,
                                      uint64_t* chunk) const {
  const uint64_t in_slab = offset % kSlabBytes;
  *chunk = std::min(len, kSlabBytes - in_slab);
  const uint8_t* base = SlabAt(offset / kSlabBytes);
  return (base != nullptr ? base : ZeroSlab()) + in_slab;
}

uint8_t* BlockDevice::WriteChunk(uint64_t offset, uint64_t len,
                                 uint64_t* chunk) {
  const uint64_t in_slab = offset % kSlabBytes;
  *chunk = std::min(len, kSlabBytes - in_slab);
  if (mode_ != DataMode::kRetain) return nullptr;
  uint8_t* base = EnsureSlab(offset / kSlabBytes);
  return base == nullptr ? nullptr : base + in_slab;
}

Status BlockDevice::CheckRange(uint64_t offset, uint64_t len) const {
  if (offset > capacity() || len > capacity() - offset) {
    return Status::InvalidArgument("request beyond device capacity");
  }
  return Status::OK();
}

double BlockDevice::ServiceRequest(bool /*write*/, uint64_t offset,
                                   uint64_t len) {
  // An owner view services against the hub's head, seek curve, and
  // physical zone layout; dedicated devices resolve hub == this and the
  // arithmetic below is the historical sequence unchanged.
  BlockDevice* hub = spindle_ != nullptr ? spindle_ : this;
  const uint64_t phys = spindle_base_ + offset;
  double t = hub->model_.params().per_request_overhead_s;
  if (hub->head_valid_ && phys == hub->head_) {
    ++stats_.sequential_hits;
  } else {
    const double seek =
        hub->model_.SeekTime(hub->head_valid_ ? hub->head_ : 0, phys);
    const double rot = hub->model_.RotationalLatency();
    stats_.seek_time_s += seek;
    stats_.rotational_time_s += rot;
    t += seek + rot;
    ++stats_.seeks;
    if (spindle_ != nullptr && hub->last_owner_ >= 0 &&
        hub->last_owner_ != spindle_owner_) {
      // The head was left elsewhere by another owner: this seek is
      // contention, not something a dedicated spindle would charge.
      ++stats_.interference_seeks;
      stats_.interference_seek_time_s += seek + rot;
    }
  }
  const double transfer = hub->model_.TransferTime(phys, len);
  stats_.transfer_time_s += transfer;
  t += transfer;
  if (media_ != nullptr) {
    // Degraded-region slowdown, accounted outside the seek/rotation/
    // transfer decomposition so that stays exact.
    const double extra = media_->DegradedExtra(this, offset, len, t);
    if (extra > 0.0) {
      ++stats_.degraded_requests;
      stats_.degraded_time_s += extra;
      t += extra;
    }
  }
  stats_.busy_time_s += t;
  hub->head_ = phys + len;
  hub->head_valid_ = true;
  if (spindle_ != nullptr) hub->last_owner_ = spindle_owner_;
  return t;
}

double BlockDevice::ServiceFlush() {
  BlockDevice* hub = spindle_ != nullptr ? spindle_ : this;
  hub->head_valid_ = false;
  stats_.busy_time_s += kFlushCost;
  return kFlushCost;
}

double BlockDevice::PeekPositioningCost(uint64_t offset) const {
  const BlockDevice* hub = spindle_ != nullptr ? spindle_ : this;
  const uint64_t phys = spindle_base_ + offset;
  if (hub->head_valid_ && phys == hub->head_) return 0.0;
  return hub->model_.SeekTime(hub->head_valid_ ? hub->head_ : 0, phys);
}

bool BlockDevice::AsyncActive() const {
  return scheduler_ != nullptr && scheduler_->ShouldQueue();
}

void BlockDevice::ChargePositioning(uint64_t offset, uint64_t len) {
  clock().Advance(ServiceRequest(false, offset, len));
}

void BlockDevice::StoreBytes(uint64_t offset, const uint8_t* src,
                             uint64_t len) {
  while (len > 0) {
    uint64_t chunk = 0;
    uint8_t* dst = WriteChunk(offset, len, &chunk);
    if (dst != nullptr) {
      if (src != nullptr) {
        std::memcpy(dst, src, chunk);
        src += chunk;
      } else {
        std::memset(dst, 0, chunk);
      }
    }
    offset += chunk;
    len -= chunk;
  }
}

void BlockDevice::LoadBytesInto(uint64_t offset, uint8_t* dst,
                                uint64_t len) const {
  while (len > 0) {
    const uint64_t in_slab = offset % kSlabBytes;
    const uint64_t chunk = std::min(len, kSlabBytes - in_slab);
    const uint8_t* base = SlabAt(offset / kSlabBytes);
    if (base != nullptr) {
      std::memcpy(dst, base + in_slab, chunk);
    } else {
      std::memset(dst, 0, chunk);
    }
    dst += chunk;
    offset += chunk;
    len -= chunk;
  }
}

Status BlockDevice::Write(uint64_t offset, uint64_t len,
                          std::span<const uint8_t> data) {
  LOR_RETURN_IF_ERROR(CheckRange(offset, len));
  if (!data.empty() && data.size() != len) {
    return Status::InvalidArgument("data size does not match request length");
  }
  if (len == 0) return Status::OK();  // No bytes: no charge, no head move.
  NoteMediaWrite(offset, len);
  const uint64_t tag = NoteWriteSubmission(offset, len);
  if (AsyncActive()) {
    scheduler_->EnqueueRequest(/*write=*/true, offset, len, nullptr, tag);
  } else {
    ChargePositioning(offset, len);
    NoteWriteServiced(tag);
  }
  ++stats_.writes;
  stats_.bytes_written += len;
  if (mode_ == DataMode::kRetain) {
    StoreBytes(offset, data.empty() ? nullptr : data.data(), len);
  }
  return Status::OK();
}

Status BlockDevice::Read(uint64_t offset, uint64_t len,
                         std::vector<uint8_t>* out) {
  LOR_RETURN_IF_ERROR(CheckRange(offset, len));
  if (len == 0) {
    if (out != nullptr) out->clear();
    return Status::OK();
  }
  // Media admission: a failed payload read is known before the head
  // moves — nothing is charged or queued, the caller owns retry cost.
  if (out != nullptr) LOR_RETURN_IF_ERROR(CheckMediaRead(offset, len));
  if (AsyncActive()) {
    scheduler_->EnqueueRequest(/*write=*/false, offset, len, nullptr);
  } else {
    ChargePositioning(offset, len);
  }
  ++stats_.reads;
  stats_.bytes_read += len;
  if (out != nullptr) {
    // Reuse the caller's capacity; every byte of the range is then
    // written exactly once (memcpy where backed, memset where not), so
    // no assign()-style zero-fill precedes the copy.
    out->resize(len);
    LoadBytesInto(offset, out->data(), len);
  }
  return Status::OK();
}

Status BlockDevice::ReadV(std::span<const IoSlice> slices) {
  for (const IoSlice& s : slices) {
    LOR_RETURN_IF_ERROR(CheckRange(s.offset, s.length));
  }
  // Whole-batch media admission before anything is charged: a vectored
  // read fails atomically, like its validation.
  for (const IoSlice& s : slices) {
    if (s.dst != nullptr && s.length != 0) {
      LOR_RETURN_IF_ERROR(CheckMediaRead(s.offset, s.length));
    }
  }
  bool charged = false;
  for (const IoSlice& s : slices) {
    if (s.length == 0) continue;
    if (AsyncActive()) {
      scheduler_->EnqueueRequest(/*write=*/false, s.offset, s.length, nullptr);
    } else {
      ChargePositioning(s.offset, s.length);
    }
    ++stats_.reads;
    stats_.bytes_read += s.length;
    ++stats_.coalesced_runs;
    charged = true;
    if (s.dst != nullptr) LoadBytesInto(s.offset, s.dst, s.length);
  }
  if (charged) ++stats_.vectored_requests;
  return Status::OK();
}

Status BlockDevice::WriteV(std::span<const IoSlice> slices) {
  for (const IoSlice& s : slices) {
    LOR_RETURN_IF_ERROR(CheckRange(s.offset, s.length));
  }
  bool charged = false;
  for (const IoSlice& s : slices) {
    if (s.length == 0) continue;
    NoteMediaWrite(s.offset, s.length);
    const uint64_t tag = NoteWriteSubmission(s.offset, s.length);
    if (AsyncActive()) {
      scheduler_->EnqueueRequest(/*write=*/true, s.offset, s.length, nullptr,
                                 tag);
    } else {
      ChargePositioning(s.offset, s.length);
      NoteWriteServiced(tag);
    }
    ++stats_.writes;
    stats_.bytes_written += s.length;
    ++stats_.coalesced_runs;
    charged = true;
    if (mode_ == DataMode::kRetain) StoreBytes(s.offset, s.src, s.length);
  }
  if (charged) ++stats_.vectored_requests;
  return Status::OK();
}

Status BlockDevice::Submit(const IoRequest& req, IoCompletion done) {
  LOR_RETURN_IF_ERROR(CheckRange(req.offset, req.length));
  if (req.length == 0) {
    if (done) done(clock().now(), Status::OK());
    return Status::OK();
  }
  if (!req.write && req.dst != nullptr) {
    Status media = CheckMediaRead(req.offset, req.length);
    if (!media.ok()) {
      // The completion carries the typed error too, so callers driving
      // everything off callbacks never see a silent drop.
      if (done) done(clock().now(), media);
      return media;
    }
  }
  const bool async = AsyncActive();
  if (req.write) NoteMediaWrite(req.offset, req.length);
  const uint64_t tag =
      req.write ? NoteWriteSubmission(req.offset, req.length) : 0;
  if (async) {
    scheduler_->EnqueueRequest(req.write, req.offset, req.length,
                               std::move(done), tag);
  } else {
    ChargePositioning(req.offset, req.length);
    NoteWriteServiced(tag);
  }
  if (req.write) {
    ++stats_.writes;
    stats_.bytes_written += req.length;
    if (mode_ == DataMode::kRetain) {
      StoreBytes(req.offset, req.src, req.length);
    }
  } else {
    ++stats_.reads;
    stats_.bytes_read += req.length;
    if (req.dst != nullptr) LoadBytesInto(req.offset, req.dst, req.length);
  }
  if (!async && done) done(clock().now(), Status::OK());
  return Status::OK();
}

Status BlockDevice::SubmitV(std::span<const IoRequest> reqs,
                            IoCompletion done) {
  for (const IoRequest& r : reqs) {
    LOR_RETURN_IF_ERROR(CheckRange(r.offset, r.length));
  }
  // Whole-batch media admission (the ReadV rule): fail atomically with
  // nothing charged, reporting through the completion as well.
  for (const IoRequest& r : reqs) {
    if (r.write || r.dst == nullptr || r.length == 0) continue;
    Status media = CheckMediaRead(r.offset, r.length);
    if (!media.ok()) {
      if (done) done(clock().now(), media);
      return media;
    }
  }
  const bool async = AsyncActive();
  // Under the scheduler, the batch callback rides on the last nonzero
  // run — chains service in order, so its completion is the batch's.
  size_t last_nonzero = reqs.size();
  if (async && done) {
    for (size_t i = reqs.size(); i-- > 0;) {
      if (reqs[i].length != 0) {
        last_nonzero = i;
        break;
      }
    }
  }
  bool charged = false;
  for (size_t i = 0; i < reqs.size(); ++i) {
    const IoRequest& r = reqs[i];
    if (r.length == 0) continue;
    if (r.write) NoteMediaWrite(r.offset, r.length);
    const uint64_t tag =
        r.write ? NoteWriteSubmission(r.offset, r.length) : 0;
    if (async) {
      scheduler_->EnqueueRequest(
          r.write, r.offset, r.length,
          i == last_nonzero ? std::move(done) : IoCompletion(), tag);
    } else {
      ChargePositioning(r.offset, r.length);
      NoteWriteServiced(tag);
    }
    if (r.write) {
      ++stats_.writes;
      stats_.bytes_written += r.length;
      if (mode_ == DataMode::kRetain) StoreBytes(r.offset, r.src, r.length);
    } else {
      ++stats_.reads;
      stats_.bytes_read += r.length;
      if (r.dst != nullptr) LoadBytesInto(r.offset, r.dst, r.length);
    }
    ++stats_.coalesced_runs;
    charged = true;
  }
  if (charged) ++stats_.vectored_requests;
  if (done && (!async || last_nonzero == reqs.size())) {
    done(clock().now(), Status::OK());
  }
  return Status::OK();
}

void BlockDevice::Flush() {
  if (AsyncActive()) {
    scheduler_->EnqueueFlush();
    return;
  }
  clock().Advance(ServiceFlush());
}

void BlockDevice::ChargeCpu(double seconds) {
  if (AsyncActive()) {
    scheduler_->EnqueueCpu(seconds);
    return;
  }
  clock().Advance(seconds);
}

void BlockDevice::BeginStreamWindow() {
  if (AsyncActive()) {
    scheduler_->EnqueueWindowBegin();
    return;
  }
  window_t0_ = clock().now();
}

void BlockDevice::EndStreamWindow(uint64_t len,
                                  double bandwidth_cap_bytes_per_s) {
  if (AsyncActive()) {
    scheduler_->EnqueueWindowEnd(len, bandwidth_cap_bytes_per_s);
    return;
  }
  ChargeCpu(OpCostModel::StreamPenalty(len, bandwidth_cap_bytes_per_s,
                                       clock().now() - window_t0_));
}

}  // namespace sim
}  // namespace lor
