#include "sim/block_device.h"

#include <algorithm>
#include <cstring>

namespace lor {
namespace sim {

BlockDevice::BlockDevice(DiskParams params, DataMode mode)
    : model_(params), mode_(mode) {}

Status BlockDevice::CheckRange(uint64_t offset, uint64_t len) const {
  if (offset > capacity() || len > capacity() - offset) {
    return Status::InvalidArgument("request beyond device capacity");
  }
  return Status::OK();
}

void BlockDevice::ChargePositioning(uint64_t offset, uint64_t len) {
  double t = model_.params().per_request_overhead_s;
  if (head_valid_ && offset == head_) {
    ++stats_.sequential_hits;
  } else {
    const double seek = model_.SeekTime(head_valid_ ? head_ : 0, offset);
    const double rot = model_.RotationalLatency();
    stats_.seek_time_s += seek;
    stats_.rotational_time_s += rot;
    t += seek + rot;
    ++stats_.seeks;
  }
  const double transfer = model_.TransferTime(offset, len);
  stats_.transfer_time_s += transfer;
  t += transfer;
  stats_.busy_time_s += t;
  clock_.Advance(t);
  head_ = offset + len;
  head_valid_ = true;
}

void BlockDevice::StoreBytes(uint64_t offset, std::span<const uint8_t> data,
                             uint64_t len) {
  uint64_t pos = 0;
  while (pos < len) {
    const uint64_t page = (offset + pos) / kDataPageBytes;
    const uint64_t in_page = (offset + pos) % kDataPageBytes;
    const uint64_t chunk = std::min(len - pos, kDataPageBytes - in_page);
    auto& storage = pages_[page];
    if (storage.empty()) storage.resize(kDataPageBytes, 0);
    if (!data.empty()) {
      std::memcpy(storage.data() + in_page, data.data() + pos, chunk);
    } else {
      std::memset(storage.data() + in_page, 0, chunk);
    }
    pos += chunk;
  }
}

void BlockDevice::LoadBytes(uint64_t offset, uint64_t len,
                            std::vector<uint8_t>* out) {
  out->assign(len, 0);
  if (mode_ != DataMode::kRetain) return;
  uint64_t pos = 0;
  while (pos < len) {
    const uint64_t page = (offset + pos) / kDataPageBytes;
    const uint64_t in_page = (offset + pos) % kDataPageBytes;
    const uint64_t chunk = std::min(len - pos, kDataPageBytes - in_page);
    auto it = pages_.find(page);
    if (it != pages_.end()) {
      std::memcpy(out->data() + pos, it->second.data() + in_page, chunk);
    }
    pos += chunk;
  }
}

Status BlockDevice::Write(uint64_t offset, uint64_t len,
                          std::span<const uint8_t> data) {
  LOR_RETURN_IF_ERROR(CheckRange(offset, len));
  if (!data.empty() && data.size() != len) {
    return Status::InvalidArgument("data size does not match request length");
  }
  ChargePositioning(offset, len);
  ++stats_.writes;
  stats_.bytes_written += len;
  if (mode_ == DataMode::kRetain) StoreBytes(offset, data, len);
  return Status::OK();
}

Status BlockDevice::Read(uint64_t offset, uint64_t len,
                         std::vector<uint8_t>* out) {
  LOR_RETURN_IF_ERROR(CheckRange(offset, len));
  ChargePositioning(offset, len);
  ++stats_.reads;
  stats_.bytes_read += len;
  if (out != nullptr) LoadBytes(offset, len, out);
  return Status::OK();
}

void BlockDevice::Flush() {
  head_valid_ = false;
  stats_.busy_time_s += kFlushCost;
  clock_.Advance(kFlushCost);
}

void BlockDevice::ChargeCpu(double seconds) { clock_.Advance(seconds); }

}  // namespace sim
}  // namespace lor
