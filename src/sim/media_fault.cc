#include "sim/media_fault.h"

#include <algorithm>

#include "sim/block_device.h"

namespace lor {
namespace sim {

namespace {

constexpr uint64_t kSaltMix = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kRegionMix = 0xbf58476d1ce4e5b9ULL;

/// SplitMix64 finalizer: a high-quality stateless mix, so region
/// classification is a pure function of (seed, salt, region index).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits.
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

void MediaFaultModel::RegisterDevice(BlockDevice* device) {
  for (BlockDevice* d : devices_) {
    if (d == device) return;
  }
  devices_.push_back(device);
}

uint64_t MediaFaultModel::SaltFor(const BlockDevice* device) const {
  for (size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i] == device) return i + 1;
  }
  return 0;
}

MediaFaultModel::RegionClass MediaFaultModel::Classify(uint64_t salt,
                                                       uint64_t index) const {
  const uint64_t h =
      Mix(spec_.seed ^ (salt * kSaltMix) ^ (index * kRegionMix));
  const double u = ToUnit(h);
  if (u < spec_.lse_rate) {
    // A second independent draw splits transient from persistent.
    return ToUnit(Mix(h)) < spec_.transient_fraction
               ? RegionClass::kTransientLse
               : RegionClass::kPersistentLse;
  }
  if (u < spec_.lse_rate + spec_.corruption_rate) return RegionClass::kCorrupt;
  if (u < spec_.lse_rate + spec_.corruption_rate + spec_.degraded_rate) {
    return RegionClass::kDegraded;
  }
  return RegionClass::kHealthy;
}

void MediaFaultModel::CorruptDevice(BlockDevice* device, uint64_t salt) {
  if (device->data_mode() != DataMode::kRetain) return;
  const uint64_t regions =
      (device->capacity() + spec_.region_bytes - 1) / spec_.region_bytes;
  for (uint64_t r = 0; r < regions; ++r) {
    if (Classify(salt, r) != RegionClass::kCorrupt) continue;
    const uint64_t start = r * spec_.region_bytes;
    const uint64_t len =
        std::min(spec_.region_bytes, device->capacity() - start);
    uint64_t h = Mix(spec_.seed ^ (salt * kRegionMix) ^ (r * kSaltMix));
    bool touched = false;
    for (uint32_t f = 0; f < spec_.flips_per_region; ++f) {
      h = Mix(h);
      const uint64_t pos = start + (h % len);
      uint8_t* slab = device->SlabAt(pos / BlockDevice::kSlabBytes);
      if (slab == nullptr) continue;  // Never written: nothing to rot.
      slab[pos % BlockDevice::kSlabBytes] ^=
          static_cast<uint8_t>(1u << ((h >> 32) % 8));
      ++stats_.bytes_corrupted;
      touched = true;
    }
    if (touched) ++stats_.regions_corrupted;
  }
}

void MediaFaultModel::Arm(const MediaFaultSpec& spec) {
  spec_ = spec;
  if (spec_.region_bytes == 0) spec_.region_bytes = 64 * 1024;
  stats_ = MediaFaultStats{};
  state_.clear();
  armed_ = true;
  suspended_ = false;
  if (spec_.corruption_rate > 0.0) {
    for (size_t i = 0; i < devices_.size(); ++i) {
      CorruptDevice(devices_[i], i + 1);
    }
  }
}

Status MediaFaultModel::CheckRead(const BlockDevice* device, uint64_t offset,
                                  uint64_t len) {
  if (!armed_ || suspended_ || len == 0) return Status::OK();
  const uint64_t salt = SaltFor(device);
  if (salt == 0) return Status::OK();
  const uint64_t first = offset / spec_.region_bytes;
  const uint64_t last = (offset + len - 1) / spec_.region_bytes;
  for (uint64_t r = first; r <= last; ++r) {
    const RegionClass cls = Classify(salt, r);
    if (cls != RegionClass::kTransientLse &&
        cls != RegionClass::kPersistentLse) {
      continue;
    }
    const uint64_t key = (salt << 40) ^ r;
    auto [it, fresh] = state_.try_emplace(key);
    if (fresh && cls == RegionClass::kTransientLse) {
      it->second.remaining_failures = spec_.transient_failures;
    }
    RegionState& st = it->second;
    if (st.healed) continue;
    if (cls == RegionClass::kPersistentLse) {
      ++stats_.read_errors;
      return Status::IoError("latent sector error (persistent) in region " +
                             std::to_string(r));
    }
    if (st.remaining_failures > 0) {
      if (--st.remaining_failures == 0) ++stats_.transient_clears;
      ++stats_.read_errors;
      return Status::IoError("latent sector error (transient) in region " +
                             std::to_string(r));
    }
  }
  return Status::OK();
}

double MediaFaultModel::DegradedExtra(const BlockDevice* device,
                                      uint64_t offset, uint64_t len,
                                      double base_s) {
  if (!armed_ || suspended_ || len == 0 ||
      spec_.degraded_multiplier <= 1.0) {
    return 0.0;
  }
  const uint64_t salt = SaltFor(device);
  if (salt == 0) return 0.0;
  const uint64_t first = offset / spec_.region_bytes;
  const uint64_t last = (offset + len - 1) / spec_.region_bytes;
  for (uint64_t r = first; r <= last; ++r) {
    if (Classify(salt, r) != RegionClass::kDegraded) continue;
    const uint64_t key = (salt << 40) ^ r;
    auto it = state_.find(key);
    if (it != state_.end() && it->second.healed) continue;
    ++stats_.degraded_requests;
    return base_s * (spec_.degraded_multiplier - 1.0);
  }
  return 0.0;
}

void MediaFaultModel::NoteWrite(const BlockDevice* device, uint64_t offset,
                                uint64_t len) {
  if (!armed_ || len == 0) return;
  const uint64_t salt = SaltFor(device);
  if (salt == 0) return;
  const uint64_t first = offset / spec_.region_bytes;
  const uint64_t last = (offset + len - 1) / spec_.region_bytes;
  for (uint64_t r = first; r <= last; ++r) {
    const RegionClass cls = Classify(salt, r);
    if (cls != RegionClass::kTransientLse &&
        cls != RegionClass::kPersistentLse) {
      continue;
    }
    const uint64_t key = (salt << 40) ^ r;
    auto [it, fresh] = state_.try_emplace(key);
    if (fresh && cls == RegionClass::kTransientLse) {
      it->second.remaining_failures = spec_.transient_failures;
    }
    if (!it->second.healed) {
      it->second.healed = true;
      ++stats_.healed_regions;
    }
  }
}

}  // namespace sim
}  // namespace lor
