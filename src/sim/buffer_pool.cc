#include "sim/buffer_pool.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "sim/fault_injector.h"

namespace lor {
namespace sim {

namespace {

// Power-of-two buffer class helpers for the recycling free lists: a
// buffer recycled into class c has capacity >= 2^c (floor log2), so a
// taker asking ceil-log2(len) is guaranteed a large-enough buffer.
size_t TakeClass(uint64_t len) {
  return len <= 1 ? 0 : static_cast<size_t>(std::bit_width(len - 1));
}
size_t RecycleClass(uint64_t capacity) {
  return capacity <= 1 ? 0 : static_cast<size_t>(std::bit_width(capacity) - 1);
}

}  // namespace

BufferPool::BufferPool(BlockDevice* device, BufferPoolOptions options)
    : device_(device), options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  shards_.resize(options_.shards);
}

bool BufferPool::WriteBackActive() const {
  if (!options_.write_back) return false;
  const FaultInjector* injector = device_->fault_injector();
  return injector == nullptr || !injector->armed();
}

std::map<uint64_t, BufferPool::Frame>::iterator BufferPool::FirstOverlap(
    uint64_t offset, uint64_t len) {
  auto it = frames_.lower_bound(offset);
  if (it != frames_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end() > offset) it = prev;
  }
  if (it == frames_.end() || it->first >= offset + len) return frames_.end();
  return it;
}

BufferPool::Frame* BufferPool::FrameAt(uint64_t offset) {
  return const_cast<Frame*>(
      static_cast<const BufferPool*>(this)->FrameAt(offset));
}

const BufferPool::Frame* BufferPool::FrameAt(uint64_t offset) const {
  auto it = frames_.upper_bound(offset);
  if (it == frames_.begin()) return nullptr;
  const Frame& f = std::prev(it)->second;
  return f.end() > offset ? &f : nullptr;
}

bool BufferPool::Covered(uint64_t offset, uint64_t len) const {
  uint64_t pos = offset;
  const uint64_t end = offset + len;
  while (pos < end) {
    const Frame* f = FrameAt(pos);
    if (f == nullptr) return false;
    pos = f->end();
  }
  return true;
}

void BufferPool::Touch(Frame* frame) {
  frame->referenced = true;
  if (!options_.strict_lru) return;
  Shard& sh = shards_[frame->shard];
  sh.lru_index.erase(frame->lru_seq);
  frame->lru_seq = ++lru_clock_;
  sh.lru_index.emplace(frame->lru_seq, frame->offset);
}

Status BufferPool::InstallFrame(uint64_t offset, uint64_t len, Frame** out) {
  // Dirty overlaps hold bytes newer than the device: write them back
  // before they are dropped (a read fill would otherwise resurrect
  // stale device content; a partially-overlapping write would lose the
  // non-overlapped dirty bytes).
  LOR_RETURN_IF_ERROR(FlushOverlapping(offset, len));
  uint32_t inherited_pin = 0;
  for (auto it = FirstOverlap(offset, len);
       it != frames_.end() && it->first < offset + len;) {
    inherited_pin = std::max(inherited_pin, it->second.pin);
    it = DropFrame(it);
  }
  const uint32_t shard = ShardOf(offset);
  LOR_RETURN_IF_ERROR(EvictFor(shard, len));
  Frame frame;
  frame.offset = offset;
  frame.length = len;
  // Replacing a pinned frame keeps its pin (the granularity changed,
  // the protection window did not); UnpinRange guards at zero.
  frame.pin = inherited_pin;
  frame.shard = shard;
  frame.lru_seq = ++lru_clock_;
  frame.referenced = true;
  if (RetainData()) frame.data = TakeBuffer(len);
  auto [it, inserted] = frames_.emplace(offset, std::move(frame));
  Shard& sh = shards_[shard];
  sh.used_bytes += len;
  cached_bytes_ += len;
  if (options_.strict_lru) {
    sh.lru_index.emplace(it->second.lru_seq, offset);
  } else {
    sh.clock_ring.emplace_back(offset, it->second.lru_seq);
  }
  *out = &it->second;
  return Status::OK();
}

Status BufferPool::EvictFor(uint32_t shard, uint64_t incoming) {
  Shard& sh = shards_[shard];
  const uint64_t cap = ShardCapacity();
  while (sh.used_bytes + incoming > cap) {
    bool evicted = false;
    LOR_RETURN_IF_ERROR(EvictOne(shard, &evicted));
    if (!evicted) {
      // Nothing evictable (everything pinned, or the run is simply
      // larger than the domain): grow past the slice rather than fail.
      ++stats_.eviction_refusals;
      break;
    }
  }
  return Status::OK();
}

Status BufferPool::EvictOne(uint32_t shard, bool* evicted) {
  *evicted = false;
  Shard& sh = shards_[shard];
  if (options_.strict_lru) {
    for (auto it = sh.lru_index.begin(); it != sh.lru_index.end(); ++it) {
      auto fit = frames_.find(it->second);
      if (fit == frames_.end() || fit->second.lru_seq != it->first) continue;
      Frame& f = fit->second;
      if (f.pin > 0) continue;
      if (f.dirty) LOR_RETURN_IF_ERROR(WriteBackFrame(&f));
      DropFrame(fit);
      ++stats_.evictions;
      *evicted = true;
      return Status::OK();
    }
    return Status::OK();
  }
  // CLOCK: sweep the ring, clearing reference bits; pinned frames are
  // skipped, stale entries (generation mismatch) removed in passing.
  // Two full sweeps bound the scan when every frame is referenced.
  size_t scanned = 0;
  const size_t limit = sh.clock_ring.size() * 2 + 2;
  while (!sh.clock_ring.empty() && scanned < limit) {
    if (sh.hand >= sh.clock_ring.size()) sh.hand = 0;
    const auto [off, seq] = sh.clock_ring[sh.hand];
    auto fit = frames_.find(off);
    if (fit == frames_.end() || fit->second.lru_seq != seq) {
      sh.clock_ring[sh.hand] = sh.clock_ring.back();
      sh.clock_ring.pop_back();
      continue;
    }
    Frame& f = fit->second;
    if (f.pin > 0) {
      ++sh.hand;
      ++scanned;
      continue;
    }
    if (f.referenced) {
      f.referenced = false;
      ++sh.hand;
      ++scanned;
      continue;
    }
    if (f.dirty) LOR_RETURN_IF_ERROR(WriteBackFrame(&f));
    DropFrame(fit);
    sh.clock_ring[sh.hand] = sh.clock_ring.back();
    sh.clock_ring.pop_back();
    ++stats_.evictions;
    *evicted = true;
    return Status::OK();
  }
  return Status::OK();
}

std::map<uint64_t, BufferPool::Frame>::iterator BufferPool::DropFrame(
    std::map<uint64_t, Frame>::iterator it) {
  Frame& f = it->second;
  Shard& sh = shards_[f.shard];
  sh.used_bytes -= f.length;
  cached_bytes_ -= f.length;
  if (f.dirty) dirty_bytes_ -= f.length;
  if (options_.strict_lru) sh.lru_index.erase(f.lru_seq);
  if (!f.data.empty()) RecycleBuffer(std::move(f.data));
  return frames_.erase(it);
}

Status BufferPool::WriteBackFrame(Frame* frame) {
  IoRequest req;
  req.write = true;
  req.offset = frame->offset;
  req.length = frame->length;
  req.src = frame->data.empty() ? nullptr : frame->data.data();
  LOR_RETURN_IF_ERROR(device_->Submit(req));
  frame->dirty = false;
  dirty_bytes_ -= frame->length;
  ++stats_.writebacks;
  stats_.writeback_bytes += frame->length;
  return Status::OK();
}

Status BufferPool::FlushOverlapping(uint64_t offset, uint64_t len) {
  if (dirty_bytes_ == 0) return Status::OK();
  flush_requests_.clear();
  flush_frames_.clear();
  for (auto it = FirstOverlap(offset, len);
       it != frames_.end() && it->first < offset + len; ++it) {
    Frame& f = it->second;
    if (!f.dirty) continue;
    IoRequest req;
    req.write = true;
    req.offset = f.offset;
    req.length = f.length;
    req.src = f.data.empty() ? nullptr : f.data.data();
    flush_requests_.push_back(req);
    flush_frames_.push_back(&f);
  }
  if (flush_requests_.empty()) return Status::OK();
  // One offset-ordered vectored submission (map order is offset order):
  // the batch rides the IoScheduler and charges like the equivalent
  // scalar sequence, so a big flush pays one positioning per
  // contiguous dirty range.
  LOR_RETURN_IF_ERROR(device_->SubmitV(flush_requests_));
  for (Frame* f : flush_frames_) {
    f->dirty = false;
    dirty_bytes_ -= f->length;
    ++stats_.writebacks;
    stats_.writeback_bytes += f->length;
  }
  return Status::OK();
}

Status BufferPool::FlushRange(uint64_t offset, uint64_t len) {
  if (!enabled() || len == 0) return Status::OK();
  return FlushOverlapping(offset, len);
}

Status BufferPool::FlushAll() {
  if (!enabled() || dirty_bytes_ == 0) return Status::OK();
  return FlushOverlapping(0, device_->capacity());
}

std::vector<uint8_t> BufferPool::TakeBuffer(uint64_t len) {
  const size_t cls = TakeClass(len);
  if (cls < free_lists_.size() && !free_lists_[cls].empty()) {
    std::vector<uint8_t> buffer = std::move(free_lists_[cls].back());
    free_lists_[cls].pop_back();
    free_list_bytes_ -= buffer.capacity();
    buffer.resize(len);  // Zero-fills within the retained capacity.
    ++stats_.frame_recycles;
    return buffer;
  }
  std::vector<uint8_t> buffer(len);
  ++stats_.frame_allocs;
  return buffer;
}

void BufferPool::RecycleBuffer(std::vector<uint8_t>&& buffer) {
  const uint64_t cap = buffer.capacity();
  if (cap == 0) return;
  // Bound the idle-buffer memory at a quarter of the pool (with a
  // 1 MiB floor so tiny pools still recycle at all).
  constexpr uint64_t kFreeListFloor = 1ull << 20;
  if (free_list_bytes_ + cap > options_.capacity_bytes / 4 + kFreeListFloor) {
    return;
  }
  const size_t cls = RecycleClass(cap);
  if (cls >= free_lists_.size()) free_lists_.resize(cls + 1);
  buffer.clear();
  free_list_bytes_ += cap;
  free_lists_[cls].push_back(std::move(buffer));
}

Status BufferPool::ReadThrough(std::span<const CacheSlice> slices,
                               uint64_t* device_bytes) {
  if (!enabled()) {
    // Pass-through: the disabled pool issues the identical vectored
    // read the caller's historical path would have.
    fill_slices_.clear();
    uint64_t total = 0;
    for (const CacheSlice& s : slices) {
      fill_slices_.push_back({s.offset, s.length, nullptr, s.dst});
      total += s.length;
    }
    if (device_bytes != nullptr) *device_bytes = total;
    return device_->ReadV(fill_slices_);
  }
  fill_slices_.clear();
  copy_jobs_.clear();
  fill_offsets_.clear();
  uint64_t filled = 0;
  for (const CacheSlice& s : slices) {
    if (s.length == 0) continue;
    if (s.offset + s.length > device_->capacity() ||
        s.offset + s.length < s.offset) {
      return Status::InvalidArgument("cache read out of range");
    }
    if (Covered(s.offset, s.length)) {
      ++stats_.hits;
      stats_.hit_bytes += s.length;
      bool pinned_before = false;
      uint64_t pos = s.offset;
      const uint64_t end = s.offset + s.length;
      while (pos < end) {
        Frame* f = FrameAt(pos);
        if (f->pin > 0) pinned_before = true;
        Touch(f);
        const uint64_t chunk = std::min(f->end(), end) - pos;
        CopyJob job;
        job.frame = f;
        job.offset_in_frame = pos - f->offset;
        job.dst = s.dst == nullptr ? nullptr : s.dst + (pos - s.offset);
        job.length = chunk;
        copy_jobs_.push_back(job);
        ++f->pin;  // Transient: protects the frame until the copy runs.
        pos += chunk;
      }
      if (pinned_before) ++stats_.pinned_hits;
      // A hit never touches the device: charge only the host-side
      // lookup + copy. ChargeCpu rides the open op scope, so cache
      // hits still appear in the per-op latency percentiles.
      device_->ChargeCpu(options_.hit_cpu_s +
                         static_cast<double>(s.length) /
                             options_.copy_bandwidth);
      continue;
    }
    ++stats_.misses;
    stats_.miss_bytes += s.length;
    // Fill range: the caller's extent-run read-ahead range when
    // enabled, otherwise exactly the request.
    uint64_t fo = s.offset;
    uint64_t fl = s.length;
    if (options_.read_ahead && s.fill_length > 0) {
      fo = s.fill_offset;
      fl = s.fill_length;
      if (fo > s.offset || fo + fl < s.offset + s.length ||
          fo + fl > device_->capacity()) {
        return Status::InvalidArgument("cache fill does not cover request");
      }
    }
    Frame* frame = nullptr;
    LOR_RETURN_IF_ERROR(InstallFrame(fo, fl, &frame));
    fill_offsets_.push_back(fo);
    ++stats_.fills;
    stats_.fill_bytes += fl;
    filled += fl;
    fill_slices_.push_back(
        {fo, fl, nullptr,
         frame->data.empty() ? nullptr : frame->data.data()});
    CopyJob job;
    job.frame = frame;
    job.offset_in_frame = s.offset - fo;
    job.dst = s.dst;
    job.length = s.length;
    copy_jobs_.push_back(job);
    ++frame->pin;
  }
  // One vectored device read fills every missed range (charged exactly
  // like the scalar sequence in this order), then the deferred copies
  // run — hit copies included, so a slice served by an earlier slice's
  // fill never reads an unfilled frame.
  Status fill_status;
  if (!fill_slices_.empty()) fill_status = device_->ReadV(fill_slices_);
  for (const CopyJob& job : copy_jobs_) {
    if (fill_status.ok() && job.dst != nullptr) {
      if (job.frame->data.empty()) {
        std::memset(job.dst, 0, job.length);
      } else {
        std::memcpy(job.dst, job.frame->data.data() + job.offset_in_frame,
                    job.length);
      }
    }
    if (job.frame->pin > 0) --job.frame->pin;
  }
  if (!fill_status.ok()) {
    // The fill never happened: drop (do not park) every frame this call
    // installed, or a stale-zero frame would sit in the map as a valid
    // cache entry and serve wrong bytes to the next hit.
    for (uint64_t fo : fill_offsets_) {
      auto it = frames_.find(fo);
      if (it != frames_.end()) DropFrame(it);
    }
  }
  if (device_bytes != nullptr) *device_bytes = filled;
  return fill_status;
}

Status BufferPool::WriteThrough(std::span<const CacheSlice> slices,
                                uint64_t* device_bytes) {
  if (!enabled()) {
    fill_slices_.clear();
    uint64_t total = 0;
    for (const CacheSlice& s : slices) {
      fill_slices_.push_back({s.offset, s.length, s.src, nullptr});
      total += s.length;
    }
    if (device_bytes != nullptr) *device_bytes = total;
    return device_->WriteV(fill_slices_);
  }
  const bool through = !WriteBackActive();
  fill_slices_.clear();
  uint64_t through_bytes = 0;
  uint64_t through_count = 0;
  for (const CacheSlice& s : slices) {
    if (s.length == 0) continue;
    if (s.offset + s.length > device_->capacity() ||
        s.offset + s.length < s.offset) {
      return Status::InvalidArgument("cache write out of range");
    }
    Frame* f = FrameAt(s.offset);
    if (f != nullptr && f->end() >= s.offset + s.length) {
      // In-place update within one resident frame.
      if (!f->data.empty()) {
        uint8_t* p = f->data.data() + (s.offset - f->offset);
        if (s.src != nullptr) {
          std::memcpy(p, s.src, s.length);
        } else {
          // Timing-only writes store zeros on the device; mirror that.
          std::memset(p, 0, s.length);
        }
      }
      Touch(f);
    } else {
      LOR_RETURN_IF_ERROR(InstallFrame(s.offset, s.length, &f));
      if (!f->data.empty() && s.src != nullptr) {
        std::memcpy(f->data.data(), s.src, s.length);
      }
    }
    ++stats_.write_installs;
    if (through) {
      fill_slices_.push_back({s.offset, s.length, s.src, nullptr});
      through_bytes += s.length;
      ++through_count;
      // The frame's other bytes keep whatever dirtiness they had; the
      // slice itself is now coherent with the device either way.
    } else {
      if (!f->dirty) {
        f->dirty = true;
        dirty_bytes_ += f->length;
      }
      device_->ChargeCpu(options_.hit_cpu_s +
                         static_cast<double>(s.length) /
                             options_.copy_bandwidth);
    }
  }
  if (through && !fill_slices_.empty()) {
    LOR_RETURN_IF_ERROR(device_->WriteV(fill_slices_));
    if (options_.write_back) stats_.forced_write_through += through_count;
  }
  if (device_bytes != nullptr) *device_bytes = through_bytes;
  if (!through &&
      static_cast<double>(dirty_bytes_) >
          options_.dirty_ratio * static_cast<double>(options_.capacity_bytes)) {
    // Lazy-writer threshold: one batched, offset-ordered writeback.
    LOR_RETURN_IF_ERROR(FlushAll());
  }
  return Status::OK();
}

void BufferPool::Invalidate(uint64_t offset, uint64_t len) {
  if (!enabled() || len == 0) return;
  for (auto it = FirstOverlap(offset, len);
       it != frames_.end() && it->first < offset + len;) {
    ++stats_.invalidations;
    it = DropFrame(it);  // Dirty content dies with the owner.
  }
}

uint64_t BufferPool::PinRange(uint64_t offset, uint64_t len) {
  if (!enabled() || len == 0) return 0;
  uint64_t pinned = 0;
  for (auto it = FirstOverlap(offset, len);
       it != frames_.end() && it->first < offset + len; ++it) {
    ++it->second.pin;
    ++pinned;
  }
  return pinned;
}

void BufferPool::UnpinRange(uint64_t offset, uint64_t len) {
  if (!enabled() || len == 0) return;
  for (auto it = FirstOverlap(offset, len);
       it != frames_.end() && it->first < offset + len; ++it) {
    if (it->second.pin > 0) --it->second.pin;
  }
}

void BufferPool::Reset() {
  frames_.clear();
  shards_.assign(options_.shards, Shard{});
  free_lists_.clear();
  free_list_bytes_ = 0;
  cached_bytes_ = 0;
  dirty_bytes_ = 0;
}

const uint8_t* BufferPool::ViewChunk(uint64_t offset, uint64_t len,
                                     uint64_t* chunk) const {
  const Frame* f = FrameAt(offset);
  if (f != nullptr) {
    *chunk = std::min(f->end(), offset + len) - offset;
    if (f->data.empty()) return nullptr;  // Bookkeeping frame: device view.
    return f->data.data() + (offset - f->offset);
  }
  auto it = frames_.upper_bound(offset);
  const uint64_t gap_end =
      it == frames_.end() ? offset + len : std::min(it->first, offset + len);
  *chunk = gap_end - offset;
  return nullptr;
}

uint8_t* BufferPool::MutableViewChunk(uint64_t offset, uint64_t len,
                                      uint64_t* chunk, bool through) {
  Frame* f = FrameAt(offset);
  if (f != nullptr) {
    *chunk = std::min(f->end(), offset + len) - offset;
    if (f->data.empty()) return nullptr;  // Device drops payload anyway.
    if (!through && !f->dirty) {
      f->dirty = true;
      dirty_bytes_ += f->length;
    }
    return f->data.data() + (offset - f->offset);
  }
  auto it = frames_.upper_bound(offset);
  const uint64_t gap_end =
      it == frames_.end() ? offset + len : std::min(it->first, offset + len);
  *chunk = gap_end - offset;
  return nullptr;
}

void BufferPool::CopyFrameToDevice(uint64_t offset, const uint8_t* src,
                                   uint64_t len) {
  device_->WriteView(offset, len, [&src](std::span<uint8_t> d) {
    std::memcpy(d.data(), src, d.size());
    src += d.size();
  });
}

}  // namespace sim
}  // namespace lor
