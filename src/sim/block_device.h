// BlockDevice: the simulated volume both storage back ends sit on.
//
// The device is byte-addressed. Every request advances the shared
// SimClock by the modelled seek, rotational, and transfer time;
// back-to-back requests that continue at the previous request's end are
// recognized as sequential and skip the positioning cost.
//
// Payload bytes are not retained by default (a 400 GB experiment would
// not fit in memory); layout and timing do not need them. Tests that
// verify end-to-end data integrity construct the device with
// `DataMode::kRetain`, which keeps a sparse page map of real bytes.
//
// Threading: a BlockDevice (and the SimClock it owns) is confined to
// one thread at a time — all state is instance members, there are no
// globals, so per-shard devices on per-shard threads need no locking.
// Cross-shard aggregation works on IoStats snapshots (sim::Sum) after
// the driving threads have been joined or barrier-synchronized.

#ifndef LOREPO_SIM_BLOCK_DEVICE_H_
#define LOREPO_SIM_BLOCK_DEVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/disk_model.h"
#include "sim/io_stats.h"
#include "sim/sim_clock.h"
#include "util/config.h"  // C++20 floor guard (std::span above)
#include "util/status.h"

namespace lor {
namespace sim {

/// Whether the device retains payload bytes.
enum class DataMode {
  kMetadataOnly,  ///< Timing and layout only; reads return zeros.
  kRetain,        ///< Sparse in-memory store; reads return written bytes.
};

/// Simulated rotating block device.
class BlockDevice {
 public:
  BlockDevice(DiskParams params, DataMode mode = DataMode::kMetadataOnly);

  uint64_t capacity() const { return model_.params().capacity_bytes; }
  const DiskModel& model() const { return model_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  const IoStats& stats() const { return stats_; }
  DataMode data_mode() const { return mode_; }

  /// Writes `len` bytes at `offset`. `data` may be empty in
  /// kMetadataOnly mode (or even in kRetain mode, in which case zeros are
  /// stored); if non-empty it must be exactly `len` bytes.
  Status Write(uint64_t offset, uint64_t len, std::span<const uint8_t> data);

  /// Convenience for timing-only writes.
  Status Write(uint64_t offset, uint64_t len) { return Write(offset, len, {}); }

  /// Reads `len` bytes at `offset`. If `out` is non-null it is resized
  /// and filled (zeros in kMetadataOnly mode).
  Status Read(uint64_t offset, uint64_t len, std::vector<uint8_t>* out);

  /// Timing-only read.
  Status Read(uint64_t offset, uint64_t len) { return Read(offset, len, nullptr); }

  /// Charges a cache-flush barrier: the next request never counts as
  /// sequential, plus a fixed settle cost. Models FUA/flush commands.
  void Flush();

  /// Charges host CPU / software-stack time to the same clock.
  void ChargeCpu(double seconds);

  /// Byte offset one past the end of the last request (head position).
  uint64_t head_position() const { return head_; }

 private:
  Status CheckRange(uint64_t offset, uint64_t len) const;
  /// Advances the clock for a request at [offset, offset+len); returns
  /// whether it was sequential.
  void ChargePositioning(uint64_t offset, uint64_t len);
  void StoreBytes(uint64_t offset, std::span<const uint8_t> data,
                  uint64_t len);
  void LoadBytes(uint64_t offset, uint64_t len, std::vector<uint8_t>* out);

  static constexpr uint64_t kDataPageBytes = 64 * kKiB;
  static constexpr double kFlushCost = 0.0005;

  DiskModel model_;
  DataMode mode_;
  SimClock clock_;
  IoStats stats_;
  uint64_t head_ = 0;
  bool head_valid_ = false;
  std::unordered_map<uint64_t, std::vector<uint8_t>> pages_;
};

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_BLOCK_DEVICE_H_
