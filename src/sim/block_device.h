// BlockDevice: the simulated volume both storage back ends sit on.
//
// The device is byte-addressed. Every request advances the shared
// SimClock by the modelled seek, rotational, and transfer time;
// back-to-back requests that continue at the previous request's end are
// recognized as sequential and skip the positioning cost.
//
// Payload bytes are not retained by default (a 400 GB experiment would
// not fit in memory); layout and timing do not need them. Tests that
// verify end-to-end data integrity construct the device with
// `DataMode::kRetain`, which keeps the written bytes in a sparse arena.
//
// Data plane: retained bytes live in a two-level direct page table over
// contiguous slab extents — a directory of slab groups, each group
// holding pointers to lazily allocated, zero-filled 1 MiB slabs. A byte
// address resolves with two shifts and two indexed loads (no hashing),
// and a physically contiguous request touches at most
// len/kSlabBytes + 1 slabs, each moved with one memcpy. The previous
// hash-map-of-pages plane survives as a reference model for tests and
// the micro_device bench (sim/reference_data_plane.h).
//
// Vectored I/O: `ReadV`/`WriteV` submit a batch of physically
// contiguous runs in one call. Charging is *identical by construction*
// to issuing one scalar Read/Write per run in the same order — each run
// pays its own per-request overhead and transfer, and positioning is
// charged exactly once per run that does not sequentially continue the
// previous one — so callers can convert loops of device calls into one
// submission without perturbing any simulated figure. Batches bump the
// `vectored_requests` / `coalesced_runs` counters, which the scalar
// path never touches.
//
// Submission/completion: an IoScheduler can be attached with
// `AttachScheduler`. While the scheduler is engaged (queue depth > 1)
// and an op scope is open, every timing charge — positioning, flush,
// CPU, stream-penalty windows — is queued on the op's request chain and
// replayed in scheduler-chosen service order instead of advancing the
// clock inline; payload bytes still move at submission in host program
// order, and the reads/writes/bytes counters are stamped at submission
// (seeks, sequential hits, and the time decomposition are stamped at
// service, where they are actually decided). With no scheduler attached
// or the scheduler disengaged, every entry point takes the historical
// synchronous path unchanged. `Submit`/`SubmitV` are the explicit
// submit/complete forms: they accept a completion callback that fires
// with the simulated completion time (immediately, under the sync
// path).
//
// Zero-copy views: `ReadView`/`WriteView` iterate the arena's
// contiguous chunks for a byte range so callers can move payload
// directly between application buffers and the retained store without
// intermediate staging vectors. Views move bytes only — they charge
// nothing; pair them with a timing-only request for the device time.
//
// Threading: a BlockDevice (and the SimClock it owns) is confined to
// one thread at a time — all state is instance members, there are no
// globals, so per-shard devices on per-shard threads need no locking.
// Cross-shard aggregation works on IoStats snapshots (sim::Sum) after
// the driving threads have been joined or barrier-synchronized.
//
// Shared-spindle views: `CreateOwnerView` produces a device whose
// address space [0, region) aliases a disjoint, slab-aligned region of
// a *hub* device — several owners' volumes on one spindle, one head,
// one clock, one arena. A view keeps its own IoStats (per-owner
// attribution) but delegates head state, seek/transfer arithmetic
// (against the hub's full-capacity seek curve and physical zone
// layout), and retained bytes to the hub. Seeks charged because the
// previously serviced request belonged to a *different* owner are
// additionally counted as interference. Views are serviced one at a
// time under the SpindlePlane's lock (sim/spindle_plane.h); the hub's
// slab groups are pre-allocated so concurrent payload movement into
// disjoint owner regions never mutates shared arena structure.

#ifndef LOREPO_SIM_BLOCK_DEVICE_H_
#define LOREPO_SIM_BLOCK_DEVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/disk_model.h"
#include "sim/io_scheduler.h"
#include "sim/io_stats.h"
#include "sim/sim_clock.h"
#include "util/config.h"  // C++20 floor guard (std::span above)
#include "util/status.h"

namespace lor {
namespace sim {

class BufferPool;
class FaultInjector;
class MediaFaultModel;

/// Opaque deep copy of a device's retained arena (see
/// BlockDevice::SnapshotArena). Movable, not copyable; destroying it
/// frees the copied slabs.
class ArenaSnapshot {
 public:
  ArenaSnapshot();
  ~ArenaSnapshot();
  ArenaSnapshot(ArenaSnapshot&&) noexcept;
  ArenaSnapshot& operator=(ArenaSnapshot&&) noexcept;

 private:
  friend class BlockDevice;
  struct Rep;
  std::unique_ptr<Rep> rep_;
};

/// Whether the device retains payload bytes.
enum class DataMode {
  kMetadataOnly,  ///< Timing and layout only; reads return zeros.
  kRetain,        ///< Sparse in-memory arena; reads return written bytes.
};

/// One physically contiguous run of a vectored request. `src`/`dst`
/// may be null (timing-only run); when non-null they must point to
/// `length` valid bytes.
struct IoSlice {
  uint64_t offset = 0;
  uint64_t length = 0;
  const uint8_t* src = nullptr;  ///< WriteV payload source.
  uint8_t* dst = nullptr;        ///< ReadV payload destination.
};

/// One request for the explicit submit/complete API. Payload pointers
/// follow the IoSlice rules (null means timing-only) and must stay
/// valid only for the duration of the Submit call — bytes move at
/// submission.
struct IoRequest {
  bool write = false;
  uint64_t offset = 0;
  uint64_t length = 0;
  const uint8_t* src = nullptr;  ///< Write payload source.
  uint8_t* dst = nullptr;        ///< Read payload destination.
};

/// Simulated rotating block device.
class BlockDevice {
 public:
  BlockDevice(DiskParams params, DataMode mode = DataMode::kMetadataOnly);
  ~BlockDevice();

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  uint64_t capacity() const { return model_.params().capacity_bytes; }
  const DiskModel& model() const { return model_; }
  /// Views share the hub's clock: one spindle, one timeline.
  SimClock& clock() { return spindle_ != nullptr ? spindle_->clock_ : clock_; }
  const SimClock& clock() const {
    return spindle_ != nullptr ? spindle_->clock_ : clock_;
  }
  const IoStats& stats() const { return stats_; }
  DataMode data_mode() const { return mode_; }

  /// Writes `len` bytes at `offset`. `data` may be empty in
  /// kMetadataOnly mode (or even in kRetain mode, in which case zeros are
  /// stored); if non-empty it must be exactly `len` bytes. Zero-length
  /// requests are complete no-ops: nothing is charged and the head does
  /// not move.
  Status Write(uint64_t offset, uint64_t len, std::span<const uint8_t> data);

  /// Convenience for timing-only writes.
  Status Write(uint64_t offset, uint64_t len) { return Write(offset, len, {}); }

  /// Reads `len` bytes at `offset`. If `out` is non-null it is resized
  /// and filled (zeros in kMetadataOnly mode); existing capacity is
  /// reused, so a caller looping reads through one buffer pays no
  /// per-request allocation or redundant zero-fill. Zero-length
  /// requests charge nothing and do not move the head.
  Status Read(uint64_t offset, uint64_t len, std::vector<uint8_t>* out);

  /// Timing-only read.
  Status Read(uint64_t offset, uint64_t len) { return Read(offset, len, nullptr); }

  /// Submits a batch of contiguous runs as reads. Validates the whole
  /// batch before charging anything, then charges each run exactly as
  /// the equivalent scalar Read sequence would (zero-length runs are
  /// skipped). Runs with a non-null `dst` receive the payload bytes.
  Status ReadV(std::span<const IoSlice> slices);

  /// Submits a batch of contiguous runs as writes; the WriteV twin of
  /// ReadV. Runs with a non-null `src` store the payload bytes (zeros
  /// are stored for timing-only runs in kRetain mode).
  Status WriteV(std::span<const IoSlice> slices);

  /// Invokes `fn(std::span<const uint8_t>)` for each contiguous arena
  /// chunk of [offset, offset+len), in order. Unwritten ranges (and
  /// every range in kMetadataOnly mode) yield zero-filled chunks. Moves
  /// no clock and no stats; the range must be within capacity.
  template <typename Fn>
  void ReadView(uint64_t offset, uint64_t len, Fn&& fn) const {
    while (len > 0) {
      uint64_t chunk = 0;
      const uint8_t* p = ReadChunk(offset, len, &chunk);
      fn(std::span<const uint8_t>(p, chunk));
      offset += chunk;
      len -= chunk;
    }
  }

  /// Invokes `fn(std::span<uint8_t>)` for each writable contiguous
  /// arena chunk of [offset, offset+len), allocating zero-filled slabs
  /// on demand. In kMetadataOnly mode `fn` is never invoked (payload is
  /// dropped, as everywhere else). Charges nothing; pair with a
  /// timing-only Write/WriteV for the device time.
  template <typename Fn>
  void WriteView(uint64_t offset, uint64_t len, Fn&& fn) {
    while (len > 0) {
      uint64_t chunk = 0;
      uint8_t* p = WriteChunk(offset, len, &chunk);
      if (p != nullptr) fn(std::span<uint8_t>(p, chunk));
      offset += chunk;
      len -= chunk;
    }
  }

  /// Submits one request through the submission/completion path. `done`
  /// (optional) fires with the simulated completion time: inline under
  /// the synchronous path, at service completion when queued.
  Status Submit(const IoRequest& req, IoCompletion done = nullptr);

  /// Vectored Submit: a batch of contiguous runs charged exactly like
  /// the equivalent scalar sequence (the ReadV/WriteV guarantee), with
  /// one completion callback firing when the whole batch has been
  /// serviced. Bumps the vectored counters.
  Status SubmitV(std::span<const IoRequest> reqs, IoCompletion done = nullptr);

  /// Charges a cache-flush barrier: the next request never counts as
  /// sequential, plus a fixed settle cost. Models FUA/flush commands.
  void Flush();

  /// Charges host CPU / software-stack time to the same clock.
  void ChargeCpu(double seconds);

  /// Opens a stream-penalty window: the host-side streaming loop runs
  /// concurrently with the device work between Begin and End, and End
  /// charges only the CPU time the device did not already cover
  /// (sim::OpCostModel::StreamPenalty). Under the synchronous path this
  /// is exactly the historical now()-delta arithmetic; under the
  /// scheduler the window spans the op's serviced seconds.
  void BeginStreamWindow();
  void EndStreamWindow(uint64_t len, double bandwidth_cap_bytes_per_s);

  /// Wires up (or detaches, with null) the submission scheduler. The
  /// scheduler must outlive every subsequent request on this device.
  void AttachScheduler(IoScheduler* scheduler) { scheduler_ = scheduler; }
  IoScheduler* scheduler() { return scheduler_; }

  /// Wires up (or detaches, with null) a power-cut fault injector.
  /// While the injector is armed, every write submission is recorded
  /// (with its arena pre-image in kRetain mode) and tagged for
  /// serviced-at-the-cut classification; unarmed, the hooks cost one
  /// null check and charge nothing, so clean-path figures are
  /// bit-identical with or without an injector attached.
  void AttachFaultInjector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() { return injector_; }
  const FaultInjector* fault_injector() const { return injector_; }

  /// Wires up (or detaches, with null) a media-fault model
  /// (sim/media_fault.h) and registers this device with it. While the
  /// model is armed, payload-delivering reads that touch a latent-
  /// sector-error region return a typed Status::IoError *at submission*
  /// (nothing is charged or queued — the failure is known before the
  /// head moves, and the retry/backoff cost is charged by the storage
  /// layer), writes heal overlapped bad regions (sector remap on
  /// write), and requests touching degraded regions pay a service-time
  /// multiplier at service time. Detached or disarmed, every hook is
  /// one null/flag check and all figures are bit-identical.
  void AttachMediaFaults(MediaFaultModel* media);
  MediaFaultModel* media_faults() { return media_; }
  const MediaFaultModel* media_faults() const { return media_; }

  /// Explicit media read admission for callers whose charged reads
  /// carry no destination buffer (the database back end charges page
  /// batches timing-only and delivers payload through views). Same
  /// semantics as the implicit check on payload-delivering reads: OK
  /// when no armed model is attached, typed IoError on a latent sector
  /// error, nothing charged.
  Status PreflightMediaRead(uint64_t offset, uint64_t len) {
    return CheckMediaRead(offset, len);
  }

  /// Wires up (or detaches, with null) the buffer pool fronting this
  /// device. The device never calls into the pool — the pointer is a
  /// rendezvous so storage layers sharing the device (FileStore /
  /// BlobStore plus the repository that owns both ends of an op) find
  /// the same cache without extra plumbing. Null (the default) and a
  /// disabled pool both mean every caller takes its historical direct
  /// path.
  void AttachBufferPool(BufferPool* pool) { buffer_pool_ = pool; }
  BufferPool* buffer_pool() { return buffer_pool_; }
  const BufferPool* buffer_pool() const { return buffer_pool_; }

  /// Models the restart after a power cut: the head position is
  /// unknown, so the next request never counts as sequential.
  void NotePowerCycle() { head_valid_ = false; }

  /// Creates an owner view onto this device (the hub): a device whose
  /// [0, region_bytes) range aliases [base, base+region_bytes) here,
  /// sharing this head, clock, and arena. `base` must be a multiple of
  /// kSlabBytes and the region must fit within capacity, so distinct
  /// owners' retained bytes land in disjoint slab sets. The view must
  /// not outlive the hub.
  std::unique_ptr<BlockDevice> CreateOwnerView(int32_t owner, uint64_t base,
                                               uint64_t region_bytes);

  /// Pre-allocates every slab-group directory entry (kRetain hubs only;
  /// a no-op otherwise). Owner views filling slabs concurrently then
  /// mutate only their own (disjoint) slab slots, never the shared
  /// group table. ~2 KB of pointers per 256 MiB of capacity.
  void PreallocateArenaGroups();

  /// Non-null when this device is an owner view of a shared spindle.
  BlockDevice* spindle_hub() { return spindle_; }
  const BlockDevice* spindle_hub() const { return spindle_; }
  int32_t spindle_owner() const { return spindle_owner_; }

  /// Deep copy of the retained arena (allocated slabs only); empty in
  /// kMetadataOnly mode. The PR 5 slab layout makes this a group-table
  /// walk plus one memcpy per written slab.
  ArenaSnapshot SnapshotArena() const;

  /// Restores the arena to a snapshot taken from this device. Slabs
  /// written since the snapshot but absent from it revert to zeros.
  void RestoreArena(const ArenaSnapshot& snapshot);

  /// Positioning cost (seek only; zero when sequential) a request at
  /// `offset` would pay right now — the SPTF scheduling key.
  double PeekPositioningCost(uint64_t offset) const;

  /// Byte offset one past the end of the last request (head position).
  /// For an owner view this is the hub's physical head position.
  uint64_t head_position() const {
    return spindle_ != nullptr ? spindle_->head_ : head_;
  }

  /// Contiguous arena extent size (tests size their straddling cases
  /// off this).
  static constexpr uint64_t kSlabBytes = 1024 * 1024;

 private:
  friend class IoScheduler;     // Drives ServiceRequest / ServiceFlush.
  friend class FaultInjector;   // Reads/writes arena bytes at the cut.
  friend class ArenaSnapshot;   // Its Rep holds copied SlabGroups.
  friend class SpindlePlane;    // Services owner views, stamps queue waits.
  friend class MediaFaultModel; // Flips at-rest arena bytes at Arm.

  struct SlabGroup;

  /// Media-fault read admission for a payload-delivering read; OK when
  /// no armed model is attached. A failure bumps media_read_errors.
  Status CheckMediaRead(uint64_t offset, uint64_t len);
  /// Media-fault write intake (heals overlapped bad regions).
  void NoteMediaWrite(uint64_t offset, uint64_t len);

  /// Injector intake for one write submission; returns the completion
  /// tag (0 when no armed injector).
  uint64_t NoteWriteSubmission(uint64_t offset, uint64_t len);
  /// Marks a tagged write serviced (sync path inline; async path from
  /// the scheduler at service time).
  void NoteWriteServiced(uint64_t tag);

  Status CheckRange(uint64_t offset, uint64_t len) const;
  /// Service-side core: decides sequentiality against the current head,
  /// stamps the time-decomposition stats, moves the head, and returns
  /// the request's service seconds — without touching the clock. The
  /// synchronous path advances the clock by the return value; the
  /// scheduler places it on its own timeline.
  double ServiceRequest(bool write, uint64_t offset, uint64_t len);
  /// Flush twin of ServiceRequest (invalidates sequentiality).
  double ServiceFlush();
  /// True when an engaged scheduler should absorb timing charges.
  bool AsyncActive() const;
  /// Advances the clock for a request at [offset, offset+len).
  void ChargePositioning(uint64_t offset, uint64_t len);
  void StoreBytes(uint64_t offset, const uint8_t* src, uint64_t len);
  void LoadBytesInto(uint64_t offset, uint8_t* dst, uint64_t len) const;
  /// Largest contiguous readable chunk at `offset`, capped at `len`;
  /// unbacked ranges resolve into a shared zero slab.
  const uint8_t* ReadChunk(uint64_t offset, uint64_t len,
                           uint64_t* chunk) const;
  /// Writable twin of ReadChunk; null in kMetadataOnly mode (the chunk
  /// length is still produced so views can skip forward).
  uint8_t* WriteChunk(uint64_t offset, uint64_t len, uint64_t* chunk);
  /// Slab base address, or null when the slab was never written.
  uint8_t* SlabAt(uint64_t slab_index) const;
  /// Slab base address, allocating the zero-filled slab (and its group)
  /// on first touch.
  uint8_t* EnsureSlab(uint64_t slab_index);

  static constexpr uint64_t kSlabsPerGroup = 256;
  static constexpr double kFlushCost = 0.0005;

  DiskModel model_;
  DataMode mode_;
  SimClock clock_;
  IoStats stats_;
  IoScheduler* scheduler_ = nullptr;
  FaultInjector* injector_ = nullptr;
  MediaFaultModel* media_ = nullptr;
  BufferPool* buffer_pool_ = nullptr;
  double window_t0_ = 0.0;  ///< Synchronous stream-window start.
  uint64_t head_ = 0;
  bool head_valid_ = false;
  /// Owner-view wiring: non-null `spindle_` makes this device an alias
  /// of [spindle_base_, spindle_base_ + capacity()) on the hub.
  BlockDevice* spindle_ = nullptr;
  uint64_t spindle_base_ = 0;
  int32_t spindle_owner_ = -1;
  /// Hub-side: owner of the most recently serviced request (-1 before
  /// the first); the interference attribution cursor.
  int32_t last_owner_ = -1;
  /// Level-1 directory of the arena; entries are allocated on first
  /// write into their 256-slab address range.
  std::vector<std::unique_ptr<SlabGroup>> groups_;
};

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_BLOCK_DEVICE_H_
