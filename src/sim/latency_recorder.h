// LatencyRecorder: per-operation completion-latency accounting for the
// submission/completion pipeline. Repository operations are tagged with
// an OpClass (get / put / safe-write / delete); the recorder keeps one
// log-bucketed LatencyHistogram per class, measured in simulated
// seconds from op submission to op completion.
//
// Like sim::IoStats, recorders are per-shard objects confined to the
// shard's thread; cross-shard aggregation merges snapshots exactly
// (Merge is per-bucket integer addition), and checkpoint intervals are
// isolated by subtracting cumulative snapshots (operator-).
//
// This header also defines the small pipeline enums (OpClass,
// SchedPolicy) so interface layers (core::ObjectRepository) can name
// them without pulling in the scheduler or device headers.

#ifndef LOREPO_SIM_LATENCY_RECORDER_H_
#define LOREPO_SIM_LATENCY_RECORDER_H_

#include <array>
#include <cstdint>
#include <string>

#include "util/histogram.h"

namespace lor {
namespace sim {

/// Repository operation classes whose completion latency is tracked
/// separately. kControl marks op scopes that only exist to carry device
/// charges (open/close/release bookkeeping); their latency is not
/// recorded.
enum class OpClass : uint8_t {
  kGet = 0,
  kPut,
  kSafeWrite,
  kDelete,
  kControl,
};

/// Number of recorded classes (kControl excluded).
inline constexpr size_t kTrackedOpClasses = 4;

const char* OpClassName(OpClass cls);

/// Service order among queued device requests at queue depth > 1.
enum class SchedPolicy : uint8_t {
  kFifo,  ///< Strict submission order.
  kSptf,  ///< NCQ-style shortest-positioning-time-first.
};

/// Per-op-class completion latency histograms.
class LatencyRecorder {
 public:
  /// Folds one completed operation in. kControl ops are ignored.
  void Record(OpClass cls, double seconds);

  const LatencyHistogram& histogram(OpClass cls) const;

  /// Put and safe-write merged: both are whole-object writes, and bulk
  /// load lands in either class depending on the access path, so write
  /// columns report them together.
  LatencyHistogram writes() const;

  uint64_t total_count() const;

  /// Exact cross-shard merge (the LatencyHistogram merge per class).
  void Merge(const LatencyRecorder& other);

  /// Exact interval isolation for cumulative snapshots: `*this` must
  /// have been produced by recording on top of `other`.
  LatencyRecorder operator-(const LatencyRecorder& other) const;

  void Reset();

  std::string ToString() const;

 private:
  std::array<LatencyHistogram, kTrackedOpClasses> hists_;
};

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_LATENCY_RECORDER_H_
