#include "sim/fault_injector.h"

#include <algorithm>

#include "sim/block_device.h"

namespace lor {
namespace sim {

void FaultInjector::Arm(const CrashSpec& spec) {
  spec_ = spec;
  state_ = State::kArmed;
  tripped_ = false;
  trip_seq_ = 0;
  records_.clear();
}

void FaultInjector::Disarm() {
  state_ = State::kIdle;
  tripped_ = false;
  trip_seq_ = 0;
  records_.clear();
  records_.shrink_to_fit();
}

uint64_t FaultInjector::RecordWrite(BlockDevice* device, uint64_t offset,
                                    uint64_t len) {
  if (state_ != State::kArmed) return 0;
  WriteRecord rec;
  rec.device = device;
  rec.offset = offset;
  rec.len = len;
  if (device->data_mode() == DataMode::kRetain) {
    rec.pre_image.resize(len);
    device->LoadBytesInto(offset, rec.pre_image.data(), len);
  }
  records_.push_back(std::move(rec));
  const uint64_t seq = records_.size();
  if (!tripped_) {
    const bool by_count =
        spec_.crash_after_writes > 0 && seq >= spec_.crash_after_writes;
    const bool by_time = spec_.crash_after_writes == 0 &&
                         device->clock().now() >= spec_.deadline_s;
    if (by_count || by_time) {
      tripped_ = true;
      trip_seq_ = seq;
    }
  }
  return seq;
}

void FaultInjector::MarkServiced(uint64_t seq) {
  if (seq == 0 || seq > records_.size()) return;
  records_[seq - 1].serviced = true;
}

uint64_t FaultInjector::TearRecord(WriteRecord* rec, Rng* rng) {
  const uint64_t sector =
      std::max<uint64_t>(1, rec->device->model().params().sector_bytes);
  const uint64_t sectors = (rec->len + sector - 1) / sector;
  // Tearing verdict: 0 = keep a strict prefix, 1 = drop everything,
  // 2 = keep a strict prefix and garbage the boundary sector (the one
  // the head was inside when power died). A torn write never survives
  // whole — a completed write would have been serviced.
  const uint64_t mode = rng->Uniform(3);
  uint64_t keep = 0;
  if (mode != 1 && sectors > 0) keep = rng->Uniform(sectors) * sector;
  keep = std::min(keep, rec->len);
  const uint64_t discarded = rec->len - keep;
  if (!rec->pre_image.empty()) {
    rec->device->StoreBytes(rec->offset + keep, rec->pre_image.data() + keep,
                            discarded);
    if (mode == 2 && discarded > 0) {
      // Garbage lands strictly inside the torn write's own range, so it
      // can only damage data that recovery must roll back anyway.
      std::vector<uint8_t> junk(std::min(sector, discarded));
      for (uint8_t& b : junk) b = static_cast<uint8_t>(rng->Next());
      rec->device->StoreBytes(rec->offset + keep, junk.data(), junk.size());
    }
  }
  return discarded;
}

CrashReport FaultInjector::MaterializeCrash() {
  CrashReport report;
  report.writes_recorded = records_.size();
  // A materialization without a tripped crash point models the power
  // dying right now: nothing tears, queued writes are simply lost.
  const uint64_t trip =
      tripped_ ? trip_seq_ : records_.size() + 1;
  report.trip_seq = tripped_ ? trip_seq_ : 0;
  for (uint64_t seq = 1; seq <= records_.size(); ++seq) {
    WriteRecord& rec = records_[seq - 1];
    if (seq < trip) {
      rec.fate = rec.serviced ? WriteFate::kDurable : WriteFate::kLost;
    } else if (seq == trip) {
      rec.fate = WriteFate::kTorn;
    } else {
      rec.fate = WriteFate::kLost;
    }
  }
  // Undo in reverse submission order: each restore returns its range to
  // the state before that write, so after the sweep every byte shows
  // the newest surviving write that touched it.
  Rng rng(spec_.seed);
  for (size_t i = records_.size(); i-- > 0;) {
    WriteRecord& rec = records_[i];
    switch (rec.fate) {
      case WriteFate::kDurable:
        ++report.durable_writes;
        break;
      case WriteFate::kLost:
        ++report.lost_writes;
        report.lost_bytes += rec.len;
        if (!rec.pre_image.empty()) {
          rec.device->StoreBytes(rec.offset, rec.pre_image.data(), rec.len);
        }
        break;
      case WriteFate::kTorn:
        ++report.torn_writes;
        report.lost_bytes += TearRecord(&rec, &rng);
        break;
      case WriteFate::kPending:
        break;
    }
    // The pre-image has served its purpose; free it eagerly so a large
    // armed window does not hold two copies of the written bytes.
    rec.pre_image.clear();
    rec.pre_image.shrink_to_fit();
  }
  state_ = State::kCrashed;
  return report;
}

WriteFate FaultInjector::Fate(uint64_t seq) const {
  if (seq == 0 || seq > records_.size()) return WriteFate::kPending;
  return records_[seq - 1].fate;
}

}  // namespace sim
}  // namespace lor
