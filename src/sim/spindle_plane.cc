#include "sim/spindle_plane.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <utility>

#include "sim/op_cost_model.h"

namespace lor {
namespace sim {
namespace {

constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;
/// Batches an owner may have queued before Deliver blocks (and drives
/// service itself). Bounds memory and keeps owners loosely in step.
constexpr size_t kBackpressureWindow = 64;

uint64_t SplitMix64(uint64_t x) {
  x += kGolden;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

SpindlePlane::SpindlePlane(const Params& params)
    : policy_(params.policy),
      seed_(params.seed),
      stride_((params.region_bytes + BlockDevice::kSlabBytes - 1) /
              BlockDevice::kSlabBytes * BlockDevice::kSlabBytes),
      region_bytes_(params.region_bytes) {
  assert(params.owners >= 1);
  assert(params.region_bytes > 0);
  hub_ = std::make_unique<BlockDevice>(
      params.disk.WithCapacity(stride_ * params.owners), params.data_mode);
  hub_->PreallocateArenaGroups();
  states_.resize(params.owners);
}

SpindlePlane::~SpindlePlane() = default;

std::unique_ptr<BlockDevice> SpindlePlane::CreateOwnerDevice(uint32_t owner) {
  std::lock_guard<std::mutex> lk(mu_);
  assert(owner < states_.size());
  assert(states_[owner].view == nullptr && "owner view already created");
  auto view = hub_->CreateOwnerView(static_cast<int32_t>(owner),
                                    static_cast<uint64_t>(owner) * stride_,
                                    region_bytes_);
  states_[owner].view = view.get();
  return view;
}

void SpindlePlane::BindOwner(uint32_t owner, IoScheduler* sched) {
  std::lock_guard<std::mutex> lk(mu_);
  OwnerState& st = states_[owner];
  assert(st.view != nullptr && "bind before CreateOwnerDevice");
  assert(!st.bound && "owner already bound");
  st.bound = true;
  st.sched = sched;
  cv_.notify_all();
}

void SpindlePlane::EnsureInitLocked() {
  if (initialized_) return;
  initialized_ = true;
  // Repositories construct serially (synchronous charges on the hub
  // clock) before any plane traffic, so this instant is deterministic.
  const double t0 = hub_->clock().now();
  for (OwnerState& st : states_) {
    st.base = t0;
    st.last_completion = t0;
  }
}

double SpindlePlane::OwnerNow(uint32_t owner) const {
  std::lock_guard<std::mutex> lk(mu_);
  // Pre-traffic there can be no concurrent clock writer: servicing only
  // ever starts from queued work, which initializes first.
  if (!initialized_) return hub_->clock().now();
  return states_[owner].last_completion;
}

uint64_t SpindlePlane::rounds() const {
  std::lock_guard<std::mutex> lk(mu_);
  return round_counter_;
}

uint64_t SpindlePlane::service_hash() const {
  std::lock_guard<std::mutex> lk(mu_);
  return service_hash_;
}

void SpindlePlane::Deliver(uint32_t owner, std::vector<IoScheduler::Op> ops) {
  if (ops.empty()) return;
  std::unique_lock<std::mutex> lk(mu_);
  EnsureInitLocked();
  OwnerState& st = states_[owner];
  WaitLocked(lk, [&] { return st.queue.size() < kBackpressureWindow; });
  Item item;
  item.ops = std::move(ops);
  st.queue.push_back(std::move(item));
  cv_.notify_all();
}

void SpindlePlane::Fence(uint32_t owner, bool phase_end) {
  std::unique_lock<std::mutex> lk(mu_);
  EnsureInitLocked();
  OwnerState& st = states_[owner];
  Item f;
  f.is_fence = true;
  f.is_phase = phase_end;
  st.queue.push_back(std::move(f));
  const uint64_t my_seq = ++st.fences_pushed;
  cv_.notify_all();
  if (!phase_end) {
    WaitLocked(lk, [&] { return st.fences_popped >= my_seq; });
    return;
  }
  // A phase fence waits past its own pop (which parks the owner) for
  // the epoch reset that unparks it — only the reset unparks, so
  // popped-and-unparked means every peer reached its phase boundary
  // (or retired) and the loops were re-based. Returning earlier would
  // let the owner read a phase-end clock that nondeterministically
  // predates or postdates its peers' tails.
  WaitLocked(lk, [&] { return st.fences_popped >= my_seq && !st.parked; });
}

void SpindlePlane::Retire(uint32_t owner,
                          std::vector<IoScheduler::Op> leftovers) {
  std::unique_lock<std::mutex> lk(mu_);
  OwnerState& st = states_[owner];
  if (!st.bound || st.retired) return;
  while (servicing_) cv_.wait(lk);
  if (!leftovers.empty()) {
    EnsureInitLocked();
    Item item;
    item.ops = std::move(leftovers);
    st.queue.push_back(std::move(item));
  }
  st.retired = true;
  st.parked = false;
  // Stragglers are serviced solo, now, while this owner's scheduler and
  // view are still alive (we are inside the scheduler's destructor;
  // other owners may already be gone). Normal flows settle before
  // destruction, so the queue is almost always empty here.
  DrainOwnerLocked(&st);
  MaybeEpochResetLocked();
  cv_.notify_all();
}

void SpindlePlane::SetOwnerDepth(uint32_t owner, uint32_t depth) {
  std::lock_guard<std::mutex> lk(mu_);
  states_[owner].depth = depth == 0 ? 1 : depth;
}

bool SpindlePlane::AdvanceLocked(std::unique_lock<std::mutex>& lk) {
  assert(!servicing_);
  if (TryPhasePopsLocked()) return true;
  if (TryFenceLayerLocked()) return true;
  return TryRoundLocked(lk);
}

void SpindlePlane::MaybeEpochResetLocked() {
  bool any = false;
  for (const OwnerState& st : states_) {
    if (!st.bound || st.retired) continue;
    any = true;
    if (!st.parked) return;
  }
  if (!any) return;
  // Every live owner is parked at its phase boundary: re-base the
  // closed loops at the hub clock so the next phase starts aligned.
  const double t = hub_->clock().now();
  for (OwnerState& st : states_) {
    if (st.retired) continue;
    st.parked = false;
    st.allocated = 0;
    st.slots = {};
    st.base = t;
    st.last_completion = t;
  }
}

bool SpindlePlane::TryPhasePopsLocked() {
  bool progress = false;
  bool again = true;
  while (again) {
    again = false;
    for (OwnerState& st : states_) {
      if (st.retired || st.queue.empty()) continue;
      const Item& front = st.queue.front();
      if (!front.is_fence || !front.is_phase) continue;
      st.queue.pop_front();
      ++st.fences_popped;
      st.parked = true;
      progress = again = true;
    }
  }
  if (progress) {
    MaybeEpochResetLocked();
    cv_.notify_all();
  }
  return progress;
}

bool SpindlePlane::TryFenceLayerLocked() {
  bool any = false;
  for (const OwnerState& st : states_) {
    if (!active(st)) continue;
    if (st.queue.empty()) return false;
    const Item& front = st.queue.front();
    if (!front.is_fence || front.is_phase) return false;
    any = true;
  }
  if (!any) return false;
  // Lockstep layer: one regular fence from every active owner; each
  // resets its closed loop (the Drain/Engage semantics — everything
  // settled, the next op arrives at the current time).
  const double t = hub_->clock().now();
  for (OwnerState& st : states_) {
    if (!active(st)) continue;
    st.queue.pop_front();
    ++st.fences_popped;
    st.allocated = 0;
    st.slots = {};
    st.base = t;
  }
  cv_.notify_all();
  return true;
}

double SpindlePlane::NextArrivalLocked(OwnerState* st) {
  if (st->allocated < st->depth) {
    ++st->allocated;
    return st->base;
  }
  double arrival = st->base;
  if (!st->slots.empty()) {
    arrival = std::max(arrival, st->slots.top());
    st->slots.pop();
  }
  return arrival;
}

bool SpindlePlane::TryRoundLocked(std::unique_lock<std::mutex>& lk) {
  bool any_active = false;
  bool any_batch = false;
  for (const OwnerState& st : states_) {
    if (!active(st)) continue;
    any_active = true;
    if (st.queue.empty()) return false;  // round gates on every owner
    if (!st.queue.front().is_fence) any_batch = true;
  }
  if (!any_active || !any_batch) return false;

  ++round_counter_;
  const uint64_t salt = SplitMix64(seed_ ^ round_counter_);
  std::vector<RoundOp> round;
  uint64_t idx = 0;
  for (uint32_t o = 0; o < states_.size(); ++o) {
    OwnerState& st = states_[o];
    if (!active(st) || st.queue.front().is_fence) continue;
    Item item = std::move(st.queue.front());
    st.queue.pop_front();
    for (IoScheduler::Op& op : item.ops) {
      RoundOp rop;
      rop.owner = o;
      rop.key = SplitMix64(salt ^ (static_cast<uint64_t>(o) * kGolden) ^ idx);
      rop.arrival = NextArrivalLocked(&st);
      rop.op = std::move(op);
      round.push_back(std::move(rop));
      ++idx;
    }
  }

  // Replay against the hub with the lock released: other owners keep
  // doing host-side work (and queueing) while the spindle turns. The
  // baton flag keeps state advances serialized.
  servicing_ = true;
  lk.unlock();
  ServiceRound(&round);
  lk.lock();
  PublishRoundLocked(&round);
  servicing_ = false;
  cv_.notify_all();
  return true;
}

void SpindlePlane::ServiceRound(std::vector<RoundOp>* round) {
  std::vector<RoundOp>& ops = *round;
  const size_t n = ops.size();
  uint64_t seq = 0;
  if (policy_ == SchedPolicy::kFifo) {
    // Salted slot shuffle: permute positions by key, then refill each
    // owner's positions with its ops in program order. A single owner
    // holds every position, so its ops service in submission order
    // regardless of the salt.
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return ops[a].key < ops[b].key;
    });
    std::vector<std::deque<size_t>> per_owner(states_.size());
    for (size_t i = 0; i < n; ++i) per_owner[ops[i].owner].push_back(i);
    for (size_t pos : order) {
      std::deque<size_t>& q = per_owner[ops[pos].owner];
      RoundOp* rop = &ops[q.front()];
      q.pop_front();
      rop->seq = seq++;
      ServiceChain(rop);
    }
    return;
  }
  // SPTF: among the owners' earliest unserviced ops, pick the one whose
  // first device request has the cheapest positioning from the current
  // head; the salted key breaks ties. Per-owner program order is
  // preserved because only each owner's front is ever a candidate.
  std::vector<std::deque<size_t>> fronts(states_.size());
  for (size_t i = 0; i < n; ++i) fronts[ops[i].owner].push_back(i);
  for (size_t served = 0; served < n; ++served) {
    size_t pick = n;
    double pick_cost = std::numeric_limits<double>::infinity();
    uint64_t pick_key = std::numeric_limits<uint64_t>::max();
    for (const std::deque<size_t>& q : fronts) {
      if (q.empty()) continue;
      const size_t i = q.front();
      double cost = 0.0;
      for (const IoScheduler::Request& r : ops[i].op.chain) {
        if (r.kind == IoScheduler::Request::Kind::kIo) {
          cost = states_[ops[i].owner].view->PeekPositioningCost(r.offset);
          break;
        }
        if (r.kind == IoScheduler::Request::Kind::kFlush) break;
      }
      if (cost < pick_cost || (cost == pick_cost && ops[i].key < pick_key)) {
        pick = i;
        pick_cost = cost;
        pick_key = ops[i].key;
      }
    }
    assert(pick < n);
    fronts[ops[pick].owner].pop_front();
    ops[pick].seq = seq++;
    ServiceChain(&ops[pick]);
  }
}

void SpindlePlane::ServiceChain(RoundOp* rop) {
  BlockDevice* view = states_[rop->owner].view;
  SimClock& clk = hub_->clock();
  rop->start = clk.now();
  // Exactly the synchronous charging sequence, chain-contiguous: this
  // is what makes a single owner at depth 1 bit-identical to the
  // dedicated path.
  double win_t0 = 0.0;
  for (IoScheduler::Request& r : rop->op.chain) {
    using Kind = IoScheduler::Request::Kind;
    switch (r.kind) {
      case Kind::kIo:
        clk.Advance(view->ServiceRequest(r.write, r.offset, r.len));
        ++rop->device_reqs;
        if (r.tag != 0) view->NoteWriteServiced(r.tag);
        if (r.done) r.done(clk.now(), Status::OK());
        break;
      case Kind::kFlush:
        clk.Advance(view->ServiceFlush());
        ++rop->device_reqs;
        if (r.done) r.done(clk.now(), Status::OK());
        break;
      case Kind::kCpu:
        clk.Advance(r.cpu_s);
        break;
      case Kind::kWinBegin:
        win_t0 = clk.now();
        break;
      case Kind::kWinEnd:
        clk.Advance(
            OpCostModel::StreamPenalty(r.len, r.cap, clk.now() - win_t0));
        break;
    }
  }
  rop->completion = clk.now();
  rop->op.chain.clear();
}

void SpindlePlane::PublishRoundLocked(std::vector<RoundOp>* round) {
  // Publish in service order so the fingerprint (and float
  // accumulation) reflect the actual interleave.
  std::vector<size_t> by_seq(round->size());
  for (size_t i = 0; i < round->size(); ++i) by_seq[i] = i;
  std::sort(by_seq.begin(), by_seq.end(), [&](size_t a, size_t b) {
    return (*round)[a].seq < (*round)[b].seq;
  });
  for (size_t i : by_seq) {
    RoundOp& rop = (*round)[i];
    OwnerState& st = states_[rop.owner];
    st.slots.push(rop.completion);
    st.last_completion = std::max(st.last_completion, rop.completion);
    st.view->stats_.queue_wait_s += rop.start - rop.arrival;
    if (st.sched != nullptr) {
      ++st.sched->completed_ops_;
      st.sched->serviced_requests_ += rop.device_reqs;
      LatencyRecorder* rec = st.sched->recorder();
      if (rec != nullptr && rop.op.cls != OpClass::kControl) {
        rec->Record(rop.op.cls, rop.completion - rop.arrival);
      }
    }
    service_hash_ = (service_hash_ ^ rop.owner) * kFnvPrime;
    uint64_t bits = 0;
    std::memcpy(&bits, &rop.completion, sizeof(bits));
    service_hash_ = (service_hash_ ^ bits) * kFnvPrime;
  }
}

void SpindlePlane::DrainOwnerLocked(OwnerState* st) {
  assert(!servicing_);
  while (!st->queue.empty()) {
    Item item = std::move(st->queue.front());
    st->queue.pop_front();
    if (item.is_fence) {
      ++st->fences_popped;
      continue;
    }
    std::vector<RoundOp> round;
    const uint32_t owner = static_cast<uint32_t>(st - states_.data());
    for (IoScheduler::Op& op : item.ops) {
      RoundOp rop;
      rop.owner = owner;
      rop.arrival = NextArrivalLocked(st);
      rop.op = std::move(op);
      round.push_back(std::move(rop));
    }
    // Single-owner rounds service in program order under both policies;
    // holding the lock is fine — nothing else can be servicing.
    ServiceRound(&round);
    PublishRoundLocked(&round);
  }
}

}  // namespace sim
}  // namespace lor
