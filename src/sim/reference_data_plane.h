// ReferenceBlockDevice: the pre-arena BlockDevice data plane, kept as
// an executable reference model for tests and bench/micro_device.
//
// Payload bytes live in the historical sparse hash map of 64 KiB
// pages: every page touched by a request costs a hash lookup, reads
// assign()-zero-fill their output before copying, and first touch of a
// page zero-initializes the whole page. The charging model (seek /
// rotation / transfer / per-request overhead, sequential detection,
// zero-length early-out) is kept in lockstep with sim::BlockDevice so
// randomized property tests can drive identical operation sequences
// through both and require bytes, stats, and clock to match exactly —
// any divergence is a bug in the arena rewrite, not an expected delta.
//
// ReadV/WriteV are provided as the definitional expansion — a loop of
// scalar requests plus the vectored counters — so the micro bench can
// run the same driver against both planes. Nothing in the system links
// against this header; it is a test/bench harness only.

#ifndef LOREPO_SIM_REFERENCE_DATA_PLANE_H_
#define LOREPO_SIM_REFERENCE_DATA_PLANE_H_

#include <algorithm>
#include <cstring>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/block_device.h"  // IoSlice, DataMode
#include "sim/disk_model.h"
#include "sim/io_stats.h"
#include "sim/sim_clock.h"
#include "util/status.h"

namespace lor {
namespace sim {

/// The historical hash-map-of-pages device. Interface mirrors
/// BlockDevice's request surface (no views: the hash map cannot hand
/// out stable contiguous spans across pages).
class ReferenceBlockDevice {
 public:
  explicit ReferenceBlockDevice(DiskParams params,
                                DataMode mode = DataMode::kMetadataOnly)
      : model_(params), mode_(mode) {}

  uint64_t capacity() const { return model_.params().capacity_bytes; }
  const DiskModel& model() const { return model_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  const IoStats& stats() const { return stats_; }
  DataMode data_mode() const { return mode_; }

  Status Write(uint64_t offset, uint64_t len, std::span<const uint8_t> data) {
    LOR_RETURN_IF_ERROR(CheckRange(offset, len));
    if (!data.empty() && data.size() != len) {
      return Status::InvalidArgument("data size does not match request length");
    }
    if (len == 0) return Status::OK();
    ChargePositioning(offset, len);
    ++stats_.writes;
    stats_.bytes_written += len;
    if (mode_ == DataMode::kRetain) StoreBytes(offset, data, len);
    return Status::OK();
  }

  Status Write(uint64_t offset, uint64_t len) { return Write(offset, len, {}); }

  Status Read(uint64_t offset, uint64_t len, std::vector<uint8_t>* out) {
    LOR_RETURN_IF_ERROR(CheckRange(offset, len));
    if (len == 0) {
      if (out != nullptr) out->clear();
      return Status::OK();
    }
    ChargePositioning(offset, len);
    ++stats_.reads;
    stats_.bytes_read += len;
    if (out != nullptr) LoadBytes(offset, len, out);
    return Status::OK();
  }

  Status Read(uint64_t offset, uint64_t len) {
    return Read(offset, len, nullptr);
  }

  Status ReadV(std::span<const IoSlice> slices) {
    for (const IoSlice& s : slices) {
      LOR_RETURN_IF_ERROR(CheckRange(s.offset, s.length));
    }
    bool charged = false;
    for (const IoSlice& s : slices) {
      if (s.length == 0) continue;
      ChargePositioning(s.offset, s.length);
      ++stats_.reads;
      stats_.bytes_read += s.length;
      ++stats_.coalesced_runs;
      charged = true;
      if (s.dst != nullptr) {
        LoadBytes(s.offset, s.length, &scratch_);
        std::memcpy(s.dst, scratch_.data(), s.length);
      }
    }
    if (charged) ++stats_.vectored_requests;
    return Status::OK();
  }

  Status WriteV(std::span<const IoSlice> slices) {
    for (const IoSlice& s : slices) {
      LOR_RETURN_IF_ERROR(CheckRange(s.offset, s.length));
    }
    bool charged = false;
    for (const IoSlice& s : slices) {
      if (s.length == 0) continue;
      ChargePositioning(s.offset, s.length);
      ++stats_.writes;
      stats_.bytes_written += s.length;
      ++stats_.coalesced_runs;
      charged = true;
      if (mode_ == DataMode::kRetain) {
        StoreBytes(s.offset,
                   s.src == nullptr
                       ? std::span<const uint8_t>()
                       : std::span<const uint8_t>(s.src, s.length),
                   s.length);
      }
    }
    if (charged) ++stats_.vectored_requests;
    return Status::OK();
  }

  void Flush() {
    head_valid_ = false;
    stats_.busy_time_s += kFlushCost;
    clock_.Advance(kFlushCost);
  }

  void ChargeCpu(double seconds) { clock_.Advance(seconds); }

  uint64_t head_position() const { return head_; }

 private:
  Status CheckRange(uint64_t offset, uint64_t len) const {
    if (offset > capacity() || len > capacity() - offset) {
      return Status::InvalidArgument("request beyond device capacity");
    }
    return Status::OK();
  }

  void ChargePositioning(uint64_t offset, uint64_t len) {
    double t = model_.params().per_request_overhead_s;
    if (head_valid_ && offset == head_) {
      ++stats_.sequential_hits;
    } else {
      const double seek = model_.SeekTime(head_valid_ ? head_ : 0, offset);
      const double rot = model_.RotationalLatency();
      stats_.seek_time_s += seek;
      stats_.rotational_time_s += rot;
      t += seek + rot;
      ++stats_.seeks;
    }
    const double transfer = model_.TransferTime(offset, len);
    stats_.transfer_time_s += transfer;
    t += transfer;
    stats_.busy_time_s += t;
    clock_.Advance(t);
    head_ = offset + len;
    head_valid_ = true;
  }

  void StoreBytes(uint64_t offset, std::span<const uint8_t> data,
                  uint64_t len) {
    uint64_t pos = 0;
    while (pos < len) {
      const uint64_t page = (offset + pos) / kDataPageBytes;
      const uint64_t in_page = (offset + pos) % kDataPageBytes;
      const uint64_t chunk = std::min(len - pos, kDataPageBytes - in_page);
      auto& storage = pages_[page];
      if (storage.empty()) storage.resize(kDataPageBytes, 0);
      if (!data.empty()) {
        std::memcpy(storage.data() + in_page, data.data() + pos, chunk);
      } else {
        std::memset(storage.data() + in_page, 0, chunk);
      }
      pos += chunk;
    }
  }

  void LoadBytes(uint64_t offset, uint64_t len, std::vector<uint8_t>* out) {
    out->assign(len, 0);
    if (mode_ != DataMode::kRetain) return;
    uint64_t pos = 0;
    while (pos < len) {
      const uint64_t page = (offset + pos) / kDataPageBytes;
      const uint64_t in_page = (offset + pos) % kDataPageBytes;
      const uint64_t chunk = std::min(len - pos, kDataPageBytes - in_page);
      auto it = pages_.find(page);
      if (it != pages_.end()) {
        std::memcpy(out->data() + pos, it->second.data() + in_page, chunk);
      }
      pos += chunk;
    }
  }

  static constexpr uint64_t kDataPageBytes = 64 * kKiB;
  static constexpr double kFlushCost = 0.0005;

  DiskModel model_;
  DataMode mode_;
  SimClock clock_;
  IoStats stats_;
  uint64_t head_ = 0;
  bool head_valid_ = false;
  std::unordered_map<uint64_t, std::vector<uint8_t>> pages_;
  std::vector<uint8_t> scratch_;  ///< ReadV staging (hash map only).
};

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_REFERENCE_DATA_PLANE_H_
