#include "sim/io_stats.h"

#include <cstdio>

#include "util/units.h"

namespace lor {
namespace sim {

IoStats IoStats::operator-(const IoStats& other) const {
  IoStats d;
  d.reads = reads - other.reads;
  d.writes = writes - other.writes;
  d.bytes_read = bytes_read - other.bytes_read;
  d.bytes_written = bytes_written - other.bytes_written;
  d.seeks = seeks - other.seeks;
  d.sequential_hits = sequential_hits - other.sequential_hits;
  d.vectored_requests = vectored_requests - other.vectored_requests;
  d.coalesced_runs = coalesced_runs - other.coalesced_runs;
  d.seek_time_s = seek_time_s - other.seek_time_s;
  d.rotational_time_s = rotational_time_s - other.rotational_time_s;
  d.transfer_time_s = transfer_time_s - other.transfer_time_s;
  d.busy_time_s = busy_time_s - other.busy_time_s;
  d.interference_seeks = interference_seeks - other.interference_seeks;
  d.interference_seek_time_s =
      interference_seek_time_s - other.interference_seek_time_s;
  d.queue_wait_s = queue_wait_s - other.queue_wait_s;
  d.media_read_errors = media_read_errors - other.media_read_errors;
  d.degraded_requests = degraded_requests - other.degraded_requests;
  d.degraded_time_s = degraded_time_s - other.degraded_time_s;
  return d;
}

IoStats& IoStats::operator+=(const IoStats& other) {
  reads += other.reads;
  writes += other.writes;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  seeks += other.seeks;
  sequential_hits += other.sequential_hits;
  vectored_requests += other.vectored_requests;
  coalesced_runs += other.coalesced_runs;
  seek_time_s += other.seek_time_s;
  rotational_time_s += other.rotational_time_s;
  transfer_time_s += other.transfer_time_s;
  busy_time_s += other.busy_time_s;
  interference_seeks += other.interference_seeks;
  interference_seek_time_s += other.interference_seek_time_s;
  queue_wait_s += other.queue_wait_s;
  media_read_errors += other.media_read_errors;
  degraded_requests += other.degraded_requests;
  degraded_time_s += other.degraded_time_s;
  return *this;
}

IoStats IoStats::operator+(const IoStats& other) const {
  IoStats sum = *this;
  sum += other;
  return sum;
}

IoStats Sum(std::span<const IoStats> parts) {
  IoStats total;
  for (const IoStats& part : parts) total += part;
  return total;
}

std::string IoStats::ToString() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "reads=%llu (%s) writes=%llu (%s) seeks=%llu seq=%llu vec=%llu "
      "runs=%llu busy=%s interf=%llu qwait=%s",
      static_cast<unsigned long long>(reads), FormatBytes(bytes_read).c_str(),
      static_cast<unsigned long long>(writes),
      FormatBytes(bytes_written).c_str(),
      static_cast<unsigned long long>(seeks),
      static_cast<unsigned long long>(sequential_hits),
      static_cast<unsigned long long>(vectored_requests),
      static_cast<unsigned long long>(coalesced_runs),
      FormatSeconds(busy_time_s).c_str(),
      static_cast<unsigned long long>(interference_seeks),
      FormatSeconds(queue_wait_s).c_str());
  return buf;
}

}  // namespace sim
}  // namespace lor
