// MediaFaultModel: partial media failures for the simulated spindle.
//
// sim::FaultInjector (PR 7) models fail-stop power cuts; real drives
// also fail *partially* — latent sector errors that surface only when a
// sector is finally read, silent bit rot that returns wrong bytes with
// a clean status, and degraded regions that still answer but slowly.
// This model layers those three failure classes over one or more
// BlockDevices:
//
//   * Latent sector errors (LSE). A seeded fraction of fixed-size
//     regions fail reads with a typed Status::IoError. Transient LSEs
//     clear after a configured number of failed attempts (the drive's
//     internal retry eventually wins); persistent LSEs fail until the
//     region is rewritten — writes always succeed because the drive
//     remaps the bad sector from its spare pool (redirect-on-write),
//     which also heals the region for subsequent reads.
//   * Silent corruption. A seeded fraction of regions have bits flipped
//     *at rest* when the model is armed: the retained arena bytes are
//     modified in place, so reads succeed with wrong payload and only
//     an end-to-end checksum can tell. Overwrites naturally restore the
//     flipped bytes; regions whose slab was never written are skipped
//     (there is nothing at rest to rot).
//   * Degraded regions. A seeded fraction of regions inflate the
//     service time of every request touching them by a configurable
//     multiplier (a head limping over a marginal surface). The extra
//     time is accounted separately (IoStats::degraded_requests /
//     degraded_time_s) so the seek/rotation/transfer decomposition
//     stays exact.
//
// Scope of the read check: this simulator keeps all *metadata*
// host-resident — MFT records, journal entries, B-tree pointer pages
// and log records charge device time but never round-trip their
// content through the arena. Media faults therefore bite where bytes
// are actually loaded from the platter: reads that deliver payload
// (non-null destination). Timing-only reads pass the check, which is
// exactly the surface the storage layers protect with checksums,
// retries, and the scrubber. Degraded-region slowdowns apply to every
// request (timing is timing).
//
// Determinism: region classification is a pure hash of (model seed,
// device salt, region index) — no RNG state advances on the read path,
// so a given (workload, spec) pair always fails the same reads at the
// same times. Runtime state (remaining transient failures, healed
// regions) is allocated lazily, only for regions that actually fault.
//
// Cost when cold: a detached or disarmed model costs the device one
// null/flag check per request, so every committed figure is
// bit-identical with or without a model attached.
//
// `set_suspended(true)` pauses all fault effects (reads pass, no
// slowdown) without losing region state — mount, fsck, and oracle
// verification passes use it to examine the volume without the media
// fighting back.

#ifndef LOREPO_SIM_MEDIA_FAULT_H_
#define LOREPO_SIM_MEDIA_FAULT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace lor {
namespace sim {

class BlockDevice;

/// Fault mix for one arming window. Rates are per-region probabilities
/// in [0, 1]; the three classes are disjoint (a region is LSE, corrupt,
/// degraded, or healthy).
struct MediaFaultSpec {
  uint64_t seed = 1;
  /// Fault granularity: the model classifies fixed regions of this many
  /// bytes (a remapping-unit's worth of sectors).
  uint64_t region_bytes = 64 * 1024;
  /// Fraction of regions with a latent sector error.
  double lse_rate = 0.0;
  /// Of the LSE regions, the fraction that are transient.
  double transient_fraction = 0.5;
  /// Failed read attempts before a transient LSE clears.
  uint32_t transient_failures = 2;
  /// Fraction of regions silently corrupted (bits flipped at rest).
  double corruption_rate = 0.0;
  /// Bit flips applied per corrupted region.
  uint32_t flips_per_region = 4;
  /// Fraction of regions with degraded (slow) service.
  double degraded_rate = 0.0;
  /// Service-time multiplier for requests touching a degraded region.
  double degraded_multiplier = 4.0;
};

/// Retry discipline the storage layers apply to typed media read
/// errors: up to `max_attempts` total reads, charging `backoff_s` of
/// host CPU before each re-issue (the "wait out the drive's internal
/// recovery" delay).
struct MediaRetryPolicy {
  uint32_t max_attempts = 3;
  double backoff_s = 0.0005;
};

/// Cumulative model activity since the last Arm.
struct MediaFaultStats {
  uint64_t read_errors = 0;       ///< Typed read failures returned.
  uint64_t transient_clears = 0;  ///< Transient LSE regions that recovered.
  uint64_t regions_corrupted = 0; ///< Regions bit-flipped at Arm.
  uint64_t bytes_corrupted = 0;   ///< Total bytes whose value changed.
  uint64_t healed_regions = 0;    ///< Bad regions healed by a rewrite.
  uint64_t degraded_requests = 0; ///< Requests that paid the slow multiplier.
};

/// Seeded partial-media-failure model over one or more devices.
class MediaFaultModel {
 public:
  MediaFaultModel() = default;

  MediaFaultModel(const MediaFaultModel&) = delete;
  MediaFaultModel& operator=(const MediaFaultModel&) = delete;

  /// Registers a device (idempotent). Devices normally register
  /// themselves from BlockDevice::AttachMediaFaults; the registration
  /// order fixes each device's classification salt, so attach devices
  /// in a deterministic order.
  void RegisterDevice(BlockDevice* device);

  /// Arms the model: resets runtime state and stats, then materializes
  /// the spec's at-rest corruption into every registered kRetain
  /// device's written slabs. Re-arming with a new seed draws a fresh
  /// fault map.
  void Arm(const MediaFaultSpec& spec);

  /// Stops injecting (region state is kept for inspection).
  void Disarm() { armed_ = false; }

  bool armed() const { return armed_; }

  /// Pauses/resumes fault effects without losing state.
  void set_suspended(bool suspended) { suspended_ = suspended; }
  bool suspended() const { return suspended_; }

  const MediaFaultSpec& spec() const { return spec_; }
  const MediaFaultStats& stats() const { return stats_; }

  // -- Device hooks ----------------------------------------------------

  /// Read admission for a payload-delivering read at [offset,
  /// offset+len) on `device`. Returns OK or a typed Status::IoError;
  /// a transient LSE decrements its remaining-failures budget.
  Status CheckRead(const BlockDevice* device, uint64_t offset, uint64_t len);

  /// Extra service seconds a request of base service time `base_s`
  /// pays for touching a degraded region (0 when healthy/off).
  double DegradedExtra(const BlockDevice* device, uint64_t offset,
                       uint64_t len, double base_s);

  /// Write intake: heals every overlapped bad region (sector remap on
  /// write). Writes never fail.
  void NoteWrite(const BlockDevice* device, uint64_t offset, uint64_t len);

 private:
  enum class RegionClass : uint8_t {
    kHealthy,
    kTransientLse,
    kPersistentLse,
    kCorrupt,
    kDegraded,
  };

  struct RegionState {
    uint32_t remaining_failures = 0;  ///< Transient LSE budget.
    bool healed = false;
  };

  /// Pure-hash classification of region `index` on the device with
  /// classification salt `salt`.
  RegionClass Classify(uint64_t salt, uint64_t index) const;

  /// Salt for a registered device (device list index + 1); 0 when the
  /// device is unknown (treated as healthy).
  uint64_t SaltFor(const BlockDevice* device) const;

  /// Flips bits in the corrupt regions of one device's written slabs.
  void CorruptDevice(BlockDevice* device, uint64_t salt);

  MediaFaultSpec spec_;
  MediaFaultStats stats_;
  bool armed_ = false;
  bool suspended_ = false;
  std::vector<BlockDevice*> devices_;
  /// Lazily populated runtime state, keyed by (salt << 40) ^ region.
  std::unordered_map<uint64_t, RegionState> state_;
};

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_MEDIA_FAULT_H_
