#include "sim/io_scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "sim/block_device.h"
#include "sim/op_cost_model.h"
#include "sim/spindle_plane.h"

namespace lor {
namespace sim {

IoScheduler::IoScheduler(BlockDevice* device, LatencyRecorder* recorder)
    : device_(device), recorder_(recorder) {}

IoScheduler::~IoScheduler() {
  if (plane_ != nullptr) {
    // Retirement delivers any leftover ops and excludes this owner from
    // future rounds; the plane services stragglers in its endgame once
    // every owner has retired (repositories are destroyed serially).
    if (op_depth_ == 0) plane_->Retire(port_owner_, std::move(batch_));
    return;
  }
  // Never leave queued work uncharged: a scheduler destroyed mid-flight
  // still settles its timeline against the device clock.
  if (op_depth_ == 0) Drain();
}

Status IoScheduler::Engage(uint32_t queue_depth, SchedPolicy policy) {
  if (queue_depth == 0) {
    return Status::InvalidArgument("queue depth must be at least 1");
  }
  if (op_depth_ > 0) {
    return Status::NotSupported("cannot change queue depth inside an op");
  }
  if (plane_ != nullptr) {
    // Port mode: depth changes the batch/closed-loop width; the service
    // policy is a property of the shared head, fixed at plane
    // construction for every owner.
    if (policy != plane_->policy()) {
      return Status::NotSupported(
          "scheduling policy is fixed per shared spindle");
    }
    Settle();
    queue_depth_ = queue_depth;
    policy_ = policy;
    plane_->SetOwnerDepth(port_owner_, queue_depth);
    return Status::OK();
  }
  Drain();
  engaged_ = true;
  queue_depth_ = queue_depth;
  policy_ = policy;
  const double now = device_->clock().now();
  device_free_ = now;
  horizon_ = now;
  return Status::OK();
}

Status IoScheduler::Disengage() {
  if (op_depth_ > 0) {
    return Status::NotSupported("cannot change queue depth inside an op");
  }
  if (plane_ != nullptr) {
    Settle();
    queue_depth_ = 1;
    plane_->SetOwnerDepth(port_owner_, 1);
    return Status::OK();
  }
  Drain();
  engaged_ = false;
  queue_depth_ = 1;
  return Status::OK();
}

void IoScheduler::AttachSpindle(SpindlePlane* plane, uint32_t owner) {
  assert(plane_ == nullptr && "already ported");
  assert(op_depth_ == 0 && !engaged_ && !building_open_);
  plane_ = plane;
  port_owner_ = owner;
  plane_->BindOwner(owner, this);
}

double IoScheduler::Now() const {
  if (plane_ != nullptr) return plane_->OwnerNow(port_owner_);
  return device_->clock().now();
}

void IoScheduler::DeliverBatch() {
  if (batch_.empty()) return;
  plane_->Deliver(port_owner_, std::move(batch_));
  batch_.clear();
}

void IoScheduler::Settle() {
  if (plane_ == nullptr) return;
  assert(op_depth_ == 0 && "Settle inside an op scope");
  DeliverBatch();
  plane_->Fence(port_owner_, /*phase_end=*/false);
}

void IoScheduler::SettlePhase() {
  if (plane_ == nullptr) return;
  assert(op_depth_ == 0 && "SettlePhase inside an op scope");
  DeliverBatch();
  plane_->Fence(port_owner_, /*phase_end=*/true);
}

void IoScheduler::Drain() {
  if (plane_ != nullptr) {
    Settle();
    return;
  }
  assert(op_depth_ == 0 && "Drain inside an op scope");
  assert(!building_open_);
  while (ServiceOne()) {
  }
  // Advance the device clock to the completion horizon so synchronous
  // code resuming after the drain observes every queued charge.
  const double now = device_->clock().now();
  if (horizon_ > now) device_->clock().Advance(horizon_ - now);
  allocated_slots_ = 0;
  free_slots_ = {};
}

void IoScheduler::Abandon() {
  assert(plane_ == nullptr && "crash simulation is per-spindle: shared-"
         "spindle owners do not support Abandon");
  assert(op_depth_ == 0 && "Abandon inside an op scope");
  building_open_ = false;
  building_ = Op{};
  pending_.clear();
  allocated_slots_ = 0;
  free_slots_ = {};
  engaged_ = false;
  queue_depth_ = 1;
  // The abandoned timeline never happened; post-crash work charges
  // synchronously from the clock as it stands.
  const double now = device_->clock().now();
  device_free_ = now;
  horizon_ = now;
}

uint32_t IoScheduler::inflight_ops() const {
  if (plane_ != nullptr) {
    return static_cast<uint32_t>(batch_.size()) + (building_open_ ? 1u : 0u);
  }
  const uint32_t queued =
      static_cast<uint32_t>(pending_.size()) + (building_open_ ? 1u : 0u);
  return queued;
}

void IoScheduler::BeginOp(OpClass cls) {
  if (op_depth_++ > 0) return;  // Nested scopes attach to the outer op.
  if (plane_ != nullptr) {
    // Port mode: just open the chain. Admission (closed-loop arrival
    // assignment) happens on the plane when the op's batch joins a
    // service round.
    building_ = Op{};
    building_.cls = cls;
    building_open_ = true;
    return;
  }
  if (!engaged_) {
    sync_class_ = cls;
    sync_t0_ = device_->clock().now();
    return;
  }
  // Closed-loop admission: the op occupies a client slot. The first
  // queue_depth_ ops arrive immediately; afterwards each op reuses the
  // earliest-freeing slot and arrives at that completion time.
  double arrival = device_->clock().now();
  if (allocated_slots_ < queue_depth_) {
    ++allocated_slots_;
  } else {
    while (free_slots_.empty()) {
      if (!ServiceOne()) break;  // Slots leak only via scheduler misuse.
    }
    if (!free_slots_.empty()) {
      arrival = std::max(arrival, free_slots_.top());
      free_slots_.pop();
    }
  }
  building_ = Op{};
  building_.cls = cls;
  building_.arrival = arrival;
  building_.ready = arrival;
  building_open_ = true;
}

void IoScheduler::EndOp() {
  assert(op_depth_ > 0 && "EndOp without BeginOp");
  if (--op_depth_ > 0) return;
  if (plane_ != nullptr) {
    building_open_ = false;
    batch_.push_back(std::move(building_));
    building_ = Op{};
    if (batch_.size() >= queue_depth_) DeliverBatch();
    return;
  }
  if (!engaged_) {
    if (recorder_ != nullptr && sync_class_ != OpClass::kControl) {
      recorder_->Record(sync_class_, device_->clock().now() - sync_t0_);
    }
    return;
  }
  SealCurrentOp();
}

void IoScheduler::SealCurrentOp() {
  if (!building_open_) return;
  building_open_ = false;
  SettleFront(&building_);
  if (building_.chain.empty()) {
    CompleteOp(building_);
    return;
  }
  pending_.push_back(std::move(building_));
  building_ = Op{};
}

void IoScheduler::EnqueueRequest(bool write, uint64_t offset, uint64_t len,
                                 IoCompletion done, uint64_t tag) {
  assert(building_open_ && "device charge outside an op scope");
  Request r;
  r.kind = Request::Kind::kIo;
  r.write = write;
  r.offset = offset;
  r.len = len;
  r.seq = next_seq_++;
  r.tag = tag;
  r.done = std::move(done);
  building_.chain.push_back(std::move(r));
}

void IoScheduler::EnqueueFlush() {
  assert(building_open_ && "device charge outside an op scope");
  Request r;
  r.kind = Request::Kind::kFlush;
  r.seq = next_seq_++;
  building_.chain.push_back(std::move(r));
}

void IoScheduler::EnqueueCpu(double seconds) {
  assert(building_open_ && "device charge outside an op scope");
  Request r;
  r.kind = Request::Kind::kCpu;
  r.cpu_s = seconds;
  r.seq = next_seq_++;
  building_.chain.push_back(std::move(r));
}

void IoScheduler::EnqueueWindowBegin() {
  assert(building_open_ && "device charge outside an op scope");
  Request r;
  r.kind = Request::Kind::kWinBegin;
  r.seq = next_seq_++;
  building_.chain.push_back(std::move(r));
}

void IoScheduler::EnqueueWindowEnd(uint64_t len, double bandwidth_cap) {
  assert(building_open_ && "device charge outside an op scope");
  Request r;
  r.kind = Request::Kind::kWinEnd;
  r.len = len;
  r.cap = bandwidth_cap;
  r.seq = next_seq_++;
  building_.chain.push_back(std::move(r));
}

void IoScheduler::SettleFront(Op* op) {
  while (!op->chain.empty()) {
    Request& front = op->chain.front();
    switch (front.kind) {
      case Request::Kind::kCpu:
        op->ready += front.cpu_s;
        op->busy += front.cpu_s;
        break;
      case Request::Kind::kWinBegin:
        op->window_base = op->busy;
        break;
      case Request::Kind::kWinEnd: {
        // The stream window spans the op's own serviced seconds — the
        // async analogue of the synchronous wall-clock window. Queueing
        // delay from other ops is deliberately excluded: the penalty
        // models the host's streaming loop, which only runs while this
        // op's work does.
        const double window = op->busy - op->window_base;
        const double penalty =
            OpCostModel::StreamPenalty(front.len, front.cap, window);
        op->ready += penalty;
        op->busy += penalty;
        break;
      }
      case Request::Kind::kIo:
      case Request::Kind::kFlush:
        return;  // Device work: left for ServiceOne.
    }
    op->chain.pop_front();
  }
}

void IoScheduler::CompleteOp(const Op& op) {
  if (recorder_ != nullptr && op.cls != OpClass::kControl) {
    recorder_->Record(op.cls, op.ready - op.arrival);
  }
  horizon_ = std::max(horizon_, op.ready);
  free_slots_.push(op.ready);
  ++completed_ops_;
}

bool IoScheduler::ServiceOne() {
  // Reap ops whose chains are already settled empty (pure-CPU ops).
  for (auto it = pending_.begin(); it != pending_.end();) {
    SettleFront(&*it);
    if (it->chain.empty()) {
      CompleteOp(*it);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  if (pending_.empty()) return false;

  // The device dispatches at max(its free time, the earliest ready
  // front): it cannot start work that has not been issued yet.
  double min_ready = std::numeric_limits<double>::infinity();
  for (const Op& op : pending_) min_ready = std::min(min_ready, op.ready);
  const double dispatch = std::max(device_free_, min_ready);

  // Pick among fronts issued by dispatch time.
  std::list<Op>::iterator pick = pending_.end();
  double pick_cost = std::numeric_limits<double>::infinity();
  uint64_t pick_seq = std::numeric_limits<uint64_t>::max();
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->ready > dispatch) continue;
    const Request& front = it->chain.front();
    double cost = 0.0;
    if (policy_ == SchedPolicy::kSptf &&
        front.kind == Request::Kind::kIo) {
      cost = device_->PeekPositioningCost(front.offset);
    }
    const bool better =
        policy_ == SchedPolicy::kSptf
            ? (cost < pick_cost ||
               (cost == pick_cost && front.seq < pick_seq))
            : front.seq < pick_seq;
    if (better) {
      pick = it;
      pick_cost = cost;
      pick_seq = front.seq;
    }
  }
  assert(pick != pending_.end());

  Request front = std::move(pick->chain.front());
  pick->chain.pop_front();
  const double start = std::max(device_free_, pick->ready);
  const double service =
      front.kind == Request::Kind::kFlush
          ? device_->ServiceFlush()
          : device_->ServiceRequest(front.write, front.offset, front.len);
  const double completion = start + service;
  device_free_ = completion;
  pick->ready = completion;
  pick->busy += service;
  ++serviced_requests_;
  if (front.tag != 0) device_->NoteWriteServiced(front.tag);
  if (front.done) front.done(completion, Status::OK());

  SettleFront(&*pick);
  if (pick->chain.empty()) {
    CompleteOp(*pick);
    pending_.erase(pick);
  }
  return true;
}

}  // namespace sim
}  // namespace lor
