// Simulated wall clock. All device and CPU costs in lorepo accumulate
// into a SimClock so that experiments measure layout-determined time, not
// host wall time.

#ifndef LOREPO_SIM_SIM_CLOCK_H_
#define LOREPO_SIM_SIM_CLOCK_H_

#include <cassert>

namespace lor {
namespace sim {

/// Monotonic simulated time in seconds.
class SimClock {
 public:
  double now() const { return now_s_; }

  /// Advances time by `seconds`. Time is monotonic: a negative advance
  /// is a caller bug — asserted in debug builds, ignored in release
  /// builds (where the clock simply does not move backwards).
  void Advance(double seconds) {
    assert(seconds >= 0.0 && "SimClock::Advance called with negative time");
    if (seconds > 0.0) now_s_ += seconds;
  }

  void Reset() { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_SIM_CLOCK_H_
