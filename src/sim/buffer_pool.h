// BufferPool: a sized, sharded DRAM page-cache tier fronting one
// BlockDevice (ROADMAP item 2). The file-system back end routes its
// *payload* traffic through it at extent-run granularity while MFT and
// journal traffic stay on the device (the OS page cache does not
// double-cache its own metadata writes here); the database back end
// routes every PageFile access through it — data pages, pointer pages,
// and metadata checkpoints all live in the one page space, exactly as
// a database buffer pool caches them.
//
// Semantics:
//   * capacity_bytes == 0 (the default) disables the pool: every entry
//     point is a strict pass-through to the equivalent device call, so
//     the paper's cold-cache figures are reproduced bit-identically.
//   * Frames are variable-length (one per cached extent run), kept
//     non-overlapping, and indexed by start offset; a read that is
//     fully covered by resident frames is a *hit* and never touches
//     the device — it charges only the host-side cache CPU
//     (per-request cost + bytes / copy_bandwidth) via ChargeCpu, so
//     hits still ride op scopes and show up in latency percentiles.
//   * Misses fill through one vectored ReadV per call, at extent-run
//     granularity (optionally extended to the caller's fill range —
//     read-ahead), into frames recycled from per-size free lists (the
//     nanos-TFS buffer-recycling pattern: no per-fill allocation once
//     the pool is warm).
//   * Writes are write-back by default: payload lands in dirty frames
//     (host copy cost only) and reaches the platter lazily — when the
//     dirty ratio trips, on FlushRange/FlushAll (fs fsync), at
//     eviction, or at DrainIo — batched in offset order through one
//     vectored SubmitV, so flushes ride the PR 6 IoScheduler.
//     write_back=false charges every write through immediately
//     (install + device WriteV).
//   * While an armed sim::FaultInjector is attached to the device the
//     pool *forces write-through* (counted in forced_write_through),
//     so the PR 7 crash-consistency oracle stays honest: an acked op's
//     bytes are on the device before its commit record, never parked
//     in DRAM. Reset() drops everything (mount-time recovery).
//   * Eviction is CLOCK by default (strict LRU behind strict_lru),
//     sharded: frames hash to `shards` independent eviction domains,
//     each with its own capacity slice, clock hand, and recency index.
//     Pinned frames are never evicted — when a domain is entirely
//     pinned the pool grows past its slice and counts the refusal.
//   * Pin/Unpin operate on the frames resident in a byte range; the
//     handle layer pins an object's cached frames for the open window.
//
// Data is retained in frames only when the device itself retains data
// (DataMode::kRetain); on metadata-only devices frames are bookkeeping
// records — hits and misses charge identically, reads yield zeros, and
// no payload memory is spent, so paper-scale benches can model caches
// larger than host RAM.
//
// Threading: confined to the owning device's thread, like the device.

#ifndef LOREPO_SIM_BUFFER_POOL_H_
#define LOREPO_SIM_BUFFER_POOL_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "sim/block_device.h"
#include "util/status.h"

namespace lor {
namespace sim {

/// Tuning of one pool. The defaults (capacity 0) disable it.
struct BufferPoolOptions {
  /// Total frame bytes the pool may hold. 0 = disabled (pass-through).
  uint64_t capacity_bytes = 0;
  /// Independent eviction domains (capacity slice + CLOCK hand each).
  uint32_t shards = 4;
  /// Strict LRU eviction instead of CLOCK.
  bool strict_lru = false;
  /// Write-back with lazy flush; false = write-through.
  bool write_back = true;
  /// Flush all dirty frames when dirty bytes exceed this fraction of
  /// capacity (the lazy-writer threshold).
  double dirty_ratio = 0.25;
  /// Extend miss fills to the caller's fill range (extent-run
  /// read-ahead). Off = fill exactly what was requested.
  bool read_ahead = true;
  /// Host CPU per clean-hit request (lookup + bookkeeping).
  double hit_cpu_s = 2e-6;
  /// Host memcpy bandwidth for hit copies and cache installs.
  double copy_bandwidth = 2.0e9;
};

/// Cumulative pool counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t fills = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;        ///< Dirty frames written back.
  uint64_t invalidations = 0;     ///< Frames dropped by Invalidate().
  uint64_t hit_bytes = 0;
  uint64_t miss_bytes = 0;
  uint64_t fill_bytes = 0;
  uint64_t writeback_bytes = 0;
  uint64_t frame_allocs = 0;      ///< Fresh frame buffers allocated.
  uint64_t frame_recycles = 0;    ///< Buffers reused from free lists.
  uint64_t pinned_hits = 0;       ///< Hits whose frames were pinned.
  uint64_t eviction_refusals = 0; ///< Domain fully pinned; pool grew.
  uint64_t write_installs = 0;    ///< Writes absorbed into frames.
  uint64_t forced_write_through = 0;  ///< Armed-injector write-throughs.

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// One physically contiguous request routed through the pool. The
/// requested range is [offset, offset+length); on a miss the pool fills
/// [fill_offset, fill_offset+fill_length) (must contain the request;
/// fill_length == 0 means fill exactly the request). `src`/`dst` follow
/// the IoSlice rules (null = timing-only / metadata-only).
struct CacheSlice {
  uint64_t offset = 0;
  uint64_t length = 0;
  const uint8_t* src = nullptr;  ///< WriteThrough payload source.
  uint8_t* dst = nullptr;        ///< ReadThrough payload destination.
  uint64_t fill_offset = 0;
  uint64_t fill_length = 0;
};

/// Sharded page cache over one BlockDevice.
class BufferPool {
 public:
  BufferPool(BlockDevice* device, BufferPoolOptions options = {});

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// False when capacity is 0: callers take their historical direct
  /// device path, making the disabled pool a true no-op.
  bool enabled() const { return options_.capacity_bytes > 0; }

  /// Reads every slice through the cache. Slices must be disjoint and
  /// within device capacity. `device_bytes` (optional) receives the
  /// bytes actually read from the device (0 on an all-hit call).
  Status ReadThrough(std::span<const CacheSlice> slices,
                     uint64_t* device_bytes = nullptr);

  /// Writes every slice through the cache: payload is installed into
  /// frames and either marked dirty (write-back) or written through in
  /// one vectored WriteV (write-through / armed injector).
  /// `device_bytes` receives the bytes written through immediately
  /// (excluding any lazy-writer flush this call happens to trigger).
  Status WriteThrough(std::span<const CacheSlice> slices,
                      uint64_t* device_bytes = nullptr);

  /// Cache-coherent twin of BlockDevice::ReadView: chunks covered by a
  /// resident frame come from the frame (dirty bytes included), gaps
  /// fall through to the device arena. Charges nothing.
  template <typename Fn>
  void View(uint64_t offset, uint64_t len, Fn&& fn) const {
    while (len > 0) {
      uint64_t chunk = 0;
      const uint8_t* p = ViewChunk(offset, len, &chunk);
      if (p != nullptr) {
        fn(std::span<const uint8_t>(p, chunk));
        offset += chunk;
        len -= chunk;
        continue;
      }
      // Uncached gap (or metadata-only frame): device view for exactly
      // the gap, then resume against the cache.
      device_->ReadView(offset, chunk, fn);
      offset += chunk;
      len -= chunk;
    }
  }

  /// Cache-coherent twin of BlockDevice::WriteView: chunks covered by a
  /// resident data-carrying frame are written in the frame (marked
  /// dirty under write-back, copied through to the arena under
  /// write-through); gaps fall through to the device. Charges nothing;
  /// pair with WriteThrough for the timing.
  template <typename Fn>
  void WriteViewThrough(uint64_t offset, uint64_t len, Fn&& fn) {
    const bool through = !WriteBackActive();
    while (len > 0) {
      uint64_t chunk = 0;
      uint8_t* p = MutableViewChunk(offset, len, &chunk, through);
      if (p != nullptr) {
        fn(std::span<uint8_t>(p, chunk));
        if (through) CopyFrameToDevice(offset, p, chunk);
      } else {
        device_->WriteView(offset, chunk, fn);
      }
      offset += chunk;
      len -= chunk;
    }
  }

  /// Drops every frame overlapping [offset, offset+len), discarding
  /// dirty content (the owner is gone — delete/replace/defrag-move).
  void Invalidate(uint64_t offset, uint64_t len);

  /// Writes back dirty frames overlapping [offset, offset+len) in one
  /// offset-ordered vectored SubmitV (fs fsync durability).
  Status FlushRange(uint64_t offset, uint64_t len);

  /// Writes back every dirty frame (lazy-writer / DrainIo / pre-arm).
  Status FlushAll();

  /// Pins every frame resident in the range (eviction refuses pinned
  /// frames); returns how many frames were pinned. Frames installed
  /// *after* the pin are not covered — pin windows protect what the
  /// opener found cached, the hot-loop reads pin transiently inside
  /// ReadThrough.
  uint64_t PinRange(uint64_t offset, uint64_t len);

  /// Unpins resident frames in the range (frames dropped or installed
  /// since the pin are skipped; pin counts never go below zero).
  void UnpinRange(uint64_t offset, uint64_t len);

  /// Drops all frames (dirty included) and recycling lists — the
  /// post-crash mount path. Cumulative stats survive.
  void Reset();

  const BufferPoolStats& stats() const { return stats_; }
  const BufferPoolOptions& options() const { return options_; }
  uint64_t cached_bytes() const { return cached_bytes_; }
  uint64_t dirty_bytes() const { return dirty_bytes_; }
  uint64_t frame_count() const { return frames_.size(); }
  BlockDevice* device() { return device_; }

 private:
  struct Frame {
    uint64_t offset = 0;
    uint64_t length = 0;
    /// Payload; empty on metadata-only devices (bookkeeping frame).
    std::vector<uint8_t> data;
    uint32_t pin = 0;
    uint32_t shard = 0;
    uint64_t lru_seq = 0;
    bool dirty = false;
    bool referenced = false;  ///< CLOCK second-chance bit.
    uint64_t end() const { return offset + length; }
  };

  /// One deferred payload move of a ReadThrough call (hit copies and
  /// miss copy-outs both run after the batched fill ReadV, so a frame
  /// installed by an earlier slice is never read before it is filled).
  struct CopyJob {
    Frame* frame = nullptr;
    uint64_t offset_in_frame = 0;
    uint8_t* dst = nullptr;
    uint64_t length = 0;
  };

  /// Per-domain eviction state. The clock ring holds (offset, install
  /// seq) pairs; entries whose seq no longer matches the resident
  /// frame are stale and removed lazily as the hand passes them.
  struct Shard {
    uint64_t used_bytes = 0;
    std::vector<std::pair<uint64_t, uint64_t>> clock_ring;
    size_t hand = 0;
    std::map<uint64_t, uint64_t> lru_index;  ///< seq -> frame offset.
  };

  uint32_t ShardOf(uint64_t offset) const {
    return static_cast<uint32_t>((offset >> 20) % options_.shards);
  }
  uint64_t ShardCapacity() const {
    return options_.capacity_bytes / options_.shards;
  }
  bool RetainData() const {
    return device_->data_mode() == DataMode::kRetain;
  }
  /// True when writes may park in dirty frames right now (write-back
  /// configured and no armed fault injector on the device).
  bool WriteBackActive() const;

  /// Iterator to the first frame intersecting [offset, offset+len), or
  /// end() when none does.
  std::map<uint64_t, Frame>::iterator FirstOverlap(uint64_t offset,
                                                   uint64_t len);
  /// Frame containing `offset`, or null.
  Frame* FrameAt(uint64_t offset);
  const Frame* FrameAt(uint64_t offset) const;

  /// True when [offset, offset+len) is fully covered by (contiguous)
  /// resident frames.
  bool Covered(uint64_t offset, uint64_t len) const;

  /// Marks a frame recently used (CLOCK ref bit / LRU re-stamp).
  void Touch(Frame* frame);

  /// Installs a frame for [offset, len): flushes dirty partial
  /// overlaps, drops full overlaps, evicts for space, takes a recycled
  /// buffer. `*out` receives the new frame.
  Status InstallFrame(uint64_t offset, uint64_t len, Frame** out);

  /// Evicts until `shard` can absorb `incoming` more bytes; gives up
  /// (and lets the domain overflow) when only pinned frames remain.
  Status EvictFor(uint32_t shard, uint64_t incoming);
  /// Evicts one unpinned frame from `shard`; `*evicted` reports whether
  /// one existed.
  Status EvictOne(uint32_t shard, bool* evicted);

  /// Removes a frame from the index + eviction state, recycling its
  /// buffer, and returns the iterator past it. Does not write anything
  /// back — callers flush or discard dirty content first.
  std::map<uint64_t, Frame>::iterator DropFrame(
      std::map<uint64_t, Frame>::iterator it);

  /// Writes one dirty frame back (scalar submit) and marks it clean.
  Status WriteBackFrame(Frame* frame);

  /// Flushes the dirty frames overlapping [offset, offset+len) — the
  /// shared core of FlushRange/FlushAll — as one SubmitV batch.
  Status FlushOverlapping(uint64_t offset, uint64_t len);

  /// Buffer recycling (per-size free lists, power-of-two classes).
  std::vector<uint8_t> TakeBuffer(uint64_t len);
  void RecycleBuffer(std::vector<uint8_t>&& buffer);

  /// View helpers: pointer into the frame covering `offset` (null when
  /// uncached or metadata-only; *chunk then spans the gap).
  const uint8_t* ViewChunk(uint64_t offset, uint64_t len,
                           uint64_t* chunk) const;
  uint8_t* MutableViewChunk(uint64_t offset, uint64_t len, uint64_t* chunk,
                            bool through);
  /// Copies frame bytes through to the device arena (write-through
  /// views).
  void CopyFrameToDevice(uint64_t offset, const uint8_t* src, uint64_t len);

  BlockDevice* device_;
  BufferPoolOptions options_;
  BufferPoolStats stats_;
  /// Non-overlapping frames by start offset.
  std::map<uint64_t, Frame> frames_;
  std::vector<Shard> shards_;
  uint64_t cached_bytes_ = 0;
  uint64_t dirty_bytes_ = 0;
  uint64_t lru_clock_ = 0;
  /// Recycled buffers by floor-log2 capacity class.
  std::vector<std::vector<std::vector<uint8_t>>> free_lists_;
  uint64_t free_list_bytes_ = 0;
  /// Scratch for the vectored fill/flush submissions and deferred
  /// copies — reused across calls so the hit path never allocates.
  std::vector<IoSlice> fill_slices_;
  std::vector<IoRequest> flush_requests_;
  std::vector<Frame*> flush_frames_;
  std::vector<CopyJob> copy_jobs_;
  /// Start offsets of frames installed by the in-progress ReadThrough;
  /// a failed fill drops exactly these (never parks them as valid).
  std::vector<uint64_t> fill_offsets_;
};

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_BUFFER_POOL_H_
