// FaultInjector: power-cut fault injection for the simulated device
// plane.
//
// A torture harness arms the injector with a crash point — "power dies
// at the Nth write submission" or "power dies at the first write at or
// after a charged-time deadline" — and runs a write workload. While
// armed, every device write submission is recorded (with its arena
// pre-image under DataMode::kRetain) and assigned a monotonically
// increasing sequence number; storage back ends stamp their host-side
// recovery intents with these sequence numbers so mount-time recovery
// can ask which of its writes actually reached the platter.
//
// At the cut, MaterializeCrash() rewrites the arena into the post-crash
// image honoring the IoScheduler's completion state:
//
//   * writes serviced before the cut are durable (kept);
//   * the write in flight at the cut is torn at sector granularity —
//     keep-prefix, drop, or garbage-fill of the boundary sector, drawn
//     from a seeded RNG;
//   * writes submitted but never serviced (still queued behind the
//     scheduler at the cut) are lost, regardless of submission order —
//     under SPTF the durable set follows actual service order.
//
// Restoration applies pre-images in reverse submission order, so
// overlapping writes (recycled MFT slots, rotating journal wrap)
// resolve exactly as the platter would: each surviving byte shows the
// newest durable write that touched it.
//
// One injector may be attached to several devices (a BlobStore's data
// and log volumes share the same power supply); the sequence counter
// and the cut are global across all of them.
//
// The injector charges nothing and allocates nothing unless armed, so
// clean-path runs (every figure bench) are bit-identical with or
// without one attached.

#ifndef LOREPO_SIM_FAULT_INJECTOR_H_
#define LOREPO_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace lor {
namespace sim {

class BlockDevice;

/// Post-crash classification of one recorded write.
enum class WriteFate : uint8_t {
  kPending,  ///< Not yet classified (no crash materialized).
  kDurable,  ///< Serviced before the cut; bytes survive.
  kTorn,     ///< In flight at the cut; partially applied.
  kLost,     ///< Queued but unserviced (or submitted after the cut).
};

/// Where and how the power dies.
struct CrashSpec {
  /// Trip on the Nth recorded write submission (1-based). 0 selects the
  /// deadline trigger instead.
  uint64_t crash_after_writes = 0;
  /// With crash_after_writes == 0: trip on the first write submitted at
  /// or after this simulated time.
  double deadline_s = 0.0;
  /// Seeds the tearing RNG (torn mode, kept sector count, garbage).
  uint64_t seed = 1;
};

/// What MaterializeCrash did to the recorded window.
struct CrashReport {
  uint64_t writes_recorded = 0;
  uint64_t durable_writes = 0;
  uint64_t torn_writes = 0;
  uint64_t lost_writes = 0;
  uint64_t lost_bytes = 0;  ///< Bytes of lost + torn-discarded ranges.
  uint64_t trip_seq = 0;    ///< Sequence number of the tearing write.
};

/// Records armed-window writes and materializes the post-crash image.
class FaultInjector {
 public:
  /// Begins an armed window. Requires every attached device's scheduler
  /// to be quiescent (drained): writes submitted before the window are
  /// durable by definition, so arming over a non-empty queue would
  /// silently promote doomed writes. Clears any previous window.
  void Arm(const CrashSpec& spec);

  /// Ends the window without a crash and frees all recorded state.
  void Disarm();

  /// True while recording (between Arm and MaterializeCrash/Disarm).
  bool armed() const { return state_ == State::kArmed; }
  /// True once the crash point has been reached.
  bool tripped() const { return tripped_; }
  /// Sequence number of the most recent recorded write; 0 when none.
  uint64_t last_seq() const { return records_.size(); }

  // -- Device hooks ----------------------------------------------------

  /// Records one write submission; returns its sequence number (the
  /// device's completion tag), or 0 when not armed.
  uint64_t RecordWrite(BlockDevice* device, uint64_t offset, uint64_t len);

  /// Marks a recorded write as serviced (reached the platter).
  void MarkServiced(uint64_t seq);

  // -- Crash -----------------------------------------------------------

  /// Classifies every recorded write and rewrites the attached arenas
  /// into the post-crash image. After this the injector is no longer
  /// armed; Fate() answers durability queries until the next Arm().
  CrashReport MaterializeCrash();

  /// Post-crash fate of a recorded write. Sequence 0 — "no device write
  /// backs this intent" (metadata charging disabled) — is durable by
  /// definition, so vacuous commit points never block recovery.
  WriteFate Fate(uint64_t seq) const;
  bool IsDurable(uint64_t seq) const {
    return seq == 0 || Fate(seq) == WriteFate::kDurable;
  }
  /// True when every write in [lo, hi] is durable; lo == 0 means "no
  /// writes" and is vacuously true.
  bool RangeDurable(uint64_t lo, uint64_t hi) const {
    if (lo == 0) return true;
    for (uint64_t s = lo; s <= hi; ++s) {
      if (!IsDurable(s)) return false;
    }
    return true;
  }

 private:
  enum class State : uint8_t { kIdle, kArmed, kCrashed };

  struct WriteRecord {
    BlockDevice* device = nullptr;
    uint64_t offset = 0;
    uint64_t len = 0;
    bool serviced = false;
    WriteFate fate = WriteFate::kPending;
    /// Arena bytes the write replaced (empty in kMetadataOnly mode).
    std::vector<uint8_t> pre_image;
  };

  /// Applies the tearing verdict to one record: restores the discarded
  /// suffix and optionally garbages the boundary sector. Returns the
  /// number of discarded bytes.
  uint64_t TearRecord(WriteRecord* rec, Rng* rng);

  State state_ = State::kIdle;
  CrashSpec spec_;
  bool tripped_ = false;
  uint64_t trip_seq_ = 0;
  /// records_[seq - 1] is the write with sequence number seq.
  std::vector<WriteRecord> records_;
};

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_FAULT_INJECTOR_H_
