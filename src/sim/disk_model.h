// Analytic model of a rotating disk: distance-dependent seeks, rotational
// latency, and zoned (outer-to-inner) transfer bandwidth.
//
// The paper's testbed used Seagate ST3400832AS 400 GB 7200 rpm SATA
// drives; `DiskParams::St3400832as()` reproduces that drive's datasheet
// characteristics. The model is deliberately first-order: the paper's
// conclusions depend on seek *counts* (fragments per object) and on the
// sequential-vs-random distinction, both of which the model captures.

#ifndef LOREPO_SIM_DISK_MODEL_H_
#define LOREPO_SIM_DISK_MODEL_H_

#include <cstdint>
#include <string>

#include "util/units.h"

namespace lor {
namespace sim {

/// Physical parameters of the simulated drive.
struct DiskParams {
  uint64_t capacity_bytes = 400 * kGiB;
  uint32_t sector_bytes = 512;
  double rpm = 7200.0;

  /// Track-to-track seek (adjacent cylinder), seconds.
  double min_seek_s = 0.0008;
  /// Full-stroke seek, seconds.
  double max_seek_s = 0.017;
  /// Weight of the sqrt component of the seek curve; the remainder is
  /// linear. Short seeks are dominated by the sqrt (acceleration) phase.
  double seek_sqrt_weight = 0.7;

  /// Sustained media bandwidth at the outermost zone, bytes/second.
  double outer_bandwidth = 65.0 * 1e6;
  /// Sustained media bandwidth at the innermost zone, bytes/second.
  double inner_bandwidth = 35.0 * 1e6;
  /// Number of discrete recording zones.
  uint32_t num_zones = 16;

  /// Controller + command overhead per request, seconds.
  double per_request_overhead_s = 0.0001;

  /// A 2006-era Seagate 400 GB 7200 rpm SATA drive (the paper's Table 1).
  static DiskParams St3400832as();

  /// Same drive geometry scaled to a different capacity (zone bandwidths
  /// and seek curve unchanged); used for the volume-size sweeps.
  DiskParams WithCapacity(uint64_t bytes) const;

  std::string ToString() const;
};

/// Pure-function time model over DiskParams. Stateless; the stateful
/// cursor (head position, sequential detection) lives in BlockDevice.
class DiskModel {
 public:
  explicit DiskModel(DiskParams params);

  const DiskParams& params() const { return params_; }

  /// Seconds to move the head between two byte offsets. Zero distance is
  /// free; otherwise the curve is
  ///   min + (max-min) * (w*sqrt(d) + (1-w)*d),  d = distance/capacity.
  double SeekTime(uint64_t from_byte, uint64_t to_byte) const;

  /// Average rotational latency (half a revolution), seconds.
  double RotationalLatency() const;

  /// Seconds to transfer `nbytes` starting at `byte_offset`, honouring
  /// zone boundaries (outer zones are faster).
  double TransferTime(uint64_t byte_offset, uint64_t nbytes) const;

  /// Bandwidth (bytes/s) of the zone containing `byte_offset`.
  double BandwidthAt(uint64_t byte_offset) const;

  /// Zone index (0 = outermost/fastest) of `byte_offset`.
  uint32_t ZoneOf(uint64_t byte_offset) const;

  /// Seconds for one full revolution.
  double RevolutionTime() const;

 private:
  DiskParams params_;
  uint64_t zone_size_bytes_;
};

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_DISK_MODEL_H_
