// SpindlePlane: the shared-spindle execution plane — several shards'
// volumes on disjoint regions of ONE simulated disk, one head, one
// clock, with concurrent submission from the owners' threads and a
// deterministic service interleave.
//
// Topology. The plane owns a *hub* BlockDevice whose capacity is
// owners × stride (stride = the per-owner region, aligned up to the
// slab size) and hands each owner a view device (`CreateOwnerDevice`)
// aliasing its region. Each owner's IoScheduler is re-homed onto the
// plane with IoScheduler::AttachSpindle: sealed op chains accumulate
// into batches of `queue_depth` ops and are *delivered* to the plane
// instead of being serviced against a private device.
//
// Service model — rounds. The plane services *rounds*: one delivered
// batch from every active owner whose queue front is a batch. A round
// cannot form until every active owner has something queued (a batch or
// a fence), which is what makes the interleave a function of the
// per-owner submission sequences alone — never of host thread timing.
// Within a round the service order is:
//
//   * FIFO  — a salted slot shuffle: positions are permuted by a hash
//     of (plane seed, round number, position), then each owner's
//     positions are refilled with its ops in program order. Different
//     owners interleave pseudo-randomly but reproducibly; one owner's
//     ops never reorder against each other.
//   * SPTF  — NCQ-style: repeatedly pick, among the owners' earliest
//     unserviced ops, the one whose first device request has the
//     smallest positioning cost from the current head (ties broken by
//     the salted key). Starvation is bounded by construction: a round
//     is a finite set and every op in it is serviced before the next
//     round begins.
//
// Charging — exact synchronous replay. An op's chain is serviced
// *contiguously*: every entry advances the hub clock through the same
// arithmetic the synchronous path uses (ServiceRequest / ServiceFlush /
// CPU seconds / stream-window penalty over the op's own span). One
// owner alone on a spindle at queue depth 1 therefore reproduces the
// dedicated synchronous timeline bit for bit — clock, stats, and
// latency records. With several owners, consecutive chains from
// different owners pay the head movement between their regions; the
// hub attributes those as interference seeks on the owners' views.
//
// Closed loop & latency. Each owner runs its own closed loop of
// `depth` logical clients: an op's arrival is the completion time of
// the slot it reuses, service starts when the head reaches it, and
// completion − arrival is the recorded latency; start − arrival
// accumulates as the owner's queue_wait_s. Single owner at depth 1:
// arrival == start, queue wait identically zero.
//
// Fences. `IoScheduler::Settle` (regular fence — Drain/Engage/
// Disengage) pops in lockstep: one fence from every active owner, once
// every active owner's front is a fence; each popped owner resets its
// closed loop. `IoScheduler::SettlePhase` (phase fence — workload
// phase boundaries) pops eagerly when it reaches its owner's front and
// *parks* the owner; when every live owner is parked the plane resets
// the epoch — all owners unparked with their loops re-based at the hub
// clock — so the next phase starts aligned. Contract: SettlePhase must
// be phase-aligned (every owner calls it, and a barrier separates it
// from the owner's next submissions); regular fences should likewise
// be issued symmetrically across owners (the workload runners do both).
//
// Threading. All plane state is guarded by one mutex; rounds are
// serviced with the mutex *released* under a baton flag by whichever
// owner thread trips the condition, so other owners' host-side work
// (object assembly, cache lookups, verification) overlaps the spindle
// replay — that overlap is the wall-clock win the contended figures
// measure. Payload bytes still move at submission time on the owners'
// threads into disjoint, pre-allocated slab sets of the hub arena.
//
// Destruction. A scheduler being destroyed retires its owner:
// leftovers are delivered, the owner leaves the active set, and the
// last retirement drains any stragglers solo in owner order.

#ifndef LOREPO_SIM_SPINDLE_PLANE_H_
#define LOREPO_SIM_SPINDLE_PLANE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "sim/block_device.h"
#include "sim/io_scheduler.h"
#include "sim/latency_recorder.h"

namespace lor {
namespace sim {

/// One shared spindle serving several owners' volumes.
class SpindlePlane {
 public:
  struct Params {
    /// Disk parameterization template; its capacity is replaced by
    /// owners × stride, so the seek curve and zone layout are those of
    /// one physical disk spanning every owner's region.
    DiskParams disk;
    /// Per-owner region (one shard's volume), aligned up to
    /// BlockDevice::kSlabBytes internally.
    uint64_t region_bytes = 0;
    uint32_t owners = 1;
    DataMode data_mode = DataMode::kMetadataOnly;
    /// Service policy of the shared head — fixed for every owner.
    SchedPolicy policy = SchedPolicy::kSptf;
    /// Salts the FIFO shuffle / SPTF tie-breaks per round.
    uint64_t seed = 0;
  };

  explicit SpindlePlane(const Params& params);
  ~SpindlePlane();

  SpindlePlane(const SpindlePlane&) = delete;
  SpindlePlane& operator=(const SpindlePlane&) = delete;

  /// Creates owner `owner`'s view device (callable once per owner,
  /// before any traffic; typically all at construction time, serially).
  std::unique_ptr<BlockDevice> CreateOwnerDevice(uint32_t owner);

  /// Registers the scheduler ported onto `owner` (from
  /// IoScheduler::AttachSpindle).
  void BindOwner(uint32_t owner, IoScheduler* sched);

  SchedPolicy policy() const { return policy_; }
  uint32_t owners() const { return static_cast<uint32_t>(states_.size()); }
  uint64_t stride_bytes() const { return stride_; }
  BlockDevice* hub() { return hub_.get(); }
  const BlockDevice* hub() const { return hub_.get(); }

  /// Simulated time from `owner`'s perspective: its completion frontier
  /// (the hub clock before any traffic / after an epoch reset).
  double OwnerNow(uint32_t owner) const;

  // -- Submission protocol (called by ported IoSchedulers) -------------

  /// Queues a batch of sealed ops. Blocks (driving service) while the
  /// owner's queue is at the backpressure window.
  void Deliver(uint32_t owner, std::vector<IoScheduler::Op> ops);

  /// Queues a fence and blocks until the plane has popped it — i.e.
  /// every op this owner submitted before the fence has been serviced.
  /// A phase fence (`phase_end`) additionally blocks through the epoch
  /// reset, so on return every peer has reached its own phase boundary
  /// (or retired) and OwnerNow reads the re-based phase-end clock —
  /// deterministic regardless of which owner arrived last.
  void Fence(uint32_t owner, bool phase_end);

  /// Owner teardown: queues `leftovers` (if any), removes the owner
  /// from the active set, and — on the last retirement — services any
  /// remaining queued work solo in owner order.
  void Retire(uint32_t owner, std::vector<IoScheduler::Op> leftovers);

  /// Updates the owner's closed-loop width (callers fence first:
  /// IoScheduler::Engage/Disengage settle before calling this).
  void SetOwnerDepth(uint32_t owner, uint32_t depth);

  // -- Introspection (tests) -------------------------------------------

  /// Service rounds completed so far.
  uint64_t rounds() const;
  /// Order-sensitive fingerprint of (owner, completion) over every
  /// serviced op — equal fingerprints mean identical service
  /// interleaves and timelines.
  uint64_t service_hash() const;

 private:
  /// Queue entry: a delivered batch or a fence marker.
  struct Item {
    bool is_fence = false;
    bool is_phase = false;                // phase fences park the owner
    std::vector<IoScheduler::Op> ops;     // batch payload
  };

  struct OwnerState {
    std::deque<Item> queue;
    uint64_t fences_pushed = 0;
    uint64_t fences_popped = 0;
    bool bound = false;
    bool parked = false;
    bool retired = false;
    uint32_t depth = 1;
    /// Closed-loop state: slots allocated this epoch and the completion
    /// times of freed, not-yet-reused slots.
    uint32_t allocated = 0;
    std::priority_queue<double, std::vector<double>, std::greater<double>>
        slots;
    double base = 0.0;             ///< Arrival floor for this epoch.
    double last_completion = 0.0;  ///< The owner's completion frontier.
    IoScheduler* sched = nullptr;
    BlockDevice* view = nullptr;
  };

  /// One op extracted into a service round.
  struct RoundOp {
    uint32_t owner = 0;
    uint64_t key = 0;       // salted shuffle / tie-break key
    uint64_t seq = 0;       // position in the round's service order
    uint32_t device_reqs = 0;  // kIo/kFlush entries serviced
    double arrival = 0.0;   // assigned at extraction (closed loop)
    double start = 0.0;     // head reached the chain (filled at service)
    double completion = 0.0;
    IoScheduler::Op op;
  };

  bool active(const OwnerState& st) const {
    return st.bound && !st.parked && !st.retired;
  }

  /// First-traffic initialization: bases every owner's closed loop at
  /// the hub clock (repositories construct serially before traffic, so
  /// this instant is deterministic).
  void EnsureInitLocked();

  /// Tries one step of progress (phase pops → fence layer → round).
  /// Releases and reacquires `lk` around round service. Returns true
  /// when anything advanced.
  bool AdvanceLocked(std::unique_lock<std::mutex>& lk);

  /// Fires the epoch reset (unpark everyone, re-base the closed loops
  /// at the hub clock) once every live owner is parked.
  void MaybeEpochResetLocked();

  /// Pops phase fences at queue fronts, parking their owners; fires the
  /// epoch reset when every live owner is parked.
  bool TryPhasePopsLocked();

  /// Pops one regular fence from every active owner once all their
  /// fronts are fences, resetting each popped owner's closed loop.
  bool TryFenceLayerLocked();

  /// Extracts and services a round when every active owner has queued
  /// work and at least one front is a batch.
  bool TryRoundLocked(std::unique_lock<std::mutex>& lk);

  /// Blocks until `pred()` holds, driving AdvanceLocked while progress
  /// is possible.
  template <typename Pred>
  void WaitLocked(std::unique_lock<std::mutex>& lk, Pred pred) {
    while (!pred()) {
      if (!servicing_ && AdvanceLocked(lk)) continue;
      cv_.wait(lk);
    }
  }

  /// Services the round against the hub (caller holds the baton; the
  /// mutex may be held or released).
  void ServiceRound(std::vector<RoundOp>* round);

  /// Replays one op's chain contiguously on the hub clock with the
  /// synchronous charging arithmetic; fills start/completion.
  void ServiceChain(RoundOp* rop);

  /// Publishes a serviced round under the lock: slots, frontiers,
  /// latency records, queue waits, counters.
  void PublishRoundLocked(std::vector<RoundOp>* round);

  /// Pops the closed-loop arrival for the next op of `st`.
  double NextArrivalLocked(OwnerState* st);

  /// Services everything `st` still has queued, solo (retirement path;
  /// the owner's scheduler and view are still alive at that point).
  void DrainOwnerLocked(OwnerState* st);

  const SchedPolicy policy_;
  const uint64_t seed_;
  const uint64_t stride_;
  const uint64_t region_bytes_;
  std::unique_ptr<BlockDevice> hub_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool servicing_ = false;   // baton: a round is being replayed unlocked
  bool initialized_ = false;
  uint64_t round_counter_ = 0;
  uint64_t service_hash_ = 1469598103934665603ull;  // FNV offset basis
  std::vector<OwnerState> states_;
};

}  // namespace sim
}  // namespace lor

#endif  // LOREPO_SIM_SPINDLE_PLANE_H_
