#include "sim/latency_recorder.h"

namespace lor {
namespace sim {

const char* OpClassName(OpClass cls) {
  switch (cls) {
    case OpClass::kGet:
      return "get";
    case OpClass::kPut:
      return "put";
    case OpClass::kSafeWrite:
      return "safe-write";
    case OpClass::kDelete:
      return "delete";
    case OpClass::kControl:
      return "control";
  }
  return "unknown";
}

void LatencyRecorder::Record(OpClass cls, double seconds) {
  const size_t index = static_cast<size_t>(cls);
  if (index >= kTrackedOpClasses) return;  // kControl and anything odd.
  hists_[index].Add(seconds);
}

const LatencyHistogram& LatencyRecorder::histogram(OpClass cls) const {
  return hists_[static_cast<size_t>(cls) % kTrackedOpClasses];
}

LatencyHistogram LatencyRecorder::writes() const {
  LatencyHistogram merged = hists_[static_cast<size_t>(OpClass::kPut)];
  merged.Merge(hists_[static_cast<size_t>(OpClass::kSafeWrite)]);
  return merged;
}

uint64_t LatencyRecorder::total_count() const {
  uint64_t total = 0;
  for (const LatencyHistogram& h : hists_) total += h.count();
  return total;
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  for (size_t i = 0; i < kTrackedOpClasses; ++i) {
    hists_[i].Merge(other.hists_[i]);
  }
}

LatencyRecorder LatencyRecorder::operator-(
    const LatencyRecorder& other) const {
  LatencyRecorder diff;
  for (size_t i = 0; i < kTrackedOpClasses; ++i) {
    diff.hists_[i] = hists_[i] - other.hists_[i];
  }
  return diff;
}

void LatencyRecorder::Reset() {
  for (LatencyHistogram& h : hists_) h.Reset();
}

std::string LatencyRecorder::ToString() const {
  std::string out;
  for (size_t i = 0; i < kTrackedOpClasses; ++i) {
    if (hists_[i].count() == 0) continue;
    if (!out.empty()) out += "; ";
    out += OpClassName(static_cast<OpClass>(i));
    out += ": ";
    out += hists_[i].ToString();
  }
  return out.empty() ? "no ops recorded" : out;
}

}  // namespace sim
}  // namespace lor
