#include "fs/defragmenter.h"

#include <algorithm>
#include <vector>

namespace lor {
namespace fs {

Result<DefragReport> Defragmenter::Run(uint64_t byte_budget) {
  DefragReport report;
  const double t0 = store_->device()->clock().now();

  // Rank files by fragment count, worst first.
  struct Candidate {
    std::string name;
    uint64_t fragments;
    uint64_t size;
  };
  std::vector<Candidate> candidates;
  for (const std::string& name : store_->ListFiles()) {
    auto extents = store_->GetExtents(name);
    if (!extents.ok()) continue;
    auto size = store_->GetSize(name);
    if (!size.ok()) continue;
    const uint64_t fragments = alloc::CountFragments(*extents);
    report.fragments_per_file_before += static_cast<double>(fragments);
    candidates.push_back({name, fragments, *size});
  }
  if (candidates.empty()) return report;
  report.fragments_per_file_before /=
      static_cast<double>(candidates.size());
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.fragments > b.fragments;
            });

  for (const Candidate& c : candidates) {
    if (c.fragments <= 1) break;
    if (byte_budget != 0 && report.bytes_moved + c.size > byte_budget) break;
    ++report.files_examined;
    auto moved = store_->DefragmentFile(c.name);
    LOR_RETURN_IF_ERROR(moved.status());
    if (*moved) {
      ++report.files_moved;
      report.bytes_moved += c.size;
    }
  }

  for (const Candidate& c : candidates) {
    auto extents = store_->GetExtents(c.name);
    if (extents.ok()) {
      report.fragments_per_file_after +=
          static_cast<double>(alloc::CountFragments(*extents));
    }
  }
  report.fragments_per_file_after /= static_cast<double>(candidates.size());
  report.elapsed_seconds = store_->device()->clock().now() - t0;
  return report;
}

}  // namespace fs
}  // namespace lor
