// FileStore: an NTFS-like extent-based file store over a simulated block
// device.
//
// Behaviours modelled after the paper's description of NTFS (§2, §5.4):
//   * space for file data is allocated *as append requests arrive*, in
//     request-sized pieces, before the final file size is known;
//   * the allocator is a run cache ordered by (size desc, offset asc)
//     with contiguous-extension attempts on sequential appends;
//   * freed clusters become reusable only after the journal commit
//     interval elapses;
//   * a reserved zone at the front of the volume models the MFT; file
//     creates/opens/deletes read and write MFT records there, which is
//     where the filesystem's per-operation seek traffic comes from;
//   * MFT records of deleted files are recycled (NTFS reuses free
//     records before extending the MFT), so the safe-write temp cycle
//     rewrites a bounded set of record slots instead of marching new
//     records through the zone;
//   * `Preallocate` implements the paper's proposed interface extension
//     ("the ability to specify the size of the object before initial
//     space allocation") so its effect can be measured.
//
// Atomic replacement (ReplaceFile/rename) is provided so the repository
// layer can implement safe writes.
//
// Two access surfaces: the historical name-based operations (each call
// resolves the name), and a handle table — OpenRead/OpenWrite/CreateOpen
// return a FileHandle pinning the resolved FileInfo (cached extent map +
// MFT record), and the handle twins of Read/Append/Replace/Delete skip
// the per-operation name lookup. Handles are invalidated when their
// file's name is erased (Delete, or being the source of a Replace);
// stale use fails cleanly. Replace keeps the *target's* FileInfo
// address stable, so handles held across safe writes stay valid.

#ifndef LOREPO_FS_FILE_STORE_H_
#define LOREPO_FS_FILE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/run_cache_allocator.h"
#include "core/fragmentation_tracker.h"
#include "core/handle_table.h"
#include "sim/block_device.h"
#include "sim/buffer_pool.h"
#include "sim/media_fault.h"
#include "sim/op_cost_model.h"
#include "util/fnv.h"
#include "util/result.h"
#include "util/status.h"

namespace lor {
namespace fs {

/// Configuration of a FileStore volume.
struct FileStoreOptions {
  /// Allocation unit. NTFS's default for large volumes is 4 KB.
  uint64_t cluster_bytes = 4096;
  /// Fraction of the volume reserved for the MFT zone.
  double mft_zone_fraction = 0.02;
  /// NTFS-like allocator tuning.
  alloc::RunCacheOptions alloc;
  /// Software-stack costs.
  sim::OpCostModel costs;
  /// Charge MFT/journal metadata I/O (disable to isolate data traffic).
  bool charge_metadata_io = true;
  /// Coalesce the journal records of one application-level batch (the
  /// repository's safe write: create temp file, stream appends, fsync,
  /// replace) into a single lazy-writer record and at most one flush,
  /// instead of charging a record per namespace operation. Models
  /// NTFS's lazy commit, which batches log records for transactions
  /// that complete within one flush interval. Off = the historical
  /// per-operation charging.
  bool batch_journal_charges = true;
  /// Reuse MFT record ids freed by deletes/replacements for new files
  /// (NTFS behaviour). Bounds the record slots the safe-write temp
  /// cycle touches; affects metadata seek timing only, never layout.
  bool recycle_mft_records = true;
  /// Directory-index modelling: one 4 KB INDEX_ALLOCATION buffer is
  /// allocated from the data zone per this many name insertions, and
  /// the oldest buffer is released per the same number of removals.
  /// The paper's setup keeps tens of thousands of files in a single
  /// directory, so its index buffers share the free-space pool with
  /// file data — a small but steady source of allocation interleaving.
  /// 0 disables the model.
  uint32_t names_per_index_buffer = 16;
  /// Retry/backoff policy for reads that fail with a typed media error
  /// (transient latent sector errors clear after a bounded number of
  /// attempts; persistent ones surface after max_attempts).
  sim::MediaRetryPolicy media_retry;
};

/// Per-file metadata (an MFT record, in spirit).
struct FileInfo {
  uint64_t id = 0;
  uint64_t size_bytes = 0;
  /// Physical layout, address-ordered by logical offset.
  alloc::ExtentList extents;
  /// Clusters allocated ahead of size_bytes (via Preallocate).
  uint64_t allocated_clusters = 0;
  /// Reads served from this file (heat for zone-placement tools).
  uint64_t read_count = 0;
  /// Last (fragment count, size) reported to the FragmentationTracker;
  /// the delta against the current layout is applied on every mutation.
  uint64_t tracked_fragments = 0;
  uint64_t tracked_bytes = 0;
  /// Streamed FNV-1a over every payload byte appended so far, valid
  /// while hash_valid. Timing-only workloads (empty data spans) and
  /// mid-file truncation invalidate it; the fsck verifier then skips
  /// the payload check for this file. Host-side only — maintaining it
  /// charges nothing.
  uint64_t payload_hash = kFnvBasis;
  bool hash_valid = true;
  /// Per-block end-to-end checksums: block_sums[i] is the FNV-1a of
  /// logical bytes [i*kChecksumBlockBytes, (i+1)*kChecksumBlockBytes);
  /// tail_hash is the streamed state of the final partial block. Reads
  /// under DataMode::kRetain verify every fully covered block when a
  /// media-fault model is attached. Validity rides hash_valid.
  std::vector<uint64_t> block_sums;
  uint64_t tail_hash = kFnvBasis;
};

/// Host-side mirror of one journal record, recorded only while an
/// armed sim::FaultInjector is attached to the device. Each entry is
/// stamped with the device-write sequence number of the journal record
/// that carries it (batched lazy-writer commits stamp every entry of
/// the batch with the one record's number); mount-time recovery asks
/// the injector which of those writes reached the platter.
struct RecoveryLogEntry {
  enum class Kind : uint8_t { kCreate, kDelete, kRename };
  Kind kind = Kind::kCreate;
  std::string name;    ///< Created / deleted / rename-target name.
  std::string source;  ///< Rename source name (kRename only).
  uint64_t file_id = 0;
  /// Pre-operation FileInfo of the file the operation destroyed
  /// (kDelete: the file itself; kRename: the replaced target). Its
  /// clusters are held out of the allocator while the window is open,
  /// so rollback can reinstate the layout without colliding with reuse.
  FileInfo prior;
  bool had_prior = false;
  /// FaultInjector sequence number of the journal record's device
  /// write; 0 while the (possibly batched) record is still pending —
  /// and forever when metadata charging is disabled, which the
  /// injector treats as vacuously durable.
  uint64_t commit_seq = 0;
};

/// What FileStore::Recover scanned, redid, and rolled back.
struct RecoveryStats {
  uint64_t entries_scanned = 0;
  uint64_t ops_redone = 0;
  uint64_t ops_rolled_back = 0;
  uint64_t orphan_temps_discarded = 0;
  /// Bytes of new-version content discarded by rollback + orphan sweep.
  uint64_t data_loss_bytes = 0;
};

/// Volume-wide statistics.
struct FileStoreStats {
  uint64_t file_count = 0;
  uint64_t live_bytes = 0;
  uint64_t creates = 0;
  uint64_t deletes = 0;
  uint64_t renames = 0;
  uint64_t appends = 0;
  uint64_t reads = 0;
};

/// Ticket for an entry in the FileStore handle table. Cheap to copy;
/// validity is checked on every use (slot + generation), so stale
/// tickets fail instead of touching reused slots.
struct FileHandle {
  uint64_t slot = 0;
  uint64_t gen = 0;  ///< 0 = invalid.
  bool valid() const { return gen != 0; }
};

/// An NTFS-like file store.
class FileStore {
 public:
  /// `allocator` may be null, in which case a RunCacheAllocator with
  /// `options.alloc` is created (the NTFS-like default). Injecting a
  /// different ExtentAllocator enables the policy ablations.
  FileStore(sim::BlockDevice* device, FileStoreOptions options = {},
            std::unique_ptr<alloc::ExtentAllocator> allocator = nullptr);

  // -- Namespace operations ------------------------------------------

  /// Creates an empty file. Charges the MFT record write and journal
  /// entry. Fails with AlreadyExists if the name is taken.
  Status Create(const std::string& name);

  /// Deletes a file; its clusters are freed (reuse deferred until the
  /// journal commits).
  Status Delete(const std::string& name);

  /// Atomically replaces `target` with `source` (ReplaceFile semantics):
  /// after the call, `target` has `source`'s contents and `source` is
  /// gone. `target` need not exist. The journal entry makes the switch
  /// atomic; the old contents' clusters are freed deferred.
  Status Replace(const std::string& source, const std::string& target);

  bool Exists(const std::string& name) const;

  // -- Handle table ----------------------------------------------------

  /// Opens an existing file for reading: one name resolution, charging
  /// the open CPU cost and the MFT record read that the name-based Read
  /// pays per call. NotFound when the name is missing.
  Result<FileHandle> OpenRead(const std::string& name);

  /// Opens a name for writing. The file need not exist — the handle is
  /// then unbound until a Replace targets it (the safe-write create
  /// path). Charges nothing: the write cycle carries its own metadata
  /// I/O, exactly as the name-based safe write always has.
  Result<FileHandle> OpenWrite(const std::string& name);

  /// Creates an empty file (identical charging and directory-index
  /// behaviour to Create) and returns a bound write handle for it — the
  /// safe-write temp path.
  Result<FileHandle> CreateOpen(const std::string& name);

  /// Closes a handle. Read handles charge the close CPU cost the
  /// name-based Read pays per call; closing a stale handle is an error.
  Status Close(FileHandle handle);

  /// True when the handle is currently bound to a live file.
  Result<bool> HandleBound(FileHandle handle) const;

  /// Handle twins of the data operations below: identical device and
  /// CPU charging minus the per-operation name resolution (and, for
  /// reads, minus the open/close + MFT-record charges already paid at
  /// OpenRead/Close).
  Status ReadAt(FileHandle handle, uint64_t offset, uint64_t length,
                std::vector<uint8_t>* out = nullptr);
  Status ReadAll(FileHandle handle, std::vector<uint8_t>* out = nullptr);
  Status AppendStream(FileHandle handle, uint64_t length,
                      uint64_t request_bytes,
                      std::span<const uint8_t> data = {});
  Status Preallocate(FileHandle handle, uint64_t final_size);
  Status Fsync(FileHandle handle);

  /// Replace through handles: `source` must be bound (the streamed
  /// temp); `target` may be unbound (first write of the key) and is
  /// bound to the renamed file afterwards. Consumes (closes) `source`.
  Status Replace(FileHandle source, FileHandle target);

  /// Deletes the handle's file and consumes the handle (other handles
  /// on the same name are invalidated). NotFound when unbound.
  Status Delete(FileHandle handle);

  Result<alloc::ExtentList> GetExtents(FileHandle handle) const;
  Result<uint64_t> GetSize(FileHandle handle) const;

  /// Open handle-table entries (tests / leak checks).
  uint64_t open_handle_count() const { return handles_.open_count(); }
  /// Recycled MFT record ids currently pooled (tests).
  uint64_t recycled_record_ids() const { return free_record_ids_.size(); }

  // -- Data operations -----------------------------------------------

  /// Appends `length` bytes to the file. `data` may be empty for
  /// timing-only workloads; if non-empty it must be exactly `length`
  /// bytes. Space is allocated *now*, for this request only, unless a
  /// preallocation covers it — this is the NTFS behaviour the paper
  /// identifies as a fragmentation source.
  Status Append(const std::string& name, uint64_t length,
                std::span<const uint8_t> data = {});

  /// Appends `length` bytes as a sequence of `request_bytes`-sized
  /// append requests — byte-for-byte the same allocation and charging
  /// behaviour as the equivalent Append loop, with one name lookup
  /// instead of one per request (the safe-write streaming hot path).
  Status AppendStream(const std::string& name, uint64_t length,
                      uint64_t request_bytes,
                      std::span<const uint8_t> data = {});

  /// Reads `length` bytes from `offset`. When `out` is non-null it
  /// receives the bytes (zeros on a metadata-only device).
  Status Read(const std::string& name, uint64_t offset, uint64_t length,
              std::vector<uint8_t>* out = nullptr);

  /// Reads the whole file.
  Status ReadAll(const std::string& name, std::vector<uint8_t>* out = nullptr);

  /// Reserves space for a file expected to reach `final_size` bytes, in
  /// as few extents as the allocator can manage. Subsequent appends
  /// consume the reservation instead of allocating. This is the paper's
  /// proposed API extension; NTFS itself cannot do this.
  Status Preallocate(const std::string& name, uint64_t final_size);

  /// Truncates the file to `new_size` bytes, releasing whole clusters
  /// beyond the boundary (deferred).
  Status Truncate(const std::string& name, uint64_t new_size);

  /// Forces the journal (data was already written through); charges the
  /// journal flush.
  Status Fsync(const std::string& name);

  /// Begins/ends coalescing journal charges (no-ops unless
  /// options().batch_journal_charges). While a batch is open, journal
  /// charges accumulate instead of hitting the device; EndJournalBatch
  /// writes one record (plus one flush if any batched charge asked for
  /// one). Used by the repository layer to charge a whole safe write
  /// as one lazy-writer commit. Batches do not nest.
  void BeginJournalBatch();
  void EndJournalBatch();

  /// Attempts to re-lay the file out in fewer fragments: allocates a
  /// fresh layout, copies the data across (charging the moves), and
  /// frees the old clusters. Returns true when the layout improved; the
  /// fresh allocation is released untouched when it would not help.
  Result<bool> DefragmentFile(const std::string& name);

  /// Moves the file into the lowest-addressed (outermost, fastest)
  /// contiguous free run that fits it — the migration primitive of
  /// zone-aware placement (paper §3.4). Returns true when the file
  /// moved (i.e. a fitting run existed below its current position).
  /// NotSupported when the allocator exposes no free-space map.
  Result<bool> PromoteToOuterZone(const std::string& name);

  /// Reads served from this file so far (heat signal).
  Result<uint64_t> GetReadCount(const std::string& name) const;

  // -- Media repair -----------------------------------------------------

  /// Marks every cluster of `name`'s current layout pending-bad: the
  /// next free of those clusters (delete, replace, truncate, or a data
  /// move) diverts them to the quarantine list instead of the
  /// allocator, retiring them from future allocation. The scrubber's
  /// redirect-repair path: mark, then RelocateFile.
  Status MarkFilePendingBad(const std::string& name);

  /// Moves the file onto a freshly allocated layout unconditionally
  /// (repair-by-rewrite; contrast DefragmentFile, which moves only when
  /// the layout improves). Returns false when no space for a full copy.
  Result<bool> RelocateFile(const std::string& name);

  /// Clusters retired from allocation after media errors.
  uint64_t quarantined_cluster_count() const {
    return quarantined_clusters_.size();
  }

  // -- Introspection ---------------------------------------------------

  /// Physical layout of a file (for the fragmentation analyzer).
  Result<alloc::ExtentList> GetExtents(const std::string& name) const;

  Result<uint64_t> GetSize(const std::string& name) const;

  /// All file names (unordered).
  std::vector<std::string> ListFiles() const;

  /// Visits every file without materializing a name list (unordered).
  void VisitFiles(
      const std::function<void(const std::string& name,
                               const FileInfo& info)>& visit) const;

  /// Incrementally maintained fragments-per-object accounting over all
  /// files; updated on every extent mutation.
  const core::FragmentationTracker& fragmentation_tracker() const {
    return tracker_;
  }

  const FileStoreStats& stats() const { return stats_; }
  /// Clusters held by directory index buffers (fsck accounting).
  uint64_t index_buffer_clusters() const {
    uint64_t total = 0;
    for (const alloc::Extent& e : index_buffers_) total += e.length;
    return total;
  }
  alloc::ExtentAllocator* allocator() { return allocator_.get(); }
  const FileStoreOptions& options() const { return options_; }
  uint64_t total_clusters() const { return total_clusters_; }
  uint64_t mft_clusters() const { return mft_clusters_; }
  sim::BlockDevice* device() { return device_; }

  // -- Crash recovery --------------------------------------------------

  /// Mount-time journal recovery after a materialized power cut.
  /// Replays the host-side journal mirror against the injector's
  /// durability verdicts: the committed operations are the longest
  /// prefix of records whose journal writes survived (the journal is
  /// sequential, so the first missing record truncates the log); they
  /// are redone (an idempotency check — the MFT writes of a committed
  /// op preceded its commit record inside the same op). Everything
  /// after the prefix is undone newest-first, then safe-write temps
  /// that survived (committed create, uncommitted rename) are swept,
  /// and the free-space state is rebuilt from the surviving layouts on
  /// a fresh run-cache allocator — an injected ablation allocator does
  /// not survive recovery. Charges the journal-region scan, per-entry
  /// and per-live-file MFT record I/O, and a closing checkpoint record,
  /// so recovery time scales with volume age. Open handles do not
  /// survive. `is_temp` identifies safe-write temp names.
  Result<RecoveryStats> Recover(
      const std::function<bool(const std::string&)>& is_temp);

  /// Closes a crash-observation window that ended without a crash:
  /// releases the clusters held for rollback back to the allocator and
  /// drops the journal mirror. Call after sim::FaultInjector::Disarm.
  void EndCrashWindow();

  /// Journal-mirror entries currently held (tests).
  uint64_t recovery_log_entries() const { return recovery_log_.size(); }

  /// Free + pending-free bytes available to file data.
  uint64_t FreeBytes() const;

  /// Verifies that no two files share clusters, extents are within the
  /// data zone, and sizes match layouts.
  Status CheckConsistency() const;

 private:
  /// Per-handle payload. `file` is null for unbound write handles
  /// (name opened for write before it exists). FileInfo addresses are
  /// stable (node-based map; Replace assigns into the target's node),
  /// so the pinned pointer survives safe writes on the name.
  struct OpenFilePayload {
    FileInfo* file = nullptr;
    bool read_session = false;
  };
  using OpenFileSlot = core::HandleTable<OpenFilePayload, FileHandle>::Slot;

  FileInfo* Find(const std::string& name);
  const FileInfo* Find(const std::string& name) const;

  /// Invalidates every open handle on `name` (delete / replace-source).
  void InvalidateHandles(const std::string& name);
  /// Binds unbound write handles on `name` to `file` (file creation).
  void BindHandles(const std::string& name, FileInfo* file);

  /// Shared core of the name- and handle-based Replace: `src` is the
  /// source's map iterator, `target` the destination name.
  Status ReplaceImpl(std::unordered_map<std::string, FileInfo>::iterator src,
                     const std::string& target);

  /// Next MFT record id: a recycled one when available, else fresh.
  uint64_t TakeRecordId();
  void RecycleRecordId(uint64_t id);

  /// Create core: charging + emplacement; returns the new record.
  Result<FileInfo*> CreateImpl(const std::string& name);
  /// Preallocate core over an already-resolved file.
  Status PreallocateResolved(FileInfo* file, uint64_t final_size);

  /// Data read core over an already-resolved file (range check, device
  /// reads, media retry, checksum verify, stream penalty, read stats)
  /// — no open/MFT/close charges.
  Status ReadResolved(FileInfo* file, uint64_t offset, uint64_t length,
                      std::vector<uint8_t>* out);
  /// One read submission of the mapped range (stream window + vectored
  /// read, cache-routed unless bypass_pool). `out` is already sized.
  Status ReadRangeOnce(const FileInfo& file, uint64_t offset,
                       uint64_t length, std::vector<uint8_t>* out,
                       bool bypass_pool);
  /// Verifies every checksum block fully covered by [offset,
  /// offset+length) against the delivered bytes. On mismatch: drop the
  /// range's cached frames, re-read straight off the platter once, and
  /// fail typed Corruption if the bytes are still wrong.
  Status VerifyChecksums(FileInfo* file, uint64_t offset, uint64_t length,
                         std::vector<uint8_t>* out);
  /// AppendStream core over an already-resolved file.
  Status AppendStreamResolved(FileInfo* file, uint64_t length,
                              uint64_t request_bytes,
                              std::span<const uint8_t> data);

  /// Re-reports `file`'s fragment count and size to the tracker after a
  /// layout or size mutation.
  void SyncTracker(FileInfo* file);

  /// One append request against an already-resolved file. AppendStream
  /// passes sync_tracker=false and re-syncs the fragmentation tracker
  /// once per stream instead of per request (the tracker is only read
  /// at checkpoints, never mid-call).
  Status AppendToFile(FileInfo* file, uint64_t length,
                      std::span<const uint8_t> data,
                      bool sync_tracker = true);

  /// Directory-index maintenance on a name insertion/removal: splits
  /// allocate an index buffer, merges free the oldest one.
  void NoteNameInsert();
  void NoteNameRemove();

  /// Charges the MFT record I/O for `file_id` (one small read or write
  /// at a deterministic slot in the MFT zone).
  void ChargeMftAccess(uint64_t file_id, bool write);
  /// Charges a journal append + optional flush.
  void ChargeJournal(bool flush);

  /// True while an armed fault injector is attached: namespace
  /// operations then mirror their journal records into recovery_log_
  /// and freed clusters are held instead of returned.
  bool CrashArmed() const;
  /// Stamps every pending journal-mirror entry with the sequence number
  /// of the journal record just written (one lazy-writer record commits
  /// the whole batch).
  void StampRecoveryLog();
  /// Rolls back one uncommitted journal-mirror entry.
  void UndoLogEntry(const RecoveryLogEntry& entry, RecoveryStats* out);
  /// Removes `id` from the recycled-record pool (a rollback
  /// resurrected its owner, so it is live again).
  void ReclaimRecordId(uint64_t id);
  /// Maps a logical byte range to physical byte runs into a
  /// caller-owned vector (cleared first). Locates the starting extent
  /// by walking from the tail, so mapping an appended range costs
  /// O(extents in range), not O(all extents).
  void MapRangeInto(const FileInfo& file, uint64_t offset, uint64_t length,
                    std::vector<std::pair<uint64_t, uint64_t>>* runs) const;
  /// Frees all clusters of `file` through the allocator.
  Status FreeFileClusters(const FileInfo& file);
  /// Frees one extent, diverting pending-bad clusters to the
  /// quarantine list instead of the allocator. Every cluster free in
  /// the store routes through here.
  Status FreeExtent(const alloc::Extent& e);
  /// The device's buffer pool when one is attached and enabled, else
  /// null — the single check that keeps cache-size-0 a true no-op.
  sim::BufferPool* ActivePool() const;
  /// Drops every cached frame of `extents` (delete/replace/truncate/
  /// defrag-move: the owner is gone, dirty content dies with it).
  void InvalidateExtents(const alloc::ExtentList& extents);
  /// Writes back `file`'s dirty cached frames (the fsync contract:
  /// data on the platter before the journal commit).
  Status FlushFileFrames(const FileInfo& file);
  /// Pins/unpins `file`'s resident frames (open handle = pin window).
  void PinFileFrames(const FileInfo& file);
  void UnpinFileFrames(const FileInfo& file);
  /// Copies `file`'s contents into the already-allocated `fresh` layout,
  /// frees the old clusters, and installs the new extents. Charges all
  /// the move I/O plus the metadata update.
  Status MoveFileData(FileInfo* file, alloc::ExtentList fresh);
  uint64_t ClustersFor(uint64_t bytes) const {
    return (bytes + options_.cluster_bytes - 1) / options_.cluster_bytes;
  }

  sim::BlockDevice* device_;
  FileStoreOptions options_;
  std::unique_ptr<alloc::ExtentAllocator> allocator_;
  std::unordered_map<std::string, FileInfo> files_;
  core::FragmentationTracker tracker_;
  FileStoreStats stats_;
  uint64_t total_clusters_ = 0;
  uint64_t mft_clusters_ = 0;
  uint64_t next_file_id_ = 1;
  uint64_t journal_cursor_ = 0;  ///< Rotating offset inside the journal.
  bool journal_batch_open_ = false;
  uint32_t batched_journal_records_ = 0;
  bool batched_journal_flush_ = false;
  /// Scratch for AppendToFile's range mapping (reused across appends).
  std::vector<std::pair<uint64_t, uint64_t>> append_runs_;
  /// Scratch for ReadResolved's / MoveFileData's range mapping (reused
  /// — no per-operation allocations on the read hot path).
  std::vector<std::pair<uint64_t, uint64_t>> read_runs_;
  /// Scratch for lowering a run list into one vectored submission;
  /// payload moves directly between caller buffers and the device, so
  /// there is no per-run staging vector anywhere on the data paths.
  std::vector<sim::IoSlice> io_slices_;
  /// Scratch for the buffer-pool twin of io_slices_ (cache-routed
  /// reads/appends when a pool is enabled).
  std::vector<sim::CacheSlice> cache_slices_;
  /// Open-handle table (slot/generation tickets + name index).
  core::HandleTable<OpenFilePayload, FileHandle> handles_;
  /// MFT record ids freed by deletes/replacements, reused by creates.
  std::vector<uint64_t> free_record_ids_;
  std::vector<alloc::Extent> index_buffers_;  ///< Directory index, FIFO.
  uint64_t name_inserts_ = 0;
  uint64_t name_removes_ = 0;
  /// Host-side journal mirror + rollback holds, populated only while a
  /// crash window is armed (empty overhead otherwise).
  std::vector<RecoveryLogEntry> recovery_log_;
  std::vector<alloc::Extent> crash_held_;
  /// Clusters flagged by the scrubber while still owned by a live file;
  /// FreeExtent diverts them to quarantine when their owner lets go.
  std::unordered_set<uint64_t> pending_bad_clusters_;
  /// Clusters retired from allocation (never returned to the
  /// allocator; survive Recover's free-space rebuild).
  std::unordered_set<uint64_t> quarantined_clusters_;
};

}  // namespace fs
}  // namespace lor

#endif  // LOREPO_FS_FILE_STORE_H_
