// Defragmenter: the analogue of the Windows online defragmentation
// utility (paper §3.4). It walks the volume's most fragmented files
// first and relocates each into a fresher, more contiguous layout,
// under an optional per-run byte budget ("partial" defragmentation).

#ifndef LOREPO_FS_DEFRAGMENTER_H_
#define LOREPO_FS_DEFRAGMENTER_H_

#include <cstdint>
#include <string>

#include "fs/file_store.h"
#include "util/result.h"

namespace lor {
namespace fs {

/// Outcome of one defragmentation pass.
struct DefragReport {
  uint64_t files_examined = 0;
  uint64_t files_moved = 0;
  uint64_t bytes_moved = 0;
  double fragments_per_file_before = 0.0;
  double fragments_per_file_after = 0.0;
  /// Simulated seconds the pass consumed (its cost to the application).
  double elapsed_seconds = 0.0;
};

/// Online partial defragmentation over a FileStore.
class Defragmenter {
 public:
  explicit Defragmenter(FileStore* store) : store_(store) {}

  /// Runs one pass. Files with the most fragments are processed first;
  /// the pass stops once `byte_budget` bytes have been moved
  /// (0 = unlimited). The paper notes such maintenance "imposes
  /// read/write performance impacts that can outweigh its benefits" —
  /// the report's elapsed_seconds lets experiments weigh exactly that.
  Result<DefragReport> Run(uint64_t byte_budget = 0);

 private:
  FileStore* store_;
};

}  // namespace fs
}  // namespace lor

#endif  // LOREPO_FS_DEFRAGMENTER_H_
