#include "fs/zoned_placement.h"

#include <algorithm>
#include <vector>

namespace lor {
namespace fs {

Result<ZonedPlacementReport> ZonedPlacement::MigrateHotFiles(
    double hot_fraction, uint64_t byte_budget) {
  ZonedPlacementReport report;
  if (hot_fraction <= 0.0 || hot_fraction > 1.0) {
    return Status::InvalidArgument("hot_fraction must be in (0, 1]");
  }
  const double t0 = store_->device()->clock().now();

  struct Candidate {
    std::string name;
    uint64_t reads;
    uint64_t size;
  };
  std::vector<Candidate> files;
  for (const std::string& name : store_->ListFiles()) {
    auto reads = store_->GetReadCount(name);
    auto size = store_->GetSize(name);
    if (!reads.ok() || !size.ok()) continue;
    files.push_back({name, *reads, *size});
  }
  if (files.empty()) return report;
  std::sort(files.begin(), files.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.reads > b.reads;
            });
  const size_t hot_count = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(files.size()) *
                             hot_fraction));

  auto centroid = [&]() -> double {
    double sum = 0.0;
    size_t counted = 0;
    for (size_t i = 0; i < hot_count; ++i) {
      auto extents = store_->GetExtents(files[i].name);
      if (!extents.ok() || extents->empty()) continue;
      sum += static_cast<double>(extents->front().start *
                                 store_->options().cluster_bytes) /
             static_cast<double>(store_->device()->capacity());
      ++counted;
    }
    return counted ? sum / static_cast<double>(counted) : 0.0;
  };

  report.hot_centroid_before = centroid();
  for (size_t i = 0; i < hot_count; ++i) {
    if (byte_budget != 0 && report.bytes_moved + files[i].size > byte_budget) {
      break;
    }
    ++report.files_considered;
    auto moved = store_->PromoteToOuterZone(files[i].name);
    if (moved.status().IsNotSupported()) return moved.status();
    if (moved.ok() && *moved) {
      ++report.files_moved;
      report.bytes_moved += files[i].size;
    }
  }
  report.hot_centroid_after = centroid();
  report.elapsed_seconds = store_->device()->clock().now() - t0;
  return report;
}

}  // namespace fs
}  // namespace lor
