#include "fs/file_store.h"

#include <algorithm>

#include "sim/fault_injector.h"

namespace lor {
namespace fs {

namespace {
constexpr uint64_t kMftRecordBytes = 1024;
constexpr uint64_t kJournalRecordBytes = 4096;
}  // namespace

FileStore::FileStore(sim::BlockDevice* device, FileStoreOptions options,
                     std::unique_ptr<alloc::ExtentAllocator> allocator)
    : device_(device), options_(options), allocator_(std::move(allocator)) {
  total_clusters_ = device_->capacity() / options_.cluster_bytes;
  mft_clusters_ = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(total_clusters_) *
                               options_.mft_zone_fraction));
  if (allocator_ == nullptr) {
    allocator_ = std::make_unique<alloc::RunCacheAllocator>(
        total_clusters_, options_.alloc, mft_clusters_);
  }
}

FileInfo* FileStore::Find(const std::string& name) {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

const FileInfo* FileStore::Find(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

// -- Handle table ------------------------------------------------------

void FileStore::InvalidateHandles(const std::string& name) {
  handles_.InvalidateAll(name);
}

void FileStore::BindHandles(const std::string& name, FileInfo* file) {
  handles_.ForEachOpen(name, [file](OpenFilePayload& payload) {
    if (payload.file == nullptr) payload.file = file;
  });
}

uint64_t FileStore::TakeRecordId() {
  if (options_.recycle_mft_records && !free_record_ids_.empty()) {
    const uint64_t id = free_record_ids_.back();
    free_record_ids_.pop_back();
    return id;
  }
  return next_file_id_++;
}

void FileStore::RecycleRecordId(uint64_t id) {
  if (options_.recycle_mft_records) free_record_ids_.push_back(id);
}

Result<FileHandle> FileStore::OpenRead(const std::string& name) {
  FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  // The open-by-name the name-based Read pays per call: open CPU plus
  // the MFT record read. Reads through the handle skip both.
  device_->ChargeCpu(options_.costs.fs_open_s);
  ChargeMftAccess(file->id, /*write=*/false);
  // Open handle = pin window: whatever the opener found cached stays
  // resident until Close (advisory — invalidation still wins).
  PinFileFrames(*file);
  return handles_.Register(name, {file, /*read_session=*/true});
}

Result<FileHandle> FileStore::OpenWrite(const std::string& name) {
  return handles_.Register(name, {Find(name), /*read_session=*/false});
}

Result<FileHandle> FileStore::CreateOpen(const std::string& name) {
  LOR_ASSIGN_OR_RETURN(FileInfo * file, CreateImpl(name));
  return handles_.Register(name, {file, /*read_session=*/false});
}

Status FileStore::Close(FileHandle handle) {
  OpenFileSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale file handle");
  if (slot->entry.read_session) {
    device_->ChargeCpu(options_.costs.fs_close_s);
    // End of the read session's pin window (frames dropped or replaced
    // meanwhile are skipped; pins never go below zero).
    if (slot->entry.file != nullptr) UnpinFileFrames(*slot->entry.file);
  }
  handles_.Release(handle.slot);
  return Status::OK();
}

Result<bool> FileStore::HandleBound(FileHandle handle) const {
  const OpenFileSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale file handle");
  return slot->entry.file != nullptr;
}

Status FileStore::ReadAt(FileHandle handle, uint64_t offset, uint64_t length,
                         std::vector<uint8_t>* out) {
  OpenFileSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale file handle");
  if (slot->entry.file == nullptr) {
    return Status::NotFound("no such file: " + slot->name);
  }
  return ReadResolved(slot->entry.file, offset, length, out);
}

Status FileStore::ReadAll(FileHandle handle, std::vector<uint8_t>* out) {
  OpenFileSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale file handle");
  if (slot->entry.file == nullptr) {
    return Status::NotFound("no such file: " + slot->name);
  }
  return ReadResolved(slot->entry.file, 0, slot->entry.file->size_bytes, out);
}

Status FileStore::AppendStream(FileHandle handle, uint64_t length,
                               uint64_t request_bytes,
                               std::span<const uint8_t> data) {
  OpenFileSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale file handle");
  if (slot->entry.file == nullptr) {
    return Status::NotFound("no such file: " + slot->name);
  }
  return AppendStreamResolved(slot->entry.file, length, request_bytes, data);
}

Status FileStore::Preallocate(FileHandle handle, uint64_t final_size) {
  OpenFileSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale file handle");
  if (slot->entry.file == nullptr) {
    return Status::NotFound("no such file: " + slot->name);
  }
  return PreallocateResolved(slot->entry.file, final_size);
}

Status FileStore::Fsync(FileHandle handle) {
  OpenFileSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale file handle");
  if (slot->entry.file == nullptr) {
    return Status::NotFound("no such file: " + slot->name);
  }
  // Fsync's contract: the file's data is on the platter before the
  // journal flush commits — write-back frames go down first.
  LOR_RETURN_IF_ERROR(FlushFileFrames(*slot->entry.file));
  ChargeJournal(/*flush=*/true);
  return Status::OK();
}

Status FileStore::Replace(FileHandle source, FileHandle target) {
  OpenFileSlot* src_slot = handles_.Resolve(source);
  if (src_slot == nullptr) {
    return Status::InvalidArgument("stale file handle (source)");
  }
  OpenFileSlot* dst_slot = handles_.Resolve(target);
  if (dst_slot == nullptr) {
    return Status::InvalidArgument("stale file handle (target)");
  }
  if (src_slot == dst_slot) {
    return Status::InvalidArgument("replace onto the same handle");
  }
  if (src_slot->entry.file == nullptr) {
    return Status::NotFound("no such file: " + src_slot->name);
  }
  auto src = files_.find(src_slot->name);
  // ReplaceImpl consumes every handle on the source name (including
  // `source`) and binds `target` if it was unbound.
  return ReplaceImpl(src, dst_slot->name);
}

Status FileStore::Delete(FileHandle handle) {
  OpenFileSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale file handle");
  if (slot->entry.file == nullptr) {
    return Status::NotFound("no such file: " + slot->name);
  }
  const std::string name = slot->name;  // Delete invalidates the slot.
  return Delete(name);
}

Result<alloc::ExtentList> FileStore::GetExtents(FileHandle handle) const {
  const OpenFileSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale file handle");
  if (slot->entry.file == nullptr) {
    return Status::NotFound("no such file: " + slot->name);
  }
  return slot->entry.file->extents;
}

Result<uint64_t> FileStore::GetSize(FileHandle handle) const {
  const OpenFileSlot* slot = handles_.Resolve(handle);
  if (slot == nullptr) return Status::InvalidArgument("stale file handle");
  if (slot->entry.file == nullptr) {
    return Status::NotFound("no such file: " + slot->name);
  }
  return slot->entry.file->size_bytes;
}

void FileStore::SyncTracker(FileInfo* file) {
  const uint64_t fragments = alloc::CountFragments(file->extents);
  tracker_.Update(file->tracked_fragments, file->tracked_bytes, fragments,
                  file->size_bytes);
  file->tracked_fragments = fragments;
  file->tracked_bytes = file->size_bytes;
}

void FileStore::ChargeMftAccess(uint64_t file_id, bool write) {
  if (!options_.charge_metadata_io) return;
  // MFT records live in the first half of the reserved zone.
  const uint64_t zone_bytes = mft_clusters_ * options_.cluster_bytes / 2;
  const uint64_t slot =
      (file_id * kMftRecordBytes) % std::max<uint64_t>(zone_bytes, 1);
  Status s = write ? device_->Write(slot, kMftRecordBytes)
                   : device_->Read(slot, kMftRecordBytes);
  (void)s;
}

void FileStore::ChargeJournal(bool flush) {
  if (!options_.charge_metadata_io) return;
  if (journal_batch_open_) {
    ++batched_journal_records_;
    batched_journal_flush_ |= flush;
    return;
  }
  // The journal occupies the second half of the reserved zone and is
  // written sequentially with wraparound.
  const uint64_t zone_bytes = mft_clusters_ * options_.cluster_bytes;
  const uint64_t journal_base = zone_bytes / 2;
  const uint64_t journal_size = std::max<uint64_t>(
      2 * kJournalRecordBytes, zone_bytes - journal_base);
  Status s = device_->Write(journal_base + journal_cursor_,
                            kJournalRecordBytes);
  (void)s;
  journal_cursor_ = (journal_cursor_ + kJournalRecordBytes) %
                    (journal_size - kJournalRecordBytes);
  StampRecoveryLog();
  if (flush) device_->Flush();
}

bool FileStore::CrashArmed() const {
  const sim::FaultInjector* injector = device_->fault_injector();
  return injector != nullptr && injector->armed();
}

void FileStore::StampRecoveryLog() {
  const sim::FaultInjector* injector = device_->fault_injector();
  if (injector == nullptr || !injector->armed()) return;
  const uint64_t seq = injector->last_seq();
  for (size_t i = recovery_log_.size(); i-- > 0;) {
    if (recovery_log_[i].commit_seq != 0) break;
    recovery_log_[i].commit_seq = seq;
  }
}

void FileStore::BeginJournalBatch() {
  if (!options_.batch_journal_charges) return;
  journal_batch_open_ = true;
}

void FileStore::EndJournalBatch() {
  if (!journal_batch_open_) return;
  journal_batch_open_ = false;
  const uint32_t records = batched_journal_records_;
  const bool flush = batched_journal_flush_;
  batched_journal_records_ = 0;
  batched_journal_flush_ = false;
  // One lazy-writer record covers every charge batched since Begin.
  if (records > 0) ChargeJournal(flush);
}

void FileStore::NoteNameInsert() {
  if (options_.names_per_index_buffer == 0) return;
  if (++name_inserts_ % options_.names_per_index_buffer != 0) return;
  // An index buffer splits: allocate one cluster for the new buffer.
  alloc::ExtentList buffer;
  if (allocator_->Allocate(1, alloc::kNoHint, &buffer).ok()) {
    index_buffers_.push_back(buffer.front());
    if (options_.charge_metadata_io) {
      Status s = device_->Write(buffer.front().start * options_.cluster_bytes,
                                options_.cluster_bytes);
      (void)s;
    }
  }
}

void FileStore::NoteNameRemove() {
  if (options_.names_per_index_buffer == 0) return;
  if (++name_removes_ % options_.names_per_index_buffer != 0) return;
  if (index_buffers_.empty()) return;
  // Buffers merge as the directory shrinks: free the oldest.
  Status s = FreeExtent(index_buffers_.front());
  (void)s;
  index_buffers_.erase(index_buffers_.begin());
}

Status FileStore::Create(const std::string& name) {
  return CreateImpl(name).status();
}

Result<FileInfo*> FileStore::CreateImpl(const std::string& name) {
  if (Find(name) != nullptr) {
    return Status::AlreadyExists("file exists: " + name);
  }
  FileInfo info;
  info.id = TakeRecordId();
  device_->ChargeCpu(options_.costs.fs_open_s);
  ChargeMftAccess(info.id, /*write=*/true);
  if (CrashArmed()) {
    RecoveryLogEntry entry;
    entry.kind = RecoveryLogEntry::Kind::kCreate;
    entry.name = name;
    entry.file_id = info.id;
    recovery_log_.push_back(std::move(entry));
  }
  ChargeJournal(/*flush=*/false);
  auto [it, inserted] = files_.emplace(name, std::move(info));
  (void)inserted;
  tracker_.Add(0, 0);  // Empty file: no extents, no bytes.
  ++stats_.creates;
  ++stats_.file_count;
  NoteNameInsert();
  allocator_->Tick();
  BindHandles(name, &it->second);
  return &it->second;
}

sim::BufferPool* FileStore::ActivePool() const {
  sim::BufferPool* pool = device_->buffer_pool();
  return pool != nullptr && pool->enabled() ? pool : nullptr;
}

void FileStore::InvalidateExtents(const alloc::ExtentList& extents) {
  sim::BufferPool* pool = ActivePool();
  if (pool == nullptr) return;
  for (const alloc::Extent& e : extents) {
    pool->Invalidate(e.start * options_.cluster_bytes,
                     e.length * options_.cluster_bytes);
  }
}

Status FileStore::FlushFileFrames(const FileInfo& file) {
  sim::BufferPool* pool = ActivePool();
  if (pool == nullptr) return Status::OK();
  for (const alloc::Extent& e : file.extents) {
    LOR_RETURN_IF_ERROR(pool->FlushRange(e.start * options_.cluster_bytes,
                                         e.length * options_.cluster_bytes));
  }
  return Status::OK();
}

void FileStore::PinFileFrames(const FileInfo& file) {
  sim::BufferPool* pool = ActivePool();
  if (pool == nullptr) return;
  for (const alloc::Extent& e : file.extents) {
    pool->PinRange(e.start * options_.cluster_bytes,
                   e.length * options_.cluster_bytes);
  }
}

void FileStore::UnpinFileFrames(const FileInfo& file) {
  sim::BufferPool* pool = ActivePool();
  if (pool == nullptr) return;
  for (const alloc::Extent& e : file.extents) {
    pool->UnpinRange(e.start * options_.cluster_bytes,
                     e.length * options_.cluster_bytes);
  }
}

Status FileStore::FreeExtent(const alloc::Extent& e) {
  if (pending_bad_clusters_.empty()) return allocator_->Free(e);
  // Split the extent around pending-bad clusters: healthy runs return
  // to the allocator, flagged clusters retire to the quarantine list.
  uint64_t run_start = e.start;
  uint64_t run_len = 0;
  for (uint64_t c = e.start; c < e.end(); ++c) {
    auto it = pending_bad_clusters_.find(c);
    if (it != pending_bad_clusters_.end()) {
      if (run_len > 0) {
        LOR_RETURN_IF_ERROR(allocator_->Free({run_start, run_len}));
        run_len = 0;
      }
      pending_bad_clusters_.erase(it);
      quarantined_clusters_.insert(c);
    } else {
      if (run_len == 0) run_start = c;
      ++run_len;
    }
  }
  if (run_len > 0) LOR_RETURN_IF_ERROR(allocator_->Free({run_start, run_len}));
  return Status::OK();
}

Status FileStore::FreeFileClusters(const FileInfo& file) {
  // The clusters are leaving this owner either way (even when a crash
  // window holds them for rollback, rollback reinstates layouts from
  // the device, not from DRAM): cached frames — dirty ones included —
  // die with it, and can never flush over a future owner.
  InvalidateExtents(file.extents);
  if (CrashArmed()) {
    // Rollback window: the clusters stay unallocatable until the window
    // closes (EndCrashWindow frees them; Recover rebuilds wholesale),
    // so an uncommitted delete or replace can always reinstate the old
    // layout without colliding with reuse.
    crash_held_.insert(crash_held_.end(), file.extents.begin(),
                       file.extents.end());
    return Status::OK();
  }
  for (const alloc::Extent& e : file.extents) {
    LOR_RETURN_IF_ERROR(FreeExtent(e));
  }
  return Status::OK();
}

Status FileStore::Delete(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  if (CrashArmed()) {
    RecoveryLogEntry entry;
    entry.kind = RecoveryLogEntry::Kind::kDelete;
    entry.name = name;
    entry.file_id = it->second.id;
    entry.prior = it->second;
    entry.had_prior = true;
    recovery_log_.push_back(std::move(entry));
  }
  LOR_RETURN_IF_ERROR(FreeFileClusters(it->second));
  stats_.live_bytes -= it->second.size_bytes;
  tracker_.Remove(it->second.tracked_fragments, it->second.tracked_bytes);
  ChargeMftAccess(it->second.id, /*write=*/true);
  ChargeJournal(/*flush=*/false);
  device_->ChargeCpu(options_.costs.fs_close_s);
  RecycleRecordId(it->second.id);
  InvalidateHandles(name);
  files_.erase(it);
  ++stats_.deletes;
  --stats_.file_count;
  NoteNameRemove();
  allocator_->Tick();
  return Status::OK();
}

Status FileStore::Replace(const std::string& source,
                          const std::string& target) {
  auto src = files_.find(source);
  if (src == files_.end()) {
    return Status::NotFound("no such file: " + source);
  }
  return ReplaceImpl(src, target);
}

Status FileStore::ReplaceImpl(
    std::unordered_map<std::string, FileInfo>::iterator src,
    const std::string& target) {
  if (src->first == target) {
    // Self-replacement would free the live file and then read the
    // erased node; reject it (also reachable through two handles
    // opened on one name).
    return Status::InvalidArgument("replace onto the same file: " + target);
  }
  device_->ChargeCpu(options_.costs.fs_rename_s);
  auto dst = files_.find(target);
  if (CrashArmed()) {
    RecoveryLogEntry entry;
    entry.kind = RecoveryLogEntry::Kind::kRename;
    entry.name = target;
    entry.source = src->first;
    entry.file_id = src->second.id;
    if (dst != files_.end()) {
      entry.prior = dst->second;
      entry.had_prior = true;
    }
    recovery_log_.push_back(std::move(entry));
  }
  if (dst != files_.end()) {
    LOR_RETURN_IF_ERROR(FreeFileClusters(dst->second));
    stats_.live_bytes -= dst->second.size_bytes;
    tracker_.Remove(dst->second.tracked_fragments,
                    dst->second.tracked_bytes);
    ChargeMftAccess(dst->second.id, /*write=*/true);
    RecycleRecordId(dst->second.id);
    // Assign into the target's node instead of erase + re-emplace: the
    // target FileInfo keeps its address, so handles opened on `target`
    // stay valid across the safe write.
    dst->second = std::move(src->second);
    InvalidateHandles(src->first);
    files_.erase(src);
    --stats_.file_count;
    ChargeMftAccess(dst->second.id, /*write=*/true);
    ChargeJournal(/*flush=*/true);
  } else {
    FileInfo moved = std::move(src->second);
    InvalidateHandles(src->first);
    files_.erase(src);
    ChargeMftAccess(moved.id, /*write=*/true);
    ChargeJournal(/*flush=*/true);
    dst = files_.emplace(target, std::move(moved)).first;
  }
  // First write of a key: bind any write handles opened before the file
  // existed (no-op when the target node already carried them).
  BindHandles(target, &dst->second);
  ++stats_.renames;
  // The rename removes one name from the directory index (source) —
  // the target entry is rewritten in place.
  NoteNameRemove();
  allocator_->Tick();
  return Status::OK();
}

bool FileStore::Exists(const std::string& name) const {
  return Find(name) != nullptr;
}

void FileStore::MapRangeInto(
    const FileInfo& file, uint64_t offset, uint64_t length,
    std::vector<std::pair<uint64_t, uint64_t>>* runs) const {
  runs->clear();
  // Find the extent containing `offset` by walking back from the tail:
  // appends map the file's end, so this is O(extents in the range).
  size_t first = file.extents.size();
  uint64_t logical =
      file.allocated_clusters * options_.cluster_bytes;  // End of layout.
  while (first > 0) {
    const uint64_t ext_bytes =
        file.extents[first - 1].length * options_.cluster_bytes;
    if (logical - ext_bytes <= offset) break;
    logical -= ext_bytes;
    --first;
  }
  if (first > 0) {
    logical -= file.extents[first - 1].length * options_.cluster_bytes;
    --first;
  }
  uint64_t cur = offset;
  uint64_t remaining = length;
  for (size_t i = first; i < file.extents.size(); ++i) {
    if (remaining == 0) break;
    const alloc::Extent& e = file.extents[i];
    const uint64_t ext_bytes = e.length * options_.cluster_bytes;
    const uint64_t ext_end = logical + ext_bytes;
    if (cur < ext_end) {
      const uint64_t in_ext = cur - logical;
      const uint64_t phys = e.start * options_.cluster_bytes + in_ext;
      const uint64_t chunk = std::min(remaining, ext_bytes - in_ext);
      if (!runs->empty() && runs->back().first + runs->back().second == phys) {
        runs->back().second += chunk;
      } else {
        runs->emplace_back(phys, chunk);
      }
      cur += chunk;
      remaining -= chunk;
    }
    logical = ext_end;
  }
}

Status FileStore::Append(const std::string& name, uint64_t length,
                         std::span<const uint8_t> data) {
  FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  return AppendToFile(file, length, data);
}

Status FileStore::AppendStream(const std::string& name, uint64_t length,
                               uint64_t request_bytes,
                               std::span<const uint8_t> data) {
  FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  return AppendStreamResolved(file, length, request_bytes, data);
}

Status FileStore::AppendStreamResolved(FileInfo* file, uint64_t length,
                                       uint64_t request_bytes,
                                       std::span<const uint8_t> data) {
  if (request_bytes == 0) {
    return Status::InvalidArgument("zero request size");
  }
  if (!data.empty() && data.size() != length) {
    return Status::InvalidArgument("data size does not match length");
  }
  // Per-request tracker syncs would re-count the whole extent list per
  // chunk (quadratic in extents for a fragmented stream); sync once at
  // the end instead — nothing reads the tracker mid-stream.
  Status status = Status::OK();
  uint64_t written = 0;
  while (written < length) {
    const uint64_t chunk = std::min(request_bytes, length - written);
    std::span<const uint8_t> slice =
        data.empty() ? std::span<const uint8_t>()
                     : data.subspan(written, chunk);
    status = AppendToFile(file, chunk, slice, /*sync_tracker=*/false);
    if (!status.ok()) break;
    written += chunk;
  }
  SyncTracker(file);
  return status;
}

Status FileStore::AppendToFile(FileInfo* file, uint64_t length,
                               std::span<const uint8_t> data,
                               bool sync_tracker) {
  if (!data.empty() && data.size() != length) {
    return Status::InvalidArgument("data size does not match length");
  }
  if (length == 0) return Status::OK();

  const uint64_t needed = ClustersFor(file->size_bytes + length);
  if (needed > file->allocated_clusters) {
    const uint64_t grow = needed - file->allocated_clusters;
    const uint64_t hint =
        file->extents.empty() ? alloc::kNoHint : file->extents.back().end();
    LOR_RETURN_IF_ERROR(allocator_->Allocate(grow, hint, &file->extents));
    file->allocated_clusters = needed;
  }

  device_->BeginStreamWindow();
  sim::BufferPool* pool = ActivePool();
  // Fast path: the appended range lies entirely inside the tail extent
  // (sequential extension), so it maps to one physical run.
  const alloc::Extent& tail = file->extents.back();
  const uint64_t tail_logical =
      (file->allocated_clusters - tail.length) * options_.cluster_bytes;
  if (tail_logical <= file->size_bytes) {
    const uint64_t phys = tail.start * options_.cluster_bytes +
                          (file->size_bytes - tail_logical);
    if (pool != nullptr) {
      cache_slices_.assign(
          1, {phys, length, data.empty() ? nullptr : data.data(), nullptr,
              phys, length});
      LOR_RETURN_IF_ERROR(pool->WriteThrough(cache_slices_));
    } else {
      LOR_RETURN_IF_ERROR(device_->Write(phys, length, data));
    }
  } else {
    // Fragmented append: the whole run list goes down as one vectored
    // submission (charge-identical to the historical write-per-run
    // loop), payload sliced straight out of the caller's buffer.
    MapRangeInto(*file, file->size_bytes, length, &append_runs_);
    if (pool != nullptr) {
      cache_slices_.clear();
      uint64_t consumed = 0;
      for (const auto& [phys, len] : append_runs_) {
        cache_slices_.push_back(
            {phys, len, data.empty() ? nullptr : data.data() + consumed,
             nullptr, phys, len});
        consumed += len;
      }
      LOR_RETURN_IF_ERROR(pool->WriteThrough(cache_slices_));
    } else {
      io_slices_.clear();
      uint64_t consumed = 0;
      for (const auto& [phys, len] : append_runs_) {
        io_slices_.push_back(
            {phys, len, data.empty() ? nullptr : data.data() + consumed,
             nullptr});
        consumed += len;
      }
      LOR_RETURN_IF_ERROR(device_->WriteV(io_slices_));
    }
  }
  device_->EndStreamWindow(length, options_.costs.fs_stream_bandwidth);

  // Streamed FNV-1a keeps hash(file) == hash(all appended bytes);
  // timing-only appends carry no bytes, so the hash goes unknowable.
  if (data.empty()) {
    file->hash_valid = false;
  } else if (file->hash_valid) {
    file->payload_hash = FnvUpdate(file->payload_hash, data);
    // Per-block media checksums: carry the partial tail state across
    // appends, sealing one sum whenever a block boundary fills.
    uint64_t pos = file->size_bytes % kChecksumBlockBytes;
    uint64_t consumed = 0;
    while (consumed < data.size()) {
      const uint64_t take =
          std::min<uint64_t>(data.size() - consumed,
                             kChecksumBlockBytes - pos);
      file->tail_hash =
          FnvUpdate(file->tail_hash, data.subspan(consumed, take));
      consumed += take;
      pos += take;
      if (pos == kChecksumBlockBytes) {
        file->block_sums.push_back(file->tail_hash);
        file->tail_hash = kFnvBasis;
        pos = 0;
      }
    }
  }
  file->size_bytes += length;
  stats_.live_bytes += length;
  if (sync_tracker) SyncTracker(file);
  ++stats_.appends;
  return Status::OK();
}

Status FileStore::Read(const std::string& name, uint64_t offset,
                       uint64_t length, std::vector<uint8_t>* out) {
  FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  if (length > file->size_bytes || offset > file->size_bytes - length) {
    return Status::InvalidArgument("read beyond end of file");
  }
  // The name-based read is an open–read–close session per call.
  device_->ChargeCpu(options_.costs.fs_open_s);
  ChargeMftAccess(file->id, /*write=*/false);
  LOR_RETURN_IF_ERROR(ReadResolved(file, offset, length, out));
  device_->ChargeCpu(options_.costs.fs_close_s);
  return Status::OK();
}

Status FileStore::ReadResolved(FileInfo* file, uint64_t offset,
                               uint64_t length, std::vector<uint8_t>* out) {
  if (length > file->size_bytes || offset > file->size_bytes - length) {
    return Status::InvalidArgument("read beyond end of file");
  }
  if (out != nullptr) out->resize(length);
  Status s = ReadRangeOnce(*file, offset, length, out, /*bypass_pool=*/false);
  // Transient latent sector errors clear after a bounded number of
  // attempts; retry with a charged backoff before surfacing IoError.
  // A failed submission charged nothing, so the backoff CPU charge is
  // the whole cost of a wasted attempt.
  const sim::MediaRetryPolicy& retry = options_.media_retry;
  for (uint32_t attempt = 1; s.IsIoError() && attempt < retry.max_attempts;
       ++attempt) {
    device_->ChargeCpu(retry.backoff_s * attempt);
    s = ReadRangeOnce(*file, offset, length, out, /*bypass_pool=*/false);
  }
  LOR_RETURN_IF_ERROR(s);
  LOR_RETURN_IF_ERROR(VerifyChecksums(file, offset, length, out));
  ++stats_.reads;
  ++file->read_count;
  return Status::OK();
}

Status FileStore::ReadRangeOnce(const FileInfo& file, uint64_t offset,
                                uint64_t length, std::vector<uint8_t>* out,
                                bool bypass_pool) {
  device_->BeginStreamWindow();
  // One vectored submission for the whole run list; the device copies
  // each run's bytes directly into the caller's buffer (no per-run
  // staging vector), reusing whatever capacity it already holds.
  MapRangeInto(file, offset, length, &read_runs_);
  sim::BufferPool* pool = bypass_pool ? nullptr : ActivePool();
  if (pool != nullptr) {
    // Cache-routed read: each physical run is one cache request whose
    // fill range is the whole run (extent-run read-ahead granularity);
    // hits never touch the device, misses batch into one ReadV.
    cache_slices_.clear();
    uint64_t consumed = 0;
    for (const auto& [phys, len] : read_runs_) {
      cache_slices_.push_back(
          {phys, len, nullptr,
           out != nullptr ? out->data() + consumed : nullptr, phys, len});
      consumed += len;
    }
    LOR_RETURN_IF_ERROR(pool->ReadThrough(cache_slices_));
  } else {
    io_slices_.clear();
    uint64_t consumed = 0;
    for (const auto& [phys, len] : read_runs_) {
      io_slices_.push_back(
          {phys, len, nullptr,
           out != nullptr ? out->data() + consumed : nullptr});
      consumed += len;
    }
    LOR_RETURN_IF_ERROR(device_->ReadV(io_slices_));
  }
  device_->EndStreamWindow(length, options_.costs.fs_stream_bandwidth);
  return Status::OK();
}

Status FileStore::VerifyChecksums(FileInfo* file, uint64_t offset,
                                  uint64_t length, std::vector<uint8_t>* out) {
  // Verification needs delivered bytes, valid sums, and a reason to
  // distrust the platter; without a media-fault model attached the
  // read path stays bit-identical to the historical one.
  if (out == nullptr || !file->hash_valid || length == 0) return Status::OK();
  if (device_->media_faults() == nullptr) return Status::OK();
  if (device_->data_mode() != sim::DataMode::kRetain) return Status::OK();
  const uint64_t end = offset + length;
  const uint64_t first = (offset + kChecksumBlockBytes - 1) /
                         kChecksumBlockBytes;
  bool mismatch = false;
  auto verify = [&]() {
    mismatch = false;
    // Full blocks wholly inside the read.
    for (uint64_t b = first;
         b < file->block_sums.size() && (b + 1) * kChecksumBlockBytes <= end;
         ++b) {
      const std::span<const uint8_t> got(
          out->data() + (b * kChecksumBlockBytes - offset),
          kChecksumBlockBytes);
      if (Fnv(got) != file->block_sums[b]) {
        mismatch = true;
        return;
      }
    }
    // The partial tail block, when the read covers it entirely.
    const uint64_t tail_start =
        file->block_sums.size() * kChecksumBlockBytes;
    if (file->size_bytes > tail_start && offset <= tail_start &&
        end >= file->size_bytes) {
      const std::span<const uint8_t> got(out->data() + (tail_start - offset),
                                         file->size_bytes - tail_start);
      if (Fnv(got) != file->tail_hash) mismatch = true;
    }
  };
  verify();
  if (!mismatch) return Status::OK();
  // A cached frame may hold a stale or corrupt fill: drop the range
  // and give the platter one more (charged) chance before declaring
  // the object corrupt.
  sim::BufferPool* pool = ActivePool();
  if (pool != nullptr) {
    MapRangeInto(*file, offset, length, &read_runs_);
    for (const auto& [phys, len] : read_runs_) pool->Invalidate(phys, len);
  }
  LOR_RETURN_IF_ERROR(
      ReadRangeOnce(*file, offset, length, out, /*bypass_pool=*/true));
  verify();
  if (!mismatch) return Status::OK();
  return Status::Corruption("checksum mismatch in file record " +
                            std::to_string(file->id));
}

Status FileStore::ReadAll(const std::string& name,
                          std::vector<uint8_t>* out) {
  const FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  return Read(name, 0, file->size_bytes, out);
}

Status FileStore::Preallocate(const std::string& name, uint64_t final_size) {
  FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  return PreallocateResolved(file, final_size);
}

Status FileStore::PreallocateResolved(FileInfo* file, uint64_t final_size) {
  const uint64_t needed = ClustersFor(final_size);
  if (needed <= file->allocated_clusters) return Status::OK();
  const uint64_t grow = needed - file->allocated_clusters;
  const uint64_t hint =
      file->extents.empty() ? alloc::kNoHint : file->extents.back().end();
  LOR_RETURN_IF_ERROR(allocator_->Allocate(grow, hint, &file->extents));
  file->allocated_clusters = needed;
  SyncTracker(file);
  return Status::OK();
}

Status FileStore::Truncate(const std::string& name, uint64_t new_size) {
  FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  if (new_size > file->size_bytes) {
    return Status::InvalidArgument("truncate cannot grow a file");
  }
  const uint64_t keep = ClustersFor(new_size);
  uint64_t have = file->allocated_clusters;
  while (have > keep && !file->extents.empty()) {
    alloc::Extent& tail = file->extents.back();
    const uint64_t drop = std::min(tail.length, have - keep);
    InvalidateExtents({{tail.end() - drop, drop}});
    LOR_RETURN_IF_ERROR(FreeExtent({tail.end() - drop, drop}));
    tail.length -= drop;
    have -= drop;
    if (tail.length == 0) file->extents.pop_back();
  }
  file->allocated_clusters = have;
  stats_.live_bytes -= file->size_bytes - new_size;
  if (new_size != file->size_bytes) {
    // A truncated-to-empty file restarts the hash stream; a mid-file
    // cut leaves no way to rewind FNV, so the hash goes unknowable.
    file->payload_hash = kFnvBasis;
    file->hash_valid = new_size == 0;
    file->block_sums.clear();
    file->tail_hash = kFnvBasis;
  }
  file->size_bytes = new_size;
  SyncTracker(file);
  ChargeMftAccess(file->id, /*write=*/true);
  ChargeJournal(/*flush=*/false);
  return Status::OK();
}

Status FileStore::Fsync(const std::string& name) {
  const FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  LOR_RETURN_IF_ERROR(FlushFileFrames(*file));
  ChargeJournal(/*flush=*/true);
  return Status::OK();
}

Status FileStore::MoveFileData(FileInfo* file, alloc::ExtentList fresh) {
  // The mover reads the old layout straight off the device, so any
  // dirty cached frames must reach the platter first; the old frames
  // are then dropped once the clusters change owner. The new location
  // has no frames (freed ranges are always invalidated), so the direct
  // write below cannot go stale against the cache.
  LOR_RETURN_IF_ERROR(FlushFileFrames(*file));
  // Read the old layout, write the new one (payload preserved in
  // retain mode) — one vectored submission per direction, staged
  // through a single flat buffer instead of per-run chunk vectors.
  const bool retain = device_->data_mode() == sim::DataMode::kRetain;
  std::vector<uint8_t> payload;
  if (retain) payload.resize(file->size_bytes);
  MapRangeInto(*file, 0, file->size_bytes, &read_runs_);
  io_slices_.clear();
  uint64_t consumed = 0;
  for (const auto& [phys, len] : read_runs_) {
    io_slices_.push_back(
        {phys, len, nullptr, retain ? payload.data() + consumed : nullptr});
    consumed += len;
  }
  LOR_RETURN_IF_ERROR(device_->ReadV(io_slices_));
  FileInfo relaid = *file;
  relaid.extents = fresh;
  MapRangeInto(relaid, 0, file->size_bytes, &read_runs_);
  io_slices_.clear();
  uint64_t copied = 0;
  for (const auto& [phys, len] : read_runs_) {
    io_slices_.push_back(
        {phys, len, retain ? payload.data() + copied : nullptr, nullptr});
    copied += len;
  }
  LOR_RETURN_IF_ERROR(device_->WriteV(io_slices_));

  InvalidateExtents(file->extents);
  for (const alloc::Extent& e : file->extents) {
    LOR_RETURN_IF_ERROR(FreeExtent(e));
  }
  file->extents = std::move(fresh);
  SyncTracker(file);
  ChargeMftAccess(file->id, /*write=*/true);
  ChargeJournal(/*flush=*/true);
  return Status::OK();
}

Result<bool> FileStore::DefragmentFile(const std::string& name) {
  FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  const uint64_t old_fragments = alloc::CountFragments(file->extents);
  if (old_fragments <= 1 || file->allocated_clusters == 0) return false;

  // Deferred frees hide reusable space from the mover; commit first, as
  // the defragmentation utility runs after quiescing.
  allocator_->CommitPending();

  alloc::ExtentList fresh;
  Status s = allocator_->Allocate(file->allocated_clusters, alloc::kNoHint,
                                  &fresh);
  if (s.IsNoSpace()) return false;
  LOR_RETURN_IF_ERROR(s);
  if (alloc::CountFragments(fresh) >= old_fragments) {
    for (const alloc::Extent& e : fresh) {
      LOR_RETURN_IF_ERROR(FreeExtent(e));
    }
    return false;
  }
  LOR_RETURN_IF_ERROR(MoveFileData(file, std::move(fresh)));
  return true;
}

Result<bool> FileStore::PromoteToOuterZone(const std::string& name) {
  FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  if (file->allocated_clusters == 0) return false;
  alloc::FreeSpaceMap* map = allocator_->free_map();
  if (map == nullptr) {
    return Status::NotSupported("allocator exposes no free-space map");
  }
  allocator_->CommitPending();

  // Lowest-addressed free run that holds the whole file.
  alloc::Extent target{};
  for (const alloc::Extent& run : map->Snapshot()) {
    if (run.length >= file->allocated_clusters) {
      target = {run.start, file->allocated_clusters};
      break;
    }
  }
  if (target.empty() || file->extents.empty() ||
      target.start >= file->extents.front().start) {
    return false;  // No better (more outward) placement exists.
  }
  LOR_RETURN_IF_ERROR(map->AllocateAt(target));
  LOR_RETURN_IF_ERROR(MoveFileData(file, {target}));
  return true;
}

Status FileStore::MarkFilePendingBad(const std::string& name) {
  const FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  for (const alloc::Extent& e : file->extents) {
    for (uint64_t c = e.start; c < e.end(); ++c) {
      pending_bad_clusters_.insert(c);
    }
  }
  return Status::OK();
}

Result<bool> FileStore::RelocateFile(const std::string& name) {
  FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  if (file->allocated_clusters == 0) return false;
  // Deferred frees hide reusable space from the mover (same reasoning
  // as DefragmentFile: repair runs after quiescing).
  allocator_->CommitPending();
  alloc::ExtentList fresh;
  Status s = allocator_->Allocate(file->allocated_clusters, alloc::kNoHint,
                                  &fresh);
  if (s.IsNoSpace()) return false;
  LOR_RETURN_IF_ERROR(s);
  LOR_RETURN_IF_ERROR(MoveFileData(file, std::move(fresh)));
  return true;
}

Result<uint64_t> FileStore::GetReadCount(const std::string& name) const {
  const FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  return file->read_count;
}

Result<alloc::ExtentList> FileStore::GetExtents(
    const std::string& name) const {
  const FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  return file->extents;
}

Result<uint64_t> FileStore::GetSize(const std::string& name) const {
  const FileInfo* file = Find(name);
  if (file == nullptr) return Status::NotFound("no such file: " + name);
  return file->size_bytes;
}

std::vector<std::string> FileStore::ListFiles() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, info] : files_) names.push_back(name);
  return names;
}

void FileStore::VisitFiles(
    const std::function<void(const std::string& name, const FileInfo& info)>&
        visit) const {
  for (const auto& [name, info] : files_) visit(name, info);
}

uint64_t FileStore::FreeBytes() const {
  return allocator_->total_unused_clusters() * options_.cluster_bytes;
}

void FileStore::ReclaimRecordId(uint64_t id) {
  auto it = std::find(free_record_ids_.begin(), free_record_ids_.end(), id);
  if (it != free_record_ids_.end()) free_record_ids_.erase(it);
}

void FileStore::UndoLogEntry(const RecoveryLogEntry& entry,
                             RecoveryStats* out) {
  switch (entry.kind) {
    case RecoveryLogEntry::Kind::kCreate: {
      auto it = files_.find(entry.name);
      if (it == files_.end()) return;  // Undone by a later entry's undo.
      out->data_loss_bytes += it->second.size_bytes;
      stats_.live_bytes -= it->second.size_bytes;
      tracker_.Remove(it->second.tracked_fragments, it->second.tracked_bytes);
      ChargeMftAccess(it->second.id, /*write=*/true);
      RecycleRecordId(it->second.id);
      InvalidateHandles(entry.name);
      files_.erase(it);
      --stats_.file_count;
      break;
    }
    case RecoveryLogEntry::Kind::kDelete: {
      // The delete never committed: resurrect the file. Its clusters
      // were held, never reissued, so the old layout is intact.
      ReclaimRecordId(entry.prior.id);
      auto [it, inserted] = files_.emplace(entry.name, entry.prior);
      if (!inserted) it->second = entry.prior;
      tracker_.Add(entry.prior.tracked_fragments, entry.prior.tracked_bytes);
      stats_.live_bytes += entry.prior.size_bytes;
      ++stats_.file_count;
      ChargeMftAccess(entry.prior.id, /*write=*/true);
      InvalidateHandles(entry.name);
      break;
    }
    case RecoveryLogEntry::Kind::kRename: {
      auto dst = files_.find(entry.name);
      if (dst == files_.end()) return;
      // The streamed temp moves back under its source name; its own
      // (earlier, equally uncommitted) create entry — or the orphan
      // sweep — then disposes of it, which is also where its bytes are
      // counted as lost.
      FileInfo moved = std::move(dst->second);
      if (entry.had_prior) {
        ReclaimRecordId(entry.prior.id);
        dst->second = entry.prior;
        tracker_.Add(entry.prior.tracked_fragments,
                     entry.prior.tracked_bytes);
        stats_.live_bytes += entry.prior.size_bytes;
      } else {
        files_.erase(dst);
        --stats_.file_count;
      }
      files_.emplace(entry.source, std::move(moved));
      ++stats_.file_count;
      ChargeMftAccess(entry.file_id, /*write=*/true);
      InvalidateHandles(entry.name);
      InvalidateHandles(entry.source);
      break;
    }
  }
}

Result<RecoveryStats> FileStore::Recover(
    const std::function<bool(const std::string&)>& is_temp) {
  const sim::FaultInjector* injector = device_->fault_injector();
  RecoveryStats out;
  out.entries_scanned = recovery_log_.size();

  // Journal scan: one sequential read over the region the live records
  // occupy — the first thing a mounting filesystem does.
  const uint64_t zone_bytes = mft_clusters_ * options_.cluster_bytes;
  if (options_.charge_metadata_io) {
    const uint64_t journal_base = zone_bytes / 2;
    const uint64_t journal_size = std::max<uint64_t>(
        2 * kJournalRecordBytes, zone_bytes - journal_base);
    const uint64_t scan = std::min<uint64_t>(
        std::max<uint64_t>(recovery_log_.size(), 1) * kJournalRecordBytes,
        journal_size);
    Status s = device_->Read(journal_base, scan);
    (void)s;
  }

  auto durable = [injector](uint64_t seq) {
    return injector == nullptr || injector->IsDurable(seq);
  };

  // Commit rule: the journal is written sequentially, so the committed
  // operations are exactly the longest prefix of records that reached
  // the platter — the first torn or lost record truncates the log.
  size_t committed = 0;
  while (committed < recovery_log_.size() &&
         durable(recovery_log_[committed].commit_seq)) {
    ++committed;
  }

  // Redo pass. A committed operation's MFT writes preceded its commit
  // record inside the same op chain, so its effects are already on the
  // platter; redo is the idempotency check — one record read each.
  for (size_t i = 0; i < committed; ++i) {
    ChargeMftAccess(recovery_log_[i].file_id, /*write=*/false);
    ++out.ops_redone;
  }

  // Undo pass: everything past the committed prefix rolls back, newest
  // first, so a safe write's rename undoes before its create.
  for (size_t i = recovery_log_.size(); i-- > committed;) {
    UndoLogEntry(recovery_log_[i], &out);
    ++out.ops_rolled_back;
  }

  // Orphan sweep: temps whose create committed but whose rename did
  // not are live files under temp names — discard them.
  for (auto it = files_.begin(); it != files_.end();) {
    if (!is_temp(it->first)) {
      ++it;
      continue;
    }
    out.data_loss_bytes += it->second.size_bytes;
    stats_.live_bytes -= it->second.size_bytes;
    tracker_.Remove(it->second.tracked_fragments, it->second.tracked_bytes);
    ChargeMftAccess(it->second.id, /*write=*/true);
    RecycleRecordId(it->second.id);
    InvalidateHandles(it->first);
    --stats_.file_count;
    ++out.orphan_temps_discarded;
    it = files_.erase(it);
  }

  // Free-space rebuild: a fresh allocator claims exactly the surviving
  // layouts, so held rollback clusters and rolled-back allocations fall
  // out free without per-extent bookkeeping. One MFT record read per
  // live file — recovery time scales with volume age. Note this
  // installs the run-cache default; injected ablation allocators do not
  // survive a crash.
  auto rebuilt = std::make_unique<alloc::RunCacheAllocator>(
      total_clusters_, options_.alloc, mft_clusters_);
  alloc::FreeSpaceMap* map = rebuilt->free_map();
  if (map == nullptr) {
    return Status::NotSupported("recovery requires a free-space map");
  }
  for (auto& [name, file] : files_) {
    ChargeMftAccess(file.id, /*write=*/false);
    for (const alloc::Extent& e : file.extents) {
      LOR_RETURN_IF_ERROR(map->AllocateAt(e));
    }
  }
  for (const alloc::Extent& e : index_buffers_) {
    LOR_RETURN_IF_ERROR(map->AllocateAt(e));
  }
  // Quarantined clusters stay retired across a remount (the bad-sector
  // list is volume metadata, in spirit); pending-bad marks were scrub
  // state in DRAM and die with the power.
  for (const uint64_t c : quarantined_clusters_) {
    LOR_RETURN_IF_ERROR(map->AllocateAt({c, 1}));
  }
  pending_bad_clusters_.clear();
  allocator_ = std::move(rebuilt);

  // Close out: open handles do not survive a power cut; a checkpoint
  // record marks the journal tail replayed.
  for (auto& [name, file] : files_) handles_.InvalidateAll(name);
  crash_held_.clear();
  recovery_log_.clear();
  journal_batch_open_ = false;
  batched_journal_records_ = 0;
  batched_journal_flush_ = false;
  ChargeJournal(/*flush=*/true);
  return out;
}

void FileStore::EndCrashWindow() {
  recovery_log_.clear();
  if (!crash_held_.empty()) {
    for (const alloc::Extent& e : crash_held_) {
      Status s = FreeExtent(e);
      (void)s;
    }
    crash_held_.clear();
    allocator_->Tick();
  }
}

Status FileStore::CheckConsistency() const {
  std::vector<alloc::Extent> all;
  uint64_t allocated = 0;
  for (const auto& [name, file] : files_) {
    uint64_t file_clusters = 0;
    for (const alloc::Extent& e : file.extents) {
      if (e.start < mft_clusters_ || e.end() > total_clusters_) {
        return Status::Corruption("extent outside data zone: " + name);
      }
      file_clusters += e.length;
      all.push_back(e);
    }
    if (file_clusters != file.allocated_clusters) {
      return Status::Corruption("allocated_clusters mismatch: " + name);
    }
    if (file_clusters < ClustersFor(file.size_bytes)) {
      return Status::Corruption("file size exceeds layout: " + name);
    }
    allocated += file_clusters;
  }
  for (const alloc::Extent& e : index_buffers_) {
    if (e.start < mft_clusters_ || e.end() > total_clusters_) {
      return Status::Corruption("index buffer outside data zone");
    }
    all.push_back(e);
    allocated += e.length;
  }
  std::sort(all.begin(), all.end(),
            [](const alloc::Extent& a, const alloc::Extent& b) {
              return a.start < b.start;
            });
  for (size_t i = 1; i < all.size(); ++i) {
    if (all[i].start < all[i - 1].end()) {
      return Status::Corruption("files share clusters");
    }
  }
  // Quarantined clusters are owned by nobody: not a file, not the
  // allocator. They still close the accounting equation.
  for (const uint64_t c : quarantined_clusters_) {
    auto it = std::upper_bound(
        all.begin(), all.end(), c,
        [](uint64_t v, const alloc::Extent& e) { return v < e.start; });
    if (it != all.begin() && std::prev(it)->end() > c) {
      return Status::Corruption("quarantined cluster owned by a live object");
    }
  }
  const uint64_t data_zone = total_clusters_ - mft_clusters_;
  if (allocated + allocator_->total_unused_clusters() +
          quarantined_clusters_.size() !=
      data_zone) {
    return Status::Corruption("cluster accounting mismatch");
  }
  return Status::OK();
}

}  // namespace fs
}  // namespace lor
