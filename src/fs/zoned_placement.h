// ZonedPlacement: heat-based migration of popular files into the fast
// outer disk zones — the multi-zone placement policy the paper surveys
// in §3.4 (Ghandeharizadeh et al. report 20-40% gains on FTP workloads;
// NTFS's own defragmenter moves boot/application files to faster
// bands).
//
// The tool ranks files by their read counts and relocates the hottest
// into the lowest-addressed (outermost, highest-bandwidth) free space,
// charging all the migration I/O to the simulated clock so experiments
// can weigh the cost against the read-throughput benefit.

#ifndef LOREPO_FS_ZONED_PLACEMENT_H_
#define LOREPO_FS_ZONED_PLACEMENT_H_

#include <cstdint>

#include "fs/file_store.h"
#include "util/result.h"

namespace lor {
namespace fs {

/// Outcome of one migration pass.
struct ZonedPlacementReport {
  uint64_t files_considered = 0;
  uint64_t files_moved = 0;
  uint64_t bytes_moved = 0;
  /// Mean starting byte offset of the hot set, as a fraction of the
  /// volume, before and after (0 = outermost).
  double hot_centroid_before = 0.0;
  double hot_centroid_after = 0.0;
  /// Simulated seconds the migration consumed.
  double elapsed_seconds = 0.0;
};

/// Online zone-aware migration over a FileStore.
class ZonedPlacement {
 public:
  explicit ZonedPlacement(FileStore* store) : store_(store) {}

  /// Migrates the `hot_fraction` (0..1] most-read files toward the
  /// outer zones, hottest first, stopping after `byte_budget` bytes
  /// have moved (0 = unlimited).
  Result<ZonedPlacementReport> MigrateHotFiles(double hot_fraction,
                                               uint64_t byte_budget = 0);

 private:
  FileStore* store_;
};

}  // namespace fs
}  // namespace lor

#endif  // LOREPO_FS_ZONED_PLACEMENT_H_
