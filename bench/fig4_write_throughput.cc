// Figure 4 — 512 KB write throughput over time: during bulk load, then
// during the aging intervals ending at storage ages two and four.
//
// Paper's finding: SQL Server loads a volume very quickly (17.7 MB/s vs
// NTFS's 10.1 MB/s at 512 KB) but its write throughput collapses once
// existing objects are replaced; NTFS stays roughly flat.

#include <cstdio>

#include "bench_common.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Figure 4: 512 KB write throughput over time", "Figure 4",
              options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  const std::vector<double> ages = {2.0, 4.0};

  // Paper values (bulk load exact from the text; aged values read off
  // the chart).
  const double paper_db[] = {17.7, 7.5, 5.2};
  const double paper_fs[] = {10.1, 9.5, 9.2};

  std::map<std::string, std::vector<double>> series;
  // Per-interval write-latency histograms (put + safe-write merged),
  // isolated by subtracting the previous checkpoint's cumulative
  // snapshot.
  std::map<std::string, std::vector<LatencyHistogram>> lat;
  for (Backend backend : {Backend::kDatabase, Backend::kFilesystem}) {
    auto repo = MakeRepository(backend, volume);
    workload::WorkloadConfig config = options.MakeWorkloadConfig();
    config.sizes = workload::SizeDistribution::Constant(512 * kKiB);
    auto checkpoints = RunAging(repo.get(), config, ages,
                                /*probe_reads=*/false);
    if (!checkpoints.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", repo->name().c_str(),
                   checkpoints.status().ToString().c_str());
      continue;
    }
    sim::LatencyRecorder prev;
    for (const AgingCheckpoint& cp : *checkpoints) {
      series[repo->name()].push_back(cp.write.mb_per_s());
      lat[repo->name()].push_back((cp.latency - prev).writes());
      prev = cp.latency;
    }
  }

  const char* labels[] = {"during bulk load (age 0)", "age 0 -> 2",
                          "age 2 -> 4"};
  TableWriter table({"interval", "database", "filesystem",
                     "paper db", "paper fs",
                     "db p50 ms", "db p99 ms", "db p999 ms",
                     "fs p50 ms", "fs p99 ms", "fs p999 ms"});
  for (size_t i = 0; i < 3; ++i) {
    const LatencyHistogram db_lat =
        i < lat["database"].size() ? lat["database"][i] : LatencyHistogram{};
    const LatencyHistogram fs_lat = i < lat["filesystem"].size()
                                        ? lat["filesystem"][i]
                                        : LatencyHistogram{};
    table.Row()
        .Cell(labels[i])
        .Cell(i < series["database"].size() ? series["database"][i] : 0.0)
        .Cell(i < series["filesystem"].size() ? series["filesystem"][i]
                                              : 0.0)
        .Cell(paper_db[i])
        .Cell(paper_fs[i])
        .Cell(db_lat.Quantile(0.5) * 1e3, 3)
        .Cell(db_lat.Quantile(0.99) * 1e3, 3)
        .Cell(db_lat.Quantile(0.999) * 1e3, 3)
        .Cell(fs_lat.Quantile(0.5) * 1e3, 3)
        .Cell(fs_lat.Quantile(0.99) * 1e3, 3)
        .Cell(fs_lat.Quantile(0.999) * 1e3, 3);
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: the database out-writes the filesystem during bulk\n"
      "load, then degrades below it once replacements begin; the\n"
      "filesystem holds roughly steady.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
