// Micro-benchmarks for the allocation substrates (google-benchmark):
// free-space map operations under each fit policy, the NTFS-like run
// cache, the buddy system, and the GAM bitmap scan.

#include <benchmark/benchmark.h>

#include "alloc/buddy_allocator.h"
#include "alloc/free_space_map.h"
#include "alloc/policy_allocator.h"
#include "alloc/run_cache_allocator.h"
#include "db/gam.h"
#include "util/random.h"

namespace lor {
namespace {

constexpr uint64_t kClusters = 1 << 22;  // 16 GB at 4 KB clusters.

// Pre-fragments a map so selection work is realistic.
void Shatter(alloc::FreeSpaceMap* map, Rng* rng, int holes) {
  for (int i = 0; i < holes; ++i) {
    const uint64_t at = rng->Uniform(kClusters - 64);
    alloc::Extent e{at, 1 + rng->Uniform(63)};
    if (map->IsFree(e)) {
      Status s = map->AllocateAt(e);
      benchmark::DoNotOptimize(s.ok());
    }
  }
}

void BM_FreeSpaceMapAllocateFree(benchmark::State& state) {
  const auto policy = static_cast<alloc::FitPolicy>(state.range(0));
  alloc::FreeSpaceMap map(kClusters);
  Rng rng(7);
  Shatter(&map, &rng, 4096);
  std::vector<alloc::Extent> live;
  for (auto _ : state) {
    if (live.size() < 1024 || rng.Bernoulli(0.5)) {
      alloc::Extent e = map.AllocateUpTo(16, policy);
      if (!e.empty()) live.push_back(e);
    } else {
      const size_t i = rng.Uniform(live.size());
      Status s = map.Free(live[i]);
      benchmark::DoNotOptimize(s.ok());
      live[i] = live.back();
      live.pop_back();
    }
  }
  state.SetLabel(std::string(alloc::FitPolicyName(policy)));
}
BENCHMARK(BM_FreeSpaceMapAllocateFree)
    ->Arg(static_cast<int>(alloc::FitPolicy::kFirstFit))
    ->Arg(static_cast<int>(alloc::FitPolicy::kBestFit))
    ->Arg(static_cast<int>(alloc::FitPolicy::kWorstFit))
    ->Arg(static_cast<int>(alloc::FitPolicy::kNextFit));

void BM_FreeSpaceMapExtendAt(benchmark::State& state) {
  alloc::FreeSpaceMap map(kClusters);
  uint64_t at = 0;
  for (auto _ : state) {
    const uint64_t got = map.ExtendAt(at, 16);
    benchmark::DoNotOptimize(got);
    at += 16;
    if (at + 16 >= kClusters) {
      state.PauseTiming();
      map = alloc::FreeSpaceMap(kClusters);
      at = 0;
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_FreeSpaceMapExtendAt);

void BM_RunCacheAllocatorChurn(benchmark::State& state) {
  alloc::RunCacheAllocator allocator(kClusters);
  Rng rng(11);
  std::vector<alloc::ExtentList> live;
  for (auto _ : state) {
    allocator.Tick();
    if (live.size() < 512 || rng.Bernoulli(0.5)) {
      alloc::ExtentList out;
      if (allocator.Allocate(512, alloc::kNoHint, &out).ok()) {
        live.push_back(std::move(out));
      }
    } else {
      const size_t i = rng.Uniform(live.size());
      for (const alloc::Extent& e : live[i]) {
        Status s = allocator.Free(e);
        benchmark::DoNotOptimize(s.ok());
      }
      live[i] = std::move(live.back());
      live.pop_back();
    }
  }
}
BENCHMARK(BM_RunCacheAllocatorChurn);

void BM_BuddyAllocateFree(benchmark::State& state) {
  alloc::BuddyAllocator allocator(kClusters);
  Rng rng(13);
  std::vector<alloc::Extent> live;
  for (auto _ : state) {
    if (live.size() < 2048 || rng.Bernoulli(0.5)) {
      alloc::ExtentList out;
      if (allocator.Allocate(1 + rng.Uniform(512), alloc::kNoHint, &out)
              .ok()) {
        live.push_back(out[0]);
      }
    } else {
      const size_t i = rng.Uniform(live.size());
      Status s = allocator.Free(live[i]);
      benchmark::DoNotOptimize(s.ok());
      live[i] = live.back();
      live.pop_back();
    }
  }
}
BENCHMARK(BM_BuddyAllocateFree);

void BM_GamAllocateRelease(benchmark::State& state) {
  db::GamBitmap gam(1 << 22);
  Status init = gam.Release(0, 1 << 22);
  benchmark::DoNotOptimize(init.ok());
  Rng rng(17);
  std::vector<uint64_t> live;
  for (auto _ : state) {
    if (live.size() < 100000 || rng.Bernoulli(0.5)) {
      const uint64_t e = gam.AllocateLowest();
      if (e != db::kNoExtent) live.push_back(e);
    } else {
      const size_t i = rng.Uniform(live.size());
      Status s = gam.Release(live[i], 1);
      benchmark::DoNotOptimize(s.ok());
      live[i] = live.back();
      live.pop_back();
    }
  }
}
BENCHMARK(BM_GamAllocateRelease);

}  // namespace
}  // namespace lor

BENCHMARK_MAIN();
