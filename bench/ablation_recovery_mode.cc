// Ablation — bulk-logged vs fully-logged recovery (paper §4: the
// experiments ran SQL Server in bulk-logged mode so BLOB bytes skip the
// log; this bench shows what full logging would have cost, i.e. why the
// authors chose the mode they did for a fair comparison with NTFS).

#include <cstdio>
#include <cstdlib>

#include "core/db_repository.h"
#include "bench_common.h"
#include "util/table_writer.h"
#include "workload/getput_runner.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Ablation: bulk-logged vs fully-logged BLOB writes",
              "Section 4 (recovery-mode choice)", options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  TableWriter table({"recovery mode", "bulk load MB/s", "age 0->2 MB/s",
                     "log bytes / data byte"});
  for (bool bulk_logged : {true, false}) {
    core::DbRepositoryConfig config;
    config.volume_bytes = volume;
    config.store.bulk_logged = bulk_logged;
    core::DbRepository repo(config);
    workload::WorkloadConfig wc = options.MakeWorkloadConfig();
    wc.sizes = workload::SizeDistribution::Constant(512 * kKiB);
    workload::GetPutRunner runner(&repo, wc);
    auto load = runner.BulkLoad();
    if (!load.ok()) {
      std::fprintf(stderr, "ablation_recovery_mode: bulk load (%s) failed: %s\n",
                   bulk_logged ? "bulk-logged" : "fully logged",
                   load.status().ToString().c_str());
      std::exit(1);
    }
    auto aged = runner.AgeTo(2.0);
    const auto& stats = repo.blob_store()->stats();
    table.Row()
        .Cell(bulk_logged ? "bulk-logged (paper)" : "fully logged")
        .Cell(load->mb_per_s())
        .Cell(aged.ok() ? aged->mb_per_s() : 0.0)
        .Cell(static_cast<double>(stats.log_bytes) /
                  static_cast<double>(stats.live_bytes +
                                      runner.age_tracker().churned_bytes()),
              3);
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: full logging writes every BLOB byte twice (data file\n"
      "+ log), roughly halving write throughput — the reason the paper's\n"
      "configuration (and real deployments) use bulk-logged mode for\n"
      "large-object work.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
