// Ablation (beyond the paper) — queue-depth-aware submission: aged
// write and read throughput plus completion-latency percentiles as the
// client keeps 1..32 operations in flight against each back end.
//
// The paper's measurements are strictly synchronous (one outstanding
// request, the qd=1 rows here — bit-identical to every other figure).
// A production object store fronts the same spindle with NCQ-style
// queued submission: the scheduler services queued extent-runs in
// shortest-positioning-time order, which buys throughput (shorter
// average seeks between interleaved streams) at the price of queueing
// delay in the tail — visible here as p99/p999 growing with depth while
// p50 moves far less.

#include <cstdio>

#include "bench_common.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Ablation: queue-depth-aware submission (512 KB)",
              "queue-depth extension of Figures 1 and 4", options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  const std::vector<double> ages = {2.0};
  const std::vector<uint32_t> depths = {1, 2, 4, 8, 16, 32};

  TableWriter table({"backend", "qd", "aged write mb/s", "read mb/s",
                     "write p50 ms", "write p99 ms", "write p999 ms",
                     "read p50 ms", "read p99 ms", "read p999 ms"});
  for (Backend backend : {Backend::kDatabase, Backend::kFilesystem}) {
    for (uint32_t qd : depths) {
      // Fresh repository per cell: every depth ages the same seed's
      // store from the same bulk-loaded state, so rows differ only in
      // submission depth (the qd=1 row is the paper's synchronous
      // reference).
      auto repo = MakeRepository(backend, volume);
      workload::WorkloadConfig config = options.MakeWorkloadConfig();
      config.sizes = workload::SizeDistribution::Constant(512 * kKiB);
      config.queue_depth = qd;

      auto checkpoints = RunAging(repo.get(), config, ages);
      if (!checkpoints.ok()) {
        std::fprintf(stderr, "%s qd=%u failed: %s\n", repo->name().c_str(),
                     qd, checkpoints.status().ToString().c_str());
        continue;
      }
      const AgingCheckpoint& loaded = checkpoints->front();
      const AgingCheckpoint& aged = checkpoints->back();
      // Isolate the aged interval (replacements + the read probe at age
      // 2): cumulative latency minus the load-time snapshot.
      const sim::LatencyRecorder aged_lat = aged.latency - loaded.latency;
      const LatencyHistogram writes = aged_lat.writes();
      const LatencyHistogram reads = aged_lat.histogram(sim::OpClass::kGet);
      table.Row()
          .Cell(repo->name())
          .Cell(static_cast<uint64_t>(qd))
          .Cell(aged.write.mb_per_s())
          .Cell(aged.read.mb_per_s())
          .Cell(writes.Quantile(0.5) * 1e3, 3)
          .Cell(writes.Quantile(0.99) * 1e3, 3)
          .Cell(writes.Quantile(0.999) * 1e3, 3)
          .Cell(reads.Quantile(0.5) * 1e3, 3)
          .Cell(reads.Quantile(0.99) * 1e3, 3)
          .Cell(reads.Quantile(0.999) * 1e3, 3);
    }
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: tail latency (p99/p999) grows with queue depth on\n"
      "both back ends - a queued op waits for the ops serviced before\n"
      "it - while the median moves much less. The qd=1 rows are the\n"
      "synchronous path and match the other figures exactly.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
