// Micro-benchmark: the buffer-pool request paths themselves — miss
// (device fill), clean hit, and pinned hit — in both data modes. Every
// cached read the storage layers issue lands on one of these paths, so
// their host cost bounds how much a warm cache can actually return at
// bench scale.
//
// The region is written once, then read in the 64 KiB requests the
// stores issue. The miss phase invalidates the region before each pass
// (every request fills through ReadV into a recycled frame — the
// steady-state miss, not the cold-allocation one); the hit phase
// re-reads resident frames; the pinned phase does the same under
// PinRange (the open-handle window). Simulated MB/s is deterministic
// and gated: the miss path must charge exactly the device's sequential
// read rate, and hit and pinned-hit must charge identically (the pin
// is bookkeeping, not a toll) at the pool's copy bandwidth — so the
// table doubles as a charge-parity cross-check. Wall ns/op is
// host-dependent and printed as indented prose.
//
// Retain-mode passes verify every payload byte against the written
// pattern; any mismatch (stale frame, recycled-buffer leak) exits
// nonzero and fails the run_all REQUIRED gate.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "sim/block_device.h"
#include "sim/buffer_pool.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

constexpr uint64_t kRegion = 8 * kMiB;
constexpr uint64_t kRequestBytes = 64 * kKiB;
constexpr uint64_t kRequests = kRegion / kRequestBytes;
constexpr uint64_t kPoolBytes = 16 * kMiB;  ///< Holds the region whole.
/// Passes per phase (min-of-N wall estimator, as in micro_device).
constexpr uint64_t kPasses = 64;

struct PhaseResult {
  uint64_t bytes = 0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;  ///< Fastest pass.

  double sim_mb_per_s() const {
    return sim_seconds > 0.0
               ? static_cast<double>(bytes) / (1024.0 * 1024.0) / sim_seconds
               : 0.0;
  }
  double wall_mb_per_s() const {
    return wall_seconds > 0.0
               ? static_cast<double>(kRegion) / (1024.0 * 1024.0) /
                     wall_seconds
               : 0.0;
  }
  double wall_ns_per_op() const {
    return wall_seconds * 1e9 / static_cast<double>(kRequests);
  }
};

uint8_t PatternByte(uint64_t offset) {
  return static_cast<uint8_t>(offset * 167 + 13);
}

enum class Path { kMiss, kHit, kPinnedHit };

/// One phase: `passes` full sweeps of the region through the pool.
/// Returns false on any status error or retain-mode payload mismatch.
bool RunPath(sim::BlockDevice* dev, sim::BufferPool* pool, Path path,
             bool retain, PhaseResult* result) {
  std::vector<uint8_t> back(kRequestBytes);
  std::vector<sim::CacheSlice> slice(1);
  if (path == Path::kHit || path == Path::kPinnedHit) {
    // Populate once; the measured passes must never touch the device.
    for (uint64_t i = 0; i < kRequests; ++i) {
      const uint64_t off = i * kRequestBytes;
      slice[0] = {off, kRequestBytes, nullptr, nullptr, off, kRequestBytes};
      if (!pool->ReadThrough(slice).ok()) return false;
    }
  }
  if (path == Path::kPinnedHit) {
    if (pool->PinRange(0, kRegion) != kRequests) return false;
  }

  const double sim0 = dev->clock().now();
  double min_pass = 0.0;
  for (uint64_t pass = 0; pass < kPasses; ++pass) {
    if (path == Path::kMiss) {
      // Drop the frames (buffers recycle into the free lists) so every
      // request below is a steady-state fill, never a hit.
      pool->Invalidate(0, kRegion);
    }
    const auto pass0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kRequests; ++i) {
      const uint64_t off = i * kRequestBytes;
      slice[0] = {off, kRequestBytes, nullptr, back.data(), off,
                  kRequestBytes};
      if (!pool->ReadThrough(slice).ok()) return false;
    }
    const double pass_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - pass0)
                              .count();
    if (pass == 0 || pass_s < min_pass) min_pass = pass_s;
    if (retain) {
      // `back` holds the last request of the sweep.
      for (uint64_t b = 0; b < kRequestBytes; ++b) {
        if (back[b] != PatternByte(kRegion - kRequestBytes + b)) {
          std::fprintf(stderr, "payload mismatch at byte %llu\n",
                       static_cast<unsigned long long>(b));
          return false;
        }
      }
    }
  }
  result->bytes = kPasses * kRegion;
  result->sim_seconds = dev->clock().now() - sim0;
  result->wall_seconds = min_pass;
  if (path == Path::kPinnedHit) pool->UnpinRange(0, kRegion);
  return true;
}

const char* PathName(Path path) {
  switch (path) {
    case Path::kMiss:
      return "miss";
    case Path::kHit:
      return "hit";
    case Path::kPinnedHit:
      return "pinned hit";
  }
  return "?";
}

int Run(const Options& options) {
  PrintBanner("Micro: buffer-pool paths (miss vs hit vs pinned hit)",
              "host-cost substrate for the cache ablation", options);

  TableWriter table({"mode", "path", "sim read MB/s"});
  bool ok = true;
  PhaseResult wall[2][3];

  for (int retain = 0; retain < 2; ++retain) {
    const sim::DataMode mode =
        retain != 0 ? sim::DataMode::kRetain : sim::DataMode::kMetadataOnly;
    for (Path path : {Path::kMiss, Path::kHit, Path::kPinnedHit}) {
      sim::BlockDevice dev(
          sim::DiskParams::St3400832as().WithCapacity(kRegion), mode);
      sim::BufferPoolOptions pool_options;
      pool_options.capacity_bytes = kPoolBytes;
      sim::BufferPool pool(&dev, pool_options);
      dev.AttachBufferPool(&pool);
      // Seed the platter so miss fills carry real bytes in retain mode.
      std::vector<uint8_t> pattern(kRegion);
      for (uint64_t b = 0; b < kRegion; ++b) pattern[b] = PatternByte(b);
      if (!dev.Write(0, kRegion,
                     retain != 0 ? std::span<const uint8_t>(pattern)
                                 : std::span<const uint8_t>())
               .ok()) {
        ok = false;
        continue;
      }

      PhaseResult result;
      if (!RunPath(&dev, &pool, path, retain != 0, &result)) {
        std::fprintf(stderr, "%s %s phase failed\n",
                     retain != 0 ? "retain" : "metadata", PathName(path));
        ok = false;
        continue;
      }
      // The counters must say what the phase claims it measured.
      const sim::BufferPoolStats& stats = pool.stats();
      if ((path == Path::kMiss && stats.misses < kPasses * kRequests) ||
          (path != Path::kMiss && stats.hits < kPasses * kRequests) ||
          (path == Path::kPinnedHit && stats.pinned_hits == 0)) {
        std::fprintf(stderr, "%s %s phase took the wrong cache path\n",
                     retain != 0 ? "retain" : "metadata", PathName(path));
        ok = false;
        continue;
      }
      wall[retain][static_cast<int>(path)] = result;
      table.Row()
          .Cell(retain != 0 ? "retain" : "metadata")
          .Cell(PathName(path))
          .Cell(result.sim_mb_per_s());
    }
  }

  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf("\n");

  for (int retain = 0; retain < 2; ++retain) {
    for (int path = 0; path < 3; ++path) {
      const PhaseResult& r = wall[retain][path];
      std::printf("  wall %s %-10s: %7.0f MB/s (%6.0f ns/op)\n",
                  retain != 0 ? "retain  " : "metadata",
                  path == 0 ? "miss" : path == 1 ? "hit" : "pinned hit",
                  r.wall_mb_per_s(), r.wall_ns_per_op());
    }
  }
  std::printf(
      "\nExpectation: the miss rows charge the device's sequential read\n"
      "rate; hit and pinned-hit rows charge identically (the pin is\n"
      "bookkeeping, not a toll) at the pool's simulated copy bandwidth,\n"
      "in both data modes.\n");
  if (!ok) {
    std::fprintf(stderr, "cache path error or payload mismatch — see above\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  return lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
}
