// Figure 9 (extension) — service under partial media failure. The
// paper's fault-injection methodology (§3.1) extended from fail-stop
// power cuts to the partial failures real spindles develop: latent
// sector errors, silent at-rest corruption, and degraded (slow)
// regions. Rows sweep the fault mix and whether a background scrubber
// runs between cycles, for both back ends; columns report effective
// device throughput (degraded regions and repair I/O tax it), client-
// visible typed errors, detected vs undetected corruption, scrubber
// repairs, and the size of the quarantine the redirect repairs leave
// behind. Undetected corruption — an OK read returning wrong bytes —
// must be zero everywhere: that is the end-to-end checksum contract.
//
// With every fault rate at zero the media model never engages, so this
// bench leaves fig1–fig8 bit-identical: the fault plane costs nothing
// until armed.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/table_writer.h"
#include "workload/crash_torture.h"

namespace lor {
namespace bench {
namespace {

struct FaultMix {
  const char* name;
  double lse_rate;
  double corruption_rate;
  double degraded_rate;
};

void Run(const Options& options) {
  PrintBanner("Fig 9: degradation under latent sector errors and bit rot",
              "Section 3.1 (fault injection), extended to partial failures",
              options);

  const std::vector<FaultMix> mixes = {
      {"none", 0.0, 0.0, 0.0},
      {"low", 0.01, 0.01, 0.02},
      {"high", 0.05, 0.05, 0.10},
  };

  TableWriter table({"back end", "fault mix", "scrub", "cycles", "ops",
                     "eff MB/s", "read errors", "detected corruption",
                     "undetected corruption", "scrub repaired",
                     "unrecoverable", "quarantined units"});
  for (auto backend : {workload::CrashBackend::kFilesystem,
                       workload::CrashBackend::kDatabase}) {
    const bool fs = backend == workload::CrashBackend::kFilesystem;
    for (const FaultMix& mix : mixes) {
      for (bool scrub : {false, true}) {
        workload::CrashTortureOptions torture;
        torture.backend = backend;
        torture.volume_bytes = options.ScaleBytes(2 * kGiB);
        torture.object_bytes = 128 * kKiB;
        torture.objects = 32;
        torture.data_mode = sim::DataMode::kRetain;
        torture.seed = options.seed;
        torture.media_cycles = 10;
        torture.ops_per_media_cycle = 32;
        torture.scrub_between_cycles = scrub;
        torture.media.lse_rate = mix.lse_rate;
        torture.media.transient_fraction = 0.5;
        torture.media.corruption_rate = mix.corruption_rate;
        torture.media.degraded_rate = mix.degraded_rate;

        workload::CrashTortureRunner runner(torture);
        auto summary = runner.RunMedia();
        if (!summary.ok()) {
          std::fprintf(stderr, "fig9 cell (%s, %s, scrub=%d) failed: %s\n",
                       fs ? "filesystem" : "database", mix.name,
                       scrub ? 1 : 0, summary.status().ToString().c_str());
          std::exit(1);
        }
        if (summary->silent_corruptions != 0 ||
            summary->fsck_dirty_cycles != 0) {
          std::fprintf(
              stderr,
              "fig9 checksum contract violated: undetected=%llu dirty=%llu\n",
              static_cast<unsigned long long>(summary->silent_corruptions),
              static_cast<unsigned long long>(summary->fsck_dirty_cycles));
          std::exit(1);
        }
        const sim::IoStats io = runner.repository()->device_stats();
        const double elapsed = runner.repository()->now();
        const double mb_per_s =
            elapsed > 0.0
                ? static_cast<double>(io.bytes_read + io.bytes_written) /
                      (elapsed * static_cast<double>(kMiB))
                : 0.0;
        table.Row()
            .Cell(fs ? "filesystem" : "database")
            .Cell(mix.name)
            .Cell(scrub ? "on" : "off")
            .Cell(static_cast<double>(summary->cycles_executed), 0)
            .Cell(static_cast<double>(summary->ops), 0)
            .Cell(mb_per_s, 2)
            .Cell(static_cast<double>(summary->read_errors), 0)
            .Cell(static_cast<double>(summary->corruptions_detected), 0)
            .Cell(static_cast<double>(summary->silent_corruptions), 0)
            .Cell(static_cast<double>(summary->scrub_repaired), 0)
            .Cell(static_cast<double>(summary->scrub_unrecoverable), 0)
            .Cell(static_cast<double>(summary->quarantined_units), 0);
      }
    }
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: undetected corruption is zero in every cell — wrong\n"
      "bytes always surface as typed errors. Effective throughput falls\n"
      "as the fault mix grows (degraded regions, retries, repair I/O);\n"
      "scrubbing trades more background I/O for a growing quarantine and\n"
      "fewer client-visible errors on later reads.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
