// Figure 3 — long-term fragmentation with 256 KB objects.
//
// Paper's finding: for small objects the two systems behave similarly,
// converging to roughly four fragments per object — one fragment per
// 64 KB write request, implicating the write-request size in long-term
// layout (§5.4).

#include <cstdio>

#include "bench_common.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Figure 3: long-term fragmentation, 256 KB objects",
              "Figure 3", options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  const std::vector<double> ages = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  // Approximate series read off the paper's chart.
  const double paper_db[] = {1, 2.3, 3.0, 3.4, 3.7, 3.9, 4.0, 4.1, 4.2,
                             4.3, 4.3};
  const double paper_fs[] = {1, 1.8, 2.4, 2.8, 3.1, 3.4, 3.6, 3.8, 3.9,
                             4.0, 4.1};

  std::map<std::string, std::vector<double>> series;
  for (Backend backend : {Backend::kDatabase, Backend::kFilesystem}) {
    auto repo = MakeRepository(backend, volume);
    workload::WorkloadConfig config = options.MakeWorkloadConfig();
    config.sizes = workload::SizeDistribution::Constant(256 * kKiB);
    auto checkpoints = RunAging(repo.get(), config, ages,
                                /*probe_reads=*/false);
    if (!checkpoints.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", repo->name().c_str(),
                   checkpoints.status().ToString().c_str());
      continue;
    }
    for (const AgingCheckpoint& cp : *checkpoints) {
      series[repo->name()].push_back(cp.fragmentation.fragments_per_object);
    }
  }

  TableWriter table({"storage age", "database", "filesystem",
                     "paper db (approx)", "paper fs (approx)"});
  for (size_t i = 0; i <= ages.size(); ++i) {
    table.Row()
        .Cell(static_cast<uint64_t>(i))
        .Cell(i < series["database"].size() ? series["database"][i] : 0.0)
        .Cell(i < series["filesystem"].size() ? series["filesystem"][i]
                                              : 0.0)
        .Cell(paper_db[i])
        .Cell(paper_fs[i]);
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: both systems land in the same few-fragments band,\n"
      "approaching one fragment per 64 KB write request (4 for 256 KB).\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
