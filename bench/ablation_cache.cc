// Ablation (beyond the paper) — a DRAM buffer pool in front of each
// back end: read hit rate and throughput versus cache size and object
// size, cold probes versus a warmed cache.
//
// The paper's measurements are deliberately cold-cache (§4.1 flushes
// the OS cache between runs); every other figure here reproduces that
// regime, and the cache-size-0 rows of this table are bit-identical to
// it. A production store, though, fronts the spindle with host DRAM —
// this sweep measures what that tier buys on an aged volume, where the
// cold read path is seek-dominated: a warmed working-set-sized cache
// turns the probe into a host-bound copy (capped by the stream-window
// bandwidth, the server-side stack cost), while a cache smaller than
// the working set thrashes and buys almost nothing.
//
// The bench is also its own correctness oracle: a retain-mode pass
// reads every sampled object cold (the device is the oracle), then
// re-reads it from the warmed cache and compares FNV hashes. Any
// mismatch — a stale frame, a lost dirty byte, an invalidation hole —
// exits nonzero and fails the run.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/fnv.h"
#include "util/random.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

/// Objects sampled per probe; caps the working set at
/// kProbeSamples * object size regardless of --scale.
constexpr uint64_t kProbeSamples = 128;

std::unique_ptr<core::ObjectRepository> MakeCachedRepository(
    Backend backend, uint64_t volume, uint64_t cache_bytes,
    sim::DataMode mode) {
  if (backend == Backend::kFilesystem) {
    core::FsRepositoryConfig config;
    config.volume_bytes = volume;
    config.data_mode = mode;
    config.cache.capacity_bytes = cache_bytes;
    return std::make_unique<core::FsRepository>(std::move(config));
  }
  core::DbRepositoryConfig config;
  config.volume_bytes = volume;
  config.data_mode = mode;
  config.cache.capacity_bytes = cache_bytes;
  return std::make_unique<core::DbRepository>(std::move(config));
}

/// Ages a store, then probes one uniform victim sample twice — cold
/// (which also warms the pool) and again against the warmed pool.
struct ProbeResult {
  double cold_mb_s = 0.0;
  double warm_mb_s = 0.0;
  double warm_hit_rate = 0.0;
  bool ok = false;
};

ProbeResult RunCell(core::ObjectRepository* repo, const Options& options,
                    uint64_t object_bytes) {
  ProbeResult result;
  workload::WorkloadConfig config = options.MakeWorkloadConfig();
  config.sizes = workload::SizeDistribution::Constant(object_bytes);
  workload::GetPutRunner runner(repo, config);
  if (!runner.BulkLoad().ok() || !runner.AgeTo(2.0).ok()) return result;
  // Remount before probing: DRAM does not survive it, so the cold pass
  // is honestly cold — the paper's protocol flushes the OS cache
  // between the aging and measurement phases for the same reason.
  // (Write-back aging would otherwise leave the live set resident.)
  if (!repo->Mount().ok()) return result;

  const std::vector<std::string> keys = repo->ListKeys();
  if (keys.empty()) return result;
  Rng rng(options.seed ^ 0xcac8e);
  std::vector<const std::string*> victims;
  victims.reserve(kProbeSamples);
  for (uint64_t i = 0; i < std::min<uint64_t>(kProbeSamples, keys.size());
       ++i) {
    victims.push_back(&keys[rng.Uniform(keys.size())]);
  }
  const double bytes_mb = static_cast<double>(victims.size()) *
                          static_cast<double>(object_bytes) /
                          (1024.0 * 1024.0);

  // Cold pass: every victim comes off the platter (and, with a pool,
  // fills a frame on the way through).
  const double cold0 = repo->now();
  for (const std::string* key : victims) {
    if (!repo->Get(*key).ok()) return result;
  }
  result.cold_mb_s = bytes_mb / (repo->now() - cold0);

  // Quiesce (lazy write-back, queued completions), then re-read the
  // same victims against whatever the cold pass left cached.
  if (!repo->DrainIo().ok()) return result;
  const sim::BufferPoolStats before = repo->cache_stats();
  const double warm0 = repo->now();
  for (const std::string* key : victims) {
    if (!repo->Get(*key).ok()) return result;
  }
  result.warm_mb_s = bytes_mb / (repo->now() - warm0);
  const sim::BufferPoolStats after = repo->cache_stats();
  const uint64_t hits = after.hits - before.hits;
  const uint64_t misses = after.misses - before.misses;
  result.warm_hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  result.ok = true;
  return result;
}

/// Retain-mode integrity pass: cold reads are the oracle, warm re-reads
/// must produce bit-identical payloads. Runs on a fixed small volume so
/// the retained arena stays cheap at any --scale.
bool VerifyWarmPayloads(Backend backend, const Options& options) {
  constexpr uint64_t kVerifyVolume = 256 * kMiB;
  constexpr uint64_t kVerifyCache = 64 * kMiB;
  constexpr uint64_t kVerifyObject = 256 * kKiB;
  auto repo = MakeCachedRepository(backend, kVerifyVolume, kVerifyCache,
                                   sim::DataMode::kRetain);
  workload::WorkloadConfig config = options.MakeWorkloadConfig();
  config.sizes = workload::SizeDistribution::Constant(kVerifyObject);
  workload::GetPutRunner runner(repo.get(), config);
  if (!runner.BulkLoad().ok() || !runner.AgeTo(1.0).ok()) {
    std::fprintf(stderr, "%s: verification aging failed\n",
                 repo->name().c_str());
    return false;
  }
  const std::vector<std::string> keys = repo->ListKeys();
  Rng rng(options.seed ^ 0x0c1d);
  std::vector<const std::string*> victims;
  std::vector<uint64_t> oracle;
  for (uint64_t i = 0; i < std::min<uint64_t>(kProbeSamples, keys.size());
       ++i) {
    victims.push_back(&keys[rng.Uniform(keys.size())]);
  }
  std::vector<uint8_t> payload;
  for (const std::string* key : victims) {
    if (!repo->Get(*key, &payload).ok()) {
      std::fprintf(stderr, "%s: cold oracle read of %s failed\n",
                   repo->name().c_str(), key->c_str());
      return false;
    }
    oracle.push_back(Fnv(payload));
  }
  if (!repo->DrainIo().ok()) return false;
  const sim::BufferPoolStats before = repo->cache_stats();
  for (size_t i = 0; i < victims.size(); ++i) {
    if (!repo->Get(*victims[i], &payload).ok() ||
        Fnv(payload) != oracle[i]) {
      std::fprintf(stderr,
                   "%s: warm read of %s does not match its cold oracle\n",
                   repo->name().c_str(), victims[i]->c_str());
      return false;
    }
  }
  const sim::BufferPoolStats after = repo->cache_stats();
  if (after.hits <= before.hits) {
    std::fprintf(stderr,
                 "%s: warm verification pass never hit the cache\n",
                 repo->name().c_str());
    return false;
  }
  return true;
}

int Run(const Options& options) {
  PrintBanner("Ablation: buffer-pool size (hit rate, warm read throughput)",
              "cache extension of Figure 1", options);

  const uint64_t volume =
      std::max<uint64_t>(options.ScaleBytes(4 * kGiB), 64 * kMiB);
  const std::vector<uint64_t> object_sizes = {256 * kKiB, 1 * kMiB};
  // 0 = the paper's regime; 8 MiB thrashes under the 32–128 MiB
  // working set; 192 MiB holds it whole.
  const std::vector<uint64_t> cache_sizes = {0, 8 * kMiB, 192 * kMiB};

  TableWriter table({"backend", "object kb", "cache mb", "cold read mb/s",
                     "warm read mb/s", "hit rate %", "warm speedup"});
  bool ok = true;
  for (Backend backend : {Backend::kDatabase, Backend::kFilesystem}) {
    for (uint64_t object_bytes : object_sizes) {
      double baseline_mb_s = 0.0;  ///< Cache-0 cold rate of this row group.
      for (uint64_t cache_bytes : cache_sizes) {
        // Fresh repository per cell: every cache size ages the same
        // seed's store identically — the pool never changes layouts,
        // only charges — so rows differ purely in cache behavior.
        auto repo = MakeCachedRepository(backend, volume, cache_bytes,
                                         sim::DataMode::kMetadataOnly);
        const ProbeResult r = RunCell(repo.get(), options, object_bytes);
        if (!r.ok) {
          std::fprintf(stderr, "%s cell failed (object %llu, cache %llu)\n",
                       repo->name().c_str(),
                       static_cast<unsigned long long>(object_bytes),
                       static_cast<unsigned long long>(cache_bytes));
          ok = false;
          continue;
        }
        if (cache_bytes == 0) baseline_mb_s = r.cold_mb_s;
        // The acceptance gate: a working-set-sized warmed cache must
        // hit >= 90% and beat the paper's cold-cache read rate.
        if (cache_bytes == cache_sizes.back() &&
            (r.warm_hit_rate < 0.9 || r.warm_mb_s <= baseline_mb_s)) {
          std::fprintf(stderr,
                       "%s object %llu KiB: warm cache under-delivers "
                       "(hit %.1f%%, %.2f vs %.2f MB/s cold baseline)\n",
                       repo->name().c_str(),
                       static_cast<unsigned long long>(object_bytes / kKiB),
                       r.warm_hit_rate * 100.0, r.warm_mb_s, baseline_mb_s);
          ok = false;
        }
        table.Row()
            .Cell(repo->name())
            .Cell(object_bytes / kKiB)
            .Cell(cache_bytes / kMiB)
            .Cell(r.cold_mb_s)
            .Cell(r.warm_mb_s)
            .Cell(r.warm_hit_rate * 100.0, 1)
            .Cell(r.cold_mb_s > 0.0 ? r.warm_mb_s / r.cold_mb_s : 0.0);
      }
    }
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }

  std::printf(
      "\nShape check: cache 0 re-reads at cold speed (the paper's\n"
      "regime); a cache smaller than the working set thrashes; at\n"
      "cache >= working set the warm pass hits nearly 100%% and runs at\n"
      "the host-side stream bound instead of the spindle's aged seek\n"
      "rate.\n");

  std::printf("\nWarm-payload verification (retain mode, both back ends):\n");
  for (Backend backend : {Backend::kDatabase, Backend::kFilesystem}) {
    if (VerifyWarmPayloads(backend, options)) {
      std::printf("  %s: %llu warm reads match their cold oracles\n",
                  backend == Backend::kDatabase ? "db" : "fs",
                  static_cast<unsigned long long>(kProbeSamples));
    } else {
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "\ncache ablation FAILED — see above\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  return lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
}
