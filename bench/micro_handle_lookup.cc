// Micro-benchmark: per-operation name resolution vs handle-based
// access on both back ends. The name path re-resolves key → metadata on
// every get/put (NTFS open-by-name / database row lookup); the handle
// path opens each object once and operates through the pinned state.
// Reported simulated throughput isolates the charged open/lookup costs
// (deterministic — gated by compare_bench); wall-clock per-op times are
// printed as prose for the host-CPU view.
//
// The bench also cross-checks the tentpole invariant: after identical
// operation streams, the name-path and handle-path repositories must
// hold bit-identical object layouts.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/object_handle.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

constexpr uint64_t kObjectBytes = 256 * kKiB;

struct PhaseResult {
  uint64_t operations = 0;
  uint64_t bytes = 0;
  double sim_seconds = 0.0;
  double wall_ns_per_op = 0.0;

  double sim_mb_per_s() const {
    return sim_seconds > 0.0
               ? static_cast<double>(bytes) / (1024.0 * 1024.0) / sim_seconds
               : 0.0;
  }
};

/// Order-independent layout signature over every live object.
uint64_t LayoutSignature(const core::ObjectRepository& repo) {
  uint64_t signature = 0;
  repo.VisitObjects([&](const std::string& key,
                        const alloc::ExtentList& layout, uint64_t size) {
    uint64_t h = 1469598103934665603ull;  // FNV-1a.
    auto mix = [&h](uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
      }
    };
    for (char c : key) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    mix(size);
    for (const alloc::Extent& e : layout) {
      mix(e.start);
      mix(e.length);
    }
    signature ^= h;  // XOR-fold: visit order does not matter.
  });
  return signature;
}

/// Bulk-loads `repo` with round-numbered 256 KB objects to half the
/// volume; returns the keys in load order.
std::vector<std::string> Load(core::ObjectRepository* repo) {
  std::vector<std::string> keys;
  const uint64_t target = repo->volume_bytes() / 2;
  for (uint64_t live = 0; live + kObjectBytes <= target;
       live += kObjectBytes) {
    std::string key = "obj" + std::to_string(keys.size());
    if (!repo->Put(key, kObjectBytes).ok()) break;
    keys.push_back(std::move(key));
  }
  return keys;
}

/// Runs `ops` round-robin operations (get or safe-write) over `keys`,
/// resolving by name per operation or through handles opened once.
PhaseResult RunPhase(core::ObjectRepository* repo,
                     const std::vector<std::string>& keys, bool handles,
                     bool writes, uint64_t ops) {
  PhaseResult result;
  const double sim0 = repo->now();
  const auto wall0 = std::chrono::steady_clock::now();
  if (handles) {
    // Reads pin read handles (each pays its one open + close charge —
    // the amortized cost); writes pin write handles, whose resolution
    // is what the write cycle always paid.
    std::vector<core::ObjectHandle> open;
    open.reserve(keys.size());
    for (const std::string& key : keys) {
      auto h = writes ? repo->OpenForWrite(key) : repo->Open(key);
      if (!h.ok()) return result;
      open.push_back(std::move(*h));
    }
    for (uint64_t i = 0; i < ops; ++i) {
      core::ObjectHandle& h = open[i % open.size()];
      Status s = writes ? repo->SafeWrite(h, kObjectBytes) : repo->Get(h);
      if (!s.ok()) return result;
    }
    for (core::ObjectHandle& h : open) {
      Status s = repo->Release(&h);
      (void)s;
    }
  } else {
    for (uint64_t i = 0; i < ops; ++i) {
      const std::string& key = keys[i % keys.size()];
      Status s = writes ? repo->SafeWrite(key, kObjectBytes)
                        : repo->Get(key);
      if (!s.ok()) return result;
    }
  }
  const auto wall1 = std::chrono::steady_clock::now();
  result.operations = ops;
  result.bytes = ops * kObjectBytes;
  result.sim_seconds = repo->now() - sim0;
  result.wall_ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0)
              .count()) /
      static_cast<double>(ops);
  return result;
}

void Run(const Options& options) {
  PrintBanner("Micro: name-path vs handle-path object access",
              "§5.4 interface discussion (open-once amortization)", options);

  TableWriter table({"backend", "path", "op", "operations", "sim MB/s"});
  std::vector<std::string> wall_notes;

  for (Backend backend : {Backend::kDatabase, Backend::kFilesystem}) {
    for (bool writes : {false, true}) {
      PhaseResult results[2];
      uint64_t signatures[2] = {0, 0};
      bool ran = false;
      for (int handles = 0; handles < 2; ++handles) {
        // A fresh, identically loaded repository per combination keeps
        // the two paths byte-comparable.
        auto repo = MakeRepository(backend, options.ScaleBytes(4 * kGiB));
        const std::vector<std::string> keys = Load(repo.get());
        if (keys.empty()) continue;
        // Reads reuse each object's handle 8x, writes 2x — still far
        // below the hundreds of operations an engine-held handle spans
        // over a full aging run, so the amortization shown is
        // conservative.
        const uint64_t ops = keys.size() * (writes ? 2 : 8);
        results[handles] =
            RunPhase(repo.get(), keys, handles != 0, writes, ops);
        signatures[handles] = LayoutSignature(*repo);
        ran = true;
        table.Row()
            .Cell(backend == Backend::kDatabase ? "database" : "filesystem")
            .Cell(handles != 0 ? "handle" : "name")
            .Cell(writes ? "safe-write" : "get")
            .Cell(results[handles].operations)
            .Cell(results[handles].sim_mb_per_s());
      }
      char note[256];
      if (!ran) {
        std::snprintf(note, sizeof(note),
                      "  %s %s: skipped (volume too small at this scale)",
                      backend == Backend::kDatabase ? "database"
                                                    : "filesystem",
                      writes ? "safe-write" : "get");
        wall_notes.push_back(note);
        continue;
      }
      std::snprintf(note, sizeof(note),
                    "  wall %s %s: name %.0f ns/op, handle %.0f ns/op | "
                    "layouts %s",
                    backend == Backend::kDatabase ? "database" : "filesystem",
                    writes ? "safe-write" : "get",
                    results[0].wall_ns_per_op, results[1].wall_ns_per_op,
                    signatures[0] == signatures[1] ? "bit-identical"
                                                   : "DIVERGED");
      wall_notes.push_back(note);
    }
  }

  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf("\n");
  // Indented prose (never parsed as CSV): host-dependent wall clocks
  // plus the layout parity cross-check.
  for (const std::string& note : wall_notes) {
    std::printf("%s\n", note.c_str());
  }
  std::printf(
      "\nExpectation: handle-path simulated throughput is at or above the\n"
      "name path (open/lookup charges amortized to one per object), and\n"
      "layouts are bit-identical between the paths on both back ends.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
