// Ablation — the paper's proposed interface extension (§6): "The ability
// to specify the size of the object before initial space allocation
// could reduce fragmentation." Our FileStore implements it as
// Preallocate(); this bench measures how much it buys under the
// standard safe-write churn.

#include <cstdio>

#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "bench_common.h"
#include "util/table_writer.h"
#include "workload/getput_runner.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Ablation: preallocation (size hint at create time)",
              "Section 6 (proposed interface change)", options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  const std::vector<double> ages = {2.0, 4.0, 8.0};

  TableWriter table({"variant", "frag @2", "frag @4", "frag @8",
                     "read MB/s @8", "write MB/s (0->8)"});
  for (bool preallocate : {false, true}) {
    core::FsRepositoryConfig config;
    config.volume_bytes = volume;
    config.preallocate_on_safe_write = preallocate;
    core::FsRepository repo(config);
    workload::WorkloadConfig wc = options.MakeWorkloadConfig();
    wc.sizes = workload::SizeDistribution::Constant(2 * kMiB);
    auto checkpoints = RunAging(&repo, wc, ages);
    table.Row().Cell(preallocate ? "with preallocation"
                                 : "stock NTFS behaviour");
    if (!checkpoints.ok()) {
      for (int i = 0; i < 5; ++i) table.Cell("-");
      continue;
    }
    double write_bytes = 0, write_seconds = 0;
    for (size_t i = 1; i < checkpoints->size(); ++i) {
      table.Cell((*checkpoints)[i].fragmentation.fragments_per_object);
      write_bytes += static_cast<double>((*checkpoints)[i].write.bytes);
      write_seconds += (*checkpoints)[i].write.seconds;
    }
    table.Cell(checkpoints->back().read.mb_per_s());
    table.Cell(write_seconds > 0
                   ? write_bytes / (1024.0 * 1024.0) / write_seconds
                   : 0.0);
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: the size hint lets the allocator place whole objects\n"
      "instead of 64 KB pieces, cutting fragments/object and lifting\n"
      "aged read throughput — the paper's prediction.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
