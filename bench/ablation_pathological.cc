// Ablation — aging an artificially, pathologically fragmented volume
// (paper §5.3: "When we ran on an artificially and pathologically
// fragmented NTFS volume, we found that fragmentation slowly decreases
// over time. This suggests that NTFS is indeed approaching an
// asymptote.")
//
// We pre-shatter the free space by pinning every other small run before
// the bulk load, release the pins, then churn and watch fragments per
// object drift back down toward the normal steady state.

#include <cstdio>

#include "alloc/run_cache_allocator.h"
#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "bench_common.h"
#include "util/table_writer.h"
#include "workload/getput_runner.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Ablation: pathologically pre-fragmented volume",
              "Section 5.3 (asymptote check)", options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);

  core::FsRepositoryConfig config;
  config.volume_bytes = volume;
  core::FsRepository repo(config);

  // Shatter free space: claim alternating 64 KB stripes across the
  // whole data zone, bulk load into the gaps, then free the stripes.
  auto* allocator =
      static_cast<alloc::RunCacheAllocator*>(repo.store()->allocator());
  alloc::FreeSpaceMap* map = allocator->mutable_map();
  const uint64_t stripe_clusters = 64 * kKiB / config.store.cluster_bytes;
  std::vector<alloc::Extent> pins;
  for (const alloc::Extent& run : map->Snapshot()) {
    for (uint64_t at = run.start; at + 2 * stripe_clusters <= run.end();
         at += 2 * stripe_clusters) {
      alloc::Extent pin{at, stripe_clusters};
      if (map->AllocateAt(pin).ok()) pins.push_back(pin);
    }
  }

  workload::WorkloadConfig wc = options.MakeWorkloadConfig();
  wc.sizes = workload::SizeDistribution::Constant(2 * kMiB);
  // The pins hold ~half the data zone, so load to 35% of the volume.
  wc.target_occupancy = 0.35;
  workload::GetPutRunner runner(&repo, wc);
  auto load = runner.BulkLoad();
  if (!load.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n",
                 load.status().ToString().c_str());
    return;
  }
  // Release the pins: the volume now holds heavily fragmented files
  // over shattered free space.
  for (const alloc::Extent& pin : pins) {
    Status s = map->Free(pin);
    (void)s;
  }

  TableWriter table({"storage age", "fragments/object", "free runs"});
  table.Row()
      .Cell(uint64_t{0})
      .Cell(runner.Fragmentation().fragments_per_object)
      .Cell(repo.store()->allocator()->FreeStats().run_count);
  for (double age = 2.0; age <= 12.0; age += 2.0) {
    auto aged = runner.AgeTo(age);
    if (!aged.ok()) {
      std::fprintf(stderr, "aging failed: %s\n",
                   aged.status().ToString().c_str());
      break;
    }
    table.Row()
        .Cell(static_cast<uint64_t>(age))
        .Cell(runner.Fragmentation().fragments_per_object)
        .Cell(repo.store()->allocator()->FreeStats().run_count);
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: fragments/object starts far above the normal steady\n"
      "state and *decreases* with churn — the filesystem heals toward its\n"
      "asymptote rather than degrading without bound.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
