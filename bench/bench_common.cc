#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lor {
namespace bench {

Options Options::FromArgs(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      const char* value = arg + 8;
      if (std::strcmp(value, "small") == 0) {
        opts.scale = 0.1;
      } else if (std::strcmp(value, "paper") == 0) {
        opts.scale = 1.0;
      } else {
        opts.scale = std::atof(value);
        if (opts.scale <= 0.0) opts.scale = 0.1;
      }
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--csv") == 0) {
      opts.csv = true;
    } else if (std::strcmp(arg, "--name-path") == 0) {
      opts.name_path = true;
    } else if (std::strncmp(arg, "--qd=", 5) == 0) {
      const uint64_t n = std::strtoull(arg + 5, nullptr, 10);
      if (n > 0 && n <= UINT32_MAX) {
        opts.queue_depth = static_cast<uint32_t>(n);
      }
    } else if (std::strcmp(arg, "--sync") == 0) {
      opts.queue_depth = 1;
    } else if (std::strncmp(arg, "--cache-mb=", 11) == 0) {
      opts.cache_mb = std::strtoull(arg + 11, nullptr, 10);
    } else if (std::strcmp(arg, "--no-overlap") == 0) {
      opts.no_overlap = true;
    } else if (std::strncmp(arg, "--wall-repeats=", 15) == 0) {
      const uint64_t n = std::strtoull(arg + 15, nullptr, 10);
      if (n > 0 && n <= UINT32_MAX) {
        opts.wall_repeats = static_cast<uint32_t>(n);
      }
    } else if (std::strncmp(arg, "--owners=", 9) == 0) {
      const uint64_t n = std::strtoull(arg + 9, nullptr, 10);
      if (n > 0 && n <= UINT32_MAX) {
        opts.owners_per_spindle = static_cast<uint32_t>(n);
      }
    } else if (std::strcmp(arg, "--fifo") == 0) {
      opts.fifo = true;
    } else if (std::strncmp(arg, "--shards=", 9) == 0 ||
               std::strncmp(arg, "--threads=", 10) == 0) {
      const char* value = arg + (arg[2] == 's' ? 9 : 10);
      const uint64_t n = std::strtoull(value, nullptr, 10);
      if (n > 0 && n <= UINT32_MAX) {
        opts.shards = static_cast<uint32_t>(n);
        opts.shards_set = true;
      }
    }
  }
  // Environment overrides used by CI sweeps.
  if (const char* env = std::getenv("LOR_BENCH_SCALE")) {
    opts.scale = std::atof(env) > 0.0 ? std::atof(env) : opts.scale;
  }
  if (const char* env = std::getenv("LOR_BENCH_SHARDS")) {
    const uint64_t n = std::strtoull(env, nullptr, 10);
    if (n > 0 && n <= UINT32_MAX) {
      opts.shards = static_cast<uint32_t>(n);
      opts.shards_set = true;
    }
  }
  return opts;
}

uint64_t Options::ScaleBytes(uint64_t paper_bytes) const {
  return static_cast<uint64_t>(static_cast<double>(paper_bytes) * scale);
}

std::unique_ptr<core::RepositoryFactory> MakeRepositoryFactory(
    Backend backend, uint64_t volume_bytes, uint64_t write_request_bytes,
    uint64_t cache_bytes) {
  if (backend == Backend::kFilesystem) {
    core::FsRepositoryConfig config;
    config.volume_bytes = volume_bytes;
    config.write_request_bytes = write_request_bytes;
    config.cache.capacity_bytes = cache_bytes;
    return std::make_unique<core::FsRepositoryFactory>(config);
  }
  core::DbRepositoryConfig config;
  config.volume_bytes = volume_bytes;
  config.store.write_request_bytes = write_request_bytes;
  config.cache.capacity_bytes = cache_bytes;
  return std::make_unique<core::DbRepositoryFactory>(config);
}

std::unique_ptr<core::ObjectRepository> MakeRepository(
    Backend backend, uint64_t volume_bytes, uint64_t write_request_bytes,
    uint64_t cache_bytes) {
  return MakeRepositoryFactory(backend, volume_bytes, write_request_bytes,
                               cache_bytes)
      ->Create(0, 1);
}

namespace {

/// The checkpoint protocol shared by the single-shard and sharded
/// aging drivers: bulk load is the age-0 checkpoint, then every target
/// age records the interval's write sample, an optional read probe,
/// the measured age, and a fragmentation report. `Runner` is
/// GetPutRunner or ShardedRunner (identical phase interface).
template <typename Runner>
Result<std::vector<AgingCheckpoint>> CollectCheckpoints(
    Runner* runner, const std::vector<double>& ages, bool probe_reads,
    uint32_t wall_repeats) {
  std::vector<AgingCheckpoint> checkpoints;

  // Extra timed probe passes purely to steady the host wall clock: keep
  // the min wall, discard the simulated samples (the first pass's stay
  // authoritative). Opt-in because the extra passes draw extra victims
  // from the workload stream.
  auto repeat_probe = [&](AgingCheckpoint* cp) -> Status {
    for (uint32_t r = 1; r < wall_repeats; ++r) {
      LOR_ASSIGN_OR_RETURN(workload::ThroughputSample again,
                           runner->MeasureReadThroughput());
      cp->read.host_seconds = std::min(cp->read.host_seconds,
                                       again.host_seconds);
    }
    return Status::OK();
  };

  auto snapshot = [&](AgingCheckpoint* cp) {
    cp->measured_age = runner->storage_age();
    cp->fragmentation = runner->Fragmentation();
    cp->device = runner->device_stats();
    cp->latency = runner->latency();
    uint64_t hits = 0;
    uint64_t misses = 0;
    bool first = true;
    for (const sim::BufferPoolStats& pool : runner->shard_cache_stats()) {
      hits += pool.hits;
      misses += pool.misses;
      const double rate = pool.hit_rate();
      cp->cache_hit_min = first ? rate : std::min(cp->cache_hit_min, rate);
      cp->cache_hit_max = first ? rate : std::max(cp->cache_hit_max, rate);
      first = false;
    }
    cp->cache_hit = hits + misses == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(hits + misses);
  };

  AgingCheckpoint zero;
  zero.target_age = 0.0;
  LOR_ASSIGN_OR_RETURN(zero.write, runner->BulkLoad());
  if (probe_reads) {
    LOR_ASSIGN_OR_RETURN(zero.read, runner->MeasureReadThroughput());
    LOR_RETURN_IF_ERROR(repeat_probe(&zero));
  }
  snapshot(&zero);
  checkpoints.push_back(std::move(zero));

  for (double age : ages) {
    AgingCheckpoint cp;
    cp.target_age = age;
    if (probe_reads) {
      // One dispatch for age + probe: a shard done aging moves straight
      // into its probe instead of idling at a host barrier. Simulated
      // results are identical to the separate calls.
      LOR_ASSIGN_OR_RETURN(workload::AgeMeasureSample fused,
                           runner->AgeAndMeasure(age));
      cp.write = fused.aged;
      cp.read = fused.read;
      LOR_RETURN_IF_ERROR(repeat_probe(&cp));
    } else {
      LOR_ASSIGN_OR_RETURN(cp.write, runner->AgeTo(age));
    }
    snapshot(&cp);
    checkpoints.push_back(std::move(cp));
  }
  return checkpoints;
}

}  // namespace

Result<std::vector<AgingCheckpoint>> RunAging(
    core::ObjectRepository* repo, const workload::WorkloadConfig& config,
    const std::vector<double>& ages, bool probe_reads,
    uint32_t wall_repeats) {
  workload::GetPutRunner runner(repo, config);
  return CollectCheckpoints(&runner, ages, probe_reads, wall_repeats);
}

Result<std::vector<AgingCheckpoint>> RunShardedAging(
    const core::RepositoryFactory& factory, uint32_t shards,
    const workload::WorkloadConfig& config, const std::vector<double>& ages,
    bool probe_reads, uint32_t wall_repeats) {
  workload::ShardedRunner runner(factory, config, shards);
  return CollectCheckpoints(&runner, ages, probe_reads, wall_repeats);
}

void PrintBanner(const std::string& title, const std::string& paper_ref,
                 const Options& options) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s (Sears & van Ingen, CIDR 2007)\n",
              paper_ref.c_str());
  std::printf("Scale: %.2fx of the paper's volumes (seed %llu)\n\n",
              options.scale, static_cast<unsigned long long>(options.seed));
}

}  // namespace bench
}  // namespace lor
