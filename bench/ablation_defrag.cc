// Ablation — online defragmentation cost/benefit (paper §3.4 and §6:
// "defragmentation may require additional application logic and imposes
// read/write performance impacts that can outweigh its benefits").
//
// Two identical filesystem repositories age side by side; one runs a
// budgeted defragmentation pass between aging intervals. We report the
// fragmentation and read throughput each achieves, and how much
// simulated time the maintenance itself consumed.

#include <cstdio>

#include "core/db_repository.h"
#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "fs/defragmenter.h"
#include "bench_common.h"
#include "util/table_writer.h"
#include "workload/getput_runner.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Ablation: online defragmentation cost/benefit",
              "Sections 3.4 and 6 (maintenance trade-off)", options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  TableWriter table({"variant", "age", "frag", "read MB/s",
                     "defrag time share"});

  for (bool with_defrag : {false, true}) {
    core::FsRepositoryConfig config;
    config.volume_bytes = volume;
    core::FsRepository repo(config);
    fs::Defragmenter defrag(repo.store());
    workload::WorkloadConfig wc = options.MakeWorkloadConfig();
    wc.sizes = workload::SizeDistribution::Constant(2 * kMiB);
    workload::GetPutRunner runner(&repo, wc);
    if (!runner.BulkLoad().ok()) return;

    double defrag_seconds = 0.0;
    for (double age = 2.0; age <= 8.0; age += 2.0) {
      if (!runner.AgeTo(age).ok()) break;
      if (with_defrag) {
        auto report = defrag.Run(/*byte_budget=*/volume / 20);
        if (report.ok()) defrag_seconds += report->elapsed_seconds;
      }
      auto read = runner.MeasureReadThroughput();
      table.Row()
          .Cell(with_defrag ? "churn + defrag" : "churn only")
          .Cell(age, 0)
          .Cell(runner.Fragmentation().fragments_per_object)
          .Cell(read.ok() ? read->mb_per_s() : 0.0)
          .Cell(defrag_seconds / repo.now(), 3);
    }
  }
  // The database side: the paper's recommended procedure is a table
  // rebuild into a new filegroup (§5.3), since SQL Server's defrag
  // tools skip large-object data.
  {
    core::DbRepositoryConfig config;
    config.volume_bytes = volume;
    core::DbRepository repo(config);
    workload::WorkloadConfig wc = options.MakeWorkloadConfig();
    wc.sizes = workload::SizeDistribution::Constant(2 * kMiB);
    // Leave headroom for the rebuild's second copy.
    wc.target_occupancy = 0.4;
    workload::GetPutRunner runner(&repo, wc);
    if (runner.BulkLoad().ok()) {
      for (double age = 2.0; age <= 8.0; age += 2.0) {
        if (!runner.AgeTo(age).ok()) break;
        auto read = runner.MeasureReadThroughput();
        table.Row()
            .Cell("db churn only")
            .Cell(age, 0)
            .Cell(runner.Fragmentation().fragments_per_object)
            .Cell(read.ok() ? read->mb_per_s() : 0.0)
            .Cell("0.000");
      }
      auto rebuild = repo.blob_store()->RebuildTable();
      auto read = runner.MeasureReadThroughput();
      if (rebuild.ok()) {
        table.Row()
            .Cell("db after table rebuild")
            .Cell(uint64_t{8})
            .Cell(rebuild->fragments_after)
            .Cell(read.ok() ? read->mb_per_s() : 0.0)
            .Cell(rebuild->elapsed_seconds / repo.now(), 3);
      }
    }
  }

  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: defragmentation buys back read throughput but the\n"
      "maintenance consumes a visible share of device time — the paper's\n"
      "warning that the cost can outweigh the benefit. The database row\n"
      "shows §5.3's recommended remedy (rebuild the table) resetting the\n"
      "fragmentation clock at the cost of copying every live byte.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
