// Shared harness for the figure/table reproduction benches: scale
// handling, repository construction, and the bulk-load → age → probe
// experiment loop used by every figure.

#ifndef LOREPO_BENCH_BENCH_COMMON_H_
#define LOREPO_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/db_repository.h"
#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "core/object_repository.h"
#include "core/repository_factory.h"
#include "util/result.h"
#include "workload/getput_runner.h"
#include "workload/sharded_runner.h"

namespace lor {
namespace bench {

/// Command-line options common to all benches.
struct Options {
  /// Linear scale relative to the paper's volumes. The default 0.1 runs
  /// 4/40 GB volumes instead of 40/400 GB so the whole suite finishes
  /// in minutes; --scale=paper (1.0) reproduces the original sizes.
  double scale = 0.1;
  uint64_t seed = 42;
  bool csv = false;
  /// Shard / client-thread count for benches that support sharded runs
  /// (`--threads` is an alias: the runner drives one OS thread per
  /// shard). The default 1 keeps every bench single-client; fig7 treats
  /// an explicitly set value as the top of its scaling sweep.
  uint32_t shards = 1;
  /// True when --shards/--threads (or LOR_BENCH_SHARDS) was given.
  bool shards_set = false;
  /// Drive the workload through per-operation name lookups instead of
  /// per-object handles (the historical path, kept for A/B runs; the
  /// two produce bit-identical layouts).
  bool name_path = false;
  /// Operations kept in flight per shard during the aging and read
  /// phases (`--qd=N`). 1 — also spelled `--sync` — is the synchronous
  /// submission path and reproduces every historical figure exactly;
  /// N > 1 engages the back ends' submission queues, so latency
  /// percentiles include queueing delay.
  uint32_t queue_depth = 1;
  /// Buffer-pool capacity per back end in MiB (`--cache-mb=N`), split
  /// across shards by the factories. 0 (the default) disables the pool
  /// entirely — the paper's cold-cache regime, bit-identical to the
  /// pre-cache figures.
  uint64_t cache_mb = 0;
  /// Disables cross-shard overlap (`--no-overlap`): checkpoints age
  /// and measure as separate barrier-synchronized dispatches, and
  /// shared-spindle shards drain after every operation. The A/B
  /// baseline for the host-wall overlap win; simulated results are
  /// unchanged either way.
  bool no_overlap = false;
  /// Extra timed read passes per checkpoint (`--wall-repeats=N`): the
  /// reported read wall seconds is the min over the N passes (the
  /// noise-robust estimator), the simulated sample comes from the
  /// first. N > 1 draws extra probe victims from the workload stream,
  /// so it is opt-in — the default 1 reproduces historical streams
  /// exactly.
  uint32_t wall_repeats = 1;
  /// Shards per shared spindle for contention benches (`--owners=N`);
  /// 0 (default) lets the bench run its own 1/2/4 sweep.
  uint32_t owners_per_spindle = 0;
  /// Service the shared head FIFO instead of SPTF (`--fifo`).
  bool fifo = false;

  /// Parses --scale=small|paper|<float>, --seed=N, --csv,
  /// --shards=N/--threads=N, --name-path, --qd=N, --sync, --cache-mb=N,
  /// --no-overlap, --wall-repeats=N, --owners=N, --fifo.
  static Options FromArgs(int argc, char** argv);

  uint64_t ScaleBytes(uint64_t paper_bytes) const;

  /// Workload config seeded from these options (seed + access path +
  /// queue depth + overlap).
  workload::WorkloadConfig MakeWorkloadConfig() const {
    workload::WorkloadConfig config;
    config.seed = seed;
    config.use_handles = !name_path;
    config.queue_depth = queue_depth;
    config.overlap = !no_overlap;
    return config;
  }
};

/// Which back end to build.
enum class Backend { kFilesystem, kDatabase };

/// Repository factory with the paper's defaults (out-of-the-box
/// configuration, 64 KB write requests unless overridden). A nonzero
/// `cache_bytes` sizes a buffer pool in front of the data volume; 0
/// keeps the pool disabled (the paper's configuration).
std::unique_ptr<core::ObjectRepository> MakeRepository(
    Backend backend, uint64_t volume_bytes,
    uint64_t write_request_bytes = 64 * kKiB, uint64_t cache_bytes = 0);

/// Per-shard repository factory with the same defaults: `volume_bytes`
/// is the whole deployment's capacity, split evenly across shards by
/// the factory (Create(0, 1) is exactly MakeRepository's result).
/// `cache_bytes` is likewise the whole deployment's cache budget.
std::unique_ptr<core::RepositoryFactory> MakeRepositoryFactory(
    Backend backend, uint64_t volume_bytes,
    uint64_t write_request_bytes = 64 * kKiB, uint64_t cache_bytes = 0);

/// One measurement row of an aging experiment.
struct AgingCheckpoint {
  double target_age = 0.0;
  double measured_age = 0.0;
  /// Write throughput during the interval that *ends* at this age (for
  /// age 0 this is the bulk load itself), per the paper's Fig. 4 note.
  workload::ThroughputSample write;
  /// Read probe taken at this age.
  workload::ThroughputSample read;
  core::FragmentationReport fragmentation;
  /// Cumulative device counters at this checkpoint (summed across
  /// shards for sharded runs).
  sim::IoStats device;
  /// Cumulative per-op-class latency histograms at this checkpoint
  /// (merged across shards). Subtract the previous checkpoint's to
  /// isolate one interval (sim::LatencyRecorder::operator-).
  sim::LatencyRecorder latency;
  /// Aggregate buffer-pool hit rate at this checkpoint and its spread
  /// across shards (per-client fairness of a global cache budget). All
  /// zero with pools disabled. Host wall seconds per phase live in the
  /// samples themselves (ThroughputSample::host_seconds).
  double cache_hit = 0.0;
  double cache_hit_min = 0.0;
  double cache_hit_max = 0.0;
};

/// Bulk loads, then visits each storage age in order, measuring write
/// throughput per interval and probing reads + fragmentation at each
/// checkpoint. `ages` must be increasing and start implicitly at 0.
/// Each aged checkpoint runs age-then-probe as one fused dispatch
/// (identical simulated results, overlapped host work); `wall_repeats`
/// > 1 re-runs the timed probe and keeps the min host wall.
Result<std::vector<AgingCheckpoint>> RunAging(
    core::ObjectRepository* repo, const workload::WorkloadConfig& config,
    const std::vector<double>& ages, bool probe_reads = true,
    uint32_t wall_repeats = 1);

/// Sharded variant of RunAging: drives `shards` per-shard repositories
/// concurrently (workload::ShardedRunner) and records merged samples
/// per checkpoint — bytes/ops summed, elapsed = max over shards, one
/// exact merged fragmentation report.
Result<std::vector<AgingCheckpoint>> RunShardedAging(
    const core::RepositoryFactory& factory, uint32_t shards,
    const workload::WorkloadConfig& config, const std::vector<double>& ages,
    bool probe_reads = true, uint32_t wall_repeats = 1);

/// Prints the standard bench banner with the paper reference.
void PrintBanner(const std::string& title, const std::string& paper_ref,
                 const Options& options);

}  // namespace bench
}  // namespace lor

#endif  // LOREPO_BENCH_BENCH_COMMON_H_
