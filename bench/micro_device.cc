// Micro-benchmark: the device data plane itself — hash-map reference
// vs slab arena, scalar request loops vs vectored submission, both
// data modes. Every figure pushes its gigabytes through this layer, so
// its host cost bounds the affordable --scale.
//
// The write phase stores a deliberately fragmented object set: each
// "object" is 16 x 4 KiB runs interleaved across the region so every
// run needs positioning (the aged-store shape). The read phase sweeps
// the region in the 512 KiB read-ahead requests the storage layers
// issue, assembling 1 MiB objects — the figures' measured phase, and
// where the historical plane paid an assign() zero-fill plus a staging
// copy per request on top of its per-page hash probes. Scalar mode
// issues one device call per run and stages through a chunk buffer
// (the historical caller pattern); vectored mode submits each object's
// run list as one ReadV/WriteV batch moving payload directly between
// the object buffer and the data plane.
//
// Simulated MB/s is deterministic and must be IDENTICAL across plane
// and API within a mode — vectored submission and the arena rewrite
// are charge-neutral by construction — so the gated table doubles as a
// charge-parity cross-check (compare_bench fails on any drift). Wall
// ns/op and wall MB/s are host-dependent and printed as indented
// prose; the arena target is >= 2x the reference plane's retain-mode
// throughput.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/block_device.h"
#include "sim/reference_data_plane.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

// A badly aged store maps objects to cluster-sized runs; 4 KiB runs
// are the pathological shape the paper's fragmentation curves end at,
// and the one that maximizes per-run data-plane overhead (one hash
// probe per page vs two shifts into the arena).
constexpr uint64_t kRunBytes = 4 * kKiB;
constexpr uint64_t kRunsPerObject = 16;
constexpr uint64_t kObjectBytes = kRunsPerObject * kRunBytes;  // 64 KiB.
/// Read phase: 1 MiB objects fetched in 512 KiB read-ahead requests.
constexpr uint64_t kReadRequestBytes = 512 * kKiB;
constexpr uint64_t kReadRequestsPerObject = 2;
constexpr uint64_t kReadObjectBytes =
    kReadRequestsPerObject * kReadRequestBytes;  // 1 MiB.
/// Object operations per write phase (spread over passes so the wall
/// clock integrates enough work at any scale).
constexpr uint64_t kTargetOps = 2048;

struct PhaseResult {
  uint64_t bytes = 0;           ///< Total bytes over every pass.
  uint64_t pass_bytes = 0;      ///< Bytes of one pass.
  uint64_t pass_operations = 0; ///< Object-level ops in one pass.
  double sim_seconds = 0.0;     ///< Simulated time over every pass.
  /// Fastest pass (min-of-N: the cold pass — slab/hash-page
  /// allocation — and scheduler noise fall out automatically).
  double wall_seconds = 0.0;

  double sim_mb_per_s() const {
    return sim_seconds > 0.0
               ? static_cast<double>(bytes) / (1024.0 * 1024.0) / sim_seconds
               : 0.0;
  }
  double wall_mb_per_s() const {
    return wall_seconds > 0.0 ? static_cast<double>(pass_bytes) /
                                    (1024.0 * 1024.0) / wall_seconds
                              : 0.0;
  }
  double wall_ns_per_op() const {
    return pass_operations > 0
               ? wall_seconds * 1e9 / static_cast<double>(pass_operations)
               : 0.0;
  }
};

/// Byte offset of run `r` of object `i`: runs interleave across the
/// region, so consecutive runs of one object are `objects` run-slots
/// apart and every run pays positioning.
uint64_t RunOffset(uint64_t i, uint64_t r, uint64_t objects) {
  return (r * objects + i) * kRunBytes;
}

/// Drives `passes` full write-then-read sweeps over the object set.
/// `Device` is sim::BlockDevice or sim::ReferenceBlockDevice (same
/// request surface).
/// Returns false on any device error or retain-mode payload mismatch,
/// so the bench exits nonzero and fails the run_all REQUIRED gate.
template <typename Device>
bool RunPlane(Device* dev, uint64_t region, uint64_t objects,
              uint64_t write_passes, uint64_t read_passes, bool vectored,
              bool retain, PhaseResult* write, PhaseResult* read) {
  std::vector<uint8_t> pattern(kObjectBytes);
  for (uint64_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i * 131 + 29);
  }
  std::vector<uint8_t> back(kReadObjectBytes);
  std::vector<uint8_t> scalar_buf;
  std::vector<sim::IoSlice> slices(
      std::max(kRunsPerObject, kReadRequestsPerObject));

  const double wsim0 = dev->clock().now();
  double min_pass = 0.0;
  for (uint64_t pass = 0; pass < write_passes; ++pass) {
    const auto pass0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < objects; ++i) {
      if (vectored) {
        for (uint64_t r = 0; r < kRunsPerObject; ++r) {
          slices[r] = {RunOffset(i, r, objects), kRunBytes,
                       retain ? pattern.data() + r * kRunBytes : nullptr,
                       nullptr};
        }
        if (!dev->WriteV(slices).ok()) return false;
      } else {
        for (uint64_t r = 0; r < kRunsPerObject; ++r) {
          std::span<const uint8_t> data =
              retain ? std::span<const uint8_t>(
                           pattern.data() + r * kRunBytes, kRunBytes)
                     : std::span<const uint8_t>();
          if (!dev->Write(RunOffset(i, r, objects), kRunBytes, data).ok()) {
            return false;
          }
        }
      }
    }
    const double pass_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - pass0)
                              .count();
    if (pass == 0 || pass_s < min_pass) min_pass = pass_s;
  }
  write->bytes = write_passes * objects * kObjectBytes;
  write->pass_bytes = objects * kObjectBytes;
  write->pass_operations = objects;
  write->sim_seconds = dev->clock().now() - wsim0;
  write->wall_seconds = min_pass;

  // Read phase: sequential 512 KiB read-ahead requests assembling 1 MiB
  // objects across the whole region.
  const uint64_t read_objects = region / kReadObjectBytes;
  const double rsim0 = dev->clock().now();
  std::span<sim::IoSlice> read_slices(slices.data(),
                                      kReadRequestsPerObject);
  for (uint64_t pass = 0; pass < read_passes; ++pass) {
    const auto pass0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < read_objects; ++i) {
      const uint64_t base = i * kReadObjectBytes;
      if (vectored) {
        for (uint64_t r = 0; r < kReadRequestsPerObject; ++r) {
          slices[r] = {base + r * kReadRequestBytes, kReadRequestBytes,
                       nullptr, back.data() + r * kReadRequestBytes};
        }
        if (!dev->ReadV(read_slices).ok()) return false;
      } else {
        for (uint64_t r = 0; r < kReadRequestsPerObject; ++r) {
          if (!dev->Read(base + r * kReadRequestBytes, kReadRequestBytes,
                         &scalar_buf)
                   .ok()) {
            return false;
          }
          std::memcpy(back.data() + r * kReadRequestBytes, scalar_buf.data(),
                      kReadRequestBytes);
        }
      }
    }
    const double pass_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - pass0)
                              .count();
    if (pass == 0 || pass_s < min_pass) min_pass = pass_s;
  }
  read->bytes = read_passes * read_objects * kReadObjectBytes;
  read->pass_bytes = read_objects * kReadObjectBytes;
  read->pass_operations = read_objects;
  read->sim_seconds = dev->clock().now() - rsim0;
  read->wall_seconds = min_pass;

  // Integrity: the scattered writes must survive the sequential
  // read-back. The very last 4 KiB of the region is run
  // kRunsPerObject-1 of write-object objects-1, and `back` still holds
  // the last swept 1 MiB, so its tail must equal that pattern slice.
  if (retain && objects * kObjectBytes == region && read_objects > 0) {
    const uint8_t* got = back.data() + kReadObjectBytes - kRunBytes;
    const uint8_t* want =
        pattern.data() + (kRunsPerObject - 1) * kRunBytes;
    if (std::memcmp(got, want, kRunBytes) != 0) {
      std::fprintf(stderr, "payload mismatch on %s plane\n",
                   vectored ? "vectored" : "scalar");
      return false;
    }
  }
  return true;
}

int Run(const Options& options) {
  PrintBanner("Micro: device data plane (hash map vs arena, vectored I/O)",
              "host-cost substrate for every figure bench", options);

  // The working set is a fixed cache-friendly hot set, independent of
  // --scale: the bench isolates per-operation data-plane cost (probes,
  // zero-fills, staging copies), not DRAM streaming bandwidth — and a
  // scale-independent region keeps the simulated table identical at
  // every scale.
  const uint64_t region = 8 * kMiB;
  const uint64_t objects = region / kObjectBytes;
  // Many short passes per phase: the min-of-N wall estimator needs
  // enough samples to land between scheduler bursts on shared runners.
  const uint64_t write_passes =
      2 * std::max<uint64_t>(4, kTargetOps / objects);
  const uint64_t read_passes =
      4 * std::max<uint64_t>(4, kTargetOps / objects);
  const sim::DiskParams disk =
      sim::DiskParams::St3400832as().WithCapacity(region);

  TableWriter table({"mode", "plane", "api", "write sim MB/s",
                     "read sim MB/s"});
  bool ok = true;
  // wall[mode][plane][api] for the prose speedup summary.
  PhaseResult wall_write[2][2][2];
  PhaseResult wall_read[2][2][2];

  for (int retain = 0; retain < 2; ++retain) {
    const sim::DataMode mode =
        retain != 0 ? sim::DataMode::kRetain : sim::DataMode::kMetadataOnly;
    for (int plane = 0; plane < 2; ++plane) {
      for (int api = 0; api < 2; ++api) {
        PhaseResult write, read;
        if (plane == 0) {
          sim::ReferenceBlockDevice dev(disk, mode);
          ok = RunPlane(&dev, region, objects, write_passes, read_passes,
                        api != 0, retain != 0, &write, &read) &&
               ok;
        } else {
          sim::BlockDevice dev(disk, mode);
          ok = RunPlane(&dev, region, objects, write_passes, read_passes,
                        api != 0, retain != 0, &write, &read) &&
               ok;
        }
        wall_write[retain][plane][api] = write;
        wall_read[retain][plane][api] = read;
        table.Row()
            .Cell(retain != 0 ? "retain" : "metadata")
            .Cell(plane != 0 ? "arena" : "reference")
            .Cell(api != 0 ? "vectored" : "scalar")
            .Cell(write.sim_mb_per_s())
            .Cell(read.sim_mb_per_s());
      }
    }
  }

  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf("\n");

  // Host-dependent wall clocks: indented prose, never parsed as CSV.
  for (int retain = 0; retain < 2; ++retain) {
    for (int plane = 0; plane < 2; ++plane) {
      for (int api = 0; api < 2; ++api) {
        const PhaseResult& w = wall_write[retain][plane][api];
        const PhaseResult& r = wall_read[retain][plane][api];
        std::printf(
            "  wall %s %-9s %-8s: write %7.0f MB/s (%6.0f ns/op), "
            "read %7.0f MB/s (%6.0f ns/op)\n",
            retain != 0 ? "retain  " : "metadata",
            plane != 0 ? "arena" : "reference",
            api != 0 ? "vectored" : "scalar", w.wall_mb_per_s(),
            w.wall_ns_per_op(), r.wall_mb_per_s(), r.wall_ns_per_op());
      }
    }
  }
  const double read_ref = wall_read[1][0][0].wall_mb_per_s();
  const double read_arena = wall_read[1][1][1].wall_mb_per_s();
  const double write_ref = wall_write[1][0][0].wall_mb_per_s();
  const double write_arena = wall_write[1][1][1].wall_mb_per_s();
  std::printf(
      "\n  retain-mode device throughput, arena-vectored vs hash-map "
      "reference\n  scalar (wall MB/s): reads %.1fx (target >= 2x; the "
      "figures' measured\n  phase — no zero-fill, no staging copy, no "
      "per-page probes), writes %.1fx.\n",
      read_ref > 0.0 ? read_arena / read_ref : 0.0,
      write_ref > 0.0 ? write_arena / write_ref : 0.0);
  std::printf(
      "\nExpectation: simulated MB/s is identical down the whole table "
      "within a\nmode — the arena and vectored submission are "
      "charge-neutral by\nconstruction — while the wall columns show the "
      "host-cost win that lets\nCI afford larger --scale runs.\n");
  if (!ok) {
    std::fprintf(stderr, "device error or payload mismatch — see above\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  return lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
}
