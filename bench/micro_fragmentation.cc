// Micro-benchmark (google-benchmark) for the checkpoint fragmentation
// analysis: the incrementally maintained FragmentationTracker snapshot
// against the full per-object layout scan, across object populations.
// This is the hot path of the fig2/fig3 aging checkpoints — the full
// scan's cost grows with the number of stored objects, the snapshot's
// does not.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "util/units.h"

namespace lor {
namespace {

// Builds a filesystem repository holding `objects` small objects, sized
// so layouts have a few extents each. Metadata-only payloads keep setup
// time proportional to the object count.
std::unique_ptr<core::FsRepository> MakeAgedRepository(uint64_t objects) {
  core::FsRepositoryConfig config;
  config.volume_bytes = objects * 512 * kKiB;
  config.write_request_bytes = 64 * kKiB;
  auto repo = std::make_unique<core::FsRepository>(config);
  for (uint64_t i = 0; i < objects; ++i) {
    const std::string key = "obj" + std::to_string(i);
    Status s = repo->Put(key, 256 * kKiB);
    if (!s.ok()) std::abort();
  }
  // One round of replacements so layouts fragment a little.
  for (uint64_t i = 0; i < objects; i += 3) {
    const std::string key = "obj" + std::to_string(i);
    Status s = repo->SafeWrite(key, 256 * kKiB);
    if (!s.ok()) std::abort();
  }
  return repo;
}

void BM_AnalyzeFullScan(benchmark::State& state) {
  const auto repo = MakeAgedRepository(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    core::FragmentationReport report =
        core::AnalyzeFragmentationFullScan(*repo);
    benchmark::DoNotOptimize(report.fragments_per_object);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnalyzeFullScan)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_AnalyzeIncremental(benchmark::State& state) {
  const auto repo = MakeAgedRepository(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    core::FragmentationReport report = core::AnalyzeFragmentation(*repo);
    benchmark::DoNotOptimize(report.fragments_per_object);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnalyzeIncremental)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// The maintenance side of the bargain: tracker updates during aging.
// Measures a full safe-write round so the per-update cost is seen in
// its real context (allocation + device model dominate).
void BM_SafeWriteWithTracker(benchmark::State& state) {
  const uint64_t objects = 1000;
  const auto repo = MakeAgedRepository(objects);
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "obj" + std::to_string(i % objects);
    Status s = repo->SafeWrite(key, 256 * kKiB);
    benchmark::DoNotOptimize(s.ok());
    ++i;
  }
}
BENCHMARK(BM_SafeWriteWithTracker);

}  // namespace
}  // namespace lor

BENCHMARK_MAIN();
