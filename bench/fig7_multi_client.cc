// Figure 7 (beyond the paper) — multi-client scaling: aggregate
// throughput and fragmentation over 1/2/4/8 shards, both back ends.
//
// The paper's measurements are single-client; a production deployment
// (the "millions of users" the conclusions feed into) hash-partitions
// the namespace across independent single-spindle shards, each serving
// one client stream. This bench fixes the total volume and data set,
// splits them across N shards (workload::ShardedRunner over
// core::RepositoryFactory + ShardRouter, one OS thread per shard), and
// reports merged figures per shard count: aggregate MB/s scales with
// the spindle count while fragments/object stays flat — churn-driven
// fragmentation is a per-volume phenomenon, not a scale phenomenon.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Figure 7: multi-client scaling (1-8 shards, 512 KB)",
              "multi-client extension of Figures 2 and 4", options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  const std::vector<double> ages = {2.0};
  // The sweep doubles from 1 up to --shards (default 8); the requested
  // top is always measured, even when it is not a power of two. The
  // 64-bit loop variable keeps `n *= 2` from wrapping below a huge
  // --shards value.
  const uint32_t max_shards = options.shards_set ? options.shards : 8;
  std::vector<uint32_t> sweep;
  for (uint64_t n = 1; n < max_shards; n *= 2) {
    sweep.push_back(static_cast<uint32_t>(n));
  }
  sweep.push_back(max_shards);

  TableWriter table({"backend", "shards", "load mb/s", "aged write mb/s",
                     "read mb/s", "frag/obj", "device busy s",
                     "vectored req", "coalesced runs",
                     "read p50 ms", "read p99 ms", "read p999 ms",
                     "write p50 ms", "write p99 ms", "write p999 ms",
                     "hit rate min", "hit rate max",
                     "load wall s", "age wall s", "read wall s"});
  for (Backend backend : {Backend::kDatabase, Backend::kFilesystem}) {
    auto factory = MakeRepositoryFactory(backend, volume, 64 * kKiB,
                                         options.cache_mb << 20);
    for (uint32_t shards : sweep) {
      workload::WorkloadConfig config = options.MakeWorkloadConfig();
      config.sizes = workload::SizeDistribution::Constant(512 * kKiB);

      auto checkpoints = RunShardedAging(*factory, shards, config, ages,
                                         /*probe_reads=*/true,
                                         options.wall_repeats);
      if (!checkpoints.ok()) {
        std::fprintf(stderr, "%s x%u failed: %s\n", factory->name().c_str(),
                     shards, checkpoints.status().ToString().c_str());
        continue;
      }
      const AgingCheckpoint& loaded = checkpoints->front();
      const AgingCheckpoint& aged = checkpoints->back();
      // Latency over the aged interval only (post-load behavior): the
      // cumulative recorders minus the load-time snapshot.
      const sim::LatencyRecorder aged_lat = aged.latency - loaded.latency;
      const LatencyHistogram reads =
          aged_lat.histogram(sim::OpClass::kGet);
      const LatencyHistogram writes = aged_lat.writes();
      table.Row()
          .Cell(factory->name())
          .Cell(static_cast<uint64_t>(shards))
          .Cell(loaded.write.mb_per_s())
          .Cell(aged.write.mb_per_s())
          .Cell(aged.read.mb_per_s())
          .Cell(aged.fragmentation.fragments_per_object)
          .Cell(aged.device.busy_time_s)
          .Cell(aged.device.vectored_requests)
          .Cell(aged.device.coalesced_runs)
          .Cell(reads.Quantile(0.5) * 1e3, 3)
          .Cell(reads.Quantile(0.99) * 1e3, 3)
          .Cell(reads.Quantile(0.999) * 1e3, 3)
          .Cell(writes.Quantile(0.5) * 1e3, 3)
          .Cell(writes.Quantile(0.99) * 1e3, 3)
          .Cell(writes.Quantile(0.999) * 1e3, 3)
          .Cell(aged.cache_hit_min, 3)
          .Cell(aged.cache_hit_max, 3)
          .Cell(loaded.write.host_seconds, 3)
          .Cell(aged.write.host_seconds, 3)
          .Cell(aged.read.host_seconds, 3);
    }
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: aggregate MB/s grows with the shard count (each\n"
      "shard is an independent volume + client thread) while frag/obj\n"
      "stays roughly flat - fragmentation is per-volume churn, not a\n"
      "scale effect. The database still loads fast and ages badly at\n"
      "every shard count. The wall columns are host seconds per phase\n"
      "(min over --wall-repeats for the read probe) - real time, not\n"
      "simulated, so compare them only across runs on one machine.\n"
      "--cache-mb=N splits one buffer-pool budget across shards; the\n"
      "hit-rate min/max spread shows how fairly it serves the clients.\n"
      "For shards contending for one physical spindle, see\n"
      "fig7_contention.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
