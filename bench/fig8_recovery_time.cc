// Figure 8 (extension) — crash-recovery time and data-loss window.
// The paper's §3.1 fault-injection methodology (pull the plug mid-
// workload, remount, verify) applied to both back ends: seeded power
// cuts on the device plane, journal/log replay at mount, repository
// fsck, and an oracle check that nothing acknowledged was lost. Rows
// sweep volume age and the commit-hardening mode each back end trades
// durability against throughput with (NTFS lazy-commit journal
// batching; SQL Server bulk-logged vs fully-logged BLOB writes).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "util/table_writer.h"
#include "workload/crash_torture.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Fig 8: recovery time and data-loss window after power cuts",
              "Section 3.1 (fault injection), Section 4 (recovery modes)",
              options);

  struct Cell {
    workload::CrashBackend backend;
    bool hardened;  // FS: per-op journal charges; DB: fully logged.
    uint64_t aging_rounds;
  };
  std::vector<Cell> cells;
  for (auto backend : {workload::CrashBackend::kFilesystem,
                       workload::CrashBackend::kDatabase}) {
    for (bool hardened : {false, true}) {
      for (uint64_t age : {uint64_t{0}, uint64_t{4}}) {
        cells.push_back({backend, hardened, age});
      }
    }
  }

  TableWriter table({"back end", "commit mode", "age rounds", "cuts",
                     "mean recovery seconds", "max recovery seconds",
                     "acked ops lost", "rolled-back MB"});
  for (const Cell& cell : cells) {
    workload::CrashTortureOptions torture;
    torture.backend = cell.backend;
    torture.volume_bytes = options.ScaleBytes(2 * kGiB);
    torture.object_bytes = 256 * kKiB;
    torture.objects = 64;
    torture.cuts = 12;
    torture.aging_rounds = cell.aging_rounds;
    torture.queue_depth = std::max<uint32_t>(options.queue_depth, 1);
    torture.batch_journal_charges = !cell.hardened;
    torture.bulk_logged = !cell.hardened;
    // Metadata-only keeps the sweep cheap; existence and sizes still
    // verify against the oracle (the byte-level hash check runs in the
    // crash-torture test suite).
    torture.data_mode = sim::DataMode::kMetadataOnly;
    torture.seed = options.seed;

    workload::CrashTortureRunner runner(torture);
    auto summary = runner.Run();
    const bool fs = cell.backend == workload::CrashBackend::kFilesystem;
    if (!summary.ok()) {
      std::fprintf(stderr, "fig8 cell (%s) failed: %s\n",
                   fs ? "filesystem" : "database",
                   summary.status().ToString().c_str());
      std::exit(1);
    }
    if (summary->committed_lost != 0 || summary->torn_surfaced != 0 ||
        summary->fsck_dirty_cuts != 0) {
      std::fprintf(stderr,
                   "fig8 consistency violation: lost=%llu torn=%llu "
                   "dirty=%llu\n",
                   static_cast<unsigned long long>(summary->committed_lost),
                   static_cast<unsigned long long>(summary->torn_surfaced),
                   static_cast<unsigned long long>(summary->fsck_dirty_cuts));
      std::exit(1);
    }
    table.Row()
        .Cell(fs ? "filesystem" : "database")
        .Cell(fs ? (cell.hardened ? "per-op journal" : "batched journal")
                 : (cell.hardened ? "fully logged" : "bulk-logged"))
        .Cell(static_cast<double>(cell.aging_rounds), 0)
        .Cell(static_cast<double>(summary->cuts_executed), 0)
        .Cell(summary->total_recovery_seconds /
                  static_cast<double>(summary->cuts_executed),
              4)
        .Cell(summary->max_recovery_seconds, 4)
        .Cell(static_cast<double>(summary->acked_rolled_back), 0)
        .Cell(static_cast<double>(summary->data_loss_bytes) /
                  static_cast<double>(kMiB),
              2);
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: every cut remounts and passes fsck with zero acked\n"
      "objects lost. Hardened commit modes shrink the loss window the\n"
      "lazy modes leave open; recovery time grows with volume age as the\n"
      "replay scan covers more metadata.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
