// Table 1 — test system configuration.
//
// The paper's Table 1 lists the physical testbed. Our testbed is a
// simulator, so this bench prints the simulated configuration plus the
// calibration measurements that anchor the disk model to the paper's
// drive (sequential streaming rate, random-read latency).

#include <cstdio>

#include "bench_common.h"
#include "sim/block_device.h"
#include "sim/op_cost_model.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Table 1: test system configuration", "Table 1", options);

  std::printf("Paper's hardware:\n");
  std::printf("  Tyan S2882 K8S, 1.8 GHz Opteron 244, 2 GB RAM (ECC)\n");
  std::printf("  SuperMicro MV8 SATA controller\n");
  std::printf("  4x Seagate 400GB ST3400832AS 7200 rpm SATA\n");
  std::printf("  Windows Server 2003 R2 Beta, SQL Server 2005 Beta 2\n\n");

  const sim::DiskParams params = sim::DiskParams::St3400832as();
  std::printf("Simulated drive: %s\n\n", params.ToString().c_str());

  // Calibration probes against the raw device.
  sim::BlockDevice dev(params);
  const uint64_t stream_bytes = 256 * kMiB;
  double t0 = dev.clock().now();
  for (uint64_t off = 0; off < stream_bytes; off += kMiB) {
    Status s = dev.Read(off, kMiB);
    (void)s;
  }
  const double seq_outer = dev.clock().now() - t0;

  t0 = dev.clock().now();
  for (uint64_t off = 0; off < stream_bytes; off += kMiB) {
    Status s = dev.Read(params.capacity_bytes - stream_bytes + off, kMiB);
    (void)s;
  }
  const double seq_inner = dev.clock().now() - t0;

  Rng rng(options.seed);
  t0 = dev.clock().now();
  constexpr int kProbes = 1000;
  for (int i = 0; i < kProbes; ++i) {
    Status s = dev.Read(rng.Uniform(params.capacity_bytes - 8192), 8192);
    (void)s;
  }
  const double random_probe = (dev.clock().now() - t0) / kProbes;

  TableWriter table({"calibration probe", "simulated", "drive datasheet"});
  table.Row()
      .Cell("sequential read, outer zone")
      .Cell(FormatThroughput(stream_bytes, seq_outer))
      .Cell("~65 MB/s");
  table.Row()
      .Cell("sequential read, inner zone")
      .Cell(FormatThroughput(stream_bytes, seq_inner))
      .Cell("~35 MB/s");
  table.Row()
      .Cell("random 8 KB read")
      .Cell(FormatSeconds(random_probe))
      .Cell("~12.7 ms (8.5 seek + 4.2 rot)");
  table.PrintText();

  const sim::OpCostModel costs;
  std::printf("\nSoftware-stack cost model (see sim/op_cost_model.h):\n");
  std::printf("  fs open %.1f ms, fs stream cap %.0f MB/s\n",
              costs.fs_open_s * 1e3, costs.fs_stream_bandwidth / 1e6);
  std::printf("  db query %.1f ms, db read cap %.0f MB/s, db write cap "
              "%.0f MB/s\n",
              costs.db_query_s * 1e3, costs.db_read_stream_bandwidth / 1e6,
              costs.db_write_stream_bandwidth / 1e6);
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
