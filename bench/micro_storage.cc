// Micro-benchmarks for the storage engines (google-benchmark): file
// store append/read/safe-write, blob B-tree write/read, and metadata
// B+tree operations. These measure *host* CPU per simulated operation —
// the cost of running experiments — not simulated time.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/db_repository.h"
#include "core/fs_repository.h"
#include "db/metadata_table.h"
#include "fs/file_store.h"
#include "util/random.h"

namespace lor {
namespace {

void BM_FileStoreSafeWrite(benchmark::State& state) {
  core::FsRepositoryConfig config;
  config.volume_bytes = 8 * kGiB;
  core::FsRepository repo(config);
  const uint64_t size = static_cast<uint64_t>(state.range(0)) * kKiB;
  Rng rng(1);
  uint64_t created = 0;
  for (auto _ : state) {
    // Keep ~256 live objects so churn replaces rather than grows.
    const std::string key =
        "obj" + std::to_string(created < 256 ? created : rng.Uniform(256));
    ++created;
    Status s = repo.SafeWrite(key, size);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_FileStoreSafeWrite)->Arg(256)->Arg(1024)->Arg(10240);

void BM_FileStoreRead(benchmark::State& state) {
  core::FsRepositoryConfig config;
  config.volume_bytes = 8 * kGiB;
  core::FsRepository repo(config);
  for (int i = 0; i < 128; ++i) {
    Status s = repo.Put("obj" + std::to_string(i), kMiB);
    benchmark::DoNotOptimize(s.ok());
  }
  Rng rng(2);
  for (auto _ : state) {
    Status s = repo.Get("obj" + std::to_string(rng.Uniform(128)));
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kMiB));
}
BENCHMARK(BM_FileStoreRead);

void BM_BlobStoreReplace(benchmark::State& state) {
  core::DbRepositoryConfig config;
  config.volume_bytes = 8 * kGiB;
  core::DbRepository repo(config);
  const uint64_t size = static_cast<uint64_t>(state.range(0)) * kKiB;
  for (int i = 0; i < 256; ++i) {
    Status s = repo.Put("obj" + std::to_string(i), size);
    benchmark::DoNotOptimize(s.ok());
  }
  Rng rng(3);
  for (auto _ : state) {
    Status s =
        repo.SafeWrite("obj" + std::to_string(rng.Uniform(256)), size);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_BlobStoreReplace)->Arg(256)->Arg(1024)->Arg(10240);

void BM_BlobStoreRead(benchmark::State& state) {
  core::DbRepositoryConfig config;
  config.volume_bytes = 8 * kGiB;
  core::DbRepository repo(config);
  for (int i = 0; i < 128; ++i) {
    Status s = repo.Put("obj" + std::to_string(i), kMiB);
    benchmark::DoNotOptimize(s.ok());
  }
  Rng rng(4);
  for (auto _ : state) {
    Status s = repo.Get("obj" + std::to_string(rng.Uniform(128)));
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kMiB));
}
BENCHMARK(BM_BlobStoreRead);

void BM_MetadataTableLookup(benchmark::State& state) {
  auto dev = std::make_unique<sim::BlockDevice>(
      sim::DiskParams::St3400832as().WithCapacity(kGiB));
  db::PageFile file(dev.get());
  sim::OpCostModel costs;
  db::MetadataTable table(&file, &costs);
  const int rows = static_cast<int>(state.range(0));
  for (int i = 0; i < rows; ++i) {
    Status s = table.Insert({.key = "key" + std::to_string(i)});
    benchmark::DoNotOptimize(s.ok());
  }
  Rng rng(5);
  for (auto _ : state) {
    auto row = table.Lookup("key" + std::to_string(rng.Uniform(rows)));
    benchmark::DoNotOptimize(row.ok());
  }
}
BENCHMARK(BM_MetadataTableLookup)->Arg(1000)->Arg(100000);

void BM_MetadataTableInsert(benchmark::State& state) {
  auto dev = std::make_unique<sim::BlockDevice>(
      sim::DiskParams::St3400832as().WithCapacity(kGiB));
  db::PageFile file(dev.get());
  sim::OpCostModel costs;
  db::MetadataTable table(&file, &costs);
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = table.Insert({.key = "key" + std::to_string(i++)});
    benchmark::DoNotOptimize(s.ok());
  }
}
BENCHMARK(BM_MetadataTableInsert);

}  // namespace
}  // namespace lor

BENCHMARK_MAIN();
