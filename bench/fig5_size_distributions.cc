// Figure 5 — fragmentation with constant vs uniformly-distributed object
// sizes (10 MB mean), one panel per back end.
//
// Paper's finding (the surprise): constant-size objects fragment no
// better than uniformly-sized ones, because space is allocated per
// append request, before the final object size is known.

#include <cstdio>

#include "bench_common.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Figure 5: constant vs uniform size distributions (10 MB)",
              "Figure 5 (two panels)", options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  const std::vector<double> ages = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  struct Series {
    std::vector<double> values;
  };
  std::map<std::string, Series> runs;

  for (Backend backend : {Backend::kDatabase, Backend::kFilesystem}) {
    for (bool uniform : {false, true}) {
      auto repo = MakeRepository(backend, volume);
      workload::WorkloadConfig config = options.MakeWorkloadConfig();
      config.sizes = uniform
                         ? workload::SizeDistribution::Uniform(10 * kMiB)
                         : workload::SizeDistribution::Constant(10 * kMiB);
      auto checkpoints = RunAging(repo.get(), config, ages,
                                  /*probe_reads=*/false);
      const std::string key =
          repo->name() + (uniform ? "/uniform" : "/constant");
      if (!checkpoints.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", key.c_str(),
                     checkpoints.status().ToString().c_str());
        continue;
      }
      for (const AgingCheckpoint& cp : *checkpoints) {
        runs[key].values.push_back(cp.fragmentation.fragments_per_object);
      }
    }
  }

  for (const char* backend : {"database", "filesystem"}) {
    std::printf("%s fragmentation (fragments/object):\n", backend);
    TableWriter table({"storage age", "constant", "uniform"});
    const auto& constant = runs[std::string(backend) + "/constant"].values;
    const auto& uniform = runs[std::string(backend) + "/uniform"].values;
    for (size_t i = 0; i <= ages.size(); ++i) {
      table.Row()
          .Cell(static_cast<uint64_t>(i))
          .Cell(i < constant.size() ? constant[i] : 0.0)
          .Cell(i < uniform.size() ? uniform[i] : 0.0);
    }
    if (options.csv) {
      table.PrintCsv();
    } else {
      table.PrintText();
    }
    std::printf("\n");
  }
  std::printf(
      "Paper (approx): database curves rise together toward ~35; \n"
      "filesystem curves rise together far more slowly. Shape check:\n"
      "within each back end, the constant and uniform series should be\n"
      "close to each other — constant sizes buy no immunity.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
