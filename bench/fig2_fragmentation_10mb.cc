// Figure 2 — long-term fragmentation with 10 MB objects: fragments per
// object vs storage age 0..10 for both back ends.
//
// Paper's finding: SQL Server's fragmentation increases almost linearly
// and approaches no asymptote; NTFS levels off.

#include <cstdio>

#include "bench_common.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Figure 2: long-term fragmentation, 10 MB objects",
              "Figure 2", options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  const std::vector<double> ages = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  // Approximate series read off the paper's chart.
  const double paper_db[] = {1, 5, 9, 13, 16, 20, 23, 27, 30, 33, 36};
  const double paper_fs[] = {1, 2, 3, 4, 5, 5.5, 6, 6.5, 7, 7, 7};

  std::map<std::string, std::vector<double>> series;
  for (Backend backend : {Backend::kDatabase, Backend::kFilesystem}) {
    auto repo = MakeRepository(backend, volume);
    workload::WorkloadConfig config = options.MakeWorkloadConfig();
    config.sizes = workload::SizeDistribution::Constant(10 * kMiB);
    auto checkpoints = RunAging(repo.get(), config, ages,
                                /*probe_reads=*/false);
    if (!checkpoints.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", repo->name().c_str(),
                   checkpoints.status().ToString().c_str());
      continue;
    }
    for (const AgingCheckpoint& cp : *checkpoints) {
      series[repo->name()].push_back(cp.fragmentation.fragments_per_object);
    }
  }

  TableWriter table({"storage age", "database", "filesystem",
                     "paper db (approx)", "paper fs (approx)"});
  for (size_t i = 0; i <= ages.size(); ++i) {
    table.Row()
        .Cell(static_cast<uint64_t>(i))
        .Cell(i < series["database"].size() ? series["database"][i] : 0.0)
        .Cell(i < series["filesystem"].size() ? series["filesystem"][i]
                                              : 0.0)
        .Cell(paper_db[i])
        .Cell(paper_fs[i]);
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: the database grows roughly linearly with no\n"
      "asymptote; the filesystem grows much more slowly and levels off.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
