// Figure 6 — the effect of volume size and occupancy on fragmentation
// (10 MB objects): 50% full at 40 GB vs 400 GB for both back ends, plus
// the filesystem at 90% and 97.5% occupancy, plus the paper's
// small-free-pool observation (a 4 GB volume holding only ~40 free
// objects degrades sharply).

#include <cstdio>

#include "bench_common.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

struct RunSpec {
  Backend backend;
  uint64_t paper_volume;
  double occupancy;
  double max_age;
};

void Run(const Options& options) {
  PrintBanner("Figure 6: volume size and occupancy effects (10 MB objects)",
              "Figure 6 (three panels)", options);

  const std::vector<RunSpec> specs = {
      {Backend::kDatabase, 40 * kGiB, 0.5, 5.0},
      {Backend::kDatabase, 400 * kGiB, 0.5, 5.0},
      {Backend::kFilesystem, 40 * kGiB, 0.5, 10.0},
      {Backend::kFilesystem, 400 * kGiB, 0.5, 10.0},
      {Backend::kFilesystem, 40 * kGiB, 0.9, 10.0},
      {Backend::kFilesystem, 400 * kGiB, 0.9, 10.0},
      {Backend::kFilesystem, 40 * kGiB, 0.975, 10.0},
      {Backend::kFilesystem, 400 * kGiB, 0.975, 10.0},
      // The paper's small-pool cliff: 4 GB at 90% leaves ~40 free
      // objects. (Run at full size regardless of --scale.)
      {Backend::kFilesystem, 4 * kGiB, 0.9, 10.0},
  };

  TableWriter table({"series", "volume", "occupancy", "age2", "age4",
                     "age6", "age8", "age10", "free objects"});
  for (const RunSpec& spec : specs) {
    const uint64_t volume = spec.paper_volume <= 4 * kGiB
                                ? spec.paper_volume
                                : options.ScaleBytes(spec.paper_volume);
    auto repo = MakeRepository(spec.backend, volume);
    workload::WorkloadConfig config = options.MakeWorkloadConfig();
    config.sizes = workload::SizeDistribution::Constant(10 * kMiB);
    config.target_occupancy = spec.occupancy;
    std::vector<double> ages;
    for (double a = 2.0; a <= spec.max_age + 1e-9; a += 2.0) {
      ages.push_back(a);
    }
    auto checkpoints = RunAging(repo.get(), config, ages,
                                /*probe_reads=*/false);
    table.Row();
    table.Cell(spec.backend == Backend::kDatabase ? "database"
                                                  : "filesystem");
    table.Cell(FormatBytes(volume));
    table.Cell(spec.occupancy, 3);
    if (!checkpoints.ok()) {
      for (int i = 0; i < 5; ++i) table.Cell(checkpoints.status().ToString());
      continue;
    }
    for (size_t i = 1; i < 6; ++i) {
      if (i < checkpoints->size()) {
        table.Cell((*checkpoints)[i].fragmentation.fragments_per_object);
      } else {
        table.Cell("-");
      }
    }
    const double free_objects =
        static_cast<double>(volume) * (1.0 - spec.occupancy) /
        static_cast<double>(10 * kMiB);
    table.Cell(static_cast<uint64_t>(free_objects));
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nPaper: 50%% full NTFS converges to 4-5 fragments/object at 400 GB\n"
      "and 11-12 at 40 GB; above 90%% occupancy volume size matters\n"
      "little; a pool of only ~40 free objects degrades rapidly.\n"
      "Shape check: occupancy dominates; the small-pool row is worst per\n"
      "free object.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
