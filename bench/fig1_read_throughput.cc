// Figure 1 — read throughput after bulk load, after two overwrites, and
// after four overwrites, for 256 KB / 512 KB / 1 MB objects, database vs
// filesystem.
//
// Paper's finding: immediately after bulk load SQL Server is faster for
// small objects and NTFS for large; as objects are overwritten,
// fragmentation degrades SQL Server until NTFS wins above 256 KB.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

// Values read off the paper's bar charts (MB/s, approximate).
const std::map<std::pair<int, uint64_t>, std::pair<double, double>>
    kPaperDbFs = {
        // {age, size} -> {database, filesystem}
        {{0, 256 * kKiB}, {8.0, 4.5}},  {{0, 512 * kKiB}, {10.0, 6.5}},
        {{0, kMiB}, {10.5, 9.0}},       {{2, 256 * kKiB}, {6.5, 4.5}},
        {{2, 512 * kKiB}, {7.0, 6.5}},  {{2, kMiB}, {7.5, 9.0}},
        {{4, 256 * kKiB}, {5.5, 4.2}},  {{4, 512 * kKiB}, {4.5, 6.0}},
        {{4, kMiB}, {4.0, 8.5}},
};

void Run(const Options& options) {
  PrintBanner("Figure 1: read throughput vs storage age",
              "Figure 1 (three panels: bulk load, two overwrites, four "
              "overwrites)",
              options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  const std::vector<uint64_t> sizes = {256 * kKiB, 512 * kKiB, kMiB};
  const std::vector<double> ages = {2.0, 4.0};

  // ours[backend][size] -> readings at ages 0,2,4.
  std::map<std::string, std::map<uint64_t, std::vector<double>>> ours;
  // lat[backend][size] -> per-age read-latency histograms, each isolated
  // to that checkpoint's probe interval (cumulative snapshots
  // subtracted; aging adds no gets, so the get-class delta is exactly
  // the probe).
  std::map<std::string, std::map<uint64_t, std::vector<LatencyHistogram>>>
      lat;

  for (Backend backend : {Backend::kDatabase, Backend::kFilesystem}) {
    for (uint64_t size : sizes) {
      auto repo = MakeRepository(backend, volume);
      workload::WorkloadConfig config = options.MakeWorkloadConfig();
      config.sizes = workload::SizeDistribution::Constant(size);
      auto checkpoints = RunAging(repo.get(), config, ages);
      if (!checkpoints.ok()) {
        std::fprintf(stderr, "%s %s failed: %s\n", repo->name().c_str(),
                     FormatBytes(size).c_str(),
                     checkpoints.status().ToString().c_str());
        continue;
      }
      auto& series = ours[repo->name()][size];
      auto& lat_series = lat[repo->name()][size];
      sim::LatencyRecorder prev;
      for (const AgingCheckpoint& cp : *checkpoints) {
        series.push_back(cp.read.mb_per_s());
        lat_series.push_back(
            (cp.latency - prev).histogram(sim::OpClass::kGet));
        prev = cp.latency;
      }
    }
  }

  const int age_labels[] = {0, 2, 4};
  for (int a = 0; a < 3; ++a) {
    std::printf("Read throughput after %s (MB/s):\n",
                a == 0 ? "bulk load"
                       : (a == 1 ? "two overwrites" : "four overwrites"));
    TableWriter table({"object size", "database", "filesystem",
                       "paper db (approx)", "paper fs (approx)",
                       "db p50 ms", "db p99 ms", "db p999 ms",
                       "fs p50 ms", "fs p99 ms", "fs p999 ms"});
    for (uint64_t size : sizes) {
      const auto paper = kPaperDbFs.at({age_labels[a], size});
      const LatencyHistogram db_lat =
          lat["database"][size].size() > static_cast<size_t>(a)
              ? lat["database"][size][a]
              : LatencyHistogram{};
      const LatencyHistogram fs_lat =
          lat["filesystem"][size].size() > static_cast<size_t>(a)
              ? lat["filesystem"][size][a]
              : LatencyHistogram{};
      table.Row()
          .Cell(FormatBytes(size))
          .Cell(ours["database"][size].size() > static_cast<size_t>(a)
                    ? ours["database"][size][a]
                    : 0.0)
          .Cell(ours["filesystem"][size].size() > static_cast<size_t>(a)
                    ? ours["filesystem"][size][a]
                    : 0.0)
          .Cell(paper.first)
          .Cell(paper.second)
          .Cell(db_lat.Quantile(0.5) * 1e3, 3)
          .Cell(db_lat.Quantile(0.99) * 1e3, 3)
          .Cell(db_lat.Quantile(0.999) * 1e3, 3)
          .Cell(fs_lat.Quantile(0.5) * 1e3, 3)
          .Cell(fs_lat.Quantile(0.99) * 1e3, 3)
          .Cell(fs_lat.Quantile(0.999) * 1e3, 3);
    }
    if (options.csv) {
      table.PrintCsv();
    } else {
      table.PrintText();
    }
    std::printf("\n");
  }
  std::printf(
      "Shape check: both series degrade with storage age as layouts\n"
      "fragment; the filesystem holds its throughput far better. With\n"
      "--name-path (the paper's one-open-per-read workload) the database\n"
      "additionally leads on small objects on the clean store and loses\n"
      "that lead as age grows — the handle path amortizes the per-read\n"
      "open/lookup cost that ordering hinges on.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
