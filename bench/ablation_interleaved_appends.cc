// Ablation — interleaved append streams (paper §6: "Also not considered
// were interleaved append requests to multiple objects, which are
// likely to increase fragmentation."). We test that prediction: K
// objects are written concurrently, their 64 KB appends round-robined,
// at varying K. GFS-style fixed-chunk designs exist precisely to tame
// this pattern (§3.4).

#include <cstdio>
#include <string>
#include <vector>

#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "bench_common.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Ablation: interleaved append streams",
              "Section 6 (future work: interleaved appends)", options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  const uint64_t object_size = 10 * kMiB;
  const uint64_t chunk = 64 * kKiB;

  TableWriter table({"concurrent streams", "fragments/object",
                     "read MB/s", "note"});
  for (int streams : {1, 2, 4, 8, 16}) {
    core::FsRepositoryConfig config;
    config.volume_bytes = volume;
    core::FsRepository repo(config);
    fs::FileStore* store = repo.store();

    const uint64_t target_objects =
        volume / 2 / object_size / static_cast<uint64_t>(streams) *
        static_cast<uint64_t>(streams);
    uint64_t written = 0;
    Status failure = Status::OK();
    while (written < target_objects && failure.ok()) {
      // Open `streams` files and append to them round-robin, as
      // concurrent uploads through one server would.
      std::vector<std::string> batch;
      for (int f = 0; f < streams; ++f) {
        batch.push_back("obj" + std::to_string(written + f));
        failure = store->Create(batch.back());
        if (!failure.ok()) break;
      }
      for (uint64_t off = 0; off < object_size && failure.ok();
           off += chunk) {
        for (const std::string& name : batch) {
          failure = store->Append(name, chunk);
          if (!failure.ok()) break;
        }
      }
      written += batch.size();
    }
    if (!failure.ok()) {
      table.Row()
          .Cell(streams)
          .Cell(failure.ToString())
          .Cell("-")
          .Cell("-");
      continue;
    }

    const auto frag = core::AnalyzeFragmentation(repo);
    // Probe reads.
    Rng rng(options.seed);
    const double t0 = repo.now();
    uint64_t bytes = 0;
    for (int i = 0; i < 64; ++i) {
      const std::string key =
          "obj" + std::to_string(rng.Uniform(target_objects));
      if (repo.Get(key).ok()) bytes += object_size;
    }
    const double seconds = repo.now() - t0;
    table.Row()
        .Cell(streams)
        .Cell(frag.fragments_per_object)
        .Cell(seconds > 0 ? static_cast<double>(bytes) / (1 << 20) / seconds
                          : 0.0)
        .Cell(streams == 1 ? "serial baseline" : "");
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: fragments/object climbs with stream count — each\n"
      "file's appends are separated by its neighbours', so extension\n"
      "fails chunk after chunk, confirming the paper's prediction.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
