// Ablation — allocation policy shoot-out over the paper's workload.
//
// DESIGN.md calls out four design decisions in the NTFS-like allocator:
// the run-selection rule, the run-cache size, deferred (journal-delayed)
// frees, and extension attempts. This bench swaps each out, and also
// runs the textbook baselines (first/best/worst-fit and the DTSS buddy
// system from §3.4) through the identical safe-write churn.

#include <cstdio>
#include <functional>
#include <memory>

#include "alloc/buddy_allocator.h"
#include "alloc/policy_allocator.h"
#include "alloc/run_cache_allocator.h"
#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "bench_common.h"
#include "util/table_writer.h"
#include "workload/getput_runner.h"

namespace lor {
namespace bench {
namespace {

struct Variant {
  std::string label;
  std::function<std::unique_ptr<alloc::ExtentAllocator>(uint64_t, uint64_t)>
      make;  ///< (total_clusters, reserved) -> allocator; null = default.
};

void Run(const Options& options) {
  PrintBanner("Ablation: allocation policies under safe-write churn",
              "Sections 2, 3.2, 3.4 (policy baselines and design choices)",
              options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  const std::vector<double> ages = {2.0, 4.0, 8.0};

  using alloc::FitPolicy;
  using alloc::PolicyAllocator;
  using alloc::PolicyAllocatorOptions;
  using alloc::RunCacheAllocator;
  using alloc::RunCacheOptions;
  using alloc::RunSelection;

  std::vector<Variant> variants;
  variants.push_back({"ntfs-like (default)", nullptr});
  variants.push_back(
      {"ntfs-like, immediate free", [](uint64_t n, uint64_t r) {
         RunCacheOptions o;
         o.deferred_free = false;
         return std::make_unique<RunCacheAllocator>(n, o, r);
       }});
  variants.push_back({"ntfs-like, no extension", [](uint64_t n, uint64_t r) {
                        RunCacheOptions o;
                        o.allow_extension = false;
                        return std::make_unique<RunCacheAllocator>(n, o, r);
                      }});
  variants.push_back({"ntfs-like, largest-first", [](uint64_t n, uint64_t r) {
                        RunCacheOptions o;
                        o.selection = RunSelection::kLargestFirst;
                        return std::make_unique<RunCacheAllocator>(n, o, r);
                      }});
  variants.push_back({"ntfs-like, cursor sweep", [](uint64_t n, uint64_t r) {
                        RunCacheOptions o;
                        o.selection = RunSelection::kCursorSweep;
                        return std::make_unique<RunCacheAllocator>(n, o, r);
                      }});
  for (FitPolicy policy : {FitPolicy::kFirstFit, FitPolicy::kBestFit,
                           FitPolicy::kWorstFit, FitPolicy::kNextFit}) {
    variants.push_back(
        {std::string(alloc::FitPolicyName(policy)) + " (immediate)",
         [policy](uint64_t n, uint64_t r) {
           PolicyAllocatorOptions o;
           o.policy = policy;
           return std::make_unique<PolicyAllocator>(n, o, r);
         }});
  }

  TableWriter table({"allocator", "frag @2", "frag @4", "frag @8",
                     "free-space frag", "read MB/s @8"});
  for (const Variant& variant : variants) {
    core::FsRepositoryConfig config;
    config.volume_bytes = volume;
    const uint64_t clusters = volume / config.store.cluster_bytes;
    const uint64_t reserved = static_cast<uint64_t>(
        static_cast<double>(clusters) * config.store.mft_zone_fraction);
    std::unique_ptr<core::FsRepository> repo;
    if (variant.make) {
      repo = std::make_unique<core::FsRepository>(
          config, variant.make(clusters, reserved));
    } else {
      repo = std::make_unique<core::FsRepository>(config);
    }
    workload::WorkloadConfig wc = options.MakeWorkloadConfig();
    wc.sizes = workload::SizeDistribution::Constant(2 * kMiB);
    auto checkpoints = RunAging(repo.get(), wc, ages);
    table.Row().Cell(variant.label);
    if (!checkpoints.ok()) {
      for (int i = 0; i < 5; ++i) table.Cell("-");
      continue;
    }
    for (size_t i = 1; i < checkpoints->size(); ++i) {
      table.Cell((*checkpoints)[i].fragmentation.fragments_per_object);
    }
    table.Cell(repo->store()->allocator()->FreeStats().external_fragmentation,
               3);
    table.Cell(checkpoints->back().read.mb_per_s());
  }

  // The buddy system trades internal waste for zero external
  // fragmentation; run it at a lower occupancy so the power-of-two
  // rounding (2 MiB objects round cleanly, but temp+live coexistence
  // doubles the footprint) fits.
  {
    core::FsRepositoryConfig config;
    config.volume_bytes = volume;
    // The buddy discipline allocates whole blocks, so objects must be
    // placed in one piece: pair it with the size-hint interface.
    config.preallocate_on_safe_write = true;
    const uint64_t clusters = volume / config.store.cluster_bytes;
    auto repo = std::make_unique<core::FsRepository>(
        config, std::make_unique<alloc::BuddyAllocator>(clusters));
    workload::WorkloadConfig wc = options.MakeWorkloadConfig();
    wc.sizes = workload::SizeDistribution::Constant(2 * kMiB);
    wc.target_occupancy = 0.4;
    auto checkpoints = RunAging(repo.get(), wc, ages);
    table.Row().Cell("buddy system (DTSS), 40% full");
    if (checkpoints.ok()) {
      for (size_t i = 1; i < checkpoints->size(); ++i) {
        table.Cell((*checkpoints)[i].fragmentation.fragments_per_object);
      }
      table.Cell("n/a");
      table.Cell(checkpoints->back().read.mb_per_s());
    }
  }

  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: the buddy system never fragments externally (its\n"
      "cost is internal waste, §3.4); immediate-free and whole-object\n"
      "fit policies under-fragment relative to the NTFS-like default\n"
      "because real reuse is deferred and request-granular.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
