// Figure 7 (contended) — shared-spindle multi-client scaling: what the
// multi-client sweep looks like when several shards' volumes live on
// ONE physical disk instead of a spindle each.
//
// fig7_multi_client gives every shard a dedicated spindle, so aggregate
// MB/s scales ~linearly with the shard count. Production consolidation
// maps several clients' volumes onto disjoint regions of one drive:
// interleaved request streams then drag the shared head across region
// boundaries, and every such crossing is a seek that a dedicated layout
// would not have paid. This bench sweeps shards x owners-per-spindle x
// both back ends (core::RepositoryFactory::set_spindle_topology over
// sim::SpindlePlane) and reports the interference explicitly:
//
//   - interference seeks / interference s: seeks charged because the
//     previous request on the spindle belonged to a different owner —
//     the contention cost, identically zero on dedicated spindles;
//   - queue wait s: simulated seconds operations sat in the plane's
//     round queues before the head reached them;
//   - the wall columns: real host seconds per phase (shards submit
//     concurrently and overlap host work with peers' service rounds;
//     --no-overlap serializes them as the A/B baseline).
//
// Expected shape: aggregate MB/s is sublinear in the shard count once
// owners/spindle > 1 (and degrades as owners grow), interference seeks
// are zero only in the dedicated rows, and SPTF (default) beats FIFO
// (--fifo) on busy time at equal work.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner(
      "Figure 7 (contended): shared-spindle multi-client scaling",
      "consolidation counterpart of Figure 7 (multi-client extension)",
      options);

  const uint64_t volume = options.ScaleBytes(16 * kGiB);
  const std::vector<double> ages = {1.5};
  const sim::SchedPolicy policy =
      options.fifo ? sim::SchedPolicy::kFifo : sim::SchedPolicy::kSptf;
  const uint32_t max_shards = options.shards_set ? options.shards : 8;
  std::vector<uint32_t> sweep;
  for (uint64_t n = 1; n < max_shards; n *= 2) {
    sweep.push_back(static_cast<uint32_t>(n));
  }
  sweep.push_back(max_shards);
  const std::vector<uint32_t> owner_sweep =
      options.owners_per_spindle > 0
          ? std::vector<uint32_t>{options.owners_per_spindle}
          : std::vector<uint32_t>{1, 2, 4};

  TableWriter table({"backend", "shards", "owners/spindle", "spindles",
                     "load mb/s", "aged write mb/s", "read mb/s",
                     "interference seeks", "interference s", "queue wait s",
                     "device busy s", "age wall s", "read wall s"});
  for (Backend backend : {Backend::kDatabase, Backend::kFilesystem}) {
    auto factory = MakeRepositoryFactory(backend, volume, 64 * kKiB,
                                         options.cache_mb << 20);
    for (uint32_t shards : sweep) {
      for (uint32_t owners : owner_sweep) {
        // owners > shards collapses to the all-shards-on-one-spindle
        // deployment already measured at owners == shards.
        if (owners > shards) continue;
        core::SpindleTopology topology;
        topology.owners_per_spindle = owners;
        topology.policy = policy;
        topology.seed = options.seed;
        factory->set_spindle_topology(topology);

        workload::WorkloadConfig config = options.MakeWorkloadConfig();
        config.sizes = workload::SizeDistribution::Constant(512 * kKiB);

        auto checkpoints = RunShardedAging(*factory, shards, config, ages,
                                           /*probe_reads=*/true,
                                           options.wall_repeats);
        if (!checkpoints.ok()) {
          std::fprintf(stderr, "%s x%u owners=%u failed: %s\n",
                       factory->name().c_str(), shards, owners,
                       checkpoints.status().ToString().c_str());
          continue;
        }
        const AgingCheckpoint& loaded = checkpoints->front();
        const AgingCheckpoint& aged = checkpoints->back();
        table.Row()
            .Cell(factory->name())
            .Cell(static_cast<uint64_t>(shards))
            .Cell(static_cast<uint64_t>(owners))
            .Cell(static_cast<uint64_t>((shards + owners - 1) / owners))
            .Cell(loaded.write.mb_per_s())
            .Cell(aged.write.mb_per_s())
            .Cell(aged.read.mb_per_s())
            .Cell(aged.device.interference_seeks)
            .Cell(aged.device.interference_seek_time_s)
            .Cell(aged.device.queue_wait_s)
            .Cell(aged.device.busy_time_s)
            .Cell(aged.write.host_seconds, 3)
            .Cell(aged.read.host_seconds, 3);
      }
    }
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: the owners/spindle=1 rows are the dedicated layout\n"
      "(zero interference by construction). Packing more shards onto a\n"
      "spindle turns aggregate MB/s sublinear: the shared head pays an\n"
      "interference seek whenever consecutive service crosses an owner\n"
      "boundary, and queue wait grows as each owner's round share\n"
      "shrinks. Wall columns are real host seconds (not simulated):\n"
      "shards submit concurrently and overlap host work with peers'\n"
      "service; rerun with --no-overlap for the serialized baseline.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
