// Ablation — the effect of the client's write request size on long-term
// fragmentation (paper §5.4: "modifying the size of the write requests
// that append to NTFS files and database BLOBs changes long-term
// fragmentation behavior, supporting this theory"; §5.3 notes the
// convergence to one fragment per 64 KB request "warrants further
// study" — this bench is that study).

#include <cstdio>

#include "bench_common.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Ablation: write request size vs fragmentation",
              "Sections 5.3-5.4 (write-request-size hypothesis)", options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  const uint64_t object_size = 2 * kMiB;
  const std::vector<uint64_t> request_sizes = {16 * kKiB, 64 * kKiB,
                                               256 * kKiB, kMiB};
  const std::vector<double> ages = {4.0, 8.0};

  TableWriter table({"write request", "backend", "frag @ age 4",
                     "frag @ age 8", "object/request"});
  for (uint64_t request : request_sizes) {
    for (Backend backend : {Backend::kDatabase, Backend::kFilesystem}) {
      auto repo = MakeRepository(backend, volume, request);
      workload::WorkloadConfig config = options.MakeWorkloadConfig();
      config.sizes = workload::SizeDistribution::Constant(object_size);
      auto checkpoints = RunAging(repo.get(), config, ages,
                                  /*probe_reads=*/false);
      table.Row().Cell(FormatBytes(request)).Cell(repo->name());
      if (!checkpoints.ok()) {
        table.Cell(checkpoints.status().ToString()).Cell("-").Cell("-");
        continue;
      }
      table.Cell((*checkpoints)[1].fragmentation.fragments_per_object)
          .Cell((*checkpoints)[2].fragmentation.fragments_per_object)
          .Cell(static_cast<uint64_t>(object_size / request));
    }
  }
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nShape check: larger write requests mean coarser allocation and\n"
      "fewer fragments for the filesystem. Known deviation: our database\n"
      "engine allocates LOB pages individually inside the allocation\n"
      "unit, so its layout is insensitive to the client request size\n"
      "(the paper observed sensitivity in both systems).\n");
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
