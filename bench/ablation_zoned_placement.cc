// Ablation — heat-based zone placement (paper §3.4: multi-zone drives
// transfer faster in outer zones; Ghandeharizadeh et al. report 20-40%
// FTP-workload gains from placing popular files there and migrating
// online; NTFS's defragmenter moves boot files to faster bands).
//
// A skewed workload (90% of reads hit 10% of files) runs on a mostly
// full volume, so hot files start scattered across all zones. We
// measure hot-read throughput, migrate the hot set outward, and measure
// again — including the migration's own cost.

#include <cstdio>

#include "core/fs_repository.h"
#include "fs/zoned_placement.h"
#include "bench_common.h"
#include "util/random.h"
#include "util/table_writer.h"

namespace lor {
namespace bench {
namespace {

void Run(const Options& options) {
  PrintBanner("Ablation: hot files in fast zones",
              "Section 3.4 (multi-zone placement)", options);

  const uint64_t volume = options.ScaleBytes(40 * kGiB);
  const uint64_t object_size = 4 * kMiB;

  core::FsRepositoryConfig config;
  config.volume_bytes = volume;
  // The cited study served FTP from local disks; lift the SMB streaming
  // cap so media bandwidth (the zone effect) is visible.
  config.store.costs.fs_stream_bandwidth = 200.0 * 1e6;
  core::FsRepository repo(config);

  // Fill to 85% so files span the full zone range.
  uint64_t objects = 0;
  while (repo.live_bytes() + object_size <
         static_cast<uint64_t>(0.85 * static_cast<double>(volume))) {
    if (!repo.Put("obj" + std::to_string(objects), object_size).ok()) break;
    ++objects;
  }

  // Age out a cold band of the oldest (outermost) objects — archived
  // data near the front of the volume gets deleted, opening fast-zone
  // space the hot set could occupy.
  const uint64_t cold_deleted = objects / 8;
  for (uint64_t i = 0; i < cold_deleted; ++i) {
    Status s = repo.Delete("obj" + std::to_string(i));
    (void)s;
  }
  repo.store()->allocator()->CommitPending();

  Rng rng(options.seed);
  // The hot set is spread uniformly across the surviving population
  // (popularity is uncorrelated with placement): every 10th object.
  const uint64_t survivors = objects - cold_deleted;
  const uint64_t hot_count = std::max<uint64_t>(1, survivors / 10);
  auto hot_name = [&](uint64_t h) {
    return "obj" + std::to_string(cold_deleted + h * 10 % survivors);
  };
  auto pick = [&]() -> std::string {
    // 90% of reads hit the hot set.
    if (rng.Bernoulli(0.9)) return hot_name(rng.Uniform(hot_count));
    return "obj" + std::to_string(cold_deleted + rng.Uniform(survivors));
  };

  auto probe = [&](int reads) {
    const double t0 = repo.now();
    uint64_t bytes = 0;
    for (int i = 0; i < reads; ++i) {
      if (repo.Get(pick()).ok()) bytes += object_size;
    }
    const double seconds = repo.now() - t0;
    return seconds > 0 ? static_cast<double>(bytes) / (1 << 20) / seconds
                       : 0.0;
  };

  const double before = probe(2000);  // Also builds the heat counters.
  fs::ZonedPlacement placement(repo.store());
  auto report = placement.MigrateHotFiles(0.10);
  if (!report.ok()) {
    std::fprintf(stderr, "migration failed: %s\n",
                 report.status().ToString().c_str());
    return;
  }
  const double after = probe(2000);

  TableWriter table({"metric", "before", "after"});
  table.Row().Cell("skewed read throughput (MB/s)").Cell(before).Cell(after);
  table.Row()
      .Cell("hot-set centroid (fraction of volume)")
      .Cell(report->hot_centroid_before, 3)
      .Cell(report->hot_centroid_after, 3);
  table.Row()
      .Cell("files moved / bytes moved")
      .Cell(static_cast<uint64_t>(report->files_moved))
      .Cell(FormatBytes(report->bytes_moved));
  if (options.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  std::printf(
      "\nMigration itself consumed %s of simulated time.\n"
      "Shape check: the hot centroid moves toward offset 0 (the fast\n"
      "outer zone) and skewed read throughput improves — the cited work\n"
      "saw 20-40%% on FTP workloads; the gain here is bounded by the\n"
      "65/35 MB/s zone ratio and the per-op overheads.\n",
      FormatSeconds(report->elapsed_seconds).c_str());
}

}  // namespace
}  // namespace bench
}  // namespace lor

int main(int argc, char** argv) {
  lor::bench::Run(lor::bench::Options::FromArgs(argc, argv));
  return 0;
}
