// Quickstart: store, read, replace, and delete objects through the
// ObjectRepository API on both back ends, then inspect fragmentation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <vector>

#include "core/db_repository.h"
#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "util/units.h"

using namespace lor;  // NOLINT — example brevity.

namespace {

void Demo(core::ObjectRepository* repo) {
  std::printf("--- %s repository (%s volume) ---\n", repo->name().c_str(),
              FormatBytes(repo->volume_bytes()).c_str());

  // Store a 1 MB object carrying real bytes.
  std::vector<uint8_t> photo(kMiB);
  for (size_t i = 0; i < photo.size(); ++i) {
    photo[i] = static_cast<uint8_t>(i * 131);
  }
  Status s = repo->Put("vacation/beach.jpg", photo.size(), photo);
  if (!s.ok()) {
    std::printf("put failed: %s\n", s.ToString().c_str());
    return;
  }

  // Read it back and verify.
  std::vector<uint8_t> back;
  s = repo->Get("vacation/beach.jpg", &back);
  std::printf("get: %s, %s, intact=%s\n", s.ToString().c_str(),
              FormatBytes(back.size()).c_str(),
              back == photo ? "yes" : "NO");

  // Atomically replace it with a re-edited version (the paper's safe
  // write: the old version remains readable until the swap commits).
  std::vector<uint8_t> edited(2 * kMiB, 0x5A);
  s = repo->SafeWrite("vacation/beach.jpg", edited.size(), edited);
  std::printf("safe write: %s, size now %s\n", s.ToString().c_str(),
              FormatBytes(repo->GetSize("vacation/beach.jpg").value_or(0))
                  .c_str());

  // Physical layout and fragmentation.
  auto layout = repo->GetLayout("vacation/beach.jpg");
  if (layout.ok()) {
    std::printf("layout: %llu fragment(s)\n",
                static_cast<unsigned long long>(
                    alloc::CountFragments(*layout)));
  }
  core::FragmentationReport report = core::AnalyzeFragmentation(*repo);
  std::printf("volume: %s\n", report.ToString().c_str());
  std::printf("simulated time spent: %s\n\n",
              FormatSeconds(repo->now()).c_str());

  s = repo->Delete("vacation/beach.jpg");
  std::printf("delete: %s\n\n", s.ToString().c_str());
}

}  // namespace

int main() {
  // Both repositories retain data so reads verify round trips; real
  // experiments use the default metadata-only mode for speed.
  core::FsRepositoryConfig fs_config;
  fs_config.volume_bytes = 2 * kGiB;
  fs_config.data_mode = sim::DataMode::kRetain;
  core::FsRepository fs(fs_config);
  Demo(&fs);

  core::DbRepositoryConfig db_config;
  db_config.volume_bytes = 2 * kGiB;
  db_config.data_mode = sim::DataMode::kRetain;
  core::DbRepository db(db_config);
  Demo(&db);

  std::printf(
      "Folklore check (paper §3.1): the database handled the small\n"
      "object with fewer simulated milliseconds per op; try a 100 MB\n"
      "object and the filesystem wins.\n");
  return 0;
}
