// Photo sharing service — the paper's motivating web application
// (§1, §3.2): users upload albums of photos, browse them, and later
// delete whole albums ("pictures shared for an event are often
// uploaded and later deleted as a group"). Metadata lives in a
// database either way; this example asks where the *photos* should go,
// and shows how the answer shifts as the store ages.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/db_repository.h"
#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "util/random.h"
#include "workload/size_distribution.h"

using namespace lor;  // NOLINT — example brevity.

namespace {

constexpr uint64_t kVolume = 8 * kGiB;
constexpr int kPhotosPerAlbum = 24;
constexpr int kAlbums = 120;

struct ServiceStats {
  double upload_seconds = 0;
  double browse_seconds = 0;
  uint64_t bytes = 0;
};

// Runs the photo-sharing season: albums arrive, get browsed, and a
// fraction of old albums is deleted as a group; freed space is reused
// by the next season's uploads.
ServiceStats RunSeason(core::ObjectRepository* repo, uint64_t mean_photo,
                       int seasons) {
  ServiceStats stats;
  Rng rng(2007);
  auto sizes = workload::SizeDistribution::LogNormal(mean_photo, 0.4);
  std::vector<std::vector<std::string>> albums;
  std::vector<std::vector<uint64_t>> album_sizes;

  int next_album = 0;
  for (int season = 0; season < seasons; ++season) {
    // Upload new albums.
    for (int a = 0; a < kAlbums / seasons; ++a) {
      std::vector<std::string> keys;
      std::vector<uint64_t> sz;
      const double t0 = repo->now();
      for (int p = 0; p < kPhotosPerAlbum; ++p) {
        const std::string key = "album" + std::to_string(next_album) +
                                "/img" + std::to_string(p) + ".jpg";
        const uint64_t size = sizes.Sample(&rng);
        if (!repo->Put(key, size).ok()) break;
        keys.push_back(key);
        sz.push_back(size);
        stats.bytes += size;
      }
      stats.upload_seconds += repo->now() - t0;
      albums.push_back(std::move(keys));
      album_sizes.push_back(std::move(sz));
      ++next_album;
    }
    // Browse: random visitors view random photos.
    const double t0 = repo->now();
    for (int v = 0; v < 200; ++v) {
      const auto& album = albums[rng.Uniform(albums.size())];
      if (album.empty()) continue;
      Status s = repo->Get(album[rng.Uniform(album.size())]);
      (void)s;
    }
    stats.browse_seconds += repo->now() - t0;
    // Event cleanup: the oldest quarter of albums is deleted *as a
    // group* — the structured deallocation the paper contrasts with
    // random-delete theory models.
    const size_t doomed = albums.size() / 4;
    for (size_t a = 0; a < doomed; ++a) {
      for (const std::string& key : albums[a]) {
        Status s = repo->Delete(key);
        (void)s;
      }
    }
    albums.erase(albums.begin(), albums.begin() + doomed);
    album_sizes.erase(album_sizes.begin(), album_sizes.begin() + doomed);
  }
  return stats;
}

void Compare(uint64_t mean_photo) {
  std::printf("Photo size ~%s:\n", FormatBytes(mean_photo).c_str());
  for (int backend = 0; backend < 2; ++backend) {
    std::unique_ptr<core::ObjectRepository> repo;
    if (backend == 0) {
      core::FsRepositoryConfig config;
      config.volume_bytes = kVolume;
      repo = std::make_unique<core::FsRepository>(config);
    } else {
      core::DbRepositoryConfig config;
      config.volume_bytes = kVolume;
      repo = std::make_unique<core::DbRepository>(config);
    }
    const ServiceStats stats = RunSeason(repo.get(), mean_photo, 4);
    const auto frag = core::AnalyzeFragmentation(*repo);
    std::printf(
        "  %-10s upload %6.1f s  browse %6.1f s  frag %.2f/object\n",
        repo->name().c_str(), stats.upload_seconds, stats.browse_seconds,
        frag.fragments_per_object);
  }
}

}  // namespace

int main() {
  std::printf("=== photo sharing: where should the photos live? ===\n\n");
  Compare(200 * kKiB);  // Phone-camera JPEGs of the era.
  std::printf("\n");
  Compare(2 * kMiB);    // DSLR originals.
  std::printf(
      "\nPer the paper: below ~256 KB the database wins; in the megabyte\n"
      "range the filesystem catches up as the store ages, and above 1 MB\n"
      "it should hold the photos outright.\n");
  return 0;
}
