// Personal video recorder — the paper's other motivating application
// (§1): "applications such as personal video recorders and media
// subscription servers continuously allocate and delete large,
// transient objects."
//
// A PVR records shows (hundreds of MB each) into a ring of retained
// recordings while playing others back. The example contrasts two
// retention policies — age out the *oldest* recording (FIFO) vs delete
// an *arbitrary* watched recording — demonstrating §3.2's point that
// temporally clustered deallocation preserves contiguous free regions
// while unstructured deletion fragments them; and it shows how much
// the paper's proposed size-hint interface (preallocation) helps,
// since a PVR knows each recording's size budget up front.

#include <cstdio>
#include <deque>
#include <string>

#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "util/random.h"

using namespace lor;  // NOLINT — example brevity.

namespace {

constexpr uint64_t kVolume = 32 * kGiB;
constexpr uint64_t kShowBytes = 700 * kMiB;  // ~30 min at 3 Mbps.
// Retain enough recordings to keep the volume ~80% full — the regime
// the paper identifies as fragmentation-prone.
constexpr int kRetained = 35;
constexpr int kSeasonsToRecord = 160;

enum class Retention { kFifo, kRandom };

void RunPvr(Retention retention, bool preallocate) {
  core::FsRepositoryConfig config;
  config.volume_bytes = kVolume;
  config.preallocate_on_safe_write = preallocate;
  core::FsRepository repo(config);
  Rng rng(99);

  std::deque<std::string> ring;
  double playback_seconds = 0;
  uint64_t playback_bytes = 0;
  int recorded = 0;

  std::printf("--- PVR, %s age-out, %s size hints ---\n",
              retention == Retention::kFifo ? "FIFO" : "random",
              preallocate ? "WITH" : "without");
  for (int show = 0; show < kSeasonsToRecord; ++show) {
    const std::string key = "rec" + std::to_string(show) + ".ts";
    // Record (the tuner writes the stream; sizes vary a little).
    const uint64_t size = kShowBytes + rng.Uniform(64 * kMiB);
    Status s = repo.SafeWrite(key, size);
    if (!s.ok()) {
      std::printf("recording failed: %s\n", s.ToString().c_str());
      return;
    }
    ring.push_back(key);
    ++recorded;
    // Age out one recording once the ring is full: the oldest (FIFO)
    // or an arbitrary watched one (random).
    if (ring.size() > kRetained) {
      const size_t victim = retention == Retention::kFifo
                                ? 0
                                : rng.Uniform(ring.size() - 1);
      Status del = repo.Delete(ring[victim]);
      (void)del;
      ring.erase(ring.begin() + static_cast<ptrdiff_t>(victim));
    }
    // Evening playback: stream one retained recording.
    if (show % 4 == 3) {
      const std::string& pick = ring[rng.Uniform(ring.size())];
      const double t0 = repo.now();
      Status play = repo.Get(pick);
      (void)play;
      playback_seconds += repo.now() - t0;
      playback_bytes += repo.GetSize(pick).value_or(0);
    }
    if ((show + 1) % 40 == 0) {
      const auto frag = core::AnalyzeFragmentation(repo);
      std::printf(
          "  after %3d recordings: %.2f fragments/recording, playback %s\n",
          show + 1, frag.fragments_per_object,
          FormatThroughput(playback_bytes, playback_seconds).c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== personal video recorder: transient large objects ===\n\n");
  RunPvr(Retention::kFifo, /*preallocate=*/false);
  RunPvr(Retention::kRandom, /*preallocate=*/false);
  RunPvr(Retention::kRandom, /*preallocate=*/true);
  std::printf(
      "FIFO age-out frees recordings in the order they were written, so\n"
      "freed space coalesces into large regions (§3.2's structured\n"
      "deallocation); random deletion fragments. And since a PVR knows\n"
      "each recording's size budget, the paper's proposed create-time\n"
      "size hint (§6) restores contiguity even under random deletion.\n");
  return 0;
}
