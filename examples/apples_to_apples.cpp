// Apples-to-apples comparison via trace replay (§3.3's "trace based
// load generation"): capture one concrete op sequence from a live
// workload, then replay the *identical* sequence against both back
// ends. Unlike statistically-identical workloads, a shared trace makes
// the comparison exact — and the trace file is a human-readable
// artifact you can save, diff, and rerun.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/db_repository.h"
#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "util/random.h"
#include "workload/size_distribution.h"
#include "workload/trace.h"

using namespace lor;  // NOLINT — example brevity.

namespace {

constexpr uint64_t kVolume = 4 * kGiB;

// Capture a WebDAV-ish authoring session: documents created, revised
// (safe-written) repeatedly, read by collaborators, some discarded.
workload::Trace CaptureSession() {
  core::FsRepositoryConfig config;
  config.volume_bytes = kVolume;
  core::FsRepository scratch(config);
  workload::Trace trace;
  workload::RecordingRepository recorder(&scratch, &trace);

  Rng rng(4242);
  auto sizes = workload::SizeDistribution::Uniform(768 * kKiB);
  std::vector<std::string> docs;
  int created = 0;
  for (int step = 0; step < 2000; ++step) {
    const double r = rng.NextDouble();
    if (docs.size() < 40 || r < 0.15) {
      const std::string key = "doc" + std::to_string(created++) + ".odt";
      if (recorder.Put(key, sizes.Sample(&rng)).ok()) docs.push_back(key);
    } else if (r < 0.60) {
      // Revise: wholesale replacement, as WebDAV/SharePoint do (§1).
      Status s = recorder.SafeWrite(docs[rng.Uniform(docs.size())],
                                    sizes.Sample(&rng));
      (void)s;
    } else if (r < 0.95) {
      Status s = recorder.Get(docs[rng.Uniform(docs.size())]);
      (void)s;
    } else if (docs.size() > 10) {
      const size_t i = rng.Uniform(docs.size());
      if (recorder.Delete(docs[i]).ok()) {
        docs[i] = docs.back();
        docs.pop_back();
      }
    }
  }
  return trace;
}

void Replay(const workload::Trace& trace, core::ObjectRepository* repo) {
  const double t0 = repo->now();
  Status s = trace.Replay(repo);
  const double elapsed = repo->now() - t0;
  const auto frag = core::AnalyzeFragmentation(*repo);
  std::printf("  %-10s %s in %7.1f s  -> %.2f fragments/object, %s\n",
              repo->name().c_str(),
              s.ok() ? "replayed" : s.ToString().c_str(), elapsed,
              frag.fragments_per_object,
              FormatThroughput(trace.BytesWritten(), elapsed).c_str());
}

}  // namespace

int main() {
  std::printf("=== trace capture & cross-backend replay ===\n\n");
  workload::Trace trace = CaptureSession();
  std::printf("captured %zu ops, %s written\n",
              trace.size(), FormatBytes(trace.BytesWritten()).c_str());

  // Persist the trace as a reviewable artifact.
  {
    std::ofstream out("/tmp/lorepo_session.trace");
    trace.Serialize(out);
  }
  std::printf("trace saved to /tmp/lorepo_session.trace\n\n");

  // Reload it (round trip through the text format) and replay on both
  // back ends.
  std::ifstream in("/tmp/lorepo_session.trace");
  auto reloaded = workload::Trace::Deserialize(in);
  if (!reloaded.ok()) {
    std::printf("reload failed: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }

  core::FsRepositoryConfig fs_config;
  fs_config.volume_bytes = kVolume;
  core::FsRepository fs(fs_config);
  Replay(*reloaded, &fs);

  core::DbRepositoryConfig db_config;
  db_config.volume_bytes = kVolume;
  core::DbRepository db(db_config);
  Replay(*reloaded, &db);

  std::printf(
      "\nSame ops, same order, same sizes — any difference is purely the\n"
      "storage system's layout policy.\n");
  return 0;
}
