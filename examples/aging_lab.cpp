// aging_lab: a command-line laboratory for custom aging experiments —
// the tool a storage engineer would actually run against this testbed.
//
// Usage:
//   aging_lab [--backend=fs|db|both] [--object-size=10M]
//             [--dist=constant|uniform|lognormal] [--volume=4G]
//             [--occupancy=0.5] [--max-age=10] [--step=2]
//             [--write-request=64K] [--seed=42] [--csv]
//
// Prints, per storage-age checkpoint: fragmentation, read and write
// throughput, and free-space statistics. Exactly the sweep behind the
// paper's figures, but with every knob exposed.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/db_repository.h"
#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "util/table_writer.h"
#include "util/units.h"
#include "workload/getput_runner.h"

using namespace lor;  // NOLINT — example brevity.

namespace {

struct LabConfig {
  std::string backend = "both";
  uint64_t object_size = 10 * kMiB;
  std::string dist = "constant";
  uint64_t volume = 4 * kGiB;
  double occupancy = 0.5;
  double max_age = 10.0;
  double step = 2.0;
  uint64_t write_request = 64 * kKiB;
  uint64_t seed = 42;
  bool csv = false;
  bool help = false;
};

LabConfig Parse(int argc, char** argv) {
  LabConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--backend=", 0) == 0) {
      config.backend = value("--backend=");
    } else if (arg.rfind("--object-size=", 0) == 0) {
      config.object_size = ParseBytes(value("--object-size="));
    } else if (arg.rfind("--dist=", 0) == 0) {
      config.dist = value("--dist=");
    } else if (arg.rfind("--volume=", 0) == 0) {
      config.volume = ParseBytes(value("--volume="));
    } else if (arg.rfind("--occupancy=", 0) == 0) {
      config.occupancy = std::atof(value("--occupancy="));
    } else if (arg.rfind("--max-age=", 0) == 0) {
      config.max_age = std::atof(value("--max-age="));
    } else if (arg.rfind("--step=", 0) == 0) {
      config.step = std::atof(value("--step="));
    } else if (arg.rfind("--write-request=", 0) == 0) {
      config.write_request = ParseBytes(value("--write-request="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::strtoull(value("--seed="), nullptr, 10);
    } else if (arg == "--csv") {
      config.csv = true;
    } else {
      config.help = true;
    }
  }
  if (config.object_size == 0 || config.volume == 0 ||
      config.write_request == 0 || config.occupancy <= 0 ||
      config.occupancy >= 1 || config.step <= 0) {
    config.help = true;
  }
  return config;
}

workload::SizeDistribution MakeDist(const LabConfig& config) {
  if (config.dist == "uniform") {
    return workload::SizeDistribution::Uniform(config.object_size);
  }
  if (config.dist == "lognormal") {
    return workload::SizeDistribution::LogNormal(config.object_size);
  }
  return workload::SizeDistribution::Constant(config.object_size);
}

int RunOne(const LabConfig& config, const std::string& backend) {
  std::unique_ptr<core::ObjectRepository> repo;
  if (backend == "fs") {
    core::FsRepositoryConfig rc;
    rc.volume_bytes = config.volume;
    rc.write_request_bytes = config.write_request;
    repo = std::make_unique<core::FsRepository>(rc);
  } else {
    core::DbRepositoryConfig rc;
    rc.volume_bytes = config.volume;
    rc.store.write_request_bytes = config.write_request;
    repo = std::make_unique<core::DbRepository>(rc);
  }

  workload::WorkloadConfig wc;
  wc.sizes = MakeDist(config);
  wc.target_occupancy = config.occupancy;
  wc.seed = config.seed;
  workload::GetPutRunner runner(repo.get(), wc);

  std::printf("# %s: %s objects (%s), %s volume, %.0f%% full, %s requests\n",
              repo->name().c_str(), FormatBytes(config.object_size).c_str(),
              config.dist.c_str(), FormatBytes(config.volume).c_str(),
              config.occupancy * 100.0,
              FormatBytes(config.write_request).c_str());

  TableWriter table({"age", "objects", "frag/obj", "p99 frag",
                     "read MB/s", "write MB/s", "free space", "note"});
  auto load = runner.BulkLoad();
  if (!load.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n",
                 load.status().ToString().c_str());
    return 1;
  }
  auto read0 = runner.MeasureReadThroughput();
  auto frag0 = runner.Fragmentation();
  table.Row()
      .Cell(0.0, 1)
      .Cell(runner.object_count())
      .Cell(frag0.fragments_per_object)
      .Cell(frag0.p99_fragments)
      .Cell(read0.ok() ? read0->mb_per_s() : 0.0)
      .Cell(load->mb_per_s())
      .Cell(FormatBytes(repo->free_bytes()))
      .Cell("bulk load");
  for (double age = config.step; age <= config.max_age + 1e-9;
       age += config.step) {
    auto aged = runner.AgeTo(age);
    if (!aged.ok()) {
      std::fprintf(stderr, "aging to %.1f failed: %s\n", age,
                   aged.status().ToString().c_str());
      break;
    }
    auto read = runner.MeasureReadThroughput();
    auto frag = runner.Fragmentation();
    table.Row()
        .Cell(age, 1)
        .Cell(runner.object_count())
        .Cell(frag.fragments_per_object)
        .Cell(frag.p99_fragments)
        .Cell(read.ok() ? read->mb_per_s() : 0.0)
        .Cell(aged->mb_per_s())
        .Cell(FormatBytes(repo->free_bytes()))
        .Cell("");
  }
  if (config.csv) {
    table.PrintCsv();
  } else {
    table.PrintText();
  }
  Status consistent = repo->CheckConsistency();
  std::printf("consistency: %s; simulated time: %s\n\n",
              consistent.ToString().c_str(),
              FormatSeconds(repo->now()).c_str());
  return consistent.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const LabConfig config = Parse(argc, argv);
  if (config.help) {
    std::printf(
        "usage: aging_lab [--backend=fs|db|both] [--object-size=10M]\n"
        "                 [--dist=constant|uniform|lognormal]\n"
        "                 [--volume=4G] [--occupancy=0.5] [--max-age=10]\n"
        "                 [--step=2] [--write-request=64K] [--seed=N]\n"
        "                 [--csv]\n");
    return 2;
  }
  int rc = 0;
  if (config.backend == "fs" || config.backend == "both") {
    rc |= RunOne(config, "fs");
  }
  if (config.backend == "db" || config.backend == "both") {
    rc |= RunOne(config, "db");
  }
  return rc;
}
