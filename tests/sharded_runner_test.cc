// Tests for the sharded multi-client execution subsystem: ShardRouter
// partitioning, RepositoryFactory construction, and ShardedRunner
// determinism — same seed ⇒ identical per-shard key sets, merged
// counts, and fragmentation reports — plus exact N=1 equivalence with
// the single-threaded GetPutRunner on both back ends.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/repository_factory.h"
#include "core/shard_router.h"
#include "workload/getput_runner.h"
#include "workload/sharded_runner.h"

namespace lor {
namespace workload {
namespace {

constexpr uint64_t kVolume = 512 * kMiB;

std::unique_ptr<core::RepositoryFactory> MakeFactory(
    const std::string& backend, uint64_t volume = kVolume) {
  if (backend == "filesystem") {
    core::FsRepositoryConfig config;
    config.volume_bytes = volume;
    return std::make_unique<core::FsRepositoryFactory>(config);
  }
  core::DbRepositoryConfig config;
  config.volume_bytes = volume;
  return std::make_unique<core::DbRepositoryFactory>(config);
}

WorkloadConfig SmallWorkload(uint64_t seed = 42) {
  WorkloadConfig config;
  config.sizes = SizeDistribution::Uniform(kMiB);
  config.seed = seed;
  config.read_probe_samples = 64;
  return config;
}

void ExpectSameReport(const core::FragmentationReport& a,
                      const core::FragmentationReport& b) {
  EXPECT_EQ(a.objects, b.objects);
  EXPECT_DOUBLE_EQ(a.fragments_per_object, b.fragments_per_object);
  EXPECT_EQ(a.max_fragments, b.max_fragments);
  EXPECT_EQ(a.p50_fragments, b.p50_fragments);
  EXPECT_EQ(a.p99_fragments, b.p99_fragments);
  EXPECT_DOUBLE_EQ(a.mean_fragment_bytes, b.mean_fragment_bytes);
  EXPECT_DOUBLE_EQ(a.contiguous_fraction, b.contiguous_fraction);
  EXPECT_EQ(a.histogram.count(), b.histogram.count());
}

void ExpectSameSample(const ThroughputSample& a, const ThroughputSample& b) {
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.operations, b.operations);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(ShardRouterTest, StableInRangeAndSingleShardIsZero) {
  core::ShardRouter router(4);
  core::ShardRouter same(4);
  core::ShardRouter one(1);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "obj" + std::to_string(i);
    const uint32_t shard = router.ShardOf(key);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, same.ShardOf(key));  // Stable across instances.
    EXPECT_EQ(one.ShardOf(key), 0u);
  }
}

TEST(ShardRouterTest, RoughlyBalancedOverSequentialKeys) {
  constexpr uint32_t kShards = 8;
  constexpr int kKeys = 8000;
  core::ShardRouter router(kShards);
  std::vector<int> counts(kShards, 0);
  for (int i = 0; i < kKeys; ++i) {
    ++counts[router.ShardOf("obj" + std::to_string(i))];
  }
  for (uint32_t s = 0; s < kShards; ++s) {
    // Expect each shard within 30% of the fair share.
    EXPECT_GT(counts[s], kKeys / kShards * 7 / 10) << "shard " << s;
    EXPECT_LT(counts[s], kKeys / kShards * 13 / 10) << "shard " << s;
  }
}

TEST(ShardRouterTest, ZeroShardCountTreatedAsOne) {
  core::ShardRouter router(0);
  EXPECT_EQ(router.shard_count(), 1u);
  EXPECT_EQ(router.ShardOf("anything"), 0u);
}

TEST(RepositoryFactoryTest, SplitsVolumeEvenlyAndKeepsBackendLabel) {
  for (const char* backend : {"filesystem", "database"}) {
    auto factory = MakeFactory(backend);
    auto whole = factory->Create(0, 1);
    EXPECT_EQ(whole->name(), backend);
    EXPECT_EQ(whole->volume_bytes(), kVolume);
    auto quarter = factory->Create(3, 4);
    EXPECT_EQ(quarter->volume_bytes(), kVolume / 4);
  }
}

TEST(RepositoryFactoryTest, ShardsAreIndependentInstances) {
  auto factory = MakeFactory("filesystem");
  auto a = factory->Create(0, 2);
  auto b = factory->Create(1, 2);
  ASSERT_TRUE(a->Put("k", 64 * kKiB).ok());
  EXPECT_TRUE(a->Exists("k"));
  EXPECT_FALSE(b->Exists("k"));  // No shared namespace or state.
  EXPECT_EQ(b->object_count(), 0u);
}

class ShardedRunnerBackendTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardedRunnerBackendTest, SingleShardMatchesGetPutRunner) {
  const WorkloadConfig config = SmallWorkload();

  auto direct_repo = MakeFactory(GetParam())->Create(0, 1);
  GetPutRunner reference(direct_repo.get(), config);
  auto ref_load = reference.BulkLoad();
  ASSERT_TRUE(ref_load.ok()) << ref_load.status().ToString();
  auto ref_aged = reference.AgeTo(1.0);
  ASSERT_TRUE(ref_aged.ok()) << ref_aged.status().ToString();
  auto ref_read = reference.MeasureReadThroughput();
  ASSERT_TRUE(ref_read.ok());

  auto factory = MakeFactory(GetParam());
  ShardedRunner sharded(*factory, config, 1);
  auto load = sharded.BulkLoad();
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  auto aged = sharded.AgeTo(1.0);
  ASSERT_TRUE(aged.ok()) << aged.status().ToString();
  auto read = sharded.MeasureReadThroughput();
  ASSERT_TRUE(read.ok());

  ExpectSameSample(*load, *ref_load);
  ExpectSameSample(*aged, *ref_aged);
  ExpectSameSample(*read, *ref_read);
  EXPECT_EQ(sharded.object_count(), reference.object_count());
  EXPECT_DOUBLE_EQ(sharded.storage_age(), reference.storage_age());
  ExpectSameReport(sharded.Fragmentation(), reference.Fragmentation());

  // The aggregate device figures match the single device exactly.
  const sim::IoStats ours = sharded.device_stats();
  const sim::IoStats theirs = direct_repo->device_stats();
  EXPECT_EQ(ours.writes, theirs.writes);
  EXPECT_EQ(ours.bytes_written, theirs.bytes_written);
  EXPECT_EQ(ours.seeks, theirs.seeks);
  EXPECT_DOUBLE_EQ(ours.busy_time_s, theirs.busy_time_s);
}

TEST_P(ShardedRunnerBackendTest, DeterministicAcrossRuns) {
  constexpr uint32_t kShards = 4;
  const WorkloadConfig config = SmallWorkload(7);

  auto run = [&](std::vector<std::vector<std::string>>* shard_keys,
                 std::vector<uint64_t>* shard_counts,
                 core::FragmentationReport* report,
                 ThroughputSample* merged) {
    auto factory = MakeFactory(GetParam());
    ShardedRunner runner(*factory, config, kShards);
    auto load = runner.BulkLoad();
    ASSERT_TRUE(load.ok()) << load.status().ToString();
    auto aged = runner.AgeTo(0.5);
    ASSERT_TRUE(aged.ok()) << aged.status().ToString();
    *merged = *load;
    merged->MergeParallel(*aged);
    for (uint32_t s = 0; s < kShards; ++s) {
      shard_keys->push_back(runner.engine(s)->keys());
      shard_counts->push_back(runner.engine(s)->object_count());
    }
    *report = runner.Fragmentation();
  };

  std::vector<std::vector<std::string>> keys_a, keys_b;
  std::vector<uint64_t> counts_a, counts_b;
  core::FragmentationReport report_a, report_b;
  ThroughputSample merged_a, merged_b;
  run(&keys_a, &counts_a, &report_a, &merged_a);
  run(&keys_b, &counts_b, &report_b, &merged_b);

  EXPECT_EQ(counts_a, counts_b);
  EXPECT_EQ(keys_a, keys_b);  // Identical per-shard key sets, in order.
  ExpectSameReport(report_a, report_b);
  ExpectSameSample(merged_a, merged_b);
}

TEST_P(ShardedRunnerBackendTest, ShardKeySetsPartitionTheNamespace) {
  constexpr uint32_t kShards = 4;
  auto factory = MakeFactory(GetParam());
  ShardedRunner runner(*factory, SmallWorkload(), kShards);
  ASSERT_TRUE(runner.BulkLoad().ok());

  std::set<std::string> all;
  uint64_t total = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    for (const std::string& key : runner.engine(s)->keys()) {
      EXPECT_EQ(runner.router().ShardOf(key), s);  // Router-consistent.
      all.insert(key);
      ++total;
    }
  }
  EXPECT_EQ(all.size(), total);  // Disjoint across shards.
  EXPECT_EQ(total, runner.object_count());
  EXPECT_GT(total, 0u);
}

TEST_P(ShardedRunnerBackendTest, MergedStatsSumShards) {
  constexpr uint32_t kShards = 2;
  auto factory = MakeFactory(GetParam());
  ShardedRunner runner(*factory, SmallWorkload(), kShards);
  auto load = runner.BulkLoad();
  ASSERT_TRUE(load.ok()) << load.status().ToString();

  uint64_t bytes = 0, ops = 0;
  double max_seconds = 0.0;
  uint64_t objects = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    objects += runner.engine(s)->object_count();
    max_seconds = std::max(max_seconds, runner.repository(s)->now());
  }
  bytes = load->bytes;
  ops = load->operations;
  EXPECT_EQ(ops, objects);
  EXPECT_GT(bytes, 0u);
  // Elapsed is the max over shards: no shard's clock exceeds it.
  EXPECT_LE(load->seconds, max_seconds + 1e-9);

  // Aggregate device stats are the exact sum of the per-shard devices.
  std::vector<sim::IoStats> parts;
  for (uint32_t s = 0; s < kShards; ++s) {
    parts.push_back(runner.repository(s)->device_stats());
  }
  const sim::IoStats sum = sim::Sum(parts);
  const sim::IoStats merged = runner.device_stats();
  EXPECT_EQ(merged.writes, sum.writes);
  EXPECT_EQ(merged.bytes_written, sum.bytes_written);
  EXPECT_DOUBLE_EQ(merged.busy_time_s, sum.busy_time_s);
}

TEST_P(ShardedRunnerBackendTest, EightShardSmoke) {
  // Exercised under TSan in CI: all eight worker threads drive their
  // shards through every phase concurrently.
  auto factory = MakeFactory(GetParam());
  ShardedRunner runner(*factory, SmallWorkload(), 8);
  auto load = runner.BulkLoad();
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  ASSERT_TRUE(runner.AgeTo(0.25).ok());
  ASSERT_TRUE(runner.MeasureReadThroughput().ok());
  for (uint32_t s = 0; s < runner.shard_count(); ++s) {
    EXPECT_TRUE(runner.repository(s)->CheckConsistency().ok());
  }
  EXPECT_GE(runner.storage_age(), 0.25);
}

TEST_P(ShardedRunnerBackendTest, PhaseErrorsPropagate) {
  auto factory = MakeFactory(GetParam());
  ShardedRunner runner(*factory, SmallWorkload(), 2);
  // Aging before bulk load fails on every shard; the merged result
  // carries the per-shard error.
  EXPECT_TRUE(runner.AgeTo(1.0).status().IsInvalidArgument());
  ASSERT_TRUE(runner.BulkLoad().ok());
  EXPECT_TRUE(runner.BulkLoad().status().IsInvalidArgument());
}

INSTANTIATE_TEST_SUITE_P(Backends, ShardedRunnerBackendTest,
                         ::testing::Values("filesystem", "database"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace workload
}  // namespace lor
