// Tests for the GAM allocation bitmap.

#include <gtest/gtest.h>

#include "db/gam.h"
#include "util/random.h"

namespace lor {
namespace db {
namespace {

TEST(GamTest, StartsFullyAllocated) {
  GamBitmap gam(100);
  EXPECT_EQ(gam.capacity(), 100u);
  EXPECT_EQ(gam.free_count(), 0u);
  EXPECT_EQ(gam.AllocateLowest(), kNoExtent);
}

TEST(GamTest, ReleaseThenAllocateLowestFirst) {
  GamBitmap gam(100);
  ASSERT_TRUE(gam.Release(10, 5).ok());
  ASSERT_TRUE(gam.Release(50, 5).ok());
  EXPECT_EQ(gam.free_count(), 10u);
  EXPECT_EQ(gam.AllocateLowest(), 10u);
  EXPECT_EQ(gam.AllocateLowest(), 11u);
  EXPECT_TRUE(gam.CheckConsistency().ok());
}

TEST(GamTest, AllocateLowestHonoursFrom) {
  GamBitmap gam(100);
  ASSERT_TRUE(gam.Release(10, 5).ok());
  ASSERT_TRUE(gam.Release(50, 5).ok());
  EXPECT_EQ(gam.AllocateLowest(20), 50u);
  EXPECT_EQ(gam.AllocateLowest(0), 10u);
}

TEST(GamTest, DoubleReleaseRejected) {
  GamBitmap gam(100);
  ASSERT_TRUE(gam.Release(10, 5).ok());
  EXPECT_TRUE(gam.Release(12, 1).IsInvalidArgument());
  EXPECT_TRUE(gam.Release(99, 2).IsInvalidArgument());  // Beyond capacity.
}

TEST(GamTest, AllocateSpecific) {
  GamBitmap gam(100);
  ASSERT_TRUE(gam.Release(0, 100).ok());
  ASSERT_TRUE(gam.AllocateSpecific(42).ok());
  EXPECT_FALSE(gam.IsFree(42));
  EXPECT_TRUE(gam.AllocateSpecific(42).IsNoSpace());
  EXPECT_EQ(gam.free_count(), 99u);
}

TEST(GamTest, AllocateRunTakesConsecutive) {
  GamBitmap gam(100);
  ASSERT_TRUE(gam.Release(10, 8).ok());
  ASSERT_TRUE(gam.Release(30, 2).ok());
  auto [first, len] = gam.AllocateRun(5);
  EXPECT_EQ(first, 10u);
  EXPECT_EQ(len, 5u);
  // Next run continues in the remainder.
  auto [first2, len2] = gam.AllocateRun(5);
  EXPECT_EQ(first2, 15u);
  EXPECT_EQ(len2, 3u);  // Run ends where the hole does.
  auto [first3, len3] = gam.AllocateRun(5);
  EXPECT_EQ(first3, 30u);
  EXPECT_EQ(len3, 2u);
  EXPECT_EQ(gam.AllocateRun(1).first, kNoExtent);
}

TEST(GamTest, ScanCrossesWordBoundaries) {
  GamBitmap gam(1 << 16);
  // Free one extent far into the bitmap (beyond several summary words).
  ASSERT_TRUE(gam.Release(50000, 1).ok());
  EXPECT_EQ(gam.AllocateLowest(), 50000u);
  EXPECT_EQ(gam.free_count(), 0u);
}

TEST(GamTest, FromInsideWordScansCorrectly) {
  GamBitmap gam(256);
  ASSERT_TRUE(gam.Release(0, 256).ok());
  EXPECT_EQ(gam.AllocateLowest(63), 63u);
  EXPECT_EQ(gam.AllocateLowest(63), 64u);  // 63 is taken now.
  EXPECT_EQ(gam.AllocateLowest(200), 200u);
}

TEST(GamTest, RandomChurnStaysConsistent) {
  constexpr uint64_t kCapacity = 4096;
  GamBitmap gam(kCapacity);
  ASSERT_TRUE(gam.Release(0, kCapacity).ok());
  Rng rng(17);
  std::vector<uint64_t> live;
  for (int op = 0; op < 20000; ++op) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      const uint64_t e = gam.AllocateLowest();
      if (e == kNoExtent) continue;
      live.push_back(e);
    } else {
      const size_t i = rng.Uniform(live.size());
      ASSERT_TRUE(gam.Release(live[i], 1).ok());
      live[i] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(gam.free_count() + live.size(), kCapacity);
  }
  EXPECT_TRUE(gam.CheckConsistency().ok());
}

TEST(GamTest, LowestFirstReuseIsTheSqlPattern) {
  // After freeing scattered extents, allocation returns them in
  // ascending address order regardless of free order — the reuse
  // discipline behind the paper's linear fragmentation growth.
  GamBitmap gam(1000);
  ASSERT_TRUE(gam.Release(900, 10).ok());
  ASSERT_TRUE(gam.Release(100, 10).ok());
  ASSERT_TRUE(gam.Release(500, 10).ok());
  EXPECT_EQ(gam.AllocateLowest(), 100u);
  for (int i = 0; i < 9; ++i) gam.AllocateLowest();
  EXPECT_EQ(gam.AllocateLowest(), 500u);
}

}  // namespace
}  // namespace db
}  // namespace lor
