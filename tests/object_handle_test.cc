// Tests for the handle-based object access layer: the handle path must
// be observably identical to the name path on both back ends — same
// payload bytes, layouts, sizes, and fragmentation-tracker state after
// identical operation streams, including under ShardedRunner at four
// shards — and handle misuse (use-after-delete, double release, foreign
// or read-only handles) must fail cleanly instead of touching stale
// state. Also covers the recycled safe-write temp records on the
// filesystem back end and the positioned range-read cursor on the
// database back end.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/db_repository.h"
#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "core/object_handle.h"
#include "core/repository_factory.h"
#include "util/random.h"
#include "workload/getput_runner.h"
#include "workload/sharded_runner.h"

namespace lor {
namespace core {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

using RepoFactory =
    std::function<std::unique_ptr<ObjectRepository>(sim::DataMode)>;

std::unique_ptr<ObjectRepository> MakeFs(sim::DataMode mode) {
  FsRepositoryConfig config;
  config.volume_bytes = 256 * kMiB;
  config.data_mode = mode;
  return std::make_unique<FsRepository>(config);
}

std::unique_ptr<ObjectRepository> MakeDb(sim::DataMode mode) {
  DbRepositoryConfig config;
  config.volume_bytes = 256 * kMiB;
  config.data_mode = mode;
  return std::make_unique<DbRepository>(config);
}

struct BackendCase {
  std::string label;
  RepoFactory make;
};

/// Full observable state of a repository, keyed by object.
std::map<std::string, std::pair<alloc::ExtentList, uint64_t>> Snapshot(
    const ObjectRepository& repo) {
  std::map<std::string, std::pair<alloc::ExtentList, uint64_t>> state;
  repo.VisitObjects([&](const std::string& key,
                        const alloc::ExtentList& layout, uint64_t size) {
    state[key] = {layout, size};
  });
  return state;
}

void ExpectIdenticalState(ObjectRepository* name_repo,
                          ObjectRepository* handle_repo) {
  EXPECT_EQ(name_repo->object_count(), handle_repo->object_count());
  EXPECT_EQ(name_repo->live_bytes(), handle_repo->live_bytes());
  EXPECT_EQ(name_repo->free_bytes(), handle_repo->free_bytes());
  EXPECT_EQ(Snapshot(*name_repo), Snapshot(*handle_repo));

  const FragmentationReport a = AnalyzeFragmentation(*name_repo);
  const FragmentationReport b = AnalyzeFragmentation(*handle_repo);
  EXPECT_EQ(a.objects, b.objects);
  EXPECT_DOUBLE_EQ(a.fragments_per_object, b.fragments_per_object);
  EXPECT_EQ(a.max_fragments, b.max_fragments);

  EXPECT_TRUE(name_repo->CheckConsistency().ok());
  EXPECT_TRUE(handle_repo->CheckConsistency().ok());
}

class ObjectHandleContractTest : public ::testing::TestWithParam<BackendCase> {
};

// The tentpole property: an identical stream of puts, safe writes, and
// reads produces identical repositories whether every operation
// resolves its key by name or runs through handles opened once per
// object. Payload bytes are verified on data-retaining devices.
TEST_P(ObjectHandleContractTest, HandlePathMatchesNamePathUnderChurn) {
  auto name_repo = GetParam().make(sim::DataMode::kRetain);
  auto handle_repo = GetParam().make(sim::DataMode::kRetain);

  constexpr int kObjects = 24;
  constexpr int kChurnOps = 96;
  std::vector<std::string> keys;
  std::vector<ObjectHandle> handles;
  std::vector<uint64_t> versions(kObjects, 0);

  Rng sizes(7);
  for (int i = 0; i < kObjects; ++i) {
    const std::string key = "obj" + std::to_string(i);
    const uint64_t size = 32 * kKiB + (sizes.Next() % 5) * 48 * kKiB;
    const std::vector<uint8_t> data = Pattern(size, i);
    ASSERT_TRUE(name_repo->Put(key, size, data).ok());
    ASSERT_TRUE(handle_repo->Put(key, size, data).ok());
    auto handle = handle_repo->OpenForWrite(key);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    keys.push_back(key);
    handles.push_back(std::move(*handle));
  }

  Rng churn(11);
  for (int op = 0; op < kChurnOps; ++op) {
    const int victim = static_cast<int>(churn.Next() % kObjects);
    if (churn.Next() % 3 == 0) {
      // Read and compare payloads through both paths.
      std::vector<uint8_t> via_name, via_handle;
      ASSERT_TRUE(name_repo->Get(keys[victim], &via_name).ok());
      ASSERT_TRUE(handle_repo->Get(handles[victim], &via_handle).ok());
      EXPECT_EQ(via_name, via_handle) << keys[victim];
    } else {
      const uint64_t size = 32 * kKiB + (churn.Next() % 7) * 32 * kKiB;
      const std::vector<uint8_t> data =
          Pattern(size, 1000 + 31 * victim + ++versions[victim]);
      ASSERT_TRUE(name_repo->SafeWrite(keys[victim], size, data).ok());
      ASSERT_TRUE(handle_repo->SafeWrite(handles[victim], size, data).ok());
    }
    // Handle introspection agrees with name introspection mid-churn.
    auto name_size = name_repo->GetSize(keys[victim]);
    auto handle_size = handle_repo->GetSize(handles[victim]);
    ASSERT_TRUE(name_size.ok());
    ASSERT_TRUE(handle_size.ok());
    EXPECT_EQ(*name_size, *handle_size);
    auto name_layout = name_repo->GetLayout(keys[victim]);
    auto handle_layout = handle_repo->GetLayout(handles[victim]);
    ASSERT_TRUE(name_layout.ok());
    ASSERT_TRUE(handle_layout.ok());
    EXPECT_EQ(*name_layout, *handle_layout);
  }

  ExpectIdenticalState(name_repo.get(), handle_repo.get());

  for (ObjectHandle& handle : handles) {
    EXPECT_TRUE(handle_repo->Release(&handle).ok());
    EXPECT_FALSE(handle.valid());
  }
}

TEST_P(ObjectHandleContractTest, OpenForWriteCreatesOnFirstSafeWrite) {
  auto repo = GetParam().make(sim::DataMode::kMetadataOnly);
  auto handle = repo->OpenForWrite("fresh");
  ASSERT_TRUE(handle.ok());
  // Nothing exists yet: reads and introspection through the handle
  // report NotFound, the repository is untouched.
  EXPECT_TRUE(repo->Get(*handle).IsNotFound());
  EXPECT_TRUE(repo->GetSize(*handle).status().IsNotFound());
  EXPECT_FALSE(repo->Exists("fresh"));

  ASSERT_TRUE(repo->SafeWrite(*handle, 256 * kKiB).ok());
  EXPECT_TRUE(repo->Exists("fresh"));
  auto size = repo->GetSize(*handle);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 256 * kKiB);
  EXPECT_TRUE(repo->Get(*handle).ok());

  // And the handle keeps working across replacement.
  ASSERT_TRUE(repo->SafeWrite(*handle, 128 * kKiB).ok());
  size = repo->GetSize(*handle);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 128 * kKiB);
  EXPECT_TRUE(repo->Release(&*handle).ok());
}

TEST_P(ObjectHandleContractTest, DoubleReleaseFails) {
  auto repo = GetParam().make(sim::DataMode::kMetadataOnly);
  ASSERT_TRUE(repo->Put("k", 128 * kKiB).ok());
  auto handle = repo->Open("k");
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(repo->Release(&*handle).ok());
  EXPECT_FALSE(repo->Release(&*handle).ok());  // Ticket already dead.
  EXPECT_FALSE(handle->valid());
}

TEST_P(ObjectHandleContractTest, UseAfterDeleteFails) {
  auto repo = GetParam().make(sim::DataMode::kMetadataOnly);
  ASSERT_TRUE(repo->Put("k", 128 * kKiB).ok());

  // Deleting by name invalidates an open handle...
  auto handle = repo->OpenForWrite("k");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(repo->Delete("k").ok());
  EXPECT_FALSE(repo->Get(*handle).ok());
  EXPECT_FALSE(repo->SafeWrite(*handle, 64 * kKiB).ok());
  EXPECT_FALSE(repo->GetLayout(*handle).ok());
  EXPECT_FALSE(repo->Release(&*handle).ok());  // Slot already reclaimed.

  // ...and deleting through one handle invalidates the others.
  ASSERT_TRUE(repo->Put("k", 128 * kKiB).ok());
  auto writer = repo->OpenForWrite("k");
  auto reader = repo->Open("k");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(repo->Delete(&*writer).ok());
  EXPECT_FALSE(writer->valid());
  EXPECT_FALSE(repo->Get(*reader).ok());
  EXPECT_FALSE(repo->Exists("k"));
}

TEST_P(ObjectHandleContractTest, HandleMisuseIsRejected) {
  auto repo = GetParam().make(sim::DataMode::kMetadataOnly);
  auto other = GetParam().make(sim::DataMode::kMetadataOnly);
  ASSERT_TRUE(repo->Put("k", 128 * kKiB).ok());
  ASSERT_TRUE(other->Put("k", 128 * kKiB).ok());

  // Open on a missing key is NotFound; invalid tickets are rejected.
  EXPECT_TRUE(repo->Open("missing").status().IsNotFound());
  ObjectHandle invalid;
  EXPECT_FALSE(repo->Get(invalid).ok());
  EXPECT_FALSE(repo->Release(&invalid).ok());

  // A handle only works against the repository that minted it.
  auto handle = repo->Open("k");
  ASSERT_TRUE(handle.ok());
  EXPECT_FALSE(other->Get(*handle).ok());
  EXPECT_FALSE(other->Release(&*handle).ok());

  // Read handles cannot write or delete.
  EXPECT_FALSE(repo->SafeWrite(*handle, 64 * kKiB).ok());
  EXPECT_FALSE(repo->Delete(&*handle).ok());
  EXPECT_TRUE(handle->valid());
  EXPECT_TRUE(repo->Release(&*handle).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ObjectHandleContractTest,
    ::testing::Values(BackendCase{"filesystem", MakeFs},
                      BackendCase{"database", MakeDb}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return info.param.label;
    });

// ---------------------------------------------------------------------
// Back-end specifics.

TEST(ObjectHandleFsTest, SafeWriteTempsRecycleMftRecords) {
  FsRepositoryConfig config;
  config.volume_bytes = 256 * kMiB;
  auto repo = std::make_unique<FsRepository>(config);
  ASSERT_TRUE(repo->Put("k", 512 * kKiB).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(repo->SafeWrite("k", 512 * kKiB).ok());
  }
  // Every replacement freed the displaced record; the pool is primed
  // and creates drain it, so the id space stays bounded.
  EXPECT_GT(repo->store()->recycled_record_ids(), 0u);

  // Recycling changes record placement (timing) only, never layout.
  FsRepositoryConfig no_recycle = config;
  no_recycle.store.recycle_mft_records = false;
  auto baseline = std::make_unique<FsRepository>(no_recycle);
  ASSERT_TRUE(baseline->Put("k", 512 * kKiB).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(baseline->SafeWrite("k", 512 * kKiB).ok());
  }
  EXPECT_EQ(baseline->store()->recycled_record_ids(), 0u);
  auto a = repo->GetLayout("k");
  auto b = baseline->GetLayout("k");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ObjectHandleFsTest, SelfReplaceIsRejectedNotCorrupting) {
  FsRepositoryConfig config;
  config.volume_bytes = 128 * kMiB;
  auto repo = std::make_unique<FsRepository>(config);
  ASSERT_TRUE(repo->Put("k", 256 * kKiB).ok());
  fs::FileStore* store = repo->store();

  // By name, and through two distinct handles on the same name: a
  // replacement onto itself must fail cleanly, not free the live file.
  EXPECT_FALSE(store->Replace("k", "k").ok());
  auto a = store->OpenWrite("k");
  auto b = store->OpenWrite("k");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(store->Replace(*a, *b).ok());
  EXPECT_TRUE(store->Close(*a).ok());
  EXPECT_TRUE(store->Close(*b).ok());
  EXPECT_TRUE(repo->Exists("k"));
  EXPECT_TRUE(repo->Get("k").ok());
  EXPECT_TRUE(repo->CheckConsistency().ok());
}

TEST(ObjectHandleFsTest, StaleHandleSafeWriteLeaksNoTempFile) {
  FsRepositoryConfig config;
  config.volume_bytes = 128 * kMiB;
  auto repo = std::make_unique<FsRepository>(config);
  ASSERT_TRUE(repo->Put("k", 256 * kKiB).ok());
  auto handle = repo->OpenForWrite("k");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(repo->Delete("k").ok());
  // The stale ticket must fail before the temp cycle starts: no file,
  // no bytes, no handle slot may be left behind.
  EXPECT_FALSE(repo->SafeWrite(*handle, 64 * kKiB).ok());
  EXPECT_EQ(repo->object_count(), 0u);
  EXPECT_EQ(repo->live_bytes(), 0u);
  EXPECT_EQ(repo->store()->open_handle_count(), 0u);
  EXPECT_TRUE(repo->CheckConsistency().ok());
}

TEST(ObjectHandleDbTest, PinnedRowStaysCoherentAcrossWrites) {
  DbRepositoryConfig config;
  config.volume_bytes = 128 * kMiB;
  auto repo = std::make_unique<DbRepository>(config);
  ASSERT_TRUE(repo->Put("k", 256 * kKiB).ok());
  db::BlobStore* store = repo->blob_store();

  auto reader = store->OpenRead("k");
  auto writer = store->OpenWrite("k");
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(writer.ok());

  // The read handle pinned the row at open; the write handle pays no
  // row lookup, so its row is not pinned until a write refreshes it.
  auto row = store->Row(*reader);
  ASSERT_TRUE(row.ok());
  const uint64_t version_before = row->version;
  EXPECT_EQ(row->size_bytes, 256 * kKiB);
  EXPECT_TRUE(store->Row(*writer).status().IsNotFound());

  // A safe write through the write handle refreshes the pinned row on
  // *every* open handle of the key — no metadata charge to observe it.
  ASSERT_TRUE(store->SafeWrite(*writer, 128 * kKiB).ok());
  for (const db::BlobHandle& h : {*reader, *writer}) {
    row = store->Row(h);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->size_bytes, 128 * kKiB);
    EXPECT_GT(row->version, version_before);
  }
  EXPECT_TRUE(store->Close(*reader).ok());
  EXPECT_TRUE(store->Close(*writer).ok());
}

TEST(ObjectHandleFsTest, SelfMoveKeepsHandleAlive) {
  FsRepositoryConfig config;
  config.volume_bytes = 128 * kMiB;
  auto repo = std::make_unique<FsRepository>(config);
  ASSERT_TRUE(repo->Put("k", 256 * kKiB).ok());
  auto handle = repo->Open("k");
  ASSERT_TRUE(handle.ok());
  ObjectHandle& alias = *handle;
  *handle = std::move(alias);
  EXPECT_TRUE(handle->valid());
  EXPECT_TRUE(repo->Get(*handle).ok());
  EXPECT_TRUE(repo->Release(&*handle).ok());
}

TEST(ObjectHandleFsTest, NoHandleLeaksAcrossWrappedOperations) {
  FsRepositoryConfig config;
  config.volume_bytes = 128 * kMiB;
  auto repo = std::make_unique<FsRepository>(config);
  ASSERT_TRUE(repo->Put("k", 256 * kKiB).ok());
  ASSERT_TRUE(repo->SafeWrite("k", 256 * kKiB).ok());
  ASSERT_TRUE(repo->Get("k").ok());
  EXPECT_FALSE(repo->Put("k", 256 * kKiB).ok());
  EXPECT_FALSE(repo->Get("missing").ok());
  // The name-based wrappers release every handle they open.
  EXPECT_EQ(repo->store()->open_handle_count(), 0u);
}

TEST(ObjectHandleDbTest, PositionedRangeReadsMatchWholeRead) {
  DbRepositoryConfig config;
  config.volume_bytes = 128 * kMiB;
  config.data_mode = sim::DataMode::kRetain;
  auto repo = std::make_unique<DbRepository>(config);

  const uint64_t size = 300 * kKiB;
  const std::vector<uint8_t> data = Pattern(size, 3);
  ASSERT_TRUE(repo->Put("k", size, data).ok());

  db::BlobStore* store = repo->blob_store();
  auto handle = store->OpenRead("k");
  ASSERT_TRUE(handle.ok());

  // A sequence of sequential range reads through the positioned cursor
  // reassembles the exact payload a whole-object read returns.
  std::vector<uint8_t> whole;
  ASSERT_TRUE(store->Get(*handle, &whole).ok());
  EXPECT_EQ(whole, data);

  std::vector<uint8_t> assembled;
  std::vector<uint8_t> piece;
  const uint64_t step = 64 * kKiB;
  for (uint64_t offset = 0; offset < size; offset += step) {
    const uint64_t len = std::min(step, size - offset);
    ASSERT_TRUE(store->GetRange(*handle, offset, len, &piece).ok());
    assembled.insert(assembled.end(), piece.begin(), piece.end());
  }
  EXPECT_EQ(assembled, data);

  // Reads past the end fail — including offsets chosen to overflow the
  // offset+length arithmetic; the cursor survives replacement resets.
  EXPECT_FALSE(store->GetRange(*handle, size - 8, 16, &piece).ok());
  EXPECT_FALSE(store->GetRange(*handle, UINT64_MAX - 1, 2, &piece).ok());
  ASSERT_TRUE(repo->SafeWrite("k", 128 * kKiB).ok());
  ASSERT_TRUE(store->GetRange(*handle, 0, 64 * kKiB, &piece).ok());
  EXPECT_EQ(piece.size(), 64 * kKiB);
  EXPECT_TRUE(store->Close(*handle).ok());
  EXPECT_EQ(store->open_handle_count(), 0u);
}

TEST(ObjectHandleDbTest, PositionedCursorSkipsDescentOnSequentialReads) {
  DbRepositoryConfig config;
  config.volume_bytes = 128 * kMiB;
  auto repo = std::make_unique<DbRepository>(config);
  const uint64_t size = 300 * kKiB;  // Multi-page: has pointer pages.
  ASSERT_TRUE(repo->Put("k", size).ok());

  db::BlobStore* store = repo->blob_store();
  auto layout = store->GetLayout("k");
  ASSERT_TRUE(layout.ok());
  ASSERT_FALSE(layout->pointer_pages.empty());
  db::PageFile* file = store->mutable_page_file();
  const sim::OpCostModel& costs = store->options().costs;
  const uint64_t chunk = 64 * kKiB;  // Not payload-aligned on purpose.

  // Each pass reads [0, chunk) untimed — leaving the simulated head in
  // the same spot — then times the sequential continuation at `chunk`
  // (which starts mid-page, exercising the cursor's step-back resume).
  // The device work of the timed reads is identical; the positioned
  // pass skips only the pointer-page descent CPU, so it must be
  // strictly cheaper.
  db::BlobBtree::ReadCursor cursor;
  ASSERT_TRUE(
      db::BlobBtree::ReadAt(file, *layout, costs, 0, chunk, nullptr, &cursor)
          .ok());
  const double warm0 = repo->now();
  ASSERT_TRUE(db::BlobBtree::ReadAt(file, *layout, costs, chunk, chunk,
                                    nullptr, &cursor)
                  .ok());
  const double warm = repo->now() - warm0;

  ASSERT_TRUE(db::BlobBtree::ReadAt(file, *layout, costs, 0, chunk, nullptr,
                                    nullptr)
                  .ok());
  const double cold0 = repo->now();
  ASSERT_TRUE(db::BlobBtree::ReadAt(file, *layout, costs, chunk, chunk,
                                    nullptr, nullptr)
                  .ok());
  const double cold = repo->now() - cold0;
  EXPECT_LT(warm, cold);
}

// The measure phase's payload materialization: one scratch buffer for
// the whole phase, reused across every probe.
TEST(ObjectHandleWorkloadTest, MaterializedReadProbesReuseOneScratch) {
  FsRepositoryConfig config;
  config.volume_bytes = 128 * kMiB;
  config.data_mode = sim::DataMode::kRetain;
  FsRepository repo(config);
  workload::WorkloadConfig wc;
  wc.sizes = workload::SizeDistribution::Constant(256 * kKiB);
  wc.read_probe_samples = 32;
  wc.materialize_reads = true;
  workload::GetPutRunner runner(&repo, wc);
  auto load = runner.BulkLoad();
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  auto read = runner.MeasureReadThroughput();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_GT(read->bytes, 0u);
  EXPECT_EQ(read->operations, 32u);
}

// ---------------------------------------------------------------------
// Sharded equivalence: with four concurrent shards per back end, the
// handle-converted hot loops must reproduce the name path exactly —
// same merged counts, same fragmentation, same layouts.

std::unique_ptr<RepositoryFactory> MakeShardFactory(
    const std::string& backend) {
  if (backend == "filesystem") {
    FsRepositoryConfig config;
    config.volume_bytes = 512 * kMiB;
    return std::make_unique<FsRepositoryFactory>(config);
  }
  DbRepositoryConfig config;
  config.volume_bytes = 512 * kMiB;
  return std::make_unique<DbRepositoryFactory>(config);
}

class ObjectHandleShardedTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(ObjectHandleShardedTest, FourShardHandlePathMatchesNamePath) {
  constexpr uint32_t kShards = 4;
  workload::WorkloadConfig name_config;
  name_config.sizes = workload::SizeDistribution::Uniform(kMiB);
  name_config.read_probe_samples = 64;
  name_config.use_handles = false;
  workload::WorkloadConfig handle_config = name_config;
  handle_config.use_handles = true;

  auto factory = MakeShardFactory(GetParam());
  workload::ShardedRunner name_runner(*factory, name_config, kShards);
  workload::ShardedRunner handle_runner(*factory, handle_config, kShards);

  auto run = [](workload::ShardedRunner* runner) {
    auto load = runner->BulkLoad();
    ASSERT_TRUE(load.ok()) << load.status().ToString();
    auto aged = runner->AgeTo(1.5);
    ASSERT_TRUE(aged.ok()) << aged.status().ToString();
    auto read = runner->MeasureReadThroughput();
    ASSERT_TRUE(read.ok()) << read.status().ToString();
  };
  run(&name_runner);
  run(&handle_runner);

  EXPECT_EQ(name_runner.object_count(), handle_runner.object_count());
  EXPECT_DOUBLE_EQ(name_runner.storage_age(), handle_runner.storage_age());

  const FragmentationReport a = name_runner.Fragmentation();
  const FragmentationReport b = handle_runner.Fragmentation();
  EXPECT_EQ(a.objects, b.objects);
  EXPECT_DOUBLE_EQ(a.fragments_per_object, b.fragments_per_object);
  EXPECT_EQ(a.max_fragments, b.max_fragments);
  EXPECT_EQ(a.p99_fragments, b.p99_fragments);

  for (uint32_t shard = 0; shard < kShards; ++shard) {
    EXPECT_EQ(name_runner.engine(shard)->keys(),
              handle_runner.engine(shard)->keys());
    // Per-shard layouts are bit-identical between the paths.
    EXPECT_EQ(Snapshot(*name_runner.repository(shard)),
              Snapshot(*handle_runner.repository(shard)));
    EXPECT_TRUE(name_runner.repository(shard)->CheckConsistency().ok());
    EXPECT_TRUE(handle_runner.repository(shard)->CheckConsistency().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ObjectHandleShardedTest,
                         ::testing::Values("filesystem", "database"));

}  // namespace
}  // namespace core
}  // namespace lor
