// Tests for the SQL-Server-like BlobStore engine.

#include <gtest/gtest.h>

#include <memory>

#include "db/blob_store.h"
#include "util/random.h"

namespace lor {
namespace db {
namespace {

struct Rig {
  std::unique_ptr<sim::BlockDevice> data;
  std::unique_ptr<sim::BlockDevice> log;
  std::unique_ptr<BlobStore> store;
};

Rig MakeRig(sim::DataMode mode = sim::DataMode::kMetadataOnly,
            BlobStoreOptions options = {}, uint64_t capacity = 512 * kMiB) {
  Rig rig;
  rig.data = std::make_unique<sim::BlockDevice>(
      sim::DiskParams::St3400832as().WithCapacity(capacity), mode);
  rig.log = std::make_unique<sim::BlockDevice>(
      sim::DiskParams::St3400832as().WithCapacity(64 * kMiB));
  rig.store =
      std::make_unique<BlobStore>(rig.data.get(), rig.log.get(), options);
  return rig;
}

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

TEST(BlobStoreTest, PutGetDeleteLifecycle) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.store->Put("a", 256 * kKiB).ok());
  EXPECT_TRUE(rig.store->Exists("a"));
  EXPECT_TRUE(rig.store->Put("a", 1).IsAlreadyExists());
  EXPECT_TRUE(rig.store->Get("a").ok());
  ASSERT_TRUE(rig.store->Delete("a").ok());
  EXPECT_FALSE(rig.store->Exists("a"));
  EXPECT_TRUE(rig.store->Get("a").IsNotFound());
  EXPECT_TRUE(rig.store->Delete("a").IsNotFound());
  EXPECT_TRUE(rig.store->CheckConsistency().ok());
}

TEST(BlobStoreTest, RoundTripData) {
  Rig rig = MakeRig(sim::DataMode::kRetain);
  const auto data = Pattern(777 * kKiB + 13, 21);
  ASSERT_TRUE(rig.store->Put("obj", data.size(), data).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.store->Get("obj", &out).ok());
  EXPECT_EQ(out, data);
}

TEST(BlobStoreTest, ReplaceSwapsContent) {
  Rig rig = MakeRig(sim::DataMode::kRetain);
  const auto v1 = Pattern(300 * kKiB, 1);
  const auto v2 = Pattern(500 * kKiB, 2);
  ASSERT_TRUE(rig.store->Put("obj", v1.size(), v1).ok());
  ASSERT_TRUE(rig.store->Replace("obj", v2.size(), v2).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.store->Get("obj", &out).ok());
  EXPECT_EQ(out, v2);
  EXPECT_EQ(rig.store->stats().live_bytes, v2.size());
  EXPECT_TRUE(rig.store->Replace("missing", 100).IsNotFound());
  EXPECT_TRUE(rig.store->CheckConsistency().ok());
}

TEST(BlobStoreTest, BulkLoadIsSequentialAndContiguous) {
  Rig rig = MakeRig();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rig.store->Put("obj" + std::to_string(i), kMiB).ok());
  }
  for (int i = 0; i < 20; ++i) {
    auto layout = rig.store->GetLayout("obj" + std::to_string(i));
    ASSERT_TRUE(layout.ok());
    EXPECT_EQ(layout->Fragments(), 1u);
  }
}

TEST(BlobStoreTest, ChurnFragmentsReplacements) {
  Rig rig = MakeRig();
  Rng rng(3);
  constexpr int kObjects = 50;
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(rig.store->Put("obj" + std::to_string(i), kMiB).ok());
  }
  for (int round = 0; round < 500; ++round) {
    const std::string key =
        "obj" + std::to_string(rng.Uniform(kObjects));
    ASSERT_TRUE(rig.store->Replace(key, kMiB).ok());
  }
  double total_fragments = 0;
  for (int i = 0; i < kObjects; ++i) {
    auto layout = rig.store->GetLayout("obj" + std::to_string(i));
    ASSERT_TRUE(layout.ok());
    total_fragments += static_cast<double>(layout->Fragments());
  }
  // After heavy churn the average object is visibly fragmented.
  EXPECT_GT(total_fragments / kObjects, 2.0);
  EXPECT_TRUE(rig.store->CheckConsistency().ok());
}

TEST(BlobStoreTest, LogDeviceReceivesCommits) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.store->Put("a", kMiB).ok());
  ASSERT_TRUE(rig.store->Delete("a").ok());
  EXPECT_EQ(rig.store->stats().log_records, 2u);
  EXPECT_GT(rig.log->stats().writes, 0u);
  // Bulk-logged: the log stays small (no payload bytes).
  EXPECT_LT(rig.log->stats().bytes_written, 64 * kKiB);
}

TEST(BlobStoreTest, FullyLoggedWritesPayloadToLog) {
  BlobStoreOptions opts;
  opts.bulk_logged = false;
  Rig rig = MakeRig(sim::DataMode::kMetadataOnly, opts);
  ASSERT_TRUE(rig.store->Put("a", kMiB).ok());
  EXPECT_GT(rig.log->stats().bytes_written, kMiB);
}

TEST(BlobStoreTest, NullLogDeviceStillWorks) {
  auto data = std::make_unique<sim::BlockDevice>(
      sim::DiskParams::St3400832as().WithCapacity(256 * kMiB));
  BlobStore store(data.get(), nullptr);
  ASSERT_TRUE(store.Put("a", kMiB).ok());
  EXPECT_TRUE(store.Get("a").ok());
}

TEST(BlobStoreTest, NoSpaceSurfacedWhenVolumeFull) {
  Rig rig = MakeRig(sim::DataMode::kMetadataOnly, {}, 16 * kMiB);
  Status last = Status::OK();
  for (int i = 0; i < 64 && last.ok(); ++i) {
    last = rig.store->Put("obj" + std::to_string(i), kMiB);
  }
  EXPECT_TRUE(last.IsNoSpace());
  EXPECT_TRUE(rig.store->CheckConsistency().ok());
}

TEST(BlobStoreTest, FailedPutLeaksNothing) {
  Rig rig = MakeRig(sim::DataMode::kMetadataOnly, {}, 16 * kMiB);
  // Fill most of the volume, then fail a put and verify the free pool
  // is unchanged afterwards.
  ASSERT_TRUE(rig.store->Put("base", 8 * kMiB).ok());
  const uint64_t free_before = rig.store->page_file().unused_extents();
  ASSERT_TRUE(rig.store->Put("big", 32 * kMiB).IsNoSpace());
  const uint64_t free_after = rig.store->page_file().unused_extents();
  EXPECT_EQ(free_before, free_after);
  EXPECT_TRUE(rig.store->CheckConsistency().ok());
}

TEST(BlobStoreTest, ListKeysSorted) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.store->Put("c", 1024).ok());
  ASSERT_TRUE(rig.store->Put("a", 1024).ok());
  ASSERT_TRUE(rig.store->Put("b", 1024).ok());
  auto keys = rig.store->ListKeys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[2], "c");
}

TEST(BlobStoreTest, StatsAccounting) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.store->Put("a", kMiB).ok());
  ASSERT_TRUE(rig.store->Put("b", 2 * kMiB).ok());
  ASSERT_TRUE(rig.store->Replace("a", 3 * kMiB).ok());
  ASSERT_TRUE(rig.store->Delete("b").ok());
  const BlobStoreStats& s = rig.store->stats();
  EXPECT_EQ(s.puts, 2u);
  EXPECT_EQ(s.replaces, 1u);
  EXPECT_EQ(s.deletes, 1u);
  EXPECT_EQ(s.object_count, 1u);
  EXPECT_EQ(s.live_bytes, 3 * kMiB);
}

TEST(BlobStoreTest, GhostPurgeCadence) {
  BlobStoreOptions opts;
  opts.deletes_per_ghost_purge = 4;
  Rig rig = MakeRig(sim::DataMode::kMetadataOnly, opts);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rig.store->Put("k" + std::to_string(i), 64 * kKiB).ok());
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rig.store->Delete("k" + std::to_string(i)).ok());
  }
  EXPECT_EQ(rig.store->metadata().stats().ghosts, 0u);
}

TEST(BlobStoreTest, RebuildTableRestoresContiguity) {
  Rig rig = MakeRig();
  Rng rng(9);
  constexpr int kObjects = 40;
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(rig.store->Put("obj" + std::to_string(i), kMiB).ok());
  }
  for (int round = 0; round < 400; ++round) {
    ASSERT_TRUE(
        rig.store->Replace("obj" + std::to_string(rng.Uniform(kObjects)),
                           kMiB)
            .ok());
  }
  auto report = rig.store->RebuildTable();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->objects_moved, static_cast<uint64_t>(kObjects));
  EXPECT_GT(report->fragments_before, 2.0);
  EXPECT_LT(report->fragments_after, report->fragments_before / 2);
  EXPECT_GT(report->elapsed_seconds, 0.0);
  EXPECT_TRUE(rig.store->CheckConsistency().ok());
}

TEST(BlobStoreTest, RebuildTablePreservesData) {
  Rig rig = MakeRig(sim::DataMode::kRetain);
  const auto a = Pattern(300 * kKiB, 41);
  const auto b = Pattern(700 * kKiB, 42);
  ASSERT_TRUE(rig.store->Put("a", a.size(), a).ok());
  ASSERT_TRUE(rig.store->Put("b", b.size(), b).ok());
  ASSERT_TRUE(rig.store->Replace("a", a.size(), a).ok());
  auto report = rig.store->RebuildTable();
  ASSERT_TRUE(report.ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.store->Get("a", &out).ok());
  EXPECT_EQ(out, a);
  ASSERT_TRUE(rig.store->Get("b", &out).ok());
  EXPECT_EQ(out, b);
  EXPECT_TRUE(rig.store->CheckConsistency().ok());
}

TEST(BlobStoreTest, RebuildEmptyTableIsNoop) {
  Rig rig = MakeRig();
  auto report = rig.store->RebuildTable();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->objects_moved, 0u);
}

}  // namespace
}  // namespace db
}  // namespace lor
