// Cross-backend tests of the ObjectRepository interface: both back ends
// must provide the same semantics (the paper's "fair comparison"
// requirement, §4), verified with a parameterized suite, plus
// backend-specific behaviours.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/db_repository.h"
#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "core/storage_age.h"
#include "util/random.h"

namespace lor {
namespace core {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

using RepoFactory =
    std::function<std::unique_ptr<ObjectRepository>(sim::DataMode)>;

std::unique_ptr<ObjectRepository> MakeFs(sim::DataMode mode) {
  FsRepositoryConfig config;
  config.volume_bytes = 256 * kMiB;
  config.data_mode = mode;
  return std::make_unique<FsRepository>(config);
}

std::unique_ptr<ObjectRepository> MakeDb(sim::DataMode mode) {
  DbRepositoryConfig config;
  config.volume_bytes = 256 * kMiB;
  config.data_mode = mode;
  return std::make_unique<DbRepository>(config);
}

struct BackendCase {
  std::string label;
  RepoFactory make;
};

class RepositoryContractTest : public ::testing::TestWithParam<BackendCase> {
 protected:
  std::unique_ptr<ObjectRepository> Make(
      sim::DataMode mode = sim::DataMode::kMetadataOnly) {
    return GetParam().make(mode);
  }
};

TEST_P(RepositoryContractTest, PutGetDelete) {
  auto repo = Make();
  ASSERT_TRUE(repo->Put("k", 256 * kKiB).ok());
  EXPECT_TRUE(repo->Exists("k"));
  EXPECT_EQ(repo->object_count(), 1u);
  EXPECT_EQ(repo->live_bytes(), 256 * kKiB);
  EXPECT_TRUE(repo->Get("k").ok());
  ASSERT_TRUE(repo->Delete("k").ok());
  EXPECT_FALSE(repo->Exists("k"));
  EXPECT_EQ(repo->live_bytes(), 0u);
  EXPECT_TRUE(repo->CheckConsistency().ok());
}

TEST_P(RepositoryContractTest, PutRejectsDuplicates) {
  auto repo = Make();
  ASSERT_TRUE(repo->Put("k", 1024).ok());
  EXPECT_TRUE(repo->Put("k", 1024).IsAlreadyExists());
}

TEST_P(RepositoryContractTest, GetMissingIsNotFound) {
  auto repo = Make();
  EXPECT_TRUE(repo->Get("nope").IsNotFound());
  EXPECT_TRUE(repo->Delete("nope").IsNotFound());
  EXPECT_TRUE(repo->GetLayout("nope").status().IsNotFound());
  EXPECT_TRUE(repo->GetSize("nope").status().IsNotFound());
}

TEST_P(RepositoryContractTest, SafeWriteCreatesAndReplaces) {
  auto repo = Make(sim::DataMode::kRetain);
  const auto v1 = Pattern(200 * kKiB, 1);
  const auto v2 = Pattern(300 * kKiB, 2);
  ASSERT_TRUE(repo->SafeWrite("k", v1.size(), v1).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(repo->Get("k", &out).ok());
  EXPECT_EQ(out, v1);
  ASSERT_TRUE(repo->SafeWrite("k", v2.size(), v2).ok());
  ASSERT_TRUE(repo->Get("k", &out).ok());
  EXPECT_EQ(out, v2);
  EXPECT_EQ(repo->object_count(), 1u);
  EXPECT_EQ(repo->live_bytes(), v2.size());
  EXPECT_TRUE(repo->CheckConsistency().ok());
}

TEST_P(RepositoryContractTest, DataIntegrityAcrossChurn) {
  auto repo = Make(sim::DataMode::kRetain);
  Rng rng(1234);
  // Seed objects with known contents derived from (key, version).
  std::vector<uint64_t> versions(10, 0);
  for (int i = 0; i < 10; ++i) {
    const auto data = Pattern(64 * kKiB + i * 1000, i * 100);
    ASSERT_TRUE(
        repo->Put("obj" + std::to_string(i), data.size(), data).ok());
  }
  for (int round = 0; round < 50; ++round) {
    const int i = static_cast<int>(rng.Uniform(10));
    versions[i] = round + 1;
    const auto data =
        Pattern(64 * kKiB + i * 1000, i * 100 + versions[i]);
    ASSERT_TRUE(
        repo->SafeWrite("obj" + std::to_string(i), data.size(), data).ok());
  }
  for (int i = 0; i < 10; ++i) {
    const auto expected =
        Pattern(64 * kKiB + i * 1000, i * 100 + versions[i]);
    std::vector<uint8_t> out;
    ASSERT_TRUE(repo->Get("obj" + std::to_string(i), &out).ok());
    EXPECT_EQ(out, expected) << "obj" << i;
  }
  EXPECT_TRUE(repo->CheckConsistency().ok());
}

TEST_P(RepositoryContractTest, LayoutCoversObjectSize) {
  auto repo = Make();
  ASSERT_TRUE(repo->Put("k", 10 * kMiB).ok());
  auto layout = repo->GetLayout("k");
  ASSERT_TRUE(layout.ok());
  EXPECT_GE(alloc::TotalLength(*layout), 10 * kMiB);
  auto size = repo->GetSize("k");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 10 * kMiB);
}

TEST_P(RepositoryContractTest, ClockAdvancesWithWork) {
  auto repo = Make();
  const double t0 = repo->now();
  ASSERT_TRUE(repo->Put("k", kMiB).ok());
  EXPECT_GT(repo->now(), t0);
}

TEST_P(RepositoryContractTest, FreeBytesShrinkWithData) {
  auto repo = Make();
  const uint64_t free0 = repo->free_bytes();
  ASSERT_TRUE(repo->Put("k", 10 * kMiB).ok());
  EXPECT_LT(repo->free_bytes(), free0);
  EXPECT_GT(repo->volume_bytes(), repo->live_bytes());
}

TEST_P(RepositoryContractTest, ListKeysMatchesPopulation) {
  auto repo = Make();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(repo->Put("obj" + std::to_string(i), 64 * kKiB).ok());
  }
  EXPECT_EQ(repo->ListKeys().size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    BothBackends, RepositoryContractTest,
    ::testing::Values(BackendCase{"filesystem", MakeFs},
                      BackendCase{"database", MakeDb}),
    [](const auto& info) { return info.param.label; });

TEST(FragmentationAnalyzerTest, CleanStoreIsContiguous) {
  auto repo = MakeFs(sim::DataMode::kMetadataOnly);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(repo->Put("obj" + std::to_string(i), kMiB).ok());
  }
  FragmentationReport report = AnalyzeFragmentation(*repo);
  EXPECT_EQ(report.objects, 10u);
  EXPECT_DOUBLE_EQ(report.fragments_per_object, 1.0);
  EXPECT_DOUBLE_EQ(report.contiguous_fraction, 1.0);
  EXPECT_EQ(report.p50_fragments, 1u);
}

TEST(FragmentationAnalyzerTest, EmptyRepository) {
  auto repo = MakeFs(sim::DataMode::kMetadataOnly);
  FragmentationReport report = AnalyzeFragmentation(*repo);
  EXPECT_EQ(report.objects, 0u);
  EXPECT_DOUBLE_EQ(report.fragments_per_object, 0.0);
}

TEST(StorageAgeTest, FollowsPaperDefinition) {
  StorageAgeTracker age;
  age.RecordBulkLoad(1000);
  EXPECT_DOUBLE_EQ(age.age(), 0.0);
  age.MarkBulkLoadComplete();
  EXPECT_DOUBLE_EQ(age.age(), 0.0);
  // Replace all data once: age 1 ("one safe write per object").
  age.RecordReplacement(1000, 1000);
  EXPECT_DOUBLE_EQ(age.age(), 1.0);
  age.RecordReplacement(1000, 1000);
  EXPECT_DOUBLE_EQ(age.age(), 2.0);
}

TEST(StorageAgeTest, TracksLiveByteChanges) {
  StorageAgeTracker age;
  age.RecordBulkLoad(1000);
  age.MarkBulkLoadComplete();
  age.RecordReplacement(500, 1500);  // Store grows to 2000 live bytes.
  EXPECT_EQ(age.live_bytes(), 2000u);
  EXPECT_DOUBLE_EQ(age.age(), 1500.0 / 2000.0);
  age.RecordDelete(2000);
  EXPECT_EQ(age.live_bytes(), 0u);
  EXPECT_DOUBLE_EQ(age.age(), 0.0);  // Guarded division.
}

TEST(DbRepositoryTest, BulkLoadWriteFasterThanFs) {
  // The paper's Fig. 4: during bulk load the database writes faster
  // than the filesystem's safe-write path (17.7 vs 10.1 MB/s for
  // 512 KB objects).
  auto fs = MakeFs(sim::DataMode::kMetadataOnly);
  auto db = MakeDb(sim::DataMode::kMetadataOnly);
  constexpr int kObjects = 100;
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(fs->Put("obj" + std::to_string(i), 512 * kKiB).ok());
    ASSERT_TRUE(db->Put("obj" + std::to_string(i), 512 * kKiB).ok());
  }
  EXPECT_LT(db->now(), fs->now());
}

TEST(FsRepositoryTest, JournalBatchingKeepsLayoutsAndSavesMetadataIo) {
  // Batching coalesces the journal records of one safe write (create
  // temp + fsync + replace) into a single lazy-writer commit: fewer
  // device writes and less simulated time, with bit-identical layouts
  // (journal charges never touch the allocator).
  FsRepositoryConfig batched_config;
  batched_config.volume_bytes = 256 * kMiB;
  FsRepositoryConfig unbatched_config = batched_config;
  unbatched_config.store.batch_journal_charges = false;

  FsRepository batched(batched_config);
  FsRepository unbatched(unbatched_config);
  auto churn = [](FsRepository* repo) {
    Rng rng(11);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(repo->SafeWrite("obj" + std::to_string(i), kMiB).ok());
    }
    for (int round = 0; round < 120; ++round) {
      const std::string key = "obj" + std::to_string(rng.Uniform(30));
      ASSERT_TRUE(repo->SafeWrite(key, kMiB).ok());
    }
  };
  churn(&batched);
  churn(&unbatched);

  for (int i = 0; i < 30; ++i) {
    const std::string key = "obj" + std::to_string(i);
    auto a = batched.GetLayout(key);
    auto b = unbatched.GetLayout(key);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << key;
  }
  EXPECT_LT(batched.device()->stats().writes,
            unbatched.device()->stats().writes);
  EXPECT_LT(batched.now(), unbatched.now());
  EXPECT_TRUE(batched.CheckConsistency().ok());
}

TEST(FsRepositoryTest, PreallocationReducesFragmentsUnderChurn) {
  FsRepositoryConfig base;
  base.volume_bytes = 256 * kMiB;
  FsRepositoryConfig prealloc = base;
  prealloc.preallocate_on_safe_write = true;

  auto churn = [](FsRepository* repo) {
    Rng rng(5);
    for (int i = 0; i < 40; ++i) {
      EXPECT_TRUE(
          repo->SafeWrite("obj" + std::to_string(i), 2 * kMiB).ok());
    }
    for (int round = 0; round < 400; ++round) {
      const std::string key = "obj" + std::to_string(rng.Uniform(40));
      EXPECT_TRUE(repo->SafeWrite(key, 2 * kMiB).ok());
    }
  };
  FsRepository plain(base);
  FsRepository hinted(prealloc);
  churn(&plain);
  churn(&hinted);
  const double plain_frags =
      AnalyzeFragmentation(plain).fragments_per_object;
  const double hinted_frags =
      AnalyzeFragmentation(hinted).fragments_per_object;
  EXPECT_LE(hinted_frags, plain_frags);
}

}  // namespace
}  // namespace core
}  // namespace lor
