// Unit and property tests for alloc::FreeSpaceMap and the extent
// helpers.

#include <gtest/gtest.h>

#include "alloc/extent.h"
#include "alloc/free_space_map.h"
#include "util/random.h"

namespace lor {
namespace alloc {
namespace {

TEST(ExtentTest, Basics) {
  Extent e{10, 5};
  EXPECT_EQ(e.end(), 15u);
  EXPECT_FALSE(e.empty());
  EXPECT_TRUE(Extent({0, 0}).empty());
  EXPECT_TRUE(e.Overlaps({14, 1}));
  EXPECT_FALSE(e.Overlaps({15, 1}));
  EXPECT_TRUE(e.AdjacentBefore({15, 3}));
  EXPECT_FALSE(e.AdjacentBefore({16, 3}));
}

TEST(ExtentTest, CountFragmentsMergesAdjacent) {
  ExtentList l{{0, 4}, {4, 4}, {10, 2}};
  EXPECT_EQ(CountFragments(l), 2u);
  EXPECT_EQ(TotalLength(l), 10u);
  CoalesceAdjacent(&l);
  ASSERT_EQ(l.size(), 2u);
  EXPECT_EQ(l[0], (Extent{0, 8}));
}

TEST(ExtentTest, AppendCoalescing) {
  ExtentList l;
  AppendCoalescing(&l, {0, 4});
  AppendCoalescing(&l, {4, 4});
  AppendCoalescing(&l, {10, 1});
  AppendCoalescing(&l, {0, 0});  // Empty is dropped.
  ASSERT_EQ(l.size(), 2u);
  EXPECT_EQ(l[0].length, 8u);
}

TEST(ExtentTest, CountFragmentsEmptyAndSingle) {
  EXPECT_EQ(CountFragments({}), 0u);
  EXPECT_EQ(CountFragments({{5, 3}}), 1u);
}

TEST(FreeSpaceMapTest, StartsAsOneRun) {
  FreeSpaceMap m(100);
  EXPECT_EQ(m.free_clusters(), 100u);
  EXPECT_EQ(m.run_count(), 1u);
  EXPECT_EQ(m.largest_run(), 100u);
  EXPECT_TRUE(m.CheckConsistency().ok());
}

TEST(FreeSpaceMapTest, AllocateContiguousExact) {
  FreeSpaceMap m(100);
  auto e = m.AllocateContiguous(30, FitPolicy::kFirstFit);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->start, 0u);
  EXPECT_EQ(e->length, 30u);
  EXPECT_EQ(m.free_clusters(), 70u);
  EXPECT_TRUE(m.CheckConsistency().ok());
}

TEST(FreeSpaceMapTest, AllocateContiguousNoSpace) {
  FreeSpaceMap m(10);
  auto e = m.AllocateContiguous(11, FitPolicy::kBestFit);
  EXPECT_FALSE(e.ok());
  EXPECT_TRUE(e.status().IsNoSpace());
  EXPECT_TRUE(m.AllocateContiguous(0, FitPolicy::kBestFit)
                  .status()
                  .IsInvalidArgument());
}

TEST(FreeSpaceMapTest, FreeCoalescesBothNeighbours) {
  FreeSpaceMap m(100);
  ASSERT_TRUE(m.AllocateAt({20, 30}).ok());
  EXPECT_EQ(m.run_count(), 2u);
  ASSERT_TRUE(m.Free({20, 30}).ok());
  EXPECT_EQ(m.run_count(), 1u);
  EXPECT_EQ(m.largest_run(), 100u);
  EXPECT_TRUE(m.CheckConsistency().ok());
}

TEST(FreeSpaceMapTest, DoubleFreeRejected) {
  FreeSpaceMap m(100);
  ASSERT_TRUE(m.AllocateAt({10, 10}).ok());
  ASSERT_TRUE(m.Free({10, 10}).ok());
  EXPECT_TRUE(m.Free({10, 10}).IsInvalidArgument());
  EXPECT_TRUE(m.Free({0, 5}).IsInvalidArgument());  // Overlaps free run.
}

TEST(FreeSpaceMapTest, BestFitPicksSmallestSufficientRun) {
  FreeSpaceMap m(1000);
  // Carve free runs of 10, 50, 100 (by allocating the gaps).
  ASSERT_TRUE(m.AllocateAt({10, 90}).ok());    // run [0,10)
  ASSERT_TRUE(m.AllocateAt({150, 750}).ok());  // run [100,150) len 50
  // remaining run [900,1000) len 100.
  auto e = m.AllocateContiguous(40, FitPolicy::kBestFit);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->start, 100u);  // 50-run is the tightest fit.
}

TEST(FreeSpaceMapTest, WorstFitPicksLargestRun) {
  FreeSpaceMap m(1000);
  ASSERT_TRUE(m.AllocateAt({10, 90}).ok());
  ASSERT_TRUE(m.AllocateAt({150, 750}).ok());
  auto e = m.AllocateContiguous(5, FitPolicy::kWorstFit);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->start, 900u);
}

TEST(FreeSpaceMapTest, FirstFitPicksLowestAddress) {
  FreeSpaceMap m(1000);
  ASSERT_TRUE(m.AllocateAt({10, 90}).ok());
  ASSERT_TRUE(m.AllocateAt({150, 750}).ok());
  auto e = m.AllocateContiguous(5, FitPolicy::kFirstFit);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->start, 0u);
}

TEST(FreeSpaceMapTest, NextFitAdvancesCursor) {
  FreeSpaceMap m(1000);
  ASSERT_TRUE(m.AllocateAt({10, 90}).ok());   // runs: [0,10) [100,...)
  auto a = m.AllocateContiguous(5, FitPolicy::kNextFit);
  ASSERT_TRUE(a.ok());
  auto b = m.AllocateContiguous(5, FitPolicy::kNextFit);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->start, a->end());  // Continues from the cursor.
}

TEST(FreeSpaceMapTest, AllocateUpToTakesShorterRun) {
  FreeSpaceMap m(100);
  ASSERT_TRUE(m.AllocateAt({10, 90}).ok());  // One run [0,10).
  Extent e = m.AllocateUpTo(50, FitPolicy::kBestFit);
  EXPECT_EQ(e.start, 0u);
  EXPECT_EQ(e.length, 10u);
  EXPECT_EQ(m.free_clusters(), 0u);
  EXPECT_TRUE(m.AllocateUpTo(5, FitPolicy::kBestFit).empty());
}

TEST(FreeSpaceMapTest, ExtendAtClaimsFollowingClusters) {
  FreeSpaceMap m(100);
  ASSERT_TRUE(m.AllocateAt({0, 10}).ok());
  EXPECT_EQ(m.ExtendAt(10, 20), 20u);
  EXPECT_EQ(m.free_clusters(), 70u);
  // Extending where space is allocated yields zero.
  EXPECT_EQ(m.ExtendAt(5, 10), 0u);
  EXPECT_TRUE(m.CheckConsistency().ok());
}

TEST(FreeSpaceMapTest, ExtendAtMidRunSplits) {
  FreeSpaceMap m(100);
  EXPECT_EQ(m.ExtendAt(50, 10), 10u);
  EXPECT_EQ(m.run_count(), 2u);
  EXPECT_TRUE(m.IsFree({0, 50}));
  EXPECT_TRUE(m.IsFree({60, 40}));
  EXPECT_FALSE(m.IsFree({50, 10}));
  EXPECT_TRUE(m.CheckConsistency().ok());
}

TEST(FreeSpaceMapTest, ExtendAtCapsAtRunEnd) {
  FreeSpaceMap m(100);
  ASSERT_TRUE(m.AllocateAt({0, 10}).ok());
  ASSERT_TRUE(m.AllocateAt({30, 70}).ok());
  EXPECT_EQ(m.ExtendAt(10, 100), 20u);  // Only [10,30) is free.
}

TEST(FreeSpaceMapTest, AllocateAtRejectsPartialFree) {
  FreeSpaceMap m(100);
  ASSERT_TRUE(m.AllocateAt({50, 10}).ok());
  EXPECT_TRUE(m.AllocateAt({45, 10}).IsNoSpace());
  EXPECT_TRUE(m.AllocateAt({0, 0}).IsInvalidArgument());
}

TEST(FreeSpaceMapTest, LargestRunsOrdering) {
  FreeSpaceMap m(1000);
  ASSERT_TRUE(m.AllocateAt({10, 90}).ok());
  ASSERT_TRUE(m.AllocateAt({150, 750}).ok());
  // Runs: [0,10)=10, [100,150)=50, [900,1000)=100.
  auto runs = m.LargestRuns(2);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].length, 100u);
  EXPECT_EQ(runs[1].length, 50u);
}

TEST(FreeSpaceMapTest, LargestRunsTieBreaksByAddress) {
  FreeSpaceMap m(100);
  ASSERT_TRUE(m.AllocateAt({10, 10}).ok());
  ASSERT_TRUE(m.AllocateAt({30, 60}).ok());
  // Three equal-length runs: [0,10), [20,30), [90,100); ties order by
  // increasing start.
  auto runs = m.LargestRuns(8);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (Extent{0, 10}));
  EXPECT_EQ(runs[1], (Extent{20, 10}));
  EXPECT_EQ(runs[2], (Extent{90, 10}));
}

TEST(FreeSpaceMapTest, StatsReflectFragmentation) {
  FreeSpaceMap m(100);
  ASSERT_TRUE(m.AllocateAt({10, 10}).ok());
  FreeSpaceStats s = m.Stats();
  EXPECT_EQ(s.free_clusters, 90u);
  EXPECT_EQ(s.run_count, 2u);
  EXPECT_EQ(s.largest_run, 80u);
  EXPECT_NEAR(s.external_fragmentation, 1.0 - 80.0 / 90.0, 1e-12);
}

TEST(FreeSpaceMapTest, AllocateFromSweepsForward) {
  FreeSpaceMap m(1000);
  ASSERT_TRUE(m.AllocateAt({0, 100}).ok());
  ASSERT_TRUE(m.AllocateAt({200, 100}).ok());
  // Free runs: [100,200), [300,1000).
  Extent a = m.AllocateFrom(150, 40);
  EXPECT_EQ(a, (Extent{300, 40}));  // First run starting at/after 150...
  // ...is [300,...) because [100,200) starts before the cursor.
  Extent b = m.AllocateFrom(a.end(), 40);
  EXPECT_EQ(b, (Extent{340, 40}));
  EXPECT_TRUE(m.CheckConsistency().ok());
}

TEST(FreeSpaceMapTest, AllocateFromWrapsToLowestRun) {
  FreeSpaceMap m(1000);
  ASSERT_TRUE(m.AllocateAt({500, 500}).ok());  // Free: [0,500).
  Extent e = m.AllocateFrom(900, 64);
  EXPECT_EQ(e, (Extent{0, 64}));
}

TEST(FreeSpaceMapTest, AllocateFromTakesShortRunWhole) {
  FreeSpaceMap m(1000);
  ASSERT_TRUE(m.AllocateAt({0, 100}).ok());
  ASSERT_TRUE(m.AllocateAt({110, 890}).ok());  // Free: [100,110).
  Extent e = m.AllocateFrom(0, 64);
  EXPECT_EQ(e, (Extent{100, 10}));  // Any size qualifies under a sweep.
  EXPECT_TRUE(m.AllocateFrom(0, 1).empty());
}

TEST(FreeSpaceMapTest, PendingResizeVisibleToSizeQueries) {
  // Sequential ExtendAt takes defer the size-index re-key; every
  // size-ordered query must still see the true lengths.
  FreeSpaceMap m(1000);
  EXPECT_EQ(m.ExtendAt(0, 100), 100u);
  EXPECT_EQ(m.largest_run(), 900u);
  EXPECT_EQ(m.ExtendAt(100, 50), 50u);
  auto runs = m.LargestRuns(4);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (Extent{150, 850}));
  EXPECT_EQ(m.ExtendAt(150, 10), 10u);
  EXPECT_TRUE(m.CheckConsistency().ok());
  EXPECT_EQ(m.Stats().largest_run, 840u);
}

TEST(FreeSpaceMapTest, MixedExtendFitAndFreeStaysConsistent) {
  // Interleaves the sequential-extension fast path with bucketed
  // first/next-fit selection and coalescing frees; exercises the
  // shrink-position cache and the lazy bucket index together.
  constexpr uint64_t kClusters = 1 << 16;
  FreeSpaceMap m(kClusters);
  Rng rng(31337);
  std::vector<Extent> live;
  uint64_t cursor = 0;
  uint64_t live_clusters = 0;
  for (int op = 0; op < 4000; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.45) {
      const uint64_t got = m.ExtendAt(cursor, 1 + rng.Uniform(32));
      if (got > 0) {
        live.push_back({cursor, got});
        live_clusters += got;
        cursor += got;
      } else {
        cursor = rng.Uniform(kClusters);
      }
    } else if (dice < 0.7) {
      const FitPolicy policy = rng.Bernoulli(0.5) ? FitPolicy::kFirstFit
                                                  : FitPolicy::kNextFit;
      Extent e = m.AllocateUpTo(1 + rng.Uniform(64), policy);
      if (!e.empty()) {
        live.push_back(e);
        live_clusters += e.length;
      }
    } else if (!live.empty()) {
      const size_t idx = rng.Uniform(live.size());
      ASSERT_TRUE(m.Free(live[idx]).ok());
      live_clusters -= live[idx].length;
      live[idx] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(m.free_clusters() + live_clusters, kClusters);
    if (op % 200 == 0) {
      ASSERT_TRUE(m.CheckConsistency().ok()) << "op " << op;
    }
  }
  for (const Extent& e : live) ASSERT_TRUE(m.Free(e).ok());
  EXPECT_EQ(m.run_count(), 1u);
  EXPECT_TRUE(m.CheckConsistency().ok());
}

// Property test: random allocate/free cycles keep the map internally
// consistent and conserve clusters, for every policy.
class FreeSpaceMapPropertyTest
    : public ::testing::TestWithParam<FitPolicy> {};

TEST_P(FreeSpaceMapPropertyTest, RandomOpsConserveClusters) {
  constexpr uint64_t kClusters = 4096;
  FreeSpaceMap m(kClusters);
  Rng rng(2024);
  std::vector<Extent> live;
  uint64_t live_clusters = 0;
  for (int op = 0; op < 5000; ++op) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      const uint64_t want = 1 + rng.Uniform(64);
      Extent e = m.AllocateUpTo(want, GetParam());
      if (e.empty()) continue;
      EXPECT_LE(e.length, want);
      live.push_back(e);
      live_clusters += e.length;
    } else {
      const size_t idx = rng.Uniform(live.size());
      ASSERT_TRUE(m.Free(live[idx]).ok());
      live_clusters -= live[idx].length;
      live[idx] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(m.free_clusters() + live_clusters, kClusters);
    if (op % 100 == 0) {
      ASSERT_TRUE(m.CheckConsistency().ok()) << "op " << op;
    }
  }
  for (const Extent& e : live) ASSERT_TRUE(m.Free(e).ok());
  EXPECT_EQ(m.free_clusters(), kClusters);
  EXPECT_EQ(m.run_count(), 1u);  // Everything coalesces back.
  EXPECT_TRUE(m.CheckConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, FreeSpaceMapPropertyTest,
                         ::testing::Values(FitPolicy::kFirstFit,
                                           FitPolicy::kBestFit,
                                           FitPolicy::kWorstFit,
                                           FitPolicy::kNextFit),
                         [](const auto& info) {
                           std::string out;
                           for (char c : FitPolicyName(info.param)) {
                             if (c != '-') out += c;
                           }
                           return out;
                         });

}  // namespace
}  // namespace alloc
}  // namespace lor
