// Unit tests for src/util: Status/Result, Rng, units, histograms,
// table writer.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/histogram.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/table_writer.h"
#include "util/units.h"

namespace lor {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllConstructorsMatchPredicates) {
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NoSpace("x").IsNoSpace());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  LOR_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_TRUE(Propagates(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NoSpace("full"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNoSpace());
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  LOR_ASSIGN_OR_RETURN(*out, HalveEven(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseAssignOrReturn(7, &out).IsInvalidArgument());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  EXPECT_EQ(rng.Uniform(0), 0u);
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformRange(5, 8));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 5u);
  EXPECT_EQ(*seen.rbegin(), 8u);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0, sum2 = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(11);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(64 * kKiB), "64 KB");
  EXPECT_EQ(FormatBytes(10 * kMiB), "10 MB");
  EXPECT_EQ(FormatBytes(400 * kGiB), "400 GB");
  EXPECT_EQ(FormatBytes(kTiB), "1 TB");
}

TEST(UnitsTest, ParseBytes) {
  EXPECT_EQ(ParseBytes("256K"), 256 * kKiB);
  EXPECT_EQ(ParseBytes("1M"), kMiB);
  EXPECT_EQ(ParseBytes("40G"), 40 * kGiB);
  EXPECT_EQ(ParseBytes("123"), 123u);
  EXPECT_EQ(ParseBytes("1.5M"), kMiB + kMiB / 2);
  EXPECT_EQ(ParseBytes(""), 0u);
  EXPECT_EQ(ParseBytes("abc"), 0u);
}

TEST(UnitsTest, ParseFormatsRoundTrip) {
  for (uint64_t v : {kKiB, 64 * kKiB, kMiB, 10 * kMiB, kGiB, 400 * kGiB}) {
    std::string text = FormatBytes(v);
    // Strip the space before the unit for parser compatibility.
    text.erase(text.find(' '), 1);
    EXPECT_EQ(ParseBytes(text), v) << text;
  }
}

TEST(UnitsTest, FormatThroughputAndSeconds) {
  EXPECT_EQ(FormatThroughput(10 * kMiB, 1.0), "10.00 MB/s");
  EXPECT_EQ(FormatThroughput(123, 0.0), "inf");
  EXPECT_EQ(FormatSeconds(0.0005), "500.0 us");
  EXPECT_EQ(FormatSeconds(0.25), "250.00 ms");
  EXPECT_EQ(FormatSeconds(2.0), "2.00 s");
  EXPECT_EQ(FormatSeconds(600.0), "10.0 min");
}

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(SummaryStatsTest, MergeMatchesCombined) {
  SummaryStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextDouble() * 10;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(a.min(), all.min(), 1e-12);
  EXPECT_NEAR(a.max(), all.max(), 1e-12);
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a, empty;
  a.Add(5.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(IntHistogramTest, MeanMinMaxPercentiles) {
  IntHistogram h(100);
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.Percentile(0.5), 50u);
  EXPECT_EQ(h.Percentile(0.99), 99u);
  EXPECT_EQ(h.Percentile(1.0), 100u);
}

TEST(IntHistogramTest, OverflowBucket) {
  IntHistogram h(10);
  h.Add(5);
  h.Add(5000);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 5000u);
  EXPECT_EQ(h.min(), 5u);
}

TEST(IntHistogramTest, MergeAddsCounts) {
  IntHistogram a(10), b(10);
  a.Add(1);
  b.Add(1);
  b.Add(2);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.BucketCount(1), 2u);
  EXPECT_EQ(a.BucketCount(2), 1u);
}

TEST(LatencyHistogramTest, EmptyHistogramIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleQuantileIsExact) {
  // Quantiles clamp to [min, max], so one sample is returned exactly at
  // every q even though the bucket midpoint differs.
  LatencyHistogram h;
  h.Add(0.0123);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0123);
  EXPECT_DOUBLE_EQ(h.max(), 0.0123);
  for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 0.0123);
  }
  EXPECT_DOUBLE_EQ(h.mean(), 0.0123);
}

TEST(LatencyHistogramTest, BucketBoundariesTile) {
  // Lower/upper bounds tile the range with no gaps, and a value equal
  // to a bucket's lower bound indexes into that bucket.
  for (size_t i = 1; i + 2 < LatencyHistogram::bucket_count(); ++i) {
    const double lo = LatencyHistogram::BucketLowerBound(i);
    const double hi = LatencyHistogram::BucketUpperBound(i);
    EXPECT_LT(lo, hi);
    EXPECT_DOUBLE_EQ(hi, LatencyHistogram::BucketLowerBound(i + 1));
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i);
  }
}

TEST(LatencyHistogramTest, BoundaryValueLandsInUpperBucket) {
  // Exactly at a boundary the sample belongs to the bucket whose lower
  // bound it is — pinned so percentile math is reproducible.
  const size_t idx = LatencyHistogram::bucket_count() / 2;
  const double boundary = LatencyHistogram::BucketLowerBound(idx);
  EXPECT_EQ(LatencyHistogram::BucketIndex(boundary), idx);
  // A hair below the boundary stays in the bucket below.
  const double below = boundary * (1.0 - 1e-12);
  EXPECT_EQ(LatencyHistogram::BucketIndex(below), idx - 1);
}

TEST(LatencyHistogramTest, UnderflowAndOverflowBuckets) {
  LatencyHistogram h;
  h.Add(0.0);      // Below the first octave: underflow bucket.
  h.Add(1e-12);    // Ditto.
  h.Add(1e9);      // Past the last octave: overflow bucket.
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_EQ(LatencyHistogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1e9),
            LatencyHistogram::bucket_count() - 1);
}

TEST(LatencyHistogramTest, QuantilesOfUniformSpread) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(1e-3 * i);  // 1 ms .. 1 s.
  // Log buckets resolve to one part in kSubBuckets: allow ~7% slack.
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 0.5 / LatencyHistogram::kSubBuckets);
  EXPECT_NEAR(h.Quantile(0.99), 0.99, 0.99 / LatencyHistogram::kSubBuckets);
  EXPECT_GE(h.Quantile(0.999), h.Quantile(0.99));
  EXPECT_LE(h.Quantile(1.0), h.max());
}

TEST(LatencyHistogramTest, MergeMatchesCombinedAdds) {
  LatencyHistogram a, b, combined;
  for (int i = 1; i <= 100; ++i) {
    const double va = 1e-4 * i;
    const double vb = 2e-3 * i;
    a.Add(va);
    b.Add(vb);
    combined.Add(va);
    combined.Add(vb);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), combined.Quantile(q));
  }
}

TEST(LatencyHistogramTest, SubtractIsolatesInterval) {
  // Cumulative-snapshot protocol: record a prefix, snapshot, record
  // more, then difference. The delta must see only the suffix samples.
  LatencyHistogram cumulative;
  for (int i = 0; i < 50; ++i) cumulative.Add(1e-3);
  const LatencyHistogram snapshot = cumulative;
  for (int i = 0; i < 10; ++i) cumulative.Add(1.0);
  const LatencyHistogram delta = cumulative - snapshot;
  EXPECT_EQ(delta.count(), 10u);
  EXPECT_DOUBLE_EQ(delta.sum(), cumulative.sum() - snapshot.sum());
  // All suffix samples sit in the 1 s bucket; the quantile resolves
  // there to bucket precision.
  EXPECT_NEAR(delta.Quantile(0.5), 1.0, 1.0 / LatencyHistogram::kSubBuckets);
  EXPECT_NEAR(delta.Quantile(0.999), 1.0, 1.0 / LatencyHistogram::kSubBuckets);
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Add(0.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(TableWriterTest, AlignedText) {
  TableWriter t({"name", "value"});
  t.Row().Cell("x").Cell(uint64_t{42});
  t.Row().Cell("longer-name").Cell(3.14159, 2);
  std::ostringstream os;
  t.PrintText(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer-name"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableWriterTest, CsvQuoting) {
  TableWriter t({"a", "b"});
  t.Row().Cell("plain").Cell("has,comma");
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\nplain,\"has,comma\"\n");
}

}  // namespace
}  // namespace lor
