// Tests for the incremental fragmentation accounting: unit tests of
// core::FragmentationTracker and property tests asserting its snapshot
// stays field-for-field equal to the full layout scan after randomized
// Put/SafeWrite/Delete/defragment sequences on both repositories.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/db_repository.h"
#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "util/random.h"

namespace lor {
namespace core {
namespace {

TEST(FragmentationTrackerTest, EmptySnapshot) {
  FragmentationTracker tracker;
  FragmentationReport report = tracker.Snapshot();
  EXPECT_EQ(report.objects, 0u);
  EXPECT_EQ(report.fragments_per_object, 0.0);
  EXPECT_EQ(report.histogram.count(), 0u);
}

TEST(FragmentationTrackerTest, AddUpdateRemove) {
  FragmentationTracker tracker;
  tracker.Add(1, 1000);
  tracker.Add(3, 3000);
  EXPECT_EQ(tracker.objects(), 2u);
  EXPECT_EQ(tracker.total_fragments(), 4u);
  EXPECT_EQ(tracker.total_bytes(), 4000u);

  FragmentationReport report = tracker.Snapshot();
  EXPECT_DOUBLE_EQ(report.fragments_per_object, 2.0);
  EXPECT_EQ(report.max_fragments, 3u);
  EXPECT_DOUBLE_EQ(report.contiguous_fraction, 0.5);
  EXPECT_DOUBLE_EQ(report.mean_fragment_bytes, 1000.0);

  tracker.Update(3, 3000, 1, 3000);  // Defragmented in place.
  report = tracker.Snapshot();
  EXPECT_EQ(report.max_fragments, 1u);
  EXPECT_DOUBLE_EQ(report.contiguous_fraction, 1.0);

  tracker.Remove(1, 1000);
  tracker.Remove(1, 3000);
  EXPECT_EQ(tracker.objects(), 0u);
  EXPECT_EQ(tracker.total_bytes(), 0u);
}

TEST(FragmentationTrackerTest, OverflowFragmentCounts) {
  FragmentationTracker tracker;
  const uint64_t huge = FragmentationReport::kHistogramResolution + 123;
  tracker.Add(huge, 1 * kMiB);
  tracker.Add(2, 64 * kKiB);
  FragmentationReport report = tracker.Snapshot();
  EXPECT_EQ(report.max_fragments, huge);
  EXPECT_EQ(report.objects, 2u);
  tracker.Remove(huge, 1 * kMiB);
  EXPECT_EQ(tracker.Snapshot().max_fragments, 2u);
}

// -- Tracker vs full scan on live repositories ------------------------

using RepoFactory = std::function<std::unique_ptr<ObjectRepository>()>;

std::unique_ptr<ObjectRepository> MakeFs() {
  FsRepositoryConfig config;
  config.volume_bytes = 256 * kMiB;
  return std::make_unique<FsRepository>(config);
}

std::unique_ptr<ObjectRepository> MakeDb() {
  DbRepositoryConfig config;
  config.volume_bytes = 256 * kMiB;
  return std::make_unique<DbRepository>(config);
}

struct BackendCase {
  std::string label;
  RepoFactory make;
};

void ExpectReportsEqual(const FragmentationReport& tracked,
                        const FragmentationReport& scanned) {
  EXPECT_EQ(tracked.objects, scanned.objects);
  EXPECT_DOUBLE_EQ(tracked.fragments_per_object,
                   scanned.fragments_per_object);
  EXPECT_EQ(tracked.max_fragments, scanned.max_fragments);
  EXPECT_EQ(tracked.p50_fragments, scanned.p50_fragments);
  EXPECT_EQ(tracked.p99_fragments, scanned.p99_fragments);
  EXPECT_DOUBLE_EQ(tracked.mean_fragment_bytes, scanned.mean_fragment_bytes);
  EXPECT_DOUBLE_EQ(tracked.contiguous_fraction, scanned.contiguous_fraction);
  EXPECT_EQ(tracked.histogram.count(), scanned.histogram.count());
  for (uint64_t f = 0; f <= tracked.max_fragments &&
                       f <= FragmentationReport::kHistogramResolution;
       ++f) {
    EXPECT_EQ(tracked.histogram.BucketCount(f),
              scanned.histogram.BucketCount(f))
        << "fragment count " << f;
  }
}

class TrackerEquivalenceTest : public ::testing::TestWithParam<BackendCase> {};

TEST_P(TrackerEquivalenceTest, TrackerExistsAndStartsEmpty) {
  auto repo = GetParam().make();
  ASSERT_NE(repo->fragmentation_tracker(), nullptr);
  EXPECT_EQ(repo->fragmentation_tracker()->objects(), 0u);
}

TEST_P(TrackerEquivalenceTest, RandomizedChurnMatchesFullScan) {
  auto repo = GetParam().make();
  Rng rng(777);
  std::vector<std::string> live;
  uint64_t next_id = 0;
  for (int op = 0; op < 400; ++op) {
    const double dice = rng.NextDouble();
    if (live.size() < 8 || dice < 0.45) {
      const std::string key = "obj" + std::to_string(next_id++);
      const uint64_t size = (64 + rng.Uniform(512)) * kKiB;
      if (repo->Put(key, size).ok()) live.push_back(key);
    } else if (dice < 0.8) {
      const std::string& key = live[rng.Uniform(live.size())];
      const uint64_t size = (64 + rng.Uniform(512)) * kKiB;
      Status s = repo->SafeWrite(key, size);
      EXPECT_TRUE(s.ok() || s.IsNoSpace()) << s.ToString();
    } else {
      const size_t idx = rng.Uniform(live.size());
      ASSERT_TRUE(repo->Delete(live[idx]).ok());
      live[idx] = live.back();
      live.pop_back();
    }
    if (op % 50 == 0) {
      ExpectReportsEqual(repo->fragmentation_tracker()->Snapshot(),
                         AnalyzeFragmentationFullScan(*repo));
    }
  }
  ExpectReportsEqual(repo->fragmentation_tracker()->Snapshot(),
                     AnalyzeFragmentationFullScan(*repo));
  // AnalyzeFragmentation must serve the tracker's snapshot (and, in
  // debug builds, cross-check it against the scan itself).
  ExpectReportsEqual(AnalyzeFragmentation(*repo),
                     AnalyzeFragmentationFullScan(*repo));
  EXPECT_TRUE(repo->CheckConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TrackerEquivalenceTest,
    ::testing::Values(BackendCase{"filesystem", MakeFs},
                      BackendCase{"database", MakeDb}),
    [](const auto& info) { return info.param.label; });

// Defragmentation relocates extents behind the repository API; the
// tracker must follow those moves too.
TEST(TrackerEquivalenceTest, FsDefragmentationTracked) {
  FsRepositoryConfig config;
  config.volume_bytes = 128 * kMiB;
  FsRepository repo(config);
  Rng rng(99);
  std::vector<std::string> live;
  for (int i = 0; i < 60; ++i) {
    const std::string key = "obj" + std::to_string(i);
    ASSERT_TRUE(repo.Put(key, (128 + rng.Uniform(256)) * kKiB).ok());
    live.push_back(key);
  }
  for (int i = 0; i < 30; ++i) {  // Churn to fragment the volume.
    const std::string& key = live[rng.Uniform(live.size())];
    ASSERT_TRUE(repo.SafeWrite(key, (128 + rng.Uniform(256)) * kKiB).ok());
  }
  for (const std::string& key : live) {
    auto moved = repo.store()->DefragmentFile(key);
    ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  }
  ExpectReportsEqual(repo.fragmentation_tracker()->Snapshot(),
                     AnalyzeFragmentationFullScan(repo));
  EXPECT_TRUE(repo.CheckConsistency().ok());
}

}  // namespace
}  // namespace core
}  // namespace lor
