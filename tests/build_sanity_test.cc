// Link-graph smoke test: constructs and exercises one object from each
// library subdirectory (alloc, core, db, fs, sim, util, workload) so
// that any future break in the build wiring — a source dropped from
// src/CMakeLists.txt, a subsystem that stops linking — fails here with
// an obvious message instead of deep inside an integration suite.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "alloc/buddy_allocator.h"
#include "core/fragmentation.h"
#include "core/fs_repository.h"
#include "db/blob_store.h"
#include "fs/file_store.h"
#include "sim/block_device.h"
#include "sim/disk_model.h"
#include "util/config.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/units.h"
#include "workload/size_distribution.h"

namespace lor {
namespace {

TEST(BuildSanity, AllocBuddyAllocator) {
  alloc::BuddyAllocator buddy(1024);
  alloc::ExtentList extents;
  ASSERT_TRUE(buddy.Allocate(10, alloc::kNoHint, &extents).ok());
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_GE(extents[0].length, 10u);
  EXPECT_TRUE(buddy.Free(extents[0]).ok());
  EXPECT_TRUE(buddy.CheckConsistency().ok());
}

TEST(BuildSanity, UtilUnitsAndHistogram) {
  EXPECT_EQ(ParseBytes("256K"), 256 * kKiB);
  EXPECT_FALSE(FormatBytes(kMiB).empty());
  SummaryStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
}

TEST(BuildSanity, SimDiskAndDevice) {
  sim::DiskParams params = sim::DiskParams::St3400832as();
  params = params.WithCapacity(kGiB);
  sim::DiskModel model(params);
  EXPECT_GT(model.SeekTime(0, params.capacity_bytes / 2), 0.0);

  sim::BlockDevice device(params);
  ASSERT_TRUE(device.Write(0, 64 * kKiB).ok());
  ASSERT_TRUE(device.Read(0, 64 * kKiB).ok());
  EXPECT_GT(device.clock().now(), 0.0);
}

TEST(BuildSanity, FsFileStore) {
  sim::DiskParams params = sim::DiskParams::St3400832as().WithCapacity(kGiB);
  sim::BlockDevice device(params);
  fs::FileStore store(&device);
  ASSERT_TRUE(store.Create("hello").ok());
  EXPECT_EQ(store.stats().creates, 1u);
}

TEST(BuildSanity, DbBlobStore) {
  sim::DiskParams params = sim::DiskParams::St3400832as().WithCapacity(kGiB);
  sim::BlockDevice data(params);
  db::BlobStore store(&data, nullptr);
  ASSERT_TRUE(store.Put("blob", 64 * kKiB).ok());
  EXPECT_TRUE(store.Exists("blob"));
  EXPECT_EQ(store.stats().puts, 1u);
}

TEST(BuildSanity, WorkloadSizeDistribution) {
  Rng rng(7);
  workload::SizeDistribution constant =
      workload::SizeDistribution::Constant(kMiB);
  EXPECT_EQ(constant.Sample(&rng), kMiB);
}

TEST(BuildSanity, CoreRepositoryAndFragmentation) {
  core::FsRepositoryConfig config;
  config.volume_bytes = kGiB;
  core::FsRepository repo(config);
  ASSERT_TRUE(repo.Put("obj", 256 * kKiB).ok());
  core::FragmentationReport report = AnalyzeFragmentation(repo);
  EXPECT_EQ(report.objects, 1u);
  EXPECT_TRUE(repo.CheckConsistency().ok());
}

}  // namespace
}  // namespace lor
